// Minimal JSON DOM + recursive-descent parser shared by the observability
// tools (hangdump, lwmpi_top). Same spirit as tools/check_core.hpp: it
// handles exactly the value shapes the lwmpi renderers produce (objects,
// arrays, strings with \n/\t escapes, strtod numbers, true/false/null) and
// rejects anything malformed rather than guessing. Not a general JSON
// library -- no \uXXXX escapes, no exponent validation beyond strtod's.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace jsonmini {

struct JValue {
  enum class Kind { Null, Bool, Num, Str, Arr, Obj } kind = Kind::Null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JValue> arr;
  std::vector<std::pair<std::string, JValue>> obj;

  const JValue* get(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  std::uint64_t u64() const { return static_cast<std::uint64_t>(num); }
  long i64() const { return static_cast<long>(num); }
};

struct Parser {
  const std::string& s;
  std::size_t i = 0;
  bool ok = true;

  void ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) ++i;
  }
  bool lit(const char* t) {
    const std::size_t n = std::strlen(t);
    if (s.compare(i, n, t) != 0) return false;
    i += n;
    return true;
  }
  JValue value() {
    ws();
    JValue v;
    if (!ok || i >= s.size()) {
      ok = false;
      return v;
    }
    const char c = s[i];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      v.kind = JValue::Kind::Str;
      v.str = string();
      return v;
    }
    if (lit("null")) return v;
    if (lit("true")) {
      v.kind = JValue::Kind::Bool;
      v.b = true;
      return v;
    }
    if (lit("false")) {
      v.kind = JValue::Kind::Bool;
      return v;
    }
    // number
    char* end = nullptr;
    v.num = std::strtod(s.c_str() + i, &end);
    if (end == s.c_str() + i) {
      ok = false;
      return v;
    }
    v.kind = JValue::Kind::Num;
    i = static_cast<std::size_t>(end - s.c_str());
    return v;
  }
  std::string string() {
    std::string out;
    if (i >= s.size() || s[i] != '"') {
      ok = false;
      return out;
    }
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) {
        const char e = s[i + 1];
        out += (e == 'n' ? '\n' : e == 't' ? '\t' : e);
        i += 2;
      } else {
        out += s[i++];
      }
    }
    if (i >= s.size()) {
      ok = false;
      return out;
    }
    ++i;  // closing quote
    return out;
  }
  JValue array() {
    JValue v;
    v.kind = JValue::Kind::Arr;
    ++i;  // '['
    ws();
    if (i < s.size() && s[i] == ']') {
      ++i;
      return v;
    }
    while (ok) {
      v.arr.push_back(value());
      ws();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      if (i < s.size() && s[i] == ']') {
        ++i;
        return v;
      }
      ok = false;
    }
    return v;
  }
  JValue object() {
    JValue v;
    v.kind = JValue::Kind::Obj;
    ++i;  // '{'
    ws();
    if (i < s.size() && s[i] == '}') {
      ++i;
      return v;
    }
    while (ok) {
      ws();
      std::string key = string();
      ws();
      if (i >= s.size() || s[i] != ':') {
        ok = false;
        return v;
      }
      ++i;
      v.obj.emplace_back(std::move(key), value());
      ws();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      if (i < s.size() && s[i] == '}') {
        ++i;
        return v;
      }
      ok = false;
    }
    return v;
  }
};

// Parse a complete document; sets *ok to whether the whole text was one
// well-formed value.
inline JValue parse(const std::string& text, bool* ok) {
  Parser p{text};
  JValue v = p.value();
  if (ok != nullptr) *ok = p.ok;
  return v;
}

}  // namespace jsonmini
