// critpath: "why was this message slow?" -- the CLI over the causal tier
// (src/obs/causal.hpp).
//
// A World built with BuildConfig::trace and a causal_trace_path writes its
// merged cross-rank timeline as JSONL at teardown (the watchdog writes the
// same file mid-run on a hang). This tool replays that file through the
// critical-path analyzer and prints the Table-1-style report: which
// wait-state categories the end-to-end path spent its time in, the top
// contributing edges, and per-rank slack.
//
//   critpath trace.jsonl [--json] [--top N]
//       analyze a saved causal trace
//   critpath --demo [--netmod mailbox|rdma] [--delay sender|receiver|credits]
//            [--export trace.jsonl] [--json]
//       run a live 2-rank world with one injected delay and analyze it; the
//       injected delay should surface as the top cost category
//       (late_sender / late_receiver / credit_stalled respectively).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "obs/causal.hpp"
#include "obs/trace.hpp"
#include "runtime/world.hpp"

namespace {

using namespace lwmpi;

int usage() {
  std::fprintf(stderr,
               "usage: critpath <trace.jsonl> [--json] [--top N]\n"
               "       critpath --demo [--netmod mailbox|rdma]\n"
               "                [--delay sender|receiver|credits]\n"
               "                [--export <trace.jsonl>] [--json]\n");
  return 2;
}

int analyze_and_print(const std::vector<obs::trace::Event>& events, bool json,
                      std::size_t top_k) {
  if (events.empty()) {
    std::fprintf(stderr, "critpath: no events (was the world built with trace on?)\n");
    return 1;
  }
  const obs::causal::Analysis a = obs::causal::analyze(events);
  const std::string out =
      json ? obs::causal::render_json(a, top_k) : obs::causal::render_text(a, top_k);
  std::fputs(out.c_str(), stdout);
  if (json) std::fputc('\n', stdout);
  return 0;
}

// One injected delay, two ranks, a handful of messages. The delayed message
// dominates the end-to-end span, so the analyzer should rank its wait-state
// category first.
int run_demo(const std::string& netmod, const std::string& delay,
             const std::string& export_path, bool json, std::size_t top_k) {
  constexpr auto kDelay = std::chrono::milliseconds(20);
  constexpr int kMsgs = 8;

  WorldOptions o;
  o.netmod = netmod;
  o.ranks_per_node = 1;  // inter-node: exercise the full netmod path
  o.build.trace = true;
  o.build.lat_sample_shift = 0;  // stamp every message so every match classifies
  if (delay == "credits") {
    if (netmod != "rdma") {
      std::fprintf(stderr, "critpath: --delay credits requires --netmod rdma\n");
      return 2;
    }
    o.profile.rdma_ring_depth = 2;  // exhaust the eager ring after two messages
  }

  obs::trace::reset_all();
  std::vector<obs::trace::Event> events;
  {
    World w(2, o);
    w.run([&](Engine& e) {
      char buf[64] = {};
      // Warmup exchange: both ranks get a timeline origin, so the analyzer
      // has an anchor edge to attribute the injected gap against.
      if (e.world_rank() == 0) {
        e.send(buf, 1, kChar, 1, 1, kCommWorld);
      } else {
        e.recv(buf, 1, kChar, 0, 1, kCommWorld, nullptr);
      }
      if (delay == "sender") {
        // Receiver posts first; the sender shows up late.
        if (e.world_rank() == 0) {
          std::this_thread::sleep_for(kDelay);
          e.send(buf, 1, kChar, 1, 7, kCommWorld);
        } else {
          e.recv(buf, 1, kChar, 0, 7, kCommWorld, nullptr);
        }
      } else if (delay == "receiver") {
        // Sender injects immediately; the receive is posted late.
        if (e.world_rank() == 0) {
          e.send(buf, 1, kChar, 1, 7, kCommWorld);
        } else {
          std::this_thread::sleep_for(kDelay);
          e.recv(buf, 1, kChar, 0, 7, kCommWorld, nullptr);
        }
      } else {  // credits
        // Receiver posts everything up front, then withholds progress; with a
        // 2-deep eager ring the sender's third inject busy-waits for a credit
        // until the receiver wakes and drains.
        if (e.world_rank() == 1) {
          std::vector<Request> reqs(kMsgs);
          for (int i = 0; i < kMsgs; ++i) {
            e.irecv(buf, 1, kChar, 0, 7, kCommWorld, &reqs[i]);
          }
          std::this_thread::sleep_for(kDelay + kDelay / 4);
          std::vector<Status> sts(kMsgs);
          e.waitall(reqs, sts);
        } else {
          // Give the receiver a head start so its posts predate the injects.
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          for (int i = 0; i < kMsgs; ++i) {
            e.send(buf, 1, kChar, 1, 7, kCommWorld);
          }
        }
      }
    });
    events = obs::trace::collect_all();
  }

  if (!export_path.empty()) {
    std::ofstream f(export_path, std::ios::trunc);
    if (!f) {
      std::fprintf(stderr, "critpath: cannot write %s\n", export_path.c_str());
      return 1;
    }
    obs::causal::export_jsonl(f, events);
    std::fprintf(stderr, "critpath: wrote %zu events to %s\n", events.size(),
                 export_path.c_str());
  }
  return analyze_and_print(events, json, top_k);
}

}  // namespace

int main(int argc, char** argv) {
  bool demo = false;
  bool json = false;
  std::size_t top_k = 10;
  std::string netmod = "mailbox";
  std::string delay = "sender";
  std::string export_path;
  std::string trace_file;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "critpath: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--demo") == 0) {
      demo = true;
    } else if (std::strcmp(a, "--json") == 0) {
      json = true;
    } else if (std::strcmp(a, "--top") == 0) {
      const char* v = next("--top");
      if (v == nullptr) return 2;
      top_k = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (std::strcmp(a, "--netmod") == 0) {
      const char* v = next("--netmod");
      if (v == nullptr) return 2;
      netmod = v;
    } else if (std::strcmp(a, "--delay") == 0) {
      const char* v = next("--delay");
      if (v == nullptr) return 2;
      delay = v;
    } else if (std::strcmp(a, "--export") == 0) {
      const char* v = next("--export");
      if (v == nullptr) return 2;
      export_path = v;
    } else if (a[0] == '-') {
      return usage();
    } else if (trace_file.empty()) {
      trace_file = a;
    } else {
      return usage();
    }
  }

  if (demo) {
    if (delay != "sender" && delay != "receiver" && delay != "credits") return usage();
    return run_demo(netmod, delay, export_path, json, top_k);
  }
  if (trace_file.empty()) return usage();

  std::ifstream f(trace_file);
  if (!f) {
    std::fprintf(stderr, "critpath: cannot open %s\n", trace_file.c_str());
    return 1;
  }
  const std::vector<lwmpi::obs::trace::Event> events = lwmpi::obs::causal::parse_jsonl(f);
  return analyze_and_print(events, json, top_k);
}
