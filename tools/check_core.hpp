// Comparator core for the bench regression sentinel.
//
// Parses the flat BENCH_<name>.json files emitted by bench::JsonResult and
// compares a current run against a committed baseline. Two regimes:
//   - exact units ("instr", "count"): the modeled instruction counts are
//     deterministic by construction, so any difference is a real change in
//     the critical path and fails the check bit-for-bit;
//   - everything else (rates, percentages, bytes/s): machine-dependent, so
//     they are compared within a configurable relative tolerance, or merely
//     reported when the tolerance is negative (report-only mode).
// Missing or extra labels fail in either regime: a schema change must be
// acknowledged by refreshing the baseline (tools/bench_check --update).
//
// Header-only so tests/test_bench_check.cpp can exercise it directly.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace lwmpi::tools {

struct Entry {
  std::string label;
  std::string unit;
  double value = 0.0;
};

struct BenchFile {
  bool ok = false;  // parse succeeded
  std::string bench;
  std::vector<Entry> entries;
};

inline bool exact_unit(const std::string& unit) {
  return unit == "instr" || unit == "count";
}

namespace detail {

// Parse the JSON string whose opening quote is at s[i]; leaves i past the
// closing quote. Decodes \", \\, \/ and \uXXXX (ASCII range) -- the escapes
// bench::JsonResult::escape produces.
inline bool parse_string_at(const std::string& s, std::size_t& i, std::string& out) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  out.clear();
  while (i < s.size()) {
    const char c = s[i];
    if (c == '"') {
      ++i;
      return true;
    }
    if (c == '\\') {
      if (i + 1 >= s.size()) return false;
      const char e = s[i + 1];
      if (e == 'u') {
        if (i + 5 >= s.size()) return false;
        unsigned code = 0;
        if (std::sscanf(s.c_str() + i + 2, "%4x", &code) != 1) return false;
        // Only the ASCII range is round-tripped; higher code points would
        // need UTF-8 encoding which our emitter never produces.
        out += static_cast<char>(code & 0x7f);
        i += 6;
      } else {
        out += e;
        i += 2;
      }
    } else {
      out += c;
      ++i;
    }
  }
  return false;  // unterminated
}

// Find `"key":` at or after `from`; returns position just past the colon or
// npos. Good enough for the fixed shape JsonResult emits (keys never appear
// inside values in the flat results array).
inline std::size_t find_key(const std::string& s, const std::string& key, std::size_t from) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t p = s.find(needle, from);
  return p == std::string::npos ? p : p + needle.size();
}

}  // namespace detail

// Parse one BENCH_<name>.json body. Only the "results" array is compared;
// raw attachments (stats reports, attribution blobs) are free-form and
// intentionally ignored here.
inline BenchFile parse_bench_json(const std::string& text) {
  BenchFile out;
  std::size_t p = detail::find_key(text, "bench", 0);
  if (p == std::string::npos || !detail::parse_string_at(text, p, out.bench)) return out;
  std::size_t arr = detail::find_key(text, "results", 0);
  if (arr == std::string::npos || arr >= text.size() || text[arr] != '[') return out;
  std::size_t i = arr + 1;
  while (i < text.size() && text[i] != ']') {
    Entry e;
    std::size_t lp = detail::find_key(text, "label", i);
    if (lp == std::string::npos || !detail::parse_string_at(text, lp, e.label)) return out;
    std::size_t vp = detail::find_key(text, "value", lp);
    if (vp == std::string::npos) return out;
    char* end = nullptr;
    e.value = std::strtod(text.c_str() + vp, &end);
    if (end == text.c_str() + vp) return out;
    std::size_t up = detail::find_key(text, "unit", vp);
    if (up == std::string::npos || !detail::parse_string_at(text, up, e.unit)) return out;
    out.entries.push_back(std::move(e));
    const std::size_t close = text.find('}', up);
    if (close == std::string::npos) return out;
    i = close + 1;
    while (i < text.size() && (text[i] == ',' || text[i] == ' ' || text[i] == '\n')) ++i;
  }
  out.ok = i < text.size();
  return out;
}

enum class DiffKind {
  Missing,            // label in baseline but not in current
  Extra,              // label in current but not in baseline
  UnitChanged,        // same label, different unit
  ExactMismatch,      // exact-unit value differs (bit-for-bit check)
  ToleranceExceeded,  // non-exact value outside the allowed relative band
  Drift,              // non-exact value moved but within tolerance / report-only
};

struct Diff {
  DiffKind kind;
  std::string label;
  std::string unit;
  double baseline = 0.0;
  double current = 0.0;
};

struct CompareResult {
  bool ok = true;      // no failing diffs
  std::vector<Diff> diffs;  // failing diffs first is NOT guaranteed; check kind
};

inline bool is_failure(DiffKind k) { return k != DiffKind::Drift; }

inline double rel_delta(double baseline, double current) {
  if (baseline == 0.0) return current == 0.0 ? 0.0 : HUGE_VAL;
  return std::fabs(current - baseline) / std::fabs(baseline);
}

// tolerance: allowed relative deviation for non-exact units; negative means
// report-only (non-exact values never fail, only produce Drift records).
inline CompareResult compare(const BenchFile& baseline, const BenchFile& current,
                             double tolerance) {
  CompareResult out;
  auto find = [](const BenchFile& f, const std::string& label) -> const Entry* {
    for (const Entry& e : f.entries) {
      if (e.label == label) return &e;
    }
    return nullptr;
  };
  for (const Entry& b : baseline.entries) {
    const Entry* c = find(current, b.label);
    if (c == nullptr) {
      out.diffs.push_back({DiffKind::Missing, b.label, b.unit, b.value, 0.0});
      continue;
    }
    if (c->unit != b.unit) {
      out.diffs.push_back({DiffKind::UnitChanged, b.label, b.unit + "->" + c->unit,
                           b.value, c->value});
      continue;
    }
    if (exact_unit(b.unit)) {
      if (c->value != b.value) {
        out.diffs.push_back({DiffKind::ExactMismatch, b.label, b.unit, b.value, c->value});
      }
      continue;
    }
    if (c->value != b.value) {
      const bool fail = tolerance >= 0.0 && rel_delta(b.value, c->value) > tolerance;
      out.diffs.push_back({fail ? DiffKind::ToleranceExceeded : DiffKind::Drift, b.label,
                           b.unit, b.value, c->value});
    }
  }
  for (const Entry& c : current.entries) {
    if (find(baseline, c.label) == nullptr) {
      out.diffs.push_back({DiffKind::Extra, c.label, c.unit, 0.0, c.value});
    }
  }
  for (const Diff& d : out.diffs) {
    if (is_failure(d.kind)) out.ok = false;
  }
  return out;
}

inline const char* to_string(DiffKind k) {
  switch (k) {
    case DiffKind::Missing: return "missing-in-current";
    case DiffKind::Extra: return "missing-in-baseline";
    case DiffKind::UnitChanged: return "unit-changed";
    case DiffKind::ExactMismatch: return "instr-mismatch";
    case DiffKind::ToleranceExceeded: return "tolerance-exceeded";
    case DiffKind::Drift: return "drift(info)";
  }
  return "?";
}

}  // namespace lwmpi::tools
