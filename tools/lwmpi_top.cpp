// lwmpi_top: live terminal dashboard over the telemetry sampler's time
// series -- `top` for a simulated MPI job.
//
// The sampler (src/obs/sampler.hpp) derives interval rates per rank and per
// VCI lane and exports them as JSONL. This tool renders that series as a
// refreshing table: per-rank send/recv rates, interval-local p99 latency,
// queue depth and growth, credit-stall and progress-idle ratios, and any SLO
// alerts fired on the latest interval, plus a per-(rank, vci) lane breakdown.
//
//   lwmpi_top telemetry.jsonl             render the latest interval per rank
//   lwmpi_top --follow telemetry.jsonl    re-read and re-render until ^C
//   lwmpi_top --demo [--seconds N]        run a live 2-rank rdma scenario with
//                                         a deliberately starved receiver and
//                                         watch the credit-stall SLO fire
//
// The demo is the acceptance check for the telemetry plane: a sender streams
// eager messages into an 8-deep credit ring while the receiver polls slowly,
// so credit stalls and unexpected-queue growth climb until the SLO rules
// (set via cvars at startup) fire. Exit status 0 means the dashboard
// rendered live per-VCI rates AND at least one alert fired.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "obs/cvar.hpp"
#include "obs/jsonl.hpp"
#include "obs/sampler.hpp"
#include "runtime/world.hpp"
#include "tools/json_mini.hpp"

namespace {

using jsonmini::JValue;

double num_of(const JValue& o, const char* key) {
  const JValue* v = o.get(key);
  return v != nullptr ? v->num : 0.0;
}

std::string fmt_rate(double per_s) {
  char buf[32];
  if (per_s >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", per_s / 1e6);
  } else if (per_s >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", per_s / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", per_s);
  }
  return buf;
}

std::string fmt_bytes_rate(double bytes_per_s) {
  char buf[32];
  if (bytes_per_s >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fGB/s", bytes_per_s / 1e9);
  } else if (bytes_per_s >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fMB/s", bytes_per_s / 1e6);
  } else if (bytes_per_s >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fKB/s", bytes_per_s / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fB/s", bytes_per_s);
  }
  return buf;
}

std::string fmt_ns(double ns) {
  char buf[32];
  if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  }
  return buf;
}

// Render one frame from the latest sample per rank. Returns the number of
// nonzero per-VCI lane rates rendered (the demo's liveness check).
int render_frame(const std::vector<JValue>& latest, std::uint64_t alerts_total,
                 bool clear_screen) {
  if (clear_screen) std::fputs("\x1b[H\x1b[2J", stdout);
  std::uint64_t seq = 0;
  double interval_ms = 0.0;
  for (const JValue& s : latest) {
    if (s.get("seq") != nullptr && s.get("seq")->u64() > seq) seq = s.get("seq")->u64();
    interval_ms = num_of(s, "interval_ns") / 1e6;
  }
  std::printf("lwmpi-top  |  interval %.0fms  seq %llu  ranks %zu  |  alerts fired: %llu\n",
              interval_ms, static_cast<unsigned long long>(seq), latest.size(),
              static_cast<unsigned long long>(alerts_total));
  std::printf("%4s %9s %9s %10s %10s %5s %6s %7s %6s  %s\n", "RANK", "SENDS/s",
              "RECVS/s", "P99send", "P99recv", "UEXQ", "+UEXQ", "STALL%", "IDLE%",
              "ALERTS");
  for (const JValue& s : latest) {
    const JValue* alerts = s.get("alerts");
    std::string fired;
    if (alerts != nullptr) {
      for (const JValue& a : alerts->arr) {
        const JValue* rule = a.get("rule");
        if (rule == nullptr) continue;
        if (!fired.empty()) fired += ' ';
        char buf[96];
        std::snprintf(buf, sizeof(buf), "%s(%.3g>%.3g)", rule->str.c_str(),
                      num_of(a, "value"), num_of(a, "threshold"));
        fired += buf;
      }
    }
    std::printf("%4ld %9s %9s %10s %10s %5llu %+6lld %6.1f%% %5.1f%%  %s\n",
                s.get("rank") != nullptr ? s.get("rank")->i64() : -1,
                fmt_rate(num_of(s, "sends_per_s")).c_str(),
                fmt_rate(num_of(s, "recvs_per_s")).c_str(),
                fmt_ns(num_of(s, "send_p99_ns")).c_str(),
                fmt_ns(num_of(s, "recv_p99_ns")).c_str(),
                static_cast<unsigned long long>(
                    s.get("unexpected_depth") != nullptr ? s.get("unexpected_depth")->u64()
                                                         : 0),
                static_cast<long long>(s.get("unexpected_growth") != nullptr
                                           ? s.get("unexpected_growth")->i64()
                                           : 0),
                num_of(s, "credit_stall_pct"), num_of(s, "idle_pct"),
                fired.empty() ? "-" : fired.c_str());
  }
  // Per-(rank, vci) lane breakdown: only lanes with any activity this
  // interval, so a 4-vci world with traffic on one channel stays readable.
  int live_lanes = 0;
  std::printf("\n%4s %4s %9s %9s %12s %12s %6s %5s\n", "RANK", "VCI", "TX/s", "RX/s",
              "RX bytes", "TX bytes", "POSTED", "UEXQ");
  for (const JValue& s : latest) {
    const JValue* lanes = s.get("lanes");
    if (lanes == nullptr) continue;
    for (const JValue& l : lanes->arr) {
      const double tx = num_of(l, "send_per_s");
      const double rx = num_of(l, "deliver_per_s");
      const double rxb = num_of(l, "deliver_bytes_per_s");
      const double txb = num_of(l, "inject_bytes_per_s");
      const std::uint64_t posted = l.get("posted") != nullptr ? l.get("posted")->u64() : 0;
      const std::uint64_t uexq =
          l.get("unexpected") != nullptr ? l.get("unexpected")->u64() : 0;
      if (tx == 0.0 && rx == 0.0 && posted == 0 && uexq == 0) continue;
      if (tx > 0.0 || rx > 0.0) ++live_lanes;
      std::printf("%4ld %4ld %9s %9s %12s %12s %6llu %5llu\n",
                  s.get("rank") != nullptr ? s.get("rank")->i64() : -1,
                  l.get("vci") != nullptr ? l.get("vci")->i64() : -1,
                  fmt_rate(tx).c_str(), fmt_rate(rx).c_str(),
                  fmt_bytes_rate(rxb).c_str(), fmt_bytes_rate(txb).c_str(),
                  static_cast<unsigned long long>(posted),
                  static_cast<unsigned long long>(uexq));
    }
  }
  std::fflush(stdout);
  return live_lanes;
}

// Parse a JSONL telemetry file and keep the newest sample per rank (by seq)
// plus the total alert count across all retained records.
//
// The tolerant truncated-tail policy lives in obs/jsonl.hpp: the sampler
// appends records while we read, so the final line may be cut mid-append;
// only complete lines reach the parser and the finished line shows up on the
// next tick's re-read.
bool load_jsonl(const char* path, std::vector<JValue>* latest,
                std::uint64_t* alerts_total) {
  lwmpi::obs::JsonlFile file;
  if (!lwmpi::obs::read_jsonl(path, &file)) return false;
  latest->clear();
  *alerts_total = 0;
  for (const std::string& line : file.lines) {
    bool ok = false;
    JValue v = jsonmini::parse(line, &ok);
    if (!ok || v.kind != JValue::Kind::Obj) continue;
    if (const JValue* alerts = v.get("alerts"); alerts != nullptr) {
      *alerts_total += alerts->arr.size();
    }
    const long rank = v.get("rank") != nullptr ? v.get("rank")->i64() : -1;
    if (rank < 0) continue;
    if (latest->size() <= static_cast<std::size_t>(rank)) {
      latest->resize(static_cast<std::size_t>(rank) + 1);
    }
    JValue& slot = (*latest)[static_cast<std::size_t>(rank)];
    const std::uint64_t seq = v.get("seq") != nullptr ? v.get("seq")->u64() : 0;
    const std::uint64_t have =
        slot.get("seq") != nullptr ? slot.get("seq")->u64() : 0;
    if (slot.kind != JValue::Kind::Obj || seq >= have) slot = std::move(v);
  }
  // Drop unseen ranks (holes left by resize).
  std::vector<JValue> packed;
  for (JValue& v : *latest) {
    if (v.kind == JValue::Kind::Obj) packed.push_back(std::move(v));
  }
  *latest = std::move(packed);
  return true;
}

// ---------------------------------------------------------------------------
// --demo: injected credit-stall scenario
// ---------------------------------------------------------------------------

int run_demo(int seconds) {
  using namespace lwmpi;
  const bool tty = isatty(STDOUT_FILENO) != 0;

  // SLO thresholds and cadence for the scenario. cvar writes here model an
  // operator tuning LWMPI_CVAR_* before launch.
  obs::cvar_set(obs::Cv::SamplerIntervalMs, 50);
  obs::cvar_set(obs::Cv::SloCreditStallPct, 10);   // >10% of interval stalled
  obs::cvar_set(obs::Cv::SloUnexpectedDepth, 4);   // >4 unmatched messages

  // A deliberately starved rdma transport: 2 eager credits per lane, so a
  // sender that outpaces its receiver hits acquire_credit busy-waits almost
  // immediately. Depth 2 also keeps the sender credit-paced for about half
  // the run (each receiver poll drains the whole ring but matches only one
  // message, so a deeper ring lets the sender finish disproportionately
  // early and the dashboard would mostly show a quiet fabric).
  WorldOptions o;
  o.netmod = "rdma";
  o.ranks_per_node = 1;  // inter-node path
  o.profile = net::loopback();
  o.profile.rdma_ring_depth = 2;
  World w(2, o);
  obs::Sampler sampler(w);

  // Receiver paces the whole run: it polls progress only inside brief test()
  // calls 2ms apart (irecv + sleepy test loop, never a spinning blocking
  // recv), so between polls the 8-credit ring fills and the sender sits in
  // acquire_credit -- the injected credit-stall the SLO rules are watching
  // for. Each test() drains whatever matured, so the unexpected queue also
  // grows in bursts.
  const int nmsgs = std::max(100, seconds * 400);
  std::atomic<bool> workload_done{false};
  std::thread workload([&w, &workload_done, nmsgs] {
    w.run([nmsgs](Engine& e) {
      std::uint64_t buf = 0;
      if (e.world_rank() == 0) {
        for (int i = 0; i < nmsgs; ++i) {
          buf = static_cast<std::uint64_t>(i);
          e.send(&buf, 1, kUint64, 1, 7, kCommWorld);
        }
      } else {
        for (int i = 0; i < nmsgs; ++i) {
          Request req;
          e.irecv(&buf, 1, kUint64, 0, 7, kCommWorld, &req);
          bool done = false;
          while (!done) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            e.test(&req, &done, nullptr);
          }
        }
      }
    });
    workload_done.store(true, std::memory_order_release);
  });

  int live_lanes = 0;
  while (!workload_done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(tty ? 100 : 150));
    // Render from the sampler's own ring via the JSON round-trip, so the
    // dashboard exercises exactly what a --follow session would read.
    bool ok = false;
    const JValue frame = jsonmini::parse(sampler.timeline_json(1), &ok);
    if (ok && frame.kind == JValue::Kind::Arr && !frame.arr.empty()) {
      const int n = render_frame(frame.arr, sampler.alerts_fired(), tty);
      if (n > live_lanes) live_lanes = n;
    }
  }
  workload.join();
  sampler.sample_now();

  const std::uint64_t fired = sampler.alerts_fired();
  std::printf("\ndemo complete: %llu sampling tick(s), %d live lane rate(s), %llu SLO"
              " alert(s) fired\n",
              static_cast<unsigned long long>(sampler.ticks()), live_lanes,
              static_cast<unsigned long long>(fired));
  if (live_lanes == 0 || fired == 0) {
    std::fprintf(stderr, "lwmpi_top: demo failed (%s)\n",
                 live_lanes == 0 ? "no live per-VCI rates rendered"
                                 : "no SLO alert fired");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool demo = false;
  bool follow = false;
  int seconds = 3;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else if (std::strcmp(argv[i], "--follow") == 0) {
      follow = true;
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::atoi(argv[++i]);
      if (seconds < 1) seconds = 1;
    } else if (path == nullptr) {
      path = argv[i];
    }
  }
  if (demo) return run_demo(seconds);
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: lwmpi_top [--follow] <telemetry.jsonl>\n"
                 "       lwmpi_top --demo [--seconds N]\n");
    return 2;
  }

  const bool tty = isatty(STDOUT_FILENO) != 0;
  std::vector<JValue> latest;
  std::uint64_t alerts_total = 0;
  do {
    if (!load_jsonl(path, &latest, &alerts_total)) {
      std::fprintf(stderr, "lwmpi_top: cannot open %s\n", path);
      return 1;
    }
    if (latest.empty() && !follow) {
      // --follow tolerates an empty read (file exists but no complete record
      // yet, e.g. the writer is mid-append) and just waits for the next tick.
      std::fprintf(stderr, "lwmpi_top: no telemetry records in %s\n", path);
      return 1;
    }
    if (!latest.empty()) render_frame(latest, alerts_total, tty && follow);
    if (follow) std::this_thread::sleep_for(std::chrono::milliseconds(500));
  } while (follow);
  return 0;
}
