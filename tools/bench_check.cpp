// Bench regression sentinel CLI.
//
//   bench_check [--tolerance <frac>] [--update] <baseline-dir> <current-dir> [name...]
//
// Compares <current-dir>/BENCH_<name>.json against the committed baseline in
// <baseline-dir> for each bench name (default: the deterministic benches,
// table1 and fig2). Instruction/count entries must match bit-for-bit; other
// units are report-only unless --tolerance gives an allowed relative band.
// --update copies the current artifacts over the baselines instead of
// comparing (the acknowledged-change workflow; see README).
//
// Exit status: 0 clean, 1 regression found, 2 usage/io error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/check_core.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool copy_file(const std::string& from, const std::string& to) {
  std::string body;
  if (!read_file(from, body)) return false;
  std::ofstream out(to, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << body;
  return static_cast<bool>(out);
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_check [--tolerance <frac>] [--update] "
               "<baseline-dir> <current-dir> [name...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  double tolerance = -1.0;  // report-only for non-exact units by default
  bool update = false;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update") == 0) {
      update = true;
    } else if (std::strcmp(argv[i], "--tolerance") == 0) {
      if (i + 1 >= argc) return usage();
      tolerance = std::strtod(argv[++i], nullptr);
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      pos.emplace_back(argv[i]);
    }
  }
  if (pos.size() < 2) return usage();
  const std::string baseline_dir = pos[0];
  const std::string current_dir = pos[1];
  std::vector<std::string> names(pos.begin() + 2, pos.end());
  if (names.empty()) {
    // Deterministic benches plus the per-backend rate figures. The rate
    // artifacts carry only report-only units (msg/s), so by default they
    // guard schema (labels/units) rather than timing.
    names = {"table1", "fig2", "fig3_mailbox", "fig3_rdma", "fig4_mailbox", "fig4_rdma"};
  }

  bool all_ok = true;
  for (const std::string& name : names) {
    const std::string file = "BENCH_" + name + ".json";
    const std::string base_path = baseline_dir + "/" + file;
    const std::string cur_path = current_dir + "/" + file;

    if (update) {
      if (!copy_file(cur_path, base_path)) {
        std::fprintf(stderr, "bench_check: cannot copy %s -> %s\n", cur_path.c_str(),
                     base_path.c_str());
        return 2;
      }
      std::printf("updated %s\n", base_path.c_str());
      continue;
    }

    std::string base_body;
    std::string cur_body;
    if (!read_file(base_path, base_body)) {
      std::fprintf(stderr, "bench_check: cannot read baseline %s\n", base_path.c_str());
      return 2;
    }
    if (!read_file(cur_path, cur_body)) {
      std::fprintf(stderr, "bench_check: cannot read current %s\n", cur_path.c_str());
      return 2;
    }
    const lwmpi::tools::BenchFile base = lwmpi::tools::parse_bench_json(base_body);
    const lwmpi::tools::BenchFile cur = lwmpi::tools::parse_bench_json(cur_body);
    if (!base.ok || !cur.ok) {
      std::fprintf(stderr, "bench_check: malformed json for bench '%s'\n", name.c_str());
      return 2;
    }

    const lwmpi::tools::CompareResult r = lwmpi::tools::compare(base, cur, tolerance);
    std::printf("%-8s %-4s (%zu baseline entries", name.c_str(), r.ok ? "OK" : "FAIL",
                base.entries.size());
    if (!r.diffs.empty()) std::printf(", %zu diffs", r.diffs.size());
    std::printf(")\n");
    for (const lwmpi::tools::Diff& d : r.diffs) {
      std::printf("  [%s] %s (%s): baseline %.6g, current %.6g\n",
                  lwmpi::tools::to_string(d.kind), d.label.c_str(), d.unit.c_str(),
                  d.baseline, d.current);
    }
    all_ok = all_ok && r.ok;
  }
  if (!update && !all_ok) {
    std::fprintf(stderr,
                 "bench_check: regression detected; if the change is intended, refresh "
                 "the baselines with --update and commit them.\n");
    return 1;
  }
  return 0;
}
