// Bench regression sentinel CLI.
//
//   bench_check [--tolerance <frac>] [--update] <baseline-dir> <current-dir> [name...]
//   bench_check --promlint <exposition.prom>
//   bench_check --profcheck <profile.json>
//   bench_check --replaycheck <BENCH_replay.json>
//
// Compares <current-dir>/BENCH_<name>.json against the committed baseline in
// <baseline-dir> for each bench name (default: the deterministic benches,
// table1 and fig2). Instruction/count entries must match bit-for-bit; other
// units are report-only unless --tolerance gives an allowed relative band.
// --update copies the current artifacts over the baselines instead of
// comparing (the acknowledged-change workflow; see README).
//
// --profcheck validates an aggregate-profiler artifact (the JSON the World
// writes at teardown when LWMPI_CVAR_PROF_PATH is set, and the input of
// tools/lwmpi_prof): version key, rank/phase/callsite structure, and matrix
// cells with in-range endpoints and known message classes. Pure jsonmini
// string processing -- no lwmpi dependency -- so CI can gate the artifact
// format even while the library is mid-refactor.
//
// --replaycheck validates a BENCH_replay.json artifact (bench/bench_replay):
// every bundle x netmod cell must be present with its throughput, op counts,
// and captured-pvar entries under the expected units, and the recorded
// fidelity gates must have held -- fidelity_exact == 1 and timeouts == 0 for
// all cells. This is the acceptance half of the replay tier: the bench
// writes the artifact, the sentinel refuses to bless a run whose replays
// were not bit-exact against their recordings. Pure string processing.
//
// --promlint validates a Prometheus text-exposition file (the telemetry
// sampler's export format) against the format rules promtool enforces:
// metric/label name charsets, HELP/TYPE comment shape, TYPE before samples
// and at most one per metric, parseable sample values, and no duplicate
// (name, label-set) series. Pure string processing -- no lwmpi dependency.
//
// Exit status: 0 clean, 1 regression/lint errors found, 2 usage/io error.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/check_core.hpp"
#include "tools/json_mini.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

// ---------------------------------------------------------------------------
// --promlint: Prometheus text-exposition linter
// ---------------------------------------------------------------------------

bool valid_metric_name(const std::string& s) {
  if (s.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_' || s[0] == ':')) {
    return false;
  }
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':')) {
      return false;
    }
  }
  return true;
}

bool valid_label_name(const std::string& s) {
  if (s.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_')) return false;
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) return false;
  }
  return true;
}

bool valid_sample_value(const std::string& s) {
  if (s.empty()) return false;
  if (s == "NaN" || s == "+Inf" || s == "-Inf") return true;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

struct PromLinter {
  int errors = 0;
  int samples = 0;
  std::set<std::string> helped;
  std::set<std::string> typed;
  std::set<std::string> sampled;  // metrics that have emitted a sample
  std::set<std::string> series;   // name + canonical label set

  void fail(int line, const char* what, const std::string& detail) {
    std::fprintf(stderr, "promlint:%d: %s: %s\n", line, what, detail.c_str());
    ++errors;
  }

  void comment(int lineno, const std::string& line) {
    // "# HELP <name> <text>" / "# TYPE <name> <type>"; any other comment is
    // fine and ignored.
    std::istringstream is(line);
    std::string hash, kw, name;
    is >> hash >> kw >> name;
    if (kw != "HELP" && kw != "TYPE") return;
    if (!valid_metric_name(name)) {
      fail(lineno, "bad metric name in comment", name);
      return;
    }
    if (kw == "HELP") {
      if (!helped.insert(name).second) fail(lineno, "duplicate HELP", name);
      return;
    }
    std::string type;
    is >> type;
    if (type != "counter" && type != "gauge" && type != "histogram" &&
        type != "summary" && type != "untyped") {
      fail(lineno, "unknown TYPE", name + " " + type);
    }
    if (!typed.insert(name).second) fail(lineno, "duplicate TYPE", name);
    if (sampled.count(name) != 0) fail(lineno, "TYPE after samples", name);
  }

  void sample(int lineno, const std::string& line) {
    // <name>[{label="value",...}] <value> [<timestamp>]
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ' && line[i] != '\t') ++i;
    const std::string name = line.substr(0, i);
    if (!valid_metric_name(name)) {
      fail(lineno, "bad metric name", name);
      return;
    }
    std::vector<std::string> labels;
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        std::size_t eq = line.find('=', i);
        if (eq == std::string::npos) {
          fail(lineno, "unterminated label pair", line.substr(i));
          return;
        }
        const std::string lname = line.substr(i, eq - i);
        if (!valid_label_name(lname)) {
          fail(lineno, "bad label name", lname);
          return;
        }
        if (eq + 1 >= line.size() || line[eq + 1] != '"') {
          fail(lineno, "unquoted label value", lname);
          return;
        }
        std::size_t j = eq + 2;
        std::string lvalue;
        while (j < line.size() && line[j] != '"') {
          if (line[j] == '\\' && j + 1 < line.size()) {
            lvalue += line[j + 1];
            j += 2;
          } else {
            lvalue += line[j++];
          }
        }
        if (j >= line.size()) {
          fail(lineno, "unterminated label value", lname);
          return;
        }
        labels.push_back(lname + "=" + lvalue);
        i = j + 1;
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i >= line.size()) {
        fail(lineno, "unterminated label set", name);
        return;
      }
      ++i;  // '}'
    }
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t vend = i;
    while (vend < line.size() && line[vend] != ' ' && line[vend] != '\t') ++vend;
    const std::string value = line.substr(i, vend - i);
    if (!valid_sample_value(value)) {
      fail(lineno, "unparseable sample value", name + " '" + value + "'");
      return;
    }
    // Canonical series key: sorted labels make duplicate detection
    // order-insensitive (promtool treats reordered labels as the same series).
    std::sort(labels.begin(), labels.end());
    std::string key = name + "{";
    for (const std::string& l : labels) key += l + ",";
    key += "}";
    if (!series.insert(key).second) fail(lineno, "duplicate series", key);
    sampled.insert(name);
    ++samples;
  }
};

int run_promlint(const char* path) {
  std::string body;
  if (!read_file(path, body)) {
    std::fprintf(stderr, "bench_check: cannot read %s\n", path);
    return 2;
  }
  PromLinter lint;
  std::istringstream is(body);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      lint.comment(lineno, line);
    } else {
      lint.sample(lineno, line);
    }
  }
  // Every sampled metric should carry HELP and TYPE metadata: this is what
  // keeps the exporter self-describing, and it is the lint promtool's
  // "no help text" / "no type hint" warnings enforce.
  for (const std::string& name : lint.sampled) {
    if (lint.helped.count(name) == 0) lint.fail(0, "metric without HELP", name);
    if (lint.typed.count(name) == 0) lint.fail(0, "metric without TYPE", name);
  }
  if (lint.errors != 0) {
    std::fprintf(stderr, "promlint: %d error(s) in %s\n", lint.errors, path);
    return 1;
  }
  std::printf("promlint: %s OK (%d samples, %zu series, %zu metrics)\n", path,
              lint.samples, lint.series.size(), lint.typed.size());
  return 0;
}

// ---------------------------------------------------------------------------
// --profcheck: aggregate-profiler artifact schema validator
// ---------------------------------------------------------------------------

struct ProfChecker {
  int errors = 0;
  void fail(const char* what, const std::string& detail) {
    std::fprintf(stderr, "profcheck: %s: %s\n", what, detail.c_str());
    ++errors;
  }
  bool require_num(const jsonmini::JValue& o, const char* key, const char* where) {
    const jsonmini::JValue* v = o.get(key);
    if (v == nullptr || v->kind != jsonmini::JValue::Kind::Num) {
      fail("missing numeric field", std::string(where) + "." + key);
      return false;
    }
    return true;
  }
  bool require_str(const jsonmini::JValue& o, const char* key, const char* where) {
    const jsonmini::JValue* v = o.get(key);
    if (v == nullptr || v->kind != jsonmini::JValue::Kind::Str) {
      fail("missing string field", std::string(where) + "." + key);
      return false;
    }
    return true;
  }
};

int run_profcheck(const char* path) {
  std::string body;
  if (!read_file(path, body)) {
    std::fprintf(stderr, "bench_check: cannot read %s\n", path);
    return 2;
  }
  bool parsed = false;
  const jsonmini::JValue root = jsonmini::parse(body, &parsed);
  if (!parsed || root.kind != jsonmini::JValue::Kind::Obj) {
    std::fprintf(stderr, "profcheck: %s is not well-formed JSON\n", path);
    return 1;
  }
  ProfChecker c;

  const jsonmini::JValue* ver = root.get("lwmpi_profile");
  if (ver == nullptr || ver->kind != jsonmini::JValue::Kind::Num || ver->u64() != 1) {
    c.fail("bad version key", "lwmpi_profile must be 1");
  }
  long nranks = 0;
  if (c.require_num(root, "nranks", "root")) nranks = root.get("nranks")->i64();
  if (nranks < 1) c.fail("bad rank count", std::to_string(nranks));
  if (c.require_num(root, "nvcis", "root") && root.get("nvcis")->i64() < 1) {
    c.fail("bad vci count", std::to_string(root.get("nvcis")->i64()));
  }
  c.require_str(root, "netmod", "root");
  c.require_num(root, "phase_overflows", "root");

  std::size_t nphases = 0;
  const jsonmini::JValue* phases = root.get("phases");
  if (phases == nullptr || phases->kind != jsonmini::JValue::Kind::Arr ||
      phases->arr.empty()) {
    c.fail("missing array", "root.phases (needs at least the default phase)");
  } else {
    nphases = phases->arr.size();
    for (const jsonmini::JValue& p : phases->arr) {
      if (p.kind != jsonmini::JValue::Kind::Str) c.fail("non-string phase name", path);
    }
  }

  std::size_t ncallsites = 0;
  const jsonmini::JValue* ranks = root.get("ranks");
  if (ranks == nullptr || ranks->kind != jsonmini::JValue::Kind::Arr ||
      ranks->arr.size() != static_cast<std::size_t>(nranks)) {
    c.fail("ranks array size mismatch",
           "expected " + std::to_string(nranks) + " entries");
  } else {
    for (const jsonmini::JValue& r : ranks->arr) {
      c.require_num(r, "rank", "ranks[]");
      c.require_num(r, "pop_warnings", "ranks[]");
      const jsonmini::JValue* rp = r.get("phases");
      if (rp == nullptr || rp->kind != jsonmini::JValue::Kind::Arr) {
        c.fail("missing array", "ranks[].phases");
        continue;
      }
      for (const jsonmini::JValue& ph : rp->arr) {
        c.require_str(ph, "phase", "ranks[].phases[]");
        c.require_num(ph, "time_ns", "ranks[].phases[]");
        const jsonmini::JValue* css = ph.get("callsites");
        if (css == nullptr || css->kind != jsonmini::JValue::Kind::Arr) {
          c.fail("missing array", "ranks[].phases[].callsites");
          continue;
        }
        for (const jsonmini::JValue& cs : css->arr) {
          ++ncallsites;
          c.require_str(cs, "site", "callsites[]");
          c.require_num(cs, "vci", "callsites[]");
          c.require_num(cs, "count", "callsites[]");
          c.require_num(cs, "bytes", "callsites[]");
          c.require_num(cs, "time_ns", "callsites[]");
          const jsonmini::JValue* cost = cs.get("cost");
          if (cost == nullptr || cost->kind != jsonmini::JValue::Kind::Obj ||
              cost->obj.empty()) {
            c.fail("missing cost-group object", "callsites[].cost");
          }
        }
      }
    }
  }

  std::size_t ncells = 0;
  const jsonmini::JValue* matrix = root.get("matrix");
  if (matrix == nullptr || matrix->kind != jsonmini::JValue::Kind::Arr) {
    c.fail("missing array", "root.matrix");
  } else {
    for (const jsonmini::JValue& cell : matrix->arr) {
      ++ncells;
      if (c.require_num(cell, "src", "matrix[]") &&
          (cell.get("src")->i64() < 0 || cell.get("src")->i64() >= nranks)) {
        c.fail("matrix src out of range", std::to_string(cell.get("src")->i64()));
      }
      if (c.require_num(cell, "dst", "matrix[]") &&
          (cell.get("dst")->i64() < 0 || cell.get("dst")->i64() >= nranks)) {
        c.fail("matrix dst out of range", std::to_string(cell.get("dst")->i64()));
      }
      if (c.require_str(cell, "class", "matrix[]")) {
        const std::string& cls = cell.get("class")->str;
        if (cls != "eager" && cls != "rdv" && cls != "ctrl" && cls != "zcopy") {
          c.fail("unknown message class", cls);
        }
      }
      c.require_num(cell, "count", "matrix[]");
      c.require_num(cell, "bytes", "matrix[]");
    }
  }

  if (c.errors != 0) {
    std::fprintf(stderr, "profcheck: %d error(s) in %s\n", c.errors, path);
    return 1;
  }
  std::printf("profcheck: %s OK (%ld ranks, %zu phases, %zu callsite rows, "
              "%zu matrix cells)\n",
              path, nranks, nphases, ncallsites, ncells);
  return 0;
}

// ---------------------------------------------------------------------------
// --replaycheck: trace-replay bench artifact validator
// ---------------------------------------------------------------------------

int run_replaycheck(const char* path) {
  std::string body;
  if (!read_file(path, body)) {
    std::fprintf(stderr, "bench_check: cannot read %s\n", path);
    return 2;
  }
  const lwmpi::tools::BenchFile bf = lwmpi::tools::parse_bench_json(body);
  if (!bf.ok || bf.bench != "replay") {
    std::fprintf(stderr, "replaycheck: %s is not a BENCH_replay.json artifact\n", path);
    return 1;
  }

  auto find = [&bf](const std::string& label) -> const lwmpi::tools::Entry* {
    for (const lwmpi::tools::Entry& e : bf.entries) {
      if (e.label == label) return &e;
    }
    return nullptr;
  };

  int errors = 0;
  auto fail = [&errors](const char* what, const std::string& detail) {
    std::fprintf(stderr, "replaycheck: %s: %s\n", what, detail.c_str());
    ++errors;
  };

  // The cell grid bench_replay sweeps, and the unit every field must carry.
  static const char* kBundles[] = {"stencil4", "md8", "storm4"};
  static const char* kNetmods[] = {"mailbox", "rdma"};
  static const struct {
    const char* suffix;
    const char* unit;
  } kFields[] = {
      {"_ops_per_sec", "ops/s"}, {"_replayed", "count"}, {"_skipped", "count"},
      {"_timeouts", "count"},    {"_fidelity_exact", "bool"},
  };

  int cells = 0;
  for (const char* bundle : kBundles) {
    for (const char* netmod : kNetmods) {
      const std::string cell = std::string(bundle) + "_" + netmod;
      ++cells;
      for (const auto& f : kFields) {
        const lwmpi::tools::Entry* e = find(cell + f.suffix);
        if (e == nullptr) {
          fail("missing entry", cell + f.suffix);
          continue;
        }
        if (e->unit != f.unit) {
          fail("wrong unit", cell + f.suffix + ": '" + e->unit + "' (want '" +
                                 f.unit + "')");
        }
      }
      // The gates the bench itself enforces; a hand-edited or stale artifact
      // that slipped past them fails here.
      if (const lwmpi::tools::Entry* e = find(cell + "_fidelity_exact");
          e != nullptr && e->value != 1.0) {
        fail("fidelity not exact", cell);
      }
      if (const lwmpi::tools::Entry* e = find(cell + "_timeouts");
          e != nullptr && e->value != 0.0) {
        fail("replay hit timeouts", cell);
      }
      if (const lwmpi::tools::Entry* e = find(cell + "_replayed");
          e != nullptr && e->value <= 0.0) {
        fail("nothing replayed", cell);
      }
    }
  }

  // Captured-pvar entries ride along per cell; only their unit convention is
  // schema (which pvars are captured is the bench's choice).
  for (const lwmpi::tools::Entry& e : bf.entries) {
    const bool is_ns = e.label.size() >= 3 &&
                       e.label.compare(e.label.size() - 3, 3, "_ns") == 0;
    if (is_ns && e.unit != "ns") fail("ns-suffixed entry not in ns", e.label);
  }

  if (errors != 0) {
    std::fprintf(stderr, "replaycheck: %d error(s) in %s\n", errors, path);
    return 1;
  }
  std::printf("replaycheck: %s OK (%d cells, %zu entries)\n", path, cells,
              bf.entries.size());
  return 0;
}

bool copy_file(const std::string& from, const std::string& to) {
  std::string body;
  if (!read_file(from, body)) return false;
  std::ofstream out(to, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << body;
  return static_cast<bool>(out);
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_check [--tolerance <frac>] [--update] "
               "<baseline-dir> <current-dir> [name...]\n"
               "       bench_check --promlint <exposition.prom>\n"
               "       bench_check --profcheck <profile.json>\n"
               "       bench_check --replaycheck <BENCH_replay.json>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  double tolerance = -1.0;  // report-only for non-exact units by default
  bool update = false;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--promlint") == 0) {
      if (i + 1 >= argc) return usage();
      return run_promlint(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--profcheck") == 0) {
      if (i + 1 >= argc) return usage();
      return run_profcheck(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--replaycheck") == 0) {
      if (i + 1 >= argc) return usage();
      return run_replaycheck(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--update") == 0) {
      update = true;
    } else if (std::strcmp(argv[i], "--tolerance") == 0) {
      if (i + 1 >= argc) return usage();
      tolerance = std::strtod(argv[++i], nullptr);
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      pos.emplace_back(argv[i]);
    }
  }
  if (pos.size() < 2) return usage();
  const std::string baseline_dir = pos[0];
  const std::string current_dir = pos[1];
  std::vector<std::string> names(pos.begin() + 2, pos.end());
  if (names.empty()) {
    // Deterministic benches plus the per-backend rate figures. The rate
    // artifacts carry only report-only units (msg/s), so by default they
    // guard schema (labels/units) rather than timing.
    names = {"table1", "fig2", "fig3_mailbox", "fig3_rdma", "fig4_mailbox", "fig4_rdma"};
  }

  bool all_ok = true;
  for (const std::string& name : names) {
    const std::string file = "BENCH_" + name + ".json";
    const std::string base_path = baseline_dir + "/" + file;
    const std::string cur_path = current_dir + "/" + file;

    if (update) {
      if (!copy_file(cur_path, base_path)) {
        std::fprintf(stderr, "bench_check: cannot copy %s -> %s\n", cur_path.c_str(),
                     base_path.c_str());
        return 2;
      }
      std::printf("updated %s\n", base_path.c_str());
      continue;
    }

    std::string base_body;
    std::string cur_body;
    if (!read_file(base_path, base_body)) {
      std::fprintf(stderr, "bench_check: cannot read baseline %s\n", base_path.c_str());
      return 2;
    }
    if (!read_file(cur_path, cur_body)) {
      std::fprintf(stderr, "bench_check: cannot read current %s\n", cur_path.c_str());
      return 2;
    }
    const lwmpi::tools::BenchFile base = lwmpi::tools::parse_bench_json(base_body);
    const lwmpi::tools::BenchFile cur = lwmpi::tools::parse_bench_json(cur_body);
    if (!base.ok || !cur.ok) {
      std::fprintf(stderr, "bench_check: malformed json for bench '%s'\n", name.c_str());
      return 2;
    }

    const lwmpi::tools::CompareResult r = lwmpi::tools::compare(base, cur, tolerance);
    std::printf("%-8s %-4s (%zu baseline entries", name.c_str(), r.ok ? "OK" : "FAIL",
                base.entries.size());
    if (!r.diffs.empty()) std::printf(", %zu diffs", r.diffs.size());
    std::printf(")\n");
    for (const lwmpi::tools::Diff& d : r.diffs) {
      std::printf("  [%s] %s (%s): baseline %.6g, current %.6g\n",
                  lwmpi::tools::to_string(d.kind), d.label.c_str(), d.unit.c_str(),
                  d.baseline, d.current);
    }
    all_ok = all_ok && r.ok;
  }
  if (!update && !all_ok) {
    std::fprintf(stderr,
                 "bench_check: regression detected; if the change is intended, refresh "
                 "the baselines with --update and commit them.\n");
    return 1;
  }
  return 0;
}
