// lwmpi_prof: render and diff the aggregate profiler's JSON artifacts.
//
// The profiler (src/obs/profiler.hpp) writes a versioned profile artifact at
// World teardown (WorldOptions::prof_path / LWMPI_CVAR_PROF_PATH). This tool
// consumes that artifact:
//
//   lwmpi_prof profile.json            per-phase summary, top callsites, and
//                                      an ANSI rank x rank heatmap of the
//                                      communication matrix
//   lwmpi_prof --diff a.json b.json    compare two runs: per-callsite count /
//                                      bytes / time deltas and matrix deltas
//   lwmpi_prof --demo [--out F]        run a live 2-rank skewed workload with
//                                      profiling on, write the artifact, and
//                                      render it (the tool's acceptance test)
//
// The heatmap colors each (src, dst) cell by total bytes relative to the
// hottest pair (256-color grayscale ramp on a tty, an ASCII density ramp
// otherwise), so congestion structure -- a hot halo neighbor, an all-to-all
// wall, a lopsided root -- is visible at a glance.
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "obs/jsonl.hpp"
#include "runtime/world.hpp"
#include "tools/json_mini.hpp"

namespace {

using jsonmini::JValue;

// --- artifact model ---------------------------------------------------------

struct SiteAgg {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
  std::uint64_t time_ns = 0;
};

struct Profile {
  int nranks = 0;
  std::string netmod;
  std::vector<std::string> phases;
  // phase name -> per-rank MPI time (ns), index = rank
  std::map<std::string, std::vector<std::uint64_t>> phase_time;
  // site name -> totals summed over ranks, phases, vcis
  std::map<std::string, SiteAgg> sites;
  // (src * nranks + dst) -> bytes, split by class name, plus all-class total
  std::map<std::string, std::vector<std::uint64_t>> matrix_by_class;
  std::vector<std::uint64_t> matrix_total;  // nranks * nranks
  std::uint64_t pop_warnings = 0;
  std::uint64_t phase_overflows = 0;
};

bool load_profile(const char* path, Profile* out, std::string* err) {
  // The artifact is one newline-terminated JSON line; the tolerant reader
  // (obs/jsonl.hpp) drops a half-appended tail -- e.g. a re-profiled run
  // killed mid-write over an old artifact -- instead of failing the parse.
  lwmpi::obs::JsonlFile file;
  if (!lwmpi::obs::read_jsonl(path, &file)) {
    *err = std::string("cannot open ") + path;
    return false;
  }
  if (file.lines.empty()) {
    *err = std::string("no complete JSON line in ") + path;
    return false;
  }
  bool ok = false;
  const JValue root = jsonmini::parse(file.lines.front(), &ok);
  if (!ok || root.kind != JValue::Kind::Obj) {
    *err = std::string("malformed JSON in ") + path;
    return false;
  }
  const JValue* ver = root.get("lwmpi_profile");
  if (ver == nullptr || ver->u64() != 1) {
    *err = std::string(path) + " is not a lwmpi_profile v1 artifact";
    return false;
  }
  out->nranks = root.get("nranks") != nullptr ? static_cast<int>(root.get("nranks")->u64()) : 0;
  if (const JValue* nm = root.get("netmod"); nm != nullptr) out->netmod = nm->str;
  if (const JValue* po = root.get("phase_overflows"); po != nullptr) {
    out->phase_overflows = po->u64();
  }
  if (const JValue* ph = root.get("phases"); ph != nullptr) {
    for (const JValue& p : ph->arr) out->phases.push_back(p.str);
  }
  const std::size_t n = static_cast<std::size_t>(out->nranks);
  out->matrix_total.assign(n * n, 0);

  if (const JValue* ranks = root.get("ranks"); ranks != nullptr) {
    for (const JValue& r : ranks->arr) {
      const int rank = r.get("rank") != nullptr ? static_cast<int>(r.get("rank")->u64()) : 0;
      if (const JValue* pw = r.get("pop_warnings"); pw != nullptr) {
        out->pop_warnings += pw->u64();
      }
      const JValue* phases = r.get("phases");
      if (phases == nullptr) continue;
      for (const JValue& p : phases->arr) {
        const JValue* name = p.get("phase");
        if (name == nullptr) continue;
        auto& per_rank = out->phase_time[name->str];
        if (per_rank.size() < n) per_rank.resize(n, 0);
        if (rank >= 0 && static_cast<std::size_t>(rank) < n) {
          per_rank[static_cast<std::size_t>(rank)] +=
              p.get("time_ns") != nullptr ? p.get("time_ns")->u64() : 0;
        }
        const JValue* css = p.get("callsites");
        if (css == nullptr) continue;
        for (const JValue& cs : css->arr) {
          const JValue* site = cs.get("site");
          if (site == nullptr) continue;
          SiteAgg& a = out->sites[site->str];
          a.count += cs.get("count") != nullptr ? cs.get("count")->u64() : 0;
          a.bytes += cs.get("bytes") != nullptr ? cs.get("bytes")->u64() : 0;
          a.time_ns += cs.get("time_ns") != nullptr ? cs.get("time_ns")->u64() : 0;
        }
      }
    }
  }
  if (const JValue* m = root.get("matrix"); m != nullptr) {
    for (const JValue& cell : m->arr) {
      const int src = cell.get("src") != nullptr ? static_cast<int>(cell.get("src")->u64()) : -1;
      const int dst = cell.get("dst") != nullptr ? static_cast<int>(cell.get("dst")->u64()) : -1;
      if (src < 0 || dst < 0 || static_cast<std::size_t>(src) >= n ||
          static_cast<std::size_t>(dst) >= n) {
        continue;
      }
      const std::uint64_t bytes =
          cell.get("bytes") != nullptr ? cell.get("bytes")->u64() : 0;
      const std::string cls =
          cell.get("class") != nullptr ? cell.get("class")->str : "?";
      auto& per_class = out->matrix_by_class[cls];
      if (per_class.size() < n * n) per_class.resize(n * n, 0);
      const std::size_t idx = static_cast<std::size_t>(src) * n + static_cast<std::size_t>(dst);
      per_class[idx] += bytes;
      out->matrix_total[idx] += bytes;
    }
  }
  return true;
}

// --- rendering --------------------------------------------------------------

std::string human_bytes(std::uint64_t b) {
  char buf[32];
  if (b >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.1fGiB", static_cast<double>(b) / (1ull << 30));
  } else if (b >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1fMiB", static_cast<double>(b) / (1ull << 20));
  } else if (b >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.1fKiB", static_cast<double>(b) / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB", static_cast<unsigned long long>(b));
  }
  return buf;
}

// Heatmap of the all-class byte matrix. Each cell is two columns wide; the
// intensity scale is linear in bytes relative to the hottest cell.
void render_heatmap(const Profile& p, bool color) {
  const std::size_t n = static_cast<std::size_t>(p.nranks);
  if (n == 0) return;
  std::uint64_t max_b = 0;
  for (std::uint64_t b : p.matrix_total) max_b = std::max(max_b, b);
  std::printf("comm matrix (rows = src, cols = dst, hottest pair = %s):\n",
              human_bytes(max_b).c_str());
  static const char* kRamp = " .:-=+*#%@";  // 10 density steps for non-tty
  std::printf("     ");
  for (std::size_t d = 0; d < n; ++d) std::printf("%2zu", d % 100);
  std::printf("\n");
  for (std::size_t s = 0; s < n; ++s) {
    std::printf("%4zu ", s);
    std::uint64_t row_tx = 0;
    for (std::size_t d = 0; d < n; ++d) {
      const std::uint64_t b = p.matrix_total[s * n + d];
      row_tx += b;
      const double frac = max_b == 0 ? 0.0 : static_cast<double>(b) / max_b;
      if (color) {
        // 256-color grayscale ramp: 232 (near-black) .. 255 (white).
        const int shade = b == 0 ? 232 : 236 + static_cast<int>(frac * 19.0);
        std::printf("\x1b[48;5;%dm  \x1b[0m", std::min(shade, 255));
      } else {
        const int step = b == 0 ? 0 : 1 + static_cast<int>(frac * 8.0);
        const char c = kRamp[std::min(step, 9)];
        std::printf("%c%c", c, c);
      }
    }
    std::printf("  tx=%s\n", human_bytes(row_tx).c_str());
  }
  // Per-class totals, so the eager / rendezvous / zcopy split is visible
  // without reading raw JSON.
  std::printf("class split:");
  for (const auto& [cls, cells] : p.matrix_by_class) {
    std::uint64_t t = 0;
    for (std::uint64_t b : cells) t += b;
    std::printf("  %s=%s", cls.c_str(), human_bytes(t).c_str());
  }
  std::printf("\n");
}

void render_summary(const Profile& p, bool color) {
  std::printf("lwmpi profile: %d rank(s), netmod %s, %zu phase(s)\n", p.nranks,
              p.netmod.c_str(), p.phases.size());
  if (p.pop_warnings != 0 || p.phase_overflows != 0) {
    std::printf("  warnings: %llu unbalanced phase pop(s), %llu phase-table overflow(s)\n",
                static_cast<unsigned long long>(p.pop_warnings),
                static_cast<unsigned long long>(p.phase_overflows));
  }
  for (const std::string& ph : p.phases) {
    const auto it = p.phase_time.find(ph);
    if (it == p.phase_time.end()) continue;
    std::uint64_t max_ns = 0;
    std::uint64_t sum_ns = 0;
    std::size_t max_rank = 0;
    for (std::size_t r = 0; r < it->second.size(); ++r) {
      sum_ns += it->second[r];
      if (it->second[r] > max_ns) {
        max_ns = it->second[r];
        max_rank = r;
      }
    }
    const double mean = p.nranks > 0 ? static_cast<double>(sum_ns) / p.nranks : 0.0;
    std::printf("phase \"%s\": mpi time max=%.1fus (rank %zu) mean=%.1fus imbalance=%.2fx\n",
                ph.c_str(), max_ns / 1e3, max_rank, mean / 1e3,
                mean > 0.0 ? max_ns / mean : 1.0);
  }
  // Top callsites by time.
  std::vector<std::pair<std::string, SiteAgg>> top(p.sites.begin(), p.sites.end());
  std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
    return a.second.time_ns > b.second.time_ns;
  });
  if (top.size() > 8) top.resize(8);
  std::printf("top callsites (by MPI time, all ranks):\n");
  for (const auto& [site, a] : top) {
    std::printf("  %-22s count=%-10llu bytes=%-10s time=%.1fus\n", site.c_str(),
                static_cast<unsigned long long>(a.count), human_bytes(a.bytes).c_str(),
                a.time_ns / 1e3);
  }
  render_heatmap(p, color);
}

// --- diff -------------------------------------------------------------------

int run_diff(const char* path_a, const char* path_b, bool color) {
  Profile a;
  Profile b;
  std::string err;
  if (!load_profile(path_a, &a, &err) || !load_profile(path_b, &b, &err)) {
    std::fprintf(stderr, "lwmpi_prof: %s\n", err.c_str());
    return 1;
  }
  std::printf("diff %s (A) vs %s (B):\n", path_a, path_b);
  if (a.nranks != b.nranks) {
    std::printf("  nranks: %d -> %d\n", a.nranks, b.nranks);
  }
  if (a.netmod != b.netmod) {
    std::printf("  netmod: %s -> %s\n", a.netmod.c_str(), b.netmod.c_str());
  }
  // Per-callsite deltas over the union of sites, sorted by |time delta|.
  struct Row {
    std::string site;
    SiteAgg a, b;
  };
  std::vector<Row> rows;
  for (const auto& [site, agg] : a.sites) {
    Row r{site, agg, {}};
    if (const auto it = b.sites.find(site); it != b.sites.end()) r.b = it->second;
    rows.push_back(std::move(r));
  }
  for (const auto& [site, agg] : b.sites) {
    if (a.sites.find(site) == a.sites.end()) rows.push_back(Row{site, {}, agg});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& x, const Row& y) {
    const auto dx = x.b.time_ns > x.a.time_ns ? x.b.time_ns - x.a.time_ns
                                              : x.a.time_ns - x.b.time_ns;
    const auto dy = y.b.time_ns > y.a.time_ns ? y.b.time_ns - y.a.time_ns
                                              : y.a.time_ns - y.b.time_ns;
    return dx > dy;
  });
  std::printf("%-22s %14s %14s %16s\n", "CALLSITE", "dCOUNT", "dBYTES", "dTIME");
  for (const Row& r : rows) {
    const auto dcount = static_cast<long long>(r.b.count) - static_cast<long long>(r.a.count);
    const auto dbytes = static_cast<long long>(r.b.bytes) - static_cast<long long>(r.a.bytes);
    const double dtime_us =
        (static_cast<double>(r.b.time_ns) - static_cast<double>(r.a.time_ns)) / 1e3;
    if (dcount == 0 && dbytes == 0 && r.a.time_ns == r.b.time_ns) continue;
    std::printf("%-22s %+14lld %+14lld %+15.1fus\n", r.site.c_str(), dcount, dbytes,
                dtime_us);
  }
  // Matrix byte delta: total plus the biggest single-pair movement.
  std::uint64_t tot_a = 0;
  std::uint64_t tot_b = 0;
  for (std::uint64_t v : a.matrix_total) tot_a += v;
  for (std::uint64_t v : b.matrix_total) tot_b += v;
  std::printf("matrix bytes: %s -> %s (%+lld)\n", human_bytes(tot_a).c_str(),
              human_bytes(tot_b).c_str(),
              static_cast<long long>(tot_b) - static_cast<long long>(tot_a));
  if (a.nranks == b.nranks && a.nranks > 0) {
    const std::size_t n = static_cast<std::size_t>(a.nranks);
    std::size_t hot = 0;
    long long hot_d = 0;
    for (std::size_t i = 0; i < n * n; ++i) {
      const long long d = static_cast<long long>(b.matrix_total[i]) -
                          static_cast<long long>(a.matrix_total[i]);
      if (std::llabs(d) > std::llabs(hot_d)) {
        hot_d = d;
        hot = i;
      }
    }
    if (hot_d != 0) {
      std::printf("largest pair delta: %zu -> %zu  %+lld bytes\n", hot / n, hot % n, hot_d);
    }
    std::printf("B heatmap:\n");
    render_heatmap(b, color);
  }
  return 0;
}

// --- demo -------------------------------------------------------------------

// Live skewed workload: rank 0 streams most of the traffic, phases split the
// run into "halo" and "reduce" regions. Exits 0 iff the written artifact
// round-trips with nonzero callsite counts and matrix bytes.
int run_demo(const char* out_path, bool color) {
  using namespace lwmpi;
  {
    WorldOptions o;
    o.prof = true;
    o.prof_default_phase = "setup";
    o.prof_path = out_path;
    World w(2, o);
    w.phase_push("halo");
    w.run([](Engine& e) {
      std::uint64_t buf[64] = {};
      if (e.world_rank() == 0) {
        for (int i = 0; i < 200; ++i) e.send(buf, 64, kUint64, 1, 7, kCommWorld);
      } else {
        for (int i = 0; i < 200; ++i) e.recv(buf, 64, kUint64, 0, 7, kCommWorld, nullptr);
      }
    });
    w.phase_pop();
    w.phase_push("reduce");
    w.run([](Engine& e) {
      std::uint64_t in = 1;
      std::uint64_t out = 0;
      for (int i = 0; i < 50; ++i) {
        e.allreduce(&in, &out, 1, kUint64, ReduceOp::Sum, kCommWorld);
      }
    });
    w.phase_pop();
    // ~World writes the artifact.
  }
  Profile p;
  std::string err;
  if (!load_profile(out_path, &p, &err)) {
    std::fprintf(stderr, "lwmpi_prof: demo artifact unreadable: %s\n", err.c_str());
    return 1;
  }
  render_summary(p, color);
  std::uint64_t matrix_bytes = 0;
  for (std::uint64_t v : p.matrix_total) matrix_bytes += v;
  std::uint64_t calls = 0;
  for (const auto& [site, a] : p.sites) calls += a.count;
  std::printf("\ndemo complete: %llu call(s) across %zu callsite(s), %s on the matrix\n",
              static_cast<unsigned long long>(calls), p.sites.size(),
              human_bytes(matrix_bytes).c_str());
  if (calls == 0 || matrix_bytes == 0 || p.phases.size() < 3) {
    std::fprintf(stderr, "lwmpi_prof: demo failed (%s)\n",
                 calls == 0         ? "no callsites recorded"
                 : matrix_bytes == 0 ? "empty comm matrix"
                                     : "phase regions missing");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool demo = false;
  bool diff = false;
  bool no_color = false;
  const char* out_path = "lwmpi_prof_demo_profile.json";
  std::vector<const char*> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else if (std::strcmp(argv[i], "--diff") == 0) {
      diff = true;
    } else if (std::strcmp(argv[i], "--no-color") == 0) {
      no_color = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      paths.push_back(argv[i]);
    }
  }
  const bool color = !no_color && isatty(STDOUT_FILENO) != 0;
  if (demo) return run_demo(out_path, color);
  if (diff) {
    if (paths.size() != 2) {
      std::fprintf(stderr, "usage: lwmpi_prof --diff <a.json> <b.json>\n");
      return 2;
    }
    return run_diff(paths[0], paths[1], color);
  }
  if (paths.size() != 1) {
    std::fprintf(stderr,
                 "usage: lwmpi_prof <profile.json>\n"
                 "       lwmpi_prof --diff <a.json> <b.json>\n"
                 "       lwmpi_prof --demo [--out profile.json]\n");
    return 2;
  }
  Profile p;
  std::string err;
  if (!load_profile(paths[0], &p, &err)) {
    std::fprintf(stderr, "lwmpi_prof: %s\n", err.c_str());
    return 1;
  }
  render_summary(p, color);
  return 0;
}
