// hangdump: pretty-printer for lwmpi watchdog hang reports.
//
// The watchdog (src/obs/watchdog.hpp) diagnoses progress stalls and, when
// given a report_path, writes the diagnosis as JSON. This tool renders that
// file back into the human-readable form for postmortem reading -- the MPIR
// message-queue-dump workflow, minus the debugger:
//
//   hangdump report.json              pretty-print a saved hang report
//   hangdump --timeline report.json   also render the embedded sampler
//                                     timeline (the last-N-intervals rate
//                                     history a telemetry-attached watchdog
//                                     records leading into the stall)
//   hangdump --demo                   force a live 2-rank deadlock (with a
//                                     sampler attached) and print its
//                                     diagnosis plus timeline
//
// The parser (tools/json_mini.hpp) is a minimal recursive-descent JSON
// reader: it handles exactly the value shapes obs::render_json produces, and
// rejects anything malformed rather than guessing.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "obs/cvar.hpp"
#include "obs/jsonl.hpp"
#include "obs/sampler.hpp"
#include "obs/watchdog.hpp"
#include "runtime/world.hpp"
#include "tools/json_mini.hpp"

namespace {

using jsonmini::JValue;

// ---------------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------------

std::string fmt_ms(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(ns) / 1e6);
  return buf;
}

void print_entry(const char* label, const JValue& e) {
  const JValue* comm = e.get("comm");
  std::printf("      %s comm=%s src=%ld tag=%ld bytes=%llu age=%s%s\n", label,
              comm != nullptr ? comm->str.c_str() : "?",
              e.get("src") != nullptr ? e.get("src")->i64() : 0,
              e.get("tag") != nullptr ? e.get("tag")->i64() : 0,
              static_cast<unsigned long long>(
                  e.get("bytes") != nullptr ? e.get("bytes")->u64() : 0),
              e.get("age_ns") != nullptr ? fmt_ms(e.get("age_ns")->u64()).c_str() : "?",
              e.get("arrival_order") != nullptr && e.get("arrival_order")->b
                  ? " [arrival-order]"
                  : "");
}

double num_of(const JValue& o, const char* key) {
  const JValue* v = o.get(key);
  return v != nullptr ? v->num : 0.0;
}

// Pretty-print the sampler timeline block: one line per (interval, rank),
// newest last, so the rate history reads top-to-bottom into the hang.
void print_timeline(const JValue& timeline) {
  if (timeline.kind != JValue::Kind::Arr || timeline.arr.empty()) {
    std::printf("\n(no sampler timeline in this report)\n");
    return;
  }
  std::printf("\n=== telemetry timeline: last %zu interval-sample(s) ===\n",
              timeline.arr.size());
  std::printf("%5s %4s %9s %10s %10s %6s %6s %7s %6s  %s\n", "seq", "rank", "dt",
              "sends/s", "recvs/s", "uexq", "+uexq", "stall%", "idle%", "alerts");
  for (const JValue& s : timeline.arr) {
    const JValue* alerts = s.get("alerts");
    std::string fired;
    if (alerts != nullptr) {
      for (const JValue& a : alerts->arr) {
        const JValue* rule = a.get("rule");
        if (rule == nullptr) continue;
        if (!fired.empty()) fired += ' ';
        char buf[96];
        std::snprintf(buf, sizeof(buf), "%s(%.3g>%.3g)", rule->str.c_str(),
                      num_of(a, "value"), num_of(a, "threshold"));
        fired += buf;
      }
    }
    std::printf("%5llu %4ld %9s %10.0f %10.0f %6llu %+6lld %6.1f%% %5.1f%%  %s\n",
                static_cast<unsigned long long>(
                    s.get("seq") != nullptr ? s.get("seq")->u64() : 0),
                s.get("rank") != nullptr ? s.get("rank")->i64() : -1,
                fmt_ms(s.get("dt_ns") != nullptr ? s.get("dt_ns")->u64() : 0).c_str(),
                num_of(s, "sends_per_s"), num_of(s, "recvs_per_s"),
                static_cast<unsigned long long>(
                    s.get("unexpected_depth") != nullptr ? s.get("unexpected_depth")->u64()
                                                         : 0),
                static_cast<long long>(s.get("unexpected_growth") != nullptr
                                           ? s.get("unexpected_growth")->i64()
                                           : 0),
                num_of(s, "credit_stall_pct"), num_of(s, "idle_pct"),
                fired.empty() ? "-" : fired.c_str());
  }
}

int print_report(const JValue& root, bool with_timeline) {
  const JValue* stuck = root.get("stuck");
  const JValue* nranks = root.get("nranks");
  if (stuck == nullptr || stuck->kind != JValue::Kind::Arr || nranks == nullptr) {
    std::fprintf(stderr, "hangdump: not a watchdog report (missing stuck/nranks)\n");
    return 1;
  }
  std::printf("=== lwmpi hang diagnosis: %zu of %ld rank(s) stuck ===\n", stuck->arr.size(),
              nranks->i64());
  for (const JValue& s : stuck->arr) {
    const JValue* call = s.get("call");
    std::printf("rank %ld stuck in %s (blocked %s, no progress for %s)\n",
                s.get("rank") != nullptr ? s.get("rank")->i64() : -1,
                call != nullptr ? call->str.c_str() : "?",
                s.get("blocked_ns") != nullptr ? fmt_ms(s.get("blocked_ns")->u64()).c_str()
                                               : "?",
                s.get("stalled_ns") != nullptr ? fmt_ms(s.get("stalled_ns")->u64()).c_str()
                                               : "?");
    const JValue* snap = s.get("snapshot");
    if (snap == nullptr) continue;
    if (const JValue* oldest = snap->get("oldest");
        oldest != nullptr && oldest->kind == JValue::Kind::Obj) {
      std::printf("  oldest request: %s comm=%s peer=%ld tag=%ld bytes=%llu age=%s\n",
                  oldest->get("kind") != nullptr ? oldest->get("kind")->str.c_str() : "?",
                  oldest->get("comm") != nullptr ? oldest->get("comm")->str.c_str() : "?",
                  oldest->get("peer") != nullptr ? oldest->get("peer")->i64() : 0,
                  oldest->get("tag") != nullptr ? oldest->get("tag")->i64() : 0,
                  static_cast<unsigned long long>(
                      oldest->get("bytes") != nullptr ? oldest->get("bytes")->u64() : 0),
                  oldest->get("age_ns") != nullptr
                      ? fmt_ms(oldest->get("age_ns")->u64()).c_str()
                      : "?");
    }
    if (const JValue* vcis = snap->get("vcis"); vcis != nullptr) {
      for (const JValue& v : vcis->arr) {
        const JValue* posted = v.get("posted");
        const JValue* unexpected = v.get("unexpected");
        const JValue* sendq = v.get("send_queue");
        const std::size_t np = posted != nullptr ? posted->arr.size() : 0;
        const std::size_t nu = unexpected != nullptr ? unexpected->arr.size() : 0;
        const std::size_t nq = sendq != nullptr ? sendq->arr.size() : 0;
        if (np + nu + nq == 0) continue;
        std::printf("  vci %ld: posted=%zu unexpected=%zu sendq=%zu\n",
                    v.get("vci") != nullptr ? v.get("vci")->i64() : -1, np, nu, nq);
        if (posted != nullptr) {
          for (const JValue& e : posted->arr) print_entry("posted:    ", e);
        }
        if (unexpected != nullptr) {
          for (const JValue& e : unexpected->arr) print_entry("unexpected:", e);
        }
        if (sendq != nullptr) {
          for (const JValue& e : sendq->arr) {
            std::printf("      sendq:      dst=%ld tag=%ld bytes=%llu\n",
                        e.get("dst") != nullptr ? e.get("dst")->i64() : 0,
                        e.get("tag") != nullptr ? e.get("tag")->i64() : 0,
                        static_cast<unsigned long long>(
                            e.get("bytes") != nullptr ? e.get("bytes")->u64() : 0));
          }
        }
      }
    }
    if (const JValue* moves = s.get("last_moves");
        moves != nullptr && moves->kind == JValue::Kind::Arr && !moves->arr.empty()) {
      std::printf("  last moves (oldest first):\n");
      for (const JValue& m : moves->arr) {
        const JValue* kind = m.get("kind");
        const long link = m.get("link") != nullptr ? m.get("link")->i64() : 0;
        std::printf("    #%llu %-12s peer=%ld tag=%ld vci=%ld bytes=%llu",
                    static_cast<unsigned long long>(
                        m.get("op") != nullptr ? m.get("op")->u64() : 0),
                    kind != nullptr ? kind->str.c_str() : "?",
                    m.get("peer") != nullptr ? m.get("peer")->i64() : 0,
                    m.get("tag") != nullptr ? m.get("tag")->i64() : 0,
                    m.get("vci") != nullptr ? m.get("vci")->i64() : 0,
                    static_cast<unsigned long long>(
                        m.get("bytes") != nullptr ? m.get("bytes")->u64() : 0));
        if (link != 0) std::printf(" link=-%ld", link);
        std::printf("\n");
      }
    }
    if (const JValue* wins = snap->get("windows"); wins != nullptr) {
      for (const JValue& w : wins->arr) {
        std::printf("  win %llu: epoch=%s acks=%llu deferred=%llu\n",
                    static_cast<unsigned long long>(
                        w.get("win_id") != nullptr ? w.get("win_id")->u64() : 0),
                    w.get("epoch") != nullptr ? w.get("epoch")->str.c_str() : "?",
                    static_cast<unsigned long long>(
                        w.get("outstanding_acks") != nullptr
                            ? w.get("outstanding_acks")->u64()
                            : 0),
                    static_cast<unsigned long long>(
                        w.get("deferred_ops") != nullptr ? w.get("deferred_ops")->u64()
                                                         : 0));
      }
    }
  }
  if (with_timeline) {
    const JValue* timeline = root.get("timeline");
    if (timeline != nullptr) {
      print_timeline(*timeline);
    } else {
      std::printf("\n(no sampler timeline in this report -- attach a Sampler via"
                  " WatchdogOptions::sampler)\n");
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// --demo: force a live deadlock and diagnose it
// ---------------------------------------------------------------------------

int run_demo() {
  using namespace lwmpi;
  std::printf("forcing a 2-rank tag-mismatch deadlock (rank 0 sends tag 7, rank 1 waits"
              " on tag 42)...\n\n");
  WorldOptions o;
  o.profile = net::loopback();
  o.ranks_per_node = 2;
  o.record = true;  // the diagnosis embeds the stuck rank's last moves
  World w(2, o);
  // Telemetry sampler, declared before the watchdog so it outlives it; the
  // watchdog embeds its last intervals into the diagnosis.
  obs::cvar_set(obs::Cv::SamplerIntervalMs, 20);
  obs::Sampler sampler(w);
  obs::WatchdogOptions wo;
  wo.stall_ns = 200'000'000;
  wo.poll_ns = 20'000'000;
  wo.sampler = &sampler;
  obs::Watchdog wd(w, wo);
  w.run([&](Engine& e) {
    char b = 1;
    if (e.world_rank() == 0) {
      // The mistake under diagnosis: wrong tag, so rank 1 never matches.
      e.send(&b, 1, kChar, 1, 7, kCommWorld);
      while (wd.fires() == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      // Rescue send so the demo terminates once diagnosed.
      e.send(&b, 1, kChar, 1, 42, kCommWorld);
    } else {
      e.recv(&b, 1, kChar, 0, 42, kCommWorld, nullptr);
    }
  });
  const obs::HangReport report = wd.last_report();
  std::fputs(obs::render_text(report).c_str(), stdout);
  if (!report.timeline_json.empty()) {
    bool ok = false;
    const JValue timeline = jsonmini::parse(report.timeline_json, &ok);
    if (ok) print_timeline(timeline);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool with_timeline = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--demo") == 0) return run_demo();
    if (std::strcmp(argv[i], "--timeline") == 0) {
      with_timeline = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      path = nullptr;  // too many positionals
      break;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: hangdump [--timeline] <report.json> | hangdump --demo\n");
    return 2;
  }

  // One newline-terminated JSON line per report; the tolerant reader
  // (obs/jsonl.hpp) drops a tail the watchdog was still appending when the
  // hung job got killed.
  lwmpi::obs::JsonlFile file;
  if (!lwmpi::obs::read_jsonl(path, &file)) {
    std::fprintf(stderr, "hangdump: cannot open %s\n", path);
    return 1;
  }
  if (file.lines.empty()) {
    std::fprintf(stderr, "hangdump: no complete JSON line in %s\n", path);
    return 1;
  }
  bool ok = false;
  const JValue root = jsonmini::parse(file.lines.front(), &ok);
  if (!ok || root.kind != JValue::Kind::Obj) {
    std::fprintf(stderr, "hangdump: %s is not valid JSON\n", path);
    return 1;
  }
  return print_report(root, with_timeline);
}
