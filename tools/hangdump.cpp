// hangdump: pretty-printer for lwmpi watchdog hang reports.
//
// The watchdog (src/obs/watchdog.hpp) diagnoses progress stalls and, when
// given a report_path, writes the diagnosis as JSON. This tool renders that
// file back into the human-readable form for postmortem reading -- the MPIR
// message-queue-dump workflow, minus the debugger:
//
//   hangdump report.json     pretty-print a saved hang report
//   hangdump --demo          force a live 2-rank deadlock, print its diagnosis
//
// The parser is a minimal recursive-descent JSON reader (same spirit as
// tools/check_core.hpp): it handles exactly the value shapes obs::render_json
// produces, and rejects anything malformed rather than guessing.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "obs/watchdog.hpp"
#include "runtime/world.hpp"

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON DOM + parser
// ---------------------------------------------------------------------------

struct JValue {
  enum class Kind { Null, Bool, Num, Str, Arr, Obj } kind = Kind::Null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JValue> arr;
  std::vector<std::pair<std::string, JValue>> obj;

  const JValue* get(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  std::uint64_t u64() const { return static_cast<std::uint64_t>(num); }
  long i64() const { return static_cast<long>(num); }
};

struct Parser {
  const std::string& s;
  std::size_t i = 0;
  bool ok = true;

  void ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) ++i;
  }
  bool lit(const char* t) {
    const std::size_t n = std::strlen(t);
    if (s.compare(i, n, t) != 0) return false;
    i += n;
    return true;
  }
  JValue value() {
    ws();
    JValue v;
    if (!ok || i >= s.size()) {
      ok = false;
      return v;
    }
    const char c = s[i];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      v.kind = JValue::Kind::Str;
      v.str = string();
      return v;
    }
    if (lit("null")) return v;
    if (lit("true")) {
      v.kind = JValue::Kind::Bool;
      v.b = true;
      return v;
    }
    if (lit("false")) {
      v.kind = JValue::Kind::Bool;
      return v;
    }
    // number
    char* end = nullptr;
    v.num = std::strtod(s.c_str() + i, &end);
    if (end == s.c_str() + i) {
      ok = false;
      return v;
    }
    v.kind = JValue::Kind::Num;
    i = static_cast<std::size_t>(end - s.c_str());
    return v;
  }
  std::string string() {
    std::string out;
    if (i >= s.size() || s[i] != '"') {
      ok = false;
      return out;
    }
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) {
        const char e = s[i + 1];
        out += (e == 'n' ? '\n' : e == 't' ? '\t' : e);
        i += 2;
      } else {
        out += s[i++];
      }
    }
    if (i >= s.size()) {
      ok = false;
      return out;
    }
    ++i;  // closing quote
    return out;
  }
  JValue array() {
    JValue v;
    v.kind = JValue::Kind::Arr;
    ++i;  // '['
    ws();
    if (i < s.size() && s[i] == ']') {
      ++i;
      return v;
    }
    while (ok) {
      v.arr.push_back(value());
      ws();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      if (i < s.size() && s[i] == ']') {
        ++i;
        return v;
      }
      ok = false;
    }
    return v;
  }
  JValue object() {
    JValue v;
    v.kind = JValue::Kind::Obj;
    ++i;  // '{'
    ws();
    if (i < s.size() && s[i] == '}') {
      ++i;
      return v;
    }
    while (ok) {
      ws();
      std::string key = string();
      ws();
      if (i >= s.size() || s[i] != ':') {
        ok = false;
        return v;
      }
      ++i;
      v.obj.emplace_back(std::move(key), value());
      ws();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      if (i < s.size() && s[i] == '}') {
        ++i;
        return v;
      }
      ok = false;
    }
    return v;
  }
};

// ---------------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------------

std::string fmt_ms(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(ns) / 1e6);
  return buf;
}

void print_entry(const char* label, const JValue& e) {
  const JValue* comm = e.get("comm");
  std::printf("      %s comm=%s src=%ld tag=%ld bytes=%llu age=%s%s\n", label,
              comm != nullptr ? comm->str.c_str() : "?",
              e.get("src") != nullptr ? e.get("src")->i64() : 0,
              e.get("tag") != nullptr ? e.get("tag")->i64() : 0,
              static_cast<unsigned long long>(
                  e.get("bytes") != nullptr ? e.get("bytes")->u64() : 0),
              e.get("age_ns") != nullptr ? fmt_ms(e.get("age_ns")->u64()).c_str() : "?",
              e.get("arrival_order") != nullptr && e.get("arrival_order")->b
                  ? " [arrival-order]"
                  : "");
}

int print_report(const JValue& root) {
  const JValue* stuck = root.get("stuck");
  const JValue* nranks = root.get("nranks");
  if (stuck == nullptr || stuck->kind != JValue::Kind::Arr || nranks == nullptr) {
    std::fprintf(stderr, "hangdump: not a watchdog report (missing stuck/nranks)\n");
    return 1;
  }
  std::printf("=== lwmpi hang diagnosis: %zu of %ld rank(s) stuck ===\n", stuck->arr.size(),
              nranks->i64());
  for (const JValue& s : stuck->arr) {
    const JValue* call = s.get("call");
    std::printf("rank %ld stuck in %s (blocked %s, no progress for %s)\n",
                s.get("rank") != nullptr ? s.get("rank")->i64() : -1,
                call != nullptr ? call->str.c_str() : "?",
                s.get("blocked_ns") != nullptr ? fmt_ms(s.get("blocked_ns")->u64()).c_str()
                                               : "?",
                s.get("stalled_ns") != nullptr ? fmt_ms(s.get("stalled_ns")->u64()).c_str()
                                               : "?");
    const JValue* snap = s.get("snapshot");
    if (snap == nullptr) continue;
    if (const JValue* oldest = snap->get("oldest");
        oldest != nullptr && oldest->kind == JValue::Kind::Obj) {
      std::printf("  oldest request: %s comm=%s peer=%ld tag=%ld bytes=%llu age=%s\n",
                  oldest->get("kind") != nullptr ? oldest->get("kind")->str.c_str() : "?",
                  oldest->get("comm") != nullptr ? oldest->get("comm")->str.c_str() : "?",
                  oldest->get("peer") != nullptr ? oldest->get("peer")->i64() : 0,
                  oldest->get("tag") != nullptr ? oldest->get("tag")->i64() : 0,
                  static_cast<unsigned long long>(
                      oldest->get("bytes") != nullptr ? oldest->get("bytes")->u64() : 0),
                  oldest->get("age_ns") != nullptr
                      ? fmt_ms(oldest->get("age_ns")->u64()).c_str()
                      : "?");
    }
    if (const JValue* vcis = snap->get("vcis"); vcis != nullptr) {
      for (const JValue& v : vcis->arr) {
        const JValue* posted = v.get("posted");
        const JValue* unexpected = v.get("unexpected");
        const JValue* sendq = v.get("send_queue");
        const std::size_t np = posted != nullptr ? posted->arr.size() : 0;
        const std::size_t nu = unexpected != nullptr ? unexpected->arr.size() : 0;
        const std::size_t nq = sendq != nullptr ? sendq->arr.size() : 0;
        if (np + nu + nq == 0) continue;
        std::printf("  vci %ld: posted=%zu unexpected=%zu sendq=%zu\n",
                    v.get("vci") != nullptr ? v.get("vci")->i64() : -1, np, nu, nq);
        if (posted != nullptr) {
          for (const JValue& e : posted->arr) print_entry("posted:    ", e);
        }
        if (unexpected != nullptr) {
          for (const JValue& e : unexpected->arr) print_entry("unexpected:", e);
        }
        if (sendq != nullptr) {
          for (const JValue& e : sendq->arr) {
            std::printf("      sendq:      dst=%ld tag=%ld bytes=%llu\n",
                        e.get("dst") != nullptr ? e.get("dst")->i64() : 0,
                        e.get("tag") != nullptr ? e.get("tag")->i64() : 0,
                        static_cast<unsigned long long>(
                            e.get("bytes") != nullptr ? e.get("bytes")->u64() : 0));
          }
        }
      }
    }
    if (const JValue* wins = snap->get("windows"); wins != nullptr) {
      for (const JValue& w : wins->arr) {
        std::printf("  win %llu: epoch=%s acks=%llu deferred=%llu\n",
                    static_cast<unsigned long long>(
                        w.get("win_id") != nullptr ? w.get("win_id")->u64() : 0),
                    w.get("epoch") != nullptr ? w.get("epoch")->str.c_str() : "?",
                    static_cast<unsigned long long>(
                        w.get("outstanding_acks") != nullptr
                            ? w.get("outstanding_acks")->u64()
                            : 0),
                    static_cast<unsigned long long>(
                        w.get("deferred_ops") != nullptr ? w.get("deferred_ops")->u64()
                                                         : 0));
      }
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// --demo: force a live deadlock and diagnose it
// ---------------------------------------------------------------------------

int run_demo() {
  using namespace lwmpi;
  std::printf("forcing a 2-rank tag-mismatch deadlock (rank 0 sends tag 7, rank 1 waits"
              " on tag 42)...\n\n");
  WorldOptions o;
  o.profile = net::loopback();
  o.ranks_per_node = 2;
  World w(2, o);
  obs::WatchdogOptions wo;
  wo.stall_ns = 200'000'000;
  wo.poll_ns = 20'000'000;
  obs::Watchdog wd(w, wo);
  w.run([&](Engine& e) {
    char b = 1;
    if (e.world_rank() == 0) {
      // The mistake under diagnosis: wrong tag, so rank 1 never matches.
      e.send(&b, 1, kChar, 1, 7, kCommWorld);
      while (wd.fires() == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      // Rescue send so the demo terminates once diagnosed.
      e.send(&b, 1, kChar, 1, 42, kCommWorld);
    } else {
      e.recv(&b, 1, kChar, 0, 42, kCommWorld, nullptr);
    }
  });
  std::fputs(obs::render_text(wd.last_report()).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: hangdump <report.json> | hangdump --demo\n");
    return 2;
  }
  if (std::strcmp(argv[1], "--demo") == 0) return run_demo();

  std::ifstream f(argv[1]);
  if (!f) {
    std::fprintf(stderr, "hangdump: cannot open %s\n", argv[1]);
    return 1;
  }
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();
  Parser p{text};
  const JValue root = p.value();
  if (!p.ok || root.kind != JValue::Kind::Obj) {
    std::fprintf(stderr, "hangdump: %s is not valid JSON\n", argv[1]);
    return 1;
  }
  return print_report(root);
}
