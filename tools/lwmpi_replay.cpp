// lwmpi_replay: record communication traces and re-execute them as workloads.
//
//   lwmpi_replay --record stencil|md|storm --out <prefix> [--netmod m]
//       run a canned workload with the flight recorder in bundle mode
//       (sample_shift 0, deep ring) and flush `<prefix>.rank<r>.lwtrace`
//       plus the `<prefix>.json` provenance sidecar
//
//   lwmpi_replay <prefix> [--netmod m] [--timescale t] [--check] [--quiet]
//       load a bundle and replay it through the public API, printing the
//       fidelity diff of replayed pvar totals against the recorded ones.
//       --netmod replays on a different transport than the recording;
//       --timescale 1.0 reproduces the recorded compute gaps (0 = as fast
//       as possible); --check exits nonzero unless fidelity is exact
//
//   lwmpi_replay --demo [--out <prefix>]
//       record a 4-rank stencil halo exchange, immediately replay it, and
//       print the fidelity diff -- the round-trip acceptance check
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/md.hpp"
#include "apps/replay.hpp"
#include "apps/stencil.hpp"
#include "core/engine.hpp"
#include "obs/jsonl.hpp"
#include "runtime/backoff.hpp"
#include "runtime/world.hpp"
#include "tools/json_mini.hpp"

namespace {

using namespace lwmpi;

// Checkpoint-storm synthetic: alternating compute phases and bursts where
// every rank pushes a large (rendezvous-path) checkpoint block at rank 0,
// bracketed by the collectives a checkpoint library would issue. Stresses
// the n->1 incast pattern the stencil/md workloads never produce.
void run_storm(Engine& e, int rounds, int block_bytes) {
  const int r = e.world_rank();
  const int n = e.world_size();
  std::vector<char> block(static_cast<std::size_t>(block_bytes), 'c');
  std::vector<char> sink(static_cast<std::size_t>(block_bytes));
  double my_cost = 1.0;
  double agreed = 0.0;
  for (int round = 0; round < rounds; ++round) {
    rt::spin_for_ns(20'000);  // the compute phase between checkpoints
    // "Should we checkpoint now?" -- the storm's coordination collective.
    e.allreduce(&my_cost, &agreed, 1, kDouble, ReduceOp::Sum, kCommWorld);
    if (r == 0) {
      for (int src = 1; src < n; ++src) {
        e.recv(sink.data(), block_bytes, kChar, src, 100 + round, kCommWorld, nullptr);
      }
    } else {
      rt::spin_for_ns(5'000 * static_cast<std::uint64_t>(r));  // staggered arrival
      e.send(block.data(), block_bytes, kChar, 0, 100 + round, kCommWorld);
    }
    int epoch = round;
    e.bcast(&epoch, 1, kInt, 0, kCommWorld);  // "checkpoint <round> is durable"
    e.barrier(kCommWorld);
  }
}

struct RecordSpec {
  int nranks = 4;
  const char* describe = "";
  void (*run)(Engine&) = nullptr;
};

void run_stencil_rec(Engine& e) {
  apps::StencilConfig cfg;
  cfg.nx = 32;
  cfg.ny = 32;
  cfg.px = 2;
  cfg.py = 2;
  cfg.iters = 8;
  apps::run_stencil(e, kCommWorld, cfg);
}

void run_md_rec(Engine& e) {
  apps::MdConfig cfg;
  cfg.px = 2;
  cfg.py = 2;
  cfg.pz = 2;
  cfg.cells_x = 2;
  cfg.cells_y = 2;
  cfg.cells_z = 2;
  cfg.steps = 4;
  apps::run_md(e, kCommWorld, cfg);
}

void run_storm_rec(Engine& e) { run_storm(e, 4, 48 * 1024); }

bool spec_for(const std::string& name, RecordSpec* out) {
  if (name == "stencil") {
    *out = {4, "2x2 Jacobi stencil halo exchange, 8 iterations", &run_stencil_rec};
    return true;
  }
  if (name == "md") {
    *out = {8, "2x2x2 LJ molecular-dynamics ghost exchange, 4 steps", &run_md_rec};
    return true;
  }
  if (name == "storm") {
    *out = {4, "checkpoint storm: 4 rounds of 48KiB incast at rank 0", &run_storm_rec};
    return true;
  }
  return false;
}

int do_record(const std::string& workload, const std::string& prefix,
              const std::string& netmod, bool quiet) {
  RecordSpec spec;
  if (!spec_for(workload, &spec)) {
    std::fprintf(stderr, "lwmpi_replay: unknown workload '%s' (stencil|md|storm)\n",
                 workload.c_str());
    return 2;
  }
  WorldOptions o;
  if (!netmod.empty()) o.netmod = netmod;
  o.record = true;
  o.record_path = prefix;
  o.record_sample_shift = 0;           // bundle mode: every op carries timing
  o.record_ring_depth = 1u << 16;      // deep enough that nothing wraps
  o.build.counters = true;             // fidelity totals come from the counters
  {
    World w(spec.nranks, o);
    w.run([&](Engine& e) { spec.run(e); });
    // Teardown (end of scope) flushes the bundle.
  }
  if (!quiet) {
    std::printf("recorded %s (%d ranks) -> %s.rank*.lwtrace\n", spec.describe,
                spec.nranks, prefix.c_str());
  }
  return 0;
}

void print_sidecar(const std::string& prefix) {
  lwmpi::obs::JsonlFile file;
  if (!lwmpi::obs::read_jsonl(prefix + ".json", &file) || file.lines.empty()) return;
  bool ok = false;
  const jsonmini::JValue side = jsonmini::parse(file.lines.front(), &ok);
  if (!ok) return;
  const auto* netmod = side.get("netmod");
  const auto* device = side.get("device");
  const auto* eager = side.get("eager_threshold");
  std::printf("recorded on: netmod=%s device=%s eager_threshold=%llu\n",
              netmod != nullptr ? netmod->str.c_str() : "?",
              device != nullptr ? device->str.c_str() : "?",
              static_cast<unsigned long long>(eager != nullptr ? eager->u64() : 0));
}

int do_replay(const std::string& prefix, const apps::ReplayOptions& opts, bool check,
              bool quiet) {
  apps::TraceBundle bundle;
  std::string err;
  if (!apps::load_trace(prefix, &bundle, &err)) {
    std::fprintf(stderr, "lwmpi_replay: %s\n", err.c_str());
    return 1;
  }
  if (!quiet) {
    std::uint64_t records = 0;
    for (const auto& r : bundle.ranks) records += r.header.nrecords;
    std::printf("loaded %s: %d rank(s), %llu record(s)%s\n", prefix.c_str(),
                bundle.nranks, static_cast<unsigned long long>(records),
                bundle.complete() ? "" : " [incomplete: wrapped or truncated]");
    print_sidecar(prefix);
  }

  const apps::ReplayResult res = apps::run_replay(bundle, opts);
  if (!res.ok) {
    std::fprintf(stderr, "lwmpi_replay: replay did not run\n");
    return 1;
  }
  if (!quiet) {
    std::printf("replayed %llu op(s) on %s in %.2fms (skipped %llu, timeouts %llu)\n",
                static_cast<unsigned long long>(res.replayed), res.netmod.c_str(),
                static_cast<double>(res.wall_ns) / 1e6,
                static_cast<unsigned long long>(res.skipped),
                static_cast<unsigned long long>(res.timeouts));
    if (!res.fidelity_checked) {
      std::printf("fidelity: not checked (bundle incomplete)\n");
    } else {
      std::printf("fidelity: engine totals %s", res.fidelity_ok ? "exact" : "MISMATCH");
      if (res.fabric_checked) {
        std::printf(", fabric totals %s", res.fabric_ok ? "exact" : "differ");
      } else {
        std::printf(", fabric totals not compared (different netmod)");
      }
      std::printf("\n");
      for (const std::string& d : res.diffs) std::printf("  %s\n", d.c_str());
    }
  }
  if (check && (!res.fidelity_checked || !res.fidelity_ok)) {
    std::fprintf(stderr, "lwmpi_replay: fidelity check failed\n");
    return 1;
  }
  return 0;
}

int do_demo(const std::string& prefix, bool quiet) {
  if (!quiet) std::printf("=== record: 4-rank stencil halo exchange ===\n");
  if (int rc = do_record("stencil", prefix, "", quiet); rc != 0) return rc;
  if (!quiet) std::printf("=== replay ===\n");
  apps::ReplayOptions opts;
  return do_replay(prefix, opts, /*check=*/true, quiet);
}

}  // namespace

int main(int argc, char** argv) {
  std::string record_workload;
  std::string out;
  std::string prefix;
  apps::ReplayOptions opts;
  bool demo = false;
  bool check = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "lwmpi_replay: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--demo") {
      demo = true;
    } else if (a == "--record") {
      record_workload = next("--record");
    } else if (a == "--out") {
      out = next("--out");
    } else if (a == "--netmod") {
      opts.netmod = next("--netmod");
    } else if (a == "--timescale") {
      opts.timescale = std::strtod(next("--timescale"), nullptr);
    } else if (a == "--check") {
      check = true;
    } else if (a == "--quiet") {
      quiet = true;
    } else if (!a.empty() && a[0] != '-') {
      prefix = a;
    } else {
      std::fprintf(stderr,
                   "usage: lwmpi_replay --record stencil|md|storm --out <prefix>"
                   " [--netmod m]\n"
                   "       lwmpi_replay <prefix> [--netmod m] [--timescale t]"
                   " [--check] [--quiet]\n"
                   "       lwmpi_replay --demo [--out <prefix>]\n");
      return 2;
    }
  }
  if (demo) return do_demo(out.empty() ? "lwmpi_replay_demo" : out, quiet);
  if (!record_workload.empty()) {
    if (out.empty()) {
      std::fprintf(stderr, "lwmpi_replay: --record needs --out <prefix>\n");
      return 2;
    }
    return do_record(record_workload, out, opts.netmod, quiet);
  }
  if (prefix.empty()) {
    std::fprintf(stderr, "lwmpi_replay: give a trace prefix, --record, or --demo\n");
    return 2;
  }
  return do_replay(prefix, opts, check, quiet);
}
