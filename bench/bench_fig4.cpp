// Reproduces Figure 4: message rates with the UCX/EDR-like simulated fabric
// (the paper's "Gomez" cluster with Mellanox EDR).
#include "bench/rate_figure.hpp"

int main() {
  return lwmpi::bench::run_rate_figure("Figure 4: message rates with UCX/EDR (simulated)",
                                       lwmpi::net::ucx_edr());
}
