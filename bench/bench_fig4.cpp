// Reproduces Figure 4: message rates with the UCX/EDR-like simulated fabric
// (the paper's "Gomez" cluster with Mellanox EDR).
//
// Runs once per netmod backend (mailbox, rdma) and writes the per-backend
// BENCH_fig4_<backend>.json artifacts the regression sentinel tracks.
#include "bench/rate_figure.hpp"

int main() {
  return lwmpi::bench::run_rate_figure_backends(
      "Figure 4: message rates with UCX/EDR (simulated)", lwmpi::net::ucx_edr(), "fig4");
}
