// Shared harness for the paper-reproduction benchmarks.
//
// Message-rate methodology (Figures 3-5): the paper measures the maximum
// rate at which a single core can inject 1-byte messages into the network.
// We time the sender's issue loop (isend/put + periodic completion) over the
// chosen network profile. On the real-network profiles a receiver rank
// drains the fabric; on the blackhole ("infinitely fast") profile the run is
// a single rank targeting itself, exactly mirroring the paper's modified
// library that executes the full stack without transmitting.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "cost/meter.hpp"
#include "net/profile.hpp"
#include "obs/table.hpp"
#include "runtime/backoff.hpp"
#include "runtime/world.hpp"

namespace lwmpi::bench {

// The five stack variants of Figures 3-5.
struct StackVariant {
  std::string label;
  DeviceKind device;
  BuildConfig build;
};

inline std::vector<StackVariant> figure_variants() {
  return {
      {"mpich/original", DeviceKind::Orig, BuildConfig::dflt()},
      {"mpich/ch4 (default)", DeviceKind::Ch4, BuildConfig::dflt()},
      {"mpich/ch4 (no-err)", DeviceKind::Ch4, BuildConfig::no_err()},
      {"mpich/ch4 (no-err-single)", DeviceKind::Ch4, BuildConfig::no_err_single()},
      {"mpich/ch4 (no-err-single-ipo)", DeviceKind::Ch4, BuildConfig::no_err_single_ipo()},
  };
}

inline constexpr int kRateWindow = 256;

// Messages per measurement; small enough for a 1-core box, large enough to
// amortize timer noise.
inline int default_messages(const net::Profile& p) { return p.blackhole ? 400000 : 120000; }

// --- MPI_ISEND issue rate ----------------------------------------------------
inline double isend_rate(const net::Profile& profile, DeviceKind device, BuildConfig build,
                         int messages, const std::string& netmod = "mailbox") {
  WorldOptions o;
  o.profile = profile;
  o.device = device;
  o.build = build;
  o.netmod = netmod;
  o.ranks_per_node = 1;  // force the inter-node cost parameters
  const int nranks = profile.blackhole ? 1 : 2;
  const Rank target = profile.blackhole ? 0 : 1;
  World w(nranks, o);
  double rate = 0.0;
  w.run([&](Engine& e) {
    if (e.world_rank() == 0) {
      char byte = 1;
      std::vector<Request> reqs(kRateWindow, kRequestNull);
      // Warmup.
      for (int i = 0; i < kRateWindow; ++i) {
        e.isend(&byte, 1, kChar, target, 0, kCommWorld, &reqs[static_cast<std::size_t>(i)]);
      }
      e.waitall(reqs, {});
      const std::uint64_t t0 = rt::now_ns();
      int issued = 0;
      while (issued < messages) {
        for (int i = 0; i < kRateWindow && issued < messages; ++i, ++issued) {
          e.isend(&byte, 1, kChar, target, 0, kCommWorld,
                  &reqs[static_cast<std::size_t>(i)]);
        }
        e.waitall(reqs, {});
      }
      const std::uint64_t dt = rt::now_ns() - t0;
      rate = dt > 0 ? messages * 1e9 / static_cast<double>(dt) : 0.0;
    } else {
      // Drain until everything (warmup + measured) has been delivered.
      const std::uint64_t expect =
          static_cast<std::uint64_t>(messages) + kRateWindow;
      rt::Backoff backoff;
      while (e.world().fabric().delivered(1) < expect) {
        e.progress();
        backoff.pause();
      }
    }
  });
  return rate;
}

// --- MPI_PUT issue rate -------------------------------------------------------
inline double put_rate(const net::Profile& profile, DeviceKind device, BuildConfig build,
                       int messages, const std::string& netmod = "mailbox") {
  WorldOptions o;
  o.profile = profile;
  o.device = device;
  o.build = build;
  o.netmod = netmod;
  o.ranks_per_node = 1;
  const int nranks = profile.blackhole ? 1 : 2;
  const Rank target = profile.blackhole ? 0 : 1;
  World w(nranks, o);
  double rate = 0.0;
  std::atomic<bool> done{false};
  w.run([&](Engine& e) {
    std::vector<char> mem(64, 0);
    Win win = kWinNull;
    e.win_create(mem.data(), mem.size(), 1, kCommWorld, &win);
    e.win_fence(win);
    if (e.world_rank() == 0) {
      char byte = 1;
      // Warmup window.
      for (int i = 0; i < kRateWindow; ++i) {
        e.put(&byte, 1, kChar, target, 0, 1, kChar, win);
      }
      e.win_flush_all(win);
      const std::uint64_t t0 = rt::now_ns();
      int issued = 0;
      while (issued < messages) {
        for (int i = 0; i < kRateWindow && issued < messages; ++i, ++issued) {
          e.put(&byte, 1, kChar, target, 0, 1, kChar, win);
        }
        e.win_flush_all(win);
      }
      const std::uint64_t dt = rt::now_ns() - t0;
      rate = dt > 0 ? messages * 1e9 / static_cast<double>(dt) : 0.0;
      done.store(true, std::memory_order_release);
    } else {
      rt::Backoff backoff;
      while (!done.load(std::memory_order_acquire)) {
        e.progress();
        backoff.pause();
      }
    }
    e.win_fence(win);
    e.win_free(&win);
  });
  return rate;
}

// --- Metered instruction counts (the SDE substitute) --------------------------
// The walks live in the attribution tier (obs/table.hpp) so the library,
// World::stats_report, and the benches all share one methodology; these
// aliases keep the historical bench-harness spelling working.
inline cost::Meter metered_isend(DeviceKind device, BuildConfig build) {
  return obs::metered_isend(device, build);
}

inline cost::Meter metered_put(DeviceKind device, BuildConfig build) {
  return obs::metered_put(device, build);
}

// --- JSON result emission -----------------------------------------------------
// Minimal machine-readable bench output: each benchmark accumulates labeled
// scalar results (plus optional pre-serialized blobs like a stats_report) and
// writes them to BENCH_<name>.json in the working directory, so runs can be
// diffed or plotted without scraping stdout.
class JsonResult {
 public:
  explicit JsonResult(std::string name) : name_(std::move(name)) {}

  void add(const std::string& label, double value, const std::string& unit) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    entries_.push_back("{\"label\":\"" + escape(label) + "\",\"value\":" + buf +
                       ",\"unit\":\"" + escape(unit) + "\"}");
  }
  // Attach an already-serialized JSON value (e.g. World::stats_report(true)).
  void add_raw(const std::string& key, const std::string& json) {
    raw_.push_back("\"" + escape(key) + "\":" + json);
  }

  std::string str() const {
    std::string out = "{\"bench\":\"" + escape(name_) + "\",\"results\":[";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      out += (i == 0 ? "" : ",");
      out += entries_[i];
    }
    out += "]";
    for (const std::string& r : raw_) out += "," + r;
    out += "}";
    return out;
  }

  // Write BENCH_<name>.json into $LWMPI_BENCH_DIR (falling back to the
  // working directory); returns false (and prints a warning) on failure.
  bool write() const {
    std::string path = "BENCH_" + name_ + ".json";
    if (const char* dir = std::getenv("LWMPI_BENCH_DIR"); dir != nullptr && *dir != '\0') {
      path = std::string(dir) + "/" + path;
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    const std::string body = str();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

  // JSON string escaping per RFC 8259: quote and backslash are
  // backslash-escaped, control characters (including newlines and tabs)
  // become \uXXXX so labels containing them still produce valid JSON.
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
        out += buf;
      } else {
        out += c;
      }
    }
    return out;
  }

 private:
  std::string name_;
  std::vector<std::string> entries_;
  std::vector<std::string> raw_;
};

// --- Output helpers ------------------------------------------------------------
inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

inline void print_bar(const char* label, double value, double max_value, const char* unit) {
  constexpr int kWidth = 44;
  const int fill =
      max_value > 0 ? static_cast<int>(value / max_value * kWidth + 0.5) : 0;
  std::printf("%-30s %12.3g %s |", label, value, unit);
  for (int i = 0; i < fill; ++i) std::printf("#");
  std::printf("\n");
}

inline std::string human_rate(double msgs_per_sec) {
  char buf[64];
  if (msgs_per_sec >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM msg/s", msgs_per_sec / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fK msg/s", msgs_per_sec / 1e3);
  }
  return buf;
}

}  // namespace lwmpi::bench
