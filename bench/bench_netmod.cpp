// Netmod crossover sweep: eager vs rendezvous per transport backend.
//
// The paper's fig3/fig4 crossovers come from two genuinely different
// injection semantics; this bench re-derives the protocol crossover per
// netmod backend and shows where the rdma backend's mechanisms move it:
//
//   1. Size sweep (1 KiB .. 256 KiB), each size measured ping-pong with the
//      protocol forced eager and forced rendezvous, on both backends. The
//      knee is the first size where rendezvous beats eager. On `rdma` the
//      rendezvous arm is the zero-copy registered-buffer handoff, so a warm
//      registration cache pulls the knee down.
//   2. Registration-cache behavior: a repeated-buffer rendezvous sweep (same
//      send/recv buffers every iteration) must resolve > 90% of
//      registrations from the cache; a rotating-buffer sweep over more
//      distinct buffers than the cache holds must miss and evict.
//   3. Zero-copy payoff: at >= 64 KiB the rdma backend's zero-copy rendezvous
//      must beat the mailbox backend's staged-copy rendezvous (one copy and
//      no per-segment staging vs two copies), measured on a zero-latency
//      profile so the software difference is what's timed.
//
// Exit status is nonzero if any gate fails. Writes BENCH_netmod.json.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "obs/pvar.hpp"

namespace {

using namespace lwmpi;

// Force-rendezvous threshold: 1-byte ping-pong acks stay eager (bytes <=
// threshold), every >= 1 KiB payload takes the rendezvous path.
constexpr std::size_t kForceRdv = 8;
constexpr std::size_t kForceEager = 1u << 30;

struct SweepResult {
  double ns_per_iter = 0.0;   // min over iterations (round trip)
  std::uint64_t reg_hits = 0;  // summed over both ranks
  std::uint64_t reg_misses = 0;
  std::uint64_t reg_evictions = 0;
  std::uint64_t zcopy_writes = 0;
};

std::uint64_t read_pvar(Engine& e, const char* name) {
  const int idx = obs::LWMPI_T_pvar_index(name);
  if (idx < 0) return 0;
  obs::PvarSession s;
  obs::LWMPI_T_pvar_session_create(e, &s);
  std::uint64_t v = 0;
  obs::LWMPI_T_pvar_read(s, idx, &v);
  obs::LWMPI_T_pvar_session_free(&s);
  return v;
}

// Ping-pong: rank 0 sends `size` bytes, rank 1 replies with a 1-byte ack.
// `nbufs` > 1 rotates the payload through distinct buffers (registration-
// cache pressure); 1 reuses the same buffer every iteration.
SweepResult pingpong(const net::Profile& profile, const std::string& netmod,
                     std::size_t eager_threshold, std::size_t size, int iters,
                     int nbufs = 1) {
  WorldOptions o;
  o.profile = profile;
  o.netmod = netmod;
  o.ranks_per_node = 1;  // inter-node cost parameters
  o.eager_threshold = eager_threshold;
  World w(2, o);
  SweepResult res;
  double best = 0.0;
  w.run([&](Engine& e) {
    std::vector<std::vector<char>> bufs(static_cast<std::size_t>(nbufs));
    for (auto& b : bufs) b.assign(size, static_cast<char>(e.world_rank()));
    char ack = 0;
    const int count = static_cast<int>(size);
    if (e.world_rank() == 0) {
      for (int i = 0; i < iters; ++i) {
        char* buf = bufs[static_cast<std::size_t>(i % nbufs)].data();
        const std::uint64_t t0 = rt::now_ns();
        e.send(buf, count, kChar, 1, 7, kCommWorld);
        e.recv(&ack, 1, kChar, 1, 8, kCommWorld, nullptr);
        const double ns = static_cast<double>(rt::now_ns() - t0);
        if (i >= 2 && (best == 0.0 || ns < best)) best = ns;  // skip warmup
      }
    } else {
      for (int i = 0; i < iters; ++i) {
        char* buf = bufs[static_cast<std::size_t>(i % nbufs)].data();
        e.recv(buf, count, kChar, 0, 7, kCommWorld, nullptr);
        e.send(&ack, 1, kChar, 0, 8, kCommWorld);
      }
    }
    res.reg_hits += read_pvar(e, "rdma_reg_cache_hits");
    res.reg_misses += read_pvar(e, "rdma_reg_cache_misses");
    res.reg_evictions += read_pvar(e, "rdma_reg_cache_evictions");
    res.zcopy_writes += read_pvar(e, "rdma_zero_copy_writes");
  });
  res.ns_per_iter = best;
  return res;
}

}  // namespace

int main() {
  using bench::print_header;
  int failures = 0;
  bench::JsonResult json("netmod");

  // --- 1. eager/rendezvous crossover per backend ----------------------------
  print_header("bench_netmod: eager vs rendezvous crossover per backend");
  const net::Profile wire = net::psm2();
  const std::vector<std::size_t> sizes = {1u << 10, 4u << 10, 16u << 10,
                                          64u << 10, 128u << 10, 256u << 10};
  constexpr int kIters = 40;
  for (const char* netmod : {"mailbox", "rdma"}) {
    std::printf("\n  netmod %-8s %10s %14s %14s\n", netmod, "size", "eager ns", "rdv ns");
    std::size_t knee = 0;
    for (std::size_t s : sizes) {
      const double eager =
          pingpong(wire, netmod, kForceEager, s, kIters).ns_per_iter;
      const double rdv = pingpong(wire, netmod, kForceRdv, s, kIters).ns_per_iter;
      std::printf("  %-15s %9zuB %14.0f %14.0f%s\n", "", s, eager, rdv,
                  rdv < eager ? "  <- rdv wins" : "");
      if (knee == 0 && rdv < eager) knee = s;
      json.add(std::string(netmod) + " eager " + std::to_string(s) + "B", eager, "ns");
      json.add(std::string(netmod) + " rdv " + std::to_string(s) + "B", rdv, "ns");
    }
    std::printf("  %s crossover knee: %zu bytes%s\n", netmod, knee,
                knee == 0 ? " (none found)" : "");
    json.add(std::string(netmod) + " crossover knee", static_cast<double>(knee), "bytes");
    if (std::strcmp(netmod, "rdma") == 0 && knee == 0) {
      std::printf("  FAIL: rdma backend shows no eager/rendezvous crossover\n");
      ++failures;
    }
  }

  // --- 2. registration cache: repeated vs rotating buffers ------------------
  print_header("bench_netmod: registration-cache behavior (rdma)");
  net::Profile cacheprof = net::psm2();
  cacheprof.reg_cache_capacity = 16;
  const std::size_t kRegSize = 64u << 10;
  const SweepResult repeated = pingpong(cacheprof, "rdma", kForceRdv, kRegSize, 200, 1);
  const SweepResult rotating = pingpong(cacheprof, "rdma", kForceRdv, kRegSize, 200, 64);
  const double rep_total = static_cast<double>(repeated.reg_hits + repeated.reg_misses);
  const double hit_rate =
      rep_total > 0 ? static_cast<double>(repeated.reg_hits) / rep_total : 0.0;
  std::printf("  repeated buffer: hits %llu misses %llu evictions %llu (hit rate %.1f%%)\n",
              static_cast<unsigned long long>(repeated.reg_hits),
              static_cast<unsigned long long>(repeated.reg_misses),
              static_cast<unsigned long long>(repeated.reg_evictions), hit_rate * 100.0);
  std::printf("  rotating buffers: hits %llu misses %llu evictions %llu\n",
              static_cast<unsigned long long>(rotating.reg_hits),
              static_cast<unsigned long long>(rotating.reg_misses),
              static_cast<unsigned long long>(rotating.reg_evictions));
  json.add("repeated reg hit rate", hit_rate, "fraction");
  json.add("rotating reg misses", static_cast<double>(rotating.reg_misses), "count");
  json.add("rotating reg evictions", static_cast<double>(rotating.reg_evictions), "count");
  if (hit_rate <= 0.90) {
    std::printf("  FAIL: repeated-buffer hit rate %.1f%% <= 90%%\n", hit_rate * 100.0);
    ++failures;
  }
  if (rotating.reg_misses <= repeated.reg_misses || rotating.reg_evictions == 0) {
    std::printf("  FAIL: rotating buffers did not miss/evict more than repeated\n");
    ++failures;
  }
  if (repeated.zcopy_writes == 0) {
    std::printf("  FAIL: rendezvous sweep issued no zero-copy writes\n");
    ++failures;
  }

  // --- 3. zero-copy vs staged rendezvous at >= 64 KiB -----------------------
  print_header("bench_netmod: zero-copy vs staged rendezvous (software path)");
  // Zero-latency, infinite-bandwidth profile with a real pin cost: what is
  // timed is the software difference (1 copy + cached registration vs 2
  // copies + per-segment staging), not the shared wire time.
  net::Profile sw = net::loopback();
  sw.pin_cost_ns_per_page = 200;
  bool zcopy_faster = true;
  for (std::size_t s : {64u << 10, 128u << 10, 256u << 10}) {
    const double staged = pingpong(sw, "mailbox", kForceRdv, s, 60).ns_per_iter;
    const double zcopy = pingpong(sw, "rdma", kForceRdv, s, 60).ns_per_iter;
    std::printf("  %6zu KiB: staged (mailbox) %10.0f ns   zero-copy (rdma) %10.0f ns%s\n",
                s >> 10, staged, zcopy, zcopy < staged ? "" : "  <- NOT faster");
    json.add("staged rdv " + std::to_string(s) + "B", staged, "ns");
    json.add("zcopy rdv " + std::to_string(s) + "B", zcopy, "ns");
    zcopy_faster = zcopy_faster && zcopy < staged;
  }
  if (!zcopy_faster) {
    std::printf("  FAIL: zero-copy rendezvous not faster than staged at >= 64 KiB\n");
    ++failures;
  }

  json.add("gate failures", static_cast<double>(failures), "count");
  json.write();
  std::printf("\nbench_netmod: %s (%d gate failure%s)\n", failures == 0 ? "PASS" : "FAIL",
              failures, failures == 1 ? "" : "s");
  return failures == 0 ? 0 : 1;
}
