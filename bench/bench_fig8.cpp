// Reproduces Figure 8: LAMMPS strong scaling, MPICH/CH4 vs MPICH/Original.
//
// The paper strong-scales a fixed 3M-atom LJ system from 512 to 8192 BG/Q
// nodes; the x-axis annotation that matters is atoms-per-core (368 -> 23),
// because shrinking per-rank boxes shrink halo messages until MPI latency
// dominates the timestep. On this single-core host we sweep the same
// granularity axis directly (atoms per rank, descending) at a fixed rank
// count -- wall-clock strong scaling over threads is meaningless when the
// threads share one core, but the communication-to-computation ratio that
// produces the paper's curves is preserved (see DESIGN.md).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/md.hpp"
#include "bench/harness.hpp"

using namespace lwmpi;

namespace {

// 2 ranks in a chain: on this single-core host more ranks mean the
// measurement is dominated by thread scheduling rather than the MPI stack;
// the y/z halo exchanges become (deterministic) self-loopback messages.
constexpr int kRanks = 2;
constexpr int kRepeats = 7;  // take the best: scheduler noise on shared cores

// Longer runs at finer granularity so every measurement spans many scheduler
// quanta (a fixed step count would leave the small configs noise-dominated).
int steps_for(int cells) {
  const int atoms = 4 * cells * cells * cells;
  return std::max(40, 24000 / atoms);
}

double md_rate_once(DeviceKind device, int cells) {
  const int steps = steps_for(cells);
  WorldOptions o;
  o.profile = net::bgq();
  o.device = device;
  o.ranks_per_node = 1;  // inter-node halo exchange
  // Same build pairing as Figure 7: stock Original vs optimized CH4, on a
  // BG/Q-like in-order core (see DESIGN.md).
  o.build = device == DeviceKind::Ch4 ? BuildConfig::no_err_single_ipo()
                                      : BuildConfig::dflt();
  o.sim_ns_per_instruction = 2.0;
  World w(kRanks, o);
  double rate = 0.0;
  w.run([&](Engine& e) {
    apps::MdConfig cfg;
    cfg.px = 2;
    cfg.py = 1;
    cfg.pz = 1;
    cfg.cells_x = cells;
    cfg.cells_y = cells;
    cfg.cells_z = cells;
    cfg.steps = steps;
    const apps::MdResult r = apps::run_md(e, kCommWorld, cfg);
    double local = r.steps_per_sec;
    double min_rate = 0;
    e.allreduce(&local, &min_rate, 1, kDouble, ReduceOp::Min, kCommWorld);
    if (e.rank(kCommWorld) == 0) rate = min_rate;
  });
  return rate;
}

double md_rate(DeviceKind device, int cells) {
  double best = 0.0;
  for (int i = 0; i < kRepeats; ++i) best = std::max(best, md_rate_once(device, cells));
  return best;
}

}  // namespace

int main() {
  bench::print_header("Figure 8: LAMMPS-style LJ strong scaling (CH4 vs Original)");
  std::printf("%d ranks, >=30 timesteps per run, sim-bgq fabric; granularity\n"
              "sweep stands in for the paper's 512->8192-node sweep (atoms/core 368 -> 23)\n\n",
              kRanks);

  const std::vector<int> cells_sweep = {6, 5, 4, 3, 2};  // atoms/rank: 864..32

  struct Row {
    int atoms_per_rank;
    double orig;
    double ch4;
  };
  std::vector<Row> rows;
  for (int cells : cells_sweep) {
    Row r;
    r.atoms_per_rank = 4 * cells * cells * cells;
    r.orig = md_rate(DeviceKind::Orig, cells);
    r.ch4 = md_rate(DeviceKind::Ch4, cells);
    std::printf("  measured atoms/rank=%-5d original %9.1f steps/s   ch4 %9.1f steps/s\n",
                r.atoms_per_rank, r.orig, r.ch4);
    rows.push_back(r);
  }

  // Work-rate efficiency: (steps/s * atoms) normalized to the best value in
  // the sweep, so the column reads like the paper's parallel efficiency.
  double orig_peak = 0.0, ch4_peak = 0.0;
  for (const Row& r : rows) {
    orig_peak = std::max(orig_peak, r.orig * r.atoms_per_rank);
    ch4_peak = std::max(ch4_peak, r.ch4 * r.atoms_per_rank);
  }

  std::printf("\n%-12s %14s %14s %12s %12s %12s\n", "atoms/core", "Orig steps/s",
              "CH4 steps/s", "CH4 speedup", "Orig eff", "CH4 eff");
  for (const Row& r : rows) {
    const double work_o = r.orig * r.atoms_per_rank;
    const double work_c = r.ch4 * r.atoms_per_rank;
    std::printf("%-12d %14.1f %14.1f %11.1f%% %11.1f%% %11.1f%%\n", r.atoms_per_rank,
                r.orig, r.ch4, r.orig > 0 ? 100.0 * (r.ch4 - r.orig) / r.orig : 0.0,
                orig_peak > 0 ? 100.0 * work_o / orig_peak : 0.0,
                ch4_peak > 0 ? 100.0 * work_c / ch4_peak : 0.0);
  }
  std::printf("\nexpected shape (paper): CH4 speedup grows toward the scaling limit (fewer\n"
              "atoms per core => smaller, latency-bound messages), and the original\n"
              "stack's efficiency collapses first.\n");
  return 0;
}
