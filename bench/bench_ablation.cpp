// Ablation benches for the design choices called out in DESIGN.md:
//   1. rank->address representation (Section 3.1 trade-off: 2-instruction
//      O(P)-memory table vs 11-instruction compressed map)
//   2. eager/rendezvous threshold
//   3. matching-queue depth sensitivity
//   4. per-operation requests vs _NOREQ bulk completion
#include <cstdio>
#include <vector>

#include "bench/harness.hpp"
#include "comm/rankmap.hpp"
#include "obs/table.hpp"

using namespace lwmpi;

namespace {

// --- 1. Address translation ---------------------------------------------------
void ablate_rankmap() {
  bench::print_header("Ablation 1: rank->network-address representation (Section 3.1)");
  constexpr int kP = 4096;
  constexpr int kLookups = 2'000'000;

  std::vector<Rank> irregular(kP);
  for (int i = 0; i < kP; ++i) irregular[static_cast<std::size_t>(i)] = (i * 7919) % kP;

  struct Variant {
    const char* label;
    comm::RankMap map;
  };
  Variant variants[] = {
      {"compressed offset (world)", comm::RankMap::identity(kP)},
      {"compressed strided", comm::RankMap::strided(kP, 3, 2)},
      {"direct O(P) table", comm::RankMap::from_list(irregular)},
  };

  std::printf("%-28s %10s %14s %14s\n", "representation", "instr", "memory [B]",
              "lookups/s");
  for (Variant& v : variants) {
    cost::Meter m;
    {
      cost::ScopedMeter arm(m);
      v.map.to_world(1);
    }
    volatile Rank sink = 0;
    const std::uint64_t t0 = rt::now_ns();
    for (int i = 0; i < kLookups; ++i) {
      sink = v.map.to_world_nocharge(static_cast<Rank>(i & (kP - 1)));
    }
    const std::uint64_t dt = rt::now_ns() - t0;
    (void)sink;
    std::printf("%-28s %10llu %14zu %14.3g\n", v.label,
                static_cast<unsigned long long>(m.total()), v.map.memory_bytes(),
                dt > 0 ? kLookups * 1e9 / static_cast<double>(dt) : 0.0);
  }
  std::printf("trade-off: the direct table is 2 modeled instructions but O(P) memory per\n"
              "communicator; compressed maps are memory-free but ~11 instructions.\n");
}

// --- 2. Eager threshold --------------------------------------------------------
void ablate_eager_threshold() {
  bench::print_header("Ablation 2: eager/rendezvous threshold (8 KiB messages)");
  constexpr int kMsgBytes = 8 * 1024;
  constexpr int kMessages = 4000;
  std::printf("%-22s %16s %s\n", "threshold", "msg rate", "protocol");
  for (std::size_t threshold : {1024u, 4096u, 16384u, 65536u}) {
    WorldOptions o;
    o.profile = net::loopback();
    o.eager_threshold = threshold;
    o.ranks_per_node = 1;
    World w(2, o);
    double rate = 0.0;
    w.run([&](Engine& e) {
      std::vector<char> buf(kMsgBytes, 1);
      if (e.world_rank() == 0) {
        const std::uint64_t t0 = rt::now_ns();
        for (int i = 0; i < kMessages; ++i) {
          e.send(buf.data(), kMsgBytes, kChar, 1, 0, kCommWorld);
        }
        const std::uint64_t dt = rt::now_ns() - t0;
        rate = dt > 0 ? kMessages * 1e9 / static_cast<double>(dt) : 0.0;
      } else {
        for (int i = 0; i < kMessages; ++i) {
          e.recv(buf.data(), kMsgBytes, kChar, 0, 0, kCommWorld, nullptr);
        }
      }
    });
    std::printf("%-22zu %16s %s\n", threshold, bench::human_rate(rate).c_str(),
                threshold >= kMsgBytes ? "eager (1 copy, buffered)"
                                       : "rendezvous (handshake)");
  }
  std::printf("below the message size the transfer pays an RTS/CTS handshake; above it,\n"
              "a buffered copy. The crossover justifies the per-fabric default.\n");
}

// --- 3. Matching queue depth ----------------------------------------------------
void ablate_match_depth() {
  bench::print_header("Ablation 3: posted-receive queue depth vs match cost");
  std::printf("%-14s %16s\n", "queue depth", "matches/s");
  for (int depth : {0, 16, 128, 1024}) {
    WorldOptions o;
    o.ranks_per_node = 1;
    World w(2, o);
    double rate = 0.0;
    constexpr int kMsgs = 20000;
    w.run([&](Engine& e) {
      if (e.world_rank() == 1) {
        // Pre-post `depth` receives that never match (tag 9999), then serve
        // the measured traffic on tag 1 -- every arrival scans past the cold
        // entries first.
        std::vector<Request> cold(static_cast<std::size_t>(depth), kRequestNull);
        std::vector<int> sink(static_cast<std::size_t>(depth));
        for (int i = 0; i < depth; ++i) {
          e.irecv(&sink[static_cast<std::size_t>(i)], 1, kInt, 0, 9999, kCommWorld,
                  &cold[static_cast<std::size_t>(i)]);
        }
        int v = 0;
        const std::uint64_t t0 = rt::now_ns();
        for (int i = 0; i < kMsgs; ++i) {
          e.recv(&v, 1, kInt, 0, 1, kCommWorld, nullptr);
        }
        const std::uint64_t dt = rt::now_ns() - t0;
        rate = dt > 0 ? kMsgs * 1e9 / static_cast<double>(dt) : 0.0;
        for (auto& r : cold) e.cancel(&r);
        for (auto& r : cold) e.wait(&r, nullptr);
        int done = 1;
        e.send(&done, 1, kInt, 0, 2, kCommWorld);
      } else {
        int v = 7;
        for (int i = 0; i < kMsgs; ++i) {
          e.send(&v, 1, kInt, 1, 1, kCommWorld);
        }
        int done = 0;
        e.recv(&done, 1, kInt, 1, 2, kCommWorld, nullptr);
      }
    });
    std::printf("%-14d %16s\n", depth, bench::human_rate(rate).c_str());
  }
  std::printf("long posted queues linearize matching -- the motivation for the related\n"
              "matching-acceleration work the paper cites (Flajslik et al.).\n");
}

// --- 4. Requests vs NOREQ --------------------------------------------------------
void ablate_noreq() {
  bench::print_header("Ablation 4: per-operation requests vs _NOREQ bulk completion");
  constexpr int kMessages = 300000;
  const net::Profile profile = net::infinite();

  const double with_req =
      bench::isend_rate(profile, DeviceKind::Ch4, BuildConfig::no_err_single_ipo(),
                        kMessages);

  WorldOptions o;
  o.profile = profile;
  o.device = DeviceKind::Ch4;
  o.build = BuildConfig::no_err_single_ipo();
  o.ranks_per_node = 1;
  World w(1, o);
  double noreq_rate = 0.0;
  w.run([&](Engine& e) {
    char byte = 1;
    for (int i = 0; i < 2048; ++i) e.isend_noreq(&byte, 1, kChar, 0, 0, kCommWorld);
    e.comm_waitall(kCommWorld);
    const std::uint64_t t0 = rt::now_ns();
    for (int i = 0; i < kMessages; ++i) e.isend_noreq(&byte, 1, kChar, 0, 0, kCommWorld);
    e.comm_waitall(kCommWorld);
    const std::uint64_t dt = rt::now_ns() - t0;
    noreq_rate = dt > 0 ? kMessages * 1e9 / static_cast<double>(dt) : 0.0;
  });

  std::printf("%-30s %16s\n", "per-operation requests", bench::human_rate(with_req).c_str());
  std::printf("%-30s %16s\n", "_NOREQ + COMM_WAITALL", bench::human_rate(noreq_rate).c_str());
  std::printf("gain: %.1f%% (paper Section 3.5: ~10 instructions of request management\n"
              "replaced by a counter increment)\n",
              with_req > 0 ? 100.0 * (noreq_rate - with_req) / with_req : 0.0);
}

// --- 5. Allreduce algorithm crossover ---------------------------------------------
void ablate_allreduce_algorithm() {
  bench::print_header(
      "Ablation 5: allreduce algorithm (recursive doubling vs Rabenseifner)");
  // The engine switches to reduce-scatter + allgather at 8 KiB on power-of-
  // two communicators; sweeping the message size across the threshold shows
  // the bandwidth-optimal algorithm taking over.
  std::printf("%-14s %16s %12s\n", "doubles", "allreduces/s", "algorithm");
  for (int count : {64, 512, 1024, 4096, 32768}) {
    WorldOptions o;
    o.ranks_per_node = 2;
    World w(4, o);
    double rate = 0.0;
    w.run([&](Engine& e) {
      std::vector<double> in(static_cast<std::size_t>(count), 1.0);
      std::vector<double> out(static_cast<std::size_t>(count));
      const int iters = count >= 4096 ? 200 : 1000;
      for (int i = 0; i < 20; ++i) {
        e.allreduce(in.data(), out.data(), count, kDouble, ReduceOp::Sum, kCommWorld);
      }
      const std::uint64_t t0 = rt::now_ns();
      for (int i = 0; i < iters; ++i) {
        e.allreduce(in.data(), out.data(), count, kDouble, ReduceOp::Sum, kCommWorld);
      }
      const std::uint64_t dt = rt::now_ns() - t0;
      if (e.world_rank() == 0 && dt > 0) rate = iters * 1e9 / static_cast<double>(dt);
    });
    std::printf("%-14d %16.0f %12s\n", count, rate,
                static_cast<std::size_t>(count) * 8 >= 8192 ? "rabenseifner" : "doubling");
  }
  std::printf("large vectors move 2(p-1)/p of the data instead of lg(p) full copies.\n");
}

// --- 6. Attribution report ---------------------------------------------------
// Where every ablated instruction lives: the live per-category breakdown over
// the full measurement matrix, checked against the closed-form model.
int report_attribution() {
  bench::print_header("Ablation 6: cost attribution across the measurement matrix");
  const std::vector<obs::AttributionRow> rows = obs::collect_attribution();
  std::printf("%s", obs::table_report(rows, false).c_str());

  bool model_ok = true;
  for (const obs::AttributionRow& r : rows) model_ok = model_ok && r.model_ok;

  bench::JsonResult jr("ablation");
  cost::Meter m;
  {
    cost::ScopedMeter arm(m);
    comm::RankMap::identity(16).to_world(1);
  }
  jr.add("rankmap_compressed_instr", static_cast<double>(m.total()), "instr");
  m.reset();
  {
    cost::ScopedMeter arm(m);
    std::vector<Rank> irregular{3, 1, 0, 2};
    comm::RankMap::from_list(irregular).to_world(1);
  }
  jr.add("rankmap_direct_instr", static_cast<double>(m.total()), "instr");
  jr.add("model_ok", model_ok ? 1 : 0, "count");
  jr.add_raw("attribution", obs::table_report(rows, true));
  jr.write();
  return model_ok ? 0 : 1;
}

}  // namespace

int main() {
  ablate_rankmap();
  ablate_eager_threshold();
  ablate_match_depth();
  ablate_noreq();
  ablate_allreduce_algorithm();
  return report_attribution();
}
