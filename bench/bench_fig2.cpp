// Reproduces Figure 2: "MPI Instruction Counts" -- total modeled instruction
// counts for MPI_PUT and MPI_ISEND across the build matrix, from
// MPICH/Original down to the fully inlined MPICH/CH4 build.
//
// Each cell is a live metered walk checked bit-for-bit against the closed
// forms; the emitted BENCH_fig2.json is deterministic and doubles as a
// committed regression baseline (bench/baselines/BENCH_fig2.json).
#include <cstdio>

#include "bench/harness.hpp"
#include "obs/table.hpp"

using namespace lwmpi;

int main() {
  bench::print_header("Figure 2: MPI instruction counts across builds");

  struct PaperRef {
    unsigned put;
    unsigned isend;
  };
  const PaperRef paper[] = {{1342, 253}, {215, 221}, {143, 147}, {129, 141}, {44, 59}};

  const auto variants = bench::figure_variants();
  double max_count = 0;
  bool model_ok = true;
  std::vector<std::pair<obs::AttributionRow, obs::AttributionRow>> rows;  // (put, isend)
  for (const auto& v : variants) {
    rows.emplace_back(obs::attribution_row("put", v.device, v.build),
                      obs::attribution_row("isend", v.device, v.build));
    const auto put = rows.back().first.metered.total;
    const auto isend = rows.back().second.metered.total;
    model_ok = model_ok && rows.back().first.model_ok && rows.back().second.model_ok;
    max_count = std::max<double>(max_count, static_cast<double>(std::max(put, isend)));
  }

  std::printf("%-30s %10s %10s   %10s %10s\n", "build", "MPI_Put", "(paper)", "MPI_Isend",
              "(paper)");
  for (std::size_t i = 0; i < variants.size(); ++i) {
    std::printf("%-30s %10llu %10u   %10llu %10u\n", variants[i].label.c_str(),
                static_cast<unsigned long long>(rows[i].first.metered.total),
                paper[i].put,
                static_cast<unsigned long long>(rows[i].second.metered.total),
                paper[i].isend);
  }

  std::printf("\n");
  for (std::size_t i = 0; i < variants.size(); ++i) {
    bench::print_bar((variants[i].label + " Put").c_str(),
                     static_cast<double>(rows[i].first.metered.total), max_count, "instr");
    bench::print_bar((variants[i].label + " Isend").c_str(),
                     static_cast<double>(rows[i].second.metered.total), max_count, "instr");
  }
  std::printf("\nReduction vs MPICH/Original default build: Isend %.0f%%, Put %.0f%%\n",
              100.0 * (1.0 - static_cast<double>(rows.back().second.metered.total) /
                                 static_cast<double>(rows.front().second.metered.total)),
              100.0 * (1.0 - static_cast<double>(rows.back().first.metered.total) /
                                 static_cast<double>(rows.front().first.metered.total)));
  std::printf("model check: %s\n", model_ok ? "OK" : "MISMATCH");

  bench::JsonResult jr("fig2");
  std::vector<obs::AttributionRow> flat;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const std::string dev = variants[i].device == DeviceKind::Orig ? "orig" : "ch4";
    const std::string key = dev + "_" + variants[i].build.label();
    jr.add("put_" + key, static_cast<double>(rows[i].first.metered.total), "instr");
    jr.add("isend_" + key, static_cast<double>(rows[i].second.metered.total), "instr");
    flat.push_back(rows[i].second);
    flat.push_back(rows[i].first);
  }
  jr.add("model_ok", model_ok ? 1 : 0, "count");
  jr.add_raw("attribution", obs::table_report(flat, true));
  jr.write();

  return model_ok ? 0 : 1;
}
