// Reproduces Figure 2: "MPI Instruction Counts" -- total modeled instruction
// counts for MPI_PUT and MPI_ISEND across the build matrix, from
// MPICH/Original down to the fully inlined MPICH/CH4 build.
#include <cstdio>

#include "bench/harness.hpp"

using namespace lwmpi;

int main() {
  bench::print_header("Figure 2: MPI instruction counts across builds");

  struct PaperRef {
    unsigned put;
    unsigned isend;
  };
  const PaperRef paper[] = {{1342, 253}, {215, 221}, {143, 147}, {129, 141}, {44, 59}};

  const auto variants = bench::figure_variants();
  double max_count = 0;
  std::vector<std::pair<unsigned long long, unsigned long long>> counts;
  for (const auto& v : variants) {
    const auto put = bench::metered_put(v.device, v.build).total();
    const auto isend = bench::metered_isend(v.device, v.build).total();
    counts.emplace_back(put, isend);
    max_count = std::max<double>(max_count, static_cast<double>(std::max(put, isend)));
  }

  std::printf("%-30s %10s %10s   %10s %10s\n", "build", "MPI_Put", "(paper)", "MPI_Isend",
              "(paper)");
  for (std::size_t i = 0; i < variants.size(); ++i) {
    std::printf("%-30s %10llu %10u   %10llu %10u\n", variants[i].label.c_str(),
                counts[i].first, paper[i].put, counts[i].second, paper[i].isend);
  }

  std::printf("\n");
  for (std::size_t i = 0; i < variants.size(); ++i) {
    bench::print_bar((variants[i].label + " Put").c_str(),
                     static_cast<double>(counts[i].first), max_count, "instr");
    bench::print_bar((variants[i].label + " Isend").c_str(),
                     static_cast<double>(counts[i].second), max_count, "instr");
  }
  std::printf("\nReduction vs MPICH/Original default build: Isend %.0f%%, Put %.0f%%\n",
              100.0 * (1.0 - static_cast<double>(counts.back().second) /
                                 static_cast<double>(counts.front().second)),
              100.0 * (1.0 - static_cast<double>(counts.back().first) /
                                 static_cast<double>(counts.front().first)));
  return 0;
}
