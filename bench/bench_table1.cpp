// Reproduces Table 1: "Instruction analysis for MPI calls" -- the category
// breakdown of MPI_ISEND and MPI_PUT on the default MPICH/CH4 build, measured
// by walking the real critical path with the cost meter armed (our substitute
// for the paper's Intel SDE traces).
//
// Every metered row is checked bit-for-bit against the closed-form
// decomposition (obs::AttributionRow::model_ok); a drifted charge site fails
// the run. The emitted BENCH_table1.json is fully deterministic (instruction
// counts only) and serves as a committed regression baseline
// (bench/baselines/BENCH_table1.json, compared by tools/bench_check).
#include <cstdio>

#include "bench/harness.hpp"
#include "obs/table.hpp"

using namespace lwmpi;
using G = cost::Group;

namespace {

struct PaperRow {
  const char* reason;
  G group;
  unsigned paper_isend;
  unsigned paper_put;
};

constexpr PaperRow kRows[] = {
    {"Error checking", G::ErrorChecking, 74, 72},
    {"Thread-safety check", G::ThreadSafety, 6, 14},
    {"MPI function call", G::FunctionCall, 23, 25},
    {"Redundant runtime checks", G::RedundantChecks, 59, 62},
    {"MPI mandatory overheads", G::Mandatory, 59, 44},
};

}  // namespace

int main() {
  bench::print_header("Table 1: Instruction analysis for MPI calls (MPICH/CH4, default build)");

  const obs::AttributionRow isend =
      obs::attribution_row("isend", DeviceKind::Ch4, BuildConfig::dflt());
  const obs::AttributionRow put =
      obs::attribution_row("put", DeviceKind::Ch4, BuildConfig::dflt());

  std::printf("%-28s | %10s %10s | %10s %10s\n", "Reason", "ISEND", "(paper)", "PUT",
              "(paper)");
  std::printf("-----------------------------+-----------------------+----------------------\n");
  unsigned paper_isend_total = 0;
  unsigned paper_put_total = 0;
  for (const PaperRow& row : kRows) {
    std::printf("%-28s | %10llu %10u | %10llu %10u\n", row.reason,
                static_cast<unsigned long long>(isend.metered.group(row.group)),
                row.paper_isend,
                static_cast<unsigned long long>(put.metered.group(row.group)),
                row.paper_put);
    paper_isend_total += row.paper_isend;
    paper_put_total += row.paper_put;
  }
  std::printf("-----------------------------+-----------------------+----------------------\n");
  std::printf("%-28s | %10llu %10u | %10llu %10u\n", "Total",
              static_cast<unsigned long long>(isend.metered.total), paper_isend_total,
              static_cast<unsigned long long>(put.metered.total), paper_put_total);

  bench::print_header("Mandatory-overhead decomposition (Section 3 fine categories)");
  std::printf("%-26s %10s %10s\n", "category", "ISEND", "PUT");
  for (std::size_t c = 0; c < cost::kNumCategories; ++c) {
    const auto cat = static_cast<cost::Category>(c);
    if (cost::group_of(cat) != cost::Group::Mandatory) continue;
    std::printf("%-26s %10llu %10llu\n", std::string(cost::to_string(cat)).c_str(),
                static_cast<unsigned long long>(isend.metered.category(cat)),
                static_cast<unsigned long long>(put.metered.category(cat)));
  }

  std::printf("\nmodel check: isend %s (modeled %u), put %s (modeled %u)\n",
              isend.model_ok ? "OK" : "MISMATCH", isend.modeled.total(),
              put.model_ok ? "OK" : "MISMATCH", put.modeled.total());

  bench::JsonResult jr("table1");
  jr.add("isend_total", static_cast<double>(isend.metered.total), "instr");
  jr.add("put_total", static_cast<double>(put.metered.total), "instr");
  for (const PaperRow& row : kRows) {
    const std::string key(cost::to_string(row.group));
    jr.add("isend_" + key, static_cast<double>(isend.metered.group(row.group)), "instr");
    jr.add("put_" + key, static_cast<double>(put.metered.group(row.group)), "instr");
  }
  jr.add("model_ok", isend.model_ok && put.model_ok ? 1 : 0, "count");
  const obs::AttributionRow rows[] = {isend, put};
  jr.add_raw("attribution", obs::table_report(rows, true));
  jr.write();

  return isend.model_ok && put.model_ok ? 0 : 1;
}
