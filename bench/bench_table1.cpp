// Reproduces Table 1: "Instruction analysis for MPI calls" -- the category
// breakdown of MPI_ISEND and MPI_PUT on the default MPICH/CH4 build, measured
// by walking the real critical path with the cost meter armed (our substitute
// for the paper's Intel SDE traces).
#include <cstdio>

#include "bench/harness.hpp"

using namespace lwmpi;
using C = cost::Category;

namespace {

struct PaperRow {
  const char* reason;
  C category;
  unsigned paper_isend;
  unsigned paper_put;
};

constexpr PaperRow kRows[] = {
    {"Error checking", C::ErrorChecking, 74, 72},
    {"Thread-safety check", C::ThreadSafety, 6, 14},
    {"MPI function call", C::FunctionCall, 23, 25},
    {"Redundant runtime checks", C::RedundantChecks, 59, 62},
    {"MPI mandatory overheads", C::Mandatory, 59, 44},
};

}  // namespace

int main() {
  bench::print_header("Table 1: Instruction analysis for MPI calls (MPICH/CH4, default build)");

  const cost::Meter isend = bench::metered_isend(DeviceKind::Ch4, BuildConfig::dflt());
  const cost::Meter put = bench::metered_put(DeviceKind::Ch4, BuildConfig::dflt());

  std::printf("%-28s | %10s %10s | %10s %10s\n", "Reason", "ISEND", "(paper)", "PUT",
              "(paper)");
  std::printf("-----------------------------+-----------------------+----------------------\n");
  unsigned paper_isend_total = 0;
  unsigned paper_put_total = 0;
  for (const PaperRow& row : kRows) {
    std::printf("%-28s | %10llu %10u | %10llu %10u\n", row.reason,
                static_cast<unsigned long long>(isend.category(row.category)),
                row.paper_isend,
                static_cast<unsigned long long>(put.category(row.category)), row.paper_put);
    paper_isend_total += row.paper_isend;
    paper_put_total += row.paper_put;
  }
  std::printf("-----------------------------+-----------------------+----------------------\n");
  std::printf("%-28s | %10llu %10u | %10llu %10u\n", "Total",
              static_cast<unsigned long long>(isend.total()), paper_isend_total,
              static_cast<unsigned long long>(put.total()), paper_put_total);

  bench::print_header("Mandatory-overhead decomposition (Section 3 sub-reasons, ISEND)");
  for (auto r : {cost::Reason::RankTranslation, cost::Reason::ObjectDeref,
                 cost::Reason::ProcNullCheck, cost::Reason::RequestManagement,
                 cost::Reason::MatchBits, cost::Reason::Residual}) {
    std::printf("  %-26s %llu\n", std::string(cost::to_string(r)).c_str(),
                static_cast<unsigned long long>(isend.reason(r)));
  }
  bench::print_header("Mandatory-overhead decomposition (Section 3 sub-reasons, PUT)");
  for (auto r : {cost::Reason::RankTranslation, cost::Reason::VirtualAddressing,
                 cost::Reason::ObjectDeref, cost::Reason::ProcNullCheck,
                 cost::Reason::RequestManagement, cost::Reason::Residual}) {
    std::printf("  %-26s %llu\n", std::string(cost::to_string(r)).c_str(),
                static_cast<unsigned long long>(put.reason(r)));
  }
  return 0;
}
