// Ping-pong latency vs message size (osu_latency-style), CH4 vs Original on
// the simulated PSM2 fabric. Complements the paper's message-rate figures:
// the software-path savings appear as a constant-offset latency gap at small
// sizes and wash out once bandwidth dominates.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/harness.hpp"

using namespace lwmpi;

namespace {

double pingpong_us(const net::Profile& profile, DeviceKind device, std::size_t bytes,
                   int iters) {
  WorldOptions o;
  o.profile = profile;
  o.device = device;
  o.ranks_per_node = 1;
  World w(2, o);
  double usec = 0.0;
  w.run([&](Engine& e) {
    std::vector<char> buf(std::max<std::size_t>(bytes, 1), 7);
    const int n = static_cast<int>(bytes);
    const int me = e.world_rank();
    // Warmup.
    for (int i = 0; i < 50; ++i) {
      if (me == 0) {
        e.send(buf.data(), n, kChar, 1, 0, kCommWorld);
        e.recv(buf.data(), n, kChar, 1, 0, kCommWorld, nullptr);
      } else {
        e.recv(buf.data(), n, kChar, 0, 0, kCommWorld, nullptr);
        e.send(buf.data(), n, kChar, 0, 0, kCommWorld);
      }
    }
    e.barrier(kCommWorld);
    const std::uint64_t t0 = rt::now_ns();
    for (int i = 0; i < iters; ++i) {
      if (me == 0) {
        e.send(buf.data(), n, kChar, 1, 0, kCommWorld);
        e.recv(buf.data(), n, kChar, 1, 0, kCommWorld, nullptr);
      } else {
        e.recv(buf.data(), n, kChar, 0, 0, kCommWorld, nullptr);
        e.send(buf.data(), n, kChar, 0, 0, kCommWorld);
      }
    }
    const std::uint64_t dt = rt::now_ns() - t0;
    if (me == 0) usec = static_cast<double>(dt) / 1000.0 / (2.0 * iters);  // one-way
  });
  return usec;
}

}  // namespace

int main() {
  bench::print_header("Ping-pong latency vs size (sim-ofi-psm2), CH4 vs Original");
  const net::Profile profile = net::psm2();
  std::printf("%-12s %14s %14s %10s\n", "bytes", "orig [us]", "ch4 [us]", "gap [us]");
  for (std::size_t bytes : {std::size_t{1}, std::size_t{64}, std::size_t{1024},
                            std::size_t{16 * 1024}, std::size_t{128 * 1024},
                            std::size_t{1024 * 1024}}) {
    const int iters = bytes >= 128 * 1024 ? 200 : 1000;
    double orig = 1e300, ch4 = 1e300;
    for (int rep = 0; rep < 3; ++rep) {  // best-of: shared-core jitter
      orig = std::min(orig, pingpong_us(profile, DeviceKind::Orig, bytes, iters));
      ch4 = std::min(ch4,
                     pingpong_us(profile, DeviceKind::Ch4, bytes, iters));
    }
    std::printf("%-12zu %14.2f %14.2f %10.2f\n", bytes, orig, ch4, orig - ch4);
  }
  std::printf("\nexpected shape: a roughly constant software-path gap at small sizes\n"
              "(latency-bound) that becomes irrelevant at large sizes (bandwidth-bound,\n"
              "rendezvous protocol).\n");
  return 0;
}
