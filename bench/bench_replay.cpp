// Trace-driven workload replay as a benchmark (apps/replay.hpp).
//
// The three committed bundles under bench/traces/ -- a 4-rank stencil halo
// exchange, an 8-rank MD ghost exchange, and a 4-rank checkpoint-storm
// incast -- are re-executed on both netmods at maximum throughput
// (timescale 0). For every bundle x netmod cell the bench reports replay
// throughput, the replay world's p99 receive latency from the histogram
// tier, and its wait-state mix from the causal tier, and requires the
// engine-level fidelity diff (sends/recvs/match totals vs the recording's
// frozen headers) to be exact. Fabric totals are only required to match on
// the netmod the bundle was recorded on; cross-netmod replays answer "what
// would this app's communication do on the other transport", where
// packetization legitimately differs.
//
// Run from the build tree: the trace directory defaults to
// `<src>/bench/traces` via LWMPI_TRACE_DIR or argv[1], falling back to the
// relative path for in-tree runs.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/replay.hpp"
#include "bench/harness.hpp"

using namespace lwmpi;

namespace {

const char* kBundles[] = {"stencil4", "md8", "storm4"};
const char* kNetmods[] = {"mailbox", "rdma"};

// What each replay world is asked to report back (apps/replay.hpp: _count
// names are summed across ranks, percentile names report the worst rank).
const std::vector<std::string> kCapture = {
    "lat_recv_eager_p99_ns",        "lat_recv_rdv_p99_ns",
    "wait_late_sender_count",       "wait_late_receiver_count",
    "wait_progress_starved_count",  "wait_credit_stalled_count",
};

std::string trace_dir(int argc, char** argv) {
  if (argc > 1) return argv[1];
  if (const char* d = std::getenv("LWMPI_TRACE_DIR"); d != nullptr && *d != '\0') {
    return d;
  }
  return "bench/traces";
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("trace replay throughput (committed bundles, both netmods)");
  const std::string dir = trace_dir(argc, argv);
  bench::JsonResult jr("replay");
  bool all_exact = true;

  for (const char* bundle_name : kBundles) {
    apps::TraceBundle bundle;
    std::string err;
    if (!apps::load_trace(dir + "/" + bundle_name, &bundle, &err)) {
      std::fprintf(stderr, "bench_replay: %s\n", err.c_str());
      return 1;
    }
    for (const char* netmod : kNetmods) {
      apps::ReplayOptions opts;
      opts.netmod = netmod;
      opts.capture_pvars = kCapture;
      const apps::ReplayResult res = apps::run_replay(bundle, opts);
      const std::string cell = std::string(bundle_name) + "_" + netmod;
      if (!res.ok || !res.fidelity_checked || !res.fidelity_ok ||
          res.timeouts != 0) {
        all_exact = false;
        std::printf("%-24s FIDELITY MISMATCH (%zu diff(s), %llu timeout(s))\n",
                    cell.c_str(), res.diffs.size(),
                    static_cast<unsigned long long>(res.timeouts));
        for (const std::string& d : res.diffs) std::printf("    %s\n", d.c_str());
      }
      const double secs = static_cast<double>(res.wall_ns) / 1e9;
      const double rate =
          secs > 0 ? static_cast<double>(res.replayed) / secs : 0.0;
      std::printf("%-24s %10.0f ops/s  (%llu ops, %.2f ms, fabric %s)\n",
                  cell.c_str(), rate,
                  static_cast<unsigned long long>(res.replayed),
                  static_cast<double>(res.wall_ns) / 1e6,
                  res.fabric_checked ? (res.fabric_ok ? "exact" : "DIFFERS")
                                     : "n/a");
      jr.add(cell + "_ops_per_sec", rate, "ops/s");
      jr.add(cell + "_replayed", static_cast<double>(res.replayed), "count");
      jr.add(cell + "_skipped", static_cast<double>(res.skipped), "count");
      jr.add(cell + "_timeouts", static_cast<double>(res.timeouts), "count");
      jr.add(cell + "_fidelity_exact",
             res.fidelity_checked && res.fidelity_ok ? 1.0 : 0.0, "bool");
      for (const auto& [name, value] : res.pvars) {
        jr.add(cell + "_" + name, static_cast<double>(value),
               name.ends_with("_ns") ? "ns" : "count");
      }
    }
  }

  jr.write();
  if (!all_exact) {
    std::fprintf(stderr, "bench_replay: fidelity gate failed\n");
    return 1;
  }
  return 0;
}
