// Reproduces Figure 6: "MPI standard improvements for MPI_ISEND on infinitely
// fast network" -- message rates for each Section-3 proposed extension on the
// best (no-err-single-ipo) build, plus the modeled instruction count of each
// variant's path. The paper peaks at ~132.8M msg/s for minimal_pt2pt (the
// 16-instruction MPI_ISEND_ALL_OPTS path).
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/harness.hpp"

using namespace lwmpi;

namespace {

// One measured variant: issues `messages` 1-byte sends on a blackhole world
// (rank 0 targeting itself, per the paper's modified-library methodology).
struct ExtVariant {
  std::string label;
  // Issue `n` messages from engine `e`; returns when all are locally complete.
  std::function<void(Engine& e, int n)> run;
  // Issue exactly one metered message (for the instruction-count column).
  std::function<void(Engine& e)> one;
};

double ext_rate(const ExtVariant& v, int messages) {
  WorldOptions o;
  o.profile = net::infinite();
  o.device = DeviceKind::Ch4;
  o.build = BuildConfig::no_err_single_ipo();
  o.ranks_per_node = 1;
  World w(1, o);
  double rate = 0.0;
  w.run([&](Engine& e) {
    e.comm_dup_predefined(kCommWorld, kComm1);
    v.run(e, 2048);  // warmup
    const std::uint64_t t0 = rt::now_ns();
    v.run(e, messages);
    const std::uint64_t dt = rt::now_ns() - t0;
    rate = dt > 0 ? messages * 1e9 / static_cast<double>(dt) : 0.0;
  });
  return rate;
}

std::uint64_t ext_instructions(const ExtVariant& v) {
  WorldOptions o;
  o.profile = net::infinite();
  o.device = DeviceKind::Ch4;
  o.build = BuildConfig::no_err_single_ipo();
  o.ranks_per_node = 1;
  World w(1, o);
  cost::Meter m;
  w.run([&](Engine& e) {
    e.comm_dup_predefined(kCommWorld, kComm1);
    cost::ScopedMeter arm(m);
    v.one(e);
  });
  return m.total();
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 6: MPI standard improvements for MPI_ISEND on infinitely fast network");

  static char byte = 1;
  auto drain = [](Engine& e, std::vector<Request>& reqs) {
    e.waitall(reqs, {});
    for (auto& r : reqs) r = kRequestNull;
  };

  std::vector<ExtVariant> variants;
  variants.push_back(
      {"minimal_pt2pt (ALL_OPTS)",
       [](Engine& e, int n) {
         for (int i = 0; i < n; ++i) e.isend_all_opts(&byte, 1, kChar, 0, kComm1);
         e.comm_waitall(kComm1);
       },
       [](Engine& e) { e.isend_all_opts(&byte, 1, kChar, 0, kComm1); }});
  variants.push_back(
      {"no_req (ISEND_NOREQ)",
       [](Engine& e, int n) {
         for (int i = 0; i < n; ++i) e.isend_noreq(&byte, 1, kChar, 0, 0, kCommWorld);
         e.comm_waitall(kCommWorld);
       },
       [](Engine& e) { e.isend_noreq(&byte, 1, kChar, 0, 0, kCommWorld); }});
  variants.push_back(
      {"no_match (ISEND_NOMATCH)",
       [drain](Engine& e, int n) {
         std::vector<Request> reqs(static_cast<std::size_t>(bench::kRateWindow),
                                   kRequestNull);
         int issued = 0;
         while (issued < n) {
           int i = 0;
           for (; i < bench::kRateWindow && issued < n; ++i, ++issued) {
             e.isend_nomatch(&byte, 1, kChar, 0, kCommWorld,
                             &reqs[static_cast<std::size_t>(i)]);
           }
           drain(e, reqs);
         }
       },
       [](Engine& e) {
         Request r = kRequestNull;
         e.isend_nomatch(&byte, 1, kChar, 0, kCommWorld, &r);
         e.wait(&r, nullptr);
       }});
  variants.push_back(
      {"glob_rank (ISEND_GLOBAL)",
       [drain](Engine& e, int n) {
         std::vector<Request> reqs(static_cast<std::size_t>(bench::kRateWindow),
                                   kRequestNull);
         int issued = 0;
         while (issued < n) {
           int i = 0;
           for (; i < bench::kRateWindow && issued < n; ++i, ++issued) {
             e.isend_global(&byte, 1, kChar, 0, 0, kCommWorld,
                            &reqs[static_cast<std::size_t>(i)]);
           }
           drain(e, reqs);
         }
       },
       [](Engine& e) {
         Request r = kRequestNull;
         e.isend_global(&byte, 1, kChar, 0, 0, kCommWorld, &r);
         e.wait(&r, nullptr);
       }});
  variants.push_back(
      {"no_proc_null (ISEND_NPN)",
       [drain](Engine& e, int n) {
         std::vector<Request> reqs(static_cast<std::size_t>(bench::kRateWindow),
                                   kRequestNull);
         int issued = 0;
         while (issued < n) {
           int i = 0;
           for (; i < bench::kRateWindow && issued < n; ++i, ++issued) {
             e.isend_npn(&byte, 1, kChar, 0, 0, kCommWorld,
                         &reqs[static_cast<std::size_t>(i)]);
           }
           drain(e, reqs);
         }
       },
       [](Engine& e) {
         Request r = kRequestNull;
         e.isend_npn(&byte, 1, kChar, 0, 0, kCommWorld, &r);
         e.wait(&r, nullptr);
       }});
  variants.push_back(
      {"baseline (ISEND, best build)",
       [drain](Engine& e, int n) {
         std::vector<Request> reqs(static_cast<std::size_t>(bench::kRateWindow),
                                   kRequestNull);
         int issued = 0;
         while (issued < n) {
           int i = 0;
           for (; i < bench::kRateWindow && issued < n; ++i, ++issued) {
             e.isend(&byte, 1, kChar, 0, 0, kCommWorld,
                     &reqs[static_cast<std::size_t>(i)]);
           }
           drain(e, reqs);
         }
       },
       [](Engine& e) {
         Request r = kRequestNull;
         e.isend(&byte, 1, kChar, 0, 0, kCommWorld, &r);
         e.wait(&r, nullptr);
       }});

  constexpr int kMessages = 400000;
  struct Row {
    std::string label;
    std::uint64_t instr;
    double rate;
  };
  std::vector<Row> rows;
  double max_rate = 0;
  for (const auto& v : variants) {
    Row r{v.label, ext_instructions(v), ext_rate(v, kMessages)};
    max_rate = std::max(max_rate, r.rate);
    std::printf("  measured %-30s %3llu instr  %s\n", r.label.c_str(),
                static_cast<unsigned long long>(r.instr), bench::human_rate(r.rate).c_str());
    rows.push_back(std::move(r));
  }

  std::printf("\n%-32s %8s %16s\n", "variant", "instr", "message rate");
  for (const Row& r : rows) {
    std::printf("%-32s %8llu %16s\n", r.label.c_str(),
                static_cast<unsigned long long>(r.instr), bench::human_rate(r.rate).c_str());
  }
  std::printf("\n");
  for (const Row& r : rows) {
    bench::print_bar(r.label.c_str(), r.rate / 1e6, max_rate / 1e6, "M/s");
  }
  std::printf("\nnote: the metered single-shot column includes the request wait for the\n"
              "request-returning variants; the issue-rate loop is the figure's metric.\n");
  return 0;
}
