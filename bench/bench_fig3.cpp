// Reproduces Figure 3: message rates with the OFI/PSM2-like simulated fabric
// (the paper's "IT" cluster with Intel Omni-Path). Expected shape: ~1.5x for
// MPI_ISEND and ~4x for MPI_PUT from MPICH/Original to the best CH4 build,
// capped by the fixed per-message network injection cost.
//
// Runs once per netmod backend (mailbox, rdma) and writes the per-backend
// BENCH_fig3_<backend>.json artifacts the regression sentinel tracks.
#include "bench/rate_figure.hpp"

int main() {
  return lwmpi::bench::run_rate_figure_backends(
      "Figure 3: message rates with OFI/PSM2 (simulated)", lwmpi::net::psm2(), "fig3");
}
