// Multithreaded message-rate scaling across virtual communication interfaces.
//
// Four threads on one rank each drive their own predefined communicator
// (MPI_COMM_1..4) with an isend window loop on the infinitely-fast-network
// profile. With num_vcis=4 the communicators pin to four distinct channels,
// so the threads issue through four independent locks/matchers; with
// num_vcis=1 everything funnels through one channel and the threads serialize
// on its lock.
//
// Two views are reported:
//   * wall-clock aggregate rate -- meaningful only with >= 4 hardware cores;
//     on a 1-core box the OS timeslices the threads and both configurations
//     converge to the same wall time.
//   * simulated aggregate rate -- derived from each channel's busy_instr
//     accumulator (device instructions executed under that channel's lock,
//     plus the modeled penalty on contended acquisitions). A channel is a
//     serial resource, so the busiest channel bounds the run:
//     rate_sim ~ total_messages / max_v busy_instr(v). This captures the
//     per-channel parallelism the VCI design exposes independent of how many
//     cores the host happens to have.
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/harness.hpp"

using namespace lwmpi;

namespace {

constexpr int kThreads = 4;
constexpr int kMessagesPerThread = 100000;
constexpr int kWindow = 256;

struct VciRun {
  double wall_rate = 0.0;      // msgs/s across all threads, wall clock
  std::uint64_t max_busy = 0;  // busiest channel's instruction count
  std::uint64_t contended = 0; // contended lock acquisitions, all channels
  int distinct_vcis = 0;       // channels actually used by the 4 comms
};

VciRun run_mt_rate(int num_vcis) {
  WorldOptions o;
  o.profile = net::infinite();
  o.device = DeviceKind::Ch4;
  o.build = BuildConfig::dflt();  // thread gate ON: that is what VCIs relieve
  o.build.num_vcis = num_vcis;
  o.ranks_per_node = 1;
  World w(1, o);
  VciRun out;
  w.run([&](Engine& e) {
    const Comm comms[kThreads] = {kComm1, kComm2, kComm3, kComm4};
    for (Comm c : comms) {
      if (e.comm_dup_predefined(kCommWorld, c) != Err::Success) return;
    }
    std::vector<bool> seen(static_cast<std::size_t>(e.num_vcis()), false);
    for (Comm c : comms) seen[static_cast<std::size_t>(e.vci_of(c))] = true;
    for (bool s : seen) out.distinct_vcis += s ? 1 : 0;

    const std::uint64_t t0 = rt::now_ns();
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&e, c = comms[t]] {
        char byte = 1;
        std::vector<Request> reqs(kWindow, kRequestNull);
        int issued = 0;
        while (issued < kMessagesPerThread) {
          for (int i = 0; i < kWindow && issued < kMessagesPerThread; ++i, ++issued) {
            e.isend(&byte, 1, kChar, 0, 0, c, &reqs[static_cast<std::size_t>(i)]);
          }
          e.waitall(reqs, {});
        }
      });
    }
    for (std::thread& th : threads) th.join();
    const std::uint64_t dt = rt::now_ns() - t0;
    out.wall_rate =
        dt > 0 ? kThreads * kMessagesPerThread * 1e9 / static_cast<double>(dt) : 0.0;
    for (int v = 0; v < e.num_vcis(); ++v) {
      out.max_busy = std::max(out.max_busy, e.vci_busy_instr(v));
      out.contended += e.vci_contended(v);
    }
  });
  return out;
}

// Single-threaded single-communicator latency check: the VCI machinery must
// not tax the uncontended path.
double st_latency_us() {
  WorldOptions o;
  o.profile = net::psm2();
  o.device = DeviceKind::Ch4;
  o.ranks_per_node = 1;
  World w(2, o);
  double usec = 0.0;
  w.run([&](Engine& e) {
    char buf = 0;
    const int me = e.world_rank();
    constexpr int kIters = 2000;
    for (int i = 0; i < 100; ++i) {  // warmup
      if (me == 0) {
        e.send(&buf, 1, kChar, 1, 0, kCommWorld);
        e.recv(&buf, 1, kChar, 1, 0, kCommWorld, nullptr);
      } else {
        e.recv(&buf, 1, kChar, 0, 0, kCommWorld, nullptr);
        e.send(&buf, 1, kChar, 0, 0, kCommWorld);
      }
    }
    e.barrier(kCommWorld);
    const std::uint64_t t0 = rt::now_ns();
    for (int i = 0; i < kIters; ++i) {
      if (me == 0) {
        e.send(&buf, 1, kChar, 1, 0, kCommWorld);
        e.recv(&buf, 1, kChar, 1, 0, kCommWorld, nullptr);
      } else {
        e.recv(&buf, 1, kChar, 0, 0, kCommWorld, nullptr);
        e.send(&buf, 1, kChar, 0, 0, kCommWorld);
      }
    }
    const std::uint64_t dt = rt::now_ns() - t0;
    if (me == 0) usec = static_cast<double>(dt) / 1000.0 / (2.0 * kIters);
  });
  return usec;
}

// Deterministic observability-overhead check: the always-on counters must not
// perturb the *modeled* instruction stream. Run one fixed single-threaded
// workload with counters on and off and compare the busy_instr totals -- the
// simulated clock is deterministic, so any difference means a counter hook
// leaked a cost::charge onto the fast path.
std::uint64_t busy_total(bool counters) {
  WorldOptions o;
  o.profile = net::loopback();
  o.device = DeviceKind::Ch4;
  o.ranks_per_node = 1;
  o.build.counters = counters;
  World w(2, o);
  Engine& e0 = w.engine(0);
  Engine& e1 = w.engine(1);
  char byte = 1;
  for (int i = 0; i < 1000; ++i) {
    Request r = kRequestNull;
    e0.isend(&byte, 1, kChar, 1, i, kCommWorld, &r);
    e0.wait(&r, nullptr);
    char got = 0;
    e1.recv(&got, 1, kChar, 0, i, kCommWorld, nullptr);
  }
  std::uint64_t total = 0;
  for (int v = 0; v < e0.num_vcis(); ++v) total += e0.vci_busy_instr(v);
  for (int v = 0; v < e1.num_vcis(); ++v) total += e1.vci_busy_instr(v);
  return total;
}

}  // namespace

int main() {
  bench::print_header("MT message rate vs VCI count (4 threads, 4 comms, blackhole)");

  const VciRun one = run_mt_rate(1);
  const VciRun four = run_mt_rate(4);
  const std::uint64_t total =
      static_cast<std::uint64_t>(kThreads) * kMessagesPerThread;

  std::printf("%-22s %16s %16s %14s %12s\n", "config", "wall [msg/s]", "sim rate [au]",
              "max busy", "contended");
  const auto sim_rate = [total](const VciRun& r) {
    return r.max_busy > 0 ? static_cast<double>(total) / static_cast<double>(r.max_busy)
                          : 0.0;
  };
  std::printf("%-22s %16.3g %16.4f %14llu %12llu\n", "1 VCI (monolithic)", one.wall_rate,
              sim_rate(one), static_cast<unsigned long long>(one.max_busy),
              static_cast<unsigned long long>(one.contended));
  std::printf("%-22s %16.3g %16.4f %14llu %12llu\n", "4 VCIs", four.wall_rate,
              sim_rate(four), static_cast<unsigned long long>(four.max_busy),
              static_cast<unsigned long long>(four.contended));
  std::printf("comms spread over %d distinct channel(s) at 4 VCIs\n", four.distinct_vcis);

  const double speedup = sim_rate(one) > 0 ? sim_rate(four) / sim_rate(one) : 0.0;
  std::printf("\nsimulated aggregate speedup (4 VCIs vs 1): %.2fx", speedup);
  std::printf("  [acceptance: >= 2x]\n");
  std::printf("wall-clock speedup: %.2fx (core-count dependent; informational)\n",
              one.wall_rate > 0 ? four.wall_rate / one.wall_rate : 0.0);

  const double lat = st_latency_us();
  std::printf("single-threaded ping-pong latency (psm2, world comm): %.2f us\n", lat);

  const std::uint64_t busy_on = busy_total(true);
  const std::uint64_t busy_off = busy_total(false);
  std::printf("modeled busy_instr, counters on/off: %llu / %llu  [acceptance: equal]\n",
              static_cast<unsigned long long>(busy_on),
              static_cast<unsigned long long>(busy_off));

  return speedup >= 2.0 && busy_on == busy_off ? 0 : 1;
}
