// Reproduces Figure 7: Nek5000 mass-matrix inversion (CG model problem).
//
//   left panel  -- gridpoint-iterations per processor-second vs n/P, for the
//                  Std (MPICH/Original-like) and Lite (CH4) stacks, N=3,5,7
//   center panel-- Lite/Std performance ratio vs n/P (paper: 1.2-1.25 peak in
//                  the n/P ~ 100-1000 range, converging to 1 at large n/P)
//   right panel -- strong-scaling efficiency estimate vs n/P
//
// Substitution (DESIGN.md): 4 simulated ranks over the BG/Q-like cost profile
// instead of 16384 BG/Q ranks; the x-axis (granularity n/P) and who-wins
// shape carry over because the effect is communication-to-computation ratio.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/nek.hpp"
#include "bench/harness.hpp"

using namespace lwmpi;

namespace {

constexpr int kRanks = 4;
constexpr int kCgIters = 20;
constexpr int kRepeats = 2;  // take the best: scheduler noise on shared cores

double nek_rate_once(DeviceKind device, int order, std::int64_t elems) {
  WorldOptions o;
  o.profile = net::bgq();
  o.device = device;
  // "Std" is the stock original build; "Lite" is the paper's optimized CH4
  // library (error checking off, single-threaded, link-time inlined).
  o.build = device == DeviceKind::Ch4 ? BuildConfig::no_err_single_ipo()
                                      : BuildConfig::dflt();
  o.ranks_per_node = 2;
  // BG/Q A2: 1.6 GHz in-order, IPC well under 1 on branchy runtime code.
  o.sim_ns_per_instruction = 2.0;
  World w(kRanks, o);
  double rate = 0.0;
  w.run([&](Engine& e) {
    apps::NekConfig cfg;
    cfg.order = order;
    cfg.elems_total = elems;
    cfg.cg_iters = kCgIters;
    // A fixed number of solves (identical on every rank -- the solve is a
    // collective); keep the best single-solve rate to shed scheduler noise.
    constexpr int kSolves = 4;
    double best = 0.0;
    for (int s = 0; s < kSolves; ++s) {
      const apps::NekResult r = apps::run_nek_cg(e, kCommWorld, cfg);
      best = std::max(best, r.point_iters_per_sec);
    }
    double min_rate = 0.0;
    e.allreduce(&best, &min_rate, 1, kDouble, ReduceOp::Min, kCommWorld);
    if (e.rank(kCommWorld) == 0) rate = min_rate;
  });
  return rate;
}

double nek_rate(DeviceKind device, int order, std::int64_t elems) {
  double best = 0.0;
  for (int i = 0; i < kRepeats; ++i) {
    best = std::max(best, nek_rate_once(device, order, elems));
  }
  return best;
}

double points_per_rank(int order, std::int64_t elems) {
  const int n1 = order + 1;
  const double pts = static_cast<double>(elems) * n1 * n1 * n1 -
                     static_cast<double>(elems - 1) * n1 * n1;
  return pts / kRanks;
}

}  // namespace

int main() {
  bench::print_header("Figure 7: Nek5000 mass-matrix inversion (Lite=CH4 vs Std=Original)");
  std::printf("%d ranks, %d CG iterations per solve, sim-bgq fabric\n\n", kRanks, kCgIters);

  const int orders[] = {3, 5, 7};
  const std::vector<std::int64_t> elem_counts = {4, 8, 16, 64, 256, 1024};

  struct Point {
    double np;      // n/P
    double std_r;   // Std rate
    double lite_r;  // Lite rate
  };

  for (int order : orders) {
    std::vector<Point> pts;
    std::printf("--- N = %d ---\n", order);
    std::printf("%-8s %12s %16s %16s %10s %12s %12s\n", "E", "n/P", "Std [pt*it/s]",
                "Lite [pt*it/s]", "ratio", "eff(Std)", "eff(Lite)");
    for (std::int64_t elems : elem_counts) {
      Point p;
      p.np = points_per_rank(order, elems);
      p.std_r = nek_rate(DeviceKind::Orig, order, elems);
      p.lite_r = nek_rate(DeviceKind::Ch4, order, elems);
      pts.push_back(p);
    }
    // Efficiency estimate: fraction of the peak work rate this configuration
    // achieves for the same stack (work-dominated large n/P defines peak).
    double std_peak = 0, lite_peak = 0;
    for (const Point& p : pts) {
      std_peak = std::max(std_peak, p.std_r);
      lite_peak = std::max(lite_peak, p.lite_r);
    }
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const Point& p = pts[i];
      std::printf("%-8lld %12.0f %16.3e %16.3e %10.3f %12.3f %12.3f\n",
                  static_cast<long long>(elem_counts[i]), p.np, p.std_r, p.lite_r,
                  p.std_r > 0 ? p.lite_r / p.std_r : 0.0,
                  std_peak > 0 ? p.std_r / std_peak : 0.0,
                  lite_peak > 0 ? p.lite_r / lite_peak : 0.0);
    }
    std::printf("\n");
  }
  std::printf("expected shape (paper): Lite >= Std everywhere; the ratio peaks at small-to-\n"
              "mid n/P (communication-dominated regime) and approaches 1 at large n/P\n"
              "(work-dominated regime), where both stacks meet.\n");
  return 0;
}
