// Reproduces Figure 5: message rates with an infinitely fast network -- the
// full MPI stack executes but nothing is transmitted (blackhole fabric), so
// the spread between stack variants becomes orders of magnitude rather than
// the network-capped ~1.5x/4x of Figures 3-4.
#include "bench/rate_figure.hpp"

int main() {
  return lwmpi::bench::run_rate_figure(
      "Figure 5: message rates with infinitely fast network", lwmpi::net::infinite());
}
