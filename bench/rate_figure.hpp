// Shared driver for the message-rate figures (3, 4, 5): run the five stack
// variants for MPI_ISEND and MPI_PUT over a given network profile and print
// the grouped horizontal bars the paper uses.
//
// Figures 3 and 4 now run per netmod backend: the paper measured the same
// figure on two genuinely different injection semantics (OFI/PSM2 vs
// UCX/EDR), and the backend axis is the reproduction's analogue. When an
// `artifact` name is given the run also writes BENCH_<artifact>.json so the
// bench regression sentinel can track per-backend rates (report-only units).
#pragma once

#include <algorithm>
#include <cstdio>

#include "bench/harness.hpp"

namespace lwmpi::bench {

inline int run_rate_figure(const char* title, const net::Profile& profile,
                           const char* netmod = "mailbox",
                           const char* artifact = nullptr) {
  print_header(title);
  std::printf("profile: %s (inject %llu ns, shm %llu ns, latency %llu ns%s), netmod: %s\n",
              profile.name.c_str(),
              static_cast<unsigned long long>(profile.inject_cost_ns),
              static_cast<unsigned long long>(profile.shm_inject_cost_ns),
              static_cast<unsigned long long>(profile.latency_ns),
              profile.blackhole ? ", blackhole" : "", netmod);
  const int messages = default_messages(profile);
  std::printf("messages per measurement: %d (1 byte each)\n\n", messages);

  const auto variants = figure_variants();
  struct Row {
    std::string label;
    double isend;
    double put;
  };
  std::vector<Row> rows;
  double max_rate = 0;
  constexpr int kRepeats = 3;  // best-of: sender and receiver share cores
  for (const auto& v : variants) {
    Row r;
    r.label = v.label;
    r.isend = 0.0;
    r.put = 0.0;
    for (int rep = 0; rep < kRepeats; ++rep) {
      r.isend = std::max(r.isend, isend_rate(profile, v.device, v.build, messages, netmod));
      r.put = std::max(r.put, put_rate(profile, v.device, v.build, messages, netmod));
    }
    max_rate = std::max({max_rate, r.isend, r.put});
    rows.push_back(std::move(r));
    std::printf("  measured %-28s isend %14s   put %14s\n", rows.back().label.c_str(),
                human_rate(rows.back().isend).c_str(), human_rate(rows.back().put).c_str());
  }

  std::printf("\n%-30s %16s %16s\n", "stack variant", "MPI_Isend", "MPI_Put");
  for (const Row& r : rows) {
    std::printf("%-30s %16s %16s\n", r.label.c_str(), human_rate(r.isend).c_str(),
                human_rate(r.put).c_str());
  }
  std::printf("\n");
  for (const Row& r : rows) {
    print_bar((r.label + " Isend").c_str(), r.isend / 1e6, max_rate / 1e6, "M/s");
    print_bar((r.label + " Put").c_str(), r.put / 1e6, max_rate / 1e6, "M/s");
  }

  const Row& base = rows.front();
  const Row& best = rows.back();
  std::printf("\nbest ch4 vs original: isend %.2fx, put %.2fx\n",
              base.isend > 0 ? best.isend / base.isend : 0.0,
              base.put > 0 ? best.put / base.put : 0.0);

  if (artifact != nullptr) {
    JsonResult json(artifact);
    for (const Row& r : rows) {
      json.add(r.label + " isend", r.isend, "msg/s");
      json.add(r.label + " put", r.put, "msg/s");
    }
    json.write();
  }
  return 0;
}

// Figures 3/4: the same figure measured once per netmod backend, each run
// emitting its own BENCH_<prefix>_<backend>.json artifact.
inline int run_rate_figure_backends(const char* title, const net::Profile& profile,
                                    const char* artifact_prefix) {
  int rc = 0;
  for (const char* netmod : {"mailbox", "rdma"}) {
    const std::string t = std::string(title) + " [netmod " + netmod + "]";
    const std::string artifact = std::string(artifact_prefix) + "_" + netmod;
    rc |= run_rate_figure(t.c_str(), profile, netmod, artifact.c_str());
  }
  return rc;
}

}  // namespace lwmpi::bench
