// Observability overhead on the latency-critical path.
//
// The always-on counter tier (obs/counters.hpp) claims to be near-free: one
// predictable branch plus one relaxed fetch_add per hook. This bench measures
// that claim on the 1-byte ch4 self ping-pong -- the shortest end-to-end path
// through isend/inject/poll/match/recv, i.e. the path where a fixed per-hook
// tax shows up largest -- and asserts counters-on stays within 3% of
// counters-off.
//
// Methodology for a noisy 1-core container: the workload is single-rank
// (sender == receiver, no thread handoff, no scheduler dependence), each
// configuration is sampled `kReps` times interleaved with the other, and the
// comparison uses the per-configuration *minimum* (best-of-N discards timer
// and daemon noise, which is strictly additive).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/harness.hpp"

using namespace lwmpi;

namespace {

constexpr int kWarmup = 2000;
constexpr int kIters = 150000;
constexpr int kReps = 7;

// Nanoseconds per 1-byte self ping-pong iteration (isend -> recv -> wait).
double pingpong_ns(bool counters) {
  WorldOptions o;
  o.profile = net::loopback();
  o.device = DeviceKind::Ch4;
  o.ranks_per_node = 1;
  o.build.counters = counters;
  World w(1, o);
  double ns = 0.0;
  w.run([&](Engine& e) {
    char out = 1, in = 0;
    Request r = kRequestNull;
    for (int i = 0; i < kWarmup; ++i) {
      e.isend(&out, 1, kChar, 0, 0, kCommWorld, &r);
      e.recv(&in, 1, kChar, 0, 0, kCommWorld, nullptr);
      e.wait(&r, nullptr);
    }
    const std::uint64_t t0 = rt::now_ns();
    for (int i = 0; i < kIters; ++i) {
      e.isend(&out, 1, kChar, 0, 0, kCommWorld, &r);
      e.recv(&in, 1, kChar, 0, 0, kCommWorld, nullptr);
      e.wait(&r, nullptr);
    }
    ns = static_cast<double>(rt::now_ns() - t0) / kIters;
  });
  return ns;
}

// A short counters-on run whose stats_report lands in the JSON artifact, so
// the emitted file doubles as an example of the report format.
std::string sample_stats_json() {
  WorldOptions o;
  o.profile = net::loopback();
  o.device = DeviceKind::Ch4;
  o.ranks_per_node = 1;
  World w(2, o);
  w.run([&](Engine& e) {
    char b = 1;
    if (e.world_rank() == 0) {
      for (int i = 0; i < 100; ++i) e.send(&b, 1, kChar, 1, i, kCommWorld);
    } else {
      for (int i = 0; i < 100; ++i) e.recv(&b, 1, kChar, 0, i, kCommWorld, nullptr);
    }
  });
  return w.stats_report(true);
}

}  // namespace

int main() {
  bench::print_header("observability counter overhead (1-byte ch4 self ping-pong)");

  std::vector<double> off, on;
  off.reserve(kReps);
  on.reserve(kReps);
  for (int rep = 0; rep < kReps; ++rep) {
    off.push_back(pingpong_ns(false));
    on.push_back(pingpong_ns(true));
  }
  const double best_off = *std::min_element(off.begin(), off.end());
  const double best_on = *std::min_element(on.begin(), on.end());
  const double pct = best_off > 0 ? (best_on / best_off - 1.0) * 100.0 : 0.0;

  std::printf("%-28s %10.1f ns/iter (best of %d)\n", "counters off", best_off, kReps);
  std::printf("%-28s %10.1f ns/iter (best of %d)\n", "counters on", best_on, kReps);
  std::printf("%-28s %+9.2f %%  [acceptance: < 3%%]\n", "overhead", pct);

  bench::JsonResult jr("obs");
  jr.add("pingpong_counters_off_ns", best_off, "ns/iter");
  jr.add("pingpong_counters_on_ns", best_on, "ns/iter");
  jr.add("overhead_pct", pct, "%");
  jr.add_raw("stats", sample_stats_json());
  jr.write();

  return pct < 3.0 ? 0 : 1;
}
