// Observability overhead on the latency-critical path.
//
// The always-on counter tier (obs/counters.hpp) claims to be near-free: one
// predictable branch plus one relaxed fetch_add per hook -- and since PR 5 the
// same build flag also enables the latency-histogram tier (obs/histogram.hpp):
// TSC timestamps at post/match/complete plus a log2-bucket update for the
// 1-in-2^lat_sample_shift messages the sampling gate arms (the rest pay one
// branch and a counter increment at the post site).
// This bench measures the combined claim on the 1-byte ch4 self ping-pong --
// the shortest end-to-end path through isend/inject/poll/match/recv, i.e. the
// path where a fixed per-hook tax shows up largest -- and asserts the
// instrumented build stays within 3% of the stripped one.
//
// Since the causal tier (obs/causal.hpp), every packet additionally carries a
// piggybacked causal header: net::Fabric::inject stamps a TSC read plus a
// relaxed Lamport tick, and poll CAS-merges the clock, on every message with
// tracing *off*. Both configurations here run with trace off, so that stamp
// is inside the measured path on both sides of the ratio -- the <3% gate thus
// certifies the counter/histogram tax on top of a transport that already
// pays the piggyback cost, and the stamp itself is config-independent by
// design (flipping BuildConfig::trace cannot change transport timing).
//
// Methodology for a noisy 1-core container: the workload is single-rank
// (sender == receiver, no thread handoff, no scheduler dependence). Two
// additive noise sources have to be defeated separately. Temporal noise
// (frequency drift, co-tenant interference) wanders on timescales much
// longer than a measurement slice, so the two configurations run in short
// alternating slices driven from one thread and each keeps its minimum.
// Layout noise (allocation/page placement making one particular World
// instance a few percent faster or slower for its whole lifetime) is
// defeated by repeating that dance over several independently-constructed
// instance pairs; each pair yields one overhead ratio from its two slice
// minima. A real per-hook tax is structural -- it inflates *every* pair --
// while noise only hits some, so the acceptance gate judges a low-order
// statistic: the lower-tercile ratio across pairs. The raw minimum is too
// deflatable (one off-side slowdown fakes a large negative overhead); the
// median needs only half the pairs inflated to false-positive. The tercile
// needs most pairs inflated to trip and several deflated to under-report.
// Since the telemetry plane (obs/sampler.hpp), a background sampler thread
// may snapshot every counter this bench instruments at a configurable
// interval. The sampler reads relaxed atomics only -- the claim is that an
// attached sampler at the default cadence costs the hot path *nothing
// structural* (its reads share no locks with the engine), so its gate is
// tighter: the sampled configuration must stay within 1% of the plain one.
// The telemetry pass emits its own BENCH_telemetry.json plus a Prometheus
// text-exposition artifact that scripts/run_tier1.sh lints with
// `bench_check --promlint`.
// Since the aggregate profiler (obs/profiler.hpp), every top-level MPI entry
// point opens a ProfScope: a thread-local depth check, a TSC stamp pair, and
// three relaxed counter updates per user call when a profiler is attached --
// one null test when not. The profiler pass pairs counters-on worlds with and
// without an attached profiler and gates the tax at <2% (between the counter
// tier's 3% and the passive sampler's 1%: ProfScope does strictly more work
// per call than a counter hook but runs only at the user-call boundary, not
// per packet). It emits BENCH_prof.json plus a profile.json artifact that
// run_tier1.sh / the regression sentinel validate with
// `bench_check --profcheck`.
// Since the flight recorder (obs/recorder.hpp), every top-level entry point
// additionally opens a RecScope when recording is on: a thread-local depth
// check plus a 16-byte ring store, and -- at the default 1-in-2^8 sampling --
// occasionally a TSC stamp pair. The record pass gates that tax at <2% (same
// reasoning as the profiler: per user call, not per packet) and emits
// BENCH_record.json.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "obs/cvar.hpp"
#include "obs/profiler.hpp"
#include "obs/pvar.hpp"
#include "obs/sampler.hpp"

using namespace lwmpi;

namespace {

constexpr int kWarmup = 2000;
constexpr int kSliceIters = 10000;
constexpr int kSlices = 12;  // alternating slices per instance pair
constexpr int kRounds = 7;   // independently-constructed instance pairs

// A 1-rank world whose engine the bench drives directly (self ping-pong:
// isend -> recv -> wait, no thread handoff). `sampled` additionally attaches
// a telemetry sampler at the default cadence for the instance's lifetime;
// `prof` attaches the aggregate profiler (ProfScope live on every call).
class SelfWorld {
 public:
  explicit SelfWorld(bool counters, bool sampled = false, bool prof = false,
                     bool record = false)
      : w_(1, opts(counters, prof, record)), e_(w_.engine(0)) {
    if (sampled) sampler_ = std::make_unique<obs::Sampler>(w_);
    for (int i = 0; i < kWarmup; ++i) iter();
  }

  // Nanoseconds per iteration over one measurement slice.
  double slice_ns() {
    const std::uint64_t t0 = rt::now_ns();
    for (int i = 0; i < kSliceIters; ++i) iter();
    return static_cast<double>(rt::now_ns() - t0) / kSliceIters;
  }

 private:
  static WorldOptions opts(bool counters, bool prof, bool record) {
    WorldOptions o;
    o.profile = net::loopback();
    o.device = DeviceKind::Ch4;
    o.ranks_per_node = 1;
    o.build.counters = counters;
    o.build.trace = false;  // tracing off; the causal stamp still runs (see top)
    o.prof = prof;
    // Always-on recorder configuration: default ring and sampling shift,
    // no flush prefix (the rings are live but never written out).
    o.record = record;
    return o;
  }
  void iter() {
    Request r = kRequestNull;
    e_.isend(&out_, 1, kChar, 0, 0, kCommWorld, &r);
    e_.recv(&in_, 1, kChar, 0, 0, kCommWorld, nullptr);
    e_.wait(&r, nullptr);
  }

  World w_;
  // Declared after w_, destroyed before it (the sampler references the
  // world; see obs/sampler.hpp).
  std::unique_ptr<obs::Sampler> sampler_;
  Engine& e_;
  char out_ = 1, in_ = 0;
};

// A short counters-on run whose stats_report lands in the JSON artifact, so
// the emitted file doubles as an example of the report format. The receive
// side's latency percentiles are also exported as top-level bench fields,
// read back through the pvar registry like any external tool would.
std::string sample_stats_json(bench::JsonResult& jr) {
  WorldOptions o;
  o.profile = net::loopback();
  o.device = DeviceKind::Ch4;
  o.ranks_per_node = 1;
  o.build.lat_sample_shift = 0;  // stamp everything: the artifact is an example
  World w(2, o);
  w.run([&](Engine& e) {
    char b = 1;
    if (e.world_rank() == 0) {
      for (int i = 0; i < 100; ++i) e.send(&b, 1, kChar, 1, i, kCommWorld);
    } else {
      for (int i = 0; i < 100; ++i) e.recv(&b, 1, kChar, 0, i, kCommWorld, nullptr);
    }
  });
  obs::PvarSession s;
  obs::LWMPI_T_pvar_session_create(w.engine(1), &s);
  for (const char* name : {"lat_recv_eager_p50_ns", "lat_recv_eager_p99_ns",
                           "lat_recv_eager_max_ns"}) {
    std::uint64_t v = 0;
    obs::LWMPI_T_pvar_read(s, obs::LWMPI_T_pvar_index(name), &v);
    jr.add(name, static_cast<double>(v), "ns");
  }
  obs::LWMPI_T_pvar_session_free(&s);
  return w.stats_report(true);
}

// The three instrumentation pairings this bench gates. Counters compares
// stripped vs counter-instrumented builds; Sampler and Prof both run counters
// on both sides and attach the named subsystem to the "on" side only.
enum class Pair { Counters, Sampler, Prof, Record };

// One full measurement pass: kRounds instance pairs. Returns the lower-tercile
// overhead ratio across pairs (the gate statistic -- a structural tax shows
// up in all of them) and the median through `median_pct` (the typical value).
double measure_pct(double& best_off, double& best_on, double& median_pct,
                   Pair pair = Pair::Counters) {
  std::vector<double> ratios;
  ratios.reserve(kRounds);
  for (int round = 0; round < kRounds; ++round) {
    SelfWorld off_world(pair != Pair::Counters, false, false);
    SelfWorld on_world(true, pair == Pair::Sampler, pair == Pair::Prof,
                       pair == Pair::Record);
    double round_off = std::numeric_limits<double>::infinity();
    double round_on = std::numeric_limits<double>::infinity();
    for (int s = 0; s < kSlices; ++s) {
      round_off = std::min(round_off, off_world.slice_ns());
      round_on = std::min(round_on, on_world.slice_ns());
    }
    ratios.push_back(round_on / round_off);
    best_off = std::min(best_off, round_off);
    best_on = std::min(best_on, round_on);
  }
  std::sort(ratios.begin(), ratios.end());
  median_pct = (ratios[ratios.size() / 2] - 1.0) * 100.0;
  return (ratios[ratios.size() / 3] - 1.0) * 100.0;
}

// Telemetry-plane example artifact: a short 2-rank sampled run whose
// Prometheus exposition is written next to the bench JSON (tier-1 lints it
// with `bench_check --promlint`). Returns the exposition path, and reports
// the run's tick/alert counts through the JSON result.
std::string write_prom_artifact(bench::JsonResult& jr) {
  const std::int64_t saved_interval = obs::cvar(obs::Cv::SamplerIntervalMs);
  obs::cvar_set(obs::Cv::SamplerIntervalMs, 5);
  WorldOptions o;
  o.profile = net::loopback();
  o.device = DeviceKind::Ch4;
  o.ranks_per_node = 1;
  World w(2, o);
  std::uint64_t ticks = 0;
  {
    obs::Sampler sampler(w);
    w.run([&](Engine& e) {
      char b = 1;
      if (e.world_rank() == 0) {
        for (int i = 0; i < 2000; ++i) e.send(&b, 1, kChar, 1, i % 64, kCommWorld);
      } else {
        for (int i = 0; i < 2000; ++i) e.recv(&b, 1, kChar, 0, i % 64, kCommWorld, nullptr);
      }
    });
    sampler.sample_now();
    ticks = sampler.ticks();

    std::string path = "telemetry.prom";
    if (const char* dir = std::getenv("LWMPI_BENCH_DIR"); dir != nullptr && *dir != '\0') {
      path = std::string(dir) + "/" + path;
    }
    std::ofstream f(path, std::ios::trunc);
    if (f) f << sampler.prometheus();
    jr.add("prom_sample_ticks", static_cast<double>(ticks), "count");
    obs::cvar_set(obs::Cv::SamplerIntervalMs, saved_interval);
    return path;
  }
}

// Profiler-tier example artifact: a short phased 2-rank profiled run whose
// profile.json lands next to the bench JSON (tier-1 validates it with
// `bench_check --profcheck`). Reports the run's aggregate counts through the
// JSON result and returns the artifact path.
std::string write_profile_artifact(bench::JsonResult& jr) {
  std::string path = "profile.json";
  if (const char* dir = std::getenv("LWMPI_BENCH_DIR"); dir != nullptr && *dir != '\0') {
    path = std::string(dir) + "/" + path;
  }
  WorldOptions o;
  o.profile = net::loopback();
  o.device = DeviceKind::Ch4;
  o.ranks_per_node = 1;
  o.prof = true;
  o.prof_path = path;
  {
    World w(2, o);
    w.phase_push("exchange");
    w.run([](Engine& e) {
      char b = 1;
      if (e.world_rank() == 0) {
        for (int i = 0; i < 500; ++i) e.send(&b, 1, kChar, 1, i % 16, kCommWorld);
      } else {
        for (int i = 0; i < 500; ++i) e.recv(&b, 1, kChar, 0, i % 16, kCommWorld, nullptr);
      }
    });
    w.phase_pop();
    const obs::Profiler* p = w.profiler();
    jr.add("prof_matrix_packet_bytes",
           static_cast<double>(p->matrix().total_packet_bytes()), "count");
    const int exchange = w.profiler()->intern_phase("exchange");
    jr.add("prof_exchange_sends",
           static_cast<double>(p->rank(0).site_count(exchange, obs::Callsite::Send)),
           "count");
    // ~World writes the artifact at teardown.
  }
  return path;
}

}  // namespace

int main() {
  bench::print_header(
      "observability counter + histogram overhead (1-byte ch4 self ping-pong)");

  double best_off = std::numeric_limits<double>::infinity();
  double best_on = std::numeric_limits<double>::infinity();
  double median_pct = 0.0;
  double pct = measure_pct(best_off, best_on, median_pct);
  // An over-threshold pass on a shared container is more often a sustained
  // interference window than a regression; a real regression reproduces, so
  // re-measure up to twice and keep the best pass before judging.
  for (int retry = 0; retry < 2 && pct >= 3.0; ++retry) {
    double retry_median = 0.0;
    const double retry_pct = measure_pct(best_off, best_on, retry_median);
    if (retry_pct < pct) {
      pct = retry_pct;
      median_pct = retry_median;
    }
  }

  std::printf("%-28s %10.1f ns/iter (best of %dx%d slices)\n", "counters off", best_off,
              kRounds, kSlices);
  std::printf("%-28s %10.1f ns/iter (best of %dx%d slices)\n", "counters on", best_on,
              kRounds, kSlices);
  std::printf("%-28s %+9.2f %%  (median %+.2f %%)  [acceptance: < 3%%]\n", "overhead",
              pct, median_pct);

  bench::JsonResult jr("obs");
  jr.add("pingpong_counters_off_ns", best_off, "ns/iter");
  jr.add("pingpong_counters_on_ns", best_on, "ns/iter");
  jr.add("overhead_pct", pct, "%");
  jr.add("overhead_median_pct", median_pct, "%");
  jr.add_raw("stats", sample_stats_json(jr));
  jr.write();

  // --- Telemetry-sampler gate: attached sampler at default cadence < 1% ----
  bench::print_header("telemetry sampler overhead (counters on, sampler attached vs not)");
  double tel_off = std::numeric_limits<double>::infinity();
  double tel_on = std::numeric_limits<double>::infinity();
  double tel_median = 0.0;
  double tel_pct = measure_pct(tel_off, tel_on, tel_median, Pair::Sampler);
  for (int retry = 0; retry < 2 && tel_pct >= 1.0; ++retry) {
    double retry_median = 0.0;
    const double retry_pct = measure_pct(tel_off, tel_on, retry_median, Pair::Sampler);
    if (retry_pct < tel_pct) {
      tel_pct = retry_pct;
      tel_median = retry_median;
    }
  }

  std::printf("%-28s %10.1f ns/iter (best of %dx%d slices)\n", "sampler detached", tel_off,
              kRounds, kSlices);
  std::printf("%-28s %10.1f ns/iter (best of %dx%d slices)\n", "sampler attached", tel_on,
              kRounds, kSlices);
  std::printf("%-28s %+9.2f %%  (median %+.2f %%)  [acceptance: < 1%%]\n", "overhead",
              tel_pct, tel_median);

  bench::JsonResult tel("telemetry");
  tel.add("pingpong_sampler_off_ns", tel_off, "ns/iter");
  tel.add("pingpong_sampler_on_ns", tel_on, "ns/iter");
  tel.add("sampler_overhead_pct", tel_pct, "%");
  tel.add("sampler_overhead_median_pct", tel_median, "%");
  const std::string prom_path = write_prom_artifact(tel);
  tel.write();
  std::printf("prometheus exposition: %s\n", prom_path.c_str());

  // --- Profiler gate: attached aggregate profiler < 2% ----------------------
  bench::print_header("aggregate profiler overhead (counters on, profiler attached vs not)");
  double prof_off = std::numeric_limits<double>::infinity();
  double prof_on = std::numeric_limits<double>::infinity();
  double prof_median = 0.0;
  double prof_pct = measure_pct(prof_off, prof_on, prof_median, Pair::Prof);
  for (int retry = 0; retry < 2 && prof_pct >= 2.0; ++retry) {
    double retry_median = 0.0;
    const double retry_pct = measure_pct(prof_off, prof_on, retry_median, Pair::Prof);
    if (retry_pct < prof_pct) {
      prof_pct = retry_pct;
      prof_median = retry_median;
    }
  }

  std::printf("%-28s %10.1f ns/iter (best of %dx%d slices)\n", "profiler detached",
              prof_off, kRounds, kSlices);
  std::printf("%-28s %10.1f ns/iter (best of %dx%d slices)\n", "profiler attached",
              prof_on, kRounds, kSlices);
  std::printf("%-28s %+9.2f %%  (median %+.2f %%)  [acceptance: < 2%%]\n", "overhead",
              prof_pct, prof_median);

  bench::JsonResult prof("prof");
  prof.add("pingpong_prof_off_ns", prof_off, "ns/iter");
  prof.add("pingpong_prof_on_ns", prof_on, "ns/iter");
  prof.add("prof_overhead_pct", prof_pct, "%");
  prof.add("prof_overhead_median_pct", prof_median, "%");
  const std::string profile_path = write_profile_artifact(prof);
  prof.write();
  std::printf("profile artifact: %s\n", profile_path.c_str());

  // --- Recorder gate: live flight-recorder rings < 2% -----------------------
  bench::print_header("flight recorder overhead (counters on, recording vs not)");
  double rec_off = std::numeric_limits<double>::infinity();
  double rec_on = std::numeric_limits<double>::infinity();
  double rec_median = 0.0;
  double rec_pct = measure_pct(rec_off, rec_on, rec_median, Pair::Record);
  // One more retry than the earlier gates: this one runs last, when a
  // single-core host has accumulated the most scheduler/thermal drift.
  for (int retry = 0; retry < 3 && rec_pct >= 2.0; ++retry) {
    double retry_median = 0.0;
    const double retry_pct = measure_pct(rec_off, rec_on, retry_median, Pair::Record);
    if (retry_pct < rec_pct) {
      rec_pct = retry_pct;
      rec_median = retry_median;
    }
  }

  std::printf("%-28s %10.1f ns/iter (best of %dx%d slices)\n", "recorder off", rec_off,
              kRounds, kSlices);
  std::printf("%-28s %10.1f ns/iter (best of %dx%d slices)\n", "recorder on", rec_on,
              kRounds, kSlices);
  std::printf("%-28s %+9.2f %%  (median %+.2f %%)  [acceptance: < 2%%]\n", "overhead",
              rec_pct, rec_median);

  bench::JsonResult rec("record");
  rec.add("pingpong_record_off_ns", rec_off, "ns/iter");
  rec.add("pingpong_record_on_ns", rec_on, "ns/iter");
  rec.add("record_overhead_pct", rec_pct, "%");
  rec.add("record_overhead_median_pct", rec_median, "%");
  rec.write();

  return pct < 3.0 && tel_pct < 1.0 && prof_pct < 2.0 && rec_pct < 2.0 ? 0 : 1;
}
