// Substrate microbenchmarks (google-benchmark): the building blocks under the
// MPI stack -- lock-free queues, packet pool, datatype pack/unpack, matching,
// and rank translation.
#include <benchmark/benchmark.h>

#include <memory>
#include <numeric>
#include <vector>

#include "comm/rankmap.hpp"
#include "datatype/datatype.hpp"
#include "match/match.hpp"
#include "runtime/mpsc_queue.hpp"
#include "runtime/packet.hpp"
#include "runtime/spsc_ring.hpp"

namespace {

using namespace lwmpi;

// --- queues --------------------------------------------------------------------

void BM_SpscRingPushPop(benchmark::State& state) {
  rt::SpscRing<std::uint64_t> ring(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    ring.try_push(v++);
    benchmark::DoNotOptimize(ring.try_pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscRingPushPop);

struct BenchNode : rt::MpscNode {
  std::uint64_t value = 0;
};

void BM_MpscQueuePushPop(benchmark::State& state) {
  rt::MpscQueue<BenchNode> q;
  BenchNode node;
  for (auto _ : state) {
    q.push(&node);
    benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MpscQueuePushPop);

void BM_PacketPoolAllocFree(benchmark::State& state) {
  for (auto _ : state) {
    rt::Packet* p = rt::PacketPool::alloc();
    benchmark::DoNotOptimize(p);
    rt::PacketPool::free(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketPoolAllocFree);

void BM_PacketPayloadCopy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> src(n, std::byte{42});
  rt::Packet* p = rt::PacketPool::alloc();
  for (auto _ : state) {
    p->set_payload(src.data(), n);
    benchmark::DoNotOptimize(p->payload.data());
  }
  rt::PacketPool::free(p);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PacketPayloadCopy)->Arg(8)->Arg(512)->Arg(16384);

// --- datatypes -------------------------------------------------------------------

void BM_PackContiguous(benchmark::State& state) {
  dt::TypeEngine eng;
  const auto n = static_cast<int>(state.range(0));
  std::vector<double> src(static_cast<std::size_t>(n), 1.5);
  std::vector<std::byte> dst(dt::packed_size(eng, n, kDouble));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dt::pack(eng, src.data(), n, kDouble, dst.data()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n * 8);
}
BENCHMARK(BM_PackContiguous)->Arg(16)->Arg(1024)->Arg(65536);

void BM_PackStridedVector(benchmark::State& state) {
  dt::TypeEngine eng;
  const auto rows = static_cast<int>(state.range(0));
  Datatype t = kDatatypeNull;
  eng.vector(rows, 8, 16, kDouble, &t);
  eng.commit(&t);
  std::vector<double> src(static_cast<std::size_t>(rows) * 16 + 16, 2.0);
  std::vector<std::byte> dst(dt::packed_size(eng, 1, t));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dt::pack(eng, src.data(), 1, t, dst.data()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * rows * 8 * 8);
}
BENCHMARK(BM_PackStridedVector)->Arg(16)->Arg(256)->Arg(4096);

void BM_UnpackStridedVector(benchmark::State& state) {
  dt::TypeEngine eng;
  const auto rows = static_cast<int>(state.range(0));
  Datatype t = kDatatypeNull;
  eng.vector(rows, 8, 16, kDouble, &t);
  eng.commit(&t);
  std::vector<double> dst(static_cast<std::size_t>(rows) * 16 + 16, 0.0);
  std::vector<std::byte> src(dt::packed_size(eng, 1, t), std::byte{1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dt::unpack(eng, src.data(), src.size(), dst.data(), 1, t));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * rows * 8 * 8);
}
BENCHMARK(BM_UnpackStridedVector)->Arg(16)->Arg(256)->Arg(4096);

// --- matching ---------------------------------------------------------------------

void BM_MatchHit(benchmark::State& state) {
  match::MatchEngine m;
  const auto depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    // Cold posted receives that never match.
    for (int i = 0; i < depth; ++i) {
      match::PostedRecv cold;
      cold.ctx = 1;
      cold.src = 999;
      cold.tag = 999;
      cold.req = static_cast<std::uint32_t>(i + 100);
      m.post(cold);
    }
    match::PostedRecv hot;
    hot.ctx = 1;
    hot.src = 2;
    hot.tag = 5;
    hot.req = 1;
    m.post(hot);
    rt::Packet* p = rt::PacketPool::alloc();
    p->hdr.ctx = 1;
    p->hdr.src_comm_rank = 2;
    p->hdr.tag = 5;
    state.ResumeTiming();

    benchmark::DoNotOptimize(m.arrive(p));

    state.PauseTiming();
    rt::PacketPool::free(p);
    for (int i = 0; i < depth; ++i) m.cancel(static_cast<std::uint32_t>(i + 100));
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatchHit)->Arg(0)->Arg(32)->Arg(512);

// --- rank translation ----------------------------------------------------------------

void BM_RankTranslateCompressed(benchmark::State& state) {
  auto map = comm::RankMap::strided(4096, 5, 3);
  Rank r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.to_world_nocharge(r));
    r = (r + 1) & 4095;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RankTranslateCompressed);

void BM_RankTranslateDirect(benchmark::State& state) {
  std::vector<Rank> world(4096);
  for (int i = 0; i < 4096; ++i) world[static_cast<std::size_t>(i)] = (i * 7919) % 4096;
  auto map = comm::RankMap::from_list(world);
  Rank r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.to_world_nocharge(r));
    r = (r + 1) & 4095;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RankTranslateDirect);

}  // namespace

BENCHMARK_MAIN();
