#!/usr/bin/env bash
# Bench regression sentinel: re-run the deterministic benches (instruction
# counts only -- no timing noise) into a scratch directory and compare the
# emitted BENCH_*.json against the committed baselines in bench/baselines/.
#
# Usage: run_bench_regression.sh [build-dir] [source-dir]
# Registered as the `bench_regression` ctest (label: bench-regression).
set -euo pipefail

BUILD_DIR="${1:-build}"
SOURCE_DIR="${2:-.}"

for bin in bench/bench_table1 bench/bench_fig2 bench/bench_fig3 bench/bench_fig4 \
           bench/bench_obs_overhead bench/bench_replay tools/bench_check; do
  if [[ ! -x "${BUILD_DIR}/${bin}" ]]; then
    echo "run_bench_regression: ${BUILD_DIR}/${bin} not built" >&2
    exit 2
  fi
done

scratch="$(mktemp -d)"
trap 'rm -rf "${scratch}"' EXIT

LWMPI_BENCH_DIR="${scratch}" "${BUILD_DIR}/bench/bench_table1" > /dev/null
LWMPI_BENCH_DIR="${scratch}" "${BUILD_DIR}/bench/bench_fig2" > /dev/null

# Per-backend rate figures (mailbox + rdma). Their msg/s entries are
# report-only in bench_check; what the sentinel guards is the artifact schema
# (every stack variant present, per backend) and the table1/fig2 bit-exactness.
LWMPI_BENCH_DIR="${scratch}" "${BUILD_DIR}/bench/bench_fig3" > /dev/null
LWMPI_BENCH_DIR="${scratch}" "${BUILD_DIR}/bench/bench_fig4" > /dev/null

# The observability overhead gates are timing benches, so they are judged by
# their own acceptance exit codes (<3% counters, <1% telemetry sampler, <2%
# aggregate profiler), not by a baseline comparison in bench_check.
LWMPI_BENCH_DIR="${scratch}" "${BUILD_DIR}/bench/bench_obs_overhead" > /dev/null

# The telemetry pass also emits a Prometheus text exposition; lint it like
# promtool would (name/label charsets, HELP/TYPE metadata, duplicate series).
"${BUILD_DIR}/tools/bench_check" --promlint "${scratch}/telemetry.prom"

# The profiler pass emits a profile.json artifact; validate its schema (the
# lwmpi_prof input format) the same way.
"${BUILD_DIR}/tools/bench_check" --profcheck "${scratch}/profile.json"

# Trace replay of the committed bundles: the bench's exit code enforces
# engine-exact fidelity on every bundle x netmod cell, and the artifact it
# writes must pass the replay schema check.
LWMPI_BENCH_DIR="${scratch}" "${BUILD_DIR}/bench/bench_replay" \
  "${SOURCE_DIR}/bench/traces" > /dev/null
"${BUILD_DIR}/tools/bench_check" --replaycheck "${scratch}/BENCH_replay.json"

exec "${BUILD_DIR}/tools/bench_check" "${SOURCE_DIR}/bench/baselines" "${scratch}" \
  table1 fig2 fig3_mailbox fig3_rdma fig4_mailbox fig4_rdma
