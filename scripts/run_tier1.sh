#!/usr/bin/env bash
# Tier-1 gate: configure, build, run the full test suite (which includes the
# bench_regression sentinel comparing the deterministic bench artifacts
# against bench/baselines/).
#
# Usage: scripts/run_tier1.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "${BUILD_DIR}" -S .
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

# Observability overhead gates: the instrumented hot path must stay within 3%
# of the stripped one, an attached telemetry sampler within 1% of none, and an
# attached aggregate profiler within 2% (timing bench -- runs after ctest so
# it gets a quiet machine; its own exit code is the acceptance check).
# Artifacts go to a scratch dir so the repo root stays clean; the emitted
# Prometheus exposition must pass the promtool-style lint and the emitted
# profile artifact the profile-JSON schema check.
obs_scratch="$(mktemp -d)"
trap 'rm -rf "${obs_scratch}"' EXIT
LWMPI_BENCH_DIR="${obs_scratch}" "${BUILD_DIR}/bench/bench_obs_overhead"
"${BUILD_DIR}/tools/bench_check" --promlint "${obs_scratch}/telemetry.prom"
"${BUILD_DIR}/tools/bench_check" --profcheck "${obs_scratch}/profile.json"

# Trace replay: re-execute the committed bundles on both netmods (the bench's
# own exit code enforces engine-exact fidelity and zero timeouts), then
# validate the emitted BENCH_replay.json artifact schema.
LWMPI_BENCH_DIR="${obs_scratch}" "${BUILD_DIR}/bench/bench_replay" bench/traces
"${BUILD_DIR}/tools/bench_check" --replaycheck "${obs_scratch}/BENCH_replay.json"

# Causal-tier golden trace: the committed injected-delay timeline must still
# analyze to a late_sender-dominated critical path (format + analyzer drift
# guard; also covered by the ctest critpath_golden case, repeated here so the
# tier-1 log shows the actual Table-1-style report).
CRITPATH_OUT="$("${BUILD_DIR}/tools/critpath" bench/baselines/causal_golden.jsonl)"
echo "${CRITPATH_OUT}"
grep -q "late_sender" <<<"${CRITPATH_OUT}"
