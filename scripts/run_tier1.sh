#!/usr/bin/env bash
# Tier-1 gate: configure, build, run the full test suite (which includes the
# bench_regression sentinel comparing the deterministic bench artifacts
# against bench/baselines/).
#
# Usage: scripts/run_tier1.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "${BUILD_DIR}" -S .
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"
