// Info-hint tests, including the Section-3.6 alternative proposal: an
// arrival-order assertion on the communicator instead of the _NOMATCH
// routines, costing an extra hint branch on every send.
#include <gtest/gtest.h>

#include "cost/meter.hpp"
#include "cost/model.hpp"
#include "util.hpp"

namespace lwmpi {
namespace {

using test::spmd;

TEST(Hints, SetAndGetRoundTrip) {
  spmd(1, [](Engine& e) {
    Comm dup = kCommNull;
    ASSERT_EQ(e.comm_dup(kCommWorld, &dup), Err::Success);
    ASSERT_EQ(e.comm_set_info(dup, "my_key", "my_value"), Err::Success);
    std::string v;
    ASSERT_EQ(e.comm_get_info(dup, "my_key", &v), Err::Success);
    EXPECT_EQ(v, "my_value");
    EXPECT_EQ(e.comm_get_info(dup, "missing", &v), Err::Arg);
    // Overwrite.
    ASSERT_EQ(e.comm_set_info(dup, "my_key", "new"), Err::Success);
    ASSERT_EQ(e.comm_get_info(dup, "my_key", &v), Err::Success);
    EXPECT_EQ(v, "new");
    ASSERT_EQ(e.comm_free(&dup), Err::Success);
  });
}

TEST(Hints, ArrivalOrderHintDelivers) {
  spmd(2, [](Engine& e) {
    Comm hinted = kCommNull;
    ASSERT_EQ(e.comm_dup(kCommWorld, &hinted), Err::Success);
    ASSERT_EQ(e.comm_set_info(hinted, "lwmpi_arrival_order", "true"), Err::Success);
    if (e.world_rank() == 0) {
      for (int v : {5, 6, 7}) {
        // Plain isend on a hinted communicator behaves like _NOMATCH.
        Request r = kRequestNull;
        ASSERT_EQ(e.isend(&v, 1, kInt, 1, /*tag ignored=*/v, hinted, &r), Err::Success);
        ASSERT_EQ(e.wait(&r, nullptr), Err::Success);
      }
    } else {
      for (int expect : {5, 6, 7}) {
        int got = 0;
        Request r = kRequestNull;
        ASSERT_EQ(e.irecv_nomatch(&got, 1, kInt, hinted, &r), Err::Success);
        ASSERT_EQ(e.wait(&r, nullptr), Err::Success);
        EXPECT_EQ(got, expect);  // arrival order, tags ignored
      }
    }
    ASSERT_EQ(e.barrier(kCommWorld), Err::Success);
    ASSERT_EQ(e.comm_free(&hinted), Err::Success);
  });
}

TEST(Hints, HintCostsBranchOverNomatchRoutine) {
  // Section 3.6: the hint design is semantically equivalent to _NOMATCH but
  // adds an extra branch (two instructions here) to the critical path.
  cost::Meter hint_m, routine_m;
  WorldOptions o = test::fast_opts();
  o.build = BuildConfig::no_err_single_ipo();
  World w(2, o);
  w.run([&](Engine& e) {
    if (e.world_rank() != 0) return;
    Comm hinted = kCommNull;
    ASSERT_EQ(e.comm_dup(kCommWorld, &hinted), Err::Success);
    ASSERT_EQ(e.comm_set_info(hinted, "lwmpi_arrival_order", "true"), Err::Success);
    int v = 1;
    Request r = kRequestNull;
    {
      cost::ScopedMeter arm(hint_m);
      ASSERT_EQ(e.isend(&v, 1, kInt, 1, 0, hinted, &r), Err::Success);
    }
    ASSERT_EQ(e.wait(&r, nullptr), Err::Success);
    {
      cost::ScopedMeter arm(routine_m);
      ASSERT_EQ(e.isend_nomatch(&v, 1, kInt, 1, hinted, &r), Err::Success);
    }
    ASSERT_EQ(e.wait(&r, nullptr), Err::Success);
  });
  EXPECT_EQ(hint_m.total(), routine_m.total() + cost::kMandHintBranch);
}

TEST(Hints, HintDoesNotLeakIntoCollectives) {
  // Collectives on a hinted communicator still use full matching on the
  // collective plane (their algorithms rely on source/tag selection).
  spmd(3, [](Engine& e) {
    Comm hinted = kCommNull;
    ASSERT_EQ(e.comm_dup(kCommWorld, &hinted), Err::Success);
    ASSERT_EQ(e.comm_set_info(hinted, "lwmpi_arrival_order", "true"), Err::Success);
    const int me = e.world_rank();
    int sum = 0;
    ASSERT_EQ(e.allreduce(&me, &sum, 1, kInt, ReduceOp::Sum, hinted), Err::Success);
    EXPECT_EQ(sum, 3);
    std::array<int, 3> all{};
    ASSERT_EQ(e.allgather(&me, 1, kInt, all.data(), 1, kInt, hinted), Err::Success);
    EXPECT_EQ(all[2], 2);
    ASSERT_EQ(e.comm_free(&hinted), Err::Success);
  });
}

TEST(Hints, UnrelatedHintLeavesMatchingAlone) {
  spmd(2, [](Engine& e) {
    Comm c = kCommNull;
    ASSERT_EQ(e.comm_dup(kCommWorld, &c), Err::Success);
    ASSERT_EQ(e.comm_set_info(c, "some_other_hint", "whatever"), Err::Success);
    if (e.world_rank() == 0) {
      int a = 1, b = 2;
      ASSERT_EQ(e.send(&a, 1, kInt, 1, 10, c), Err::Success);
      ASSERT_EQ(e.send(&b, 1, kInt, 1, 11, c), Err::Success);
    } else {
      int v = 0;
      // Out-of-order receive by tag must still work (full matching).
      ASSERT_EQ(e.recv(&v, 1, kInt, 0, 11, c, nullptr), Err::Success);
      EXPECT_EQ(v, 2);
      ASSERT_EQ(e.recv(&v, 1, kInt, 0, 10, c, nullptr), Err::Success);
      EXPECT_EQ(v, 1);
    }
    ASSERT_EQ(e.barrier(kCommWorld), Err::Success);
    ASSERT_EQ(e.comm_free(&c), Err::Success);
  });
}

}  // namespace
}  // namespace lwmpi
