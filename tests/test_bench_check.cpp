// Tests for the bench regression sentinel (tools/check_core.hpp) and the
// JSON emission side of the bench harness it consumes.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "bench/harness.hpp"
#include "tools/check_core.hpp"

namespace lwmpi {
namespace {

using tools::BenchFile;
using tools::compare;
using tools::DiffKind;
using tools::parse_bench_json;

BenchFile make(std::initializer_list<tools::Entry> entries) {
  BenchFile f;
  f.ok = true;
  f.bench = "t";
  f.entries = entries;
  return f;
}

// --- parser ------------------------------------------------------------------

TEST(BenchCheckParse, RoundTripsJsonResultOutput) {
  bench::JsonResult jr("demo");
  jr.add("isend_total", 221, "instr");
  jr.add("rate", 1.25e6, "msg/s");
  jr.add_raw("attribution", "[{\"op\":\"isend\"}]");  // must be skipped

  const BenchFile f = parse_bench_json(jr.str());
  ASSERT_TRUE(f.ok);
  EXPECT_EQ(f.bench, "demo");
  ASSERT_EQ(f.entries.size(), 2u);
  EXPECT_EQ(f.entries[0].label, "isend_total");
  EXPECT_EQ(f.entries[0].value, 221.0);
  EXPECT_EQ(f.entries[0].unit, "instr");
  EXPECT_EQ(f.entries[1].label, "rate");
  EXPECT_DOUBLE_EQ(f.entries[1].value, 1.25e6);
  EXPECT_EQ(f.entries[1].unit, "msg/s");
}

TEST(BenchCheckParse, DecodesEscapedLabels) {
  bench::JsonResult jr("demo");
  jr.add("weird \"label\"\nwith\\stuff", 1, "count");
  const BenchFile f = parse_bench_json(jr.str());
  ASSERT_TRUE(f.ok);
  ASSERT_EQ(f.entries.size(), 1u);
  EXPECT_EQ(f.entries[0].label, "weird \"label\"\nwith\\stuff");
}

TEST(BenchCheckParse, RejectsMalformedInput) {
  EXPECT_FALSE(parse_bench_json("").ok);
  EXPECT_FALSE(parse_bench_json("{\"bench\":\"x\"}").ok);                 // no results
  EXPECT_FALSE(parse_bench_json("{\"bench\":\"x\",\"results\":[{").ok);  // truncated
}

// --- comparator --------------------------------------------------------------

TEST(BenchCheckCompare, IdenticalFilesPass) {
  const BenchFile f = make({{"isend_total", "instr", 221}, {"rate", "msg/s", 1e6}});
  const tools::CompareResult r = compare(f, f, -1.0);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.diffs.empty());
}

TEST(BenchCheckCompare, PerturbedInstructionCountFails) {
  // The acceptance demo: a single off-by-one instruction count must fail the
  // sentinel even in report-only (default) tolerance mode.
  const BenchFile base = make({{"isend_total", "instr", 221}});
  const BenchFile cur = make({{"isend_total", "instr", 222}});
  const tools::CompareResult r = compare(base, cur, -1.0);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.diffs.size(), 1u);
  EXPECT_EQ(r.diffs[0].kind, DiffKind::ExactMismatch);
  EXPECT_EQ(r.diffs[0].baseline, 221.0);
  EXPECT_EQ(r.diffs[0].current, 222.0);
}

TEST(BenchCheckCompare, RatesUseTolerance) {
  const BenchFile base = make({{"rate", "msg/s", 1000.0}});
  const BenchFile close_enough = make({{"rate", "msg/s", 1040.0}});
  const BenchFile too_far = make({{"rate", "msg/s", 1500.0}});

  // Within a 10% band: recorded as informational drift, not a failure.
  tools::CompareResult r = compare(base, close_enough, 0.10);
  EXPECT_TRUE(r.ok);
  ASSERT_EQ(r.diffs.size(), 1u);
  EXPECT_EQ(r.diffs[0].kind, DiffKind::Drift);

  // Outside the band: failure.
  r = compare(base, too_far, 0.10);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.diffs.size(), 1u);
  EXPECT_EQ(r.diffs[0].kind, DiffKind::ToleranceExceeded);

  // Report-only mode never fails on rates.
  r = compare(base, too_far, -1.0);
  EXPECT_TRUE(r.ok);
  ASSERT_EQ(r.diffs.size(), 1u);
  EXPECT_EQ(r.diffs[0].kind, DiffKind::Drift);
}

TEST(BenchCheckCompare, SchemaChangesFail) {
  const BenchFile base = make({{"a", "instr", 1}, {"b", "instr", 2}});
  const BenchFile renamed = make({{"a", "instr", 1}, {"c", "instr", 2}});
  const tools::CompareResult r = compare(base, renamed, -1.0);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.diffs.size(), 2u);
  EXPECT_EQ(r.diffs[0].kind, DiffKind::Missing);
  EXPECT_EQ(r.diffs[0].label, "b");
  EXPECT_EQ(r.diffs[1].kind, DiffKind::Extra);
  EXPECT_EQ(r.diffs[1].label, "c");
}

TEST(BenchCheckCompare, UnitChangeFails) {
  const BenchFile base = make({{"a", "instr", 5}});
  const BenchFile cur = make({{"a", "msg/s", 5}});
  const tools::CompareResult r = compare(base, cur, -1.0);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.diffs.size(), 1u);
  EXPECT_EQ(r.diffs[0].kind, DiffKind::UnitChanged);
}

// --- live baselines ----------------------------------------------------------
// The committed baselines must agree with what the current library produces:
// this is the in-process version of the bench_regression ctest.

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(BenchCheckBaselines, Table1BaselineMatchesLivePaths) {
  const std::string body = read_all(std::string(LWMPI_SOURCE_DIR) +
                                    "/bench/baselines/BENCH_table1.json");
  ASSERT_FALSE(body.empty()) << "committed baseline missing";
  const BenchFile base = parse_bench_json(body);
  ASSERT_TRUE(base.ok);

  const obs::AttributionRow isend =
      obs::attribution_row("isend", DeviceKind::Ch4, BuildConfig::dflt());
  const obs::AttributionRow put =
      obs::attribution_row("put", DeviceKind::Ch4, BuildConfig::dflt());
  for (const tools::Entry& e : base.entries) {
    if (e.label == "isend_total") EXPECT_EQ(e.value, isend.metered.total);
    if (e.label == "put_total") EXPECT_EQ(e.value, put.metered.total);
    if (e.label == "isend_error-checking") {
      EXPECT_EQ(e.value, isend.metered.group(cost::Group::ErrorChecking));
    }
    if (e.label == "put_mpi-mandatory") {
      EXPECT_EQ(e.value, put.metered.group(cost::Group::Mandatory));
    }
  }
}

// --- JsonResult emission satellites ------------------------------------------

TEST(JsonResultEscape, ControlCharactersBecomeUnicodeEscapes) {
  EXPECT_EQ(bench::JsonResult::escape("a\nb"), "a\\u000ab");
  EXPECT_EQ(bench::JsonResult::escape("tab\there"), "tab\\u0009here");
  EXPECT_EQ(bench::JsonResult::escape("q\"q"), "q\\\"q");
  EXPECT_EQ(bench::JsonResult::escape("b\\s"), "b\\\\s");
  EXPECT_EQ(bench::JsonResult::escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(bench::JsonResult::escape("plain"), "plain");
}

TEST(JsonResult, WriteHonorsBenchDirEnvVar) {
  char tmpl[] = "/tmp/lwmpi_bench_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string dir(tmpl);
  ASSERT_EQ(setenv("LWMPI_BENCH_DIR", dir.c_str(), 1), 0);
  bench::JsonResult jr("envtest");
  jr.add("x", 1, "count");
  EXPECT_TRUE(jr.write());
  unsetenv("LWMPI_BENCH_DIR");

  const std::string path = dir + "/BENCH_envtest.json";
  const std::string body = read_all(path);
  EXPECT_FALSE(body.empty());
  const BenchFile f = parse_bench_json(body);
  EXPECT_TRUE(f.ok);
  EXPECT_EQ(f.bench, "envtest");
  std::remove(path.c_str());
  std::remove(dir.c_str());
}

}  // namespace
}  // namespace lwmpi
