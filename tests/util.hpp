// Shared helpers for the lwmpi test suite.
#pragma once

#include <functional>

#include "core/engine.hpp"
#include "runtime/world.hpp"

namespace lwmpi::test {

// Default options for functional tests: zero-cost loopback network, 2 ranks
// per simulated node so both shmmod and netmod paths are exercised.
inline WorldOptions fast_opts(DeviceKind device = DeviceKind::Ch4) {
  WorldOptions o;
  o.ranks_per_node = 2;
  o.profile = net::loopback();
  o.device = device;
  return o;
}

// Run an SPMD function over `n` ranks with the given options.
inline void spmd(int n, const std::function<void(Engine&)>& fn,
                 WorldOptions opts = fast_opts()) {
  World w(n, std::move(opts));
  w.run(fn);
}

}  // namespace lwmpi::test
