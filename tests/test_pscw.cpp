// Generalized active-target (PSCW) synchronization tests.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "util.hpp"

namespace lwmpi {
namespace {

using test::fast_opts;
using test::spmd;

// Build a group holding the given comm ranks of kCommWorld.
Group make_group(Engine& e, std::initializer_list<int> ranks) {
  Group world = kGroupNull;
  EXPECT_EQ(e.comm_group(kCommWorld, &world), Err::Success);
  Group g = kGroupNull;
  std::vector<int> idx(ranks);
  EXPECT_EQ(e.group_incl(world, idx, &g), Err::Success);
  EXPECT_EQ(e.group_free(&world), Err::Success);
  return g;
}

class PscwDevice : public ::testing::TestWithParam<DeviceKind> {};

TEST_P(PscwDevice, OneOriginOneTarget) {
  spmd(
      2,
      [](Engine& e) {
        const int me = e.world_rank();
        std::vector<int> mem(4, -1);
        Win win = kWinNull;
        ASSERT_EQ(e.win_create(mem.data(), mem.size() * sizeof(int), sizeof(int),
                               kCommWorld, &win),
                  Err::Success);
        if (me == 1) {
          // Target: expose to origin 0, then wait for its epoch to end.
          Group origins = make_group(e, {0});
          ASSERT_EQ(e.win_post(origins, win), Err::Success);
          ASSERT_EQ(e.win_wait(win), Err::Success);
          EXPECT_EQ(mem[2], 777);  // the put is complete after win_wait
          ASSERT_EQ(e.group_free(&origins), Err::Success);
        } else {
          Group targets = make_group(e, {1});
          ASSERT_EQ(e.win_start(targets, win), Err::Success);
          const int v = 777;
          ASSERT_EQ(e.put(&v, 1, kInt, 1, 2, 1, kInt, win), Err::Success);
          ASSERT_EQ(e.win_complete(win), Err::Success);
          ASSERT_EQ(e.group_free(&targets), Err::Success);
        }
        ASSERT_EQ(e.win_free(&win), Err::Success);
      },
      fast_opts(GetParam()));
}

TEST_P(PscwDevice, ManyOriginsOneTarget) {
  spmd(
      4,
      [](Engine& e) {
        const int me = e.world_rank();
        std::vector<int> mem(4, 0);
        Win win = kWinNull;
        ASSERT_EQ(e.win_create(mem.data(), mem.size() * sizeof(int), sizeof(int),
                               kCommWorld, &win),
                  Err::Success);
        if (me == 0) {
          Group origins = make_group(e, {1, 2, 3});
          ASSERT_EQ(e.win_post(origins, win), Err::Success);
          ASSERT_EQ(e.win_wait(win), Err::Success);
          EXPECT_EQ(mem[1], 10);
          EXPECT_EQ(mem[2], 20);
          EXPECT_EQ(mem[3], 30);
          ASSERT_EQ(e.group_free(&origins), Err::Success);
        } else {
          Group target = make_group(e, {0});
          ASSERT_EQ(e.win_start(target, win), Err::Success);
          const int v = me * 10;
          ASSERT_EQ(e.put(&v, 1, kInt, 0, static_cast<std::uint64_t>(me), 1, kInt, win),
                    Err::Success);
          ASSERT_EQ(e.win_complete(win), Err::Success);
          ASSERT_EQ(e.group_free(&target), Err::Success);
        }
        ASSERT_EQ(e.barrier(kCommWorld), Err::Success);
        ASSERT_EQ(e.win_free(&win), Err::Success);
      },
      fast_opts(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(BothDevices, PscwDevice,
                         ::testing::Values(DeviceKind::Ch4, DeviceKind::Orig));

TEST(Pscw, RepeatedEpochs) {
  spmd(2, [](Engine& e) {
    const int me = e.world_rank();
    std::vector<int> mem(1, 0);
    Win win = kWinNull;
    ASSERT_EQ(e.win_create(mem.data(), sizeof(int), sizeof(int), kCommWorld, &win),
              Err::Success);
    for (int round = 0; round < 5; ++round) {
      if (me == 1) {
        Group origins = make_group(e, {0});
        ASSERT_EQ(e.win_post(origins, win), Err::Success);
        ASSERT_EQ(e.win_wait(win), Err::Success);
        EXPECT_EQ(mem[0], round);
        ASSERT_EQ(e.group_free(&origins), Err::Success);
      } else {
        Group targets = make_group(e, {1});
        ASSERT_EQ(e.win_start(targets, win), Err::Success);
        ASSERT_EQ(e.put(&round, 1, kInt, 1, 0, 1, kInt, win), Err::Success);
        ASSERT_EQ(e.win_complete(win), Err::Success);
        ASSERT_EQ(e.group_free(&targets), Err::Success);
      }
    }
    ASSERT_EQ(e.win_free(&win), Err::Success);
  });
}

TEST(Pscw, PairwiseExchange) {
  // Both ranks are simultaneously origin and target (symmetric halo-like
  // pattern with overlapping access and exposure epochs).
  spmd(2, [](Engine& e) {
    const int me = e.world_rank();
    const int other = 1 - me;
    std::vector<int> mem(1, -1);
    Win win = kWinNull;
    ASSERT_EQ(e.win_create(mem.data(), sizeof(int), sizeof(int), kCommWorld, &win),
              Err::Success);
    Group peer = make_group(e, {other});
    ASSERT_EQ(e.win_post(peer, win), Err::Success);
    ASSERT_EQ(e.win_start(peer, win), Err::Success);
    const int v = 500 + me;
    ASSERT_EQ(e.put(&v, 1, kInt, other, 0, 1, kInt, win), Err::Success);
    ASSERT_EQ(e.win_complete(win), Err::Success);
    ASSERT_EQ(e.win_wait(win), Err::Success);
    EXPECT_EQ(mem[0], 500 + other);
    ASSERT_EQ(e.group_free(&peer), Err::Success);
    ASSERT_EQ(e.win_free(&win), Err::Success);
  });
}

TEST(Pscw, CompleteWithoutStartRejected) {
  spmd(1, [](Engine& e) {
    std::vector<int> mem(1, 0);
    Win win = kWinNull;
    ASSERT_EQ(e.win_create(mem.data(), sizeof(int), sizeof(int), kCommWorld, &win),
              Err::Success);
    EXPECT_EQ(e.win_complete(win), Err::RmaSync);
    ASSERT_EQ(e.win_free(&win), Err::Success);
  });
}

TEST(Pscw, PutOutsideEpochStillRejected) {
  spmd(2, [](Engine& e) {
    std::vector<int> mem(1, 0);
    Win win = kWinNull;
    ASSERT_EQ(e.win_create(mem.data(), sizeof(int), sizeof(int), kCommWorld, &win),
              Err::Success);
    const int v = 1;
    // No fence/lock/start: epoch violation under error checking.
    EXPECT_EQ(e.put(&v, 1, kInt, 1 - e.world_rank(), 0, 1, kInt, win), Err::RmaSync);
    ASSERT_EQ(e.win_free(&win), Err::Success);
  });
}

}  // namespace
}  // namespace lwmpi
