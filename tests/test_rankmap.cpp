// Rank-map (network address translation) representation tests (Section 3.1).
#include <gtest/gtest.h>

#include <vector>

#include "comm/rankmap.hpp"
#include "cost/meter.hpp"
#include "cost/model.hpp"

namespace lwmpi::comm {
namespace {

TEST(RankMap, IdentityIsCompressed) {
  RankMap m = RankMap::identity(16);
  EXPECT_EQ(m.repr(), RankMap::Repr::Offset);
  EXPECT_EQ(m.size(), 16);
  EXPECT_EQ(m.memory_bytes(), 0u);
  for (Rank r = 0; r < 16; ++r) EXPECT_EQ(m.to_world_nocharge(r), r);
}

TEST(RankMap, OffsetDetection) {
  RankMap m = RankMap::from_list({5, 6, 7, 8});
  EXPECT_EQ(m.repr(), RankMap::Repr::Offset);
  EXPECT_EQ(m.to_world_nocharge(0), 5);
  EXPECT_EQ(m.to_world_nocharge(3), 8);
}

TEST(RankMap, StrideDetection) {
  RankMap m = RankMap::from_list({1, 3, 5, 7, 9});
  EXPECT_EQ(m.repr(), RankMap::Repr::Strided);
  EXPECT_EQ(m.memory_bytes(), 0u);
  for (Rank r = 0; r < 5; ++r) EXPECT_EQ(m.to_world_nocharge(r), 1 + 2 * r);
}

TEST(RankMap, NegativeStride) {
  RankMap m = RankMap::from_list({9, 6, 3, 0});
  EXPECT_EQ(m.repr(), RankMap::Repr::Strided);
  EXPECT_EQ(m.to_world_nocharge(0), 9);
  EXPECT_EQ(m.to_world_nocharge(3), 0);
}

TEST(RankMap, IrregularFallsBackToDirect) {
  const std::vector<Rank> ranks = {0, 1, 3, 7};
  RankMap m = RankMap::from_list(ranks);
  EXPECT_EQ(m.repr(), RankMap::Repr::Direct);
  EXPECT_EQ(m.memory_bytes(), 4 * sizeof(Rank));
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    EXPECT_EQ(m.to_world_nocharge(static_cast<Rank>(i)), ranks[i]);
  }
}

TEST(RankMap, SingletonIsOffset) {
  RankMap m = RankMap::from_list({42});
  EXPECT_EQ(m.repr(), RankMap::Repr::Offset);
  EXPECT_EQ(m.to_world_nocharge(0), 42);
}

TEST(RankMap, InverseLookup) {
  RankMap s = RankMap::from_list({1, 3, 5});
  EXPECT_EQ(s.from_world(3), 1);
  EXPECT_EQ(s.from_world(5), 2);
  EXPECT_EQ(s.from_world(4), -1);   // not a member (stride mismatch)
  EXPECT_EQ(s.from_world(7), -1);   // out of range
  RankMap d = RankMap::from_list({0, 1, 3, 7});
  EXPECT_EQ(d.from_world(7), 3);
  EXPECT_EQ(d.from_world(2), -1);
}

TEST(RankMap, ToListRoundTrip) {
  const std::vector<Rank> irregular = {4, 0, 9, 2};
  EXPECT_EQ(RankMap::from_list(irregular).to_list(), irregular);
  const std::vector<Rank> strided = {2, 4, 6};
  EXPECT_EQ(RankMap::from_list(strided).to_list(), strided);
}

TEST(RankMap, TranslationCostMatchesRepresentation) {
  // Compressed representations cost ~11 modeled instructions, the O(P) direct
  // table costs 2 -- the paper's Section 3.1 trade-off.
  cost::Meter meter;
  {
    cost::ScopedMeter arm(meter);
    RankMap::identity(8).to_world(3);
  }
  EXPECT_EQ(meter.category(cost::Category::MandRankmap), cost::kMandRankTranslateCompressed);

  meter.reset();
  {
    cost::ScopedMeter arm(meter);
    RankMap::from_list({0, 1, 3, 7}).to_world(2);
  }
  EXPECT_EQ(meter.category(cost::Category::MandRankmap), cost::kMandRankTranslateDirect);
}

TEST(RankMap, EmptyList) {
  RankMap m = RankMap::from_list({});
  EXPECT_EQ(m.size(), 0);
  EXPECT_TRUE(m.to_list().empty());
}

}  // namespace
}  // namespace lwmpi::comm
