// One-sided communication tests: window lifecycle, put/get/accumulate across
// sync modes, both devices, the AM fallback for derived datatypes, and the
// put_va extension (Section 3.2).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "util.hpp"

namespace lwmpi {
namespace {

using test::fast_opts;
using test::spmd;

class RmaDevice : public ::testing::TestWithParam<DeviceKind> {};

TEST_P(RmaDevice, PutThroughFence) {
  spmd(
      2,
      [](Engine& e) {
        std::vector<int> mem(16, -1);
        Win win = kWinNull;
        ASSERT_EQ(e.win_create(mem.data(), mem.size() * sizeof(int), sizeof(int),
                               kCommWorld, &win),
                  Err::Success);
        ASSERT_EQ(e.win_fence(win), Err::Success);
        const int me = e.world_rank();
        int vals[2] = {me * 10 + 1, me * 10 + 2};
        // Write into the peer's window at displacement 4.
        ASSERT_EQ(e.put(vals, 2, kInt, 1 - me, 4, 2, kInt, win), Err::Success);
        ASSERT_EQ(e.win_fence(win), Err::Success);
        EXPECT_EQ(mem[4], (1 - me) * 10 + 1);
        EXPECT_EQ(mem[5], (1 - me) * 10 + 2);
        EXPECT_EQ(mem[3], -1);
        EXPECT_EQ(mem[6], -1);
        ASSERT_EQ(e.win_free(&win), Err::Success);
        EXPECT_EQ(win, kWinNull);
      },
      fast_opts(GetParam()));
}

TEST_P(RmaDevice, GetThroughFence) {
  spmd(
      2,
      [](Engine& e) {
        const int me = e.world_rank();
        std::vector<double> mem(8);
        for (std::size_t i = 0; i < mem.size(); ++i) {
          mem[i] = me * 100.0 + static_cast<double>(i);
        }
        Win win = kWinNull;
        ASSERT_EQ(e.win_create(mem.data(), mem.size() * sizeof(double), sizeof(double),
                               kCommWorld, &win),
                  Err::Success);
        ASSERT_EQ(e.win_fence(win), Err::Success);
        double got[3] = {0, 0, 0};
        ASSERT_EQ(e.get(got, 3, kDouble, 1 - me, 2, 3, kDouble, win), Err::Success);
        ASSERT_EQ(e.win_fence(win), Err::Success);
        EXPECT_EQ(got[0], (1 - me) * 100.0 + 2);
        EXPECT_EQ(got[2], (1 - me) * 100.0 + 4);
        ASSERT_EQ(e.win_free(&win), Err::Success);
      },
      fast_opts(GetParam()));
}

TEST_P(RmaDevice, AccumulateSumsContributions) {
  spmd(
      4,
      [](Engine& e) {
        std::vector<int> mem(4, 0);
        Win win = kWinNull;
        ASSERT_EQ(e.win_create(mem.data(), mem.size() * sizeof(int), sizeof(int),
                               kCommWorld, &win),
                  Err::Success);
        ASSERT_EQ(e.win_fence(win), Err::Success);
        // Everyone accumulates (rank+1) into rank 0's slot 1.
        const int v = e.world_rank() + 1;
        ASSERT_EQ(e.accumulate(&v, 1, kInt, 0, 1, ReduceOp::Sum, win), Err::Success);
        ASSERT_EQ(e.win_fence(win), Err::Success);
        if (e.world_rank() == 0) {
          EXPECT_EQ(mem[1], 1 + 2 + 3 + 4);
          EXPECT_EQ(mem[0], 0);
        }
        ASSERT_EQ(e.win_free(&win), Err::Success);
      },
      fast_opts(GetParam()));
}

TEST_P(RmaDevice, AccumulateMaxAndReplace) {
  spmd(
      2,
      [](Engine& e) {
        const int me = e.world_rank();
        std::vector<int> mem(2, 5);
        Win win = kWinNull;
        ASSERT_EQ(e.win_create(mem.data(), mem.size() * sizeof(int), sizeof(int),
                               kCommWorld, &win),
                  Err::Success);
        ASSERT_EQ(e.win_fence(win), Err::Success);
        const int big = 50 + me;
        const int small = -1;
        ASSERT_EQ(e.accumulate(&big, 1, kInt, 1 - me, 0, ReduceOp::Max, win), Err::Success);
        ASSERT_EQ(e.accumulate(&small, 1, kInt, 1 - me, 1, ReduceOp::Replace, win),
                  Err::Success);
        ASSERT_EQ(e.win_fence(win), Err::Success);
        EXPECT_EQ(mem[0], 50 + (1 - me));
        EXPECT_EQ(mem[1], -1);
        ASSERT_EQ(e.win_free(&win), Err::Success);
      },
      fast_opts(GetParam()));
}

TEST_P(RmaDevice, GetAccumulateFetchesOldValue) {
  spmd(
      2,
      [](Engine& e) {
        const int me = e.world_rank();
        std::vector<int> mem(1, 100 + me);
        Win win = kWinNull;
        ASSERT_EQ(e.win_create(mem.data(), sizeof(int), sizeof(int), kCommWorld, &win),
                  Err::Success);
        ASSERT_EQ(e.win_fence(win), Err::Success);
        if (me == 0) {
          int add = 7;
          int old = -1;
          ASSERT_EQ(e.get_accumulate(&add, 1, kInt, &old, 1, 0, ReduceOp::Sum, win),
                    Err::Success);
          ASSERT_EQ(e.win_fence(win), Err::Success);
          EXPECT_EQ(old, 101);
        } else {
          ASSERT_EQ(e.win_fence(win), Err::Success);
          EXPECT_EQ(mem[0], 108);
        }
        ASSERT_EQ(e.win_free(&win), Err::Success);
      },
      fast_opts(GetParam()));
}

TEST_P(RmaDevice, LockUnlockPassiveTarget) {
  spmd(
      3,
      [](Engine& e) {
        const int me = e.world_rank();
        std::vector<int> mem(4, 0);
        Win win = kWinNull;
        ASSERT_EQ(e.win_create(mem.data(), mem.size() * sizeof(int), sizeof(int),
                               kCommWorld, &win),
                  Err::Success);
        ASSERT_EQ(e.barrier(kCommWorld), Err::Success);
        if (me != 0) {
          // Both non-targets take exclusive locks and update disjoint slots.
          ASSERT_EQ(e.win_lock(LockType::Exclusive, 0, win), Err::Success);
          const int v = me * 11;
          ASSERT_EQ(e.put(&v, 1, kInt, 0, static_cast<std::uint64_t>(me), 1, kInt, win),
                    Err::Success);
          ASSERT_EQ(e.win_unlock(0, win), Err::Success);
        }
        // Rank 0 must keep progressing so AM-path locks can be serviced.
        ASSERT_EQ(e.barrier(kCommWorld), Err::Success);
        if (me == 0) {
          EXPECT_EQ(mem[1], 11);
          EXPECT_EQ(mem[2], 22);
        }
        ASSERT_EQ(e.win_free(&win), Err::Success);
      },
      fast_opts(GetParam()));
}

TEST_P(RmaDevice, LockAllSharedEpoch) {
  spmd(
      3,
      [](Engine& e) {
        const int me = e.world_rank();
        std::vector<int> mem(4, 0);
        Win win = kWinNull;
        ASSERT_EQ(e.win_create(mem.data(), mem.size() * sizeof(int), sizeof(int),
                               kCommWorld, &win),
                  Err::Success);
        ASSERT_EQ(e.barrier(kCommWorld), Err::Success);
        ASSERT_EQ(e.win_lock_all(win), Err::Success);
        const int v = 1;
        for (int t = 0; t < 3; ++t) {
          ASSERT_EQ(e.accumulate(&v, 1, kInt, static_cast<Rank>(t),
                                 static_cast<std::uint64_t>(me), ReduceOp::Sum, win),
                    Err::Success);
        }
        ASSERT_EQ(e.win_flush_all(win), Err::Success);
        ASSERT_EQ(e.win_unlock_all(win), Err::Success);
        ASSERT_EQ(e.barrier(kCommWorld), Err::Success);
        // Every rank's slots 0..2 each received one contribution.
        EXPECT_EQ(mem[0], 1);
        EXPECT_EQ(mem[1], 1);
        EXPECT_EQ(mem[2], 1);
        ASSERT_EQ(e.win_free(&win), Err::Success);
      },
      fast_opts(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(BothDevices, RmaDevice,
                         ::testing::Values(DeviceKind::Ch4, DeviceKind::Orig));

TEST(Rma, DerivedTargetDatatypeRidesAmFallback) {
  spmd(2, [](Engine& e) {
    const int me = e.world_rank();
    std::vector<int> mem(16, -1);
    Win win = kWinNull;
    ASSERT_EQ(e.win_create(mem.data(), mem.size() * sizeof(int), sizeof(int), kCommWorld,
                           &win),
              Err::Success);
    ASSERT_EQ(e.win_fence(win), Err::Success);
    if (me == 0) {
      // Scatter 4 ints into every other slot of rank 1's window.
      Datatype stride2 = kDatatypeNull;
      ASSERT_EQ(e.type_vector(4, 1, 2, kInt, &stride2), Err::Success);
      ASSERT_EQ(e.type_commit(&stride2), Err::Success);
      int vals[4] = {10, 20, 30, 40};
      ASSERT_EQ(e.put(vals, 4, kInt, 1, 0, 1, stride2, win), Err::Success);
      ASSERT_EQ(e.type_free(&stride2), Err::Success);
    }
    ASSERT_EQ(e.win_fence(win), Err::Success);
    if (me == 1) {
      EXPECT_EQ(mem[0], 10);
      EXPECT_EQ(mem[1], -1);
      EXPECT_EQ(mem[2], 20);
      EXPECT_EQ(mem[4], 30);
      EXPECT_EQ(mem[6], 40);
    }
    ASSERT_EQ(e.win_free(&win), Err::Success);
  });
}

TEST(Rma, GetWithDerivedTargetType) {
  spmd(2, [](Engine& e) {
    const int me = e.world_rank();
    std::vector<int> mem(16);
    std::iota(mem.begin(), mem.end(), me * 100);
    Win win = kWinNull;
    ASSERT_EQ(e.win_create(mem.data(), mem.size() * sizeof(int), sizeof(int), kCommWorld,
                           &win),
              Err::Success);
    ASSERT_EQ(e.win_fence(win), Err::Success);
    if (me == 0) {
      Datatype stride4 = kDatatypeNull;
      ASSERT_EQ(e.type_vector(3, 1, 4, kInt, &stride4), Err::Success);
      ASSERT_EQ(e.type_commit(&stride4), Err::Success);
      int got[3] = {0, 0, 0};
      ASSERT_EQ(e.get(got, 3, kInt, 1, 1, 1, stride4, win), Err::Success);
      ASSERT_EQ(e.win_fence(win), Err::Success);
      EXPECT_EQ(got[0], 101);
      EXPECT_EQ(got[1], 105);
      EXPECT_EQ(got[2], 109);
      ASSERT_EQ(e.type_free(&stride4), Err::Success);
    } else {
      ASSERT_EQ(e.win_fence(win), Err::Success);
    }
    ASSERT_EQ(e.win_free(&win), Err::Success);
  });
}

TEST(Rma, PutVaWritesThroughVirtualAddress) {
  spmd(2, [](Engine& e) {
    const int me = e.world_rank();
    std::vector<int> mem(8, 0);
    Win win = kWinNull;
    ASSERT_EQ(e.win_create(mem.data(), mem.size() * sizeof(int), sizeof(int), kCommWorld,
                           &win),
              Err::Success);
    ASSERT_EQ(e.win_fence(win), Err::Success);
    // Resolve the target virtual address once (setup), then communicate with
    // it directly (the Section 3.2 proposal).
    void* peer_slot3 = nullptr;
    ASSERT_EQ(e.win_target_address(1 - me, 3, win, &peer_slot3), Err::Success);
    const int v = 900 + me;
    ASSERT_EQ(e.put_va(&v, 1, kInt, 1 - me, peer_slot3, win), Err::Success);
    ASSERT_EQ(e.win_fence(win), Err::Success);
    EXPECT_EQ(mem[3], 900 + (1 - me));
    ASSERT_EQ(e.win_free(&win), Err::Success);
  });
}

TEST(Rma, WinTargetAddressValidatesBounds) {
  spmd(2, [](Engine& e) {
    std::vector<int> mem(4, 0);
    Win win = kWinNull;
    ASSERT_EQ(e.win_create(mem.data(), mem.size() * sizeof(int), sizeof(int), kCommWorld,
                           &win),
              Err::Success);
    void* addr = nullptr;
    EXPECT_EQ(e.win_target_address(0, 100, win, &addr), Err::Disp);
    EXPECT_EQ(e.win_target_address(7, 0, win, &addr), Err::Rank);
    EXPECT_EQ(e.win_target_address(1, 2, win, &addr), Err::Success);
    ASSERT_EQ(e.win_free(&win), Err::Success);
  });
}

TEST(Rma, EpochViolationDetected) {
  spmd(2, [](Engine& e) {
    std::vector<int> mem(4, 0);
    Win win = kWinNull;
    ASSERT_EQ(e.win_create(mem.data(), mem.size() * sizeof(int), sizeof(int), kCommWorld,
                           &win),
              Err::Success);
    // No fence or lock yet: puts are epoch violations under error checking.
    const int v = 1;
    EXPECT_EQ(e.put(&v, 1, kInt, 1, 0, 1, kInt, win), Err::RmaSync);
    ASSERT_EQ(e.win_fence(win), Err::Success);
    EXPECT_EQ(e.put(&v, 1, kInt, 1, 0, 1, kInt, win), Err::Success);
    ASSERT_EQ(e.win_fence(win), Err::Success);
    ASSERT_EQ(e.win_free(&win), Err::Success);
  });
}

TEST(Rma, DispBoundsChecked) {
  spmd(2, [](Engine& e) {
    std::vector<int> mem(4, 0);
    Win win = kWinNull;
    ASSERT_EQ(e.win_create(mem.data(), mem.size() * sizeof(int), sizeof(int), kCommWorld,
                           &win),
              Err::Success);
    ASSERT_EQ(e.win_fence(win), Err::Success);
    const int v = 1;
    EXPECT_EQ(e.put(&v, 1, kInt, 1, 4, 1, kInt, win), Err::Disp);   // one past end
    EXPECT_EQ(e.put(&v, 1, kInt, 9, 0, 1, kInt, win), Err::Rank);   // bad target
    EXPECT_EQ(e.put(&v, 1, kInt, 1, 3, 1, kInt, win), Err::Success);
    ASSERT_EQ(e.win_fence(win), Err::Success);
    ASSERT_EQ(e.win_free(&win), Err::Success);
  });
}

TEST(Rma, PutToProcNullIsDiscarded) {
  spmd(1, [](Engine& e) {
    std::vector<int> mem(2, 7);
    Win win = kWinNull;
    ASSERT_EQ(e.win_create(mem.data(), mem.size() * sizeof(int), sizeof(int), kCommWorld,
                           &win),
              Err::Success);
    ASSERT_EQ(e.win_fence(win), Err::Success);
    const int v = 1;
    EXPECT_EQ(e.put(&v, 1, kInt, kProcNull, 0, 1, kInt, win), Err::Success);
    EXPECT_EQ(e.get(nullptr, 0, kInt, kProcNull, 0, 0, kInt, win), Err::Success);
    ASSERT_EQ(e.win_fence(win), Err::Success);
    EXPECT_EQ(mem[0], 7);  // untouched
    ASSERT_EQ(e.win_free(&win), Err::Success);
  });
}

TEST(Rma, DifferentDispUnits) {
  spmd(2, [](Engine& e) {
    const int me = e.world_rank();
    // Rank 0 exposes with disp_unit = 1 byte, rank 1 with 8 bytes.
    std::vector<std::int64_t> mem(8, 0);
    const int unit = me == 0 ? 1 : 8;
    Win win = kWinNull;
    ASSERT_EQ(
        e.win_create(mem.data(), mem.size() * sizeof(std::int64_t), unit, kCommWorld, &win),
        Err::Success);
    ASSERT_EQ(e.win_fence(win), Err::Success);
    if (me == 0) {
      // Target rank 1 uses 8-byte units: disp 3 -> third int64.
      const std::int64_t v = 1234;
      ASSERT_EQ(e.put(&v, 1, kInt64, 1, 3, 1, kInt64, win), Err::Success);
    }
    ASSERT_EQ(e.win_fence(win), Err::Success);
    if (me == 1) {
      EXPECT_EQ(mem[3], 1234);
    }
    ASSERT_EQ(e.win_free(&win), Err::Success);
  });
}

TEST(Rma, MultipleWindowsCoexist) {
  spmd(2, [](Engine& e) {
    const int me = e.world_rank();
    std::vector<int> a(4, 0);
    std::vector<int> b(4, 0);
    Win wa = kWinNull, wb = kWinNull;
    ASSERT_EQ(e.win_create(a.data(), a.size() * sizeof(int), sizeof(int), kCommWorld, &wa),
              Err::Success);
    ASSERT_EQ(e.win_create(b.data(), b.size() * sizeof(int), sizeof(int), kCommWorld, &wb),
              Err::Success);
    ASSERT_EQ(e.win_fence(wa), Err::Success);
    ASSERT_EQ(e.win_fence(wb), Err::Success);
    const int va = 1 + me, vb = 100 + me;
    ASSERT_EQ(e.put(&va, 1, kInt, 1 - me, 0, 1, kInt, wa), Err::Success);
    ASSERT_EQ(e.put(&vb, 1, kInt, 1 - me, 0, 1, kInt, wb), Err::Success);
    ASSERT_EQ(e.win_fence(wa), Err::Success);
    ASSERT_EQ(e.win_fence(wb), Err::Success);
    EXPECT_EQ(a[0], 1 + (1 - me));
    EXPECT_EQ(b[0], 100 + (1 - me));
    ASSERT_EQ(e.win_free(&wb), Err::Success);
    ASSERT_EQ(e.win_free(&wa), Err::Success);
  });
}

TEST(Rma, WindowOnSubCommunicator) {
  spmd(4, [](Engine& e) {
    const int me = e.world_rank();
    Comm evens = kCommNull;
    ASSERT_EQ(e.comm_split(kCommWorld, me % 2, me, &evens), Err::Success);
    if (me % 2 == 0) {
      std::vector<int> mem(2, 0);
      Win win = kWinNull;
      ASSERT_EQ(e.win_create(mem.data(), mem.size() * sizeof(int), sizeof(int), evens, &win),
                Err::Success);
      ASSERT_EQ(e.win_fence(win), Err::Success);
      const int sub_me = e.rank(evens);
      const int v = 500 + sub_me;
      ASSERT_EQ(e.put(&v, 1, kInt, 1 - sub_me, 0, 1, kInt, win), Err::Success);
      ASSERT_EQ(e.win_fence(win), Err::Success);
      EXPECT_EQ(mem[0], 500 + (1 - sub_me));
      ASSERT_EQ(e.win_free(&win), Err::Success);
    }
    ASSERT_EQ(e.comm_free(&evens), Err::Success);
    ASSERT_EQ(e.barrier(kCommWorld), Err::Success);
  });
}

}  // namespace
}  // namespace lwmpi
