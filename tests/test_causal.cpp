// Causal tier (obs/causal.hpp): wait-state classification, the piggybacked
// causal header, Lamport clock ordering, the critical-path analyzer, and the
// JSONL trace round trip.
//
// The injected-delay cases are the acceptance checks: deliberately delaying
// the sender, the receiver, or withholding rdma ring credits must surface as
// late-sender / late-receiver / credit-stalled classifications, and the
// analyzer must rank the injected gap as the top critical-path contributor.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/causal.hpp"
#include "obs/pvar.hpp"
#include "obs/trace.hpp"
#include "util.hpp"

namespace lwmpi {
namespace {

using obs::Wait;
namespace causal = obs::causal;
namespace trace = obs::trace;

constexpr std::uint64_t kMs = 1'000'000;

// Sanitizer instrumentation slows the software path an order of magnitude,
// so the injected delays must stay far above any instrumented sw_* edge for
// the top-contributor assertions to hold.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr int kDelayScale = 20;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr int kDelayScale = 20;
#else
constexpr int kDelayScale = 1;
#endif
#else
constexpr int kDelayScale = 1;
#endif

std::uint64_t read_pvar(Engine& e, const char* name) {
  obs::PvarSession s;
  EXPECT_EQ(obs::LWMPI_T_pvar_session_create(e, &s), Err::Success);
  const int idx = obs::LWMPI_T_pvar_index(name);
  EXPECT_GE(idx, 0) << "unknown pvar " << name;
  std::uint64_t v = 0;
  EXPECT_EQ(obs::LWMPI_T_pvar_read(s, idx, &v), Err::Success);
  obs::LWMPI_T_pvar_session_free(&s);
  return v;
}

// --- classify_wait -----------------------------------------------------------

TEST(ClassifyWait, UnstampedSidesAreUnclassifiable) {
  std::uint64_t w = 123;
  EXPECT_EQ(obs::classify_wait(0, 500, 0, 900, &w), Wait::None);
  EXPECT_EQ(w, 0u);
  EXPECT_EQ(obs::classify_wait(500, 0, 0, 900, &w), Wait::None);
  EXPECT_EQ(w, 0u);
  EXPECT_EQ(obs::classify_wait(100, 100, 0, 100, nullptr), Wait::None);  // zero wait
}

TEST(ClassifyWait, LateSenderDominatesWhenSendFollowsPost) {
  std::uint64_t w = 0;
  // Posted at 100, sent at 150, matched at 160: the receiver spent 60 waiting,
  // 50 of which were the sender's absence.
  EXPECT_EQ(obs::classify_wait(100, 150, 0, 160, &w), Wait::LateSender);
  EXPECT_EQ(w, 60u);
}

TEST(ClassifyWait, LateReceiverDominatesWhenPostFollowsSend) {
  std::uint64_t w = 0;
  EXPECT_EQ(obs::classify_wait(150, 100, 0, 160, &w), Wait::LateReceiver);
  EXPECT_EQ(w, 60u);
}

TEST(ClassifyWait, ProgressStarvedWhenBothReadyAndNobodyPolls) {
  std::uint64_t w = 0;
  // Both sides ready at 100, match only at 300: 200 ns of pure residual.
  EXPECT_EQ(obs::classify_wait(100, 101, 0, 300, &w), Wait::ProgressStarved);
  EXPECT_EQ(w, 200u);
}

TEST(ClassifyWait, CreditStallExplainsThePostReadyWindow) {
  std::uint64_t w = 0;
  // Post-ready window is 90; the sender stalled 80 of it for a credit, which
  // beats the 10 ns sender lag and 10 ns residual.
  EXPECT_EQ(obs::classify_wait(100, 110, 80, 200, &w), Wait::CreditStalled);
  EXPECT_EQ(w, 100u);
  // A stall longer than the post-ready window cannot claim more than the
  // window: the receiver's absence overlapped it, so lag_recv wins.
  EXPECT_EQ(obs::classify_wait(500, 100, 1000, 520, &w), Wait::LateReceiver);
}

TEST(WaitBlock, RecordsIntoPerStateHistograms) {
  const auto count_of = [](const obs::WaitBlock& blk, Wait w) {
    obs::LatSnapshot s;
    s.merge(blk.of(w));
    return s.count;
  };
  obs::WaitBlock b;
  b.record(Wait::LateSender, 1000);
  b.record(Wait::LateSender, 2000);
  b.record(Wait::CreditStalled, 500);
  b.record(Wait::None, 99999);  // ignored
  EXPECT_EQ(count_of(b, Wait::LateSender), 2u);
  EXPECT_EQ(count_of(b, Wait::CreditStalled), 1u);
  EXPECT_EQ(count_of(b, Wait::LateReceiver), 0u);
  b.enabled = false;
  b.record(Wait::LateSender, 1000);
  EXPECT_EQ(count_of(b, Wait::LateSender), 2u);
}

TEST(WaitStrings, RoundTrip) {
  for (Wait w : {Wait::None, Wait::LateSender, Wait::LateReceiver, Wait::ProgressStarved,
                 Wait::CreditStalled, Wait::RegCacheMiss}) {
    EXPECT_EQ(obs::wait_from_string(obs::to_string(w)), w);
  }
  EXPECT_EQ(obs::wait_from_string("no-such-state"), Wait::None);
}

TEST(EvStrings, RoundTrip) {
  for (trace::Ev e : {trace::Ev::SendPost, trace::Ev::RecvPost, trace::Ev::Match,
                      trace::Ev::Inject, trace::Ev::Deliver, trace::Ev::Complete,
                      trace::Ev::ZcopyWrite}) {
    EXPECT_EQ(trace::ev_from_string(trace::to_string(e)), e);
  }
}

// --- injected-delay classification + critical path ---------------------------

WorldOptions causal_opts(const std::string& netmod) {
  WorldOptions o;
  o.netmod = netmod;
  o.ranks_per_node = 1;          // inter-node: exercise the full netmod path
  o.build.trace = true;
  o.build.lat_sample_shift = 0;  // stamp every message so every match classifies
  return o;
}

// One warmup exchange plus one delayed message; returns the merged trace.
std::vector<trace::Event> run_delayed(const std::string& netmod, bool delay_sender,
                                      std::uint64_t* wait_count,
                                      std::uint64_t* wait_max_ns) {
  const auto kDelay = std::chrono::milliseconds(20 * kDelayScale);
  trace::reset_all();
  std::vector<trace::Event> events;
  {
    World w(2, causal_opts(netmod));
    w.run([&](Engine& e) {
      char b = 0;
      // Warmup: both ranks get a timeline origin for the analyzer to anchor
      // the injected gap against.
      if (e.world_rank() == 0) {
        e.send(&b, 1, kChar, 1, 1, kCommWorld);
      } else {
        e.recv(&b, 1, kChar, 0, 1, kCommWorld, nullptr);
      }
      if (e.world_rank() == 0) {
        if (delay_sender) std::this_thread::sleep_for(kDelay);
        e.send(&b, 1, kChar, 1, 7, kCommWorld);
      } else {
        if (!delay_sender) std::this_thread::sleep_for(kDelay);
        e.recv(&b, 1, kChar, 0, 7, kCommWorld, nullptr);
      }
    });
    const char* count_pvar =
        delay_sender ? "wait_late_sender_count" : "wait_late_receiver_count";
    const char* max_pvar =
        delay_sender ? "wait_late_sender_max_ns" : "wait_late_receiver_max_ns";
    *wait_count = read_pvar(w.engine(1), count_pvar);
    *wait_max_ns = read_pvar(w.engine(1), max_pvar);
    events = trace::collect_all();
  }
  return events;
}

class DelayedClassification : public ::testing::TestWithParam<const char*> {};

TEST_P(DelayedClassification, LateSenderDominatesCriticalPath) {
  std::uint64_t count = 0, max_ns = 0;
  const auto events = run_delayed(GetParam(), /*delay_sender=*/true, &count, &max_ns);
  EXPECT_GE(count, 1u);
  EXPECT_GE(max_ns, 10 * kMs);

  const causal::Analysis a = causal::analyze(events);
  ASSERT_FALSE(a.by_category.empty());
  EXPECT_STREQ(a.by_category[0].category, "late_sender");
  EXPECT_GE(a.by_category[0].total_ns, 10 * kMs);
  // The injected gap is the single top edge.
  std::uint64_t top = 0;
  const char* top_cat = "";
  for (const causal::PathEdge& e : a.path) {
    if (e.dur_ns > top) {
      top = e.dur_ns;
      top_cat = e.category;
    }
  }
  EXPECT_STREQ(top_cat, "late_sender");
  EXPECT_GE(top, 10 * kMs);
}

TEST_P(DelayedClassification, LateReceiverDominatesCriticalPath) {
  std::uint64_t count = 0, max_ns = 0;
  const auto events = run_delayed(GetParam(), /*delay_sender=*/false, &count, &max_ns);
  EXPECT_GE(count, 1u);
  EXPECT_GE(max_ns, 10 * kMs);

  const causal::Analysis a = causal::analyze(events);
  ASSERT_FALSE(a.by_category.empty());
  EXPECT_STREQ(a.by_category[0].category, "late_receiver");
  EXPECT_GE(a.by_category[0].total_ns, 10 * kMs);
}

INSTANTIATE_TEST_SUITE_P(BothBackends, DelayedClassification,
                         ::testing::Values("mailbox", "rdma"));

TEST(CreditStall, WithheldCreditsClassifyAsCreditStalled) {
  // 2-deep eager ring; the receiver posts everything up front and then
  // withholds progress, so the sender's third inject busy-waits for a credit.
  constexpr int kMsgs = 8;
  const auto kDelay = std::chrono::milliseconds(25 * kDelayScale);
  trace::reset_all();
  WorldOptions o = causal_opts("rdma");
  o.profile.rdma_ring_depth = 2;
  World w(2, o);
  w.run([&](Engine& e) {
    char b = 0;
    if (e.world_rank() == 1) {
      std::vector<Request> reqs(kMsgs, kRequestNull);
      for (int i = 0; i < kMsgs; ++i) {
        ASSERT_EQ(e.irecv(&b, 1, kChar, 0, 7, kCommWorld, &reqs[i]), Err::Success);
      }
      std::this_thread::sleep_for(kDelay);
      std::vector<Status> sts(kMsgs);
      ASSERT_EQ(e.waitall(reqs, sts), Err::Success);
    } else {
      // Head start for the receiver's posts, so posted_ns predates send_ns and
      // sender lag cannot dominate the classification.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      for (int i = 0; i < kMsgs; ++i) {
        e.send(&b, 1, kChar, 1, 7, kCommWorld);
      }
    }
  });

  // The sender demonstrably stalled on the ring...
  EXPECT_GE(read_pvar(w.engine(0), "rdma_ring_stalls"), 1u);
  EXPECT_GE(read_pvar(w.engine(0), "rdma_ring_stall_ns"), 10 * kMs);
  // ...and the receiver blamed the stall, not itself.
  EXPECT_GE(read_pvar(w.engine(1), "wait_credit_stalled_count"), 1u);
  EXPECT_GE(read_pvar(w.engine(1), "wait_credit_stalled_max_ns"), 10 * kMs);

  // The stall must also be visible on the merged timeline: a credit_stalled
  // classification on some Match event.
  const auto events = trace::collect_all();
  bool saw = false;
  for (const trace::Event& e : events) {
    if (e.kind == trace::Ev::Match &&
        static_cast<Wait>(e.wait) == Wait::CreditStalled) {
      saw = true;
      EXPECT_GE(e.wait_ns, 10 * kMs);
    }
  }
  EXPECT_TRUE(saw);
}

TEST(RegCacheMiss, ZcopyRegistrationPinsAreRecorded) {
  // A zero-copy rendezvous registers memory on both sides; with a measurable
  // pin cost the cold registrations must be recorded as reg-cache-miss waits.
  trace::reset_all();
  WorldOptions o = causal_opts("rdma");
  o.eager_threshold = 1024;
  o.profile.pin_cost_ns_per_page = 50'000;  // 50 us per page, measurable
  World w(2, o);
  const std::size_t n = 64 * 1024;
  std::vector<char> got(n, 0);
  w.run([&](Engine& e) {
    if (e.world_rank() == 0) {
      std::vector<char> data(n, 'q');
      e.send(data.data(), static_cast<int>(n), kChar, 1, 3, kCommWorld);
    } else {
      e.recv(got.data(), static_cast<int>(n), kChar, 0, 3, kCommWorld, nullptr);
    }
  });
  EXPECT_EQ(got[n - 1], 'q');
  // Receiver registers for the CTS rkey; sender registers for the local read.
  EXPECT_GE(read_pvar(w.engine(1), "wait_reg_cache_miss_count"), 1u);
  EXPECT_GE(read_pvar(w.engine(0), "wait_reg_cache_miss_count"), 1u);
  EXPECT_GE(read_pvar(w.engine(1), "wait_reg_cache_miss_max_ns"), 50'000u);
}

// --- Lamport ordering across the wire ----------------------------------------

TEST(LamportClock, DeliverIsStrictlyAfterMatchingInject) {
  trace::reset_all();
  WorldOptions o = causal_opts("rdma");
  World w(2, o);
  w.run([&](Engine& e) {
    char b = 0;
    for (int i = 0; i < 6; ++i) {
      if (e.world_rank() == 0) {
        e.send(&b, 1, kChar, 1, i, kCommWorld);
      } else {
        e.recv(&b, 1, kChar, 0, i, kCommWorld, nullptr);
      }
    }
  });
  const auto events = trace::collect_all();
  std::map<std::uint64_t, std::uint64_t> inject_clock;
  for (const trace::Event& e : events) {
    if (e.kind == trace::Ev::Inject && e.seq != 0 && e.rank == 0) {
      inject_clock[e.seq] = e.lclock;
    }
  }
  EXPECT_GE(inject_clock.size(), 6u);
  int checked = 0;
  for (const trace::Event& e : events) {
    if (e.kind == trace::Ev::Deliver && e.seq != 0 && e.rank == 1) {
      auto it = inject_clock.find(e.seq);
      if (it == inject_clock.end()) continue;
      // The inject event snapshots the clock *before* its own tick; the
      // deliver snapshots it after the merge, so strict dominance holds.
      EXPECT_GT(e.lclock, it->second) << "seq " << e.seq;
      ++checked;
    }
  }
  EXPECT_GE(checked, 6);
}

// --- satellite: balanced spans for every rdma-backend message ----------------

TEST(TraceSpans, EveryRdmaMessageHasBalancedBeginEnd) {
  // Mixed eager + zero-copy rendezvous traffic on the rdma backend: every
  // distinct message id in the Chrome export must open exactly one async span
  // and close it ("b"/"e" balance), including the RdvDone and zcopy-landing
  // hops.
  trace::reset_all();
  WorldOptions o = causal_opts("rdma");
  o.eager_threshold = 1024;
  World w(2, o);
  const std::size_t big = 64 * 1024;
  std::vector<char> in_small(8, 0);
  std::vector<char> in_big(big, 0);
  w.run([&](Engine& e) {
    if (e.world_rank() == 0) {
      std::vector<char> s(8, 'a');
      std::vector<char> g(big, 'z');
      for (int i = 0; i < 4; ++i) e.send(s.data(), 8, kChar, 1, i, kCommWorld);
      e.send(g.data(), static_cast<int>(big), kChar, 1, 99, kCommWorld);
    } else {
      for (int i = 0; i < 4; ++i) {
        e.recv(in_small.data(), 8, kChar, 0, i, kCommWorld, nullptr);
      }
      e.recv(in_big.data(), static_cast<int>(big), kChar, 0, 99, kCommWorld, nullptr);
    }
  });
  const auto events = trace::collect_all();

  // The zcopy landing and the rendezvous-completion hop are on the timeline.
  bool saw_zcopy = false;
  for (const trace::Event& e : events) {
    if (e.kind == trace::Ev::ZcopyWrite) saw_zcopy = true;
  }
  EXPECT_TRUE(saw_zcopy);

  std::ostringstream os;
  trace::export_chrome_json(os, events);
  const std::string doc = os.str();

  // Count per-id async begin/end markers: each {...} object carries at most
  // one "ph" and one "id".
  std::map<std::string, int> begins, ends;
  std::size_t pos = 0;
  while ((pos = doc.find('{', pos)) != std::string::npos) {
    const std::size_t end = doc.find('}', pos);
    if (end == std::string::npos) break;
    const std::string obj = doc.substr(pos, end - pos);
    const auto field = [&](const char* key) -> std::string {
      const std::string needle = std::string("\"") + key + "\":";
      const std::size_t p = obj.find(needle);
      if (p == std::string::npos) return "";
      std::size_t i = p + needle.size();
      std::size_t j = i;
      while (j < obj.size() && obj[j] != ',' && obj[j] != '}') ++j;
      return obj.substr(i, j - i);
    };
    const std::string ph = field("ph");
    const std::string id = field("id");
    if (!id.empty()) {
      if (ph == "\"b\"") ++begins[id];
      if (ph == "\"e\"") ++ends[id];
    }
    pos = end + 1;
  }
  ASSERT_GE(begins.size(), 5u);  // 4 eager + 1 rendezvous chain at minimum
  EXPECT_EQ(begins.size(), ends.size());
  for (const auto& [id, n] : begins) {
    EXPECT_EQ(n, 1) << "unbalanced begin for id " << id;
    EXPECT_EQ(ends[id], 1) << "unbalanced end for id " << id;
  }
}

// --- JSONL round trip + teardown export --------------------------------------

TEST(CausalJsonl, RoundTripsEveryField) {
  std::vector<trace::Event> in;
  trace::Event a;
  a.ts_ns = 111;
  a.seq = 42;
  a.bytes = 8;
  a.lclock = 5;
  a.wait_ns = 777;
  a.rank = 0;
  a.peer = 1;
  a.tag = 9;
  a.vci = 2;
  a.wait = static_cast<std::uint8_t>(Wait::LateSender);
  a.kind = trace::Ev::Match;
  trace::Event b;
  b.ts_ns = 99;  // earlier: export must reorder
  b.seq = 42;
  b.lclock = 1;
  b.rank = 1;
  b.peer = 0;
  b.kind = trace::Ev::Inject;
  in.push_back(a);
  in.push_back(b);

  std::stringstream ss;
  causal::export_jsonl(ss, in);
  const std::vector<trace::Event> out = causal::parse_jsonl(ss);
  ASSERT_EQ(out.size(), 2u);
  // Sorted by merged order: b (ts 99) first.
  EXPECT_EQ(out[0].ts_ns, 99u);
  EXPECT_EQ(out[0].kind, trace::Ev::Inject);
  EXPECT_EQ(out[1].ts_ns, 111u);
  EXPECT_EQ(out[1].seq, 42u);
  EXPECT_EQ(out[1].bytes, 8u);
  EXPECT_EQ(out[1].lclock, 5u);
  EXPECT_EQ(out[1].wait_ns, 777u);
  EXPECT_EQ(out[1].rank, 0);
  EXPECT_EQ(out[1].peer, 1);
  EXPECT_EQ(out[1].tag, 9);
  EXPECT_EQ(out[1].vci, 2u);
  EXPECT_EQ(static_cast<Wait>(out[1].wait), Wait::LateSender);
  EXPECT_EQ(out[1].kind, trace::Ev::Match);
}

TEST(CausalJsonl, WorldTeardownWritesAnalyzableTrace) {
  const std::string path = ::testing::TempDir() + "lwmpi_causal_teardown.jsonl";
  std::remove(path.c_str());
  trace::reset_all();
  {
    WorldOptions o = causal_opts("mailbox");
    o.causal_trace_path = path;
    World w(2, o);
    w.run([&](Engine& e) {
      char b = 0;
      if (e.world_rank() == 0) {
        e.send(&b, 1, kChar, 1, 7, kCommWorld);
      } else {
        e.recv(&b, 1, kChar, 0, 7, kCommWorld, nullptr);
      }
    });
  }  // ~World writes the trace
  std::ifstream f(path);
  ASSERT_TRUE(f.is_open()) << path;
  const std::vector<trace::Event> events = causal::parse_jsonl(f);
  ASSERT_GE(events.size(), 6u);  // post/inject/complete + post/deliver/match/complete
  const causal::Analysis a = causal::analyze(events);
  EXPECT_EQ(a.messages, 1u);
  EXPECT_FALSE(a.path.empty());
  std::remove(path.c_str());
}

TEST(CausalRender, JsonAndTextCarryTheBreakdown) {
  std::uint64_t count = 0, max_ns = 0;
  const auto events = run_delayed("mailbox", /*delay_sender=*/true, &count, &max_ns);
  const causal::Analysis a = causal::analyze(events);
  const std::string text = causal::render_text(a);
  EXPECT_NE(text.find("cost by category"), std::string::npos);
  EXPECT_NE(text.find("late_sender"), std::string::npos);
  EXPECT_NE(text.find("per-rank slack"), std::string::npos);
  const std::string json = causal::render_json(a);
  EXPECT_NE(json.find("\"by_category\":[{\"category\":\"late_sender\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ranks\":["), std::string::npos);
}

}  // namespace
}  // namespace lwmpi
