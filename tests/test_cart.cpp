// Cartesian topology tests: creation, coordinate mapping, shifts, and the
// PROC_NULL boundaries that motivate the paper's Section 3.4.
#include <gtest/gtest.h>

#include <array>

#include "util.hpp"

namespace lwmpi {
namespace {

using test::spmd;

TEST(Cart, CreateAndCoords2d) {
  spmd(4, [](Engine& e) {
    const std::array<int, 2> dims = {2, 2};
    const std::array<bool, 2> periods = {false, false};
    Comm cart = kCommNull;
    ASSERT_EQ(e.cart_create(kCommWorld, dims, periods, false, &cart), Err::Success);
    ASSERT_NE(cart, kCommNull);
    int ndims = 0;
    ASSERT_EQ(e.cartdim_get(cart, &ndims), Err::Success);
    EXPECT_EQ(ndims, 2);

    // Row-major: rank = x * 2 + y.
    std::array<int, 2> coords{};
    ASSERT_EQ(e.cart_coords(cart, e.rank(cart), coords), Err::Success);
    EXPECT_EQ(e.rank(cart), coords[0] * 2 + coords[1]);

    Rank back = kUndefined;
    ASSERT_EQ(e.cart_rank(cart, coords, &back), Err::Success);
    EXPECT_EQ(back, e.rank(cart));
    ASSERT_EQ(e.comm_free(&cart), Err::Success);
  });
}

TEST(Cart, NonPeriodicShiftYieldsProcNull) {
  spmd(4, [](Engine& e) {
    const std::array<int, 2> dims = {2, 2};
    const std::array<bool, 2> periods = {false, false};
    Comm cart = kCommNull;
    ASSERT_EQ(e.cart_create(kCommWorld, dims, periods, false, &cart), Err::Success);
    std::array<int, 2> c{};
    ASSERT_EQ(e.cart_coords(cart, e.rank(cart), c), Err::Success);
    Rank src = kUndefined, dst = kUndefined;
    ASSERT_EQ(e.cart_shift(cart, 0, 1, &src, &dst), Err::Success);
    if (c[0] == 1) {
      EXPECT_EQ(dst, kProcNull);  // top edge
      EXPECT_NE(src, kProcNull);
    } else {
      EXPECT_NE(dst, kProcNull);
      EXPECT_EQ(src, kProcNull);  // bottom edge
    }
    ASSERT_EQ(e.comm_free(&cart), Err::Success);
  });
}

TEST(Cart, PeriodicShiftWraps) {
  spmd(4, [](Engine& e) {
    const std::array<int, 1> dims = {4};
    const std::array<bool, 1> periods = {true};
    Comm ring = kCommNull;
    ASSERT_EQ(e.cart_create(kCommWorld, dims, periods, false, &ring), Err::Success);
    Rank src = kUndefined, dst = kUndefined;
    ASSERT_EQ(e.cart_shift(ring, 0, 1, &src, &dst), Err::Success);
    const int me = e.rank(ring);
    EXPECT_EQ(dst, (me + 1) % 4);
    EXPECT_EQ(src, (me + 3) % 4);
    // Shift by more than the dimension wraps too.
    ASSERT_EQ(e.cart_shift(ring, 0, 5, &src, &dst), Err::Success);
    EXPECT_EQ(dst, (me + 5) % 4);
    ASSERT_EQ(e.comm_free(&ring), Err::Success);
  });
}

TEST(Cart, SurplusRanksGetNull) {
  spmd(4, [](Engine& e) {
    const std::array<int, 1> dims = {3};  // one rank left over
    const std::array<bool, 1> periods = {false};
    Comm cart = kCommNull;
    ASSERT_EQ(e.cart_create(kCommWorld, dims, periods, false, &cart), Err::Success);
    if (e.world_rank() == 3) {
      EXPECT_EQ(cart, kCommNull);
    } else {
      ASSERT_NE(cart, kCommNull);
      EXPECT_EQ(e.size(cart), 3);
      ASSERT_EQ(e.comm_free(&cart), Err::Success);
    }
  });
}

TEST(Cart, HaloExchangeThroughShift) {
  // End-to-end: a 1-D ring halo exchange using neighbours from cart_shift;
  // non-periodic ends naturally send to PROC_NULL.
  spmd(3, [](Engine& e) {
    const std::array<int, 1> dims = {3};
    const std::array<bool, 1> periods = {false};
    Comm chain = kCommNull;
    ASSERT_EQ(e.cart_create(kCommWorld, dims, periods, false, &chain), Err::Success);
    Rank left = kUndefined, right = kUndefined;
    ASSERT_EQ(e.cart_shift(chain, 0, 1, &left, &right), Err::Success);
    const int me = e.rank(chain);
    int from_left = -1, from_right = -1;
    int mine = 100 + me;
    Request reqs[4];
    ASSERT_EQ(e.irecv(&from_left, 1, kInt, left, 1, chain, &reqs[0]), Err::Success);
    ASSERT_EQ(e.irecv(&from_right, 1, kInt, right, 2, chain, &reqs[1]), Err::Success);
    ASSERT_EQ(e.isend(&mine, 1, kInt, right, 1, chain, &reqs[2]), Err::Success);
    ASSERT_EQ(e.isend(&mine, 1, kInt, left, 2, chain, &reqs[3]), Err::Success);
    ASSERT_EQ(e.waitall(reqs, {}), Err::Success);
    EXPECT_EQ(from_left, me > 0 ? 100 + me - 1 : -1);
    EXPECT_EQ(from_right, me < 2 ? 100 + me + 1 : -1);
    ASSERT_EQ(e.comm_free(&chain), Err::Success);
  });
}

TEST(Cart, InvalidArgumentsRejected) {
  spmd(2, [](Engine& e) {
    Comm cart = kCommNull;
    const std::array<int, 1> zero_dim = {0};
    const std::array<bool, 1> p1 = {false};
    EXPECT_EQ(e.cart_create(kCommWorld, zero_dim, p1, false, &cart), Err::Arg);
    const std::array<int, 1> too_big = {5};
    EXPECT_EQ(e.cart_create(kCommWorld, too_big, p1, false, &cart), Err::Arg);
    // cart calls on a non-cartesian communicator fail.
    int nd = 0;
    EXPECT_EQ(e.cartdim_get(kCommWorld, &nd), Err::Comm);
    Rank s, d;
    EXPECT_EQ(e.cart_shift(kCommWorld, 0, 1, &s, &d), Err::Comm);
    ASSERT_EQ(e.barrier(kCommWorld), Err::Success);
  });
}

}  // namespace
}  // namespace lwmpi
