// Matching-engine unit tests: MPI matching semantics, wildcards, ordering,
// unexpected-message handling, and arrival-order (_NOMATCH) contexts.
#include <gtest/gtest.h>

#include "match/match.hpp"

namespace lwmpi::match {
namespace {

rt::Packet* make(std::uint32_t ctx, Rank src, Tag tag,
                 rt::MatchMode mode = rt::MatchMode::Full,
                 rt::PacketKind kind = rt::PacketKind::Eager) {
  rt::Packet* p = rt::PacketPool::alloc();
  p->hdr.kind = kind;
  p->hdr.match_mode = mode;
  p->hdr.ctx = ctx;
  p->hdr.src_comm_rank = src;
  p->hdr.tag = tag;
  return p;
}

PostedRecv posted(std::uint32_t ctx, Rank src, Tag tag, std::uint32_t req = 1,
                  rt::MatchMode mode = rt::MatchMode::Full) {
  PostedRecv r;
  r.ctx = ctx;
  r.src = src;
  r.tag = tag;
  r.req = req;
  r.mode = mode;
  return r;
}

TEST(Match, ExactTripleMatches) {
  MatchEngine m;
  EXPECT_FALSE(m.post(posted(7, 2, 99)).has_value());
  rt::Packet* p = make(7, 2, 99);
  auto hit = m.arrive(p);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->req, 1u);
  EXPECT_EQ(m.posted_depth(), 0u);
  rt::PacketPool::free(p);
}

TEST(Match, ContextIsolates) {
  MatchEngine m;
  m.post(posted(7, 2, 99));
  rt::Packet* p = make(8, 2, 99);  // wrong context
  EXPECT_FALSE(m.arrive(p).has_value());
  EXPECT_EQ(m.unexpected_depth(), 1u);
  EXPECT_EQ(m.posted_depth(), 1u);
}

TEST(Match, SourceAndTagMustAgree) {
  MatchEngine m;
  m.post(posted(1, 2, 3));
  rt::Packet* wrong_src = make(1, 9, 3);
  EXPECT_FALSE(m.arrive(wrong_src).has_value());
  rt::Packet* wrong_tag = make(1, 2, 4);
  EXPECT_FALSE(m.arrive(wrong_tag).has_value());
  rt::Packet* right = make(1, 2, 3);
  EXPECT_TRUE(m.arrive(right).has_value());
  rt::PacketPool::free(right);
}

TEST(Match, AnySourceWildcard) {
  MatchEngine m;
  m.post(posted(1, kAnySource, 5));
  rt::Packet* p = make(1, 42, 5);
  auto hit = m.arrive(p);
  ASSERT_TRUE(hit.has_value());
  rt::PacketPool::free(p);
}

TEST(Match, AnyTagWildcard) {
  MatchEngine m;
  m.post(posted(1, 3, kAnyTag));
  rt::Packet* p = make(1, 3, 12345);
  EXPECT_TRUE(m.arrive(p).has_value());
  rt::PacketPool::free(p);
}

TEST(Match, BothWildcards) {
  MatchEngine m;
  m.post(posted(1, kAnySource, kAnyTag));
  rt::Packet* p = make(1, 7, 8);
  EXPECT_TRUE(m.arrive(p).has_value());
  rt::PacketPool::free(p);
}

TEST(Match, OldestPostedWins) {
  MatchEngine m;
  m.post(posted(1, kAnySource, kAnyTag, /*req=*/10));
  m.post(posted(1, 2, 5, /*req=*/20));
  rt::Packet* p = make(1, 2, 5);
  auto hit = m.arrive(p);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->req, 10u);  // the earlier (wildcard) receive matches first
  rt::PacketPool::free(p);
}

TEST(Match, OldestUnexpectedWins) {
  MatchEngine m;
  rt::Packet* a = make(1, 2, 5);
  a->hdr.total_bytes = 111;
  rt::Packet* b = make(1, 2, 5);
  b->hdr.total_bytes = 222;
  EXPECT_FALSE(m.arrive(a).has_value());
  EXPECT_FALSE(m.arrive(b).has_value());
  auto hit = m.post(posted(1, 2, 5));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ((*hit)->hdr.total_bytes, 111u);  // FIFO
  rt::PacketPool::free(*hit);
  auto hit2 = m.post(posted(1, 2, 5));
  ASSERT_TRUE(hit2.has_value());
  EXPECT_EQ((*hit2)->hdr.total_bytes, 222u);
}

TEST(Match, ArrivalOrderIgnoresSrcAndTag) {
  MatchEngine m;
  m.post(posted(3, kAnySource, kAnyTag, 1, rt::MatchMode::ArrivalOrder));
  rt::Packet* p = make(3, 17, 4242, rt::MatchMode::ArrivalOrder);
  EXPECT_TRUE(m.arrive(p).has_value());
  rt::PacketPool::free(p);
}

TEST(Match, ArrivalOrderStillIsolatedByContext) {
  MatchEngine m;
  m.post(posted(3, kAnySource, kAnyTag, 1, rt::MatchMode::ArrivalOrder));
  rt::Packet* p = make(4, 0, 0, rt::MatchMode::ArrivalOrder);
  EXPECT_FALSE(m.arrive(p).has_value());
}

TEST(Match, ModesDoNotCrossMatch) {
  MatchEngine m;
  // A Full-mode posted receive must not take arrival-order traffic, and vice
  // versa, even on the same context.
  m.post(posted(3, kAnySource, kAnyTag, 1, rt::MatchMode::Full));
  rt::Packet* p = make(3, 0, 0, rt::MatchMode::ArrivalOrder);
  EXPECT_FALSE(m.arrive(p).has_value());
  EXPECT_EQ(m.unexpected_depth(), 1u);
  // And an arrival-order receive must not take Full traffic.
  MatchEngine m2;
  m2.post(posted(3, kAnySource, kAnyTag, 1, rt::MatchMode::ArrivalOrder));
  rt::Packet* q = make(3, 0, 0, rt::MatchMode::Full);
  EXPECT_FALSE(m2.arrive(q).has_value());
}

TEST(Match, ProbeSeesUnexpected) {
  MatchEngine m;
  EXPECT_EQ(m.probe(1, 2, 3), nullptr);
  rt::Packet* p = make(1, 2, 3);
  p->hdr.total_bytes = 64;
  m.arrive(p);
  const rt::PacketHeader* h = m.probe(1, 2, 3);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->total_bytes, 64u);
  // Probe is non-destructive.
  EXPECT_NE(m.probe(1, kAnySource, kAnyTag), nullptr);
  EXPECT_EQ(m.unexpected_depth(), 1u);
  // Probe with mismatched pattern misses.
  EXPECT_EQ(m.probe(1, 5, 3), nullptr);
}

TEST(Match, CancelRemovesPosted) {
  MatchEngine m;
  m.post(posted(1, 2, 3, /*req=*/55));
  EXPECT_TRUE(m.cancel(55));
  EXPECT_EQ(m.posted_depth(), 0u);
  EXPECT_FALSE(m.cancel(55));
  rt::Packet* p = make(1, 2, 3);
  EXPECT_FALSE(m.arrive(p).has_value());  // nothing left to match
}

TEST(Match, RtsPacketsMatchLikeEager) {
  MatchEngine m;
  m.post(posted(1, 2, 3));
  rt::Packet* rts = make(1, 2, 3, rt::MatchMode::Full, rt::PacketKind::Rts);
  EXPECT_TRUE(m.arrive(rts).has_value());
  rt::PacketPool::free(rts);
}

TEST(Match, DestructorFreesRetainedPackets) {
  // Covered implicitly by ASAN-less builds; this exercises the path.
  MatchEngine m;
  m.arrive(make(1, 1, 1));
  m.arrive(make(1, 1, 2));
  EXPECT_EQ(m.unexpected_depth(), 2u);
  // m destructor frees both.
}

}  // namespace
}  // namespace lwmpi::match
