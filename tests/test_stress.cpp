// Property and stress tests: randomized (seeded, reproducible) traffic
// patterns cross-checked against serial references.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "util.hpp"

namespace lwmpi {
namespace {

using test::fast_opts;
using test::spmd;

// Deterministic PRNG (splitmix64) so failures reproduce exactly.
struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  int range(int lo, int hi) {  // inclusive
    return lo + static_cast<int>(next() % static_cast<std::uint64_t>(hi - lo + 1));
  }
};

// Allreduce over random vectors must equal the serial elementwise reduction,
// across the algorithm-selection boundary (small -> recursive doubling,
// large power-of-two -> Rabenseifner).
class AllreduceProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AllreduceProperty, MatchesSerialReference) {
  const int p = std::get<0>(GetParam());
  const int count = std::get<1>(GetParam());
  spmd(p, [&](Engine& e) {
    const int me = e.world_rank();
    std::vector<std::int64_t> mine(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      Rng rng(static_cast<std::uint64_t>(me) * 1000003 + static_cast<std::uint64_t>(i));
      mine[static_cast<std::size_t>(i)] = static_cast<std::int64_t>(rng.next() % 1000) - 500;
    }
    std::vector<std::int64_t> got(static_cast<std::size_t>(count), 0);
    ASSERT_EQ(e.allreduce(mine.data(), got.data(), count, kInt64, ReduceOp::Sum, kCommWorld),
              Err::Success);
    // Serial reference: every rank can recompute every rank's contribution.
    for (int i = 0; i < count; ++i) {
      std::int64_t expect = 0;
      for (int rk = 0; rk < p; ++rk) {
        Rng rng(static_cast<std::uint64_t>(rk) * 1000003 + static_cast<std::uint64_t>(i));
        expect += static_cast<std::int64_t>(rng.next() % 1000) - 500;
      }
      ASSERT_EQ(got[static_cast<std::size_t>(i)], expect) << "element " << i;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndRanks, AllreduceProperty,
    ::testing::Values(std::make_tuple(2, 1), std::make_tuple(2, 1024),
                      std::make_tuple(2, 4096),   // crosses Rabenseifner threshold
                      std::make_tuple(4, 7),      // count < p uses doubling
                      std::make_tuple(4, 2048),   // Rabenseifner, non-divisible
                      std::make_tuple(4, 2051),   // ragged blocks
                      std::make_tuple(3, 2048),   // non-power-of-two: doubling
                      std::make_tuple(8, 1029)));

TEST(Stress, RandomTagSizeStorm) {
  // Rank 0 <-> rank 1 exchange of many messages with random sizes and tags;
  // posting order is shuffled on the receiver to exercise the unexpected
  // queue and matching under load.
  spmd(2, [](Engine& e) {
    constexpr int kMsgs = 120;
    Rng rng(42);
    std::vector<int> sizes(kMsgs);
    for (int i = 0; i < kMsgs; ++i) sizes[static_cast<std::size_t>(i)] = rng.range(1, 3000);
    if (e.world_rank() == 0) {
      std::vector<std::vector<std::int32_t>> bufs(kMsgs);
      std::vector<Request> reqs(kMsgs, kRequestNull);
      for (int i = 0; i < kMsgs; ++i) {
        auto& b = bufs[static_cast<std::size_t>(i)];
        b.assign(static_cast<std::size_t>(sizes[static_cast<std::size_t>(i)]), i);
        ASSERT_EQ(e.isend(b.data(), static_cast<int>(b.size()), kInt32, 1,
                          static_cast<Tag>(i), kCommWorld,
                          &reqs[static_cast<std::size_t>(i)]),
                  Err::Success);
      }
      ASSERT_EQ(e.waitall(reqs, {}), Err::Success);
    } else {
      // Post receives in a shuffled order.
      std::vector<int> order(kMsgs);
      std::iota(order.begin(), order.end(), 0);
      Rng shuffler(7);
      for (int i = kMsgs - 1; i > 0; --i) {
        std::swap(order[static_cast<std::size_t>(i)],
                  order[static_cast<std::size_t>(shuffler.range(0, i))]);
      }
      std::vector<std::vector<std::int32_t>> bufs(kMsgs);
      std::vector<Request> reqs(kMsgs, kRequestNull);
      for (int k = 0; k < kMsgs; ++k) {
        const int i = order[static_cast<std::size_t>(k)];
        auto& b = bufs[static_cast<std::size_t>(i)];
        b.assign(static_cast<std::size_t>(sizes[static_cast<std::size_t>(i)]), -1);
        ASSERT_EQ(e.irecv(b.data(), static_cast<int>(b.size()), kInt32, 0,
                          static_cast<Tag>(i), kCommWorld,
                          &reqs[static_cast<std::size_t>(i)]),
                  Err::Success);
      }
      ASSERT_EQ(e.waitall(reqs, {}), Err::Success);
      for (int i = 0; i < kMsgs; ++i) {
        const auto& b = bufs[static_cast<std::size_t>(i)];
        ASSERT_EQ(b.front(), i);
        ASSERT_EQ(b.back(), i);
      }
    }
    EXPECT_EQ(e.live_requests(), 0u);
    EXPECT_EQ(e.unexpected_depth(), 0u);
  });
}

TEST(Stress, AllToAllStormOnBothDevices) {
  for (DeviceKind dev : {DeviceKind::Ch4, DeviceKind::Orig}) {
    spmd(
        4,
        [](Engine& e) {
          const int me = e.world_rank();
          constexpr int kRounds = 15;
          for (int round = 0; round < kRounds; ++round) {
            std::vector<int> send(4), recv(4, -1);
            for (int i = 0; i < 4; ++i) send[static_cast<std::size_t>(i)] =
                me * 1000 + round * 10 + i;
            ASSERT_EQ(e.alltoall(send.data(), 1, kInt, recv.data(), 1, kInt, kCommWorld),
                      Err::Success);
            for (int i = 0; i < 4; ++i) {
              ASSERT_EQ(recv[static_cast<std::size_t>(i)], i * 1000 + round * 10 + me);
            }
          }
        },
        fast_opts(dev));
  }
}

TEST(Stress, MixedTrafficKinds) {
  // Pt2pt, collectives, and RMA interleaved in the same epoch of execution.
  spmd(4, [](Engine& e) {
    const int me = e.world_rank();
    std::vector<int> wmem(4, 0);
    Win win = kWinNull;
    ASSERT_EQ(e.win_create(wmem.data(), wmem.size() * sizeof(int), sizeof(int), kCommWorld,
                           &win),
              Err::Success);
    ASSERT_EQ(e.win_fence(win), Err::Success);
    for (int round = 0; round < 8; ++round) {
      // pt2pt ring
      int token = me * 10 + round;
      int got = -1;
      const Rank to = static_cast<Rank>((me + 1) % 4);
      const Rank from = static_cast<Rank>((me + 3) % 4);
      ASSERT_EQ(e.sendrecv(&token, 1, kInt, to, 3, &got, 1, kInt, from, 3, kCommWorld,
                           nullptr),
                Err::Success);
      ASSERT_EQ(got, ((me + 3) % 4) * 10 + round);
      // RMA accumulate into every peer's round slot
      const int one = 1;
      for (int t = 0; t < 4; ++t) {
        ASSERT_EQ(e.accumulate(&one, 1, kInt, static_cast<Rank>(t), 0, ReduceOp::Sum, win),
                  Err::Success);
      }
      ASSERT_EQ(e.win_fence(win), Err::Success);
      // collective checksum
      int sum = 0;
      ASSERT_EQ(e.allreduce(&me, &sum, 1, kInt, ReduceOp::Sum, kCommWorld), Err::Success);
      ASSERT_EQ(sum, 6);
    }
    EXPECT_EQ(wmem[0], 4 * 8);  // 4 contributions per round, 8 rounds
    ASSERT_EQ(e.win_free(&win), Err::Success);
  });
}

TEST(Stress, CommChurn) {
  // Repeated split/dup/free cycles must not leak slots or contexts.
  spmd(4, [](Engine& e) {
    const int me = e.world_rank();
    for (int round = 0; round < 10; ++round) {
      Comm half = kCommNull, quarter = kCommNull, dup = kCommNull;
      ASSERT_EQ(e.comm_split(kCommWorld, me % 2, me, &half), Err::Success);
      ASSERT_EQ(e.comm_dup(half, &dup), Err::Success);
      ASSERT_EQ(e.comm_split(dup, e.rank(dup), 0, &quarter), Err::Success);
      int one = 1, sum = 0;
      ASSERT_EQ(e.allreduce(&one, &sum, 1, kInt, ReduceOp::Sum, half), Err::Success);
      ASSERT_EQ(sum, 2);
      ASSERT_EQ(e.comm_free(&quarter), Err::Success);
      ASSERT_EQ(e.comm_free(&dup), Err::Success);
      ASSERT_EQ(e.comm_free(&half), Err::Success);
    }
  });
}

TEST(Stress, LargeMessageBombardment) {
  // Several concurrent rendezvous transfers in both directions.
  spmd(2, [](Engine& e) {
    constexpr int kN = 6;
    constexpr int kElems = 100 * 1024;  // 400 KiB each: multi-segment rdv
    const int me = e.world_rank();
    std::vector<std::vector<int>> out(kN), in(kN);
    std::vector<Request> reqs;
    for (int i = 0; i < kN; ++i) {
      out[static_cast<std::size_t>(i)].assign(kElems, me * 100 + i);
      in[static_cast<std::size_t>(i)].assign(kElems, -1);
      Request r = kRequestNull;
      ASSERT_EQ(e.irecv(in[static_cast<std::size_t>(i)].data(), kElems, kInt, 1 - me,
                        static_cast<Tag>(i), kCommWorld, &r),
                Err::Success);
      reqs.push_back(r);
    }
    for (int i = 0; i < kN; ++i) {
      Request r = kRequestNull;
      ASSERT_EQ(e.isend(out[static_cast<std::size_t>(i)].data(), kElems, kInt, 1 - me,
                        static_cast<Tag>(i), kCommWorld, &r),
                Err::Success);
      reqs.push_back(r);
    }
    ASSERT_EQ(e.waitall(reqs, {}), Err::Success);
    for (int i = 0; i < kN; ++i) {
      const auto& b = in[static_cast<std::size_t>(i)];
      ASSERT_EQ(b.front(), (1 - me) * 100 + i);
      ASSERT_EQ(b.back(), (1 - me) * 100 + i);
    }
  });
}

}  // namespace
}  // namespace lwmpi
