// Flight recorder + trace-driven replay (obs/recorder.hpp, apps/replay.hpp):
// record -> flush -> load -> re-execute round trips, fidelity diffing against
// the recorded pvar totals, graceful degradation on truncated traces, and the
// shared tolerant JSONL reader (obs/jsonl.hpp).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/replay.hpp"
#include "apps/stencil.hpp"
#include "core/engine.hpp"
#include "obs/jsonl.hpp"
#include "obs/pvar.hpp"
#include "obs/recorder.hpp"
#include "runtime/world.hpp"

namespace lwmpi {
namespace {

std::string trace_prefix(const char* name) {
  return ::testing::TempDir() + "lwmpi_replay_" + name;
}

// Record a 4-rank stencil halo exchange as a complete bundle (sample every
// op, ring deep enough that nothing wraps) and flush it to `prefix`.
void record_stencil(const std::string& prefix, const std::string& netmod) {
  WorldOptions o;
  o.netmod = netmod;
  o.record = true;
  o.record_path = prefix;
  o.record_sample_shift = 0;
  o.record_ring_depth = 1u << 14;
  o.build.counters = true;
  World w(4, o);
  w.run([](Engine& e) {
    apps::StencilConfig cfg;
    cfg.nx = 16;
    cfg.ny = 16;
    cfg.px = 2;
    cfg.py = 2;
    cfg.iters = 4;
    apps::run_stencil(e, kCommWorld, cfg);
  });
  // End of scope flushes the bundle.
}

TEST(Replay, RoundTripFidelityMailbox) {
  const std::string prefix = trace_prefix("mailbox");
  record_stencil(prefix, "mailbox");

  apps::TraceBundle bundle;
  std::string err;
  ASSERT_TRUE(apps::load_trace(prefix, &bundle, &err)) << err;
  EXPECT_EQ(bundle.nranks, 4);
  EXPECT_EQ(bundle.netmod, "mailbox");
  EXPECT_TRUE(bundle.complete());

  const apps::ReplayResult res = apps::run_replay(bundle);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.timeouts, 0u);
  ASSERT_TRUE(res.fidelity_checked);
  EXPECT_TRUE(res.fidelity_ok) << (res.diffs.empty() ? "" : res.diffs.front());
  // Same netmod -> fabric injection totals must also reproduce exactly.
  ASSERT_TRUE(res.fabric_checked);
  EXPECT_TRUE(res.fabric_ok) << (res.diffs.empty() ? "" : res.diffs.front());
}

TEST(Replay, RoundTripFidelityRdma) {
  const std::string prefix = trace_prefix("rdma");
  record_stencil(prefix, "rdma");

  apps::TraceBundle bundle;
  std::string err;
  ASSERT_TRUE(apps::load_trace(prefix, &bundle, &err)) << err;
  EXPECT_EQ(bundle.netmod, "rdma");
  ASSERT_TRUE(bundle.complete());

  const apps::ReplayResult res = apps::run_replay(bundle);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.timeouts, 0u);
  ASSERT_TRUE(res.fidelity_checked);
  EXPECT_TRUE(res.fidelity_ok) << (res.diffs.empty() ? "" : res.diffs.front());
  ASSERT_TRUE(res.fabric_checked);
  EXPECT_TRUE(res.fabric_ok) << (res.diffs.empty() ? "" : res.diffs.front());
}

TEST(Replay, CrossNetmodEngineFidelity) {
  const std::string prefix = trace_prefix("cross");
  record_stencil(prefix, "mailbox");

  apps::TraceBundle bundle;
  std::string err;
  ASSERT_TRUE(apps::load_trace(prefix, &bundle, &err)) << err;

  apps::ReplayOptions opts;
  opts.netmod = "rdma";
  const apps::ReplayResult res = apps::run_replay(bundle, opts);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.netmod, "rdma");
  // Engine-level totals are transport-independent and must still match;
  // fabric packetization differs across backends, so it is not compared.
  ASSERT_TRUE(res.fidelity_checked);
  EXPECT_TRUE(res.fidelity_ok) << (res.diffs.empty() ? "" : res.diffs.front());
  EXPECT_FALSE(res.fabric_checked);
}

// Replaying the same complete bundle twice is deterministic in everything the
// fidelity model asserts: op counts, skip counts, and the replayed totals.
// This is the case the TSan bucket runs: 4 replay rank threads re-issuing
// recorded traffic while the main thread reads back pvar sessions.
TEST(Replay, DeterministicAcrossRuns) {
  const std::string prefix = trace_prefix("determinism");
  record_stencil(prefix, "mailbox");

  apps::TraceBundle bundle;
  std::string err;
  ASSERT_TRUE(apps::load_trace(prefix, &bundle, &err)) << err;

  const apps::ReplayResult a = apps::run_replay(bundle);
  const apps::ReplayResult b = apps::run_replay(bundle);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.replayed, b.replayed);
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_TRUE(a.fidelity_ok);
  EXPECT_TRUE(b.fidelity_ok);
  ASSERT_EQ(a.measured.size(), b.measured.size());
  for (std::size_t r = 0; r < a.measured.size(); ++r) {
    EXPECT_EQ(a.measured[r].sends_eager, b.measured[r].sends_eager) << "rank " << r;
    EXPECT_EQ(a.measured[r].sends_rdv, b.measured[r].sends_rdv) << "rank " << r;
    EXPECT_EQ(a.measured[r].recvs_posted, b.measured[r].recvs_posted) << "rank " << r;
  }
}

// A trace file cut off mid-record (killed writer, partial copy) must load as
// an incomplete bundle and replay to completion -- skips and bounded waits,
// never a hang -- with the fidelity check declined rather than failed.
TEST(Replay, TruncatedTraceDegradesGracefully) {
  const std::string prefix = trace_prefix("truncated");
  record_stencil(prefix, "mailbox");

  // Cut rank 2's file to the header plus 10.5 records.
  const std::string victim = prefix + ".rank2.lwtrace";
  std::vector<char> bytes;
  {
    std::ifstream in(victim, std::ios::binary);
    ASSERT_TRUE(in);
    bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  const std::size_t cut = sizeof(obs::LwtraceHeader) + 10 * sizeof(obs::DiskRec) + 7;
  ASSERT_GT(bytes.size(), cut);
  {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
  }

  apps::TraceBundle bundle;
  std::string err;
  ASSERT_TRUE(apps::load_trace(prefix, &bundle, &err)) << err;
  EXPECT_TRUE(bundle.ranks[2].truncated);
  EXPECT_EQ(bundle.ranks[2].records.size(), 10u);
  EXPECT_FALSE(bundle.complete());

  apps::ReplayOptions opts;
  opts.stall_timeout_ns = 500'000'000;  // keep the degraded case fast
  const apps::ReplayResult res = apps::run_replay(bundle, opts);
  EXPECT_TRUE(res.ok);                     // it ran to completion
  EXPECT_FALSE(res.fidelity_checked);      // and declined the exact diff
  EXPECT_GT(res.skipped, 0u);              // collectives skip on incomplete
}

TEST(Replay, CapturesRequestedPvars) {
  const std::string prefix = trace_prefix("pvars");
  record_stencil(prefix, "mailbox");

  apps::TraceBundle bundle;
  std::string err;
  ASSERT_TRUE(apps::load_trace(prefix, &bundle, &err)) << err;

  apps::ReplayOptions opts;
  opts.capture_pvars = {"lat_recv_eager_p99_ns", "wait_late_sender_count"};
  const apps::ReplayResult res = apps::run_replay(bundle, opts);
  ASSERT_TRUE(res.ok);
  ASSERT_EQ(res.pvars.size(), 2u);
  EXPECT_EQ(res.pvars[0].first, "lat_recv_eager_p99_ns");
  EXPECT_EQ(res.pvars[1].first, "wait_late_sender_count");
}

// The recorder pvars surface through the registry like every other tier's.
TEST(Replay, RecorderPvarsReadBack) {
  WorldOptions o;
  o.record = true;  // no record_path: record-only mode, nothing flushed
  o.build.counters = true;
  World w(2, o);
  w.run([](Engine& e) {
    char b = 1;
    if (e.world_rank() == 0) {
      e.send(&b, 1, kChar, 1, 7, kCommWorld);
    } else {
      e.recv(&b, 1, kChar, 0, 7, kCommWorld, nullptr);
    }
  });
  obs::PvarSession s;
  ASSERT_EQ(obs::LWMPI_T_pvar_session_create(w.engine(0), &s), Err::Success);
  std::uint64_t ops = 0;
  ASSERT_EQ(obs::LWMPI_T_pvar_read(s, obs::LWMPI_T_pvar_index("rec_ops_captured"), &ops),
            Err::Success);
  EXPECT_GE(ops, 1u);  // at least the send was recorded
  std::uint64_t dropped = ~0ull;
  ASSERT_EQ(
      obs::LWMPI_T_pvar_read(s, obs::LWMPI_T_pvar_index("rec_ops_dropped"), &dropped),
      Err::Success);
  EXPECT_EQ(dropped, 0u);  // nothing wrapped in this tiny run
  obs::LWMPI_T_pvar_session_free(&s);
}

// --- obs/jsonl.hpp: the shared tolerant JSONL reader -------------------------

TEST(Jsonl, SplitsCompleteLinesAndFlagsTruncatedTail) {
  obs::JsonlFile f = obs::split_jsonl("{\"a\":1}\n{\"b\":2}\n{\"partial\":");
  ASSERT_EQ(f.lines.size(), 2u);
  EXPECT_EQ(f.lines[0], "{\"a\":1}");
  EXPECT_EQ(f.lines[1], "{\"b\":2}");
  EXPECT_TRUE(f.truncated_tail);

  f = obs::split_jsonl("{\"a\":1}\n{\"b\":2}\n");
  EXPECT_EQ(f.lines.size(), 2u);
  EXPECT_FALSE(f.truncated_tail);
}

TEST(Jsonl, SkipsBlankLinesAndHandlesNoNewline) {
  obs::JsonlFile f = obs::split_jsonl("\n\n{\"a\":1}\n\n{\"b\":2}\n");
  ASSERT_EQ(f.lines.size(), 2u);

  // A file with no newline at all is one truncated tail, zero usable lines.
  f = obs::split_jsonl("{\"never_finished\":");
  EXPECT_TRUE(f.lines.empty());
  EXPECT_TRUE(f.truncated_tail);

  EXPECT_TRUE(obs::split_jsonl("").lines.empty());
}

TEST(Jsonl, ReadJsonlFailsOnlyOnMissingFile) {
  obs::JsonlFile f;
  EXPECT_FALSE(obs::read_jsonl("/nonexistent/lwmpi.jsonl", &f));

  const std::string path = ::testing::TempDir() + "lwmpi_jsonl_test.jsonl";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"x\":1}\n{\"cut\":";
  }
  ASSERT_TRUE(obs::read_jsonl(path, &f));
  ASSERT_EQ(f.lines.size(), 1u);
  EXPECT_TRUE(f.truncated_tail);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lwmpi
