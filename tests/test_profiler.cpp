// Aggregate profiler (obs/profiler.hpp): phase bucketing, per-callsite
// statistics on both netmods, the comm-matrix == fabric-byte-counter
// invariant, load-imbalance math on a deliberately skewed workload, phase
// misuse (pop-on-empty, depth and table overflow) staying warnings rather
// than crashes, the histogram snapshot()/delta() boundary behavior the
// sampler and profiler both lean on, and the artifact/report renderers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "net/netmod.hpp"
#include "obs/histogram.hpp"
#include "obs/profiler.hpp"
#include "obs/pvar.hpp"
#include "util.hpp"

namespace lwmpi {
namespace {

WorldOptions prof_opts(const std::string& netmod = "mailbox") {
  WorldOptions o = test::fast_opts();
  o.netmod = netmod;
  o.prof = true;
  return o;
}

std::uint64_t read_pvar(Engine& e, const char* name) {
  obs::PvarSession s;
  EXPECT_EQ(obs::LWMPI_T_pvar_session_create(e, &s), Err::Success);
  const int idx = obs::LWMPI_T_pvar_index(name);
  EXPECT_GE(idx, 0) << "unknown pvar " << name;
  std::uint64_t v = 0;
  EXPECT_EQ(obs::LWMPI_T_pvar_read(s, idx, &v), Err::Success);
  obs::LWMPI_T_pvar_session_free(&s);
  return v;
}

// --- phase regions ----------------------------------------------------------

TEST(Profiler, PhaseBucketing) {
  World w(2, prof_opts());
  obs::Profiler* p = w.profiler();
  ASSERT_NE(p, nullptr);

  // Phase 0 ("main"): 5 messages. Phase "halo": 9 messages. The counts must
  // land in separate buckets keyed by the innermost open phase.
  auto traffic = [](int n) {
    return [n](Engine& e) {
      std::uint64_t buf = 0;
      if (e.world_rank() == 0) {
        for (int i = 0; i < n; ++i) e.send(&buf, 1, kUint64, 1, 3, kCommWorld);
      } else {
        for (int i = 0; i < n; ++i) e.recv(&buf, 1, kUint64, 0, 3, kCommWorld, nullptr);
      }
    };
  };
  w.run(traffic(5));
  w.phase_push("halo");
  w.run(traffic(9));
  w.phase_pop();

  const int halo = p->intern_phase("halo");
  EXPECT_EQ(p->phase_name(0), "main");
  EXPECT_EQ(p->phase_name(halo), "halo");
  EXPECT_EQ(p->rank(0).site_count(0, obs::Callsite::Send), 5u);
  EXPECT_EQ(p->rank(0).site_count(halo, obs::Callsite::Send), 9u);
  EXPECT_EQ(p->rank(1).site_count(0, obs::Callsite::Recv), 5u);
  EXPECT_EQ(p->rank(1).site_count(halo, obs::Callsite::Recv), 9u);
  // 8-byte payloads: bytes bucket tracks the user payload per phase.
  EXPECT_EQ(p->rank(0).site_bytes(halo, obs::Callsite::Send), 9u * 8u);
  // Time accumulated in both phases.
  EXPECT_GT(p->rank(0).phase_time_ns(0), 0u);
  EXPECT_GT(p->rank(0).phase_time_ns(halo), 0u);
}

TEST(Profiler, EngineScopedPhase) {
  // Engine::phase_push scopes one rank only; the peer stays on phase 0.
  World w(2, prof_opts());
  obs::Profiler* p = w.profiler();
  ASSERT_NE(p, nullptr);
  w.run([](Engine& e) {
    std::uint64_t buf = 0;
    if (e.world_rank() == 0) {
      e.phase_push("senders");
      for (int i = 0; i < 4; ++i) e.send(&buf, 1, kUint64, 1, 3, kCommWorld);
      e.phase_pop();
    } else {
      for (int i = 0; i < 4; ++i) e.recv(&buf, 1, kUint64, 0, 3, kCommWorld, nullptr);
    }
  });
  const int ph = p->intern_phase("senders");
  EXPECT_EQ(p->rank(0).site_count(ph, obs::Callsite::Send), 4u);
  EXPECT_EQ(p->rank(0).site_count(0, obs::Callsite::Send), 0u);
  EXPECT_EQ(p->rank(1).site_count(0, obs::Callsite::Recv), 4u);
  EXPECT_EQ(p->rank(1).site_count(ph, obs::Callsite::Recv), 0u);
}

TEST(Profiler, PopOnEmptyWarnsNotCrashes) {
  World w(2, prof_opts());
  obs::Profiler* p = w.profiler();
  ASSERT_NE(p, nullptr);
  // Pop with nothing pushed: stays on phase 0, counts a warning per pop.
  w.phase_pop();
  w.phase_pop();
  EXPECT_EQ(p->rank(0).cur_phase(), 0);
  EXPECT_EQ(p->rank(0).pop_warnings(), 2u);
  EXPECT_EQ(p->rank(1).pop_warnings(), 2u);
  // Still fully functional afterwards.
  w.phase_push("after");
  EXPECT_EQ(p->rank(0).cur_phase(), p->intern_phase("after"));
  w.phase_pop();
  EXPECT_EQ(p->rank(0).cur_phase(), 0);
  EXPECT_EQ(p->rank(0).pop_warnings(), 2u);
  // The warning is surfaced as a pvar.
  EXPECT_EQ(read_pvar(w.engine(0), "prof_pop_warnings"), 2u);
}

TEST(Profiler, PhaseDepthAndTableOverflow) {
  World w(1, prof_opts());
  obs::Profiler* p = w.profiler();
  ASSERT_NE(p, nullptr);
  obs::RankProf& r0 = p->rank(0);
  // Exceeding the depth cap is counted, not crashed on; pops unwind cleanly.
  for (int i = 0; i < obs::kMaxPhaseDepth + 3; ++i) r0.phase_push("deep");
  EXPECT_EQ(r0.phase_depth(), obs::kMaxPhaseDepth);
  EXPECT_EQ(r0.pop_warnings(), 3u);
  for (int i = 0; i < obs::kMaxPhaseDepth; ++i) r0.phase_pop();
  EXPECT_EQ(r0.phase_depth(), 0);
  // Interning more than kMaxPhases names falls back to phase 0 and counts.
  for (int i = 0; i < obs::kMaxPhases + 4; ++i) {
    p->intern_phase("ph" + std::to_string(i));
  }
  EXPECT_EQ(p->num_phases(), obs::kMaxPhases);
  EXPECT_GT(p->phase_overflows(), 0u);
  EXPECT_EQ(p->intern_phase("one-more"), 0);
}

// --- per-callsite statistics ------------------------------------------------

void exercise_callsites(const std::string& netmod) {
  World w(2, prof_opts(netmod));
  obs::Profiler* p = w.profiler();
  ASSERT_NE(p, nullptr);
  constexpr int kMsgs = 6;
  constexpr int kCount = 32;  // 256B payloads
  w.run([](Engine& e) {
    std::uint64_t buf[kCount] = {};
    if (e.world_rank() == 0) {
      for (int i = 0; i < kMsgs; ++i) e.send(buf, kCount, kUint64, 1, 3, kCommWorld);
    } else {
      for (int i = 0; i < kMsgs; ++i) {
        Request rq;
        e.irecv(buf, kCount, kUint64, 0, 3, kCommWorld, &rq);
        e.wait(&rq, nullptr);
      }
    }
    std::uint64_t in = 1;
    std::uint64_t out = 0;
    e.allreduce(&in, &out, 1, kUint64, ReduceOp::Sum, kCommWorld);
  });

  // Blocking send is isend+wait internally; outermost-wins means the user's
  // callsites are what's counted, exactly once each.
  EXPECT_EQ(p->rank(0).site_count(0, obs::Callsite::Send), static_cast<unsigned>(kMsgs))
      << netmod;
  EXPECT_EQ(p->rank(0).site_bytes(0, obs::Callsite::Send),
            static_cast<std::uint64_t>(kMsgs) * kCount * 8)
      << netmod;
  EXPECT_EQ(p->rank(0).site_count(0, obs::Callsite::Isend), 0u) << netmod;
  EXPECT_EQ(p->rank(1).site_count(0, obs::Callsite::Irecv), static_cast<unsigned>(kMsgs))
      << netmod;
  EXPECT_EQ(p->rank(1).site_count(0, obs::Callsite::Wait), static_cast<unsigned>(kMsgs))
      << netmod;
  EXPECT_EQ(p->rank(0).site_count(0, obs::Callsite::Allreduce), 1u) << netmod;
  EXPECT_EQ(p->rank(1).site_count(0, obs::Callsite::Allreduce), 1u) << netmod;
}

TEST(Profiler, CallsiteStatsMailbox) { exercise_callsites("mailbox"); }
TEST(Profiler, CallsiteStatsRdma) { exercise_callsites("rdma"); }

// --- communication matrix ---------------------------------------------------

void exercise_matrix(const std::string& netmod, bool expect_zcopy) {
  WorldOptions o = prof_opts(netmod);
  o.ranks_per_node = 1;  // keep everything on the inter-node (netmod) path
  World w(2, o);
  obs::Profiler* p = w.profiler();
  ASSERT_NE(p, nullptr);
  // Mix of eager (small) and rendezvous (64KiB > 16KiB threshold) traffic.
  constexpr int kBig = 8192;  // 64KiB of uint64
  w.run([](Engine& e) {
    std::vector<std::uint64_t> big(kBig, 7);
    std::uint64_t small = 0;
    if (e.world_rank() == 0) {
      for (int i = 0; i < 10; ++i) e.send(&small, 1, kUint64, 1, 3, kCommWorld);
      for (int i = 0; i < 3; ++i) e.send(big.data(), kBig, kUint64, 1, 4, kCommWorld);
    } else {
      for (int i = 0; i < 10; ++i) e.recv(&small, 1, kUint64, 0, 3, kCommWorld, nullptr);
      for (int i = 0; i < 3; ++i) {
        e.recv(big.data(), kBig, kUint64, 0, 4, kCommWorld, nullptr);
      }
    }
  });

  const obs::CommMatrix& m = p->matrix();
  // Eager and rendezvous both present, in the right direction.
  EXPECT_GT(m.count(0, 1, obs::MsgClass::Eager), 0u) << netmod;
  EXPECT_GT(m.bytes(0, 1, obs::MsgClass::Eager), 0u) << netmod;
  EXPECT_GT(m.count(0, 1, obs::MsgClass::Rdv) + m.count(0, 1, obs::MsgClass::Zcopy), 0u)
      << netmod;
  EXPECT_EQ(m.count(1, 0, obs::MsgClass::Eager), 0u) << netmod;

  // THE invariant: the matrix is stamped at the same facade boundary where
  // the backends count injected payload bytes, so the totals match exactly.
  net::Fabric& f = w.fabric();
  std::uint64_t fabric_bytes = 0;
  std::uint64_t zcopy_bytes = 0;
  for (int r = 0; r < w.nranks(); ++r) {
    for (int v = 0; v < f.lanes_per_rank(); ++v) {
      fabric_bytes += f.injected_bytes(r, v);
    }
    zcopy_bytes += f.net_stat(net::NetStat::ZeroCopyBytes, r);
  }
  EXPECT_EQ(m.total_packet_bytes(), fabric_bytes) << netmod;
  EXPECT_EQ(m.total_zcopy_bytes(), zcopy_bytes) << netmod;
  if (expect_zcopy) {
    EXPECT_GT(m.total_zcopy_bytes(), 0u) << netmod;
  } else {
    EXPECT_EQ(m.total_zcopy_bytes(), 0u) << netmod;
  }

  // The matrix-derived pvars agree with the matrix itself.
  EXPECT_EQ(read_pvar(w.engine(0), "prof_tx_bytes"), m.tx_bytes(0));
  EXPECT_EQ(read_pvar(w.engine(1), "prof_rx_bytes"), m.rx_bytes(1));
  EXPECT_EQ(read_pvar(w.engine(0), "prof_tx_msgs"), m.tx_msgs(0));
  EXPECT_EQ(read_pvar(w.engine(0), "prof_zcopy_tx_bytes"),
            m.tx_bytes(0, /*include_zcopy=*/true) - m.tx_bytes(0));
}

TEST(Profiler, MatrixMatchesFabricMailbox) { exercise_matrix("mailbox", false); }
TEST(Profiler, MatrixMatchesFabricRdma) { exercise_matrix("rdma", true); }

// --- load-imbalance math ----------------------------------------------------

TEST(Profiler, ImbalanceMathOnSkewedWorkload) {
  // Drive the accumulators directly with known times: rank 0 spends 3000ns,
  // rank 1 spends 1000ns in phase "solve" -> max 3000, mean 2000, 1.5x.
  obs::Profiler p(2, 1, "main");
  const int ph = p.intern_phase("solve");
  p.rank(0).cell(ph, obs::Callsite::Allreduce, 0).add(64, 3000);
  p.rank(1).cell(ph, obs::Callsite::Allreduce, 0).add(64, 1000);

  EXPECT_EQ(p.rank(0).phase_time_ns(ph), 3000u);
  EXPECT_EQ(p.rank(1).phase_time_ns(ph), 1000u);

  const std::string json = p.report("mailbox", /*as_json=*/true);
  EXPECT_NE(json.find("\"phase\":\"solve\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"max_ns\":3000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mean_ns\":2000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"imbalance\":1.500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max_rank\":0"), std::string::npos) << json;

  const std::string text = p.report("mailbox", /*as_json=*/false);
  EXPECT_NE(text.find("imbalance=1.50x"), std::string::npos) << text;
}

TEST(Profiler, ReportOnSkewedTraffic) {
  // End-to-end: rank 0 sends 40 messages, rank 1 sends 2; the merged report
  // names a hot pair and the phase line reports imbalance >= 1.
  World w(2, prof_opts());
  w.run([](Engine& e) {
    std::uint64_t buf[16] = {};
    if (e.world_rank() == 0) {
      for (int i = 0; i < 40; ++i) e.send(buf, 16, kUint64, 1, 3, kCommWorld);
      for (int i = 0; i < 2; ++i) e.recv(buf, 16, kUint64, 1, 4, kCommWorld, nullptr);
    } else {
      for (int i = 0; i < 40; ++i) e.recv(buf, 16, kUint64, 0, 3, kCommWorld, nullptr);
      for (int i = 0; i < 2; ++i) e.send(buf, 16, kUint64, 0, 4, kCommWorld);
    }
  });
  const std::string text = w.profile_report(false);
  EXPECT_NE(text.find("phase \"main\""), std::string::npos) << text;
  EXPECT_NE(text.find("comm matrix hot spots"), std::string::npos) << text;
  EXPECT_NE(text.find("0 -> 1"), std::string::npos) << text;
  // Profiling off -> empty report, null profiler.
  World off(1, test::fast_opts());
  EXPECT_EQ(off.profiler(), nullptr);
  EXPECT_TRUE(off.profile_report(false).empty());
}

// --- artifact ---------------------------------------------------------------

TEST(Profiler, ArtifactWrittenAtTeardown) {
  const std::string path = ::testing::TempDir() + "lwmpi_test_profile.json";
  std::remove(path.c_str());
  {
    WorldOptions o = prof_opts();
    o.prof_path = path;
    World w(2, o);
    w.phase_push("io");
    w.run([](Engine& e) {
      std::uint64_t b = 0;
      if (e.world_rank() == 0) {
        e.send(&b, 1, kUint64, 1, 3, kCommWorld);
      } else {
        e.recv(&b, 1, kUint64, 0, 3, kCommWorld, nullptr);
      }
    });
    w.phase_pop();
  }
  std::ifstream f(path);
  ASSERT_TRUE(f.is_open()) << path;
  std::ostringstream body;
  body << f.rdbuf();
  const std::string s = body.str();
  EXPECT_NE(s.find("\"lwmpi_profile\":1"), std::string::npos);
  EXPECT_NE(s.find("\"phases\":[\"main\",\"io\"]"), std::string::npos) << s;
  EXPECT_NE(s.find("\"site\":\"send\""), std::string::npos);
  EXPECT_NE(s.find("\"matrix\":[{"), std::string::npos);
  std::remove(path.c_str());
}

// --- histogram snapshot()/delta() boundaries (satellite) --------------------

TEST(ProfilerHist, SnapshotDeltaCountsOnlyNewSamples) {
  obs::LatencyHist h;
  for (int i = 0; i < 10; ++i) h.record(100);
  const obs::LatSnapshot older = h.snapshot();
  for (int i = 0; i < 7; ++i) h.record(100000);
  const obs::LatSnapshot newer = h.snapshot();
  const obs::LatSnapshot d = newer.delta(older);
  EXPECT_EQ(d.count, 7u);
  EXPECT_EQ(older.count, 10u);
  EXPECT_EQ(newer.count, 17u);
  // The delta's samples all sit in the 100us bucket, so its percentile upper
  // bound reflects only the new samples.
  EXPECT_GE(d.percentile(0.99), 100000u - 1);
}

TEST(ProfilerHist, DeltaSaturatesAcrossOverwriteBoundary) {
  // A ring overwrite (or histogram reset) can hand the reader an `older`
  // snapshot with larger per-bucket counts than the current one. The delta
  // must saturate at zero per bucket -- never wrap to ~2^64.
  obs::LatencyHist h;
  for (int i = 0; i < 20; ++i) h.record(500);
  const obs::LatSnapshot stale = h.snapshot();
  obs::LatencyHist fresh;  // models the post-overwrite state
  for (int i = 0; i < 3; ++i) fresh.record(500);
  const obs::LatSnapshot now = fresh.snapshot();
  const obs::LatSnapshot d = now.delta(stale);
  EXPECT_EQ(d.count, 0u);
  for (std::uint64_t b : d.bucket) EXPECT_EQ(b, 0u);
  EXPECT_EQ(d.percentile(0.5), 0u);  // empty distribution -> 0, not garbage
}

}  // namespace
}  // namespace lwmpi
