// Datatype engine tests: construction, commit semantics, flattening,
// pack/unpack round trips (including parameterized property sweeps), and the
// wire serialization used by RMA active messages.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <numeric>
#include <vector>

#include "datatype/datatype.hpp"

namespace lwmpi::dt {
namespace {

TEST(BuiltinTypes, HandleEncodesSize) {
  EXPECT_EQ(builtin_size(kChar), 1u);
  EXPECT_EQ(builtin_size(kShort), 2u);
  EXPECT_EQ(builtin_size(kInt), 4u);
  EXPECT_EQ(builtin_size(kDouble), 8u);
  EXPECT_EQ(builtin_size(kFloat), 4u);
  EXPECT_EQ(builtin_size(kInt64), 8u);
  EXPECT_TRUE(is_builtin(kInt));
  EXPECT_FALSE(is_builtin(kDatatypeNull));
}

TEST(BuiltinTypes, EngineAgreesWithHandle) {
  TypeEngine eng;
  for (Datatype d : {kChar, kShort, kInt, kUnsigned, kLong, kFloat, kDouble, kUint64}) {
    std::size_t size = 0;
    ASSERT_EQ(eng.get_size(d, &size), Err::Success);
    EXPECT_EQ(size, builtin_size(d));
    EXPECT_TRUE(eng.is_contiguous(d));
    EXPECT_TRUE(eng.committed_or_builtin(d));
  }
}

TEST(BuiltinTypes, InvalidHandlesRejected) {
  TypeEngine eng;
  EXPECT_FALSE(eng.valid(kDatatypeNull));
  EXPECT_FALSE(eng.valid(0xdeadbeef));
  std::size_t size = 0;
  EXPECT_EQ(eng.get_size(kDatatypeNull, &size), Err::Datatype);
}

TEST(Contiguous, BasicProperties) {
  TypeEngine eng;
  Datatype t = kDatatypeNull;
  ASSERT_EQ(eng.contiguous(5, kInt, &t), Err::Success);
  std::size_t size = 0;
  ASSERT_EQ(eng.get_size(t, &size), Err::Success);
  EXPECT_EQ(size, 20u);
  EXPECT_TRUE(eng.is_contiguous(t));
  std::int64_t lb = 0, extent = 0;
  ASSERT_EQ(eng.get_extent(t, &lb, &extent), Err::Success);
  EXPECT_EQ(lb, 0);
  EXPECT_EQ(extent, 20);
  ASSERT_EQ(eng.commit(&t), Err::Success);
  EXPECT_TRUE(eng.committed_or_builtin(t));
  EXPECT_EQ(eng.free_type(&t), Err::Success);
  EXPECT_EQ(t, kDatatypeNull);
}

TEST(Contiguous, UncommittedIsNotUsable) {
  TypeEngine eng;
  Datatype t = kDatatypeNull;
  ASSERT_EQ(eng.contiguous(3, kDouble, &t), Err::Success);
  EXPECT_TRUE(eng.valid(t));
  EXPECT_FALSE(eng.committed_or_builtin(t));
}

TEST(Vector, StridedLayout) {
  TypeEngine eng;
  Datatype t = kDatatypeNull;
  // 3 blocks of 2 ints, stride 4 ints.
  ASSERT_EQ(eng.vector(3, 2, 4, kInt, &t), Err::Success);
  const TypeInfo* info = eng.info(t);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->size, 24u);          // 6 ints
  EXPECT_EQ(info->extent, 40);         // (2*4 + 2) ints
  EXPECT_FALSE(info->contiguous);
  ASSERT_EQ(info->segments.size(), 3u);
  EXPECT_EQ(info->segments[0], (Segment{0, 8}));
  EXPECT_EQ(info->segments[1], (Segment{16, 8}));
  EXPECT_EQ(info->segments[2], (Segment{32, 8}));
}

TEST(Vector, UnitStrideCollapsesToContiguous) {
  TypeEngine eng;
  Datatype t = kDatatypeNull;
  ASSERT_EQ(eng.vector(4, 1, 1, kDouble, &t), Err::Success);
  const TypeInfo* info = eng.info(t);
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->contiguous);
  EXPECT_EQ(info->segments.size(), 1u);
  EXPECT_EQ(info->size, 32u);
}

TEST(Vector, NegativeCountRejected) {
  TypeEngine eng;
  Datatype t = kDatatypeNull;
  EXPECT_EQ(eng.vector(-1, 1, 1, kInt, &t), Err::Count);
  EXPECT_EQ(eng.vector(1, -1, 1, kInt, &t), Err::Count);
}

TEST(Indexed, IrregularLayout) {
  TypeEngine eng;
  Datatype t = kDatatypeNull;
  const std::array<int, 3> blocklens = {1, 3, 2};
  const std::array<int, 3> displs = {0, 2, 8};
  ASSERT_EQ(eng.indexed(blocklens, displs, kInt, &t), Err::Success);
  const TypeInfo* info = eng.info(t);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->size, 24u);  // 6 ints
  // Segments: [0,4), [8,20), [32,40)
  ASSERT_EQ(info->segments.size(), 3u);
  EXPECT_EQ(info->segments[1], (Segment{8, 12}));
  EXPECT_EQ(info->extent, 40);
}

TEST(Indexed, AdjacentBlocksMerge) {
  TypeEngine eng;
  Datatype t = kDatatypeNull;
  const std::array<int, 2> blocklens = {2, 2};
  const std::array<int, 2> displs = {0, 2};  // contiguous: 4 ints
  ASSERT_EQ(eng.indexed(blocklens, displs, kInt, &t), Err::Success);
  const TypeInfo* info = eng.info(t);
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->contiguous);
  EXPECT_EQ(info->segments.size(), 1u);
}

TEST(Struct, MixedTypes) {
  TypeEngine eng;
  Datatype t = kDatatypeNull;
  // struct { int32 a; double b; } with explicit byte displacements.
  const std::array<int, 2> blocklens = {1, 1};
  const std::array<std::int64_t, 2> displs = {0, 8};
  const std::array<Datatype, 2> types = {kInt32, kDouble};
  ASSERT_EQ(eng.create_struct(blocklens, displs, types, &t), Err::Success);
  const TypeInfo* info = eng.info(t);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->size, 12u);
  EXPECT_EQ(info->extent, 16);
  EXPECT_FALSE(info->contiguous);
}

TEST(Struct, NestedDerived) {
  TypeEngine eng;
  Datatype vec = kDatatypeNull;
  ASSERT_EQ(eng.vector(2, 1, 2, kInt, &vec), Err::Success);  // 2 ints, gap between
  Datatype t = kDatatypeNull;
  const std::array<int, 1> blocklens = {2};
  const std::array<std::int64_t, 1> displs = {4};
  const std::array<Datatype, 1> types = {vec};
  ASSERT_EQ(eng.create_struct(blocklens, displs, types, &t), Err::Success);
  const TypeInfo* info = eng.info(t);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->size, 16u);  // 4 ints of data
}

TEST(TypeEngine, SlotsAreRecycled) {
  TypeEngine eng;
  Datatype a = kDatatypeNull;
  ASSERT_EQ(eng.contiguous(2, kInt, &a), Err::Success);
  EXPECT_EQ(eng.num_derived_live(), 1u);
  ASSERT_EQ(eng.free_type(&a), Err::Success);
  EXPECT_EQ(eng.num_derived_live(), 0u);
  Datatype b = kDatatypeNull;
  ASSERT_EQ(eng.contiguous(3, kInt, &b), Err::Success);
  EXPECT_EQ(eng.num_derived_live(), 1u);
}

TEST(TypeEngine, CannotFreeBuiltin) {
  TypeEngine eng;
  Datatype d = kInt;
  EXPECT_EQ(eng.free_type(&d), Err::Datatype);
}

TEST(TypeEngine, CommitBuiltinIsNoop) {
  TypeEngine eng;
  Datatype d = kDouble;
  EXPECT_EQ(eng.commit(&d), Err::Success);
}

// ---------------------------------------------------------------------------
// Pack / unpack round trips
// ---------------------------------------------------------------------------

TEST(Pack, ContiguousIsMemcpy) {
  TypeEngine eng;
  std::vector<int> src(8);
  std::iota(src.begin(), src.end(), 0);
  std::vector<std::byte> buf(packed_size(eng, 8, kInt));
  EXPECT_EQ(pack(eng, src.data(), 8, kInt, buf.data()), 32u);
  std::vector<int> dst(8, -1);
  EXPECT_EQ(unpack(eng, buf.data(), buf.size(), dst.data(), 8, kInt), 32u);
  EXPECT_EQ(src, dst);
}

TEST(Pack, VectorRoundTripExtractsColumns) {
  TypeEngine eng;
  // A 4x4 int matrix, column extraction: count=4, blocklen=1, stride=4.
  Datatype col = kDatatypeNull;
  ASSERT_EQ(eng.vector(4, 1, 4, kInt, &col), Err::Success);
  std::array<int, 16> m{};
  std::iota(m.begin(), m.end(), 0);
  std::vector<std::byte> buf(packed_size(eng, 1, col));
  ASSERT_EQ(buf.size(), 16u);
  pack(eng, &m[1], 1, col, buf.data());  // column 1
  std::array<int, 4> col_vals{};
  std::memcpy(col_vals.data(), buf.data(), 16);
  EXPECT_EQ(col_vals, (std::array<int, 4>{1, 5, 9, 13}));

  // Scatter it back into a different matrix.
  std::array<int, 16> m2{};
  unpack(eng, buf.data(), buf.size(), &m2[2], 1, col);  // into column 2
  EXPECT_EQ(m2[2], 1);
  EXPECT_EQ(m2[6], 5);
  EXPECT_EQ(m2[10], 9);
  EXPECT_EQ(m2[14], 13);
  EXPECT_EQ(m2[0], 0);
}

TEST(Pack, PartialUnpackStopsAtLimit) {
  TypeEngine eng;
  std::vector<double> src = {1, 2, 3, 4};
  std::vector<std::byte> buf(32);
  pack(eng, src.data(), 4, kDouble, buf.data());
  std::vector<double> dst(4, -1);
  EXPECT_EQ(unpack(eng, buf.data(), 16, dst.data(), 4, kDouble), 16u);
  EXPECT_EQ(dst[0], 1);
  EXPECT_EQ(dst[1], 2);
  EXPECT_EQ(dst[2], -1);  // untouched
}

TEST(Pack, ZeroCountIsEmpty) {
  TypeEngine eng;
  EXPECT_EQ(packed_size(eng, 0, kInt), 0u);
  int x = 5;
  EXPECT_EQ(pack(eng, &x, 0, kInt, nullptr), 0u);
}

// Property sweep: pack followed by unpack into a cleared buffer reproduces
// the data-carrying bytes for a family of vector types.
struct VecParam {
  int count;
  int blocklen;
  int stride;
};

class VectorRoundTrip : public ::testing::TestWithParam<VecParam> {};

TEST_P(VectorRoundTrip, PackUnpackRestoresData) {
  const VecParam p = GetParam();
  TypeEngine eng;
  Datatype t = kDatatypeNull;
  ASSERT_EQ(eng.vector(p.count, p.blocklen, p.stride, kInt32, &t), Err::Success);
  ASSERT_EQ(eng.commit(&t), Err::Success);
  const TypeInfo* info = eng.info(t);
  ASSERT_NE(info, nullptr);

  // Element count 2 to also exercise extent stepping.
  const int elems = 2;
  const std::size_t span_ints =
      static_cast<std::size_t>((info->extent / 4) * elems + 8);
  std::vector<std::int32_t> src(span_ints);
  std::iota(src.begin(), src.end(), 100);
  std::vector<std::int32_t> dst(span_ints, 0);

  std::vector<std::byte> buf(packed_size(eng, elems, t));
  const std::size_t packed = pack(eng, src.data(), elems, t, buf.data());
  EXPECT_EQ(packed, buf.size());
  const std::size_t consumed = unpack(eng, buf.data(), buf.size(), dst.data(), elems, t);
  EXPECT_EQ(consumed, buf.size());

  // Every byte covered by a segment must match; bytes outside stay zero.
  for (int e = 0; e < elems; ++e) {
    for (const Segment& s : info->segments) {
      const std::int64_t base = e * info->extent + s.offset;
      EXPECT_EQ(std::memcmp(reinterpret_cast<const std::byte*>(src.data()) + base,
                            reinterpret_cast<const std::byte*>(dst.data()) + base, s.length),
                0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, VectorRoundTrip,
                         ::testing::Values(VecParam{1, 1, 1}, VecParam{3, 2, 4},
                                           VecParam{4, 1, 2}, VecParam{2, 3, 3},
                                           VecParam{5, 2, 7}, VecParam{8, 1, 3},
                                           VecParam{1, 16, 16}, VecParam{6, 4, 5}));

// ---------------------------------------------------------------------------
// Wire serialization
// ---------------------------------------------------------------------------

TEST(Serialize, RoundTrip) {
  TypeEngine eng;
  Datatype t = kDatatypeNull;
  ASSERT_EQ(eng.vector(3, 2, 4, kInt, &t), Err::Success);
  const TypeInfo* info = eng.info(t);
  const std::vector<std::byte> blob = serialize_info(*info);
  auto parsed = deserialize_info(blob);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->second, blob.size());
  const TypeInfo& got = parsed->first;
  EXPECT_EQ(got.size, info->size);
  EXPECT_EQ(got.lb, info->lb);
  EXPECT_EQ(got.extent, info->extent);
  EXPECT_EQ(got.contiguous, info->contiguous);
  EXPECT_EQ(got.segments, info->segments);
  EXPECT_TRUE(got.committed);
}

TEST(Serialize, TruncatedBlobRejected) {
  TypeEngine eng;
  Datatype t = kDatatypeNull;
  ASSERT_EQ(eng.vector(3, 2, 4, kInt, &t), Err::Success);
  std::vector<std::byte> blob = serialize_info(*eng.info(t));
  blob.resize(blob.size() - 1);
  EXPECT_FALSE(deserialize_info(blob).has_value());
  EXPECT_FALSE(deserialize_info({}).has_value());
}

TEST(Serialize, PackInfoMatchesEnginePack) {
  TypeEngine eng;
  Datatype t = kDatatypeNull;
  ASSERT_EQ(eng.vector(2, 2, 3, kDouble, &t), Err::Success);
  std::vector<double> src(16);
  std::iota(src.begin(), src.end(), 0.0);
  std::vector<std::byte> a(packed_size(eng, 2, t));
  std::vector<std::byte> b(a.size());
  pack(eng, src.data(), 2, t, a.data());
  auto parsed = deserialize_info(serialize_info(*eng.info(t)));
  ASSERT_TRUE(parsed.has_value());
  pack_info(parsed->first, src.data(), 2, b.data());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace lwmpi::dt
