// Observability subsystem: pvar registry enumeration, per-VCI counters,
// latency histograms, MPI_T-style sessions, the trace ring, and the
// Chrome-trace exporter.
#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/pvar.hpp"
#include "obs/trace.hpp"
#include "util.hpp"

namespace lwmpi {
namespace {

// --- minimal JSON well-formedness checker -----------------------------------
// Recursive-descent validator: enough JSON to assert the exporter and
// stats_report emit parseable documents without pulling in a library.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : p_(s.data()), end_(s.data() + s.size()) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return p_ == end_;
  }

 private:
  void skip_ws() {
    while (p_ < end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  }
  bool consume(char c) {
    skip_ws();
    if (p_ < end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }
  bool string() {
    if (!consume('"')) return false;
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') ++p_;
      ++p_;
    }
    return consume('"');
  }
  bool number() {
    const char* start = p_;
    if (p_ < end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    while (p_ < end_ && (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '.' ||
                         *p_ == 'e' || *p_ == 'E' || *p_ == '-' || *p_ == '+')) {
      ++p_;
    }
    return p_ != start;
  }
  bool literal(const char* word) {
    for (const char* w = word; *w != '\0'; ++w, ++p_) {
      if (p_ >= end_ || *p_ != *w) return false;
    }
    return true;
  }
  bool value() {
    skip_ws();
    if (p_ >= end_) return false;
    switch (*p_) {
      case '{': {
        ++p_;
        if (consume('}')) return true;
        do {
          if (!string()) return false;
          if (!consume(':')) return false;
          if (!value()) return false;
        } while (consume(','));
        return consume('}');
      }
      case '[': {
        ++p_;
        if (consume(']')) return true;
        do {
          if (!value()) return false;
        } while (consume(','));
        return consume(']');
      }
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  const char* p_;
  const char* end_;
};

std::uint64_t read_pvar(Engine& e, const char* name) {
  obs::PvarSession s;
  EXPECT_EQ(obs::LWMPI_T_pvar_session_create(e, &s), Err::Success);
  const int idx = obs::LWMPI_T_pvar_index(name);
  EXPECT_GE(idx, 0) << "unknown pvar " << name;
  std::uint64_t v = 0;
  EXPECT_EQ(obs::LWMPI_T_pvar_read(s, idx, &v), Err::Success);
  obs::LWMPI_T_pvar_session_free(&s);
  return v;
}

// --- registry ----------------------------------------------------------------

TEST(PvarRegistry, EnumeratesAtLeastTwelveUniqueNames) {
  const int n = obs::LWMPI_T_pvar_num();
  ASSERT_GE(n, 12);
  std::set<std::string> names;
  for (int i = 0; i < n; ++i) {
    obs::PvarInfo info;
    ASSERT_EQ(obs::LWMPI_T_pvar_get_info(i, &info), Err::Success);
    EXPECT_FALSE(info.name.empty());
    EXPECT_FALSE(info.desc.empty());
    EXPECT_TRUE(names.insert(std::string(info.name)).second)
        << "duplicate pvar name " << info.name;
    // Name -> index is the inverse of enumeration.
    EXPECT_EQ(obs::LWMPI_T_pvar_index(info.name), i);
  }
}

TEST(PvarRegistry, RejectsBadArguments) {
  obs::PvarInfo info;
  EXPECT_EQ(obs::LWMPI_T_pvar_get_info(-1, &info), Err::Arg);
  EXPECT_EQ(obs::LWMPI_T_pvar_get_info(obs::LWMPI_T_pvar_num(), &info), Err::Arg);
  EXPECT_EQ(obs::LWMPI_T_pvar_get_info(0, nullptr), Err::Arg);
  EXPECT_EQ(obs::LWMPI_T_pvar_index("no_such_pvar"), -1);

  obs::PvarSession s;  // never bound to an engine
  std::uint64_t v = 0;
  EXPECT_FALSE(s.valid());
  EXPECT_EQ(obs::LWMPI_T_pvar_read(s, 0, &v), Err::Arg);
  EXPECT_EQ(obs::LWMPI_T_pvar_session_free(&s), Err::Arg);
}

TEST(PvarRegistry, RejectsOutOfRangeIndicesOnLiveSession) {
  WorldOptions o = test::fast_opts();
  World w(1, o);
  obs::PvarSession s;
  ASSERT_EQ(obs::LWMPI_T_pvar_session_create(w.engine(0), &s), Err::Success);
  const int n = obs::LWMPI_T_pvar_num();
  std::uint64_t v = 0;
  EXPECT_EQ(obs::LWMPI_T_pvar_read(s, -1, &v), Err::Arg);
  EXPECT_EQ(obs::LWMPI_T_pvar_read(s, n, &v), Err::Arg);
  EXPECT_EQ(obs::LWMPI_T_pvar_read(s, 0, nullptr), Err::Arg);
  EXPECT_EQ(obs::LWMPI_T_pvar_start(s, -1), Err::Arg);
  EXPECT_EQ(obs::LWMPI_T_pvar_start(s, n), Err::Arg);
  EXPECT_EQ(obs::LWMPI_T_pvar_reset(s, n), Err::Arg);
  obs::LWMPI_T_pvar_session_free(&s);
}

TEST(PvarRegistry, RejectsOutOfRangeVci) {
  WorldOptions o = test::fast_opts();
  World w(1, o);
  Engine& e = w.engine(0);
  obs::PvarSession s;
  ASSERT_EQ(obs::LWMPI_T_pvar_session_create(e, &s), Err::Success);
  const int idx = obs::LWMPI_T_pvar_index("vci_sends_eager");
  ASSERT_GE(idx, 0);
  std::uint64_t v = 0;
  EXPECT_EQ(obs::LWMPI_T_pvar_read_vci(s, idx, e.num_vcis(), &v), Err::Arg);
  EXPECT_EQ(obs::LWMPI_T_pvar_read_vci(s, idx, 9999, &v), Err::Arg);
  // vci = -1 is the documented sum-over-channels spelling, not an error.
  EXPECT_EQ(obs::LWMPI_T_pvar_read_vci(s, idx, -1, &v), Err::Success);
  obs::LWMPI_T_pvar_session_free(&s);
}

TEST(PvarRegistry, FreedSessionRejectsAllOperations) {
  WorldOptions o = test::fast_opts();
  World w(1, o);
  obs::PvarSession s;
  ASSERT_EQ(obs::LWMPI_T_pvar_session_create(w.engine(0), &s), Err::Success);
  ASSERT_EQ(obs::LWMPI_T_pvar_session_free(&s), Err::Success);
  EXPECT_FALSE(s.valid());
  std::uint64_t v = 0;
  EXPECT_EQ(obs::LWMPI_T_pvar_read(s, 0, &v), Err::Arg);
  EXPECT_EQ(obs::LWMPI_T_pvar_read_vci(s, 0, 0, &v), Err::Arg);
  EXPECT_EQ(obs::LWMPI_T_pvar_start(s, 0), Err::Arg);
  EXPECT_EQ(obs::LWMPI_T_pvar_reset(s, 0), Err::Arg);
  // Double free is also an argument error, not UB.
  EXPECT_EQ(obs::LWMPI_T_pvar_session_free(&s), Err::Arg);
}

// --- counters ----------------------------------------------------------------

TEST(Counters, EagerRdvSplitAtThreshold) {
  WorldOptions o = test::fast_opts();
  o.eager_threshold = 64;
  World w(2, o);
  const int kSmall = 3, kBig = 2;
  std::vector<char> big(256, 'x');
  w.run([&](Engine& e) {
    if (e.world_rank() == 0) {
      char c = 1;
      for (int i = 0; i < kSmall; ++i) e.send(&c, 1, kChar, 1, i, kCommWorld);
      for (int i = 0; i < kBig; ++i) {
        e.send(big.data(), static_cast<int>(big.size()), kChar, 1, 100 + i, kCommWorld);
      }
    } else {
      char c = 0;
      std::vector<char> rbuf(256);
      for (int i = 0; i < kSmall; ++i) e.recv(&c, 1, kChar, 0, i, kCommWorld, nullptr);
      for (int i = 0; i < kBig; ++i) {
        e.recv(rbuf.data(), static_cast<int>(rbuf.size()), kChar, 0, 100 + i, kCommWorld,
               nullptr);
      }
    }
  });
  Engine& sender = w.engine(0);
  EXPECT_EQ(read_pvar(sender, "vci_sends_eager"), static_cast<std::uint64_t>(kSmall));
  EXPECT_EQ(read_pvar(sender, "vci_sends_rdv"), static_cast<std::uint64_t>(kBig));
  Engine& receiver = w.engine(1);
  EXPECT_EQ(read_pvar(receiver, "vci_recvs_posted"),
            static_cast<std::uint64_t>(kSmall + kBig));
  EXPECT_EQ(read_pvar(receiver, "vci_posted_matches") +
                read_pvar(receiver, "vci_posted_misses"),
            static_cast<std::uint64_t>(kSmall + kBig));
}

TEST(Counters, SessionReadsAreBaselineRelative) {
  WorldOptions o = test::fast_opts();
  World w(2, o);
  auto exchange = [&] {
    w.run([&](Engine& e) {
      int v = 7;
      if (e.world_rank() == 0) {
        e.send(&v, 1, kInt, 1, 0, kCommWorld);
      } else {
        e.recv(&v, 1, kInt, 0, 0, kCommWorld, nullptr);
      }
    });
  };
  exchange();

  Engine& sender = w.engine(0);
  obs::PvarSession s;
  ASSERT_EQ(obs::LWMPI_T_pvar_session_create(sender, &s), Err::Success);
  const int idx = obs::LWMPI_T_pvar_index("vci_sends_eager");
  ASSERT_GE(idx, 0);

  std::uint64_t v = 0;
  ASSERT_EQ(obs::LWMPI_T_pvar_read(s, idx, &v), Err::Success);
  EXPECT_EQ(v, 1u);  // fresh session: baseline zero, absolute value visible

  // start() captures the baseline: the first exchange disappears from view.
  ASSERT_EQ(obs::LWMPI_T_pvar_start(s, idx), Err::Success);
  ASSERT_EQ(obs::LWMPI_T_pvar_read(s, idx, &v), Err::Success);
  EXPECT_EQ(v, 0u);

  exchange();
  ASSERT_EQ(obs::LWMPI_T_pvar_read(s, idx, &v), Err::Success);
  EXPECT_EQ(v, 1u);  // only the traffic since start()

  // reset() re-zeros from this session's point of view.
  ASSERT_EQ(obs::LWMPI_T_pvar_reset(s, idx), Err::Success);
  ASSERT_EQ(obs::LWMPI_T_pvar_read(s, idx, &v), Err::Success);
  EXPECT_EQ(v, 0u);
  obs::LWMPI_T_pvar_session_free(&s);
}

TEST(Counters, UnexpectedQueueDepthAndHighWater) {
  // Single-thread drive: the receiver's progress runs only when we call it,
  // so every eager arrival lands on the unexpected queue first.
  WorldOptions o = test::fast_opts();
  World w(2, o);
  Engine& e0 = w.engine(0);
  Engine& e1 = w.engine(1);

  const int kMsgs = 5;
  char c = 'a';
  std::vector<Request> reqs(kMsgs, kRequestNull);
  for (int i = 0; i < kMsgs; ++i) {
    ASSERT_EQ(e0.isend(&c, 1, kChar, 1, i, kCommWorld, &reqs[static_cast<std::size_t>(i)]),
              Err::Success);
  }
  e0.waitall(reqs, {});  // eager: complete at inject
  e1.progress();         // all five arrive unmatched

  EXPECT_EQ(read_pvar(e1, "vci_unexpected_depth"), static_cast<std::uint64_t>(kMsgs));
  EXPECT_EQ(read_pvar(e1, "vci_unexpected_hwm"), static_cast<std::uint64_t>(kMsgs));
  EXPECT_EQ(read_pvar(e1, "vci_posted_misses"), static_cast<std::uint64_t>(kMsgs));
  EXPECT_EQ(read_pvar(e1, "vci_posted_matches"), 0u);

  // Draining the queue lowers the level; the high-water mark stays.
  for (int i = 0; i < kMsgs; ++i) {
    char got = 0;
    ASSERT_EQ(e1.recv(&got, 1, kChar, 0, i, kCommWorld, nullptr), Err::Success);
    EXPECT_EQ(got, 'a');
  }
  EXPECT_EQ(read_pvar(e1, "vci_unexpected_depth"), 0u);
  EXPECT_EQ(read_pvar(e1, "vci_unexpected_hwm"), static_cast<std::uint64_t>(kMsgs));
}

TEST(Counters, DecSaturatesAtZero) {
  // A level counter whose inc lost a tick to the documented lock-free race
  // must floor at 0 on dec, never wrap to ~2^64.
  obs::VciCounters c;
  c.dec(obs::VciCtr::PostedDepth);  // dec on a zero counter
  EXPECT_EQ(c.get(obs::VciCtr::PostedDepth), 0u);
  c.inc(obs::VciCtr::PostedDepth, 2);
  c.dec(obs::VciCtr::PostedDepth, 5);  // dec by more than the level
  EXPECT_EQ(c.get(obs::VciCtr::PostedDepth), 0u);
  c.inc(obs::VciCtr::PostedDepth, 7);
  c.dec(obs::VciCtr::PostedDepth, 3);  // normal in-range dec still exact
  EXPECT_EQ(c.get(obs::VciCtr::PostedDepth), 4u);
}

TEST(Counters, PostedDepthAndHighWater) {
  // Mirror of UnexpectedQueueDepthAndHighWater for the posted side: receives
  // posted with no matching traffic raise the level and the high-water mark;
  // matching them drains the level but the mark stays.
  WorldOptions o = test::fast_opts();
  World w(2, o);
  Engine& e0 = w.engine(0);
  Engine& e1 = w.engine(1);

  const int kRecvs = 4;
  std::vector<char> got(kRecvs, 0);
  std::vector<Request> rreqs(kRecvs, kRequestNull);
  for (int i = 0; i < kRecvs; ++i) {
    ASSERT_EQ(e1.irecv(&got[static_cast<std::size_t>(i)], 1, kChar, 0, i, kCommWorld,
                       &rreqs[static_cast<std::size_t>(i)]),
              Err::Success);
  }
  EXPECT_EQ(read_pvar(e1, "vci_posted_depth"), static_cast<std::uint64_t>(kRecvs));
  EXPECT_EQ(read_pvar(e1, "vci_posted_hwm"), static_cast<std::uint64_t>(kRecvs));

  char c = 'p';
  for (int i = 0; i < kRecvs; ++i) {
    Request sr = kRequestNull;
    ASSERT_EQ(e0.isend(&c, 1, kChar, 1, i, kCommWorld, &sr), Err::Success);
    ASSERT_EQ(e0.wait(&sr, nullptr), Err::Success);
  }
  e1.progress();  // every arrival matches a posted receive
  ASSERT_EQ(e1.waitall(rreqs, {}), Err::Success);
  for (int i = 0; i < kRecvs; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], 'p');

  EXPECT_EQ(read_pvar(e1, "vci_posted_depth"), 0u);
  EXPECT_EQ(read_pvar(e1, "vci_posted_hwm"), static_cast<std::uint64_t>(kRecvs));
  EXPECT_EQ(read_pvar(e1, "vci_posted_matches"), static_cast<std::uint64_t>(kRecvs));
}

TEST(Counters, ProgressIdleVsSwept) {
  WorldOptions o = test::fast_opts();
  World w(2, o);
  Engine& e1 = w.engine(1);

  // Nothing in flight: the call resolves on the lock-free idle path.
  e1.progress();
  EXPECT_EQ(read_pvar(e1, "progress_calls_idle"), 1u);
  EXPECT_EQ(read_pvar(e1, "progress_calls_swept"), 0u);

  char c = 'z';
  Request r = kRequestNull;
  ASSERT_EQ(w.engine(0).isend(&c, 1, kChar, 1, 0, kCommWorld, &r), Err::Success);
  w.engine(0).wait(&r, nullptr);
  e1.progress();  // pending fabric traffic forces a sweep
  EXPECT_EQ(read_pvar(e1, "progress_calls_swept"), 1u);
}

TEST(Counters, DisabledBuildKeepsCountersAtZero) {
  WorldOptions o = test::fast_opts();
  o.build.counters = false;
  World w(2, o);
  w.run([&](Engine& e) {
    int v = 3;
    if (e.world_rank() == 0) {
      e.send(&v, 1, kInt, 1, 0, kCommWorld);
    } else {
      e.recv(&v, 1, kInt, 0, 0, kCommWorld, nullptr);
    }
  });
  EXPECT_EQ(read_pvar(w.engine(0), "vci_sends_eager"), 0u);
  EXPECT_EQ(read_pvar(w.engine(1), "vci_recvs_posted"), 0u);
  EXPECT_EQ(read_pvar(w.engine(1), "progress_calls_swept"), 0u);
}

TEST(Counters, RmaOpsAndFlushes) {
  WorldOptions o = test::fast_opts();
  World w(2, o);
  w.run([&](Engine& e) {
    std::vector<int> mem(8, 0);
    Win win = kWinNull;
    ASSERT_EQ(e.win_create(mem.data(), mem.size() * sizeof(int), sizeof(int), kCommWorld,
                           &win),
              Err::Success);
    e.win_fence(win);
    if (e.world_rank() == 0) {
      const int v = 5;
      ASSERT_EQ(e.put(&v, 1, kInt, 1, 0, 1, kInt, win), Err::Success);
      ASSERT_EQ(e.win_flush_all(win), Err::Success);
    }
    e.win_fence(win);
    e.win_free(&win);
  });
  EXPECT_EQ(read_pvar(w.engine(0), "rma_ops"), 1u);
  // Two fences, one explicit flush_all, plus the implicit flush in win_free.
  EXPECT_EQ(read_pvar(w.engine(0), "rma_flushes"), 4u);
}

// --- latency histograms ------------------------------------------------------

TEST(LatencyHist, BucketingAndPercentiles) {
  static_assert(obs::LatencyHist::bucket_of(0) == 1);  // |1 floor
  static_assert(obs::LatencyHist::bucket_of(1) == 1);
  static_assert(obs::LatencyHist::bucket_of(255) == 8);
  static_assert(obs::LatencyHist::bucket_of(256) == 9);
  static_assert(obs::LatencyHist::bucket_of(~std::uint64_t{0}) == obs::kLatBuckets - 1);

  obs::LatencyHist h;
  for (int i = 0; i < 90; ++i) h.record(100);    // bucket 7, upper bound 127
  for (int i = 0; i < 10; ++i) h.record(5000);   // bucket 13, upper bound 8191
  obs::LatSnapshot s;
  s.merge(h);
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.max_ns, 5000u);
  EXPECT_EQ(s.percentile(0.50), 127u);   // bucket upper bound
  EXPECT_EQ(s.percentile(0.99), 5000u);  // clamped by the observed max
  EXPECT_EQ(s.percentile(1.00), 5000u);

  // Merging a second channel's histogram folds counts and max.
  obs::LatencyHist h2;
  h2.record(70000);
  s.merge(h2);
  EXPECT_EQ(s.count, 101u);
  EXPECT_EQ(s.max_ns, 70000u);

  const obs::LatSnapshot empty;
  EXPECT_EQ(empty.percentile(0.99), 0u);
}

// The acceptance check from the paper's protocol-cost argument: at 1 MiB an
// eager send's lifetime is one copy, while a rendezvous send cannot finish
// before the receiver shows up. Drive both worlds single-threaded; in the
// rendezvous world the receiver is deliberately late, so the send-side
// lifetime includes the handshake wait and its p50 must sit far above the
// eager p99. Parameterized over the netmod backend: the rdma rendezvous takes
// the zero-copy CTS/rdma_write path, and its completion stamp must land in
// the same lat_send_rdv histogram the mailbox staging path feeds.
void check_eager_p99_below_rdv_p50(const std::string& netmod) {
  constexpr int kBytes = 1 << 20;
  constexpr auto kReceiverDelay = std::chrono::milliseconds(150);
  std::vector<char> out(kBytes, 'e');
  std::vector<char> in(kBytes, 0);

  std::uint64_t eager_p99 = 0;
  {
    WorldOptions o = test::fast_opts();
    o.netmod = netmod;
    o.eager_threshold = 2 * 1024 * 1024;  // 1 MiB goes eager
    o.build.lat_sample_shift = 0;         // stamp every message
    World w(2, o);
    Engine& e0 = w.engine(0);
    Engine& e1 = w.engine(1);
    for (int i = 0; i < 40; ++i) {
      Request sr = kRequestNull;
      ASSERT_EQ(e0.isend(out.data(), kBytes, kChar, 1, i, kCommWorld, &sr), Err::Success);
      ASSERT_EQ(e0.wait(&sr, nullptr), Err::Success);  // eager: completes at inject
      ASSERT_EQ(e1.recv(in.data(), kBytes, kChar, 0, i, kCommWorld, nullptr),
                Err::Success);
    }
    EXPECT_EQ(read_pvar(e0, "lat_send_eager_count"), 40u);
    eager_p99 = read_pvar(e0, "lat_send_eager_p99_ns");
  }

  std::uint64_t rdv_p50 = 0;
  {
    WorldOptions o = test::fast_opts();  // default threshold: 1 MiB goes rendezvous
    o.netmod = netmod;
    o.build.lat_sample_shift = 0;
    World w(2, o);
    Engine& e0 = w.engine(0);
    Engine& e1 = w.engine(1);
    for (int i = 0; i < 5; ++i) {
      Request sr = kRequestNull;
      Request rr = kRequestNull;
      ASSERT_EQ(e0.isend(out.data(), kBytes, kChar, 1, i, kCommWorld, &sr), Err::Success);
      std::this_thread::sleep_for(kReceiverDelay);  // receiver is late
      ASSERT_EQ(e1.irecv(in.data(), kBytes, kChar, 0, i, kCommWorld, &rr), Err::Success);
      e1.progress();  // match the RTS, answer with CTS
      e0.progress();  // handle the CTS, ship the payload
      ASSERT_EQ(e0.wait(&sr, nullptr), Err::Success);
      e1.progress();  // deliver the payload
      ASSERT_EQ(e1.wait(&rr, nullptr), Err::Success);
      ASSERT_EQ(in[kBytes / 2], 'e');
    }
    EXPECT_EQ(read_pvar(e0, "lat_send_rdv_count"), 5u);
    rdv_p50 = read_pvar(e0, "lat_send_rdv_p50_ns");
  }

  EXPECT_GT(eager_p99, 0u);
  EXPECT_GE(rdv_p50,
            static_cast<std::uint64_t>(
                std::chrono::nanoseconds(kReceiverDelay).count()));
  EXPECT_LT(eager_p99, rdv_p50);
}

TEST(Latency, EagerP99BelowRendezvousP50AtOneMiB) {
  check_eager_p99_below_rdv_p50("mailbox");
}

TEST(Latency, EagerP99BelowRendezvousP50AtOneMiBRdma) {
  check_eager_p99_below_rdv_p50("rdma");
}

TEST(Latency, DisabledBuildRecordsNothing) {
  WorldOptions o = test::fast_opts();
  o.build.counters = false;  // histogram tier follows the counter switch
  World w(2, o);
  w.run([&](Engine& e) {
    int v = 4;
    if (e.world_rank() == 0) {
      e.send(&v, 1, kInt, 1, 0, kCommWorld);
    } else {
      e.recv(&v, 1, kInt, 0, 0, kCommWorld, nullptr);
    }
  });
  EXPECT_EQ(read_pvar(w.engine(0), "lat_send_eager_count"), 0u);
  EXPECT_EQ(read_pvar(w.engine(1), "lat_recv_eager_count"), 0u);
  EXPECT_EQ(read_pvar(w.engine(0), "lat_send_eager_p99_ns"), 0u);
}

// --- trace ring --------------------------------------------------------------

TEST(TraceRing, OverwritesOldestWithoutBlocking) {
  obs::trace::Ring ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  for (std::uint64_t i = 1; i <= 20; ++i) {
    obs::trace::Event e;
    e.seq = i;
    e.ts_ns = i;
    ring.push(e);
  }
  EXPECT_EQ(ring.recorded(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  std::vector<obs::trace::Event> got = ring.collect();
  ASSERT_EQ(got.size(), 8u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].seq, 13 + i);  // oldest survivor first
  }
  ring.clear();
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_TRUE(ring.collect().empty());
}

TEST(TraceRing, RoundsCapacityToPowerOfTwo) {
  obs::trace::Ring ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

// --- end-to-end tracing ------------------------------------------------------

// Group collected events by message id.
std::map<std::uint64_t, std::vector<obs::trace::Event>> by_seq(
    const std::vector<obs::trace::Event>& events) {
  std::map<std::uint64_t, std::vector<obs::trace::Event>> out;
  for (const auto& e : events) {
    if (e.seq != 0) out[e.seq].push_back(e);
  }
  return out;
}

bool has_kind(const std::vector<obs::trace::Event>& chain, obs::trace::Ev k) {
  for (const auto& e : chain) {
    if (e.kind == k) return true;
  }
  return false;
}

TEST(Trace, FourRankRingExchangeExportsWellFormedChains) {
  obs::trace::reset_all();
  WorldOptions o = test::fast_opts();
  o.build.trace = true;
  const int n = 4;
  World w(n, o);
  w.run([&](Engine& e) {
    const Rank me = e.world_rank();
    const Rank next = (me + 1) % n;
    const Rank prev = (me + n - 1) % n;
    int out = 1000 + me, in = -1;
    Request r = kRequestNull;
    ASSERT_EQ(e.isend(&out, 1, kInt, next, 9, kCommWorld, &r), Err::Success);
    ASSERT_EQ(e.recv(&in, 1, kInt, prev, 9, kCommWorld, nullptr), Err::Success);
    ASSERT_EQ(e.wait(&r, nullptr), Err::Success);
    EXPECT_EQ(in, 1000 + prev);
  });

  const std::vector<obs::trace::Event> events = obs::trace::collect_all();
  const auto chains = by_seq(events);
  ASSERT_EQ(chains.size(), static_cast<std::size_t>(n));  // one chain per send
  for (const auto& [seq, chain] : chains) {
    EXPECT_TRUE(has_kind(chain, obs::trace::Ev::SendPost)) << "seq " << seq;
    EXPECT_TRUE(has_kind(chain, obs::trace::Ev::Inject)) << "seq " << seq;
    EXPECT_TRUE(has_kind(chain, obs::trace::Ev::Deliver)) << "seq " << seq;
    EXPECT_TRUE(has_kind(chain, obs::trace::Ev::Match)) << "seq " << seq;
    EXPECT_TRUE(has_kind(chain, obs::trace::Ev::Complete)) << "seq " << seq;
    // The chain spans both sides of the wire.
    std::set<std::int32_t> ranks;
    for (const auto& e : chain) ranks.insert(e.rank);
    EXPECT_GE(ranks.size(), 2u) << "seq " << seq;
  }

  std::ostringstream os;
  obs::trace::export_chrome_json(os, events);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);

  // The instant-event stream is sorted: ts values are non-decreasing.
  double prev_ts = -1.0;
  std::size_t instants = 0;
  for (std::size_t pos = json.find("\"ph\":\"i\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"i\"", pos + 1)) {
    const std::size_t t = json.find("\"ts\":", pos);
    ASSERT_NE(t, std::string::npos);
    const double ts = std::strtod(json.c_str() + t + 5, nullptr);
    EXPECT_GE(ts, prev_ts);
    prev_ts = ts;
    ++instants;
  }
  EXPECT_EQ(instants, events.size());

  // One async begin/end pair per message id.
  std::size_t begins = 0, ends = 0;
  for (std::size_t pos = json.find("\"ph\":\"b\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"b\"", pos + 1)) {
    ++begins;
  }
  for (std::size_t pos = json.find("\"ph\":\"e\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"e\"", pos + 1)) {
    ++ends;
  }
  EXPECT_EQ(begins, chains.size());
  EXPECT_EQ(ends, chains.size());
}

TEST(Trace, RendezvousChainCarriesSeqAcrossHandshake) {
  obs::trace::reset_all();
  WorldOptions o = test::fast_opts();
  o.build.trace = true;
  o.eager_threshold = 64;
  World w(2, o);
  std::vector<char> big(4096, 'r');
  w.run([&](Engine& e) {
    if (e.world_rank() == 0) {
      e.send(big.data(), static_cast<int>(big.size()), kChar, 1, 0, kCommWorld);
    } else {
      std::vector<char> rbuf(4096);
      e.recv(rbuf.data(), static_cast<int>(rbuf.size()), kChar, 0, 0, kCommWorld, nullptr);
      EXPECT_EQ(rbuf[100], 'r');
    }
  });
  const auto chains = by_seq(obs::trace::collect_all());
  ASSERT_EQ(chains.size(), 1u);
  const auto& chain = chains.begin()->second;
  EXPECT_TRUE(has_kind(chain, obs::trace::Ev::SendPost));
  EXPECT_TRUE(has_kind(chain, obs::trace::Ev::Match));     // RTS matched the recv
  EXPECT_TRUE(has_kind(chain, obs::trace::Ev::Inject));    // data segment injection
  EXPECT_TRUE(has_kind(chain, obs::trace::Ev::Complete));  // both sides complete
  int completes = 0;
  for (const auto& e : chain) {
    if (e.kind == obs::trace::Ev::Complete) ++completes;
  }
  EXPECT_EQ(completes, 2);  // origin (data out) + target (data in)
}

TEST(Trace, DisabledByDefaultRecordsNothing) {
  obs::trace::reset_all();
  WorldOptions o = test::fast_opts();  // build.trace defaults to false
  World w(2, o);
  w.run([&](Engine& e) {
    int v = 2;
    if (e.world_rank() == 0) {
      e.send(&v, 1, kInt, 1, 0, kCommWorld);
    } else {
      e.recv(&v, 1, kInt, 0, 0, kCommWorld, nullptr);
    }
  });
  EXPECT_TRUE(obs::trace::collect_all().empty());
}

TEST(Trace, DroppedEventsSurfaceThroughPvar) {
  obs::trace::reset_all();
  WorldOptions o = test::fast_opts();
  World w(1, o);
  Engine& e = w.engine(0);
  EXPECT_EQ(read_pvar(e, "trace_events_dropped"), 0u);

  // Overflow this thread's ring directly: capacity + 100 pushes must
  // overwrite at least 100 events, and the pvar reports the loss so a
  // truncated Perfetto export can be flagged.
  obs::trace::Event ev;
  ev.seq = 0;
  for (std::size_t i = 0; i < obs::trace::kDefaultRingCapacity + 100; ++i) {
    obs::trace::record(ev);
  }
  EXPECT_GE(read_pvar(e, "trace_events_dropped"), 100u);

  obs::trace::reset_all();
  EXPECT_EQ(read_pvar(e, "trace_events_dropped"), 0u);
}

// --- stats report ------------------------------------------------------------

TEST(StatsReport, TextAndJsonForms) {
  WorldOptions o = test::fast_opts();
  o.build.lat_sample_shift = 0;  // stamp every message: latency block is populated
  World w(2, o);
  w.run([&](Engine& e) {
    int v = 9;
    if (e.world_rank() == 0) {
      e.send(&v, 1, kInt, 1, 0, kCommWorld);
    } else {
      e.recv(&v, 1, kInt, 0, 0, kCommWorld, nullptr);
    }
  });
  const std::string text = w.stats_report(false);
  EXPECT_NE(text.find("rank 0"), std::string::npos);
  EXPECT_NE(text.find("vci_sends_eager"), std::string::npos);
  EXPECT_NE(text.find("mpich/ch4"), std::string::npos);
  EXPECT_NE(text.find("lat[send_eager]"), std::string::npos);

  const std::string json = w.stats_report(true);
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"vci_sends_eager\""), std::string::npos);
  EXPECT_NE(json.find("\"nranks\":2"), std::string::npos);
  EXPECT_NE(json.find("\"device\":\"mpich/ch4\""), std::string::npos);
  // Per-(device, path) latency block: every instrumented path appears with
  // count/p50/p99/max, and the traffic above lands in the eager paths.
  EXPECT_NE(json.find("\"latency\":{"), std::string::npos);
  for (std::size_t p = 0; p < obs::kNumLatPaths; ++p) {
    const std::string key =
        '"' + std::string(obs::to_string(static_cast<obs::LatPath>(p))) + "\":{\"count\":";
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"p50_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"max_ns\":"), std::string::npos);
}

}  // namespace
}  // namespace lwmpi
