// Persistent-request tests: SEND_INIT / RECV_INIT / START / REQUEST_FREE.
#include <gtest/gtest.h>

#include <vector>

#include "util.hpp"

namespace lwmpi {
namespace {

using test::spmd;

TEST(Persistent, RepeatedStartReusesBinding) {
  spmd(2, [](Engine& e) {
    constexpr int kRounds = 20;
    if (e.world_rank() == 0) {
      int buf = 0;
      Request sreq = kRequestNull;
      ASSERT_EQ(e.send_init(&buf, 1, kInt, 1, 7, kCommWorld, &sreq), Err::Success);
      for (int i = 0; i < kRounds; ++i) {
        buf = i * i;
        ASSERT_EQ(e.start(&sreq), Err::Success);
        ASSERT_EQ(e.wait(&sreq, nullptr), Err::Success);
        EXPECT_NE(sreq, kRequestNull);  // handle survives completion
      }
      ASSERT_EQ(e.request_free(&sreq), Err::Success);
      EXPECT_EQ(sreq, kRequestNull);
    } else {
      int buf = -1;
      Request rreq = kRequestNull;
      ASSERT_EQ(e.recv_init(&buf, 1, kInt, 0, 7, kCommWorld, &rreq), Err::Success);
      for (int i = 0; i < kRounds; ++i) {
        ASSERT_EQ(e.start(&rreq), Err::Success);
        Status st;
        ASSERT_EQ(e.wait(&rreq, &st), Err::Success);
        EXPECT_EQ(buf, i * i);
        EXPECT_EQ(st.source, 0);
        EXPECT_EQ(st.tag, 7);
      }
      ASSERT_EQ(e.request_free(&rreq), Err::Success);
    }
    EXPECT_EQ(e.live_requests(), 0u);
  });
}

TEST(Persistent, WaitOnInactiveIsImmediate) {
  spmd(1, [](Engine& e) {
    int buf = 0;
    Request r = kRequestNull;
    ASSERT_EQ(e.send_init(&buf, 1, kInt, kProcNull, 0, kCommWorld, &r), Err::Success);
    Status st;
    ASSERT_EQ(e.wait(&r, &st), Err::Success);  // never started: trivially done
    EXPECT_NE(r, kRequestNull);
    bool flag = false;
    ASSERT_EQ(e.test(&r, &flag, nullptr), Err::Success);
    EXPECT_TRUE(flag);
    ASSERT_EQ(e.request_free(&r), Err::Success);
  });
}

TEST(Persistent, DoubleStartRejected) {
  spmd(1, [](Engine& e) {
    int buf = 0;
    Request r = kRequestNull;
    // A receive that will not match: stays in flight.
    ASSERT_EQ(e.recv_init(&buf, 1, kInt, 0, 5, kCommWorld, &r), Err::Success);
    ASSERT_EQ(e.start(&r), Err::Success);
    EXPECT_EQ(e.start(&r), Err::Pending);
    // Free reaps the in-flight receive after satisfying it.
    int v = 3;
    ASSERT_EQ(e.send(&v, 1, kInt, 0, 5, kCommWorld), Err::Success);
    ASSERT_EQ(e.request_free(&r), Err::Success);
    EXPECT_EQ(buf, 3);
    EXPECT_EQ(e.live_requests(), 0u);
  });
}

TEST(Persistent, StartallHaloPattern) {
  // The canonical persistent-request use: bind the halo exchange once,
  // startall/waitall every iteration.
  spmd(2, [](Engine& e) {
    const int me = e.world_rank();
    const Rank other = 1 - me;
    int sendbuf = 0;
    int recvbuf = -1;
    std::vector<Request> reqs(2, kRequestNull);
    ASSERT_EQ(e.recv_init(&recvbuf, 1, kInt, other, 2, kCommWorld, &reqs[0]), Err::Success);
    ASSERT_EQ(e.send_init(&sendbuf, 1, kInt, other, 2, kCommWorld, &reqs[1]), Err::Success);
    for (int it = 0; it < 10; ++it) {
      sendbuf = me * 100 + it;
      ASSERT_EQ(e.startall(reqs), Err::Success);
      ASSERT_EQ(e.waitall(reqs, {}), Err::Success);
      EXPECT_EQ(recvbuf, other * 100 + it);
      // waitall must leave persistent handles allocated (inactive).
      EXPECT_NE(reqs[0], kRequestNull);
      EXPECT_NE(reqs[1], kRequestNull);
    }
    ASSERT_EQ(e.request_free(&reqs[0]), Err::Success);
    ASSERT_EQ(e.request_free(&reqs[1]), Err::Success);
  });
}

TEST(Persistent, WaitanySeesStartedPersistent) {
  spmd(2, [](Engine& e) {
    if (e.world_rank() == 0) {
      int v = 55;
      ASSERT_EQ(e.send(&v, 1, kInt, 1, 1, kCommWorld), Err::Success);
    } else {
      int buf = 0;
      std::vector<Request> reqs(1, kRequestNull);
      ASSERT_EQ(e.recv_init(&buf, 1, kInt, 0, 1, kCommWorld, &reqs[0]), Err::Success);
      ASSERT_EQ(e.start(&reqs[0]), Err::Success);
      int idx = -1;
      ASSERT_EQ(e.waitany(reqs, &idx, nullptr), Err::Success);
      EXPECT_EQ(idx, 0);
      EXPECT_EQ(buf, 55);
      ASSERT_EQ(e.request_free(&reqs[0]), Err::Success);
    }
  });
}

TEST(Persistent, InitValidatesArguments) {
  spmd(1, [](Engine& e) {
    int buf = 0;
    Request r = kRequestNull;
    EXPECT_EQ(e.send_init(&buf, 1, kInt, 5, 0, kCommWorld, &r), Err::Rank);
    EXPECT_EQ(e.send_init(&buf, -1, kInt, 0, 0, kCommWorld, &r), Err::Count);
    EXPECT_EQ(e.recv_init(&buf, 1, kInt, 0, 0, kCommNull, &r), Err::Comm);
    EXPECT_EQ(e.request_free(&r), Err::Request);  // never created
  });
}

}  // namespace
}  // namespace lwmpi
