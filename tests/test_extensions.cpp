// Semantics tests for the Section-3 proposed MPI extensions: the optimized
// entry points must deliver exactly what their standard counterparts do.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "util.hpp"

namespace lwmpi {
namespace {

using test::spmd;

TEST(ExtGlobal, WorldRankAddressingOnSubComm) {
  spmd(4, [](Engine& e) {
    const int me = e.world_rank();
    Comm evens_odds = kCommNull;
    ASSERT_EQ(e.comm_split(kCommWorld, me % 2, me, &evens_odds), Err::Success);
    // Translate my sub-comm neighbour to a world rank once (setup)...
    Group sub = kGroupNull, world = kGroupNull;
    ASSERT_EQ(e.comm_group(evens_odds, &sub), Err::Success);
    ASSERT_EQ(e.comm_group(kCommWorld, &world), Err::Success);
    const int sub_peer = 1 - e.rank(evens_odds);
    std::array<int, 1> in = {sub_peer};
    std::array<int, 1> out{};
    ASSERT_EQ(e.group_translate_ranks(sub, in, world, out), Err::Success);
    const Rank peer_world = out[0];
    EXPECT_EQ(peer_world, (me + 2) % 4);

    // ...then communicate with the stored world rank (_GLOBAL), still
    // isolated by the sub-communicator's context.
    const int v = 1000 + me;
    Request sreq = kRequestNull;
    ASSERT_EQ(e.isend_global(&v, 1, kInt, peer_world, 3, evens_odds, &sreq), Err::Success);
    int got = 0;
    ASSERT_EQ(e.recv(&got, 1, kInt, sub_peer, 3, evens_odds, nullptr), Err::Success);
    EXPECT_EQ(got, 1000 + ((me + 2) % 4));
    ASSERT_EQ(e.wait(&sreq, nullptr), Err::Success);
    ASSERT_EQ(e.group_free(&sub), Err::Success);
    ASSERT_EQ(e.group_free(&world), Err::Success);
    ASSERT_EQ(e.comm_free(&evens_odds), Err::Success);
  });
}

TEST(ExtGlobal, StatusCarriesCommRankOfSender) {
  spmd(2, [](Engine& e) {
    if (e.world_rank() == 0) {
      const int v = 5;
      Request r = kRequestNull;
      ASSERT_EQ(e.isend_global(&v, 1, kInt, 1, 1, kCommWorld, &r), Err::Success);
      ASSERT_EQ(e.wait(&r, nullptr), Err::Success);
    } else {
      int got = 0;
      Status st;
      ASSERT_EQ(e.recv(&got, 1, kInt, kAnySource, 1, kCommWorld, &st), Err::Success);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(got, 5);
    }
  });
}

TEST(ExtNpn, DeliversLikeIsend) {
  spmd(2, [](Engine& e) {
    const int me = e.world_rank();
    const int v = 40 + me;
    Request sreq = kRequestNull;
    ASSERT_EQ(e.isend_npn(&v, 1, kInt, 1 - me, 2, kCommWorld, &sreq), Err::Success);
    int got = 0;
    ASSERT_EQ(e.recv(&got, 1, kInt, 1 - me, 2, kCommWorld, nullptr), Err::Success);
    EXPECT_EQ(got, 40 + (1 - me));
    ASSERT_EQ(e.wait(&sreq, nullptr), Err::Success);
  });
}

TEST(ExtNpn, ProcNullIsAUserErrorWhenCheckingEnabled) {
  spmd(1, [](Engine& e) {
    const int v = 1;
    Request r = kRequestNull;
    EXPECT_EQ(e.isend_npn(&v, 1, kInt, kProcNull, 0, kCommWorld, &r), Err::Rank);
  });
}

TEST(ExtNoreq, BulkCompletionByCommWaitall) {
  spmd(2, [](Engine& e) {
    const int me = e.world_rank();
    constexpr int kN = 20;
    if (me == 0) {
      std::array<int, kN> vals{};
      for (int i = 0; i < kN; ++i) {
        vals[static_cast<std::size_t>(i)] = i * 3;
        ASSERT_EQ(e.isend_noreq(&vals[static_cast<std::size_t>(i)], 1, kInt, 1,
                                static_cast<Tag>(i), kCommWorld),
                  Err::Success);
      }
      ASSERT_EQ(e.comm_waitall(kCommWorld), Err::Success);
      EXPECT_EQ(e.live_requests(), 0u);  // no user-visible requests were made
    } else {
      for (int i = 0; i < kN; ++i) {
        int got = -1;
        ASSERT_EQ(e.recv(&got, 1, kInt, 0, static_cast<Tag>(i), kCommWorld, nullptr),
                  Err::Success);
        EXPECT_EQ(got, i * 3);
      }
    }
  });
}

TEST(ExtNoreq, RendezvousSizedNoreqCompletes) {
  spmd(2, [](Engine& e) {
    constexpr int kBig = 64 * 1024;  // > eager threshold: exercises the hidden
                                     // request + outstanding counter path
    if (e.world_rank() == 0) {
      std::vector<int> data(kBig, 9);
      ASSERT_EQ(e.isend_noreq(data.data(), kBig, kInt, 1, 1, kCommWorld), Err::Success);
      // The buffer must stay live until comm_waitall returns.
      ASSERT_EQ(e.comm_waitall(kCommWorld), Err::Success);
      EXPECT_EQ(e.live_requests(), 0u);
    } else {
      std::vector<int> data(kBig, 0);
      ASSERT_EQ(e.recv(data.data(), kBig, kInt, 0, 1, kCommWorld, nullptr), Err::Success);
      EXPECT_EQ(data[0], 9);
      EXPECT_EQ(data[kBig - 1], 9);
    }
  });
}

TEST(ExtNoreq, WaitallOnQuietCommReturnsImmediately) {
  spmd(1, [](Engine& e) {
    ASSERT_EQ(e.comm_waitall(kCommWorld), Err::Success);
  });
}

TEST(ExtNomatch, ArrivalOrderDelivery) {
  spmd(2, [](Engine& e) {
    if (e.world_rank() == 0) {
      // Three messages, sent in this order; receiver gets them in arrival
      // order regardless of any tag-like distinctions.
      for (int v : {11, 22, 33}) {
        Request r = kRequestNull;
        ASSERT_EQ(e.isend_nomatch(&v, 1, kInt, 1, kCommWorld, &r), Err::Success);
        ASSERT_EQ(e.wait(&r, nullptr), Err::Success);
      }
    } else {
      for (int expect : {11, 22, 33}) {
        int got = 0;
        Request r = kRequestNull;
        ASSERT_EQ(e.irecv_nomatch(&got, 1, kInt, kCommWorld, &r), Err::Success);
        ASSERT_EQ(e.wait(&r, nullptr), Err::Success);
        EXPECT_EQ(got, expect);
      }
    }
  });
}

TEST(ExtNomatch, MixedSourcesInterleaveByArrival) {
  spmd(3, [](Engine& e) {
    const int me = e.world_rank();
    if (me == 0) {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        int got = 0;
        Request r = kRequestNull;
        ASSERT_EQ(e.irecv_nomatch(&got, 1, kInt, kCommWorld, &r), Err::Success);
        Status st;
        ASSERT_EQ(e.wait(&r, &st), Err::Success);
        sum += got;
        EXPECT_EQ(st.source, got);  // sender rank encoded in payload
      }
      EXPECT_EQ(sum, 3);
    } else {
      int v = me;
      Request r = kRequestNull;
      ASSERT_EQ(e.isend_nomatch(&v, 1, kInt, 0, kCommWorld, &r), Err::Success);
      ASSERT_EQ(e.wait(&r, nullptr), Err::Success);
    }
  });
}

TEST(ExtNomatch, IsolatedFromFullMatchTraffic) {
  spmd(2, [](Engine& e) {
    if (e.world_rank() == 0) {
      int tagged = 5;
      ASSERT_EQ(e.send(&tagged, 1, kInt, 1, 9, kCommWorld), Err::Success);
      int nm = 6;
      Request r = kRequestNull;
      ASSERT_EQ(e.isend_nomatch(&nm, 1, kInt, 1, kCommWorld, &r), Err::Success);
      ASSERT_EQ(e.wait(&r, nullptr), Err::Success);
    } else {
      // The nomatch receive must take only the arrival-order message even
      // though the tagged message arrived first.
      int got_nm = 0;
      Request r = kRequestNull;
      ASSERT_EQ(e.irecv_nomatch(&got_nm, 1, kInt, kCommWorld, &r), Err::Success);
      ASSERT_EQ(e.wait(&r, nullptr), Err::Success);
      EXPECT_EQ(got_nm, 6);
      int got_tagged = 0;
      ASSERT_EQ(e.recv(&got_tagged, 1, kInt, 0, 9, kCommWorld, nullptr), Err::Success);
      EXPECT_EQ(got_tagged, 5);
    }
  });
}

TEST(ExtAllOpts, MinimalPathDelivers) {
  spmd(2, [](Engine& e) {
    ASSERT_EQ(e.comm_dup_predefined(kCommWorld, kComm1), Err::Success);
    const int me = e.world_rank();
    if (me == 0) {
      const int v = 4242;
      ASSERT_EQ(e.isend_all_opts(&v, 1, kInt, 1, kComm1), Err::Success);
      ASSERT_EQ(e.comm_waitall(kComm1), Err::Success);
    } else {
      int got = 0;
      Request r = kRequestNull;
      ASSERT_EQ(e.irecv_nomatch(&got, 1, kInt, kComm1, &r), Err::Success);
      ASSERT_EQ(e.wait(&r, nullptr), Err::Success);
      EXPECT_EQ(got, 4242);
    }
    ASSERT_EQ(e.barrier(kCommWorld), Err::Success);
  });
}

TEST(ExtAllOpts, LargeMessageFallsBackToRendezvous) {
  spmd(2, [](Engine& e) {
    ASSERT_EQ(e.comm_dup_predefined(kCommWorld, kComm2), Err::Success);
    constexpr int kBig = 32 * 1024;
    if (e.world_rank() == 0) {
      std::vector<double> big(kBig, 2.5);
      ASSERT_EQ(e.isend_all_opts(big.data(), kBig, kDouble, 1, kComm2), Err::Success);
      ASSERT_EQ(e.comm_waitall(kComm2), Err::Success);
    } else {
      std::vector<double> got(kBig, 0.0);
      Request r = kRequestNull;
      ASSERT_EQ(e.irecv_nomatch(got.data(), kBig, kDouble, kComm2, &r), Err::Success);
      ASSERT_EQ(e.wait(&r, nullptr), Err::Success);
      EXPECT_EQ(got[0], 2.5);
      EXPECT_EQ(got[kBig - 1], 2.5);
    }
    ASSERT_EQ(e.barrier(kCommWorld), Err::Success);
  });
}

}  // namespace
}  // namespace lwmpi
