// Lock-free queue and packet-pool substrate tests.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/mpsc_queue.hpp"
#include "runtime/packet.hpp"
#include "runtime/spsc_ring.hpp"

namespace lwmpi::rt {
namespace {

// ---------------------------------------------------------------------------
// SpscRing
// ---------------------------------------------------------------------------

TEST(SpscRing, StartsEmpty) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size_approx(), 0u);
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRing, PushPopSingle) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.try_push(42));
  EXPECT_FALSE(ring.empty());
  auto v = ring.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, FifoOrder) {
  SpscRing<int> ring(16);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(ring.try_push(i));
  for (int i = 0; i < 10; ++i) {
    auto v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(SpscRing, CapacityRoundedToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 7u);  // bit_ceil(5)=8, minus the sentinel slot
}

TEST(SpscRing, RejectsWhenFull) {
  SpscRing<int> ring(4);  // capacity 3
  int pushed = 0;
  while (ring.try_push(pushed)) ++pushed;
  EXPECT_EQ(pushed, 3);
  ASSERT_TRUE(ring.try_pop().has_value());
  EXPECT_TRUE(ring.try_push(99));  // slot freed
}

TEST(SpscRing, WrapsAround) {
  SpscRing<int> ring(4);
  for (int round = 0; round < 20; ++round) {
    EXPECT_TRUE(ring.try_push(round));
    auto v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, round);
  }
}

TEST(SpscRing, ConcurrentProducerConsumer) {
  constexpr int kCount = 20000;
  SpscRing<int> ring(64);
  std::atomic<long long> sum{0};
  std::thread consumer([&] {
    int got = 0;
    while (got < kCount) {
      if (auto v = ring.try_pop()) {
        sum += *v;
        ++got;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (int i = 0; i < kCount; ++i) {
    while (!ring.try_push(i)) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_EQ(sum.load(), static_cast<long long>(kCount) * (kCount - 1) / 2);
}

// ---------------------------------------------------------------------------
// MpscQueue
// ---------------------------------------------------------------------------

struct Node : MpscNode {
  int value = 0;
};

TEST(MpscQueue, StartsEmpty) {
  MpscQueue<Node> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pop(), nullptr);
}

TEST(MpscQueue, SingleThreadFifo) {
  MpscQueue<Node> q;
  std::vector<std::unique_ptr<Node>> nodes;
  for (int i = 0; i < 10; ++i) {
    nodes.push_back(std::make_unique<Node>());
    nodes.back()->value = i;
    q.push(nodes.back().get());
  }
  EXPECT_FALSE(q.empty());
  for (int i = 0; i < 10; ++i) {
    Node* n = q.pop();
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->value, i);
  }
  EXPECT_EQ(q.pop(), nullptr);
  EXPECT_TRUE(q.empty());
}

TEST(MpscQueue, InterleavedPushPop) {
  MpscQueue<Node> q;
  std::array<Node, 6> nodes;
  q.push(&nodes[0]);
  q.push(&nodes[1]);
  EXPECT_EQ(q.pop(), &nodes[0]);
  q.push(&nodes[2]);
  EXPECT_EQ(q.pop(), &nodes[1]);
  EXPECT_EQ(q.pop(), &nodes[2]);
  EXPECT_EQ(q.pop(), nullptr);
  q.push(&nodes[3]);
  EXPECT_EQ(q.pop(), &nodes[3]);
}

TEST(MpscQueue, MultiProducerStress) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  MpscQueue<Node> q;
  std::vector<std::vector<std::unique_ptr<Node>>> storage(kProducers);
  for (auto& v : storage) {
    v.reserve(kPerProducer);
    for (int i = 0; i < kPerProducer; ++i) v.push_back(std::make_unique<Node>());
  }

  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        storage[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)]->value =
            t * kPerProducer + i;
        q.push(storage[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)].get());
      }
    });
  }
  // Consume concurrently; verify per-producer FIFO.
  std::vector<int> last_seen(kProducers, -1);
  int total = 0;
  while (total < kProducers * kPerProducer) {
    Node* n = q.pop();
    if (n == nullptr) {
      std::this_thread::yield();
      continue;
    }
    const int producer = n->value / kPerProducer;
    const int seq = n->value % kPerProducer;
    EXPECT_GT(seq, last_seen[static_cast<std::size_t>(producer)]);
    last_seen[static_cast<std::size_t>(producer)] = seq;
    ++total;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(q.pop(), nullptr);
}

// ---------------------------------------------------------------------------
// PacketPool
// ---------------------------------------------------------------------------

TEST(PacketPool, RecyclesPackets) {
  PacketPool::tl_drain();
  Packet* a = PacketPool::alloc();
  a->hdr.tag = 77;
  a->set_payload("abc", 3);
  PacketPool::free(a);
  EXPECT_EQ(PacketPool::tl_pool_size(), 1u);
  Packet* b = PacketPool::alloc();
  EXPECT_EQ(b, a);  // same storage reused
  EXPECT_EQ(b->hdr.tag, 0);  // header reset
  EXPECT_TRUE(b->payload.empty());
  PacketPool::free(b);
  PacketPool::tl_drain();
}

TEST(PacketPool, FreeNullIsNoop) {
  PacketPool::free(nullptr);  // must not crash
}

TEST(PacketPool, PayloadRoundTrip) {
  Packet* p = PacketPool::alloc();
  const char data[] = "hello lwmpi";
  p->set_payload(data, sizeof(data));
  ASSERT_EQ(p->payload.size(), sizeof(data));
  EXPECT_EQ(std::memcmp(p->bytes().data(), data, sizeof(data)), 0);
  p->set_payload(nullptr, 0);
  EXPECT_TRUE(p->payload.empty());
  PacketPool::free(p);
}

}  // namespace
}  // namespace lwmpi::rt
