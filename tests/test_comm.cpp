// Communicator and group management integration tests.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "util.hpp"

namespace lwmpi {
namespace {

using test::spmd;

TEST(Comm, WorldAndSelfAreValid) {
  spmd(3, [](Engine& e) {
    EXPECT_EQ(e.size(kCommWorld), 3);
    EXPECT_EQ(e.rank(kCommWorld), e.world_rank());
    EXPECT_EQ(e.size(kCommSelf), 1);
    EXPECT_EQ(e.rank(kCommSelf), 0);
    EXPECT_TRUE(e.comm_valid(kCommWorld));
    EXPECT_FALSE(e.comm_valid(kCommNull));
    EXPECT_FALSE(e.comm_valid(kComm1));  // predefined slots start unpopulated
  });
}

TEST(Comm, DupIsolatesTraffic) {
  spmd(2, [](Engine& e) {
    Comm dup = kCommNull;
    ASSERT_EQ(e.comm_dup(kCommWorld, &dup), Err::Success);
    ASSERT_TRUE(e.comm_valid(dup));
    EXPECT_EQ(e.size(dup), 2);
    EXPECT_EQ(e.rank(dup), e.world_rank());

    const int me = e.world_rank();
    // Same (source, tag) on both communicators: each receive must get the
    // message from its own communicator.
    int on_world = 100 + me;
    int on_dup = 200 + me;
    Request reqs[2];
    ASSERT_EQ(e.isend(&on_world, 1, kInt, 1 - me, 5, kCommWorld, &reqs[0]), Err::Success);
    ASSERT_EQ(e.isend(&on_dup, 1, kInt, 1 - me, 5, dup, &reqs[1]), Err::Success);
    int got_dup = 0, got_world = 0;
    ASSERT_EQ(e.recv(&got_dup, 1, kInt, 1 - me, 5, dup, nullptr), Err::Success);
    ASSERT_EQ(e.recv(&got_world, 1, kInt, 1 - me, 5, kCommWorld, nullptr), Err::Success);
    EXPECT_EQ(got_dup, 200 + (1 - me));
    EXPECT_EQ(got_world, 100 + (1 - me));
    ASSERT_EQ(e.waitall(reqs, {}), Err::Success);
    ASSERT_EQ(e.comm_free(&dup), Err::Success);
    EXPECT_EQ(dup, kCommNull);
  });
}

TEST(Comm, SplitByParity) {
  spmd(4, [](Engine& e) {
    const int me = e.world_rank();
    Comm half = kCommNull;
    ASSERT_EQ(e.comm_split(kCommWorld, me % 2, me, &half), Err::Success);
    ASSERT_TRUE(e.comm_valid(half));
    EXPECT_EQ(e.size(half), 2);
    EXPECT_EQ(e.rank(half), me / 2);
    // Sum within my half: evens 0+2, odds 1+3.
    int sum = 0;
    ASSERT_EQ(e.allreduce(&me, &sum, 1, kInt, ReduceOp::Sum, half), Err::Success);
    EXPECT_EQ(sum, me % 2 == 0 ? 2 : 4);
    ASSERT_EQ(e.comm_free(&half), Err::Success);
  });
}

TEST(Comm, SplitHonorsKeyOrder) {
  spmd(4, [](Engine& e) {
    const int me = e.world_rank();
    Comm rev = kCommNull;
    // Single color, key reverses the order.
    ASSERT_EQ(e.comm_split(kCommWorld, 0, -me, &rev), Err::Success);
    EXPECT_EQ(e.rank(rev), 3 - me);
    ASSERT_EQ(e.comm_free(&rev), Err::Success);
  });
}

TEST(Comm, SplitWithUndefinedColorYieldsNull) {
  spmd(3, [](Engine& e) {
    const int me = e.world_rank();
    Comm sub = kCommNull;
    const int color = me == 0 ? kUndefined : 1;
    ASSERT_EQ(e.comm_split(kCommWorld, color, 0, &sub), Err::Success);
    if (me == 0) {
      EXPECT_EQ(sub, kCommNull);
    } else {
      EXPECT_EQ(e.size(sub), 2);
      int sum = 0;
      ASSERT_EQ(e.allreduce(&me, &sum, 1, kInt, ReduceOp::Sum, sub), Err::Success);
      EXPECT_EQ(sum, 3);
      ASSERT_EQ(e.comm_free(&sub), Err::Success);
    }
  });
}

TEST(Comm, NestedSplitOfSplit) {
  spmd(8, [](Engine& e) {
    const int me = e.world_rank();
    Comm half = kCommNull;
    ASSERT_EQ(e.comm_split(kCommWorld, me / 4, me, &half), Err::Success);
    Comm quarter = kCommNull;
    ASSERT_EQ(e.comm_split(half, e.rank(half) / 2, 0, &quarter), Err::Success);
    EXPECT_EQ(e.size(quarter), 2);
    int sum = 0;
    ASSERT_EQ(e.allreduce(&me, &sum, 1, kInt, ReduceOp::Sum, quarter), Err::Success);
    const int base = (me / 2) * 2;
    EXPECT_EQ(sum, base + base + 1);
    ASSERT_EQ(e.comm_free(&quarter), Err::Success);
    ASSERT_EQ(e.comm_free(&half), Err::Success);
  });
}

TEST(Comm, CannotFreeWorldOrSelf) {
  spmd(1, [](Engine& e) {
    Comm w = kCommWorld;
    EXPECT_EQ(e.comm_free(&w), Err::Comm);
    Comm s = kCommSelf;
    EXPECT_EQ(e.comm_free(&s), Err::Comm);
  });
}

TEST(Comm, PredefinedHandleDup) {
  spmd(2, [](Engine& e) {
    ASSERT_EQ(e.comm_dup_predefined(kCommWorld, kComm1), Err::Success);
    EXPECT_TRUE(e.comm_valid(kComm1));
    EXPECT_EQ(e.size(kComm1), 2);
    const int me = e.world_rank();
    int sum = 0;
    ASSERT_EQ(e.allreduce(&me, &sum, 1, kInt, ReduceOp::Sum, kComm1), Err::Success);
    EXPECT_EQ(sum, 1);
    // Duplicate into an already-populated predefined slot fails.
    EXPECT_EQ(e.comm_dup_predefined(kCommWorld, kComm1), Err::Comm);
    // A dynamic handle is not a predefined slot.
    EXPECT_EQ(e.comm_dup_predefined(kCommWorld, kCommWorld), Err::Comm);
    Comm c1 = kComm1;
    ASSERT_EQ(e.comm_free(&c1), Err::Success);
    ASSERT_EQ(e.barrier(kCommWorld), Err::Success);
    // Freed slots can be repopulated.
    ASSERT_EQ(e.comm_dup_predefined(kCommWorld, kComm1), Err::Success);
  });
}

TEST(Comm, GroupReflectsCommMembership) {
  spmd(4, [](Engine& e) {
    Group g = kGroupNull;
    ASSERT_EQ(e.comm_group(kCommWorld, &g), Err::Success);
    int size = 0, rank = kUndefined;
    ASSERT_EQ(e.group_size(g, &size), Err::Success);
    ASSERT_EQ(e.group_rank(g, &rank), Err::Success);
    EXPECT_EQ(size, 4);
    EXPECT_EQ(rank, e.world_rank());
    ASSERT_EQ(e.group_free(&g), Err::Success);
    EXPECT_EQ(g, kGroupNull);
  });
}

TEST(Comm, GroupInclAndTranslate) {
  spmd(4, [](Engine& e) {
    Group world = kGroupNull;
    ASSERT_EQ(e.comm_group(kCommWorld, &world), Err::Success);
    const std::array<int, 2> picks = {3, 1};
    Group sub = kGroupNull;
    ASSERT_EQ(e.group_incl(world, picks, &sub), Err::Success);
    int size = 0;
    ASSERT_EQ(e.group_size(sub, &size), Err::Success);
    EXPECT_EQ(size, 2);

    // Translate sub-group ranks back into the world group.
    const std::array<int, 2> in = {0, 1};
    std::array<int, 2> out{};
    ASSERT_EQ(e.group_translate_ranks(sub, in, world, out), Err::Success);
    EXPECT_EQ(out[0], 3);
    EXPECT_EQ(out[1], 1);

    // And the reverse: world rank 0 is not in sub.
    const std::array<int, 3> win = {0, 1, 3};
    std::array<int, 3> wout{};
    ASSERT_EQ(e.group_translate_ranks(world, win, sub, wout), Err::Success);
    EXPECT_EQ(wout[0], kUndefined);
    EXPECT_EQ(wout[1], 1);
    EXPECT_EQ(wout[2], 0);
    ASSERT_EQ(e.group_free(&sub), Err::Success);
    ASSERT_EQ(e.group_free(&world), Err::Success);
  });
}

TEST(Comm, TranslateProcNullPassesThrough) {
  spmd(2, [](Engine& e) {
    Group g = kGroupNull;
    ASSERT_EQ(e.comm_group(kCommWorld, &g), Err::Success);
    const std::array<int, 1> in = {kProcNull};
    std::array<int, 1> out{};
    ASSERT_EQ(e.group_translate_ranks(g, in, g, out), Err::Success);
    EXPECT_EQ(out[0], kProcNull);
    ASSERT_EQ(e.group_free(&g), Err::Success);
  });
}

TEST(Comm, SplitCommUsesCompressedMapWhenPossible) {
  // Even-rank split of a contiguous world is a strided map (no O(P) table):
  // verified indirectly through traffic correctness on the new communicator.
  spmd(4, [](Engine& e) {
    const int me = e.world_rank();
    Comm sub = kCommNull;
    ASSERT_EQ(e.comm_split(kCommWorld, me % 2, me, &sub), Err::Success);
    const int sub_me = e.rank(sub);
    const int sub_p = e.size(sub);
    int token = me;
    int got = -1;
    // Ring shift within the sub-communicator.
    const Rank to = static_cast<Rank>((sub_me + 1) % sub_p);
    const Rank from = static_cast<Rank>((sub_me - 1 + sub_p) % sub_p);
    ASSERT_EQ(e.sendrecv(&token, 1, kInt, to, 1, &got, 1, kInt, from, 1, sub, nullptr),
              Err::Success);
    // My predecessor in the sub-communicator has world rank me-2 (mod 4, same
    // parity).
    EXPECT_EQ(got, (me + 2) % 4);
    ASSERT_EQ(e.comm_free(&sub), Err::Success);
  });
}

}  // namespace
}  // namespace lwmpi
