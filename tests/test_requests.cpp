// Request-family completion operations: waitany / testany / testall, plus
// request lifecycle edge cases.
#include <gtest/gtest.h>

#include <vector>

#include "util.hpp"

namespace lwmpi {
namespace {

using test::spmd;

TEST(Waitany, CompletesTheReadyOne) {
  spmd(2, [](Engine& e) {
    if (e.world_rank() == 0) {
      int token = 0;
      ASSERT_EQ(e.recv(&token, 1, kInt, 1, 99, kCommWorld, nullptr), Err::Success);
      int v = 5;
      ASSERT_EQ(e.send(&v, 1, kInt, 1, 2, kCommWorld), Err::Success);  // tag 2 only
    } else {
      int a = 0, b = 0;
      std::vector<Request> reqs(2, kRequestNull);
      ASSERT_EQ(e.irecv(&a, 1, kInt, 0, 1, kCommWorld, &reqs[0]), Err::Success);
      ASSERT_EQ(e.irecv(&b, 1, kInt, 0, 2, kCommWorld, &reqs[1]), Err::Success);
      int token = 1;
      ASSERT_EQ(e.send(&token, 1, kInt, 0, 99, kCommWorld), Err::Success);
      int idx = -1;
      Status st;
      ASSERT_EQ(e.waitany(reqs, &idx, &st), Err::Success);
      EXPECT_EQ(idx, 1);  // only the tag-2 receive can complete
      EXPECT_EQ(b, 5);
      EXPECT_EQ(reqs[1], kRequestNull);
      EXPECT_NE(reqs[0], kRequestNull);  // still pending
      ASSERT_EQ(e.cancel(&reqs[0]), Err::Success);
      ASSERT_EQ(e.wait(&reqs[0], nullptr), Err::Success);
    }
  });
}

TEST(Waitany, AllNullReturnsUndefined) {
  spmd(1, [](Engine& e) {
    std::vector<Request> reqs(3, kRequestNull);
    int idx = 0;
    Status st;
    ASSERT_EQ(e.waitany(reqs, &idx, &st), Err::Success);
    EXPECT_EQ(idx, kUndefined);
  });
}

TEST(Testany, ReportsNotReadyWithoutBlocking) {
  spmd(1, [](Engine& e) {
    int v = 0;
    std::vector<Request> reqs(1, kRequestNull);
    ASSERT_EQ(e.irecv(&v, 1, kInt, 0, 1, kCommWorld, &reqs[0]), Err::Success);
    int idx = -2;
    bool flag = true;
    ASSERT_EQ(e.testany(reqs, &idx, &flag, nullptr), Err::Success);
    EXPECT_FALSE(flag);
    EXPECT_EQ(idx, kUndefined);
    // Satisfy it via a self-send, then testany must reap it.
    int out = 8;
    Request sr = kRequestNull;
    ASSERT_EQ(e.isend(&out, 1, kInt, 0, 1, kCommWorld, &sr), Err::Success);
    ASSERT_EQ(e.wait(&sr, nullptr), Err::Success);
    flag = false;
    while (!flag) {
      ASSERT_EQ(e.testany(reqs, &idx, &flag, nullptr), Err::Success);
    }
    EXPECT_EQ(idx, 0);
    EXPECT_EQ(v, 8);
  });
}

TEST(Testall, OnlyTrueWhenAllComplete) {
  spmd(2, [](Engine& e) {
    if (e.world_rank() == 0) {
      int x = 1, y = 2;
      ASSERT_EQ(e.send(&x, 1, kInt, 1, 1, kCommWorld), Err::Success);
      int token = 0;
      ASSERT_EQ(e.recv(&token, 1, kInt, 1, 99, kCommWorld, nullptr), Err::Success);
      ASSERT_EQ(e.send(&y, 1, kInt, 1, 2, kCommWorld), Err::Success);
    } else {
      int a = 0, b = 0;
      std::vector<Request> reqs(2, kRequestNull);
      ASSERT_EQ(e.irecv(&a, 1, kInt, 0, 1, kCommWorld, &reqs[0]), Err::Success);
      ASSERT_EQ(e.irecv(&b, 1, kInt, 0, 2, kCommWorld, &reqs[1]), Err::Success);
      // First message can arrive; second is gated on our token.
      bool flag = true;
      // Wait until the first receive has landed, then check testall is still
      // false because the second is pending.
      while (a == 0) e.progress();
      ASSERT_EQ(e.testall(reqs, &flag, {}), Err::Success);
      EXPECT_FALSE(flag);
      int token = 1;
      ASSERT_EQ(e.send(&token, 1, kInt, 0, 99, kCommWorld), Err::Success);
      while (!flag) {
        ASSERT_EQ(e.testall(reqs, &flag, {}), Err::Success);
      }
      EXPECT_EQ(a, 1);
      EXPECT_EQ(b, 2);
      EXPECT_EQ(reqs[0], kRequestNull);
      EXPECT_EQ(reqs[1], kRequestNull);
      EXPECT_EQ(e.live_requests(), 0u);
    }
  });
}

TEST(Testall, EmptyAndNullArraysAreComplete) {
  spmd(1, [](Engine& e) {
    bool flag = false;
    ASSERT_EQ(e.testall({}, &flag, {}), Err::Success);
    EXPECT_TRUE(flag);
    std::vector<Request> nulls(4, kRequestNull);
    flag = false;
    ASSERT_EQ(e.testall(nulls, &flag, {}), Err::Success);
    EXPECT_TRUE(flag);
  });
}

TEST(Waitany, DrivesAManyToOneFunnel) {
  spmd(4, [](Engine& e) {
    if (e.world_rank() == 0) {
      // Collect one message from each peer, in completion order.
      std::vector<int> bufs(3, 0);
      std::vector<Request> reqs(3, kRequestNull);
      for (int i = 0; i < 3; ++i) {
        ASSERT_EQ(e.irecv(&bufs[static_cast<std::size_t>(i)], 1, kInt,
                          static_cast<Rank>(i + 1), 1, kCommWorld,
                          &reqs[static_cast<std::size_t>(i)]),
                  Err::Success);
      }
      int seen = 0;
      int sum = 0;
      while (seen < 3) {
        int idx = -1;
        ASSERT_EQ(e.waitany(reqs, &idx, nullptr), Err::Success);
        ASSERT_GE(idx, 0);
        sum += bufs[static_cast<std::size_t>(idx)];
        ++seen;
      }
      EXPECT_EQ(sum, 10 + 20 + 30);
    } else {
      const int v = 10 * e.world_rank();
      ASSERT_EQ(e.send(&v, 1, kInt, 0, 1, kCommWorld), Err::Success);
    }
  });
}

TEST(Requests, PoolReusesSlots) {
  spmd(1, [](Engine& e) {
    for (int round = 0; round < 50; ++round) {
      int out = round, in = -1;
      Request rr = kRequestNull, sr = kRequestNull;
      ASSERT_EQ(e.irecv(&in, 1, kInt, 0, 3, kCommWorld, &rr), Err::Success);
      ASSERT_EQ(e.isend(&out, 1, kInt, 0, 3, kCommWorld, &sr), Err::Success);
      ASSERT_EQ(e.wait(&sr, nullptr), Err::Success);
      ASSERT_EQ(e.wait(&rr, nullptr), Err::Success);
      EXPECT_EQ(in, round);
    }
    EXPECT_EQ(e.live_requests(), 0u);
  });
}

}  // namespace
}  // namespace lwmpi
