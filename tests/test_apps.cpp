// Application-kernel tests: the mini-apps behind Figures 7 and 8 and the
// stencil example must be numerically sound, not just fast.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/md.hpp"
#include "apps/nek.hpp"
#include "apps/stencil.hpp"
#include "util.hpp"

namespace lwmpi {
namespace {

using test::fast_opts;
using test::spmd;

// ---------------------------------------------------------------------------
// Stencil
// ---------------------------------------------------------------------------

TEST(Stencil, ConvergesTowardBoundaryValue) {
  // With all boundaries at u=1, the Jacobi iteration converges to u=1
  // everywhere; the residual must shrink with more iterations.
  spmd(4, [](Engine& e) {
    apps::StencilConfig cfg;
    cfg.nx = 32;
    cfg.ny = 32;
    cfg.px = 2;
    cfg.py = 2;
    cfg.iters = 5;
    const auto r5 = apps::run_stencil(e, kCommWorld, cfg);
    ASSERT_TRUE(r5.converged_layout);
    cfg.iters = 60;
    const auto r60 = apps::run_stencil(e, kCommWorld, cfg);
    EXPECT_LT(r60.residual, r5.residual);
    EXPECT_LT(r60.residual, 0.5);
  });
}

TEST(Stencil, ProcNullAndNpnModesAgree) {
  spmd(4, [](Engine& e) {
    apps::StencilConfig a;
    a.nx = 24;
    a.ny = 24;
    a.px = 2;
    a.py = 2;
    a.iters = 20;
    a.mode = apps::StencilMode::ProcNull;
    apps::StencilConfig b = a;
    b.mode = apps::StencilMode::NpnBranch;
    const auto ra = apps::run_stencil(e, kCommWorld, a);
    const auto rb = apps::run_stencil(e, kCommWorld, b);
    // Identical numerics, different halo entry points.
    EXPECT_DOUBLE_EQ(ra.residual, rb.residual);
    // ProcNull mode always issues 4 sends per exchange; NPN only real
    // neighbours (corner ranks in a 2x2 grid have exactly 2). There are
    // iters + 1 exchanges (one final refresh before the residual).
    EXPECT_EQ(ra.halo_sends, 4u * 21u);
    EXPECT_EQ(rb.halo_sends, 2u * 21u);
  });
}

TEST(Stencil, SingleRankDegenerateCase) {
  spmd(1, [](Engine& e) {
    apps::StencilConfig cfg;
    cfg.nx = 16;
    cfg.ny = 16;
    cfg.px = 1;
    cfg.py = 1;
    cfg.iters = 50;
    const auto r = apps::run_stencil(e, kCommWorld, cfg);
    ASSERT_TRUE(r.converged_layout);
    EXPECT_LT(r.residual, 0.2);
  });
}

TEST(Stencil, RejectsBadLayout) {
  spmd(2, [](Engine& e) {
    apps::StencilConfig cfg;
    cfg.px = 3;  // 3 != comm size 2
    cfg.py = 1;
    const auto r = apps::run_stencil(e, kCommWorld, cfg);
    EXPECT_FALSE(r.converged_layout);
  });
}

TEST(Stencil, MatchesSerialReference) {
  // 2-rank decomposition must be bit-identical to the 1-rank run (Jacobi is
  // deterministic and the exchange is exact).
  double serial_res = 0.0;
  spmd(1, [&](Engine& e) {
    apps::StencilConfig cfg;
    cfg.nx = 16;
    cfg.ny = 16;
    cfg.px = 1;
    cfg.py = 1;
    cfg.iters = 13;
    serial_res = apps::run_stencil(e, kCommWorld, cfg).residual;
  });
  double par_res = -1.0;
  spmd(2, [&](Engine& e) {
    apps::StencilConfig cfg;
    cfg.nx = 16;
    cfg.ny = 16;
    cfg.px = 2;
    cfg.py = 1;
    cfg.iters = 13;
    const auto r = apps::run_stencil(e, kCommWorld, cfg);
    if (e.world_rank() == 0) par_res = r.residual;
  });
  EXPECT_DOUBLE_EQ(par_res, serial_res);
}

// ---------------------------------------------------------------------------
// Nek model problem (Figure 7 kernel)
// ---------------------------------------------------------------------------

TEST(Nek, CgDrivesResidualDown) {
  spmd(2, [](Engine& e) {
    apps::NekConfig cfg;
    cfg.order = 3;
    cfg.elems_total = 8;
    cfg.cg_iters = 2;
    const auto r2 = apps::run_nek_cg(e, kCommWorld, cfg);
    ASSERT_TRUE(r2.valid);
    cfg.cg_iters = 25;
    const auto r25 = apps::run_nek_cg(e, kCommWorld, cfg);
    ASSERT_TRUE(r25.valid);
    EXPECT_LT(r25.residual, r2.residual);
    EXPECT_LT(r25.residual, 1e-6);  // diagonal-dominant system: fast CG
  });
}

TEST(Nek, PointCountMatchesFormula) {
  spmd(2, [](Engine& e) {
    apps::NekConfig cfg;
    cfg.order = 4;      // 5 points/dim, 125/element, 25/face
    cfg.elems_total = 6;
    cfg.cg_iters = 1;
    const auto r = apps::run_nek_cg(e, kCommWorld, cfg);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.points_total, 6 * 125 - 5 * 25);
    EXPECT_DOUBLE_EQ(r.points_per_rank, r.points_total / 2.0);
  });
}

TEST(Nek, InvalidElementSplitRejected) {
  spmd(2, [](Engine& e) {
    apps::NekConfig cfg;
    cfg.elems_total = 7;  // not divisible by 2 ranks
    const auto r = apps::run_nek_cg(e, kCommWorld, cfg);
    EXPECT_FALSE(r.valid);
  });
}

TEST(Nek, SerialAndParallelResidualsAgree) {
  double serial = -1.0;
  spmd(1, [&](Engine& e) {
    apps::NekConfig cfg;
    cfg.order = 3;
    cfg.elems_total = 8;
    cfg.cg_iters = 10;
    serial = apps::run_nek_cg(e, kCommWorld, cfg).residual;
  });
  double parallel = -2.0;
  spmd(4, [&](Engine& e) {
    apps::NekConfig cfg;
    cfg.order = 3;
    cfg.elems_total = 8;
    cfg.cg_iters = 10;
    const auto r = apps::run_nek_cg(e, kCommWorld, cfg);
    if (e.world_rank() == 0) parallel = r.residual;
  });
  EXPECT_NEAR(parallel, serial, 1e-9 + std::abs(serial) * 1e-9);
}

// ---------------------------------------------------------------------------
// MD mini-app (Figure 8 kernel)
// ---------------------------------------------------------------------------

TEST(Md, RunsAndConservesAtoms) {
  spmd(2, [](Engine& e) {
    apps::MdConfig cfg;
    cfg.px = 2;
    cfg.cells_x = 2;
    cfg.cells_y = 2;
    cfg.cells_z = 2;
    cfg.steps = 5;
    const auto r = apps::run_md(e, kCommWorld, cfg);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.atoms_per_rank, 4 * 2 * 2 * 2);
    EXPECT_EQ(r.atoms_total, 2 * r.atoms_per_rank);
    EXPECT_GT(r.steps_per_sec, 0.0);
    EXPECT_GT(r.ghost_atoms_exchanged, 0u);
  });
}

TEST(Md, EnergyIsFiniteAndBound) {
  spmd(2, [](Engine& e) {
    apps::MdConfig cfg;
    cfg.px = 2;
    cfg.cells_x = 3;
    cfg.cells_y = 3;
    cfg.cells_z = 3;
    cfg.steps = 10;
    cfg.temperature = 0.05;
    const auto r = apps::run_md(e, kCommWorld, cfg);
    ASSERT_TRUE(r.valid);
    EXPECT_TRUE(std::isfinite(r.kinetic_energy));
    EXPECT_TRUE(std::isfinite(r.potential_energy));
    // Near-equilibrium FCC LJ crystal: potential energy per atom is negative
    // (bulk LJ fcc cohesive energy is about -8.6 eps; small periodic boxes
    // see extra image shells, so allow a deeper bound).
    EXPECT_LT(r.potential_energy / static_cast<double>(r.atoms_total), 0.0);
    EXPECT_GT(r.potential_energy / static_cast<double>(r.atoms_total), -30.0);
    EXPECT_GE(r.kinetic_energy, 0.0);
    EXPECT_LT(r.kinetic_energy / static_cast<double>(r.atoms_total), 1.0);
  });
}

TEST(Md, BadProcessGridRejected) {
  spmd(2, [](Engine& e) {
    apps::MdConfig cfg;
    cfg.px = 3;  // 3 != 2 ranks
    const auto r = apps::run_md(e, kCommWorld, cfg);
    EXPECT_FALSE(r.valid);
  });
}

TEST(Md, DeterministicAcrossRuns) {
  // Same configuration, same world size: energies are bit-identical (the
  // initialization is hash-based, not time-seeded).
  double e1 = 0, e2 = 1;
  for (double* out : {&e1, &e2}) {
    spmd(2, [out](Engine& e) {
      apps::MdConfig cfg;
      cfg.px = 2;
      cfg.cells_x = 2;
      cfg.cells_y = 2;
      cfg.cells_z = 2;
      cfg.steps = 3;
      const auto r = apps::run_md(e, kCommWorld, cfg);
      if (e.world_rank() == 0) *out = r.potential_energy;
    });
  }
  EXPECT_EQ(e1, e2);
}

}  // namespace
}  // namespace lwmpi
