// Cross-module integration tests: larger worlds, lock contention, device
// interop with every feature class in one run.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "util.hpp"

namespace lwmpi {
namespace {

using test::fast_opts;
using test::spmd;

TEST(Scale, SixteenRankCollectives) {
  spmd(16, [](Engine& e) {
    const int me = e.world_rank();
    int sum = 0;
    ASSERT_EQ(e.allreduce(&me, &sum, 1, kInt, ReduceOp::Sum, kCommWorld), Err::Success);
    EXPECT_EQ(sum, 120);
    std::vector<int> all(16, -1);
    ASSERT_EQ(e.allgather(&me, 1, kInt, all.data(), 1, kInt, kCommWorld), Err::Success);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
    ASSERT_EQ(e.barrier(kCommWorld), Err::Success);
  });
}

TEST(Scale, SixteenRankRing) {
  spmd(16, [](Engine& e) {
    const int me = e.world_rank();
    const int p = e.world_size();
    int token = me;
    for (int hop = 0; hop < p; ++hop) {
      int got = -1;
      ASSERT_EQ(e.sendrecv(&token, 1, kInt, static_cast<Rank>((me + 1) % p), 1, &got, 1,
                           kInt, static_cast<Rank>((me - 1 + p) % p), 1, kCommWorld,
                           nullptr),
                Err::Success);
      token = got;
    }
    EXPECT_EQ(token, me);  // back to the start after p hops
  });
}

TEST(Locks, ExclusiveContention) {
  // Several origins increment the same counter under exclusive locks; the
  // lock must serialize read-modify-write through plain put/get.
  for (DeviceKind dev : {DeviceKind::Ch4, DeviceKind::Orig}) {
    spmd(
        4,
        [](Engine& e) {
          const int me = e.world_rank();
          std::vector<int> mem(1, 0);
          Win win = kWinNull;
          ASSERT_EQ(e.win_create(mem.data(), sizeof(int), sizeof(int), kCommWorld, &win),
                    Err::Success);
          ASSERT_EQ(e.barrier(kCommWorld), Err::Success);
          constexpr int kIncrements = 5;
          if (me != 0) {
            for (int i = 0; i < kIncrements; ++i) {
              ASSERT_EQ(e.win_lock(LockType::Exclusive, 0, win), Err::Success);
              int v = 0;
              ASSERT_EQ(e.get(&v, 1, kInt, 0, 0, 1, kInt, win), Err::Success);
              ASSERT_EQ(e.win_flush(0, win), Err::Success);
              ++v;
              ASSERT_EQ(e.put(&v, 1, kInt, 0, 0, 1, kInt, win), Err::Success);
              ASSERT_EQ(e.win_unlock(0, win), Err::Success);
            }
          }
          ASSERT_EQ(e.barrier(kCommWorld), Err::Success);
          if (me == 0) {
            EXPECT_EQ(mem[0], 3 * kIncrements);
          }
          ASSERT_EQ(e.win_free(&win), Err::Success);
        },
        fast_opts(dev));
  }
}

TEST(Interop, EverythingInOneWorld) {
  // One world exercising pt2pt, persistent requests, cart topology, derived
  // datatypes, v-collectives, hints, and RMA together.
  spmd(4, [](Engine& e) {
    const int me = e.world_rank();

    // Cartesian ring.
    const std::array<int, 1> dims = {4};
    const std::array<bool, 1> periods = {true};
    Comm ring = kCommNull;
    ASSERT_EQ(e.cart_create(kCommWorld, dims, periods, false, &ring), Err::Success);
    Rank left = kUndefined, right = kUndefined;
    ASSERT_EQ(e.cart_shift(ring, 0, 1, &left, &right), Err::Success);

    // Persistent exchange of a strided column.
    Datatype col = kDatatypeNull;
    ASSERT_EQ(e.type_vector(4, 1, 4, kInt, &col), Err::Success);
    ASSERT_EQ(e.type_commit(&col), Err::Success);
    std::array<int, 16> mat{};
    std::iota(mat.begin(), mat.end(), me * 100);
    std::array<int, 4> ghost{};
    std::vector<Request> pr(2, kRequestNull);
    ASSERT_EQ(e.recv_init(ghost.data(), 4, kInt, left, 1, ring, &pr[0]), Err::Success);
    ASSERT_EQ(e.send_init(&mat[1], 1, col, right, 1, ring, &pr[1]), Err::Success);
    for (int round = 0; round < 3; ++round) {
      ASSERT_EQ(e.startall(pr), Err::Success);
      ASSERT_EQ(e.waitall(pr, {}), Err::Success);
      const int lrank = (me + 3) % 4;
      EXPECT_EQ(ghost[0], lrank * 100 + 1);
      EXPECT_EQ(ghost[3], lrank * 100 + 13);
    }
    ASSERT_EQ(e.request_free(&pr[0]), Err::Success);
    ASSERT_EQ(e.request_free(&pr[1]), Err::Success);
    ASSERT_EQ(e.type_free(&col), Err::Success);

    // Gatherv of rank-dependent contributions on the ring comm.
    std::vector<int> mine(static_cast<std::size_t>(me + 1), me);
    const std::array<int, 4> counts = {1, 2, 3, 4};
    const std::array<int, 4> displs = {0, 1, 3, 6};
    std::vector<int> gathered(10, -1);
    ASSERT_EQ(e.gatherv(mine.data(), me + 1, kInt, gathered.data(), counts, displs, kInt, 0,
                        ring),
              Err::Success);
    if (e.rank(ring) == 0) {
      EXPECT_EQ(gathered[0], 0);
      EXPECT_EQ(gathered[6], 3);
      EXPECT_EQ(gathered[9], 3);
    }

    // RMA epilogue: everyone stamps its slot in rank 0's window.
    std::vector<int> wmem(4, -1);
    Win win = kWinNull;
    ASSERT_EQ(e.win_create(wmem.data(), wmem.size() * sizeof(int), sizeof(int), ring, &win),
              Err::Success);
    ASSERT_EQ(e.win_fence(win), Err::Success);
    const int stamp = 1000 + me;
    ASSERT_EQ(e.put(&stamp, 1, kInt, 0, static_cast<std::uint64_t>(me), 1, kInt, win),
              Err::Success);
    ASSERT_EQ(e.win_fence(win), Err::Success);
    if (e.rank(ring) == 0) {
      for (int i = 0; i < 4; ++i) EXPECT_EQ(wmem[static_cast<std::size_t>(i)], 1000 + i);
    }
    ASSERT_EQ(e.win_free(&win), Err::Success);
    ASSERT_EQ(e.comm_free(&ring), Err::Success);
  });
}

TEST(Interop, BlackholeWorldStillComputesLocally) {
  // On the infinitely-fast (blackhole) profile, self-contained operations
  // (direct RMA to self, local completion) still function -- the setup the
  // Figure 5/6 harnesses depend on.
  WorldOptions o;
  o.profile = net::infinite();
  World w(1, o);
  w.run([](Engine& e) {
    std::vector<int> mem(4, 0);
    Win win = kWinNull;
    ASSERT_EQ(e.win_create(mem.data(), mem.size() * sizeof(int), sizeof(int), kCommWorld,
                           &win),
              Err::Success);
    ASSERT_EQ(e.win_fence(win), Err::Success);
    const int v = 9;
    ASSERT_EQ(e.put(&v, 1, kInt, 0, 1, 1, kInt, win), Err::Success);
    ASSERT_EQ(e.win_fence(win), Err::Success);
    EXPECT_EQ(mem[1], 9);  // direct path: no transmission needed
    ASSERT_EQ(e.win_free(&win), Err::Success);
    // Eager self-sends are dropped at injection; the send still completes
    // locally and no request leaks.
    char b = 1;
    Request r = kRequestNull;
    ASSERT_EQ(e.isend(&b, 1, kChar, 0, 0, kCommWorld, &r), Err::Success);
    ASSERT_EQ(e.wait(&r, nullptr), Err::Success);
    EXPECT_EQ(e.live_requests(), 0u);
    EXPECT_GT(e.world().fabric().dropped(), 0u);
  });
}

TEST(Interop, StatusCountElems) {
  spmd(2, [](Engine& e) {
    if (e.world_rank() == 0) {
      double xs[5] = {1, 2, 3, 4, 5};
      ASSERT_EQ(e.send(xs, 5, kDouble, 1, 1, kCommWorld), Err::Success);
    } else {
      double buf[8];
      Status st;
      ASSERT_EQ(e.recv(buf, 8, kDouble, 0, 1, kCommWorld, &st), Err::Success);
      EXPECT_EQ(st.byte_count, 40u);
      EXPECT_EQ(st.count_elems(sizeof(double)), 5u);
      EXPECT_EQ(st.count_elems(0), 0u);  // degenerate type size
    }
  });
}

}  // namespace
}  // namespace lwmpi
