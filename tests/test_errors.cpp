// Error-checking build feature: every validation fires when enabled and is
// skipped (garbage in, undefined-but-not-validated out is NOT exercised;
// we only verify the checks don't reject valid calls) when disabled.
#include <gtest/gtest.h>

#include "util.hpp"

namespace lwmpi {
namespace {

using test::fast_opts;

void with_checking(const std::function<void(Engine&)>& fn) {
  WorldOptions o = fast_opts();
  o.build = BuildConfig::dflt();
  World w(2, o);
  w.run([&](Engine& e) {
    if (e.world_rank() == 0) fn(e);
  });
}

TEST(Errors, InvalidCommRejected) {
  with_checking([](Engine& e) {
    int v = 0;
    Request r = kRequestNull;
    EXPECT_EQ(e.isend(&v, 1, kInt, 0, 0, kCommNull, &r), Err::Comm);
    EXPECT_EQ(e.isend(&v, 1, kInt, 0, 0, 0xdeadbeefu, &r), Err::Comm);
    EXPECT_EQ(e.irecv(&v, 1, kInt, 0, 0, kComm3, &r), Err::Comm);  // unpopulated slot
  });
}

TEST(Errors, RankOutOfRangeRejected) {
  with_checking([](Engine& e) {
    int v = 0;
    Request r = kRequestNull;
    EXPECT_EQ(e.isend(&v, 1, kInt, 2, 0, kCommWorld, &r), Err::Rank);
    EXPECT_EQ(e.isend(&v, 1, kInt, -7, 0, kCommWorld, &r), Err::Rank);
    // kAnySource is not a valid *destination*.
    EXPECT_EQ(e.isend(&v, 1, kInt, kAnySource, 0, kCommWorld, &r), Err::Rank);
    // ...but is a valid receive source, and PROC_NULL is valid both ways.
    EXPECT_EQ(e.isend(&v, 1, kInt, kProcNull, 0, kCommWorld, &r), Err::Success);
    Status st;
    EXPECT_EQ(e.wait(&r, &st), Err::Success);
  });
}

TEST(Errors, TagOutOfRangeRejected) {
  with_checking([](Engine& e) {
    int v = 0;
    Request r = kRequestNull;
    EXPECT_EQ(e.isend(&v, 1, kInt, 1, -1, kCommWorld, &r), Err::Tag);
    EXPECT_EQ(e.isend(&v, 1, kInt, 1, kTagUb + 1, kCommWorld, &r), Err::Tag);
    // kAnyTag is only valid on the receive side.
    EXPECT_EQ(e.isend(&v, 1, kInt, 1, kAnyTag, kCommWorld, &r), Err::Tag);
    EXPECT_EQ(e.irecv(&v, 1, kInt, 1, kAnyTag, kCommWorld, &r), Err::Success);
    EXPECT_EQ(e.cancel(&r), Err::Success);
    EXPECT_EQ(e.wait(&r, nullptr), Err::Success);
  });
}

TEST(Errors, NegativeCountRejected) {
  with_checking([](Engine& e) {
    int v = 0;
    Request r = kRequestNull;
    EXPECT_EQ(e.isend(&v, -1, kInt, 1, 0, kCommWorld, &r), Err::Count);
  });
}

TEST(Errors, NullBufferRejectedUnlessZeroCount) {
  with_checking([](Engine& e) {
    Request r = kRequestNull;
    EXPECT_EQ(e.isend(nullptr, 1, kInt, 1, 0, kCommWorld, &r), Err::Buffer);
    EXPECT_EQ(e.isend(nullptr, 0, kInt, kProcNull, 0, kCommWorld, &r), Err::Success);
    EXPECT_EQ(e.wait(&r, nullptr), Err::Success);
  });
}

TEST(Errors, UncommittedDatatypeRejected) {
  with_checking([](Engine& e) {
    Datatype t = kDatatypeNull;
    ASSERT_EQ(e.type_contiguous(2, kInt, &t), Err::Success);
    int v[2] = {0, 0};
    Request r = kRequestNull;
    EXPECT_EQ(e.isend(v, 1, t, 1, 0, kCommWorld, &r), Err::Datatype);
    ASSERT_EQ(e.type_commit(&t), Err::Success);
    EXPECT_EQ(e.isend(v, 1, t, kProcNull, 0, kCommWorld, &r), Err::Success);
    EXPECT_EQ(e.wait(&r, nullptr), Err::Success);
    ASSERT_EQ(e.type_free(&t), Err::Success);
  });
}

TEST(Errors, InvalidDatatypeHandleRejected) {
  with_checking([](Engine& e) {
    int v = 0;
    Request r = kRequestNull;
    EXPECT_EQ(e.isend(&v, 1, kDatatypeNull, 1, 0, kCommWorld, &r), Err::Datatype);
    EXPECT_EQ(e.isend(&v, 1, 0x12345678u, 1, 0, kCommWorld, &r), Err::Datatype);
  });
}

TEST(Errors, DisabledCheckingSkipsValidation) {
  // With checking off, an out-of-range *tag* (harmless: it only affects match
  // bits) passes straight through to the device and the message still
  // delivers; this is the no-err build behaving as advertised.
  WorldOptions o = fast_opts();
  o.build = BuildConfig::no_err();
  World w(2, o);
  w.run([&](Engine& e) {
    // Out-of-range tags are representable in the header; both sides must
    // simply agree on the value.
    if (e.world_rank() == 0) {
      int v = 9;
      ASSERT_EQ(e.send(&v, 1, kInt, 1, kTagUb + 5, kCommWorld), Err::Success);
    } else {
      int got = 0;
      ASSERT_EQ(e.recv(&got, 1, kInt, 0, kTagUb + 5, kCommWorld, nullptr), Err::Success);
      EXPECT_EQ(got, 9);
    }
  });
}

TEST(Errors, ErrorStringsAreHumanReadable) {
  EXPECT_STREQ(error_string(Err::Success), "success");
  EXPECT_STREQ(error_string(Err::Rank), "rank out of range for communicator");
  EXPECT_STREQ(error_string(Err::Truncate), "message truncated on receive");
  EXPECT_STREQ(error_string(Err::RmaSync), "RMA call outside an access epoch");
}

TEST(Errors, WaitOnBogusRequestRejected) {
  with_checking([](Engine& e) {
    Request r = make_handle(HandleKind::Request, 12345);
    EXPECT_EQ(e.wait(&r, nullptr), Err::Request);
    Request bad = 0x7777u;
    EXPECT_EQ(e.wait(&bad, nullptr), Err::Request);
  });
}

}  // namespace
}  // namespace lwmpi
