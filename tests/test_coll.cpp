// Collective tests, parameterized over rank counts (including non-powers of
// two), reduction ops, and counts, on both devices.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "util.hpp"

namespace lwmpi {
namespace {

using test::fast_opts;
using test::spmd;

class CollRanks : public ::testing::TestWithParam<int> {};

TEST_P(CollRanks, BarrierCompletes) {
  spmd(GetParam(), [](Engine& e) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(e.barrier(kCommWorld), Err::Success);
    }
  });
}

TEST_P(CollRanks, BcastFromEveryRoot) {
  const int p = GetParam();
  spmd(p, [p](Engine& e) {
    for (Rank root = 0; root < p; ++root) {
      int v = e.world_rank() == root ? 1000 + root : -1;
      ASSERT_EQ(e.bcast(&v, 1, kInt, root, kCommWorld), Err::Success);
      EXPECT_EQ(v, 1000 + root);
    }
  });
}

TEST_P(CollRanks, AllreduceSum) {
  const int p = GetParam();
  spmd(p, [p](Engine& e) {
    const int me = e.world_rank();
    int out = 0;
    ASSERT_EQ(e.allreduce(&me, &out, 1, kInt, ReduceOp::Sum, kCommWorld), Err::Success);
    EXPECT_EQ(out, p * (p - 1) / 2);
  });
}

TEST_P(CollRanks, AllreduceMaxMinVector) {
  const int p = GetParam();
  spmd(p, [p](Engine& e) {
    const double me = e.world_rank();
    double in[2] = {me, -me};
    double out[2] = {0, 0};
    ASSERT_EQ(e.allreduce(in, out, 2, kDouble, ReduceOp::Max, kCommWorld), Err::Success);
    EXPECT_EQ(out[0], p - 1);
    EXPECT_EQ(out[1], 0.0);
    ASSERT_EQ(e.allreduce(in, out, 2, kDouble, ReduceOp::Min, kCommWorld), Err::Success);
    EXPECT_EQ(out[0], 0.0);
    EXPECT_EQ(out[1], -(p - 1));
  });
}

TEST_P(CollRanks, ReduceToRoot) {
  const int p = GetParam();
  spmd(p, [p](Engine& e) {
    const int me = e.world_rank();
    const int contrib = me + 1;
    int out = -1;
    const Rank root = static_cast<Rank>(p - 1);
    ASSERT_EQ(e.reduce(&contrib, &out, 1, kInt, ReduceOp::Prod, root, kCommWorld),
              Err::Success);
    if (me == root) {
      int expect = 1;
      for (int i = 1; i <= p; ++i) expect *= i;
      EXPECT_EQ(out, expect);  // p!
    } else {
      EXPECT_EQ(out, -1);  // untouched on non-roots
    }
  });
}

TEST_P(CollRanks, GatherCollectsInRankOrder) {
  const int p = GetParam();
  spmd(p, [p](Engine& e) {
    const int me = e.world_rank();
    const int mine[2] = {me * 2, me * 2 + 1};
    std::vector<int> all(static_cast<std::size_t>(2 * p), -1);
    ASSERT_EQ(e.gather(mine, 2, kInt, all.data(), 2, kInt, 0, kCommWorld), Err::Success);
    if (me == 0) {
      for (int i = 0; i < 2 * p; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
    }
  });
}

TEST_P(CollRanks, AllgatherEveryoneSeesAll) {
  const int p = GetParam();
  spmd(p, [p](Engine& e) {
    const int me = e.world_rank();
    std::vector<int> all(static_cast<std::size_t>(p), -1);
    ASSERT_EQ(e.allgather(&me, 1, kInt, all.data(), 1, kInt, kCommWorld), Err::Success);
    for (int i = 0; i < p; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
  });
}

TEST_P(CollRanks, ScatterDistributesBlocks) {
  const int p = GetParam();
  spmd(p, [p](Engine& e) {
    const int me = e.world_rank();
    std::vector<int> src;
    if (me == 1 % p) {
      src.resize(static_cast<std::size_t>(3 * p));
      std::iota(src.begin(), src.end(), 0);
    }
    int mine[3] = {-1, -1, -1};
    ASSERT_EQ(e.scatter(src.data(), 3, kInt, mine, 3, kInt, 1 % p, kCommWorld),
              Err::Success);
    EXPECT_EQ(mine[0], me * 3);
    EXPECT_EQ(mine[2], me * 3 + 2);
  });
}

TEST_P(CollRanks, AlltoallTransposes) {
  const int p = GetParam();
  spmd(p, [p](Engine& e) {
    const int me = e.world_rank();
    std::vector<int> send(static_cast<std::size_t>(p));
    std::vector<int> recv(static_cast<std::size_t>(p), -1);
    for (int i = 0; i < p; ++i) send[static_cast<std::size_t>(i)] = me * 100 + i;
    ASSERT_EQ(e.alltoall(send.data(), 1, kInt, recv.data(), 1, kInt, kCommWorld),
              Err::Success);
    for (int i = 0; i < p; ++i) EXPECT_EQ(recv[static_cast<std::size_t>(i)], i * 100 + me);
  });
}

TEST_P(CollRanks, ScanIsInclusivePrefix) {
  const int p = GetParam();
  spmd(p, [](Engine& e) {
    const int me = e.world_rank();
    const int mine = me + 1;
    int out = 0;
    ASSERT_EQ(e.scan(&mine, &out, 1, kInt, ReduceOp::Sum, kCommWorld), Err::Success);
    EXPECT_EQ(out, (me + 1) * (me + 2) / 2);
  });
  (void)p;
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollRanks, ::testing::Values(1, 2, 3, 4, 5, 8));

class CollOps : public ::testing::TestWithParam<ReduceOp> {};

TEST_P(CollOps, AllreduceIntOpsAgreeWithSerial) {
  const ReduceOp op = GetParam();
  constexpr int p = 4;
  spmd(p, [op](Engine& e) {
    const int me = e.world_rank();
    const int mine = me + 2;  // 2,3,4,5
    int out = 0;
    ASSERT_EQ(e.allreduce(&mine, &out, 1, kInt, op, kCommWorld), Err::Success);
    int expect = 2;
    for (int i = 1; i < p; ++i) {
      const int v = i + 2;
      switch (op) {
        case ReduceOp::Sum: expect += v; break;
        case ReduceOp::Prod: expect *= v; break;
        case ReduceOp::Max: expect = std::max(expect, v); break;
        case ReduceOp::Min: expect = std::min(expect, v); break;
        case ReduceOp::LAnd: expect = expect && v; break;
        case ReduceOp::LOr: expect = expect || v; break;
        case ReduceOp::BAnd: expect &= v; break;
        case ReduceOp::BOr: expect |= v; break;
        case ReduceOp::BXor: expect ^= v; break;
        default: break;
      }
    }
    EXPECT_EQ(out, expect);
  });
}

INSTANTIATE_TEST_SUITE_P(Ops, CollOps,
                         ::testing::Values(ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Max,
                                           ReduceOp::Min, ReduceOp::LAnd, ReduceOp::LOr,
                                           ReduceOp::BAnd, ReduceOp::BOr, ReduceOp::BXor));

TEST(Coll, LargeCountAllreduce) {
  spmd(4, [](Engine& e) {
    constexpr int kN = 10000;
    std::vector<double> mine(kN, 1.0);
    std::vector<double> out(kN, 0.0);
    ASSERT_EQ(e.allreduce(mine.data(), out.data(), kN, kDouble, ReduceOp::Sum, kCommWorld),
              Err::Success);
    EXPECT_EQ(out[0], 4.0);
    EXPECT_EQ(out[kN - 1], 4.0);
  });
}

TEST(Coll, BcastLargeMessageUsesRendezvous) {
  spmd(3, [](Engine& e) {
    std::vector<int> data(32 * 1024, 0);  // 128 KiB > eager threshold
    if (e.world_rank() == 0) {
      std::iota(data.begin(), data.end(), 0);
    }
    ASSERT_EQ(e.bcast(data.data(), static_cast<int>(data.size()), kInt, 0, kCommWorld),
              Err::Success);
    EXPECT_EQ(data[12345], 12345);
    EXPECT_EQ(data.back(), static_cast<int>(data.size()) - 1);
  });
}

TEST(Coll, WorksOnOrigDevice) {
  spmd(
      4,
      [](Engine& e) {
        const int me = e.world_rank();
        int out = 0;
        ASSERT_EQ(e.allreduce(&me, &out, 1, kInt, ReduceOp::Sum, kCommWorld), Err::Success);
        EXPECT_EQ(out, 6);
        ASSERT_EQ(e.barrier(kCommWorld), Err::Success);
      },
      fast_opts(DeviceKind::Orig));
}

TEST(Coll, InvalidRootRejected) {
  spmd(2, [](Engine& e) {
    int v = 0;
    EXPECT_EQ(e.bcast(&v, 1, kInt, 5, kCommWorld), Err::Root);
    EXPECT_EQ(e.bcast(&v, 1, kInt, -1, kCommWorld), Err::Root);
    // Keep the ranks in lockstep after the error returns.
    ASSERT_EQ(e.barrier(kCommWorld), Err::Success);
  });
}

TEST(Coll, DerivedTypeRejectedForReduction) {
  spmd(2, [](Engine& e) {
    Datatype t = kDatatypeNull;
    ASSERT_EQ(e.type_contiguous(2, kInt, &t), Err::Success);
    ASSERT_EQ(e.type_commit(&t), Err::Success);
    int in[2] = {1, 2};
    int out[2];
    EXPECT_EQ(e.allreduce(in, out, 1, t, ReduceOp::Sum, kCommWorld), Err::Datatype);
    ASSERT_EQ(e.barrier(kCommWorld), Err::Success);
  });
}

TEST(Coll, ConcurrentWithPt2ptTraffic) {
  // A user pt2pt message with a tag colliding with internal collective tags
  // must not disturb the collective (separate context plane).
  spmd(2, [](Engine& e) {
    const int me = e.world_rank();
    int user = 777 + me;
    Request sreq = kRequestNull;
    ASSERT_EQ(e.isend(&user, 1, kInt, 1 - me, /*tag=*/1, kCommWorld, &sreq), Err::Success);
    int sum = 0;
    ASSERT_EQ(e.allreduce(&me, &sum, 1, kInt, ReduceOp::Sum, kCommWorld), Err::Success);
    EXPECT_EQ(sum, 1);
    int got = 0;
    ASSERT_EQ(e.recv(&got, 1, kInt, 1 - me, 1, kCommWorld, nullptr), Err::Success);
    EXPECT_EQ(got, 777 + (1 - me));
    ASSERT_EQ(e.wait(&sreq, nullptr), Err::Success);
  });
}

}  // namespace
}  // namespace lwmpi
