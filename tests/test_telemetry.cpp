// Telemetry plane (obs/cvar.hpp + obs/sampler.hpp): cvar registry semantics
// (enumeration, scope enforcement, env binding), histogram snapshot/delta
// boundary behavior, the sampler time series and its exports, SLO alerting
// into the trace ring, the watchdog timeline embed, and -- under the
// "telemetry" label the TSan preset includes -- the races that matter:
// sampler start/stop against hot rank threads, ring overwrite under a 4-VCI
// send loop, and cvar mutation mid-run.
//
// Cvars are process-global, so every test that writes one saves and restores
// it; the env-binding test ends with a reload that re-seeds pure defaults.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/cvar.hpp"
#include "obs/histogram.hpp"
#include "obs/pvar.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "util.hpp"

namespace lwmpi {
namespace {

// RAII save/restore for one numeric cvar (value only; the overridden flag is
// sticky by design, and every restore below writes the pre-test value back so
// later Startup consumers see unchanged numbers).
class CvarGuard {
 public:
  explicit CvarGuard(obs::Cv v) : v_(v), saved_(obs::cvar(v)) {}
  ~CvarGuard() { obs::cvar_set(v_, saved_); }

 private:
  obs::Cv v_;
  std::int64_t saved_;
};

std::uint64_t read_pvar(Engine& e, const char* name) {
  obs::PvarSession s;
  EXPECT_EQ(obs::LWMPI_T_pvar_session_create(e, &s), Err::Success);
  const int idx = obs::LWMPI_T_pvar_index(name);
  EXPECT_GE(idx, 0) << "unknown pvar " << name;
  std::uint64_t v = 0;
  EXPECT_EQ(obs::LWMPI_T_pvar_read(s, idx, &v), Err::Success);
  obs::LWMPI_T_pvar_session_free(&s);
  return v;
}

// --- cvar registry ----------------------------------------------------------

TEST(Cvar, RegistryEnumerates) {
  ASSERT_EQ(obs::LWMPI_T_cvar_num(), obs::kNumCvars);
  std::set<std::string> names;
  for (int i = 0; i < obs::kNumCvars; ++i) {
    obs::CvarInfo info;
    ASSERT_EQ(obs::LWMPI_T_cvar_get_info(i, &info), Err::Success);
    EXPECT_FALSE(info.name.empty());
    EXPECT_FALSE(info.desc.empty());
    EXPECT_TRUE(names.insert(std::string(info.name)).second)
        << "duplicate cvar name " << info.name;
    // Name -> index is the inverse of get_info.
    EXPECT_EQ(obs::LWMPI_T_cvar_index(info.name), i);
  }
  EXPECT_TRUE(names.count("sampler_interval_ms"));
  EXPECT_TRUE(names.count("netmod_default"));
  EXPECT_TRUE(names.count("slo_credit_stall_pct"));

  obs::CvarInfo info;
  EXPECT_EQ(obs::LWMPI_T_cvar_get_info(-1, &info), Err::Arg);
  EXPECT_EQ(obs::LWMPI_T_cvar_get_info(obs::kNumCvars, &info), Err::Arg);
  EXPECT_EQ(obs::LWMPI_T_cvar_get_info(0, nullptr), Err::Arg);
  EXPECT_EQ(obs::LWMPI_T_cvar_index("no_such_cvar"), -1);

  std::int64_t v = 0;
  EXPECT_EQ(obs::LWMPI_T_cvar_read(-1, &v), Err::Arg);
  EXPECT_EQ(obs::LWMPI_T_cvar_read(obs::kNumCvars, &v), Err::Arg);
  EXPECT_EQ(obs::LWMPI_T_cvar_read(0, nullptr), Err::Arg);
  EXPECT_EQ(obs::LWMPI_T_cvar_write(obs::kNumCvars, 1), Err::Arg);
}

TEST(Cvar, ScopeAndTypeEnforcement) {
  // Constant scope: readable echo of kMaxVcis, writes rejected.
  const int max_vcis = obs::LWMPI_T_cvar_index("max_vcis");
  ASSERT_GE(max_vcis, 0);
  std::int64_t v = 0;
  ASSERT_EQ(obs::LWMPI_T_cvar_read(max_vcis, &v), Err::Success);
  EXPECT_EQ(v, kMaxVcis);
  EXPECT_EQ(obs::LWMPI_T_cvar_write(max_vcis, 99), Err::Arg);
  ASSERT_EQ(obs::LWMPI_T_cvar_read(max_vcis, &v), Err::Success);
  EXPECT_EQ(v, kMaxVcis);

  // String/numeric access must not cross.
  const int netmod = obs::LWMPI_T_cvar_index("netmod_default");
  const int interval = obs::LWMPI_T_cvar_index("sampler_interval_ms");
  ASSERT_GE(netmod, 0);
  ASSERT_GE(interval, 0);
  EXPECT_EQ(obs::LWMPI_T_cvar_write(netmod, 3), Err::Arg);
  EXPECT_EQ(obs::LWMPI_T_cvar_read(netmod, &v), Err::Arg);
  std::string s;
  EXPECT_EQ(obs::LWMPI_T_cvar_read_str(interval, &s), Err::Arg);
  EXPECT_EQ(obs::LWMPI_T_cvar_write_str(interval, "fast"), Err::Arg);

  // String round-trip through the MPI_T-style surface and the typed helper.
  const std::string saved = obs::cvar_str(obs::Cv::NetmodDefault);
  ASSERT_EQ(obs::LWMPI_T_cvar_write_str(netmod, "rdma"), Err::Success);
  ASSERT_EQ(obs::LWMPI_T_cvar_read_str(netmod, &s), Err::Success);
  EXPECT_EQ(s, "rdma");
  EXPECT_EQ(obs::cvar_str(obs::Cv::NetmodDefault), "rdma");
  EXPECT_TRUE(obs::cvar_overridden(obs::Cv::NetmodDefault));
  ASSERT_EQ(obs::LWMPI_T_cvar_write_str(netmod, saved), Err::Success);

  // The report lists every cvar by name.
  const std::string report = obs::cvar_report();
  EXPECT_NE(report.find("sampler_interval_ms"), std::string::npos);
  EXPECT_NE(report.find("max_vcis"), std::string::npos);
  EXPECT_NE(report.find("constant"), std::string::npos);
}

TEST(Cvar, EnvBinding) {
  EXPECT_EQ(obs::cvar_env_name(obs::Cv::SamplerIntervalMs),
            "LWMPI_CVAR_SAMPLER_INTERVAL_MS");

  ::setenv("LWMPI_CVAR_SAMPLER_INTERVAL_MS", "37", 1);
  ::setenv("LWMPI_CVAR_SLO_UNEXPECTED_DEPTH", "junk", 1);  // ignored: not numeric
  ::setenv("LWMPI_CVAR_WATCHDOG_POLL_MS", "12x", 1);       // ignored: trailing junk
  ::setenv("LWMPI_CVAR_MAX_VCIS", "99", 1);                // ignored: Constant scope
  obs::detail::cvar_reload_env_for_testing();

  EXPECT_EQ(obs::cvar(obs::Cv::SamplerIntervalMs), 37);
  EXPECT_TRUE(obs::cvar_overridden(obs::Cv::SamplerIntervalMs));
  EXPECT_EQ(obs::cvar(obs::Cv::SloUnexpectedDepth), 0);
  EXPECT_FALSE(obs::cvar_overridden(obs::Cv::SloUnexpectedDepth));
  EXPECT_EQ(obs::cvar(obs::Cv::WatchdogPollMs), 20);
  EXPECT_FALSE(obs::cvar_overridden(obs::Cv::WatchdogPollMs));
  EXPECT_EQ(obs::cvar(obs::Cv::MaxVcis), kMaxVcis);
  EXPECT_FALSE(obs::cvar_overridden(obs::Cv::MaxVcis));

  // Dropping the binding restores the default on the next reload (and wipes
  // any overridden flags earlier tests left behind -- deliberate hygiene).
  ::unsetenv("LWMPI_CVAR_SAMPLER_INTERVAL_MS");
  ::unsetenv("LWMPI_CVAR_SLO_UNEXPECTED_DEPTH");
  ::unsetenv("LWMPI_CVAR_WATCHDOG_POLL_MS");
  ::unsetenv("LWMPI_CVAR_MAX_VCIS");
  obs::detail::cvar_reload_env_for_testing();
  EXPECT_EQ(obs::cvar(obs::Cv::SamplerIntervalMs), 100);
  EXPECT_FALSE(obs::cvar_overridden(obs::Cv::SamplerIntervalMs));
}

// --- histogram snapshot/delta -----------------------------------------------

TEST(Histogram, SnapshotDeltaBoundaries) {
  // Bucket 0 is unreachable: record(0) lands in bucket 1 (the |1 floor), so
  // delta arithmetic never has to treat bucket 0 specially.
  EXPECT_EQ(obs::LatencyHist::bucket_of(0), 1);
  EXPECT_EQ(obs::LatencyHist::bucket_of(1), 1);
  EXPECT_EQ(obs::LatencyHist::bucket_of(2), 2);
  // Top bucket clamps: anything >= 2^47 ns.
  EXPECT_EQ(obs::LatencyHist::bucket_of(std::uint64_t{1} << 47), obs::kLatBuckets - 1);
  EXPECT_EQ(obs::LatencyHist::bucket_of(~std::uint64_t{0}), obs::kLatBuckets - 1);

  obs::LatencyHist h;
  h.record(0);
  h.record(~std::uint64_t{0});
  const obs::LatSnapshot before = h.snapshot();
  EXPECT_EQ(before.count, 2u);
  EXPECT_EQ(before.bucket[1], 1u);
  EXPECT_EQ(before.bucket[obs::kLatBuckets - 1], 1u);
  EXPECT_EQ(before.max_ns, ~std::uint64_t{0});

  h.record(1000);
  h.record(0);  // bucket 1 again: delta at the bottom boundary
  const obs::LatSnapshot after = h.snapshot();
  const obs::LatSnapshot d = after.delta(before);
  EXPECT_EQ(d.count, 2u);
  EXPECT_EQ(d.bucket[1], 1u);
  EXPECT_EQ(d.bucket[obs::LatencyHist::bucket_of(1000)], 1u);
  EXPECT_EQ(d.bucket[obs::kLatBuckets - 1], 0u);
  // max_ns keeps the newer (cumulative) value: an upper bound for the clamp.
  EXPECT_EQ(d.max_ns, after.max_ns);

  // Saturating subtraction: a stale "newer" snapshot can never wrap.
  const obs::LatSnapshot swapped = before.delta(after);
  EXPECT_EQ(swapped.bucket[obs::LatencyHist::bucket_of(1000)], 0u);

  // Percentile on the delta reflects only the interval's samples.
  EXPECT_LE(d.percentile(0.5), 1u);
  EXPECT_GE(d.percentile(1.0), 512u);  // the 1000ns sample's bucket bound
}

// --- sampler time series ----------------------------------------------------

TEST(Sampler, TicksHistoryAndSequence) {
  CvarGuard g(obs::Cv::SamplerIntervalMs);
  obs::cvar_set(obs::Cv::SamplerIntervalMs, 1000);  // keep the thread quiet
  World w(2, test::fast_opts());
  obs::Sampler sampler(w);

  w.run([&](Engine& e) {
    int v = e.world_rank();
    if (e.world_rank() == 0) {
      for (int i = 0; i < 50; ++i) {
        ASSERT_EQ(e.send(&v, 1, kInt, 1, i, kCommWorld), Err::Success);
      }
    } else {
      for (int i = 0; i < 50; ++i) {
        ASSERT_EQ(e.recv(&v, 1, kInt, 0, i, kCommWorld, nullptr), Err::Success);
      }
    }
    e.barrier(kCommWorld);
    if (e.world_rank() == 0) sampler.sample_now();
    e.barrier(kCommWorld);
  });

  sampler.sample_now();
  EXPECT_GE(sampler.ticks(), 2u);
  for (Rank r = 0; r < 2; ++r) {
    const std::vector<obs::RankSample> hist = sampler.history(r);
    ASSERT_GE(hist.size(), 2u);
    for (std::size_t i = 1; i < hist.size(); ++i) {
      EXPECT_GT(hist[i].seq, hist[i - 1].seq);  // monotone tick numbers
      EXPECT_GE(hist[i].t_ns, hist[i - 1].t_ns);
    }
    for (const obs::RankSample& s : hist) {
      EXPECT_EQ(s.rank, r);
      EXPECT_EQ(s.interval_ns, 1000u * 1'000'000u);
      EXPECT_EQ(s.lanes.size(),
                static_cast<std::size_t>(w.engine(r).num_vcis()));
    }
  }
  // 50 sends happened between construction (baseline) and the first tick;
  // the cumulative raw baselines must have turned them into a nonzero rate
  // in at least one interval on the sending rank.
  double total_rate = 0.0;
  for (const obs::RankSample& s : sampler.history(0)) total_rate += s.sends_per_s;
  EXPECT_GT(total_rate, 0.0);
}

TEST(Sampler, RuntimeIntervalChangeVisibleInJsonl) {
  CvarGuard g(obs::Cv::SamplerIntervalMs);
  World w(1, test::fast_opts());
  obs::Sampler sampler(w);

  // Acceptance criterion: a runtime cvar write observably changes the
  // cadence recorded in the exported series. sample_now() echoes the live
  // cvar into interval_ns, so two writes must yield two distinct echoes.
  obs::cvar_set(obs::Cv::SamplerIntervalMs, 10);
  sampler.sample_now();
  obs::cvar_set(obs::Cv::SamplerIntervalMs, 40);
  sampler.sample_now();

  std::ostringstream os;
  sampler.export_jsonl(os);
  const std::string jsonl = os.str();
  EXPECT_NE(jsonl.find("\"interval_ns\":10000000"), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("\"interval_ns\":40000000"), std::string::npos) << jsonl;

  // Every line is one JSON object for one (rank, interval).
  std::istringstream lines(jsonl);
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    ++n;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"rank\":0"), std::string::npos);
  }
  EXPECT_GE(n, 2u);
}

TEST(Sampler, SloAlertFiresAndLandsInTraceRing) {
  CvarGuard gi(obs::Cv::SamplerIntervalMs);
  CvarGuard gd(obs::Cv::SloUnexpectedDepth);
  obs::cvar_set(obs::Cv::SamplerIntervalMs, 1000);
  obs::cvar_set(obs::Cv::SloUnexpectedDepth, 2);  // fire when depth > 2

  WorldOptions o = test::fast_opts();
  o.build.trace = true;
  World w(2, o);
  obs::trace::reset_all();
  obs::Sampler sampler(w);

  w.run([&](Engine& e) {
    std::uint64_t v = 7;
    if (e.world_rank() == 0) {
      // Three eager sends rank 1 has not posted receives for: they must pile
      // up on its unexpected queue. Distinct last tag marks "all arrived"
      // (per-lane delivery is FIFO).
      ASSERT_EQ(e.send(&v, 1, kUint64, 1, 5, kCommWorld), Err::Success);
      ASSERT_EQ(e.send(&v, 1, kUint64, 1, 5, kCommWorld), Err::Success);
      ASSERT_EQ(e.send(&v, 1, kUint64, 1, 9, kCommWorld), Err::Success);
    } else {
      bool flag = false;
      while (!flag) {
        ASSERT_EQ(e.iprobe(0, 9, kCommWorld, &flag, nullptr), Err::Success);
        if (!flag) std::this_thread::yield();
      }
      sampler.sample_now();  // unexpected_depth == 3 > threshold 2
      ASSERT_EQ(e.recv(&v, 1, kUint64, 0, 5, kCommWorld, nullptr), Err::Success);
      ASSERT_EQ(e.recv(&v, 1, kUint64, 0, 5, kCommWorld, nullptr), Err::Success);
      ASSERT_EQ(e.recv(&v, 1, kUint64, 0, 9, kCommWorld, nullptr), Err::Success);
    }
    e.barrier(kCommWorld);
  });

  EXPECT_GE(sampler.alerts_fired(), 1u);

  // The alert must appear in rank 1's retained sample...
  bool in_history = false;
  for (const obs::RankSample& s : sampler.history(1)) {
    for (const obs::Alert& a : s.alerts) {
      if (std::string(a.rule) == "unexpected_depth") {
        in_history = true;
        EXPECT_GE(a.value, 3.0);
        EXPECT_EQ(a.threshold, 2.0);
        EXPECT_EQ(a.rank, 1);
      }
    }
  }
  EXPECT_TRUE(in_history);

  // ...in the JSONL record shape...
  std::ostringstream os;
  sampler.export_jsonl(os);
  EXPECT_NE(os.str().find("\"rule\":\"unexpected_depth\""), std::string::npos);

  // ...and as a structured Ev::Alert in the trace ring, timestamped into the
  // same timeline as the messages that caused it.
  bool in_trace = false;
  for (const obs::trace::Event& ev : obs::trace::collect_all()) {
    if (ev.kind == obs::trace::Ev::Alert && ev.rank == 1) {
      in_trace = true;
      EXPECT_EQ(ev.seq, 0u);         // not message-associated
      EXPECT_EQ(ev.tag, 1);          // rule index: unexpected_depth
      EXPECT_GE(ev.bytes, 3u);       // observed value
      EXPECT_EQ(ev.wait_ns, 2u);     // threshold at fire time
    }
  }
  EXPECT_TRUE(in_trace);
  obs::trace::reset_all();
}

TEST(Sampler, PrometheusExpositionShape) {
  CvarGuard g(obs::Cv::SamplerIntervalMs);
  obs::cvar_set(obs::Cv::SamplerIntervalMs, 1000);
  World w(2, test::fast_opts());
  obs::Sampler sampler(w);

  w.run([&](Engine& e) {
    int v = 1;
    if (e.world_rank() == 0) {
      for (int i = 0; i < 20; ++i) {
        ASSERT_EQ(e.send(&v, 1, kInt, 1, i, kCommWorld), Err::Success);
      }
    } else {
      for (int i = 0; i < 20; ++i) {
        ASSERT_EQ(e.recv(&v, 1, kInt, 0, i, kCommWorld, nullptr), Err::Success);
      }
    }
  });
  sampler.sample_now();

  const std::string prom = sampler.prometheus();
  // Scalar gauges/counters.
  EXPECT_NE(prom.find("# HELP lwmpi_sampler_interval_seconds"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE lwmpi_sampler_ticks_total counter"), std::string::npos);
  EXPECT_NE(prom.find("lwmpi_alerts_total 0"), std::string::npos);
  // Per-rank series for both ranks.
  EXPECT_NE(prom.find("lwmpi_sends_per_second{rank=\"0\"}"), std::string::npos);
  EXPECT_NE(prom.find("lwmpi_sends_per_second{rank=\"1\"}"), std::string::npos);
  // Per-lane series carry both labels.
  EXPECT_NE(prom.find("lwmpi_lane_unexpected_depth{rank=\"0\",vci=\"0\"}"),
            std::string::npos);
  // Cumulative wait-class counter with its class label.
  EXPECT_NE(prom.find("lwmpi_wait_events_total{rank=\"0\",class=\""),
            std::string::npos);
  // Exactly one HELP line per metric name (promlint's duplicate-metadata rule).
  std::size_t pos = 0, helps = 0;
  const std::string key = "# HELP lwmpi_sends_per_second";
  while ((pos = prom.find(key, pos)) != std::string::npos) {
    ++helps;
    pos += key.size();
  }
  EXPECT_EQ(helps, 1u);
}

TEST(Sampler, WatchdogEmbedsTimeline) {
  CvarGuard g(obs::Cv::SamplerIntervalMs);
  obs::cvar_set(obs::Cv::SamplerIntervalMs, 20);
  WorldOptions o = test::fast_opts();
  o.build.lat_sample_shift = 0;
  World w(2, o);

  // Declaration order is the lifetime contract: the sampler must outlive the
  // watchdog that references it.
  obs::Sampler sampler(w);
  obs::WatchdogOptions wo;
  wo.stall_ns = 150'000'000;
  wo.poll_ns = 20'000'000;
  wo.sampler = &sampler;
  wo.timeline_depth = 8;
  obs::Watchdog wd(w, wo);

  w.run([&](Engine& e) {
    char b = 1;
    if (e.world_rank() == 0) {
      ASSERT_EQ(e.send(&b, 1, kChar, 1, 7, kCommWorld), Err::Success);
      while (wd.fires() == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      ASSERT_EQ(e.send(&b, 1, kChar, 1, 42, kCommWorld), Err::Success);
    } else {
      ASSERT_EQ(e.recv(&b, 1, kChar, 0, 42, kCommWorld, nullptr), Err::Success);
    }
  });

  ASSERT_GE(wd.fires(), 1);
  const obs::HangReport r = wd.last_report();
  ASSERT_FALSE(r.timeline_json.empty());
  // The embed is the render_json(RankSample) array shape, and the sampler ran
  // long enough during the stall window to have recorded real intervals.
  EXPECT_EQ(r.timeline_json.front(), '[');
  EXPECT_EQ(r.timeline_json.back(), ']');
  EXPECT_NE(r.timeline_json.find("\"unexpected_depth\""), std::string::npos);
  // The hang JSON report carries it under "timeline" (hangdump --timeline).
  const std::string json = obs::render_json(r);
  EXPECT_NE(json.find("\"timeline\":["), std::string::npos);
}

// --- sampler-vs-engine races (the TSan bucket) ------------------------------

// Hot 4-VCI traffic loop: both ranks dup the predefined comms and ping on
// every lane, the workload the sampler races against in the tests below.
void hot_vci_loop(Engine& e, int iters) {
  const Comm comms[4] = {kComm1, kComm2, kComm3, kComm4};
  for (Comm c : comms) {
    ASSERT_EQ(e.comm_dup_predefined(kCommWorld, c), Err::Success);
  }
  std::uint64_t v = 0;
  for (int i = 0; i < iters; ++i) {
    for (Comm c : comms) {
      if (e.world_rank() == 0) {
        ASSERT_EQ(e.send(&v, 1, kUint64, 1, 3, c), Err::Success);
        ASSERT_EQ(e.recv(&v, 1, kUint64, 1, 4, c, nullptr), Err::Success);
      } else {
        ASSERT_EQ(e.recv(&v, 1, kUint64, 0, 3, c, nullptr), Err::Success);
        ASSERT_EQ(e.send(&v, 1, kUint64, 0, 4, c), Err::Success);
      }
    }
  }
}

TEST(SamplerRace, StartStopUnderLoad) {
  CvarGuard g(obs::Cv::SamplerIntervalMs);
  obs::cvar_set(obs::Cv::SamplerIntervalMs, 1);
  World w(2, test::fast_opts());

  // Construct and destroy samplers continuously while the rank threads are
  // hot: every ctor spawns a sampling thread that reads the engines' relaxed
  // counters, every dtor takes a final sample mid-traffic.
  std::atomic<bool> done{false};
  std::thread churn([&] {
    while (!done.load(std::memory_order_acquire)) {
      obs::Sampler s(w);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      s.sample_now();
    }
  });

  w.run([&](Engine& e) { hot_vci_loop(e, 150); });
  done.store(true, std::memory_order_release);
  churn.join();
}

TEST(SamplerRace, RingOverwriteUnderHotVciLoad) {
  CvarGuard gi(obs::Cv::SamplerIntervalMs);
  CvarGuard gr(obs::Cv::SamplerRingDepth);
  obs::cvar_set(obs::Cv::SamplerIntervalMs, 1);
  obs::cvar_set(obs::Cv::SamplerRingDepth, 4);  // Startup: read at construction

  World w(2, test::fast_opts());
  obs::Sampler sampler(w);
  EXPECT_EQ(sampler.ring_depth(), 4u);

  w.run([&](Engine& e) { hot_vci_loop(e, 400); });

  // The 1ms cadence must have lapped the 4-deep ring: retention is bounded,
  // overwrite-oldest, and the survivors are the newest contiguous ticks.
  EXPECT_GT(sampler.ticks(), 4u);
  for (Rank r = 0; r < 2; ++r) {
    const std::vector<obs::RankSample> hist = sampler.history(r);
    ASSERT_LE(hist.size(), 4u);
    ASSERT_GE(hist.size(), 1u);
    for (std::size_t i = 1; i < hist.size(); ++i) {
      EXPECT_EQ(hist[i].seq, hist[i - 1].seq + 1);
    }
  }
}

TEST(SamplerRace, CvarMutationMidRun) {
  CvarGuard gi(obs::Cv::SamplerIntervalMs);
  CvarGuard gs(obs::Cv::SloUnexpectedGrowth);
  obs::cvar_set(obs::Cv::SamplerIntervalMs, 1);

  World w(2, test::fast_opts());
  obs::Sampler sampler(w);

  // Rank 0 retunes the sampler's runtime cvars from inside the run while the
  // sampling thread re-reads them every tick: interval cadence flapping
  // between 1ms and 5ms, an SLO rule toggling on and off.
  w.run([&](Engine& e) {
    const bool mutate = e.world_rank() == 0;
    const Comm comms[4] = {kComm1, kComm2, kComm3, kComm4};
    for (Comm c : comms) {
      ASSERT_EQ(e.comm_dup_predefined(kCommWorld, c), Err::Success);
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 300; ++i) {
      if (mutate) {
        obs::cvar_set(obs::Cv::SamplerIntervalMs, (i & 1) != 0 ? 5 : 1);
        obs::cvar_set(obs::Cv::SloUnexpectedGrowth, (i & 2) != 0 ? 1 : 0);
      }
      for (Comm c : comms) {
        if (e.world_rank() == 0) {
          ASSERT_EQ(e.send(&v, 1, kUint64, 1, 3, c), Err::Success);
          ASSERT_EQ(e.recv(&v, 1, kUint64, 1, 4, c, nullptr), Err::Success);
        } else {
          ASSERT_EQ(e.recv(&v, 1, kUint64, 0, 3, c, nullptr), Err::Success);
          ASSERT_EQ(e.send(&v, 1, kUint64, 0, 4, c), Err::Success);
        }
      }
    }
  });

  EXPECT_GT(sampler.ticks(), 0u);
}

// --- fabric byte pvars -------------------------------------------------------

TEST(Pvar, FabricByteCounters) {
  // One rank per node so the pair actually crosses the fabric (same-node
  // traffic takes shmmod and never touches the netmod byte counters).
  WorldOptions o = test::fast_opts();
  o.ranks_per_node = 1;
  constexpr int kMsgs = 32;
  constexpr std::uint64_t kBytes = kMsgs * sizeof(std::uint64_t);

  test::spmd(2, [&](Engine& e) {
    std::uint64_t v = 11;
    if (e.world_rank() == 0) {
      for (int i = 0; i < kMsgs; ++i) {
        ASSERT_EQ(e.send(&v, 1, kUint64, 1, i, kCommWorld), Err::Success);
      }
      e.barrier(kCommWorld);
    } else {
      for (int i = 0; i < kMsgs; ++i) {
        ASSERT_EQ(e.recv(&v, 1, kUint64, 0, i, kCommWorld, nullptr), Err::Success);
      }
      e.barrier(kCommWorld);
      // Both counters are indexed by the *destination* lane: bytes injected
      // toward this rank, and bytes its own polls delivered.
      EXPECT_GE(read_pvar(e, "fabric_injected_bytes"), kBytes);
      EXPECT_GE(read_pvar(e, "fabric_delivered_bytes"), kBytes);
    }
  }, o);
}

}  // namespace
}  // namespace lwmpi
