// World runtime tests: SPMD launch, exception propagation, allocators,
// engine identity, and configuration plumbing.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "util.hpp"

namespace lwmpi {
namespace {

TEST(World, EveryRankRunsExactlyOnce) {
  std::atomic<int> count{0};
  std::atomic<int> rank_sum{0};
  test::spmd(5, [&](Engine& e) {
    count.fetch_add(1);
    rank_sum.fetch_add(e.world_rank());
    EXPECT_EQ(e.world_size(), 5);
  });
  EXPECT_EQ(count.load(), 5);
  EXPECT_EQ(rank_sum.load(), 10);
}

TEST(World, ExceptionsPropagateToCaller) {
  World w(3, test::fast_opts());
  EXPECT_THROW(w.run([](Engine& e) {
    if (e.world_rank() == 1) throw std::runtime_error("rank 1 exploded");
  }),
               std::runtime_error);
}

TEST(World, ReusableAcrossRuns) {
  World w(2, test::fast_opts());
  for (int round = 0; round < 3; ++round) {
    w.run([round](Engine& e) {
      int v = round;
      int sum = 0;
      ASSERT_EQ(e.allreduce(&v, &sum, 1, kInt, ReduceOp::Sum, kCommWorld), Err::Success);
      EXPECT_EQ(sum, 2 * round);
    });
  }
}

TEST(World, ContextAllocatorNeverReusesIds) {
  World w(1, test::fast_opts());
  const auto a = w.alloc_context_pair();
  const auto b = w.alloc_context_pair();
  const auto block = w.alloc_context_block(3);
  const auto c = w.alloc_context_pair();
  EXPECT_LT(a, b);
  EXPECT_LT(b, block);
  EXPECT_GE(c, block + 6);
  EXPECT_GE(a, kFirstDynamicCtx);
}

TEST(World, OptionsReachEngines) {
  WorldOptions o;
  o.device = DeviceKind::Orig;
  o.build = BuildConfig::no_err_single();
  o.ranks_per_node = 1;
  World w(2, o);
  EXPECT_EQ(w.engine(0).device(), DeviceKind::Orig);
  EXPECT_FALSE(w.engine(1).config().error_checking);
  EXPECT_FALSE(w.engine(1).config().thread_safety);
  EXPECT_FALSE(w.fabric().same_node(0, 1));
}

TEST(World, EngineAccessorMatchesRank) {
  World w(3, test::fast_opts());
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(w.engine(r).world_rank(), r);
  }
  EXPECT_THROW(w.engine(9), std::out_of_range);
}

TEST(World, WindowRegistryRoundTrip) {
  World w(1, test::fast_opts());
  auto g = std::make_shared<rma::WindowGlobal>();
  g->id = w.alloc_win_id();
  w.register_window(g);
  EXPECT_EQ(w.find_window(g->id), g);
  w.unregister_window(g->id);
  EXPECT_EQ(w.find_window(g->id), nullptr);
  EXPECT_EQ(w.find_window(999999), nullptr);
}

TEST(World, BuildConfigLabels) {
  EXPECT_EQ(BuildConfig::dflt().label(), "default");
  EXPECT_EQ(BuildConfig::no_err().label(), "no-err");
  EXPECT_EQ(BuildConfig::no_err_single().label(), "no-err-single");
  EXPECT_EQ(BuildConfig::no_err_single_ipo().label(), "no-err-single-ipo");
  EXPECT_STREQ(to_string(DeviceKind::Ch4), "mpich/ch4");
  EXPECT_STREQ(to_string(DeviceKind::Orig), "mpich/original");
}

}  // namespace
}  // namespace lwmpi
