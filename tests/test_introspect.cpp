// Live queue introspection (obs/introspect.hpp): Engine::snapshot() walks the
// posted/unexpected/send queues and RMA epoch state; render_text/render_json
// turn a snapshot into the dump tools/hangdump consumes. All tests drive the
// engines single-threaded so the queues hold exactly what the test staged.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "obs/introspect.hpp"
#include "util.hpp"

namespace lwmpi {
namespace {

// Same minimal validator as test_obs.cpp: enough JSON to assert render_json
// emits a parseable document.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : p_(s.data()), end_(s.data() + s.size()) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return p_ == end_;
  }

 private:
  void skip_ws() {
    while (p_ < end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  }
  bool consume(char c) {
    skip_ws();
    if (p_ < end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }
  bool string() {
    if (!consume('"')) return false;
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') ++p_;
      ++p_;
    }
    return consume('"');
  }
  bool number() {
    const char* start = p_;
    if (p_ < end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    while (p_ < end_ && (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '.' ||
                         *p_ == 'e' || *p_ == 'E' || *p_ == '-' || *p_ == '+')) {
      ++p_;
    }
    return p_ != start;
  }
  bool literal(const char* word) {
    for (const char* w = word; *w != '\0'; ++w, ++p_) {
      if (p_ >= end_ || *p_ != *w) return false;
    }
    return true;
  }
  bool value() {
    skip_ws();
    if (p_ >= end_) return false;
    switch (*p_) {
      case '{': {
        ++p_;
        if (consume('}')) return true;
        do {
          if (!string()) return false;
          if (!consume(':')) return false;
          if (!value()) return false;
        } while (consume(','));
        return consume('}');
      }
      case '[': {
        ++p_;
        if (consume(']')) return true;
        do {
          if (!value()) return false;
        } while (consume(','));
        return consume(']');
      }
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  const char* p_;
  const char* end_;
};

TEST(Introspect, IdleRankSnapshotIsEmpty) {
  WorldOptions o = test::fast_opts();
  World w(2, o);
  const obs::RankSnapshot s = w.engine(1).snapshot();
  EXPECT_EQ(s.rank, 1);
  EXPECT_EQ(s.live_requests, 0u);
  EXPECT_EQ(s.blocking_call, nullptr);
  EXPECT_FALSE(s.oldest.valid);
  ASSERT_FALSE(s.vcis.empty());
  for (const auto& v : s.vcis) {
    EXPECT_TRUE(v.posted.empty());
    EXPECT_TRUE(v.unexpected.empty());
    EXPECT_TRUE(v.send_queue.empty());
  }
  EXPECT_TRUE(s.windows.empty());
}

TEST(Introspect, PostedReceiveAndOldestRequest) {
  WorldOptions o = test::fast_opts();
  o.build.lat_sample_shift = 0;  // stamp every post so queue ages are exact
  World w(2, o);
  Engine& e0 = w.engine(0);
  Engine& e1 = w.engine(1);

  std::vector<char> buf(64, 0);
  Request rr = kRequestNull;
  ASSERT_EQ(e1.irecv(buf.data(), static_cast<int>(buf.size()), kChar, 0, 5, kCommWorld,
                     &rr),
            Err::Success);

  obs::RankSnapshot s = e1.snapshot();
  EXPECT_EQ(s.live_requests, 1u);
  std::size_t posted = 0;
  for (const auto& v : s.vcis) {
    for (const auto& p : v.posted) {
      ++posted;
      EXPECT_EQ(p.ctx, kWorldCtx);
      EXPECT_EQ(p.comm, kCommWorld);
      EXPECT_EQ(p.src, 0);
      EXPECT_EQ(p.tag, 5);
      EXPECT_EQ(p.bytes, buf.size());
      EXPECT_GT(p.age_ns, 0u);
      EXPECT_FALSE(p.arrival_order);
    }
  }
  EXPECT_EQ(posted, 1u);
  ASSERT_TRUE(s.oldest.valid);
  EXPECT_STREQ(s.oldest.kind, "recv");
  EXPECT_EQ(s.oldest.comm, kCommWorld);
  EXPECT_EQ(s.oldest.peer, 0);
  EXPECT_EQ(s.oldest.tag, 5);
  EXPECT_GT(s.oldest.age_ns, 0u);

  // Matching the receive empties the posted queue and retires the request.
  char c = 'i';
  Request sr = kRequestNull;
  ASSERT_EQ(e0.isend(&c, 1, kChar, 1, 5, kCommWorld, &sr), Err::Success);
  ASSERT_EQ(e0.wait(&sr, nullptr), Err::Success);
  e1.progress();
  ASSERT_EQ(e1.wait(&rr, nullptr), Err::Success);

  s = e1.snapshot();
  EXPECT_EQ(s.live_requests, 0u);
  EXPECT_FALSE(s.oldest.valid);
  for (const auto& v : s.vcis) EXPECT_TRUE(v.posted.empty());
}

TEST(Introspect, UnexpectedArrivalsCarrySenderAndPayload) {
  WorldOptions o = test::fast_opts();
  World w(2, o);
  Engine& e0 = w.engine(0);
  Engine& e1 = w.engine(1);

  std::vector<char> payload(96, 'u');
  Request sr = kRequestNull;
  ASSERT_EQ(e0.isend(payload.data(), static_cast<int>(payload.size()), kChar, 1, 9,
                     kCommWorld, &sr),
            Err::Success);
  ASSERT_EQ(e0.wait(&sr, nullptr), Err::Success);
  e1.progress();  // no receive posted: the arrival lands on the unexpected queue

  const obs::RankSnapshot s = e1.snapshot();
  std::size_t unexpected = 0;
  for (const auto& v : s.vcis) {
    for (const auto& u : v.unexpected) {
      ++unexpected;
      EXPECT_EQ(u.ctx, kWorldCtx);
      EXPECT_EQ(u.comm, kCommWorld);
      EXPECT_EQ(u.src, 0);
      EXPECT_EQ(u.tag, 9);
      EXPECT_EQ(u.bytes, payload.size());
      EXPECT_GT(u.age_ns, 0u);  // counters on by default, so arrivals are stamped
    }
  }
  EXPECT_EQ(unexpected, 1u);

  // Drain so the world tears down clean.
  std::vector<char> in(96, 0);
  ASSERT_EQ(e1.recv(in.data(), static_cast<int>(in.size()), kChar, 0, 9, kCommWorld,
                    nullptr),
            Err::Success);
}

TEST(Introspect, OrigDeviceSendQueueResidency) {
  WorldOptions o = test::fast_opts(DeviceKind::Orig);
  World w(2, o);
  Engine& e0 = w.engine(0);
  Engine& e1 = w.engine(1);

  // Orig-device eager sends complete locally on buffering: the packet stays
  // staged in the software send queue until the progress engine drains it
  // (wait() runs one progress pass, so isend without wait keeps it staged).
  char c = 'q';
  Request sr = kRequestNull;
  ASSERT_EQ(e0.isend(&c, 1, kChar, 1, 3, kCommWorld, &sr), Err::Success);

  obs::RankSnapshot s = e0.snapshot();
  std::size_t queued = 0;
  for (const auto& v : s.vcis) {
    for (const auto& q : v.send_queue) {
      ++queued;
      EXPECT_EQ(q.dst_world, 1);
      EXPECT_EQ(q.tag, 3);
      EXPECT_EQ(q.bytes, 1u);
    }
  }
  EXPECT_EQ(queued, 1u);

  ASSERT_EQ(e0.wait(&sr, nullptr), Err::Success);  // wait's progress pass drains
  s = e0.snapshot();
  for (const auto& v : s.vcis) EXPECT_TRUE(v.send_queue.empty());

  ASSERT_EQ(e1.recv(&c, 1, kChar, 0, 3, kCommWorld, nullptr), Err::Success);
}

TEST(Introspect, WindowEpochState) {
  WorldOptions o = test::fast_opts();
  World w(1, o);
  Engine& e = w.engine(0);

  std::vector<int> mem(8, 0);
  Win win = kWinNull;
  ASSERT_EQ(e.win_create(mem.data(), mem.size() * sizeof(int), sizeof(int), kCommWorld,
                         &win),
            Err::Success);
  obs::RankSnapshot s = e.snapshot();
  ASSERT_EQ(s.windows.size(), 1u);
  EXPECT_STREQ(s.windows[0].epoch, "none");
  EXPECT_EQ(s.windows[0].outstanding_acks, 0u);

  ASSERT_EQ(e.win_fence(win), Err::Success);
  s = e.snapshot();
  ASSERT_EQ(s.windows.size(), 1u);
  EXPECT_STREQ(s.windows[0].epoch, "fence");

  ASSERT_EQ(e.win_free(&win), Err::Success);
  s = e.snapshot();
  EXPECT_TRUE(s.windows.empty());
}

TEST(Introspect, RenderTextAndJsonForms) {
  WorldOptions o = test::fast_opts();
  World w(2, o);
  Engine& e0 = w.engine(0);
  Engine& e1 = w.engine(1);

  // Stage one posted receive and one unexpected arrival so both queue kinds
  // appear in the rendering.
  char pbuf = 0;
  Request rr = kRequestNull;
  ASSERT_EQ(e1.irecv(&pbuf, 1, kChar, 0, 11, kCommWorld, &rr), Err::Success);
  char c = 'r';
  Request sr = kRequestNull;
  ASSERT_EQ(e0.isend(&c, 1, kChar, 1, 77, kCommWorld, &sr), Err::Success);
  ASSERT_EQ(e0.wait(&sr, nullptr), Err::Success);
  e1.progress();

  const obs::RankSnapshot s = e1.snapshot();
  const std::string text = obs::render_text(s);
  EXPECT_NE(text.find("rank 1"), std::string::npos);
  EXPECT_NE(text.find("posted="), std::string::npos);
  EXPECT_NE(text.find("tag=11"), std::string::npos);
  EXPECT_NE(text.find("tag=77"), std::string::npos);
  EXPECT_NE(text.find("WORLD"), std::string::npos);

  const std::string json = obs::render_json(s);
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"rank\":1"), std::string::npos);
  EXPECT_NE(json.find("\"blocking_call\":null"), std::string::npos);
  EXPECT_NE(json.find("\"posted\":["), std::string::npos);
  EXPECT_NE(json.find("\"unexpected\":["), std::string::npos);
  EXPECT_NE(json.find("\"tag\":11"), std::string::npos);
  EXPECT_NE(json.find("\"tag\":77"), std::string::npos);

  // Tear down clean: match both messages.
  char in = 0;
  ASSERT_EQ(e0.send(&c, 1, kChar, 1, 11, kCommWorld), Err::Success);
  e1.progress();
  ASSERT_EQ(e1.wait(&rr, nullptr), Err::Success);
  ASSERT_EQ(e1.recv(&in, 1, kChar, 0, 77, kCommWorld, nullptr), Err::Success);
  EXPECT_EQ(in, 'r');
}

TEST(Introspect, RdmaSnapshotCarriesCreditAndRegCacheState) {
  // On the rdma backend the snapshot must expose the two backend-specific
  // stall sources -- ring credits and the registration cache -- so a hangdump
  // shows whether a stuck sender is out of credits.
  WorldOptions o = test::fast_opts();
  o.netmod = "rdma";
  o.ranks_per_node = 1;
  o.profile.rdma_ring_depth = 4;
  World w(2, o);
  Engine& e0 = w.engine(0);
  Engine& e1 = w.engine(1);

  // Fill rank 1's ring without letting it progress: credits drain visibly.
  char c = 'x';
  for (int i = 0; i < 4; ++i) {
    Request sr = kRequestNull;
    ASSERT_EQ(e0.isend(&c, 1, kChar, 1, i, kCommWorld, &sr), Err::Success);
    ASSERT_EQ(e0.wait(&sr, nullptr), Err::Success);
  }

  obs::RankSnapshot s = e1.snapshot();
  ASSERT_TRUE(s.rdma.valid);
  ASSERT_FALSE(s.rdma.lanes.empty());
  EXPECT_EQ(s.rdma.lanes[0].ring_depth, 4u);
  EXPECT_EQ(s.rdma.lanes[0].credits_free, 0u);  // all four slots consumed
  EXPECT_EQ(s.rdma.lanes[0].occupancy_hwm, 4u);

  const std::string text = obs::render_text(s);
  EXPECT_NE(text.find("credits=0/4"), std::string::npos);
  EXPECT_NE(text.find("[EXHAUSTED]"), std::string::npos);
  const std::string json = obs::render_json(s);
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"rdma\":{"), std::string::npos);
  EXPECT_NE(json.find("\"credits_free\":0"), std::string::npos);

  // Drain, then check the credits recover and the reg-cache fields appear
  // after a zero-copy rendezvous pins memory.
  char in = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(e1.recv(&in, 1, kChar, 0, i, kCommWorld, nullptr), Err::Success);
  }
  s = e1.snapshot();
  EXPECT_EQ(s.rdma.lanes[0].credits_free, 4u);

  const std::size_t big = 64 * 1024;
  std::vector<char> out(big, 'y');
  std::vector<char> got(big, 0);
  Request sr = kRequestNull;
  ASSERT_EQ(e0.isend(out.data(), static_cast<int>(big), kChar, 1, 9, kCommWorld, &sr),
            Err::Success);
  Request rr = kRequestNull;
  ASSERT_EQ(e1.irecv(got.data(), static_cast<int>(big), kChar, 0, 9, kCommWorld, &rr),
            Err::Success);
  e1.progress();  // RTS -> CTS (registers the receive buffer)
  e0.progress();  // CTS -> rdma_write + RdvDone (registers the send buffer)
  ASSERT_EQ(e0.wait(&sr, nullptr), Err::Success);
  e1.progress();
  ASSERT_EQ(e1.wait(&rr, nullptr), Err::Success);
  EXPECT_EQ(got[big - 1], 'y');

  s = e1.snapshot();
  EXPECT_GE(s.rdma.reg_cache_size, 1u);
  EXPECT_GE(s.rdma.reg_misses, 1u);

  // Mailbox worlds keep the block invalid and the renderers skip it.
  WorldOptions om = test::fast_opts();
  World wm(1, om);
  const obs::RankSnapshot sm = wm.engine(0).snapshot();
  EXPECT_FALSE(sm.rdma.valid);
  EXPECT_EQ(obs::render_text(sm).find("rdma:"), std::string::npos);
  EXPECT_NE(obs::render_json(sm).find("\"rdma\":null"), std::string::npos);
}

TEST(Introspect, WildcardReceiveRendersStars) {
  WorldOptions o = test::fast_opts();
  World w(2, o);
  Engine& e1 = w.engine(1);

  char buf = 0;
  Request rr = kRequestNull;
  ASSERT_EQ(e1.irecv(&buf, 1, kChar, kAnySource, kAnyTag, kCommWorld, &rr), Err::Success);
  const obs::RankSnapshot s = e1.snapshot();
  const std::string text = obs::render_text(s);
  EXPECT_NE(text.find("src=*"), std::string::npos);
  EXPECT_NE(text.find("tag=*"), std::string::npos);

  char c = 'w';
  Request sr = kRequestNull;
  ASSERT_EQ(w.engine(0).isend(&c, 1, kChar, 1, 0, kCommWorld, &sr), Err::Success);
  ASSERT_EQ(w.engine(0).wait(&sr, nullptr), Err::Success);
  e1.progress();
  ASSERT_EQ(e1.wait(&rr, nullptr), Err::Success);
  EXPECT_EQ(buf, 'w');
}

}  // namespace
}  // namespace lwmpi
