// Netmod backend tests: factory dispatch, the rdma backend's mechanisms
// (credit rings, registration cache, zero-copy rendezvous), and backend
// selection through World::Options.
//
// The other half of backend-selection coverage -- that the default `mailbox`
// backend is baseline-identical -- is enforced by test_bench_check and the
// bench_regression ctest, which compare the live library's BENCH_table1/fig2
// artifacts bit-for-bit against the committed baselines (default netmod).
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "net/fabric.hpp"
#include "net/netmod.hpp"
#include "net/profile.hpp"
#include "obs/pvar.hpp"
#include "runtime/backoff.hpp"
#include "runtime/packet.hpp"
#include "runtime/world.hpp"

namespace lwmpi {
namespace {

rt::Packet* make_packet(Tag tag) {
  rt::Packet* p = rt::PacketPool::alloc();
  p->hdr.tag = tag;
  return p;
}

std::uint64_t read_pvar(Engine& e, const char* name) {
  const int idx = obs::LWMPI_T_pvar_index(name);
  EXPECT_GE(idx, 0) << name;
  if (idx < 0) return 0;
  obs::PvarSession s;
  obs::LWMPI_T_pvar_session_create(e, &s);
  std::uint64_t v = 0;
  obs::LWMPI_T_pvar_read(s, idx, &v);
  obs::LWMPI_T_pvar_session_free(&s);
  return v;
}

// --- factory ----------------------------------------------------------------

TEST(NetmodFactory, KnownBackends) {
  auto mb = net::make_netmod("mailbox", 2, 1, net::loopback(), 1);
  EXPECT_EQ(mb->name(), "mailbox");
  EXPECT_FALSE(mb->rdma_capable());
  auto rd = net::make_netmod("rdma", 2, 1, net::loopback(), 1);
  EXPECT_EQ(rd->name(), "rdma");
  EXPECT_TRUE(rd->rdma_capable());
}

TEST(NetmodFactory, UnknownBackendIsAHardError) {
  EXPECT_THROW(net::make_netmod("verbs", 2, 1, net::loopback(), 1),
               std::invalid_argument);
  EXPECT_THROW(net::Fabric(2, 1, net::loopback(), 1, "tcp"), std::invalid_argument);
  WorldOptions o;
  o.netmod = "not-a-netmod";
  EXPECT_THROW(World(2, o), std::invalid_argument);
}

// --- rdma backend: transport basics -----------------------------------------

TEST(RdmaNetmod, DeliversInOrderAndCounts) {
  net::Fabric f(2, 2, net::loopback(), 1, "rdma");
  for (Tag t = 0; t < 5; ++t) f.inject(0, 1, make_packet(t));
  EXPECT_EQ(f.injected(1), 5u);
  EXPECT_EQ(f.pending_any(1), 5u);
  for (Tag t = 0; t < 5; ++t) {
    rt::Packet* p = f.poll(1);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->hdr.tag, t);
    rt::PacketPool::free(p);
    f.credit_return(1, 0);
  }
  EXPECT_EQ(f.delivered(1), 5u);
  EXPECT_EQ(f.poll(1), nullptr);
  EXPECT_TRUE(f.idle(1));
}

TEST(RdmaNetmod, BlackholeDropsBeforeConsumingCredits) {
  net::Profile p = net::infinite();
  p.rdma_ring_depth = 1;
  net::Fabric f(2, 2, p, 1, "rdma");
  // With depth 1, a second inject would block if blackhole drops consumed a
  // ring credit.
  f.inject(0, 1, make_packet(1));
  f.inject(0, 1, make_packet(2));
  EXPECT_EQ(f.dropped(), 2u);
  EXPECT_EQ(f.poll(1), nullptr);
}

TEST(RdmaNetmod, RingCreditFlowBlocksFullRingAndCountsStalls) {
  net::Profile p = net::loopback();
  p.rdma_ring_depth = 2;
  net::Fabric f(2, 2, p, 1, "rdma");
  f.inject(0, 1, make_packet(0));
  f.inject(0, 1, make_packet(1));
  EXPECT_EQ(f.net_stat(net::NetStat::RingOccupancyHwm, 1, 0), 2u);

  // Third inject must wait for a credit; a consumer thread frees one.
  std::thread sender([&] { f.inject(0, 1, make_packet(2)); });
  // Wait until the sender has demonstrably hit the full ring.
  rt::Backoff backoff;
  while (f.net_stat(net::NetStat::RingStall, 0, -1) == 0) backoff.pause();
  EXPECT_EQ(f.pending(1, 0), 2u);  // third not enqueued yet
  rt::Packet* got = f.poll(1, 0);
  ASSERT_NE(got, nullptr);
  rt::PacketPool::free(got);
  f.credit_return(1, 0);
  sender.join();
  EXPECT_GE(f.net_stat(net::NetStat::RingStall, 0, -1), 1u);  // stalls bill the sender
  EXPECT_EQ(f.pending(1, 0), 2u);
  while (rt::Packet* q = f.poll(1, 0)) {
    rt::PacketPool::free(q);
    f.credit_return(1, 0);
  }
}

// --- rdma backend: registration cache ---------------------------------------

TEST(RdmaNetmod, RegCacheHitsMissesAndPinCost) {
  net::Profile p = net::loopback();
  p.pin_cost_ns_per_page = 2'000'000;  // 2 ms per page, measurable
  net::Fabric f(2, 1, p, 1, "rdma");
  std::vector<char> buf(4096);

  const auto t0 = rt::now_ns();
  const std::uint64_t rkey = f.register_memory(0, buf.data(), buf.size());
  EXPECT_GE(rt::now_ns() - t0, 2'000'000u);  // cold: pays the pin cost
  EXPECT_NE(rkey, 0u);
  EXPECT_EQ(f.net_stat(net::NetStat::RegCacheMiss, 0, -1), 1u);

  EXPECT_EQ(f.register_memory(0, buf.data(), buf.size()), rkey);
  EXPECT_EQ(f.net_stat(net::NetStat::RegCacheHit, 0, -1), 1u);
  EXPECT_EQ(f.net_stat(net::NetStat::RegCacheMiss, 0, -1), 1u);  // no re-pin
}

TEST(RdmaNetmod, RegCacheEvictsLeastRecentlyUsed) {
  net::Profile p = net::loopback();
  p.reg_cache_capacity = 2;
  net::Fabric f(2, 1, p, 1, "rdma");
  std::vector<std::vector<char>> bufs(3, std::vector<char>(4096));
  for (auto& b : bufs) f.register_memory(0, b.data(), b.size());
  EXPECT_EQ(f.net_stat(net::NetStat::RegCacheMiss, 0, -1), 3u);
  EXPECT_GE(f.net_stat(net::NetStat::RegCacheEviction, 0, -1), 1u);
  // The evicted (least recently used) first buffer must re-pin.
  f.register_memory(0, bufs[0].data(), bufs[0].size());
  EXPECT_EQ(f.net_stat(net::NetStat::RegCacheMiss, 0, -1), 4u);
}

TEST(RdmaNetmod, RdmaWriteCopiesIntoRegisteredBuffer) {
  net::Fabric f(2, 1, net::loopback(), 1, "rdma");
  std::vector<char> dst(256, 0);
  std::vector<char> src(256);
  std::iota(src.begin(), src.end(), 0);
  const std::uint64_t rkey = f.register_memory(1, dst.data(), dst.size());
  f.rdma_write(0, 1, src.data(), rkey, src.size());
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
  EXPECT_EQ(f.net_stat(net::NetStat::ZeroCopyWrite, 0, -1), 1u);
  EXPECT_EQ(f.net_stat(net::NetStat::ZeroCopyWrite, 1, -1), 0u);
}

// --- rdma backend: zero-copy rendezvous through the full stack ---------------

WorldOptions rdv_world(const std::string& netmod) {
  WorldOptions o;
  o.netmod = netmod;
  o.ranks_per_node = 1;
  o.eager_threshold = 1024;  // force rendezvous for the payloads below
  return o;
}

TEST(ZeroCopyRendezvous, MovesDataWithoutStagingOnRdma) {
  World w(2, rdv_world("rdma"));
  const std::size_t n = 64 * 1024;
  std::vector<char> got(n, 0);
  w.run([&](Engine& e) {
    if (e.world_rank() == 0) {
      std::vector<char> data(n);
      for (std::size_t i = 0; i < n; ++i) data[i] = static_cast<char>(i * 31 + 7);
      e.send(data.data(), static_cast<int>(n), kChar, 1, 3, kCommWorld);
    } else {
      e.recv(got.data(), static_cast<int>(n), kChar, 0, 3, kCommWorld, nullptr);
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(got[i], static_cast<char>(i * 31 + 7)) << i;
  }
  // The sender issued a one-sided write; both sides registered memory.
  EXPECT_GE(read_pvar(w.engine(0), "rdma_zero_copy_writes"), 1u);
  EXPECT_GE(read_pvar(w.engine(0), "rdma_reg_cache_misses"), 1u);
  EXPECT_GE(read_pvar(w.engine(1), "rdma_reg_cache_misses"), 1u);
}

TEST(ZeroCopyRendezvous, MailboxBackendStaysOnStagedPath) {
  World w(2, rdv_world("mailbox"));
  const std::size_t n = 64 * 1024;
  std::vector<char> got(n, 0);
  w.run([&](Engine& e) {
    if (e.world_rank() == 0) {
      std::vector<char> data(n, 'x');
      e.send(data.data(), static_cast<int>(n), kChar, 1, 3, kCommWorld);
    } else {
      e.recv(got.data(), static_cast<int>(n), kChar, 0, 3, kCommWorld, nullptr);
    }
  });
  EXPECT_EQ(got[0], 'x');
  EXPECT_EQ(got[n - 1], 'x');
  EXPECT_EQ(read_pvar(w.engine(0), "rdma_zero_copy_writes"), 0u);
  EXPECT_EQ(read_pvar(w.engine(1), "rdma_reg_cache_misses"), 0u);
}

TEST(ZeroCopyRendezvous, NoncontiguousReceiverFallsBackToStagedCopy) {
  World w(2, rdv_world("rdma"));
  constexpr int kBlocks = 4096;  // 4096 x 4-byte blocks, stride 8 = 16 KiB data
  std::vector<char> got(static_cast<std::size_t>(kBlocks) * 8, 0);
  w.run([&](Engine& e) {
    if (e.world_rank() == 0) {
      std::vector<char> data(static_cast<std::size_t>(kBlocks) * 4, 'z');
      e.send(data.data(), kBlocks * 4, kChar, 1, 3, kCommWorld);
    } else {
      Datatype vec = kDatatypeNull;
      ASSERT_EQ(e.type_vector(kBlocks, 4, 8, kChar, &vec), Err::Success);
      ASSERT_EQ(e.type_commit(&vec), Err::Success);
      ASSERT_EQ(e.recv(got.data(), 1, vec, 0, 3, kCommWorld, nullptr),
                Err::Success);
      ASSERT_EQ(e.type_free(&vec), Err::Success);
    }
  });
  EXPECT_EQ(got[0], 'z');
  EXPECT_EQ(got[3], 'z');
  EXPECT_EQ(got[4], 0);  // the stride gap stays untouched
  // The receiver could not accept the zero-copy offer, so the sender streamed
  // RdvData segments instead of issuing a one-sided write.
  EXPECT_EQ(read_pvar(w.engine(0), "rdma_zero_copy_writes"), 0u);
}

// --- backend selection + observability through the World ----------------------

TEST(WorldNetmod, StatsReportCarriesBackendName) {
  WorldOptions o;
  o.netmod = "rdma";
  World w(1, o);
  const std::string js = w.stats_report(true);
  EXPECT_NE(js.find("\"netmod\":\"rdma\""), std::string::npos);
  EXPECT_EQ(w.fabric().backend_name(), "rdma");
}

TEST(WorldNetmod, FabricDroppedExportedAsPvar) {
  WorldOptions o;
  o.profile = net::infinite();  // blackhole: every injection is dropped
  o.ranks_per_node = 1;
  World w(1, o);
  w.run([&](Engine& e) {
    char b = 1;
    for (int i = 0; i < 10; ++i) e.send(&b, 1, kChar, 0, 0, kCommWorld);
  });
  EXPECT_GE(read_pvar(w.engine(0), "fabric_dropped"), 10u);
}

}  // namespace
}  // namespace lwmpi
