// Virtual communication interface tests: comm->channel mapping, cross-VCI
// isolation, and multithreaded correctness with independent communicators
// driven simultaneously (the concurrency suite runs these under TSan).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "util.hpp"

using namespace lwmpi;

namespace {

constexpr int kNumThreads = 4;
const Comm kPredefined[kNumThreads] = {kComm1, kComm2, kComm3, kComm4};

// Collectively populate the four predefined communicator slots.
void dup_predefined(Engine& e) {
  for (Comm c : kPredefined) {
    ASSERT_EQ(e.comm_dup_predefined(kCommWorld, c), Err::Success);
  }
}

}  // namespace

TEST(Vci, PredefinedCommsPinToDistinctChannels) {
  test::spmd(2, [](Engine& e) {
    ASSERT_EQ(e.num_vcis(), 4);  // BuildConfig default
    EXPECT_EQ(e.vci_of(kCommWorld), 0);
    EXPECT_EQ(e.vci_of(kCommNull), -1);
    dup_predefined(e);
    std::vector<bool> seen(static_cast<std::size_t>(e.num_vcis()), false);
    for (Comm c : kPredefined) {
      const int v = e.vci_of(c);
      ASSERT_GE(v, 0);
      ASSERT_LT(v, e.num_vcis());
      EXPECT_FALSE(seen[static_cast<std::size_t>(v)])
          << "two predefined comms share channel " << v;
      seen[static_cast<std::size_t>(v)] = true;
    }
    e.barrier(kCommWorld);
  });
}

TEST(Vci, SingleChannelBuildStillWorks) {
  WorldOptions o = test::fast_opts();
  o.build.num_vcis = 1;
  test::spmd(
      2,
      [](Engine& e) {
        ASSERT_EQ(e.num_vcis(), 1);
        dup_predefined(e);
        for (Comm c : kPredefined) EXPECT_EQ(e.vci_of(c), 0);
        int v = e.world_rank();
        int sum = 0;
        ASSERT_EQ(e.allreduce(&v, &sum, 1, kInt, ReduceOp::Sum, kComm3), Err::Success);
        EXPECT_EQ(sum, 1);
      },
      o);
}

// A message sent on one communicator must never satisfy a receive posted on a
// communicator living on a different channel -- matching state is per-VCI.
TEST(Vci, NoCrossChannelMatching) {
  test::spmd(2, [](Engine& e) {
    dup_predefined(e);
    ASSERT_NE(e.vci_of(kComm1), e.vci_of(kComm2));
    if (e.world_rank() == 0) {
      int payload = 42;
      ASSERT_EQ(e.send(&payload, 1, kInt, 1, 7, kComm1), Err::Success);
      e.barrier(kCommWorld);
    } else {
      int sink = 0;
      Request wrong = kRequestNull;
      // Wildcard receive on kComm2: compatible in (src, tag) but on the wrong
      // channel; it must stay posted.
      ASSERT_EQ(e.irecv(&sink, 1, kInt, kAnySource, kAnyTag, kComm2, &wrong),
                Err::Success);
      // Let the sender's packet arrive and sit in kComm1's unexpected queue.
      bool flag = false;
      Status st;
      while (!flag) {
        ASSERT_EQ(e.iprobe(kAnySource, kAnyTag, kComm1, &flag, &st), Err::Success);
      }
      EXPECT_EQ(st.tag, 7);
      bool wrong_flag = true;
      ASSERT_EQ(e.iprobe(kAnySource, kAnyTag, kComm2, &wrong_flag, nullptr), Err::Success);
      EXPECT_FALSE(wrong_flag);
      EXPECT_EQ(sink, 0);  // nothing was delivered to the kComm2 receive

      int got = 0;
      ASSERT_EQ(e.recv(&got, 1, kInt, 0, 7, kComm1, nullptr), Err::Success);
      EXPECT_EQ(got, 42);
      ASSERT_EQ(e.cancel(&wrong), Err::Success);
      ASSERT_EQ(e.wait(&wrong, nullptr), Err::Success);
      e.barrier(kCommWorld);
      // Every queue on every channel drained.
      for (int v = 0; v < e.num_vcis(); ++v) {
        EXPECT_EQ(e.posted_depth(v), 0u) << "vci " << v;
        EXPECT_EQ(e.unexpected_depth(v), 0u) << "vci " << v;
      }
    }
  });
}

// N threads per rank drive N independent communicators simultaneously: eager
// and rendezvous traffic, payload verification, then a clean drain.
TEST(Vci, MultithreadedIndependentComms) {
  constexpr int kRounds = 24;
  constexpr int kEagerInts = 256;                // 1 KiB: eager protocol
  constexpr int kRdvInts = 12 * 1024;            // 48 KiB: rendezvous protocol
  test::spmd(2, [](Engine& e) {
    dup_predefined(e);
    const int me = e.world_rank();
    std::vector<std::thread> threads;
    threads.reserve(kNumThreads);
    for (int t = 0; t < kNumThreads; ++t) {
      threads.emplace_back([&e, me, t] {
        const Comm c = kPredefined[t];
        std::vector<std::int32_t> eager(kEagerInts);
        std::vector<std::int32_t> rdv(kRdvInts);
        for (int round = 0; round < kRounds; ++round) {
          const std::int32_t stamp = t * 1000 + round;
          if (me == 0) {
            for (auto& x : eager) x = stamp;
            for (auto& x : rdv) x = stamp + 1;
            Request r[2] = {kRequestNull, kRequestNull};
            ASSERT_EQ(e.isend(eager.data(), kEagerInts, kInt, 1, round, c, &r[0]),
                      Err::Success);
            ASSERT_EQ(e.isend(rdv.data(), kRdvInts, kInt, 1, round, c, &r[1]),
                      Err::Success);
            ASSERT_EQ(e.waitall(r, {}), Err::Success);
          } else {
            Status st;
            ASSERT_EQ(e.recv(eager.data(), kEagerInts, kInt, 0, round, c, &st),
                      Err::Success);
            ASSERT_EQ(st.byte_count, kEagerInts * sizeof(std::int32_t));
            ASSERT_EQ(e.recv(rdv.data(), kRdvInts, kInt, 0, round, c, nullptr),
                      Err::Success);
            for (const auto& x : eager) ASSERT_EQ(x, stamp);
            for (const auto& x : rdv) ASSERT_EQ(x, stamp + 1);
          }
        }
        // Four concurrent barriers, one per channel.
        ASSERT_EQ(e.barrier(c), Err::Success);
      });
    }
    for (std::thread& th : threads) th.join();
    e.barrier(kCommWorld);
    for (int v = 0; v < e.num_vcis(); ++v) {
      EXPECT_EQ(e.posted_depth(v), 0u) << "vci " << v;
      EXPECT_EQ(e.unexpected_depth(v), 0u) << "vci " << v;
    }
    EXPECT_EQ(e.live_requests(), 0u);
  });
}

// The no-request extension tracks outstanding sends per communicator; the
// counter must drain through the owning channel.
TEST(Vci, NoreqSendsDrainPerChannel) {
  test::spmd(2, [](Engine& e) {
    dup_predefined(e);
    if (e.world_rank() == 0) {
      int v = 9;
      for (int i = 0; i < 32; ++i) {
        ASSERT_EQ(e.isend_noreq(&v, 1, kInt, 1, i, kComm2), Err::Success);
      }
      ASSERT_EQ(e.comm_waitall(kComm2), Err::Success);
    } else {
      int got = 0;
      for (int i = 0; i < 32; ++i) {
        ASSERT_EQ(e.recv(&got, 1, kInt, 0, i, kComm2, nullptr), Err::Success);
        EXPECT_EQ(got, 9);
      }
    }
    e.barrier(kCommWorld);
    EXPECT_EQ(e.live_requests(), 0u);
  });
}
