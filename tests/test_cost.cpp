// Cost-model tests: the modeled instruction counts that reproduce the paper's
// Table 1, Figure 2, and Figure 6 must emerge from walking the real code
// paths. These are the calibration anchors for the bench harnesses.
#include <gtest/gtest.h>

#include <vector>

#include "cost/meter.hpp"
#include "cost/model.hpp"
#include "obs/table.hpp"
#include "runtime/backoff.hpp"
#include "util.hpp"

namespace lwmpi {
namespace {

using C = cost::Category;
using G = cost::Group;

// Measure one metered isend on rank 0 of a 2-rank world.
cost::Meter measure_isend(DeviceKind device, BuildConfig build) {
  cost::Meter out;
  WorldOptions o = test::fast_opts(device);
  o.build = build;
  World w(2, o);
  w.run([&](Engine& e) {
    if (e.world_rank() == 0) {
      int v = 7;
      Request r = kRequestNull;
      {
        cost::ScopedMeter arm(out);
        ASSERT_EQ(e.isend(&v, 1, kInt, 1, 1, kCommWorld, &r), Err::Success);
      }
      ASSERT_EQ(e.wait(&r, nullptr), Err::Success);
    } else {
      int got = 0;
      ASSERT_EQ(e.recv(&got, 1, kInt, 0, 1, kCommWorld, nullptr), Err::Success);
    }
  });
  return out;
}

// Measure one metered put (contiguous, inside a fence epoch).
cost::Meter measure_put(DeviceKind device, BuildConfig build) {
  cost::Meter out;
  WorldOptions o = test::fast_opts(device);
  o.build = build;
  World w(2, o);
  w.run([&](Engine& e) {
    std::vector<int> mem(8, 0);
    Win win = kWinNull;
    ASSERT_EQ(
        e.win_create(mem.data(), mem.size() * sizeof(int), sizeof(int), kCommWorld, &win),
        Err::Success);
    ASSERT_EQ(e.win_fence(win), Err::Success);
    if (e.world_rank() == 0) {
      const int v = 3;
      cost::ScopedMeter arm(out);
      ASSERT_EQ(e.put(&v, 1, kInt, 1, 0, 1, kInt, win), Err::Success);
    }
    ASSERT_EQ(e.win_fence(win), Err::Success);
    ASSERT_EQ(e.win_free(&win), Err::Success);
  });
  return out;
}

// ---------------------------------------------------------------------------
// Table 1: category breakdown of the ch4 default build, from the live path
// ---------------------------------------------------------------------------

TEST(Table1, IsendDefaultBreakdown) {
  const cost::Meter m = measure_isend(DeviceKind::Ch4, BuildConfig::dflt());
  EXPECT_EQ(m.group(G::ErrorChecking), 74u);
  EXPECT_EQ(m.group(G::ThreadSafety), 6u);
  EXPECT_EQ(m.group(G::FunctionCall), 23u);
  EXPECT_EQ(m.group(G::RedundantChecks), 59u);
  EXPECT_EQ(m.group(G::Mandatory), 59u);
  EXPECT_EQ(m.group(G::OrigLayering), 0u);
  EXPECT_EQ(m.total(), 221u);
}

TEST(Table1, PutDefaultBreakdown) {
  const cost::Meter m = measure_put(DeviceKind::Ch4, BuildConfig::dflt());
  EXPECT_EQ(m.group(G::ErrorChecking), 72u);
  EXPECT_EQ(m.group(G::ThreadSafety), 14u);
  EXPECT_EQ(m.group(G::FunctionCall), 25u);
  EXPECT_EQ(m.group(G::RedundantChecks), 60u);  // paper: 62
  EXPECT_EQ(m.group(G::Mandatory), 44u);        // paper: 44
  EXPECT_EQ(m.group(G::OrigLayering), 0u);
  EXPECT_EQ(m.total(), 215u);
}

TEST(Table1, IsendMandatoryDecomposition) {
  const cost::Meter m = measure_isend(DeviceKind::Ch4, BuildConfig::dflt());
  EXPECT_EQ(m.category(C::MandRankmap), cost::kMandRankTranslateCompressed);
  EXPECT_EQ(m.category(C::MandObject), cost::kMandObjectDeref);
  EXPECT_EQ(m.category(C::MandProcNull), cost::kMandProcNull);
  EXPECT_EQ(m.category(C::MandRequest), cost::kMandRequestAlloc);
  EXPECT_EQ(m.category(C::MandMatch), cost::kMandMatchBits);
  EXPECT_EQ(m.category(C::MandLocality), cost::kMandLocalitySelect);
  EXPECT_EQ(m.category(C::MandInject), cost::kMandInjectResidual);
  EXPECT_EQ(m.category(C::MandVa), 0u);  // pt2pt has no VA translation
}

TEST(Table1, PutUsesVirtualAddressTranslation) {
  const cost::Meter m = measure_put(DeviceKind::Ch4, BuildConfig::dflt());
  EXPECT_EQ(m.category(C::MandVa), cost::kMandVaTranslate);
}

TEST(Table1, OrigChargesLandInLayeringCategory) {
  const cost::Meter isend = measure_isend(DeviceKind::Orig, BuildConfig::dflt());
  EXPECT_EQ(isend.category(C::OrigLayering),
            cost::kOrigAdiDispatch + cost::kOrigSendQueueing + cost::kOrigExtraBranches);
  const cost::Meter put = measure_put(DeviceKind::Orig, BuildConfig::dflt());
  EXPECT_EQ(put.category(C::OrigLayering),
            cost::kOrigPutLayerCalls + cost::kOrigPutGenericChecks + cost::kOrigPutAmBuild +
                cost::kOrigPutOpQueue + cost::kOrigPutPt2ptIssue);
}

// ---------------------------------------------------------------------------
// Figure 2: the build matrix
// ---------------------------------------------------------------------------

TEST(Fig2, IsendAcrossBuilds) {
  EXPECT_EQ(measure_isend(DeviceKind::Orig, BuildConfig::dflt()).total(), 253u);
  EXPECT_EQ(measure_isend(DeviceKind::Ch4, BuildConfig::dflt()).total(), 221u);
  EXPECT_EQ(measure_isend(DeviceKind::Ch4, BuildConfig::no_err()).total(), 147u);
  EXPECT_EQ(measure_isend(DeviceKind::Ch4, BuildConfig::no_err_single()).total(), 141u);
  EXPECT_EQ(measure_isend(DeviceKind::Ch4, BuildConfig::no_err_single_ipo()).total(), 59u);
}

TEST(Fig2, PutAcrossBuilds) {
  EXPECT_EQ(measure_put(DeviceKind::Orig, BuildConfig::dflt()).total(), 1342u);
  EXPECT_EQ(measure_put(DeviceKind::Ch4, BuildConfig::dflt()).total(), 215u);
  EXPECT_EQ(measure_put(DeviceKind::Ch4, BuildConfig::no_err()).total(), 143u);
  EXPECT_EQ(measure_put(DeviceKind::Ch4, BuildConfig::no_err_single()).total(), 129u);
  EXPECT_EQ(measure_put(DeviceKind::Ch4, BuildConfig::no_err_single_ipo()).total(), 44u);
}

TEST(Fig2, EachDisabledFeatureReducesCount) {
  const auto d = measure_isend(DeviceKind::Ch4, BuildConfig::dflt()).total();
  const auto ne = measure_isend(DeviceKind::Ch4, BuildConfig::no_err()).total();
  const auto ns = measure_isend(DeviceKind::Ch4, BuildConfig::no_err_single()).total();
  const auto ipo = measure_isend(DeviceKind::Ch4, BuildConfig::no_err_single_ipo()).total();
  EXPECT_GT(d, ne);
  EXPECT_GT(ne, ns);
  EXPECT_GT(ns, ipo);
}

// ---------------------------------------------------------------------------
// Figure 6 / Section 3.7: extension savings on the best build
// ---------------------------------------------------------------------------

cost::Meter measure_ext(const std::function<void(Engine&, cost::Meter&)>& fn) {
  cost::Meter out;
  WorldOptions o = test::fast_opts(DeviceKind::Ch4);
  o.build = BuildConfig::no_err_single_ipo();
  World w(2, o);
  w.run([&](Engine& e) {
    if (e.world_rank() == 0) {
      fn(e, out);
    } else {
      // The metered sends are 4-byte eager messages that complete locally at
      // the origin; the engine/fabric teardown reclaims the undelivered
      // packets, so rank 1 has nothing to do.
      e.progress();
    }
  });
  return out;
}

TEST(Fig6, GlobalRankSavesTranslation) {
  const cost::Meter m = measure_ext([](Engine& e, cost::Meter& out) {
    int v = 1;
    Request r = kRequestNull;
    cost::ScopedMeter arm(out);
    ASSERT_EQ(e.isend_global(&v, 1, kInt, 1, 1, kCommWorld, &r), Err::Success);
  });
  EXPECT_EQ(m.total(), 49u);  // 59 - (11 - 1): ~10 instructions (Section 3.1)
  EXPECT_EQ(m.category(C::MandRankmap), cost::kMandRankGlobalLoad);
}

TEST(Fig6, NpnSavesBranch) {
  const cost::Meter m = measure_ext([](Engine& e, cost::Meter& out) {
    int v = 1;
    Request r = kRequestNull;
    cost::ScopedMeter arm(out);
    ASSERT_EQ(e.isend_npn(&v, 1, kInt, 1, 1, kCommWorld, &r), Err::Success);
  });
  EXPECT_EQ(m.total(), 56u);  // 59 - 3 (Section 3.4)
  EXPECT_EQ(m.category(C::MandProcNull), 0u);
}

TEST(Fig6, NoreqSavesRequestManagement) {
  const cost::Meter m = measure_ext([](Engine& e, cost::Meter& out) {
    int v = 1;
    cost::ScopedMeter arm(out);
    ASSERT_EQ(e.isend_noreq(&v, 1, kInt, 1, 1, kCommWorld), Err::Success);
  });
  EXPECT_EQ(m.total(), 49u);  // request alloc (13) -> counter (3): ~10 saved
  EXPECT_EQ(m.category(C::MandRequest), cost::kMandCompletionCounter);
}

TEST(Fig6, NomatchSavesMatchBits) {
  const cost::Meter m = measure_ext([](Engine& e, cost::Meter& out) {
    int v = 1;
    Request r = kRequestNull;
    cost::ScopedMeter arm(out);
    ASSERT_EQ(e.isend_nomatch(&v, 1, kInt, 1, kCommWorld, &r), Err::Success);
  });
  EXPECT_EQ(m.total(), 55u);  // match bits (5) -> context load (1)
  EXPECT_EQ(m.category(C::MandMatch), cost::kMandMatchCtxLoad);
}

TEST(Fig6, AllOptsReachesSixteenInstructions) {
  cost::Meter out;
  WorldOptions o = test::fast_opts(DeviceKind::Ch4);
  o.build = BuildConfig::no_err_single_ipo();
  World w(2, o);
  w.run([&](Engine& e) {
    if (e.world_rank() == 0) {
      ASSERT_EQ(e.comm_dup_predefined(kCommWorld, kComm1), Err::Success);
      int v = 1;
      {
        cost::ScopedMeter arm(out);
        ASSERT_EQ(e.isend_all_opts(&v, 1, kInt, 1, kComm1), Err::Success);
      }
      ASSERT_EQ(e.comm_waitall(kComm1), Err::Success);
    } else {
      ASSERT_EQ(e.comm_dup_predefined(kCommWorld, kComm1), Err::Success);
      int got = 0;
      Request r = kRequestNull;
      ASSERT_EQ(e.irecv_nomatch(&got, 1, kInt, kComm1, &r), Err::Success);
      ASSERT_EQ(e.wait(&r, nullptr), Err::Success);
      EXPECT_EQ(got, 1);
    }
  });
  EXPECT_EQ(out.total(), 16u);  // the paper's headline minimal path
}

// ---------------------------------------------------------------------------
// Closed-form totals (used by the simulated-CPU mode) must equal the counts
// accumulated by actually walking the code paths -- now per category, so
// every charge-site tag is pinned, not just the sums.
// ---------------------------------------------------------------------------

TEST(ClosedForm, IsendBreakdownsMatchMeteredPaths) {
  const BuildConfig builds[] = {BuildConfig::dflt(), BuildConfig::no_err(),
                                BuildConfig::no_err_single(),
                                BuildConfig::no_err_single_ipo()};
  for (DeviceKind dev : {DeviceKind::Ch4, DeviceKind::Orig}) {
    for (const BuildConfig& b : builds) {
      const cost::Meter::Snapshot metered = measure_isend(dev, b).snapshot();
      const cost::Breakdown closed = cost::modeled_isend_breakdown(
          dev == DeviceKind::Orig, b.error_checking, b.thread_safety, b.ipo);
      EXPECT_EQ(metered.total, closed.total()) << to_string(dev) << " " << b.label();
      for (std::size_t c = 0; c < cost::kNumCategories; ++c) {
        EXPECT_EQ(metered.by_category[c], closed.by_category[c])
            << to_string(dev) << " " << b.label() << " "
            << cost::to_string(static_cast<C>(c));
      }
    }
  }
}

TEST(ClosedForm, PutBreakdownsMatchMeteredPaths) {
  const BuildConfig builds[] = {BuildConfig::dflt(), BuildConfig::no_err(),
                                BuildConfig::no_err_single(),
                                BuildConfig::no_err_single_ipo()};
  for (DeviceKind dev : {DeviceKind::Ch4, DeviceKind::Orig}) {
    for (const BuildConfig& b : builds) {
      const cost::Meter::Snapshot metered = measure_put(dev, b).snapshot();
      const cost::Breakdown closed = cost::modeled_put_breakdown(
          dev == DeviceKind::Orig, b.error_checking, b.thread_safety, b.ipo);
      EXPECT_EQ(metered.total, closed.total()) << to_string(dev) << " " << b.label();
      for (std::size_t c = 0; c < cost::kNumCategories; ++c) {
        EXPECT_EQ(metered.by_category[c], closed.by_category[c])
            << to_string(dev) << " " << b.label() << " "
            << cost::to_string(static_cast<C>(c));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Attribution tier: obs::attribution_row must reproduce the paper splits from
// the live path and self-verify against the model.
// ---------------------------------------------------------------------------

TEST(Attribution, RowsSelfVerifyAgainstModel) {
  const obs::AttributionRow isend =
      obs::attribution_row("isend", DeviceKind::Ch4, BuildConfig::dflt());
  EXPECT_TRUE(isend.model_ok);
  EXPECT_EQ(isend.metered.total, 221u);
  EXPECT_EQ(isend.metered.group(G::ErrorChecking), 74u);
  const obs::AttributionRow put =
      obs::attribution_row("put", DeviceKind::Ch4, BuildConfig::dflt());
  EXPECT_TRUE(put.model_ok);
  EXPECT_EQ(put.metered.total, 215u);
  EXPECT_EQ(put.metered.group(G::Mandatory), 44u);
}

TEST(SimulatedCpu, SpinsScaleWithModeledInstructions) {
  // With a large ns-per-instruction, the orig device (253 instr/send) must be
  // measurably slower per send than the best ch4 build (59 instr/send).
  auto timed_sends = [](DeviceKind dev, BuildConfig build) {
    WorldOptions o = test::fast_opts(dev);
    o.build = build;
    o.sim_ns_per_instruction = 50.0;
    World w(1, o);  // self-sends: no peer needed
    std::uint64_t ns = 0;
    w.run([&](Engine& e) {
      char byte = 0;
      constexpr int kN = 200;
      std::vector<Request> reqs(kN, kRequestNull);
      const auto t0 = rt::now_ns();
      for (int i = 0; i < kN; ++i) {
        e.isend(&byte, 1, kChar, 0, 0, kCommWorld, &reqs[static_cast<std::size_t>(i)]);
      }
      ns = rt::now_ns() - t0;
      e.waitall(reqs, {});
      // Receive everything so engine teardown is clean.
      for (int i = 0; i < kN; ++i) {
        char sink = 0;
        e.recv(&sink, 1, kChar, 0, 0, kCommWorld, nullptr);
      }
    });
    return ns;
  };
  const std::uint64_t orig_ns = timed_sends(DeviceKind::Orig, BuildConfig::dflt());
  const std::uint64_t ch4_ns =
      timed_sends(DeviceKind::Ch4, BuildConfig::no_err_single_ipo());
  // 253 vs 59 modeled instructions at 50 ns each: expect a clear gap even
  // with scheduler noise (threshold is a loose 1.5x).
  EXPECT_GT(static_cast<double>(orig_ns), 1.5 * static_cast<double>(ch4_ns));
}

// ---------------------------------------------------------------------------
// Meter mechanics
// ---------------------------------------------------------------------------

TEST(Meter, UnarmedChargesAreFree) {
  cost::charge(C::ErrCheck, 100);  // no meter armed: must be a no-op
  cost::Meter m;
  {
    cost::ScopedMeter arm(m);
    cost::charge(C::ErrCheck, 5);
  }
  cost::charge(C::ErrCheck, 100);  // disarmed again
  EXPECT_EQ(m.total(), 5u);
}

TEST(Meter, NestedScopesRestore) {
  cost::Meter outer, inner;
  cost::ScopedMeter a(outer);
  cost::charge(C::MandInject, 1);
  {
    cost::ScopedMeter b(inner);
    cost::charge(C::MandInject, 2);
  }
  cost::charge(C::MandInject, 4);
  EXPECT_EQ(outer.total(), 5u);
  EXPECT_EQ(inner.total(), 2u);
}

TEST(Meter, DeeplyNestedScopesReArmEachPrevious) {
  // Three levels: every scope exit must re-arm the meter that was armed when
  // the scope opened, not simply disarm.
  cost::Meter a, b, c;
  {
    cost::ScopedMeter sa(a);
    cost::charge(C::CallOverhead, 1);
    {
      cost::ScopedMeter sb(b);
      cost::charge(C::CallOverhead, 2);
      {
        cost::ScopedMeter sc(c);
        cost::charge(C::CallOverhead, 4);
      }
      cost::charge(C::CallOverhead, 8);  // back to b
    }
    cost::charge(C::CallOverhead, 16);  // back to a
  }
  cost::charge(C::CallOverhead, 32);  // disarmed
  EXPECT_EQ(a.total(), 17u);
  EXPECT_EQ(b.total(), 10u);
  EXPECT_EQ(c.total(), 4u);
}

TEST(Meter, MergeAccumulatesAllBreakdowns) {
  cost::Meter a, b;
  {
    cost::ScopedMeter arm(a);
    cost::charge(C::ErrCheck, 3);
    cost::charge(C::MandMatch, 5);
  }
  {
    cost::ScopedMeter arm(b);
    cost::charge(C::ErrCheck, 7);
    cost::charge(C::MandInject, 11);
  }
  a += b;
  EXPECT_EQ(a.total(), 26u);
  EXPECT_EQ(a.category(C::ErrCheck), 10u);
  EXPECT_EQ(a.group(G::Mandatory), 16u);
  EXPECT_EQ(a.category(C::MandMatch), 5u);
  EXPECT_EQ(a.category(C::MandInject), 11u);
  // The right-hand side is untouched.
  EXPECT_EQ(b.total(), 18u);
}

TEST(Meter, SnapshotIsDecoupledFromLiveMeter) {
  cost::Meter m;
  {
    cost::ScopedMeter arm(m);
    cost::charge(C::ThreadGate, 6);
    cost::charge(C::MandObject, 2);
  }
  const cost::Meter::Snapshot s = m.snapshot();
  EXPECT_EQ(s.total, 8u);
  EXPECT_EQ(s.category(C::ThreadGate), 6u);
  EXPECT_EQ(s.group(cost::Group::Mandatory), 2u);
  EXPECT_EQ(s.category(C::MandObject), 2u);

  // Further charges move the meter but not the snapshot.
  {
    cost::ScopedMeter arm(m);
    cost::charge(C::ThreadGate, 100);
  }
  EXPECT_EQ(m.total(), 108u);
  EXPECT_EQ(s.total, 8u);
  // reset() clears the meter; the snapshot still holds the old tallies.
  m.reset();
  EXPECT_EQ(m.total(), 0u);
  EXPECT_EQ(s.category(C::ThreadGate), 6u);
}

TEST(Meter, FineCategoriesRollUpToGroups) {
  cost::Meter m;
  {
    cost::ScopedMeter arm(m);
    cost::charge(C::MandMatch, 5);
    cost::charge(C::MandInject, 2);
    cost::charge(C::OrigLayering, 9);
  }
  EXPECT_EQ(m.group(G::Mandatory), 7u);
  EXPECT_EQ(m.group(G::OrigLayering), 9u);
  EXPECT_EQ(m.category(C::MandMatch), 5u);
  EXPECT_EQ(m.category(C::MandInject), 2u);
  EXPECT_EQ(cost::group_of(C::MandVa), G::Mandatory);
  EXPECT_EQ(cost::group_of(C::ErrCheck), G::ErrorChecking);
  EXPECT_EQ(cost::group_of(C::OrigLayering), G::OrigLayering);
}

TEST(Meter, ResetClears) {
  cost::Meter m;
  {
    cost::ScopedMeter arm(m);
    cost::charge(C::CallOverhead, 9);
  }
  m.reset();
  EXPECT_EQ(m.total(), 0u);
  EXPECT_EQ(m.category(C::CallOverhead), 0u);
}

TEST(Meter, CategoryNamesAreStable) {
  EXPECT_EQ(cost::to_string(G::ErrorChecking), "error-checking");
  EXPECT_EQ(cost::to_string(G::Mandatory), "mpi-mandatory");
  EXPECT_EQ(cost::to_string(C::MandRankmap), "mand-rankmap(3.1)");
  EXPECT_EQ(cost::to_string(C::MandMatch), "mand-match(3.6)");
  EXPECT_EQ(cost::to_string(C::OrigLayering), "orig-layering");
}

}  // namespace
}  // namespace lwmpi
