// Network simulator (fabric + profiles) tests.
#include <gtest/gtest.h>

#include <thread>

#include "net/fabric.hpp"
#include "net/profile.hpp"
#include "runtime/backoff.hpp"
#include "runtime/packet.hpp"

namespace lwmpi::net {
namespace {

rt::Packet* make_packet(Tag tag) {
  rt::Packet* p = rt::PacketPool::alloc();
  p->hdr.tag = tag;
  return p;
}

TEST(Profile, SerializationTime) {
  Profile p;
  p.bytes_per_us = 1000;  // 1 GB/s
  EXPECT_EQ(p.serialization_ns(0), 0u);
  EXPECT_EQ(p.serialization_ns(1000), 1000u);
  EXPECT_EQ(p.serialization_ns(500), 500u);
  Profile inf;
  EXPECT_EQ(inf.serialization_ns(1 << 20), 0u);  // infinite bandwidth
}

TEST(Profile, SerializationTimeLargePayloadsDoNotOverflow) {
  Profile p;
  p.bytes_per_us = 12'000;  // the psm2/ucx profile bandwidth

  // The naive `bytes * 1000 / bytes_per_us` wraps once bytes exceeds
  // 2^64 / 1000 (~18.4 PB): with this bandwidth the wrapped result for 2^54
  // bytes came out ~5 orders of magnitude too small. Check against the exact
  // value computed without the intermediate product.
  const std::uint64_t big = std::uint64_t{1} << 54;  // 16 PiB: bytes*1000 wraps
  const std::uint64_t whole_us = big / p.bytes_per_us;
  const std::uint64_t rem = big % p.bytes_per_us;
  const std::uint64_t exact = whole_us * 1000 + rem * 1000 / p.bytes_per_us;
  EXPECT_EQ(p.serialization_ns(big), exact);
  EXPECT_GT(p.serialization_ns(big), p.serialization_ns(big / 2));

  // Sub-microsecond remainders keep nanosecond resolution.
  p.bytes_per_us = 1000;
  EXPECT_EQ(p.serialization_ns(1), 1u);
  EXPECT_EQ(p.serialization_ns(999), 999u);
  EXPECT_EQ(p.serialization_ns(1001), 1001u);
  // Boundary: exactly one whole microsecond per division step.
  p.bytes_per_us = 3;
  EXPECT_EQ(p.serialization_ns(3), 1000u);
  EXPECT_EQ(p.serialization_ns(4), 1333u);  // 1000 + floor(1*1000/3)
}

TEST(Profile, NamedProfilesAreSane) {
  EXPECT_GT(psm2().inject_cost_ns, 0u);
  EXPECT_GT(ucx_edr().inject_cost_ns, psm2().inject_cost_ns);
  EXPECT_TRUE(infinite().blackhole);
  EXPECT_EQ(infinite().inject_cost_ns, 0u);
  EXPECT_GT(bgq().latency_ns, psm2().latency_ns);
  // shm path must be cheaper than the network path on every real profile.
  for (const Profile& p : {psm2(), ucx_edr(), bgq()}) {
    EXPECT_LT(p.shm_inject_cost_ns, p.inject_cost_ns) << p.name;
    EXPECT_LT(p.shm_latency_ns, p.latency_ns) << p.name;
  }
}

TEST(Fabric, NodeLocality) {
  Fabric f(8, 4, loopback());
  EXPECT_EQ(f.node_of(0), 0);
  EXPECT_EQ(f.node_of(3), 0);
  EXPECT_EQ(f.node_of(4), 1);
  EXPECT_TRUE(f.same_node(0, 3));
  EXPECT_FALSE(f.same_node(3, 4));
  EXPECT_EQ(f.ranks_per_node(), 4);
}

TEST(Fabric, RanksPerNodeClampedToOne) {
  Fabric f(4, 0, loopback());
  EXPECT_EQ(f.ranks_per_node(), 1);
  EXPECT_FALSE(f.same_node(0, 1));
}

TEST(Fabric, DeliversInOrder) {
  Fabric f(2, 2, loopback());
  for (Tag t = 0; t < 5; ++t) f.inject(0, 1, make_packet(t));
  for (Tag t = 0; t < 5; ++t) {
    rt::Packet* p = f.poll(1);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->hdr.tag, t);
    rt::PacketPool::free(p);
  }
  EXPECT_EQ(f.poll(1), nullptr);
  EXPECT_TRUE(f.idle(1));
}

TEST(Fabric, CountsInjectedAndDelivered) {
  Fabric f(2, 2, loopback());
  f.inject(0, 1, make_packet(1));
  f.inject(0, 1, make_packet(2));
  EXPECT_EQ(f.injected(1), 2u);
  EXPECT_EQ(f.delivered(1), 0u);
  rt::PacketPool::free(f.poll(1));
  EXPECT_EQ(f.delivered(1), 1u);
  rt::PacketPool::free(f.poll(1));
  EXPECT_EQ(f.delivered(1), 2u);
}

TEST(Fabric, BlackholeDropsAtInjection) {
  Fabric f(2, 2, infinite());
  f.inject(0, 1, make_packet(1));
  f.inject(0, 1, make_packet(2));
  EXPECT_EQ(f.dropped(), 2u);
  EXPECT_EQ(f.injected(1), 0u);
  EXPECT_EQ(f.poll(1), nullptr);
}

TEST(Fabric, LatencyMaturation) {
  Profile p;
  p.latency_ns = 3'000'000;  // 3 ms inter-node
  p.shm_latency_ns = 0;
  Fabric f(4, 2, p);
  f.inject(0, 2, make_packet(7));  // cross-node: latency applies
  // Immediately after injection the packet has not matured.
  EXPECT_EQ(f.poll(2), nullptr);
  std::this_thread::sleep_for(std::chrono::milliseconds(6));
  rt::Packet* got = f.poll(2);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->hdr.tag, 7);
  rt::PacketPool::free(got);
}

TEST(Fabric, IntraNodeSkipsNetworkLatency) {
  Profile p;
  p.latency_ns = 50'000'000;  // would stall for 50 ms if misclassified
  p.shm_latency_ns = 0;
  Fabric f(4, 2, p);
  f.inject(0, 1, make_packet(9));  // same node
  rt::Packet* got = f.poll(1);
  ASSERT_NE(got, nullptr);
  rt::PacketPool::free(got);
}

TEST(Fabric, InjectionCostIsPaid) {
  Profile p;
  p.inject_cost_ns = 2'000'000;  // 2 ms, measurable
  Fabric f(2, 1, p);
  const auto t0 = rt::now_ns();
  f.inject(0, 1, make_packet(1));
  const auto dt = rt::now_ns() - t0;
  EXPECT_GE(dt, 2'000'000u);
  rt::PacketPool::free(f.poll(1));
}

TEST(Fabric, ChargeInjectionWithoutPacket) {
  Profile p;
  p.inject_cost_ns = 2'000'000;
  Fabric f(2, 1, p);
  const auto t0 = rt::now_ns();
  f.charge_injection(0, 1);
  EXPECT_GE(rt::now_ns() - t0, 2'000'000u);
  EXPECT_EQ(f.poll(1), nullptr);  // nothing was transmitted
}

TEST(Fabric, DefaultBackendIsMailbox) {
  Fabric f(2, 2, loopback());
  EXPECT_EQ(f.backend_name(), "mailbox");
}

// Regression test: an out-of-range vci used to index straight into the lane
// table on the poll/counter side (inject alone had the lane-0 fallback). The
// facade now clamps every lane argument to lane 0.
TEST(Fabric, OutOfRangeVciFallsBackToLaneZero) {
  Fabric f(2, 2, loopback(), 2);
  rt::Packet* p = make_packet(5);
  p->hdr.vci = 7;  // out of range: inject falls back to lane 0
  f.inject(0, 1, p);
  EXPECT_EQ(f.pending(1, 7), f.pending(1, 0));
  EXPECT_EQ(f.pending(1, -3), f.pending(1, 0));
  EXPECT_EQ(f.injected(1, 99), f.injected(1, 0));
  EXPECT_EQ(f.injected(1, 0), 1u);
  // poll with an out-of-range lane reads lane 0 instead of walking off the
  // lane table.
  rt::Packet* got = f.poll(1, 42);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->hdr.tag, 5);
  rt::PacketPool::free(got);
  EXPECT_EQ(f.delivered(1, -1), 1u);
  EXPECT_EQ(f.poll(1, 1), nullptr);  // in-range lanes unaffected
  EXPECT_TRUE(f.idle(1));
}

TEST(Fabric, OutOfRangeVciGuardsApplyToRdmaBackendToo) {
  Fabric f(2, 2, loopback(), 2, "rdma");
  rt::Packet* p = make_packet(3);
  p->hdr.vci = 200;
  f.inject(0, 1, p);
  EXPECT_EQ(f.pending(1, 31), 1u);
  rt::Packet* got = f.poll(1, 31);
  ASSERT_NE(got, nullptr);
  rt::PacketPool::free(got);
  f.credit_return(1, 31);  // clamped like every other lane argument
  EXPECT_EQ(f.delivered(1, 31), 1u);
}

TEST(Backoff, SpinForNsWaitsAtLeastThatLong) {
  const auto t0 = rt::now_ns();
  rt::spin_for_ns(1'000'000);
  EXPECT_GE(rt::now_ns() - t0, 1'000'000u);
}

}  // namespace
}  // namespace lwmpi::net
