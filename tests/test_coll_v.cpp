// Variable-count collectives and reduce_scatter_block.
#include <gtest/gtest.h>

#include <array>
#include <numeric>
#include <vector>

#include "util.hpp"

namespace lwmpi {
namespace {

using test::spmd;

TEST(Gatherv, VariableBlockSizes) {
  spmd(4, [](Engine& e) {
    const int me = e.world_rank();
    // Rank i contributes i+1 ints: 1, 2, 3, 4 elements.
    std::vector<int> mine(static_cast<std::size_t>(me + 1));
    for (int i = 0; i <= me; ++i) mine[static_cast<std::size_t>(i)] = me * 10 + i;
    const std::array<int, 4> rcounts = {1, 2, 3, 4};
    const std::array<int, 4> displs = {0, 1, 3, 6};
    std::vector<int> all(10, -1);
    ASSERT_EQ(e.gatherv(mine.data(), me + 1, kInt, all.data(), rcounts, displs, kInt, 0,
                        kCommWorld),
              Err::Success);
    if (me == 0) {
      const std::vector<int> expect = {0, 10, 11, 20, 21, 22, 30, 31, 32, 33};
      EXPECT_EQ(all, expect);
    }
  });
}

TEST(Gatherv, GapsBetweenBlocks) {
  spmd(2, [](Engine& e) {
    const int me = e.world_rank();
    const int v = 7 + me;
    const std::array<int, 2> rcounts = {1, 1};
    const std::array<int, 2> displs = {0, 5};  // hole between blocks
    std::vector<int> all(6, -1);
    ASSERT_EQ(e.gatherv(&v, 1, kInt, all.data(), rcounts, displs, kInt, 0, kCommWorld),
              Err::Success);
    if (me == 0) {
      EXPECT_EQ(all[0], 7);
      EXPECT_EQ(all[5], 8);
      EXPECT_EQ(all[1], -1);  // untouched gap
    }
  });
}

TEST(Allgatherv, EveryoneAssembles) {
  spmd(3, [](Engine& e) {
    const int me = e.world_rank();
    std::vector<int> mine(static_cast<std::size_t>(me + 1), 100 * me);
    const std::array<int, 3> rcounts = {1, 2, 3};
    const std::array<int, 3> displs = {0, 1, 3};
    std::vector<int> all(6, -1);
    ASSERT_EQ(e.allgatherv(mine.data(), me + 1, kInt, all.data(), rcounts, displs, kInt,
                           kCommWorld),
              Err::Success);
    const std::vector<int> expect = {0, 100, 100, 200, 200, 200};
    EXPECT_EQ(all, expect);
  });
}

TEST(Scatterv, VariableBlockSizes) {
  spmd(3, [](Engine& e) {
    const int me = e.world_rank();
    std::vector<int> src;
    const std::array<int, 3> scounts = {3, 1, 2};
    const std::array<int, 3> displs = {0, 4, 6};
    if (me == 0) {
      src.resize(8);
      std::iota(src.begin(), src.end(), 0);  // 0..7
    }
    std::vector<int> mine(static_cast<std::size_t>(scounts[static_cast<std::size_t>(me)]),
                          -1);
    ASSERT_EQ(e.scatterv(src.data(), scounts, displs, kInt, mine.data(),
                         scounts[static_cast<std::size_t>(me)], kInt, 0, kCommWorld),
              Err::Success);
    if (me == 0) {
      EXPECT_EQ(mine, (std::vector<int>{0, 1, 2}));
    } else if (me == 1) {
      EXPECT_EQ(mine, (std::vector<int>{4}));
    } else {
      EXPECT_EQ(mine, (std::vector<int>{6, 7}));
    }
  });
}

TEST(Gatherv, BadRootRejected) {
  spmd(2, [](Engine& e) {
    const int v = 0;
    const std::array<int, 2> counts = {1, 1};
    const std::array<int, 2> displs = {0, 1};
    int out[2];
    EXPECT_EQ(e.gatherv(&v, 1, kInt, out, counts, displs, kInt, 9, kCommWorld), Err::Root);
    ASSERT_EQ(e.barrier(kCommWorld), Err::Success);
  });
}

TEST(ReduceScatterBlock, EachRankGetsItsBlock) {
  spmd(4, [](Engine& e) {
    const int me = e.world_rank();
    // Everyone contributes the vector [0,1,...,7]; the elementwise sum is
    // 4x that; rank i receives block i of size 2.
    std::vector<int> src(8);
    std::iota(src.begin(), src.end(), 0);
    int mine[2] = {-1, -1};
    ASSERT_EQ(e.reduce_scatter_block(src.data(), mine, 2, kInt, ReduceOp::Sum, kCommWorld),
              Err::Success);
    EXPECT_EQ(mine[0], 4 * (2 * me));
    EXPECT_EQ(mine[1], 4 * (2 * me + 1));
  });
}

TEST(ReduceScatterBlock, MaxOp) {
  spmd(2, [](Engine& e) {
    const int me = e.world_rank();
    const int src[2] = {me == 0 ? 5 : 9, me == 0 ? 8 : 3};
    int mine = -1;
    ASSERT_EQ(e.reduce_scatter_block(src, &mine, 1, kInt, ReduceOp::Max, kCommWorld),
              Err::Success);
    EXPECT_EQ(mine, me == 0 ? 9 : 8);
  });
}

TEST(ReduceScatterBlock, DerivedTypeRejected) {
  spmd(2, [](Engine& e) {
    Datatype t = kDatatypeNull;
    ASSERT_EQ(e.type_contiguous(2, kInt, &t), Err::Success);
    ASSERT_EQ(e.type_commit(&t), Err::Success);
    int in[4] = {0};
    int out[2];
    EXPECT_EQ(e.reduce_scatter_block(in, out, 1, t, ReduceOp::Sum, kCommWorld),
              Err::Datatype);
    ASSERT_EQ(e.barrier(kCommWorld), Err::Success);
  });
}

TEST(Allgatherv, WorksOnSubCommunicator) {
  spmd(4, [](Engine& e) {
    const int me = e.world_rank();
    Comm evens = kCommNull;
    ASSERT_EQ(e.comm_split(kCommWorld, me % 2, me, &evens), Err::Success);
    const int sub_me = e.rank(evens);
    const int v = 1000 + me;
    const std::array<int, 2> counts = {1, 1};
    const std::array<int, 2> displs = {1, 0};  // reversed placement
    int all[2] = {-1, -1};
    ASSERT_EQ(e.allgatherv(&v, 1, kInt, all, counts, displs, kInt, evens), Err::Success);
    // Block of sub-rank 0 goes to index 1 and vice versa.
    const int base = me % 2;
    EXPECT_EQ(all[1], 1000 + base);
    EXPECT_EQ(all[0], 1000 + base + 2);
    (void)sub_me;
    ASSERT_EQ(e.comm_free(&evens), Err::Success);
  });
}

}  // namespace
}  // namespace lwmpi
