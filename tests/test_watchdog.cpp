// Hang-diagnosis watchdog (obs/watchdog.hpp): a genuinely deadlocked tag
// mismatch must be diagnosed with the stuck rank, its blocking call, and the
// unmatched (comm, tag, peer); slow-but-progressing rendezvous traffic must
// never trip it. Both tests run real rank threads plus the watchdog's
// sampling thread, so they carry the concurrency label and run under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/watchdog.hpp"
#include "util.hpp"

namespace lwmpi {
namespace {

TEST(Watchdog, DiagnosesTagMismatchDeadlock) {
  WorldOptions o = test::fast_opts();
  o.build.lat_sample_shift = 0;  // stamp every post: the diagnosis carries ages
  World w(2, o);

  obs::WatchdogOptions wo;
  wo.stall_ns = 150'000'000;  // generous under TSan, short enough for a test
  wo.poll_ns = 20'000'000;
  wo.report_path = "watchdog_report_test.json";  // cwd = build tree
  std::atomic<int> callbacks{0};
  wo.on_hang = [&](const obs::HangReport&) { callbacks.fetch_add(1); };
  obs::Watchdog wd(w, wo);

  w.run([&](Engine& e) {
    char b = 1;
    if (e.world_rank() == 0) {
      // The bug under diagnosis: rank 0 sends tag 7, rank 1 waits on tag 42.
      ASSERT_EQ(e.send(&b, 1, kChar, 1, 7, kCommWorld), Err::Success);
      while (wd.fires() == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      // Rescue send so the test terminates once the hang is diagnosed.
      ASSERT_EQ(e.send(&b, 1, kChar, 1, 42, kCommWorld), Err::Success);
    } else {
      ASSERT_EQ(e.recv(&b, 1, kChar, 0, 42, kCommWorld, nullptr), Err::Success);
    }
  });

  ASSERT_GE(wd.fires(), 1);
  EXPECT_GE(callbacks.load(), 1);
  const obs::HangReport r = wd.last_report();
  EXPECT_EQ(r.nranks, 2);

  // Rank 1 must be named, blocked in Wait, with the full story: the unmatched
  // posted receive (src 0, tag 42) and the tag-7 arrival it rejected.
  const obs::StuckRank* rank1 = nullptr;
  for (const obs::StuckRank& s : r.stuck) {
    if (s.rank == 1) rank1 = &s;
  }
  ASSERT_NE(rank1, nullptr);
  EXPECT_STREQ(rank1->call, "Wait");
  EXPECT_GE(rank1->blocked_ns, wo.stall_ns / 2);
  EXPECT_GE(rank1->stalled_ns, wo.stall_ns);

  ASSERT_TRUE(rank1->snap.oldest.valid);
  EXPECT_STREQ(rank1->snap.oldest.kind, "recv");
  EXPECT_EQ(rank1->snap.oldest.comm, kCommWorld);
  EXPECT_EQ(rank1->snap.oldest.peer, 0);
  EXPECT_EQ(rank1->snap.oldest.tag, 42);

  std::size_t posted = 0, unexpected = 0;
  for (const auto& v : rank1->snap.vcis) {
    for (const auto& p : v.posted) {
      ++posted;
      EXPECT_EQ(p.comm, kCommWorld);
      EXPECT_EQ(p.src, 0);
      EXPECT_EQ(p.tag, 42);
    }
    for (const auto& u : v.unexpected) {
      ++unexpected;
      EXPECT_EQ(u.src, 0);
      EXPECT_EQ(u.tag, 7);
    }
  }
  EXPECT_EQ(posted, 1u);
  EXPECT_EQ(unexpected, 1u);

  const std::string text = obs::render_text(r);
  EXPECT_NE(text.find("rank 1"), std::string::npos);
  EXPECT_NE(text.find("Wait"), std::string::npos);
  EXPECT_NE(text.find("tag=42"), std::string::npos);

  // The report file (what tools/hangdump reads) carries the same diagnosis.
  std::ifstream f(wo.report_path);
  ASSERT_TRUE(f.good());
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"stuck\":["), std::string::npos);
  EXPECT_NE(json.find("\"rank\":1"), std::string::npos);
  EXPECT_NE(json.find("\"call\":\"Wait\""), std::string::npos);
  EXPECT_NE(json.find("\"tag\":42"), std::string::npos);
}

TEST(Watchdog, NoFalsePositiveOnSlowRendezvousTraffic) {
  // Rendezvous traffic where the receiver is chronically late, but always
  // late by less than the stall window: every arrival is progress, so the
  // watchdog must stay silent end to end.
  WorldOptions o = test::fast_opts();
  o.eager_threshold = 1024;  // 64 KiB payloads take the rendezvous path
  World w(2, o);

  obs::WatchdogOptions wo;
  wo.stall_ns = 600'000'000;
  wo.poll_ns = 20'000'000;
  obs::Watchdog wd(w, wo);

  constexpr int kMsgs = 5;
  constexpr int kBytes = 64 * 1024;
  w.run([&](Engine& e) {
    if (e.world_rank() == 0) {
      std::vector<char> out(kBytes, 's');
      std::vector<Request> reqs(kMsgs, kRequestNull);
      for (int i = 0; i < kMsgs; ++i) {
        ASSERT_EQ(e.isend(out.data(), kBytes, kChar, 1, i, kCommWorld,
                          &reqs[static_cast<std::size_t>(i)]),
                  Err::Success);
      }
      ASSERT_EQ(e.waitall(reqs, {}), Err::Success);
    } else {
      std::vector<char> in(kBytes, 0);
      for (int i = 0; i < kMsgs; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        ASSERT_EQ(e.recv(in.data(), kBytes, kChar, 0, i, kCommWorld, nullptr),
                  Err::Success);
        ASSERT_EQ(in[kBytes / 2], 's');
      }
    }
  });

  EXPECT_EQ(wd.fires(), 0);
  EXPECT_TRUE(wd.last_report().stuck.empty());
}

}  // namespace
}  // namespace lwmpi
