// Tests for the heterogeneous datatype constructors (hvector, hindexed,
// resized, dup) and their interaction with communication.
#include <gtest/gtest.h>

#include <array>
#include <numeric>
#include <vector>

#include "datatype/datatype.hpp"
#include "util.hpp"

namespace lwmpi::dt {
namespace {

TEST(HVector, ByteStrides) {
  TypeEngine eng;
  Datatype t = kDatatypeNull;
  // 3 blocks of 1 int, strided by 10 bytes (not an int multiple).
  ASSERT_EQ(eng.hvector(3, 1, 10, kInt, &t), Err::Success);
  const TypeInfo* info = eng.info(t);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->size, 12u);
  ASSERT_EQ(info->segments.size(), 3u);
  EXPECT_EQ(info->segments[0], (Segment{0, 4}));
  EXPECT_EQ(info->segments[1], (Segment{10, 4}));
  EXPECT_EQ(info->segments[2], (Segment{20, 4}));
  EXPECT_EQ(info->extent, 24);
}

TEST(HVector, MatchesVectorWhenStrideIsExtentMultiple) {
  TypeEngine eng;
  Datatype hv = kDatatypeNull, v = kDatatypeNull;
  ASSERT_EQ(eng.hvector(4, 2, 3 * 8, kDouble, &hv), Err::Success);
  ASSERT_EQ(eng.vector(4, 2, 3, kDouble, &v), Err::Success);
  EXPECT_EQ(eng.info(hv)->segments, eng.info(v)->segments);
}

TEST(HIndexed, ByteDisplacements) {
  TypeEngine eng;
  Datatype t = kDatatypeNull;
  const std::array<int, 2> lens = {2, 1};
  const std::array<std::int64_t, 2> displs = {1, 17};  // deliberately unaligned
  ASSERT_EQ(eng.hindexed(lens, displs, kChar, &t), Err::Success);
  const TypeInfo* info = eng.info(t);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->size, 3u);
  EXPECT_EQ(info->lb, 1);
  EXPECT_EQ(info->extent, 17);  // [1, 18)
}

TEST(Resized, OverridesExtent) {
  TypeEngine eng;
  // A single int resized to extent 16: elements are spaced 16 bytes apart.
  Datatype t = kDatatypeNull;
  ASSERT_EQ(eng.create_resized(kInt, 0, 16, &t), Err::Success);
  ASSERT_EQ(eng.commit(&t), Err::Success);
  const TypeInfo* info = eng.info(t);
  EXPECT_EQ(info->size, 4u);
  EXPECT_EQ(info->extent, 16);
  EXPECT_FALSE(info->contiguous);

  // Pack 3 elements: ints taken from offsets 0, 16, 32.
  std::array<std::byte, 48> raw{};
  for (int i = 0; i < 3; ++i) {
    const int v = 7 + i;
    std::memcpy(raw.data() + i * 16, &v, 4);
  }
  std::array<std::int32_t, 3> out{};
  std::vector<std::byte> buf(packed_size(eng, 3, t));
  EXPECT_EQ(buf.size(), 12u);
  pack(eng, raw.data(), 3, t, buf.data());
  std::memcpy(out.data(), buf.data(), 12);
  EXPECT_EQ(out, (std::array<std::int32_t, 3>{7, 8, 9}));
}

TEST(Resized, RejectsNegativeExtent) {
  TypeEngine eng;
  Datatype t = kDatatypeNull;
  EXPECT_EQ(eng.create_resized(kInt, 0, -4, &t), Err::Arg);
}

TEST(Dup, CopiesCommitState) {
  TypeEngine eng;
  Datatype orig = kDatatypeNull;
  ASSERT_EQ(eng.vector(2, 1, 2, kInt, &orig), Err::Success);
  Datatype dup_uncommitted = kDatatypeNull;
  ASSERT_EQ(eng.dup(orig, &dup_uncommitted), Err::Success);
  EXPECT_FALSE(eng.committed_or_builtin(dup_uncommitted));

  ASSERT_EQ(eng.commit(&orig), Err::Success);
  Datatype dup_committed = kDatatypeNull;
  ASSERT_EQ(eng.dup(orig, &dup_committed), Err::Success);
  EXPECT_TRUE(eng.committed_or_builtin(dup_committed));
  // The copies are independent: freeing the original leaves the dup valid.
  ASSERT_EQ(eng.free_type(&orig), Err::Success);
  EXPECT_TRUE(eng.valid(dup_committed));
  EXPECT_EQ(eng.info(dup_committed)->size, 8u);
}

TEST(Dup, BuiltinDupIsCommitted) {
  TypeEngine eng;
  Datatype d = kDatatypeNull;
  ASSERT_EQ(eng.dup(kDouble, &d), Err::Success);
  EXPECT_TRUE(eng.committed_or_builtin(d));
  EXPECT_EQ(eng.info(d)->size, 8u);
}

}  // namespace
}  // namespace lwmpi::dt

namespace lwmpi {
namespace {

using test::spmd;

TEST(HDatatypeComm, ResizedTransferPlacesElements) {
  // Sender packs a contiguous array; receiver scatters into a struct-like
  // layout via a resized type -- the classic AoS fill.
  spmd(2, [](Engine& e) {
    if (e.world_rank() == 0) {
      const std::array<std::int32_t, 4> vals = {1, 2, 3, 4};
      ASSERT_EQ(e.send(vals.data(), 4, kInt32, 1, 1, kCommWorld), Err::Success);
    } else {
      Datatype spaced = kDatatypeNull;
      ASSERT_EQ(e.type_create_resized(kInt32, 0, 12, &spaced), Err::Success);
      ASSERT_EQ(e.type_commit(&spaced), Err::Success);
      std::array<std::int32_t, 12> raw;
      raw.fill(-1);
      ASSERT_EQ(e.recv(raw.data(), 4, spaced, 0, 1, kCommWorld, nullptr), Err::Success);
      // Every third int carries data; the rest stay -1.
      EXPECT_EQ(raw[0], 1);
      EXPECT_EQ(raw[3], 2);
      EXPECT_EQ(raw[6], 3);
      EXPECT_EQ(raw[9], 4);
      EXPECT_EQ(raw[1], -1);
      EXPECT_EQ(raw[4], -1);
      ASSERT_EQ(e.type_free(&spaced), Err::Success);
    }
  });
}

TEST(HDatatypeComm, HIndexedGatherOnSend) {
  spmd(2, [](Engine& e) {
    if (e.world_rank() == 0) {
      Datatype picks = kDatatypeNull;
      const std::array<int, 3> lens = {1, 1, 2};
      const std::array<std::int64_t, 3> displs = {0, 12, 20};  // bytes
      ASSERT_EQ(e.type_create_hindexed(lens, displs, kInt32, &picks), Err::Success);
      ASSERT_EQ(e.type_commit(&picks), Err::Success);
      std::array<std::int32_t, 8> src{};
      std::iota(src.begin(), src.end(), 10);  // 10..17
      ASSERT_EQ(e.send(src.data(), 1, picks, 1, 1, kCommWorld), Err::Success);
      ASSERT_EQ(e.type_free(&picks), Err::Success);
    } else {
      std::array<std::int32_t, 4> got{};
      ASSERT_EQ(e.recv(got.data(), 4, kInt32, 0, 1, kCommWorld, nullptr), Err::Success);
      // Picked ints at byte offsets 0, 12, 20, 24 -> values 10, 13, 15, 16.
      EXPECT_EQ(got, (std::array<std::int32_t, 4>{10, 13, 15, 16}));
    }
  });
}

}  // namespace
}  // namespace lwmpi
