// Point-to-point integration tests over both devices, eager and rendezvous
// protocols, wildcards, ordering, truncation, and probe.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "util.hpp"

namespace lwmpi {
namespace {

using test::fast_opts;
using test::spmd;

// Parameter: (device, message bytes). Sizes straddle the eager threshold.
struct PtParam {
  DeviceKind device;
  std::size_t bytes;
};

class Pt2PtSweep : public ::testing::TestWithParam<PtParam> {};

TEST_P(Pt2PtSweep, PingPongPreservesData) {
  const PtParam p = GetParam();
  const auto n = static_cast<int>(p.bytes);
  spmd(
      2,
      [&](Engine& e) {
        std::vector<char> buf(p.bytes);
        if (e.world_rank() == 0) {
          for (std::size_t i = 0; i < p.bytes; ++i) {
            buf[i] = static_cast<char>(i * 7 + 3);
          }
          ASSERT_EQ(e.send(buf.data(), n, kChar, 1, 5, kCommWorld), Err::Success);
          std::vector<char> back(p.bytes, 0);
          Status st;
          ASSERT_EQ(e.recv(back.data(), n, kChar, 1, 6, kCommWorld, &st), Err::Success);
          EXPECT_EQ(st.byte_count, p.bytes);
          EXPECT_EQ(std::memcmp(back.data(), buf.data(), p.bytes), 0);
        } else {
          std::vector<char> in(p.bytes, 0);
          Status st;
          ASSERT_EQ(e.recv(in.data(), n, kChar, 0, 5, kCommWorld, &st), Err::Success);
          EXPECT_EQ(st.source, 0);
          EXPECT_EQ(st.tag, 5);
          EXPECT_EQ(st.byte_count, p.bytes);
          ASSERT_EQ(e.send(in.data(), n, kChar, 0, 6, kCommWorld), Err::Success);
        }
      },
      fast_opts(p.device));
}

INSTANTIATE_TEST_SUITE_P(
    DevicesAndSizes, Pt2PtSweep,
    ::testing::Values(PtParam{DeviceKind::Ch4, 1}, PtParam{DeviceKind::Ch4, 64},
                      PtParam{DeviceKind::Ch4, 4096}, PtParam{DeviceKind::Ch4, 16 * 1024},
                      PtParam{DeviceKind::Ch4, 16 * 1024 + 1},  // first rendezvous size
                      PtParam{DeviceKind::Ch4, 1 << 20},        // multi-segment rendezvous
                      PtParam{DeviceKind::Orig, 1}, PtParam{DeviceKind::Orig, 4096},
                      PtParam{DeviceKind::Orig, 16 * 1024 + 1},
                      PtParam{DeviceKind::Orig, 1 << 20}));

class Pt2PtDevice : public ::testing::TestWithParam<DeviceKind> {};

TEST_P(Pt2PtDevice, UnexpectedMessageIsBuffered) {
  spmd(
      2,
      [](Engine& e) {
        if (e.world_rank() == 0) {
          int v = 99;
          ASSERT_EQ(e.send(&v, 1, kInt, 1, 7, kCommWorld), Err::Success);
          // Handshake so rank 1 only posts the receive afterwards.
          int token = 0;
          ASSERT_EQ(e.send(&token, 1, kInt, 1, 8, kCommWorld), Err::Success);
        } else {
          int token = -1;
          ASSERT_EQ(e.recv(&token, 1, kInt, 0, 8, kCommWorld, nullptr), Err::Success);
          // The tag-7 message arrived before this receive was posted.
          int v = 0;
          ASSERT_EQ(e.recv(&v, 1, kInt, 0, 7, kCommWorld, nullptr), Err::Success);
          EXPECT_EQ(v, 99);
        }
      },
      fast_opts(GetParam()));
}

TEST_P(Pt2PtDevice, TagSelectsAmongSenders) {
  spmd(
      2,
      [](Engine& e) {
        if (e.world_rank() == 0) {
          int a = 1, b = 2, c = 3;
          ASSERT_EQ(e.send(&a, 1, kInt, 1, 10, kCommWorld), Err::Success);
          ASSERT_EQ(e.send(&b, 1, kInt, 1, 11, kCommWorld), Err::Success);
          ASSERT_EQ(e.send(&c, 1, kInt, 1, 12, kCommWorld), Err::Success);
        } else {
          int v = 0;
          // Receive out of send order by tag.
          ASSERT_EQ(e.recv(&v, 1, kInt, 0, 12, kCommWorld, nullptr), Err::Success);
          EXPECT_EQ(v, 3);
          ASSERT_EQ(e.recv(&v, 1, kInt, 0, 10, kCommWorld, nullptr), Err::Success);
          EXPECT_EQ(v, 1);
          ASSERT_EQ(e.recv(&v, 1, kInt, 0, 11, kCommWorld, nullptr), Err::Success);
          EXPECT_EQ(v, 2);
        }
      },
      fast_opts(GetParam()));
}

TEST_P(Pt2PtDevice, SameTagDeliveredInOrder) {
  spmd(
      2,
      [](Engine& e) {
        constexpr int kN = 50;
        if (e.world_rank() == 0) {
          for (int i = 0; i < kN; ++i) {
            ASSERT_EQ(e.send(&i, 1, kInt, 1, 3, kCommWorld), Err::Success);
          }
        } else {
          for (int i = 0; i < kN; ++i) {
            int v = -1;
            ASSERT_EQ(e.recv(&v, 1, kInt, 0, 3, kCommWorld, nullptr), Err::Success);
            EXPECT_EQ(v, i);  // non-overtaking
          }
        }
      },
      fast_opts(GetParam()));
}

TEST_P(Pt2PtDevice, AnySourceReceives) {
  spmd(
      3,
      [](Engine& e) {
        if (e.world_rank() == 0) {
          int seen_sum = 0;
          for (int i = 0; i < 2; ++i) {
            int v = 0;
            Status st;
            ASSERT_EQ(e.recv(&v, 1, kInt, kAnySource, 1, kCommWorld, &st), Err::Success);
            EXPECT_EQ(st.source, v);  // sender encodes its rank
            seen_sum += v;
          }
          EXPECT_EQ(seen_sum, 3);  // ranks 1 and 2
        } else {
          int me = e.world_rank();
          ASSERT_EQ(e.send(&me, 1, kInt, 0, 1, kCommWorld), Err::Success);
        }
      },
      fast_opts(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(BothDevices, Pt2PtDevice,
                         ::testing::Values(DeviceKind::Ch4, DeviceKind::Orig));

TEST(Pt2Pt, ProcNullSendAndRecvCompleteImmediately) {
  spmd(1, [](Engine& e) {
    int v = 5;
    ASSERT_EQ(e.send(&v, 1, kInt, kProcNull, 0, kCommWorld), Err::Success);
    Status st;
    int r = 7;
    ASSERT_EQ(e.recv(&r, 1, kInt, kProcNull, 0, kCommWorld, &st), Err::Success);
    EXPECT_EQ(st.source, kProcNull);
    EXPECT_EQ(st.byte_count, 0u);
    EXPECT_EQ(r, 7);  // untouched
  });
}

TEST(Pt2Pt, SelfSendWithNonblockingPair) {
  spmd(1, [](Engine& e) {
    int out = 41, in = 0;
    Request rr = kRequestNull, sr = kRequestNull;
    ASSERT_EQ(e.irecv(&in, 1, kInt, 0, 2, kCommWorld, &rr), Err::Success);
    ASSERT_EQ(e.isend(&out, 1, kInt, 0, 2, kCommWorld, &sr), Err::Success);
    ASSERT_EQ(e.wait(&sr, nullptr), Err::Success);
    ASSERT_EQ(e.wait(&rr, nullptr), Err::Success);
    EXPECT_EQ(in, 41);
  });
}

TEST(Pt2Pt, TruncationReportsError) {
  spmd(2, [](Engine& e) {
    if (e.world_rank() == 0) {
      int big[8] = {1, 2, 3, 4, 5, 6, 7, 8};
      ASSERT_EQ(e.send(big, 8, kInt, 1, 1, kCommWorld), Err::Success);
    } else {
      int small[2] = {0, 0};
      Status st;
      EXPECT_EQ(e.recv(small, 2, kInt, 0, 1, kCommWorld, &st), Err::Truncate);
      EXPECT_EQ(st.byte_count, 8u);  // what fit
      EXPECT_EQ(small[0], 1);
      EXPECT_EQ(small[1], 2);
    }
  });
}

TEST(Pt2Pt, RendezvousTruncationAlsoReports) {
  spmd(2, [](Engine& e) {
    constexpr int kBig = 64 * 1024;  // over eager threshold
    if (e.world_rank() == 0) {
      std::vector<int> big(kBig, 3);
      ASSERT_EQ(e.send(big.data(), kBig, kInt, 1, 1, kCommWorld), Err::Success);
    } else {
      std::vector<int> small(128, 0);
      Status st;
      EXPECT_EQ(e.recv(small.data(), 128, kInt, 0, 1, kCommWorld, &st), Err::Truncate);
      EXPECT_EQ(st.byte_count, 128u * 4);
      EXPECT_EQ(small[0], 3);
      EXPECT_EQ(small[127], 3);
    }
  });
}

TEST(Pt2Pt, DerivedDatatypeTransfer) {
  spmd(2, [](Engine& e) {
    // Sender transmits a column of a 4x4 matrix; receiver stores contiguously.
    if (e.world_rank() == 0) {
      Datatype col = kDatatypeNull;
      ASSERT_EQ(e.type_vector(4, 1, 4, kInt, &col), Err::Success);
      ASSERT_EQ(e.type_commit(&col), Err::Success);
      int m[16];
      std::iota(m, m + 16, 0);
      ASSERT_EQ(e.send(&m[2], 1, col, 1, 1, kCommWorld), Err::Success);
      ASSERT_EQ(e.type_free(&col), Err::Success);
    } else {
      int got[4] = {0};
      Status st;
      ASSERT_EQ(e.recv(got, 4, kInt, 0, 1, kCommWorld, &st), Err::Success);
      EXPECT_EQ(st.byte_count, 16u);
      EXPECT_EQ(got[0], 2);
      EXPECT_EQ(got[1], 6);
      EXPECT_EQ(got[2], 10);
      EXPECT_EQ(got[3], 14);
    }
  });
}

TEST(Pt2Pt, NoncontiguousRendezvousRoundTrip) {
  spmd(2, [](Engine& e) {
    constexpr int kRows = 512;  // 512 rows x 32 ints picked = 64 KiB > eager
    Datatype rows = kDatatypeNull;
    ASSERT_EQ(e.type_vector(kRows, 32, 64, kInt, &rows), Err::Success);
    ASSERT_EQ(e.type_commit(&rows), Err::Success);
    std::vector<int> buf(static_cast<std::size_t>(kRows) * 64, -1);
    if (e.world_rank() == 0) {
      for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<int>(i);
      ASSERT_EQ(e.send(buf.data(), 1, rows, 1, 1, kCommWorld), Err::Success);
    } else {
      ASSERT_EQ(e.recv(buf.data(), 1, rows, 0, 1, kCommWorld, nullptr), Err::Success);
      // Selected regions carry data; gaps remain -1.
      EXPECT_EQ(buf[0], 0);
      EXPECT_EQ(buf[31], 31);
      EXPECT_EQ(buf[32], -1);
      EXPECT_EQ(buf[64], 64);
    }
    ASSERT_EQ(e.type_free(&rows), Err::Success);
  });
}

TEST(Pt2Pt, TestPollsWithoutBlocking) {
  spmd(2, [](Engine& e) {
    if (e.world_rank() == 0) {
      int token = 0;
      ASSERT_EQ(e.recv(&token, 1, kInt, 1, 2, kCommWorld, nullptr), Err::Success);
      int v = 13;
      ASSERT_EQ(e.send(&v, 1, kInt, 1, 1, kCommWorld), Err::Success);
    } else {
      int v = 0;
      Request r = kRequestNull;
      ASSERT_EQ(e.irecv(&v, 1, kInt, 0, 1, kCommWorld, &r), Err::Success);
      bool flag = true;
      ASSERT_EQ(e.test(&r, &flag, nullptr), Err::Success);
      EXPECT_FALSE(flag);  // nothing sent yet
      int token = 1;
      ASSERT_EQ(e.send(&token, 1, kInt, 0, 2, kCommWorld), Err::Success);
      while (!flag) {
        ASSERT_EQ(e.test(&r, &flag, nullptr), Err::Success);
      }
      EXPECT_EQ(v, 13);
      EXPECT_EQ(r, kRequestNull);
    }
  });
}

TEST(Pt2Pt, ProbeReportsEnvelope) {
  spmd(2, [](Engine& e) {
    if (e.world_rank() == 0) {
      double xs[3] = {1.5, 2.5, 3.5};
      ASSERT_EQ(e.send(xs, 3, kDouble, 1, 9, kCommWorld), Err::Success);
    } else {
      Status st;
      ASSERT_EQ(e.probe(0, 9, kCommWorld, &st), Err::Success);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 9);
      EXPECT_EQ(st.byte_count, 24u);
      const auto n = static_cast<int>(st.count_elems(sizeof(double)));
      std::vector<double> buf(static_cast<std::size_t>(n));
      ASSERT_EQ(e.recv(buf.data(), n, kDouble, 0, 9, kCommWorld, nullptr), Err::Success);
      EXPECT_EQ(buf[2], 3.5);
    }
  });
}

TEST(Pt2Pt, CancelReleasesPostedReceive) {
  spmd(1, [](Engine& e) {
    int v = 0;
    Request r = kRequestNull;
    ASSERT_EQ(e.irecv(&v, 1, kInt, 0, 1, kCommWorld, &r), Err::Success);
    ASSERT_EQ(e.cancel(&r), Err::Success);
    ASSERT_EQ(e.wait(&r, nullptr), Err::Success);
    EXPECT_EQ(e.posted_depth(), 0u);
    EXPECT_EQ(e.live_requests(), 0u);
  });
}

TEST(Pt2Pt, SendrecvExchanges) {
  spmd(2, [](Engine& e) {
    const int me = e.world_rank();
    const Rank other = 1 - me;
    int out = 100 + me;
    int in = -1;
    Status st;
    ASSERT_EQ(e.sendrecv(&out, 1, kInt, other, 4, &in, 1, kInt, other, 4, kCommWorld, &st),
              Err::Success);
    EXPECT_EQ(in, 100 + other);
    EXPECT_EQ(st.source, other);
  });
}

TEST(Pt2Pt, ManyOutstandingRequests) {
  spmd(2, [](Engine& e) {
    constexpr int kN = 64;
    std::vector<int> data(kN);
    std::vector<Request> reqs(kN, kRequestNull);
    if (e.world_rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        data[static_cast<std::size_t>(i)] = i * i;
        ASSERT_EQ(e.isend(&data[static_cast<std::size_t>(i)], 1, kInt, 1,
                          static_cast<Tag>(i), kCommWorld,
                          &reqs[static_cast<std::size_t>(i)]),
                  Err::Success);
      }
    } else {
      for (int i = 0; i < kN; ++i) {
        ASSERT_EQ(e.irecv(&data[static_cast<std::size_t>(i)], 1, kInt, 0,
                          static_cast<Tag>(i), kCommWorld,
                          &reqs[static_cast<std::size_t>(i)]),
                  Err::Success);
      }
    }
    ASSERT_EQ(e.waitall(reqs, {}), Err::Success);
    if (e.world_rank() == 1) {
      for (int i = 0; i < kN; ++i) EXPECT_EQ(data[static_cast<std::size_t>(i)], i * i);
    }
    EXPECT_EQ(e.live_requests(), 0u);
  });
}

TEST(Pt2Pt, WaitOnNullRequestIsNoop) {
  spmd(1, [](Engine& e) {
    Request r = kRequestNull;
    Status st;
    EXPECT_EQ(e.wait(&r, &st), Err::Success);
    bool flag = false;
    EXPECT_EQ(e.test(&r, &flag, nullptr), Err::Success);
    EXPECT_TRUE(flag);
  });
}

TEST(Pt2Pt, CrossNodeAndIntraNodeBothWork) {
  WorldOptions o = fast_opts();
  o.ranks_per_node = 2;  // ranks {0,1} node 0, {2,3} node 1
  spmd(
      4,
      [](Engine& e) {
        const int me = e.world_rank();
        const Rank peer = static_cast<Rank>(me ^ 2);  // cross-node pairing
        int out = me, in = -1;
        ASSERT_EQ(e.sendrecv(&out, 1, kInt, peer, 1, &in, 1, kInt, peer, 1, kCommWorld,
                             nullptr),
                  Err::Success);
        EXPECT_EQ(in, me ^ 2);
        const Rank nbr = static_cast<Rank>(me ^ 1);  // intra-node pairing
        out = me * 10;
        ASSERT_EQ(e.sendrecv(&out, 1, kInt, nbr, 2, &in, 1, kInt, nbr, 2, kCommWorld,
                             nullptr),
                  Err::Success);
        EXPECT_EQ(in, (me ^ 1) * 10);
      },
      o);
}

}  // namespace
}  // namespace lwmpi
