# Empty compiler generated dependencies file for persistent_halo.
# This may be replaced when dependencies are built.
