file(REMOVE_RECURSE
  "CMakeFiles/persistent_halo.dir/persistent_halo.cpp.o"
  "CMakeFiles/persistent_halo.dir/persistent_halo.cpp.o.d"
  "persistent_halo"
  "persistent_halo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_halo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
