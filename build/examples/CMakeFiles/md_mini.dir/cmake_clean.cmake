file(REMOVE_RECURSE
  "CMakeFiles/md_mini.dir/md_mini.cpp.o"
  "CMakeFiles/md_mini.dir/md_mini.cpp.o.d"
  "md_mini"
  "md_mini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_mini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
