# Empty dependencies file for md_mini.
# This may be replaced when dependencies are built.
