# Empty compiler generated dependencies file for rma_histogram.
# This may be replaced when dependencies are built.
