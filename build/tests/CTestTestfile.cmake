# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_queues[1]_include.cmake")
include("/root/repo/build/tests/test_fabric[1]_include.cmake")
include("/root/repo/build/tests/test_datatype[1]_include.cmake")
include("/root/repo/build/tests/test_rankmap[1]_include.cmake")
include("/root/repo/build/tests/test_match[1]_include.cmake")
include("/root/repo/build/tests/test_pt2pt[1]_include.cmake")
include("/root/repo/build/tests/test_coll[1]_include.cmake")
include("/root/repo/build/tests/test_comm[1]_include.cmake")
include("/root/repo/build/tests/test_rma[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_cost[1]_include.cmake")
include("/root/repo/build/tests/test_errors[1]_include.cmake")
include("/root/repo/build/tests/test_world[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_coll_v[1]_include.cmake")
include("/root/repo/build/tests/test_requests[1]_include.cmake")
include("/root/repo/build/tests/test_persistent[1]_include.cmake")
include("/root/repo/build/tests/test_cart[1]_include.cmake")
include("/root/repo/build/tests/test_datatype2[1]_include.cmake")
include("/root/repo/build/tests/test_hints[1]_include.cmake")
include("/root/repo/build/tests/test_pscw[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
