file(REMOVE_RECURSE
  "CMakeFiles/test_rankmap.dir/test_rankmap.cpp.o"
  "CMakeFiles/test_rankmap.dir/test_rankmap.cpp.o.d"
  "test_rankmap"
  "test_rankmap.pdb"
  "test_rankmap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rankmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
