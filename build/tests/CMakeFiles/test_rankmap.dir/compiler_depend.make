# Empty compiler generated dependencies file for test_rankmap.
# This may be replaced when dependencies are built.
