# Empty compiler generated dependencies file for test_datatype2.
# This may be replaced when dependencies are built.
