file(REMOVE_RECURSE
  "CMakeFiles/test_datatype2.dir/test_datatype2.cpp.o"
  "CMakeFiles/test_datatype2.dir/test_datatype2.cpp.o.d"
  "test_datatype2"
  "test_datatype2.pdb"
  "test_datatype2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datatype2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
