file(REMOVE_RECURSE
  "CMakeFiles/test_requests.dir/test_requests.cpp.o"
  "CMakeFiles/test_requests.dir/test_requests.cpp.o.d"
  "test_requests"
  "test_requests.pdb"
  "test_requests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_requests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
