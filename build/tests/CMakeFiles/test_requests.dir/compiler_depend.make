# Empty compiler generated dependencies file for test_requests.
# This may be replaced when dependencies are built.
