file(REMOVE_RECURSE
  "CMakeFiles/test_coll_v.dir/test_coll_v.cpp.o"
  "CMakeFiles/test_coll_v.dir/test_coll_v.cpp.o.d"
  "test_coll_v"
  "test_coll_v.pdb"
  "test_coll_v[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coll_v.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
