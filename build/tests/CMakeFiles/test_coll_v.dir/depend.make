# Empty dependencies file for test_coll_v.
# This may be replaced when dependencies are built.
