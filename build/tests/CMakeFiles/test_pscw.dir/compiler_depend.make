# Empty compiler generated dependencies file for test_pscw.
# This may be replaced when dependencies are built.
