file(REMOVE_RECURSE
  "CMakeFiles/test_pscw.dir/test_pscw.cpp.o"
  "CMakeFiles/test_pscw.dir/test_pscw.cpp.o.d"
  "test_pscw"
  "test_pscw.pdb"
  "test_pscw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pscw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
