# Empty compiler generated dependencies file for lwmpi.
# This may be replaced when dependencies are built.
