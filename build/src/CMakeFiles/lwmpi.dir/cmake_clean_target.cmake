file(REMOVE_RECURSE
  "liblwmpi.a"
)
