
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/md.cpp" "src/CMakeFiles/lwmpi.dir/apps/md.cpp.o" "gcc" "src/CMakeFiles/lwmpi.dir/apps/md.cpp.o.d"
  "/root/repo/src/apps/nek.cpp" "src/CMakeFiles/lwmpi.dir/apps/nek.cpp.o" "gcc" "src/CMakeFiles/lwmpi.dir/apps/nek.cpp.o.d"
  "/root/repo/src/apps/stencil.cpp" "src/CMakeFiles/lwmpi.dir/apps/stencil.cpp.o" "gcc" "src/CMakeFiles/lwmpi.dir/apps/stencil.cpp.o.d"
  "/root/repo/src/coll/allreduce_large.cpp" "src/CMakeFiles/lwmpi.dir/coll/allreduce_large.cpp.o" "gcc" "src/CMakeFiles/lwmpi.dir/coll/allreduce_large.cpp.o.d"
  "/root/repo/src/coll/coll.cpp" "src/CMakeFiles/lwmpi.dir/coll/coll.cpp.o" "gcc" "src/CMakeFiles/lwmpi.dir/coll/coll.cpp.o.d"
  "/root/repo/src/coll/coll_v.cpp" "src/CMakeFiles/lwmpi.dir/coll/coll_v.cpp.o" "gcc" "src/CMakeFiles/lwmpi.dir/coll/coll_v.cpp.o.d"
  "/root/repo/src/coll/ops.cpp" "src/CMakeFiles/lwmpi.dir/coll/ops.cpp.o" "gcc" "src/CMakeFiles/lwmpi.dir/coll/ops.cpp.o.d"
  "/root/repo/src/comm/cart.cpp" "src/CMakeFiles/lwmpi.dir/comm/cart.cpp.o" "gcc" "src/CMakeFiles/lwmpi.dir/comm/cart.cpp.o.d"
  "/root/repo/src/comm/comm_ops.cpp" "src/CMakeFiles/lwmpi.dir/comm/comm_ops.cpp.o" "gcc" "src/CMakeFiles/lwmpi.dir/comm/comm_ops.cpp.o.d"
  "/root/repo/src/comm/rankmap.cpp" "src/CMakeFiles/lwmpi.dir/comm/rankmap.cpp.o" "gcc" "src/CMakeFiles/lwmpi.dir/comm/rankmap.cpp.o.d"
  "/root/repo/src/common/types.cpp" "src/CMakeFiles/lwmpi.dir/common/types.cpp.o" "gcc" "src/CMakeFiles/lwmpi.dir/common/types.cpp.o.d"
  "/root/repo/src/core/ch4_pt2pt.cpp" "src/CMakeFiles/lwmpi.dir/core/ch4_pt2pt.cpp.o" "gcc" "src/CMakeFiles/lwmpi.dir/core/ch4_pt2pt.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/CMakeFiles/lwmpi.dir/core/engine.cpp.o" "gcc" "src/CMakeFiles/lwmpi.dir/core/engine.cpp.o.d"
  "/root/repo/src/core/persistent.cpp" "src/CMakeFiles/lwmpi.dir/core/persistent.cpp.o" "gcc" "src/CMakeFiles/lwmpi.dir/core/persistent.cpp.o.d"
  "/root/repo/src/core/progress.cpp" "src/CMakeFiles/lwmpi.dir/core/progress.cpp.o" "gcc" "src/CMakeFiles/lwmpi.dir/core/progress.cpp.o.d"
  "/root/repo/src/cost/meter.cpp" "src/CMakeFiles/lwmpi.dir/cost/meter.cpp.o" "gcc" "src/CMakeFiles/lwmpi.dir/cost/meter.cpp.o.d"
  "/root/repo/src/datatype/datatype.cpp" "src/CMakeFiles/lwmpi.dir/datatype/datatype.cpp.o" "gcc" "src/CMakeFiles/lwmpi.dir/datatype/datatype.cpp.o.d"
  "/root/repo/src/match/match.cpp" "src/CMakeFiles/lwmpi.dir/match/match.cpp.o" "gcc" "src/CMakeFiles/lwmpi.dir/match/match.cpp.o.d"
  "/root/repo/src/net/fabric.cpp" "src/CMakeFiles/lwmpi.dir/net/fabric.cpp.o" "gcc" "src/CMakeFiles/lwmpi.dir/net/fabric.cpp.o.d"
  "/root/repo/src/orig/orig_device.cpp" "src/CMakeFiles/lwmpi.dir/orig/orig_device.cpp.o" "gcc" "src/CMakeFiles/lwmpi.dir/orig/orig_device.cpp.o.d"
  "/root/repo/src/rma/rma.cpp" "src/CMakeFiles/lwmpi.dir/rma/rma.cpp.o" "gcc" "src/CMakeFiles/lwmpi.dir/rma/rma.cpp.o.d"
  "/root/repo/src/runtime/packet.cpp" "src/CMakeFiles/lwmpi.dir/runtime/packet.cpp.o" "gcc" "src/CMakeFiles/lwmpi.dir/runtime/packet.cpp.o.d"
  "/root/repo/src/runtime/world.cpp" "src/CMakeFiles/lwmpi.dir/runtime/world.cpp.o" "gcc" "src/CMakeFiles/lwmpi.dir/runtime/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
