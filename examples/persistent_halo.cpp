// Example: persistent requests + Cartesian topology.
//
// The canonical iterative-solver communication skeleton: build a Cartesian
// communicator, derive neighbours with cart_shift (PROC_NULL at the
// non-periodic edges), bind the halo exchange once with send_init/recv_init,
// then startall/waitall every iteration. Persistent requests amortize the
// argument validation and binding that Sections 2-3 of the paper count on
// every plain MPI_ISEND.
#include <cstdio>
#include <vector>

#include "core/engine.hpp"
#include "runtime/world.hpp"

using namespace lwmpi;

int main() {
  WorldOptions opts;
  opts.ranks_per_node = 2;
  opts.profile = net::psm2();
  World world(4, opts);

  world.run([](Engine& mpi) {
    // 4 ranks in a non-periodic chain.
    const std::array<int, 1> dims = {4};
    const std::array<bool, 1> periods = {false};
    Comm chain = kCommNull;
    mpi.cart_create(kCommWorld, dims, periods, false, &chain);
    Rank left = kProcNull, right = kProcNull;
    mpi.cart_shift(chain, 0, 1, &left, &right);
    const int me = mpi.rank(chain);

    // Each rank owns a segment; ghosts at [0] and [n+1].
    constexpr int kLocal = 8;
    std::vector<double> u(kLocal + 2, static_cast<double>(me));

    // Bind the exchange once.
    std::vector<Request> reqs;
    Request r = kRequestNull;
    mpi.recv_init(&u[0], 1, kDouble, left, 1, chain, &r);
    reqs.push_back(r);
    mpi.recv_init(&u[kLocal + 1], 1, kDouble, right, 2, chain, &r);
    reqs.push_back(r);
    mpi.send_init(&u[1], 1, kDouble, left, 2, chain, &r);
    reqs.push_back(r);
    mpi.send_init(&u[kLocal], 1, kDouble, right, 1, chain, &r);
    reqs.push_back(r);

    // Iterate: start the bound exchange, smooth, repeat.
    for (int it = 0; it < 100; ++it) {
      mpi.startall(reqs);
      mpi.waitall(reqs, {});
      std::vector<double> next(u);
      for (int i = 1; i <= kLocal; ++i) {
        // Edge ranks see their own value in the PROC_NULL ghost (never
        // written), which acts as a reflective boundary here.
        const double l = (i == 1 && left == kProcNull) ? u[1] : u[i - 1];
        const double rr = (i == kLocal && right == kProcNull) ? u[kLocal] : u[i + 1];
        next[static_cast<std::size_t>(i)] = (l + u[static_cast<std::size_t>(i)] + rr) / 3.0;
      }
      u = next;
    }
    for (auto& req : reqs) mpi.request_free(&req);

    // All segments relax toward the global mean of the initial ranks (1.5).
    double local = 0;
    for (int i = 1; i <= kLocal; ++i) local += u[static_cast<std::size_t>(i)];
    double sum = 0;
    mpi.allreduce(&local, &sum, 1, kDouble, ReduceOp::Sum, chain);
    if (me == 0) {
      std::printf("[persistent_halo] mean after smoothing: %.4f (expected ~1.5)\n",
                  sum / (4 * kLocal));
    }
    mpi.comm_free(&chain);
  });
  return 0;
}
