// Example: LAMMPS-style Lennard-Jones molecular dynamics mini-app (paper
// Section 4.4). A fixed-size FCC crystal is strong-scaled: as atoms-per-rank
// shrink, halo messages shrink and MPI latency dominates the timestep.
#include <cstdio>

#include "apps/md.hpp"
#include "core/engine.hpp"
#include "runtime/world.hpp"

using namespace lwmpi;

int main() {
  std::printf("LJ molecular dynamics, 2x1x1 rank grid, 30 timesteps\n");
  std::printf("%-14s %10s %12s %14s %14s\n", "cells/rank", "atoms/rk", "steps/s",
              "Epot/atom", "Ekin/atom");
  for (int cells : {4, 3, 2}) {
    WorldOptions opts;
    opts.ranks_per_node = 1;  // force the netmod path
    opts.profile = net::bgq();
    World world(2, opts);
    world.run([&](Engine& mpi) {
      apps::MdConfig cfg;
      cfg.px = 2;
      cfg.cells_x = cells;
      cfg.cells_y = cells;
      cfg.cells_z = cells;
      cfg.steps = 30;
      const apps::MdResult r = apps::run_md(mpi, kCommWorld, cfg);
      double rate = r.steps_per_sec;
      double min_rate = 0;
      mpi.allreduce(&rate, &min_rate, 1, kDouble, ReduceOp::Min, kCommWorld);
      if (mpi.rank(kCommWorld) == 0 && r.valid) {
        const auto atoms = static_cast<double>(r.atoms_total);
        std::printf("%dx%dx%-10d %10lld %12.1f %14.4f %14.4f\n", cells, cells, cells,
                    static_cast<long long>(r.atoms_per_rank), min_rate,
                    r.potential_energy / atoms, r.kinetic_energy / atoms);
      }
    });
  }
  std::printf("fewer atoms per rank -> less force work per step; the timestep "
              "rate becomes bounded by halo-exchange latency (the paper's "
              "strong-scaling bottleneck).\n");
  return 0;
}
