// Example: the Nek5000 mass-matrix CG model problem (paper Section 4.3).
//
// Solves B u = f with conjugate gradients on a spectral-element mesh and
// compares the heavyweight baseline device ("Std", MPICH/Original-like)
// against the lightweight ch4 device ("Lite") at a few granularities n/P,
// the x-axis of the paper's Figure 7.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/nek.hpp"
#include "core/engine.hpp"
#include "runtime/world.hpp"

using namespace lwmpi;

namespace {

double run_once(DeviceKind device, int order, std::int64_t elems) {
  WorldOptions opts;
  opts.ranks_per_node = 2;
  opts.profile = net::bgq();
  opts.device = device;
  // Std = stock baseline, Lite = the paper's optimized CH4 build, on a
  // BG/Q-like simulated core (same pairing as bench_fig7).
  opts.build = device == DeviceKind::Ch4 ? BuildConfig::no_err_single_ipo()
                                         : BuildConfig::dflt();
  opts.sim_ns_per_instruction = 2.0;
  World world(4, opts);
  double rate = 0.0;
  world.run([&](Engine& mpi) {
    apps::NekConfig cfg;
    cfg.order = order;
    cfg.elems_total = elems;
    cfg.cg_iters = 25;
    const apps::NekResult r = apps::run_nek_cg(mpi, kCommWorld, cfg);
    double local = r.point_iters_per_sec;
    double min_rate = 0.0;  // conservative: slowest rank
    mpi.allreduce(&local, &min_rate, 1, kDouble, ReduceOp::Min, kCommWorld);
    if (mpi.rank(kCommWorld) == 0) rate = min_rate;
  });
  return rate;
}

}  // namespace

int main() {
  std::printf("Nek5000 mass-matrix inversion model problem (4 ranks, N=5)\n");
  std::printf("%-10s %14s %16s %16s %8s\n", "elements", "n/P", "Std [pts*it/s]",
              "Lite [pts*it/s]", "ratio");
  const int order = 5;
  for (std::int64_t elems : {4, 8, 16, 64, 256}) {
    // Best of three: the ranks time-share cores, so single runs are noisy.
    double std_rate = 0.0, lite_rate = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      std_rate = std::max(std_rate, run_once(DeviceKind::Orig, order, elems));
      lite_rate = std::max(lite_rate, run_once(DeviceKind::Ch4, order, elems));
    }
    const int n1 = order + 1;
    const double points = static_cast<double>(elems) * n1 * n1 * n1 -
                          static_cast<double>(elems - 1) * n1 * n1;
    std::printf("%-10lld %14.0f %16.3e %16.3e %8.3f\n",
                static_cast<long long>(elems), points / 4.0, std_rate, lite_rate,
                std_rate > 0 ? lite_rate / std_rate : 0.0);
  }
  std::printf("small n/P (strong-scaling limit) is communication-dominated: the "
              "lightweight stack wins there and the two meet at large n/P.\n");
  return 0;
}
