// Example: 2-D Jacobi stencil with halo exchange -- the boundary-condition
// workload behind the paper's MPI_PROC_NULL discussion (Section 3.4).
//
// Runs the same solve twice: once sending to all four neighbours with
// MPI_PROC_NULL at domain edges, and once with the application branching
// itself and using the proposed _NPN ("no proc null") fast path. The
// numerics are identical; the message counts and per-iteration cost differ.
#include <cstdio>

#include "apps/stencil.hpp"
#include "core/engine.hpp"
#include "runtime/world.hpp"

using namespace lwmpi;

int main() {
  WorldOptions opts;
  opts.ranks_per_node = 2;
  opts.profile = net::psm2();
  World world(4, opts);

  std::printf("2-D 5-point Jacobi, 64x64 grid on a 2x2 process grid, 200 iterations\n");
  std::printf("%-12s %12s %14s %12s\n", "halo mode", "residual", "halo sends/rk", "seconds");

  world.run([](Engine& mpi) {
    for (auto mode : {apps::StencilMode::ProcNull, apps::StencilMode::NpnBranch}) {
      apps::StencilConfig cfg;
      cfg.nx = 64;
      cfg.ny = 64;
      cfg.px = 2;
      cfg.py = 2;
      cfg.iters = 200;
      cfg.mode = mode;
      const apps::StencilResult r = apps::run_stencil(mpi, kCommWorld, cfg);
      // Aggregate across ranks for the report.
      double secs = r.seconds;
      double max_secs = 0;
      mpi.allreduce(&secs, &max_secs, 1, kDouble, ReduceOp::Max, kCommWorld);
      const auto sends = static_cast<std::int64_t>(r.halo_sends);
      std::int64_t total_sends = 0;
      mpi.allreduce(&sends, &total_sends, 1, kInt64, ReduceOp::Sum, kCommWorld);
      if (mpi.rank(kCommWorld) == 0) {
        std::printf("%-12s %12.3e %14.1f %12.4f\n",
                    mode == apps::StencilMode::ProcNull ? "proc-null" : "npn-branch",
                    r.residual, static_cast<double>(total_sends) / mpi.size(kCommWorld),
                    max_secs);
      }
      mpi.barrier(kCommWorld);
    }
  });
  std::printf("note: npn-branch issues fewer sends (edge ranks skip missing "
              "neighbours in application code) and each send skips the PROC_NULL "
              "branch inside MPI.\n");
  return 0;
}
