// Quickstart: the lwmpi public API in one file.
//
// Launches a 4-rank simulated MPI job (threads as ranks over the simulated
// fabric), then demonstrates the core API surface: point-to-point messages,
// nonblocking requests, collectives, derived datatypes, communicator
// management, and one-sided communication.
//
// Build & run:  ./examples/quickstart
#include <array>
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/engine.hpp"
#include "runtime/world.hpp"

using namespace lwmpi;

int main() {
  WorldOptions opts;
  opts.ranks_per_node = 2;        // two simulated nodes
  opts.profile = net::psm2();     // OPA/PSM2-like cost model
  opts.device = DeviceKind::Ch4;  // the paper's lightweight device
  World world(4, opts);

  world.run([](Engine& mpi) {
    const int rank = mpi.rank(kCommWorld);
    const int size = mpi.size(kCommWorld);

    // --- 1. Ring pass: blocking send/recv --------------------------------
    int token = rank == 0 ? 1000 : -1;
    const Rank right = static_cast<Rank>((rank + 1) % size);
    const Rank left = static_cast<Rank>((rank - 1 + size) % size);
    if (rank == 0) {
      mpi.send(&token, 1, kInt, right, /*tag=*/0, kCommWorld);
      mpi.recv(&token, 1, kInt, left, 0, kCommWorld, nullptr);
      std::printf("[quickstart] ring: token came back as %d (expected %d)\n", token,
                  1000 + size - 1);
    } else {
      mpi.recv(&token, 1, kInt, left, 0, kCommWorld, nullptr);
      ++token;
      mpi.send(&token, 1, kInt, right, 0, kCommWorld);
    }

    // --- 2. Nonblocking exchange with every peer --------------------------
    std::vector<int> inbox(static_cast<std::size_t>(size), -1);
    std::vector<Request> reqs;
    int my_square = rank * rank;
    for (int peer = 0; peer < size; ++peer) {
      if (peer == rank) continue;
      Request r = kRequestNull;
      mpi.irecv(&inbox[static_cast<std::size_t>(peer)], 1, kInt, peer, 1, kCommWorld, &r);
      reqs.push_back(r);
      mpi.isend(&my_square, 1, kInt, peer, 1, kCommWorld, &r);
      reqs.push_back(r);
    }
    mpi.waitall(reqs, {});

    // --- 3. Collectives ----------------------------------------------------
    int sum = 0;
    mpi.allreduce(&rank, &sum, 1, kInt, ReduceOp::Sum, kCommWorld);
    std::vector<int> gathered(static_cast<std::size_t>(size));
    mpi.allgather(&rank, 1, kInt, gathered.data(), 1, kInt, kCommWorld);
    if (rank == 0) {
      std::printf("[quickstart] allreduce sum of ranks = %d\n", sum);
    }

    // --- 4. Derived datatype: send a matrix column -------------------------
    Datatype column = kDatatypeNull;
    mpi.type_vector(/*count=*/4, /*blocklen=*/1, /*stride=*/4, kInt, &column);
    mpi.type_commit(&column);
    std::array<int, 16> matrix{};
    std::iota(matrix.begin(), matrix.end(), rank * 100);
    if (rank == 0) {
      mpi.send(&matrix[1], 1, column, 1, 2, kCommWorld);  // column 1
    } else if (rank == 1) {
      std::array<int, 4> col{};
      mpi.recv(col.data(), 4, kInt, 0, 2, kCommWorld, nullptr);
      std::printf("[quickstart] received column: %d %d %d %d\n", col[0], col[1], col[2],
                  col[3]);
    }
    mpi.type_free(&column);

    // --- 5. Communicator split: odds and evens -----------------------------
    Comm half = kCommNull;
    mpi.comm_split(kCommWorld, rank % 2, rank, &half);
    int half_sum = 0;
    mpi.allreduce(&rank, &half_sum, 1, kInt, ReduceOp::Sum, half);
    if (mpi.rank(half) == 0) {
      std::printf("[quickstart] %s ranks sum to %d\n", rank % 2 ? "odd " : "even",
                  half_sum);
    }
    mpi.comm_free(&half);

    // --- 6. One-sided: everyone deposits into rank 0's window --------------
    std::vector<int> window_mem(static_cast<std::size_t>(size), 0);
    Win win = kWinNull;
    mpi.win_create(window_mem.data(), window_mem.size() * sizeof(int), sizeof(int),
                   kCommWorld, &win);
    mpi.win_fence(win);
    const int deposit = 10 * (rank + 1);
    mpi.put(&deposit, 1, kInt, /*target=*/0, /*disp=*/static_cast<std::uint64_t>(rank), 1,
            kInt, win);
    mpi.win_fence(win);
    if (rank == 0) {
      std::printf("[quickstart] window after puts: %d %d %d %d\n", window_mem[0],
                  window_mem[1], window_mem[2], window_mem[3]);
    }
    mpi.win_free(&win);
  });

  std::printf("[quickstart] done\n");
  return 0;
}
