// Example: distributed histogram with one-sided accumulates.
//
// Each rank owns one shard of a global histogram, exposed through a window.
// Ranks generate values and MPI_ACCUMULATE(SUM) them directly into the
// owning rank's bins under a lock_all epoch -- no receiver-side code at all,
// the pattern MPI one-sided communication exists for. Also demonstrates the
// paper's MPI_PUT_VIRTUAL_ADDR proposal for the final sentinel write.
#include <cstdio>
#include <vector>

#include "core/engine.hpp"
#include "runtime/world.hpp"

using namespace lwmpi;

namespace {
constexpr int kBinsPerRank = 8;
constexpr int kSamplesPerRank = 10000;

// Deterministic per-rank sample stream.
std::uint32_t xorshift(std::uint32_t& s) {
  s ^= s << 13;
  s ^= s >> 17;
  s ^= s << 5;
  return s;
}
}  // namespace

int main() {
  WorldOptions opts;
  opts.ranks_per_node = 2;
  opts.profile = net::psm2();
  World world(4, opts);

  world.run([](Engine& mpi) {
    const int rank = mpi.rank(kCommWorld);
    const int size = mpi.size(kCommWorld);
    const int total_bins = kBinsPerRank * size;

    std::vector<std::int64_t> shard(kBinsPerRank, 0);
    Win win = kWinNull;
    mpi.win_create(shard.data(), shard.size() * sizeof(std::int64_t),
                   sizeof(std::int64_t), kCommWorld, &win);

    // Local counting pass, then one accumulate per remote bin.
    std::vector<std::int64_t> local_counts(static_cast<std::size_t>(total_bins), 0);
    std::uint32_t seed = 0x9e3779b9u + static_cast<std::uint32_t>(rank);
    for (int i = 0; i < kSamplesPerRank; ++i) {
      local_counts[xorshift(seed) % static_cast<std::uint32_t>(total_bins)] += 1;
    }

    mpi.win_lock_all(win);
    for (int bin = 0; bin < total_bins; ++bin) {
      const Rank owner = static_cast<Rank>(bin / kBinsPerRank);
      const auto disp = static_cast<std::uint64_t>(bin % kBinsPerRank);
      mpi.accumulate(&local_counts[static_cast<std::size_t>(bin)], 1, kInt64, owner, disp,
                     ReduceOp::Sum, win);
    }
    mpi.win_flush_all(win);
    mpi.win_unlock_all(win);
    mpi.barrier(kCommWorld);

    // Verify: the global histogram must hold all samples.
    std::int64_t local_total = 0;
    for (std::int64_t c : shard) local_total += c;
    std::int64_t grand_total = 0;
    mpi.allreduce(&local_total, &grand_total, 1, kInt64, ReduceOp::Sum, kCommWorld);

    if (rank == 0) {
      std::printf("[rma_histogram] %d ranks x %d samples -> %lld counted (expected %d)\n",
                  size, kSamplesPerRank, static_cast<long long>(grand_total),
                  size * kSamplesPerRank);
    }
    std::printf("[rma_histogram] rank %d shard:", rank);
    for (std::int64_t c : shard) std::printf(" %lld", static_cast<long long>(c));
    std::printf("\n");

    // Bonus: rank 0 plants a sentinel in rank 1's last bin via the proposed
    // virtual-address put (Section 3.2): resolve the address once, reuse it.
    if (size > 1) {
      mpi.win_fence(win);
      if (rank == 0) {
        void* addr = nullptr;
        mpi.win_target_address(1, kBinsPerRank - 1, win, &addr);
        const std::int64_t sentinel = -1;
        mpi.put_va(&sentinel, 1, kInt64, 1, addr, win);
      }
      mpi.win_fence(win);
      if (rank == 1 && shard[kBinsPerRank - 1] == -1) {
        std::printf("[rma_histogram] sentinel landed via put_va\n");
      }
    }
    mpi.win_free(&win);
  });
  return 0;
}
