// World: the simulated MPI job.
//
// A World owns P Engine instances (one per rank), the shared fabric, and the
// global allocators (context ids, window ids). `run` executes an SPMD
// function with one thread per rank -- the reproduction's substitute for a
// multi-process cluster launch. Tests may instead drive several engines from
// a single thread, interleaving calls and progress manually.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "net/fabric.hpp"
#include "net/profile.hpp"

namespace lwmpi {

class Engine;
namespace rma {
struct WindowGlobal;
}
namespace obs {
class Recorder;  // obs/recorder.hpp
}

struct WorldOptions {
  int ranks_per_node = 16;
  net::Profile profile = net::loopback();
  // Transport backend behind the Fabric facade: "mailbox" (default, the
  // original simulated transport) or "rdma" (registration cache + eager
  // rings + zero-copy rendezvous). Unknown names throw at World construction.
  // Startup-scope cvars (obs/cvar.hpp) can override the *defaults* of this
  // struct: LWMPI_CVAR_NETMOD_DEFAULT retargets a World that left `netmod`
  // at "mailbox", LWMPI_CVAR_TRACE_ENABLE / LWMPI_CVAR_LAT_SAMPLE_SHIFT
  // retune `build`. Explicitly-set fields always win.
  std::string netmod = "mailbox";
  DeviceKind device = DeviceKind::Ch4;
  BuildConfig build = {};
  std::size_t eager_threshold = 16 * 1024;
  // When non-empty (and the build has tracing on), World teardown stitches
  // every rank's trace ring into one globally-ordered timeline and writes it
  // here as JSONL -- the input format of tools/critpath. The watchdog can
  // dump the same file mid-run on a hang (WatchdogOptions::causal_trace_path).
  std::string causal_trace_path;
  // When > 0, the engine busy-waits `modeled instructions x this` per
  // operation on the send, receive, and put paths, turning the instruction
  // cost model into simulated CPU time. The application studies (Figures 7-8)
  // use 1.0 ns/instruction, matching a BG/Q-like in-order core at 1.6 GHz
  // with sub-1 IPC on this branchy code.
  double sim_ns_per_instruction = 0.0;
  // Aggregate profiler (obs/profiler.hpp): phase regions, per-callsite
  // statistics, and the rank x rank communication matrix. Seeded from the
  // LWMPI_CVAR_PROF / _PROF_DEFAULT_PHASE / _PROF_PATH cvars when the caller
  // leaves these at their defaults.
  bool prof = false;
  std::string prof_default_phase = "main";  // name of phase 0
  // When profiling is on and this is non-empty, World teardown writes the
  // versioned profile JSON artifact here (tools/lwmpi_prof input).
  std::string prof_path;
  // Flight recorder (obs/recorder.hpp): per-rank DXT-style op rings, flushed
  // as a `.lwtrace` trace bundle at teardown (or by the watchdog on a hang).
  // Seeded from LWMPI_CVAR_RECORD / _RECORD_PATH / _RECORD_RING_DEPTH /
  // _RECORD_SAMPLE_SHIFT when the caller leaves these at their defaults.
  bool record = false;
  std::string record_path;       // bundle prefix; empty = record but never flush
  // 1024 x 16B keeps the always-on ring L1-resident (the <2% overhead gate);
  // bundle-recording tools raise it so whole runs survive without wrapping.
  std::size_t record_ring_depth = 1024;
  // 1-in-2^8 timing anchors: the rdtsc stamp pair is the recorder's largest
  // per-op cost, so the always-on default samples sparsely (the <2% gate);
  // 0 = stamp every op (bundle-recording mode).
  int record_sample_shift = 8;
};

class World {
 public:
  explicit World(int nranks, WorldOptions opts = {});
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int nranks() const noexcept { return nranks_; }
  const WorldOptions& options() const noexcept { return opts_; }
  net::Fabric& fabric() noexcept { return fabric_; }
  Engine& engine(Rank r);

  // SPMD execution: one thread per rank. Exceptions thrown by any rank are
  // captured and the first one rethrown after all threads join.
  void run(const std::function<void(Engine&)>& fn);

  // Dump every rank's pvar registry (obs/pvar.hpp): human-readable text, or a
  // JSON object for the bench harness. Reads are relaxed-atomic, so this is
  // safe to call while ranks run, but call it after run() returns for a
  // consistent end-of-job picture.
  std::string stats_report(bool as_json = false);

  // --- aggregate profiler (obs/profiler.hpp) ---------------------------------
  // Null when WorldOptions::prof is off.
  obs::Profiler* profiler() noexcept { return profiler_.get(); }
  // MPI_Pcontrol-style phase regions applied to every rank at once (a single
  // rank can scope its own phases through Engine::phase_push/pop). No-ops
  // when profiling is off.
  void phase_push(std::string_view name);
  void phase_pop();
  // Merged cross-rank profile report: per-phase max/mean MPI time and
  // imbalance, top-k callsites, matrix hot spots. Empty when profiling is off.
  std::string profile_report(bool as_json = false);

  // --- flight recorder (obs/recorder.hpp) ------------------------------------
  // Null when WorldOptions::record is off.
  obs::Recorder* recorder() noexcept { return recorder_.get(); }
  // Write the trace bundle now: `<prefix>.rank<r>.lwtrace` per rank plus the
  // `<prefix>.json` provenance sidecar. `prefix` empty uses
  // options().record_path. Idempotent (teardown re-flushes after a watchdog
  // flush). Returns false when recording is off or no prefix is known.
  bool flush_recording(const std::string& prefix = {});

  // Global id allocators. Context ids are handed out in pairs: (ctx) for
  // pt2pt and (ctx + 1) for the collective plane of the same communicator.
  std::uint32_t alloc_context_pair() noexcept {
    return next_ctx_.fetch_add(2, std::memory_order_relaxed);
  }
  // Contiguous block of `n` context pairs (comm_split needs one per color).
  std::uint32_t alloc_context_block(std::uint32_t n) noexcept {
    return next_ctx_.fetch_add(2 * n, std::memory_order_relaxed);
  }
  std::uint32_t alloc_win_id() noexcept {
    return next_win_.fetch_add(1, std::memory_order_relaxed);
  }

  // Window registry used by the collective win_create protocol: the root
  // registers the shared state, peers look it up after learning the id.
  std::shared_ptr<rma::WindowGlobal> register_window(std::shared_ptr<rma::WindowGlobal> w);
  std::shared_ptr<rma::WindowGlobal> find_window(std::uint32_t id);
  void unregister_window(std::uint32_t id);

 private:
  const int nranks_;
  WorldOptions opts_;
  net::Fabric fabric_;
  // Declared before engines_ so the profiler outlives the engines holding
  // RankProf pointers into it. Same ordering argument for the recorder.
  std::unique_ptr<obs::Profiler> profiler_;
  std::unique_ptr<obs::Recorder> recorder_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::atomic<std::uint32_t> next_ctx_;
  std::atomic<std::uint32_t> next_win_{1};
  std::mutex win_mu_;
  std::unordered_map<std::uint32_t, std::shared_ptr<rma::WindowGlobal>> win_registry_;
};

// Reserved context ids for the predefined communicators.
inline constexpr std::uint32_t kWorldCtx = 0;  // +1 collective
inline constexpr std::uint32_t kSelfCtx = 2;   // +1 collective
inline constexpr std::uint32_t kFirstDynamicCtx = 4;

}  // namespace lwmpi
