#include "runtime/packet.hpp"

namespace lwmpi::rt {
namespace {

struct TlPool {
  std::vector<Packet*> free_list;

  ~TlPool() {
    for (Packet* p : free_list) delete p;
  }
};

TlPool& tl_pool() {
  thread_local TlPool pool;
  return pool;
}

}  // namespace

Packet* PacketPool::alloc() {
  auto& pool = tl_pool();
  if (!pool.free_list.empty()) {
    Packet* p = pool.free_list.back();
    pool.free_list.pop_back();
    p->hdr = PacketHeader{};
    p->payload.clear();  // keeps capacity for reuse
    p->deliver_at_ns = 0;
    return p;
  }
  return new Packet();
}

void PacketPool::free(Packet* p) noexcept {
  if (p == nullptr) return;
  auto& pool = tl_pool();
  if (pool.free_list.size() < kMaxPooled) {
    pool.free_list.push_back(p);
  } else {
    delete p;
  }
}

std::size_t PacketPool::tl_pool_size() noexcept { return tl_pool().free_list.size(); }

void PacketPool::tl_drain() noexcept {
  auto& pool = tl_pool();
  for (Packet* p : pool.free_list) delete p;
  pool.free_list.clear();
}

}  // namespace lwmpi::rt
