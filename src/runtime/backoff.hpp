// Spin-wait backoff used by all blocking progress loops. With ranks mapped to
// threads (possibly oversubscribed), pure spinning starves the peer we are
// waiting on, so the policy escalates: pause -> yield -> short sleep.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace lwmpi::rt {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

class Backoff {
 public:
  void pause() noexcept {
    ++spins_;
    if (spins_ < kSpinLimit) {
      cpu_relax();
    } else if ((spins_ & kSleepEvery) != 0) {
      // Yield-dominant: with ranks oversubscribed onto few cores, the peer
      // we are waiting on needs the CPU, and long sleeps would add tens of
      // microseconds to every blocking completion.
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(5));
    }
  }
  void reset() noexcept { spins_ = 0; }

 private:
  static constexpr std::uint32_t kSpinLimit = 128;
  static constexpr std::uint32_t kSleepEvery = 0x3FF;  // sleep 1 pause in 1024
  std::uint32_t spins_ = 0;
};

// Busy-wait for a calibrated duration; models fixed per-message hardware
// injection cost in the network simulator.
inline void spin_for_ns(std::uint64_t ns) noexcept {
  if (ns == 0) return;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < deadline) cpu_relax();
}

inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace lwmpi::rt
