// Bounded single-producer single-consumer ring buffer with cached indices.
// Used by the shmmod-style fast channels and exercised directly by the
// substrate microbenchmarks.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

namespace lwmpi::rt {

template <typename T>
class SpscRing {
 public:
  // Capacity is rounded up to a power of two; one slot is sacrificed to
  // distinguish full from empty.
  explicit SpscRing(std::size_t min_capacity)
      : mask_(std::bit_ceil(min_capacity < 2 ? std::size_t{2} : min_capacity) - 1),
        slots_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return mask_; }

  bool try_push(T value) noexcept {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ > mask_ - 1) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ > mask_ - 1) return false;
    }
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  std::optional<T> try_pop() noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) return std::nullopt;
    }
    T value = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) == tail_.load(std::memory_order_acquire);
  }

  std::size_t size_approx() const noexcept {
    return head_.load(std::memory_order_acquire) - tail_.load(std::memory_order_acquire);
  }

 private:
  const std::size_t mask_;
  std::vector<T> slots_;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::size_t cached_tail_ = 0;  // producer-owned
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::size_t cached_head_ = 0;  // consumer-owned
};

}  // namespace lwmpi::rt
