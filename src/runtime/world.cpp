#include "runtime/world.hpp"

#include <exception>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/engine.hpp"
#include "obs/causal.hpp"
#include "obs/cvar.hpp"
#include "obs/histogram.hpp"
#include "obs/pvar.hpp"
#include "obs/recorder.hpp"
#include "obs/table.hpp"
#include "obs/trace.hpp"

namespace lwmpi {

namespace {

// Fold the startup-scope cvars (obs/cvar.hpp) into the options a World is
// constructed with. Only *overridden* cvars (LWMPI_CVAR_* in the environment,
// or an explicit LWMPI_T_cvar_write before construction) take effect, and
// only over fields the caller left at their defaults -- so code that pins
// `opts.netmod = "rdma"` or `build.trace = true` always wins, while a test
// run under LWMPI_CVAR_TRACE_ENABLE=1 gets tracing everywhere without a
// recompile.
WorldOptions apply_cvars(WorldOptions opts) {
  if (obs::cvar_overridden(obs::Cv::TraceEnable)) {
    opts.build.trace = obs::cvar(obs::Cv::TraceEnable) != 0;
  }
  if (obs::cvar_overridden(obs::Cv::LatSampleShift)) {
    const auto shift = obs::cvar(obs::Cv::LatSampleShift);
    if (shift >= 0 && shift <= 63) opts.build.lat_sample_shift = static_cast<int>(shift);
  }
  if (obs::cvar_overridden(obs::Cv::NetmodDefault) && opts.netmod == "mailbox") {
    opts.netmod = obs::cvar_str(obs::Cv::NetmodDefault);
  }
  if (obs::cvar_overridden(obs::Cv::Prof)) {
    opts.prof = obs::cvar(obs::Cv::Prof) != 0;
  }
  if (obs::cvar_overridden(obs::Cv::ProfDefaultPhase) && opts.prof_default_phase == "main") {
    opts.prof_default_phase = obs::cvar_str(obs::Cv::ProfDefaultPhase);
  }
  if (obs::cvar_overridden(obs::Cv::ProfPath) && opts.prof_path.empty()) {
    opts.prof_path = obs::cvar_str(obs::Cv::ProfPath);
  }
  if (obs::cvar_overridden(obs::Cv::Record)) {
    opts.record = obs::cvar(obs::Cv::Record) != 0;
  }
  if (obs::cvar_overridden(obs::Cv::RecordPath) && opts.record_path.empty()) {
    opts.record_path = obs::cvar_str(obs::Cv::RecordPath);
  }
  if (obs::cvar_overridden(obs::Cv::RecordRingDepth)) {
    const auto d = obs::cvar(obs::Cv::RecordRingDepth);
    if (d > 0) opts.record_ring_depth = static_cast<std::size_t>(d);
  }
  if (obs::cvar_overridden(obs::Cv::RecordSampleShift)) {
    const auto s = obs::cvar(obs::Cv::RecordSampleShift);
    if (s >= 0 && s <= 32) opts.record_sample_shift = static_cast<int>(s);
  }
  return opts;
}

}  // namespace

World::World(int nranks, WorldOptions opts)
    : nranks_(nranks),
      opts_(apply_cvars(std::move(opts))),
      fabric_(nranks, opts_.ranks_per_node, opts_.profile, opts_.build.vcis(),
              opts_.netmod),
      next_ctx_(kFirstDynamicCtx) {
  if (opts_.prof) {
    profiler_ = std::make_unique<obs::Profiler>(nranks_, opts_.build.vcis(),
                                                opts_.prof_default_phase);
    fabric_.set_profiler(profiler_.get());
  }
  if (opts_.record) {
    recorder_ = std::make_unique<obs::Recorder>(nranks_, opts_.build.vcis(),
                                                opts_.record_ring_depth,
                                                opts_.record_sample_shift);
    recorder_->set_eager_threshold(opts_.eager_threshold);
  }
  engines_.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    engines_.push_back(std::make_unique<Engine>(*this, static_cast<Rank>(r)));
  }
}

World::~World() {
  // Teardown causal export: all rank threads have joined by now, so the
  // per-rank trace rings are quiescent and the merge is exact.
  if (opts_.build.trace && !opts_.causal_trace_path.empty()) {
    std::ofstream f(opts_.causal_trace_path, std::ios::trunc);
    if (f) {
      const std::vector<obs::trace::Event> events = obs::trace::collect_all();
      obs::causal::export_jsonl(f, events);
    }
  }
  // Teardown profile artifact: same quiescence argument as the causal export.
  if (profiler_ != nullptr && !opts_.prof_path.empty()) {
    profiler_->write_artifact(opts_.prof_path, fabric_.backend_name());
  }
  // Teardown trace-bundle flush: quiescent rings, exact totals. Overwrites a
  // mid-run watchdog flush with the complete picture.
  if (recorder_ != nullptr && !opts_.record_path.empty()) flush_recording();
}

bool World::flush_recording(const std::string& prefix) {
  if (recorder_ == nullptr) return false;
  const std::string& out = prefix.empty() ? opts_.record_path : prefix;
  if (out.empty()) return false;
  std::vector<obs::RecTotals> totals;
  totals.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    totals.push_back(obs::read_rec_totals(*engines_[static_cast<std::size_t>(r)]));
  }
  std::ostringstream prov;
  prov << "\"netmod\":\"" << fabric_.backend_name() << "\",\"device\":\""
       << to_string(opts_.device) << "\",\"eager_threshold\":" << opts_.eager_threshold
       << ",\"ring_depth\":" << opts_.record_ring_depth
       << ",\"sample_shift\":" << opts_.record_sample_shift
       << ",\"counters\":" << (opts_.build.counters ? "true" : "false")
       << ",\"profile\":\"" << opts_.profile.name << '"';
  return recorder_->flush(out, totals, prov.str());
}

void World::phase_push(std::string_view name) {
  if (profiler_ == nullptr) return;
  const int id = profiler_->intern_phase(name);
  for (int r = 0; r < nranks_; ++r) profiler_->rank(r).phase_push(id);
}

void World::phase_pop() {
  if (profiler_ == nullptr) return;
  for (int r = 0; r < nranks_; ++r) profiler_->rank(r).phase_pop();
}

std::string World::profile_report(bool as_json) {
  if (profiler_ == nullptr) return {};
  return profiler_->report(fabric_.backend_name(), as_json);
}

Engine& World::engine(Rank r) { return *engines_.at(static_cast<std::size_t>(r)); }

void World::run(const std::function<void(Engine&)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks_));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([this, &fn, &errors, r] {
      try {
        fn(*engines_[static_cast<std::size_t>(r)]);
        // Implicit finalize: flush the device send queue so eager messages
        // buffered by the orig device are not stranded when a rank returns
        // while its peers are still receiving.
        engines_[static_cast<std::size_t>(r)]->progress();
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

std::string World::stats_report(bool as_json) {
  const int npvars = obs::LWMPI_T_pvar_num();
  const int nvcis = opts_.build.vcis();
  std::ostringstream out;
  if (as_json) {
    out << "{\"nranks\":" << nranks_ << ",\"num_vcis\":" << nvcis << ",\"device\":\""
        << to_string(opts_.device) << "\",\"netmod\":\"" << fabric_.backend_name()
        << "\",\"ranks\":[";
  } else {
    out << "=== lwmpi stats: " << nranks_ << " rank(s) x " << nvcis << " vci(s), "
        << to_string(opts_.device) << ", netmod " << fabric_.backend_name() << " ===\n";
  }
  for (int r = 0; r < nranks_; ++r) {
    Engine& e = *engines_[static_cast<std::size_t>(r)];
    obs::PvarSession s;
    obs::LWMPI_T_pvar_session_create(e, &s);
    if (as_json) {
      out << (r == 0 ? "" : ",") << "{\"rank\":" << r << ",\"pvars\":{";
    } else {
      out << "rank " << r << ":\n";
    }
    bool first = true;
    for (int i = 0; i < npvars; ++i) {
      obs::PvarInfo info;
      obs::LWMPI_T_pvar_get_info(i, &info);
      std::uint64_t total = 0;
      obs::LWMPI_T_pvar_read(s, i, &total);
      if (as_json) {
        out << (first ? "" : ",") << '"' << info.name << "\":";
        if (info.bind == obs::PvarBind::Vci && nvcis > 1) {
          out << "{\"total\":" << total << ",\"per_vci\":[";
          for (int v = 0; v < nvcis; ++v) {
            std::uint64_t pv = 0;
            obs::LWMPI_T_pvar_read_vci(s, i, v, &pv);
            out << (v == 0 ? "" : ",") << pv;
          }
          out << "]}";
        } else {
          out << total;
        }
        first = false;
      } else if (total != 0) {
        out << "  " << info.name;
        for (std::size_t pad = info.name.size(); pad < 26; ++pad) out << ' ';
        out << ' ' << to_string(info.klass) << " = " << total;
        if (info.bind == obs::PvarBind::Vci && nvcis > 1) {
          out << "  [";
          for (int v = 0; v < nvcis; ++v) {
            std::uint64_t pv = 0;
            obs::LWMPI_T_pvar_read_vci(s, i, v, &pv);
            out << (v == 0 ? "" : " ") << pv;
          }
          out << ']';
        }
        out << '\n';
      }
    }
    // Per-path message-lifetime latency distribution (obs/histogram.hpp),
    // merged over the rank's channels. The JSON shape is what
    // bench::JsonResult and the paper-table tooling consume.
    if (as_json) out << "},\"latency\":{";
    for (std::size_t p = 0; p < obs::kNumLatPaths; ++p) {
      const auto path = static_cast<obs::LatPath>(p);
      obs::LatSnapshot snap;
      for (int v = 0; v < nvcis; ++v) snap.merge(e.vci_latency(v).of(path));
      if (as_json) {
        out << (p == 0 ? "" : ",") << '"' << obs::to_string(path)
            << "\":{\"count\":" << snap.count << ",\"p50_ns\":" << snap.percentile(0.50)
            << ",\"p99_ns\":" << snap.percentile(0.99) << ",\"max_ns\":" << snap.max_ns
            << '}';
      } else if (snap.count != 0) {
        out << "  lat[" << obs::to_string(path) << ']';
        for (std::size_t pad = obs::to_string(path).size(); pad < 20; ++pad) out << ' ';
        out << " count=" << snap.count << " p50_ns=" << snap.percentile(0.50)
            << " p99_ns=" << snap.percentile(0.99) << " max_ns=" << snap.max_ns << '\n';
      }
    }
    if (as_json) out << "}}";
    obs::LWMPI_T_pvar_session_free(&s);
  }
  // Attribution slice for this world's own (device, build): the metered
  // Table-1 category breakdown of one isend and one put, walked through a
  // throwaway two-rank world (read-only with respect to this one).
  const std::string attrib = obs::attribution_report(opts_.device, opts_.build, as_json);
  if (as_json) {
    // attrib == {"attribution":[...]}; splice its body into this object.
    out << "]," << attrib.substr(1, attrib.size() - 2) << '}';
  } else {
    out << attrib;
  }
  return out.str();
}

std::shared_ptr<rma::WindowGlobal> World::register_window(
    std::shared_ptr<rma::WindowGlobal> w) {
  std::lock_guard<std::mutex> lk(win_mu_);
  win_registry_[w->id] = w;
  return w;
}

std::shared_ptr<rma::WindowGlobal> World::find_window(std::uint32_t id) {
  std::lock_guard<std::mutex> lk(win_mu_);
  auto it = win_registry_.find(id);
  return it == win_registry_.end() ? nullptr : it->second;
}

void World::unregister_window(std::uint32_t id) {
  std::lock_guard<std::mutex> lk(win_mu_);
  win_registry_.erase(id);
}

}  // namespace lwmpi
