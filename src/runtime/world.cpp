#include "runtime/world.hpp"

#include <exception>
#include <thread>

#include "core/engine.hpp"

namespace lwmpi {

World::World(int nranks, WorldOptions opts)
    : nranks_(nranks),
      opts_(std::move(opts)),
      fabric_(nranks, opts_.ranks_per_node, opts_.profile, opts_.build.vcis()),
      next_ctx_(kFirstDynamicCtx) {
  engines_.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    engines_.push_back(std::make_unique<Engine>(*this, static_cast<Rank>(r)));
  }
}

World::~World() = default;

Engine& World::engine(Rank r) { return *engines_.at(static_cast<std::size_t>(r)); }

void World::run(const std::function<void(Engine&)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks_));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([this, &fn, &errors, r] {
      try {
        fn(*engines_[static_cast<std::size_t>(r)]);
        // Implicit finalize: flush the device send queue so eager messages
        // buffered by the orig device are not stranded when a rank returns
        // while its peers are still receiving.
        engines_[static_cast<std::size_t>(r)]->progress();
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

std::shared_ptr<rma::WindowGlobal> World::register_window(
    std::shared_ptr<rma::WindowGlobal> w) {
  std::lock_guard<std::mutex> lk(win_mu_);
  win_registry_[w->id] = w;
  return w;
}

std::shared_ptr<rma::WindowGlobal> World::find_window(std::uint32_t id) {
  std::lock_guard<std::mutex> lk(win_mu_);
  auto it = win_registry_.find(id);
  return it == win_registry_.end() ? nullptr : it->second;
}

void World::unregister_window(std::uint32_t id) {
  std::lock_guard<std::mutex> lk(win_mu_);
  win_registry_.erase(id);
}

}  // namespace lwmpi
