// Intrusive multi-producer single-consumer queue (Vyukov). Used as the
// per-rank network mailbox: any rank may inject packets, only the owning
// rank's progress engine consumes. Wait-free push; pop is lock-free and
// preserves per-producer FIFO order (matching in-order network delivery).
#pragma once

#include <atomic>
#include <cstddef>

namespace lwmpi::rt {

struct MpscNode {
  std::atomic<MpscNode*> next{nullptr};
};

template <typename T>
  requires std::derived_from<T, MpscNode>
class MpscQueue {
 public:
  MpscQueue() : head_(&stub_), tail_(&stub_) { stub_.next.store(nullptr, std::memory_order_relaxed); }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  // Wait-free, callable from any thread.
  void push(T* node) noexcept {
    node->next.store(nullptr, std::memory_order_relaxed);
    MpscNode* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  // Single consumer only. Returns nullptr when empty (or when a producer is
  // mid-push; callers treat that as empty and retry on the next poll).
  T* pop() noexcept {
    MpscNode* tail = tail_;
    MpscNode* next = tail->next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      if (next == nullptr) return nullptr;
      tail_ = next;
      tail = next;
      next = next->next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      tail_ = next;
      return static_cast<T*>(tail);
    }
    MpscNode* head = head_.load(std::memory_order_acquire);
    if (tail != head) return nullptr;  // producer mid-push; retry later
    push_stub();
    next = tail->next.load(std::memory_order_acquire);
    if (next != nullptr) {
      tail_ = next;
      return static_cast<T*>(tail);
    }
    return nullptr;
  }

  // Consumer-side emptiness probe (approximate under concurrent pushes).
  bool empty() const noexcept {
    return tail_ == &stub_ && stub_.next.load(std::memory_order_acquire) == nullptr &&
           head_.load(std::memory_order_acquire) == const_cast<MpscNode*>(&stub_);
  }

 private:
  void push_stub() noexcept {
    stub_.next.store(nullptr, std::memory_order_relaxed);
    MpscNode* prev = head_.exchange(&stub_, std::memory_order_acq_rel);
    prev->next.store(&stub_, std::memory_order_release);
  }

  alignas(64) std::atomic<MpscNode*> head_;
  alignas(64) MpscNode* tail_;
  MpscNode stub_;
};

}  // namespace lwmpi::rt
