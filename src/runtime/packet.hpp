// Wire unit exchanged between ranks through the simulated fabric.
//
// A packet carries one protocol message: eager pt2pt data, a rendezvous
// control message, a rendezvous data segment, an RMA active message, or an
// RMA synchronization message. Packets are intrusive MPSC nodes so mailbox
// insertion is allocation-free, and they are recycled through a thread-local
// pool to keep the injection path cheap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "runtime/mpsc_queue.hpp"

namespace lwmpi::rt {

enum class PacketKind : std::uint8_t {
  Eager = 0,     // pt2pt eager message, payload inline
  Rts,           // rendezvous request-to-send (no payload)
  Cts,           // rendezvous clear-to-send (reply to Rts)
  RdvData,       // rendezvous payload segment
  AmPut,         // RMA put fallback active message
  AmGetReq,      // RMA get request
  AmGetReply,    // RMA get data
  AmAcc,         // RMA accumulate active message
  AmGetAccReq,   // RMA get_accumulate request (payload = origin data)
  AmGetAccReply, // RMA get_accumulate fetched data
  AmAck,         // RMA remote-completion acknowledgment
  AmLockReq,     // passive-target lock request
  AmLockGrant,   // lock granted
  AmUnlock,      // unlock notification
  AmUnlockAck,   // unlock completed at target
  AmPscwPost,    // PSCW: target exposes its window to an origin
  AmPscwComplete,// PSCW: origin finished its access epoch
  Barrier,       // world-level runtime barrier (not MPI barrier)
  RdvDone,       // zero-copy rendezvous: data landed via rdma_write (no payload)
};

// Matching mode for pt2pt packets.
enum class MatchMode : std::uint8_t {
  Full = 0,      // (context, source, tag) matching
  ArrivalOrder,  // _NOMATCH: context only, FIFO
};

struct PacketHeader {
  PacketKind kind = PacketKind::Eager;
  MatchMode match_mode = MatchMode::Full;
  std::uint8_t vci = 0;             // fabric lane / channel (VCI) id
  std::uint16_t op = 0;             // ReduceOp for accumulate AMs
  std::uint32_t ctx = 0;            // communicator context id
  Rank src_comm_rank = 0;           // sender rank within the communicator
  Rank src_world = 0;               // sender world rank (reply address)
  Tag tag = 0;
  std::uint64_t total_bytes = 0;    // full message size
  std::uint64_t offset = 0;         // RdvData segment offset / RMA target disp
  std::uint32_t origin_req = 0;     // origin-side request id (Cts/Ack routing)
  std::uint32_t target_req = 0;     // target-side request id (RdvData routing)
  std::uint32_t win_id = 0;         // window id for RMA messages
  Datatype dt = kDatatypeNull;      // target-side datatype for AM ops
  std::uint32_t dt_count = 0;       // target-side element count
  std::uint32_t lock_type = 0;      // LockType for lock messages
  std::uint64_t seq = 0;            // trace message id (0 = tracing off)
  std::uint64_t rkey = 0;           // registered-buffer token (zero-copy rdv Cts)
  std::uint8_t zcopy = 0;           // Rts: sender offers zero-copy handoff

  // Causal header (observability tier 4, obs/causal.hpp). Stamped by the
  // net::Fabric facade at the injection boundary so every backend carries it.
  std::uint64_t send_ns = 0;        // obs::lat_now_ns() when injected
  std::uint64_t lclock = 0;         // origin's Lamport clock after the inject tick
  std::uint32_t stall_ns = 0;       // ns the injection busy-waited for a ring credit
};

struct Packet : MpscNode {
  PacketHeader hdr;
  std::vector<std::byte> payload;
  std::uint64_t deliver_at_ns = 0;  // network latency maturation time

  void set_payload(const void* data, std::size_t n) {
    payload.resize(n);
    if (n != 0) std::memcpy(payload.data(), data, n);
  }
  std::span<const std::byte> bytes() const noexcept { return payload; }
};

// Thread-local packet pool. Packets freed on a different thread than they
// were allocated on simply join that thread's pool; lists are bounded so
// asymmetric traffic degrades to heap allocation rather than growing without
// bound.
class PacketPool {
 public:
  static Packet* alloc();
  static void free(Packet* p) noexcept;

  // Testing hooks.
  static std::size_t tl_pool_size() noexcept;
  static void tl_drain() noexcept;

 private:
  static constexpr std::size_t kMaxPooled = 4096;
};

}  // namespace lwmpi::rt
