#include "datatype/datatype.hpp"

#include <algorithm>
#include <array>
#include <cstring>

namespace lwmpi::dt {
namespace {

// Static descriptions for builtin types, indexed by builtin id.
const TypeInfo* builtin_info_table(std::uint32_t id) {
  static const std::array<TypeInfo, kNumBuiltinTypes> table = [] {
    std::array<TypeInfo, kNumBuiltinTypes> t{};
    const std::array<std::size_t, kNumBuiltinTypes> sizes = {
        0, 1, 1, 1, 1, 2, 2, 4, 4, 8, 8, 8, 8, 4, 8, 1, 2, 4, 8, 1, 2, 4, 8};
    for (std::uint32_t i = 1; i < kNumBuiltinTypes; ++i) {
      t[i].size = sizes[i];
      t[i].lb = 0;
      t[i].extent = static_cast<std::int64_t>(sizes[i]);
      t[i].contiguous = true;
      t[i].committed = true;
      t[i].segments = {Segment{0, sizes[i]}};
    }
    return t;
  }();
  if (id == 0 || id >= kNumBuiltinTypes) return nullptr;
  return &table[id];
}

// Merge sorted segments that touch.
void merge_segments(std::vector<Segment>& segs) {
  if (segs.empty()) return;
  std::sort(segs.begin(), segs.end(),
            [](const Segment& a, const Segment& b) { return a.offset < b.offset; });
  std::vector<Segment> out;
  out.reserve(segs.size());
  out.push_back(segs.front());
  for (std::size_t i = 1; i < segs.size(); ++i) {
    Segment& last = out.back();
    const Segment& cur = segs[i];
    if (cur.offset == last.offset + static_cast<std::int64_t>(last.length)) {
      last.length += cur.length;
    } else {
      out.push_back(cur);
    }
  }
  segs = std::move(out);
}

void finalize(TypeInfo& info) {
  merge_segments(info.segments);
  std::size_t size = 0;
  std::int64_t lb = 0;
  std::int64_t ub = 0;
  if (!info.segments.empty()) {
    lb = info.segments.front().offset;
    ub = lb;
    for (const Segment& s : info.segments) {
      size += s.length;
      ub = std::max(ub, s.offset + static_cast<std::int64_t>(s.length));
    }
  }
  info.size = size;
  info.lb = lb;
  info.extent = ub - lb;
  info.contiguous = info.segments.size() == 1 && info.segments.front().offset == 0 &&
                    static_cast<std::int64_t>(info.segments.front().length) == info.extent;
}

// Replicate oldinfo's segments at byte displacement `disp`, `blocklen` times
// spaced by oldinfo.extent.
void append_block(std::vector<Segment>& segs, const TypeInfo& oldinfo, std::int64_t disp,
                  int blocklen) {
  for (int j = 0; j < blocklen; ++j) {
    const std::int64_t base = disp + static_cast<std::int64_t>(j) * oldinfo.extent;
    for (const Segment& s : oldinfo.segments) {
      segs.push_back(Segment{base + s.offset, s.length});
    }
  }
}

}  // namespace

TypeEngine::TypeEngine() = default;

const TypeInfo* TypeEngine::derived_info(Datatype d) const noexcept {
  const std::uint32_t idx = handle_payload(d);
  if (idx >= derived_.size() || !derived_[idx].has_value()) return nullptr;
  return &*derived_[idx];
}

const TypeInfo* TypeEngine::info(Datatype d) const noexcept {
  switch (handle_kind(d)) {
    case HandleKind::BuiltinDatatype: return builtin_info_table(builtin_id(d));
    case HandleKind::DerivedDatatype: return derived_info(d);
    default: return nullptr;
  }
}

bool TypeEngine::valid(Datatype d) const noexcept { return info(d) != nullptr; }

bool TypeEngine::committed_or_builtin(Datatype d) const noexcept {
  const TypeInfo* i = info(d);
  return i != nullptr && i->committed;
}

Err TypeEngine::get_size(Datatype d, std::size_t* size) const noexcept {
  const TypeInfo* i = info(d);
  if (i == nullptr) return Err::Datatype;
  *size = i->size;
  return Err::Success;
}

Err TypeEngine::get_extent(Datatype d, std::int64_t* lb, std::int64_t* extent) const noexcept {
  const TypeInfo* i = info(d);
  if (i == nullptr) return Err::Datatype;
  *lb = i->lb;
  *extent = i->extent;
  return Err::Success;
}

bool TypeEngine::is_contiguous(Datatype d) const noexcept {
  const TypeInfo* i = info(d);
  return i != nullptr && i->contiguous;
}

Err TypeEngine::register_type(TypeInfo info, Datatype* out) {
  std::uint32_t idx;
  if (!free_slots_.empty()) {
    idx = free_slots_.back();
    free_slots_.pop_back();
    derived_[idx] = std::move(info);
  } else {
    idx = static_cast<std::uint32_t>(derived_.size());
    derived_.push_back(std::move(info));
  }
  ++live_derived_;
  *out = make_handle(HandleKind::DerivedDatatype, idx);
  return Err::Success;
}

Err TypeEngine::contiguous(int count, Datatype oldtype, Datatype* newtype) {
  if (count < 0 || newtype == nullptr) return Err::Count;
  const TypeInfo* old = info(oldtype);
  if (old == nullptr) return Err::Datatype;
  TypeInfo t;
  append_block(t.segments, *old, 0, count);
  finalize(t);
  return register_type(std::move(t), newtype);
}

Err TypeEngine::vector(int count, int blocklength, int stride, Datatype oldtype,
                       Datatype* newtype) {
  if (count < 0 || blocklength < 0 || newtype == nullptr) return Err::Count;
  const TypeInfo* old = info(oldtype);
  if (old == nullptr) return Err::Datatype;
  TypeInfo t;
  for (int i = 0; i < count; ++i) {
    const std::int64_t disp = static_cast<std::int64_t>(i) * stride * old->extent;
    append_block(t.segments, *old, disp, blocklength);
  }
  finalize(t);
  return register_type(std::move(t), newtype);
}

Err TypeEngine::indexed(std::span<const int> blocklengths, std::span<const int> displacements,
                        Datatype oldtype, Datatype* newtype) {
  if (blocklengths.size() != displacements.size() || newtype == nullptr) return Err::Arg;
  const TypeInfo* old = info(oldtype);
  if (old == nullptr) return Err::Datatype;
  for (int b : blocklengths) {
    if (b < 0) return Err::Count;
  }
  TypeInfo t;
  for (std::size_t i = 0; i < blocklengths.size(); ++i) {
    const std::int64_t disp = static_cast<std::int64_t>(displacements[i]) * old->extent;
    append_block(t.segments, *old, disp, blocklengths[i]);
  }
  finalize(t);
  return register_type(std::move(t), newtype);
}

Err TypeEngine::create_struct(std::span<const int> blocklengths,
                              std::span<const std::int64_t> displacements,
                              std::span<const Datatype> types, Datatype* newtype) {
  if (blocklengths.size() != displacements.size() || blocklengths.size() != types.size() ||
      newtype == nullptr) {
    return Err::Arg;
  }
  TypeInfo t;
  for (std::size_t i = 0; i < blocklengths.size(); ++i) {
    if (blocklengths[i] < 0) return Err::Count;
    const TypeInfo* old = info(types[i]);
    if (old == nullptr) return Err::Datatype;
    append_block(t.segments, *old, displacements[i], blocklengths[i]);
  }
  finalize(t);
  return register_type(std::move(t), newtype);
}

Err TypeEngine::hvector(int count, int blocklength, std::int64_t stride_bytes,
                        Datatype oldtype, Datatype* newtype) {
  if (count < 0 || blocklength < 0 || newtype == nullptr) return Err::Count;
  const TypeInfo* old = info(oldtype);
  if (old == nullptr) return Err::Datatype;
  TypeInfo t;
  for (int i = 0; i < count; ++i) {
    append_block(t.segments, *old, static_cast<std::int64_t>(i) * stride_bytes, blocklength);
  }
  finalize(t);
  return register_type(std::move(t), newtype);
}

Err TypeEngine::hindexed(std::span<const int> blocklengths,
                         std::span<const std::int64_t> displacements_bytes, Datatype oldtype,
                         Datatype* newtype) {
  if (blocklengths.size() != displacements_bytes.size() || newtype == nullptr) {
    return Err::Arg;
  }
  const TypeInfo* old = info(oldtype);
  if (old == nullptr) return Err::Datatype;
  TypeInfo t;
  for (std::size_t i = 0; i < blocklengths.size(); ++i) {
    if (blocklengths[i] < 0) return Err::Count;
    append_block(t.segments, *old, displacements_bytes[i], blocklengths[i]);
  }
  finalize(t);
  return register_type(std::move(t), newtype);
}

Err TypeEngine::create_resized(Datatype oldtype, std::int64_t lb, std::int64_t extent,
                               Datatype* newtype) {
  if (newtype == nullptr) return Err::Arg;
  if (extent < 0) return Err::Arg;
  const TypeInfo* old = info(oldtype);
  if (old == nullptr) return Err::Datatype;
  TypeInfo t = *old;
  t.committed = false;
  t.lb = lb;
  t.extent = extent;
  t.contiguous = t.segments.size() == 1 && t.segments.front().offset == 0 &&
                 static_cast<std::int64_t>(t.segments.front().length) == t.extent;
  return register_type(std::move(t), newtype);
}

Err TypeEngine::dup(Datatype oldtype, Datatype* newtype) {
  if (newtype == nullptr) return Err::Arg;
  const TypeInfo* old = info(oldtype);
  if (old == nullptr) return Err::Datatype;
  TypeInfo t = *old;  // committed state carries over, as MPI_TYPE_DUP requires
  return register_type(std::move(t), newtype);
}

Err TypeEngine::commit(Datatype* d) {
  if (d == nullptr) return Err::Datatype;
  if (is_builtin(*d)) return Err::Success;  // builtins are pre-committed
  const std::uint32_t idx = handle_payload(*d);
  if (handle_kind(*d) != HandleKind::DerivedDatatype || idx >= derived_.size() ||
      !derived_[idx].has_value()) {
    return Err::Datatype;
  }
  derived_[idx]->committed = true;
  return Err::Success;
}

Err TypeEngine::free_type(Datatype* d) {
  if (d == nullptr) return Err::Datatype;
  if (is_builtin(*d)) return Err::Datatype;  // cannot free builtins
  const std::uint32_t idx = handle_payload(*d);
  if (handle_kind(*d) != HandleKind::DerivedDatatype || idx >= derived_.size() ||
      !derived_[idx].has_value()) {
    return Err::Datatype;
  }
  derived_[idx].reset();
  free_slots_.push_back(idx);
  --live_derived_;
  *d = kDatatypeNull;
  return Err::Success;
}

std::size_t packed_size(const TypeEngine& eng, int count, Datatype d) noexcept {
  if (count <= 0) return 0;
  if (is_builtin(d)) return static_cast<std::size_t>(count) * builtin_size(d);
  const TypeInfo* i = eng.info(d);
  return i == nullptr ? 0 : static_cast<std::size_t>(count) * i->size;
}

std::size_t pack_info(const TypeInfo& info, const void* src, int count,
                      std::byte* dst) noexcept {
  if (count <= 0) return 0;
  const auto* base = static_cast<const std::byte*>(src);
  if (info.contiguous) {
    const std::size_t n = static_cast<std::size_t>(count) * info.size;
    std::memcpy(dst, base, n);
    return n;
  }
  std::size_t written = 0;
  for (int e = 0; e < count; ++e) {
    const std::byte* elem = base + static_cast<std::int64_t>(e) * info.extent;
    for (const Segment& s : info.segments) {
      std::memcpy(dst + written, elem + s.offset, s.length);
      written += s.length;
    }
  }
  return written;
}

std::size_t unpack_info(const TypeInfo& info, const std::byte* src, std::size_t n, void* dst,
                        int count) noexcept {
  if (count <= 0) return 0;
  auto* base = static_cast<std::byte*>(dst);
  if (info.contiguous) {
    const std::size_t want = static_cast<std::size_t>(count) * info.size;
    const std::size_t take = std::min(n, want);
    std::memcpy(base, src, take);
    return take;
  }
  std::size_t consumed = 0;
  for (int e = 0; e < count && consumed < n; ++e) {
    std::byte* elem = base + static_cast<std::int64_t>(e) * info.extent;
    for (const Segment& s : info.segments) {
      if (consumed >= n) break;
      const std::size_t take = std::min(s.length, n - consumed);
      std::memcpy(elem + s.offset, src + consumed, take);
      consumed += take;
    }
  }
  return consumed;
}

std::size_t pack(const TypeEngine& eng, const void* src, int count, Datatype d,
                 std::byte* dst) noexcept {
  const TypeInfo* i = eng.info(d);
  return i == nullptr ? 0 : pack_info(*i, src, count, dst);
}

std::size_t unpack(const TypeEngine& eng, const std::byte* src, std::size_t n, void* dst,
                   int count, Datatype d) noexcept {
  const TypeInfo* i = eng.info(d);
  return i == nullptr ? 0 : unpack_info(*i, src, n, dst, count);
}

// ---------------------------------------------------------------------------
// Wire form: [size u64][lb i64][extent i64][contig u8][nsegs u32]
//            then per segment [offset i64][length u64].
// ---------------------------------------------------------------------------

namespace {
template <typename T>
void put_scalar(std::vector<std::byte>& out, T v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}
template <typename T>
bool get_scalar(std::span<const std::byte> in, std::size_t& pos, T& v) {
  if (pos + sizeof(T) > in.size()) return false;
  std::memcpy(&v, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return true;
}
}  // namespace

std::vector<std::byte> serialize_info(const TypeInfo& info) {
  std::vector<std::byte> out;
  out.reserve(29 + info.segments.size() * 16);
  put_scalar<std::uint64_t>(out, info.size);
  put_scalar<std::int64_t>(out, info.lb);
  put_scalar<std::int64_t>(out, info.extent);
  put_scalar<std::uint8_t>(out, info.contiguous ? 1 : 0);
  put_scalar<std::uint32_t>(out, static_cast<std::uint32_t>(info.segments.size()));
  for (const Segment& s : info.segments) {
    put_scalar<std::int64_t>(out, s.offset);
    put_scalar<std::uint64_t>(out, s.length);
  }
  return out;
}

std::optional<std::pair<TypeInfo, std::size_t>> deserialize_info(
    std::span<const std::byte> blob) {
  TypeInfo info;
  std::size_t pos = 0;
  std::uint64_t size = 0;
  std::uint8_t contig = 0;
  std::uint32_t nsegs = 0;
  if (!get_scalar(blob, pos, size)) return std::nullopt;
  if (!get_scalar(blob, pos, info.lb)) return std::nullopt;
  if (!get_scalar(blob, pos, info.extent)) return std::nullopt;
  if (!get_scalar(blob, pos, contig)) return std::nullopt;
  if (!get_scalar(blob, pos, nsegs)) return std::nullopt;
  info.size = size;
  info.contiguous = contig != 0;
  info.committed = true;
  info.segments.reserve(nsegs);
  for (std::uint32_t i = 0; i < nsegs; ++i) {
    Segment s;
    std::uint64_t len = 0;
    if (!get_scalar(blob, pos, s.offset)) return std::nullopt;
    if (!get_scalar(blob, pos, len)) return std::nullopt;
    s.length = len;
    info.segments.push_back(s);
  }
  return std::make_pair(std::move(info), pos);
}

}  // namespace lwmpi::dt
