// Derived-datatype engine: construction, commit, flattening, pack/unpack.
//
// Builtin types are fully described by their handle (size encoded in the
// handle bits), so the fast path never dereferences memory for them. Derived
// types are flattened at commit time into a sorted, merged list of
// (offset, length) byte segments per element extent; pack/unpack and the
// noncontiguous RMA/AM fallback walk that list.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace lwmpi::dt {

struct Segment {
  std::int64_t offset = 0;  // byte offset from element base
  std::size_t length = 0;   // contiguous run length in bytes
  friend bool operator==(const Segment&, const Segment&) = default;
};

struct TypeInfo {
  std::size_t size = 0;      // bytes of actual data per element
  std::int64_t lb = 0;       // lowest byte offset touched
  std::int64_t extent = 0;   // ub - lb; spacing between consecutive elements
  bool contiguous = true;    // one segment at offset 0 with length == extent
  bool committed = false;
  std::vector<Segment> segments;  // sorted by offset, adjacent runs merged
};

class TypeEngine {
 public:
  TypeEngine();

  // --- constructors (types start uncommitted) ---
  Err contiguous(int count, Datatype oldtype, Datatype* newtype);
  Err vector(int count, int blocklength, int stride, Datatype oldtype, Datatype* newtype);
  Err indexed(std::span<const int> blocklengths, std::span<const int> displacements,
              Datatype oldtype, Datatype* newtype);
  // displacements in bytes, one (possibly different) type per block.
  Err create_struct(std::span<const int> blocklengths,
                    std::span<const std::int64_t> displacements,
                    std::span<const Datatype> types, Datatype* newtype);
  // Heterogeneous variants: strides/displacements in *bytes* rather than
  // multiples of the old type's extent (MPI_TYPE_CREATE_HVECTOR / HINDEXED).
  Err hvector(int count, int blocklength, std::int64_t stride_bytes, Datatype oldtype,
              Datatype* newtype);
  Err hindexed(std::span<const int> blocklengths,
               std::span<const std::int64_t> displacements_bytes, Datatype oldtype,
               Datatype* newtype);
  // Override lb/extent (MPI_TYPE_CREATE_RESIZED): controls element spacing
  // without changing the data layout.
  Err create_resized(Datatype oldtype, std::int64_t lb, std::int64_t extent,
                     Datatype* newtype);
  // Independent copy of a (possibly derived) type (MPI_TYPE_DUP).
  Err dup(Datatype oldtype, Datatype* newtype);

  Err commit(Datatype* d);
  Err free_type(Datatype* d);

  // --- queries ---
  bool valid(Datatype d) const noexcept;
  bool committed_or_builtin(Datatype d) const noexcept;
  Err get_size(Datatype d, std::size_t* size) const noexcept;
  Err get_extent(Datatype d, std::int64_t* lb, std::int64_t* extent) const noexcept;
  bool is_contiguous(Datatype d) const noexcept;

  // Full flattened description; nullptr for invalid handles. For builtin
  // handles this returns a pointer into a static table.
  const TypeInfo* info(Datatype d) const noexcept;

  std::size_t num_derived_live() const noexcept { return live_derived_; }

 private:
  Err register_type(TypeInfo info, Datatype* out);
  const TypeInfo* derived_info(Datatype d) const noexcept;

  std::vector<std::optional<TypeInfo>> derived_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_derived_ = 0;
};

// Total packed (contiguous) byte size of `count` elements of `d`.
std::size_t packed_size(const TypeEngine& eng, int count, Datatype d) noexcept;

// Gather `count` elements of type `d` at `src` into the contiguous buffer
// `dst` (which must hold packed_size bytes). Returns bytes written.
std::size_t pack(const TypeEngine& eng, const void* src, int count, Datatype d,
                 std::byte* dst) noexcept;

// Scatter `n` contiguous bytes at `src` into `count` elements of type `d` at
// `dst`. Stops after `n` bytes (partial fill allowed). Returns bytes consumed.
std::size_t unpack(const TypeEngine& eng, const std::byte* src, std::size_t n, void* dst,
                   int count, Datatype d) noexcept;

// Pack/unpack against an explicit flattened description (used when the
// description was shipped over the wire rather than registered locally).
std::size_t pack_info(const TypeInfo& info, const void* src, int count, std::byte* dst) noexcept;
std::size_t unpack_info(const TypeInfo& info, const std::byte* src, std::size_t n, void* dst,
                        int count) noexcept;

// Wire form of a flattened datatype, so RMA active messages can describe the
// target-side layout of an origin-local derived type. Builtin handles are
// globally meaningful and never need this.
std::vector<std::byte> serialize_info(const TypeInfo& info);
// Returns the deserialized description and the number of bytes consumed, or
// nullopt on a malformed blob.
std::optional<std::pair<TypeInfo, std::size_t>> deserialize_info(
    std::span<const std::byte> blob);

}  // namespace lwmpi::dt
