// Element-wise reduction kernels for collectives and RMA accumulate.
// Operations apply to builtin datatypes only (as MPI requires for predefined
// ops); dispatch is by builtin id.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace lwmpi::coll {

// inout[i] = inout[i] OP in[i] for `count` elements of builtin type `dt`.
// Returns Err::Op for an op/type combination that is not defined (e.g.
// bitwise ops on floating point) and Err::Datatype for non-builtin types.
Err apply_op(ReduceOp op, Datatype dt, void* inout, const void* in, std::size_t count);

// True if `op` is defined for builtin type `dt`.
bool op_defined(ReduceOp op, Datatype dt);

}  // namespace lwmpi::coll
