// Machine-independent collectives, implemented over the pt2pt device on the
// communicator's reserved collective context (user traffic cannot interfere).
//
// Algorithm choices follow the classic MPICH set: dissemination barrier,
// binomial bcast/reduce, recursive-doubling allreduce (with the usual
// non-power-of-two pre/post fold), ring allgather, linear gather/scatter,
// rotated pairwise alltoall, and a linear pipelined scan.
//
// VCI routing is automatic: every transfer goes through device_isend /
// post_recv_common on the parent communicator, and the collective context
// (ctx + 1) maps to the same channel as the communicator itself, so a
// collective's whole packet exchange stays on one VCI.
#include <cstring>
#include <vector>

#include "coll/ops.hpp"
#include "core/engine.hpp"
#include "cost/meter.hpp"
#include "cost/model.hpp"
#include "obs/recorder.hpp"
#include "obs/watchdog.hpp"

namespace lwmpi {

namespace {
// Internal tags per collective (distinct so misuse shows up in tests).
constexpr Tag kTagBarrier = 1;
constexpr Tag kTagBcast = 2;
constexpr Tag kTagReduce = 3;
constexpr Tag kTagAllreduce = 4;
constexpr Tag kTagGather = 5;
constexpr Tag kTagAllgather = 6;
constexpr Tag kTagScatter = 7;
constexpr Tag kTagAlltoall = 8;
constexpr Tag kTagScan = 9;
}  // namespace

// ---------------------------------------------------------------------------
// Internal pt2pt on the collective plane
// ---------------------------------------------------------------------------

Err Engine::coll_isend(const void* buf, int count, Datatype dt, Rank dest, Tag tag, Comm comm,
                       Request* req) {
  SendParams p{.buf = buf, .count = count, .dt = dt, .dest = dest, .tag = tag, .comm = comm};
  p.coll_plane = true;
  return device_isend(p, req);
}

Err Engine::coll_irecv(void* buf, int count, Datatype dt, Rank src, Tag tag, Comm comm,
                       Request* req) {
  return post_recv_common(buf, count, dt, src, tag, comm, rt::MatchMode::Full, true, req);
}

Err Engine::coll_send(const void* buf, int count, Datatype dt, Rank dest, Tag tag, Comm comm) {
  Request r = kRequestNull;
  if (Err e = coll_isend(buf, count, dt, dest, tag, comm, &r); !ok(e)) return e;
  return wait(&r, nullptr);
}

Err Engine::coll_recv(void* buf, int count, Datatype dt, Rank src, Tag tag, Comm comm,
                      Status* st) {
  Request r = kRequestNull;
  if (Err e = coll_irecv(buf, count, dt, src, tag, comm, &r); !ok(e)) return e;
  return wait(&r, st);
}

// ---------------------------------------------------------------------------
// Barrier: dissemination
// ---------------------------------------------------------------------------

Err Engine::barrier(Comm comm) {
  obs::ProfScope psc(prof_, obs::Callsite::Barrier, prof_vci(comm), 0);
  obs::RecScope rsc(rec_, obs::Callsite::Barrier, 0, 0, rec_vci(comm), 0);
  CommObject* c = comm_obj(comm);
  if (c == nullptr) return Err::Comm;
  const int p = c->map.size();
  const int r = c->rank;
  if (p == 1) return Err::Success;
  // Outermost-wins: a barrier nested inside Win_fence keeps the fence label.
  obs::BlockScope block(*this, "Barrier");
  char token = 0;
  for (int mask = 1; mask < p; mask <<= 1) {
    const Rank to = static_cast<Rank>((r + mask) % p);
    const Rank from = static_cast<Rank>((r - mask % p + p) % p);
    Request sreq = kRequestNull;
    Request rreq = kRequestNull;
    if (Err e = coll_irecv(&token, 1, kChar, from, kTagBarrier, comm, &rreq); !ok(e)) return e;
    if (Err e = coll_isend(&token, 1, kChar, to, kTagBarrier, comm, &sreq); !ok(e)) return e;
    if (Err e = wait(&sreq, nullptr); !ok(e)) return e;
    if (Err e = wait(&rreq, nullptr); !ok(e)) return e;
  }
  return Err::Success;
}

// ---------------------------------------------------------------------------
// Bcast: binomial tree
// ---------------------------------------------------------------------------

Err Engine::bcast(void* buf, int count, Datatype dt, Rank root, Comm comm) {
  obs::ProfScope psc(prof_, obs::Callsite::Bcast, prof_vci(comm), prof_bytes(count, dt));
  // Collectives record the root in the peer field and the builtin element
  // size in the tag field so replay can rebuild (count, datatype) and hit the
  // same internal algorithm splits (see RecOp).
  obs::RecScope rsc(rec_, obs::Callsite::Bcast, root, rec_esize(dt), rec_vci(comm),
                    rec_bytes(count, dt));
  CommObject* c = comm_obj(comm);
  if (c == nullptr) return Err::Comm;
  const int p = c->map.size();
  if (cfg_.error_checking) {
    cost::charge(cost::Category::ErrCheck, cost::kErrRootRange);
    if (root < 0 || root >= p) return Err::Root;
    if (Err e = check_count(count); !ok(e)) return e;
    if (Err e = check_datatype(dt); !ok(e)) return e;
  }
  if (p == 1 || count == 0) return Err::Success;
  const int r = c->rank;
  const int vr = (r - root + p) % p;  // virtual rank: root is 0

  // Receive from parent.
  int mask = 1;
  while (mask < p) {
    if (vr & mask) {
      const Rank parent = static_cast<Rank>(((vr - mask) + root) % p);
      if (Err e = coll_recv(buf, count, dt, parent, kTagBcast, comm, nullptr); !ok(e)) return e;
      break;
    }
    mask <<= 1;
  }
  // Forward to children.
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < p) {
      const Rank child = static_cast<Rank>((vr + mask + root) % p);
      if (Err e = coll_send(buf, count, dt, child, kTagBcast, comm); !ok(e)) return e;
    }
    mask >>= 1;
  }
  return Err::Success;
}

// ---------------------------------------------------------------------------
// Reduce: binomial tree with local combine
// ---------------------------------------------------------------------------

Err Engine::reduce(const void* sbuf, void* rbuf, int count, Datatype dt, ReduceOp op,
                   Rank root, Comm comm) {
  obs::ProfScope psc(prof_, obs::Callsite::Reduce, prof_vci(comm), prof_bytes(count, dt));
  obs::RecScope rsc(rec_, obs::Callsite::Reduce, root, rec_esize(dt), rec_vci(comm),
                    rec_bytes(count, dt));
  CommObject* c = comm_obj(comm);
  if (c == nullptr) return Err::Comm;
  const int p = c->map.size();
  if (!is_builtin(dt)) return Err::Datatype;  // predefined ops need basic types
  if (cfg_.error_checking) {
    cost::charge(cost::Category::ErrCheck, cost::kErrRootRange + cost::kErrOpValid);
    if (root < 0 || root >= p) return Err::Root;
    if (!coll::op_defined(op, dt)) return Err::Op;
    if (Err e = check_count(count); !ok(e)) return e;
  }
  const std::size_t bytes = static_cast<std::size_t>(count) * builtin_size(dt);
  const int r = c->rank;
  const int vr = (r - root + p) % p;

  // Working accumulator starts as my contribution.
  std::vector<std::byte> acc(bytes);
  if (bytes != 0) std::memcpy(acc.data(), sbuf, bytes);
  std::vector<std::byte> incoming(bytes);

  int mask = 1;
  while (mask < p) {
    if ((vr & mask) == 0) {
      const int src_vr = vr | mask;
      if (src_vr < p) {
        const Rank src = static_cast<Rank>((src_vr + root) % p);
        if (Err e = coll_recv(incoming.data(), count, dt, src, kTagReduce, comm, nullptr);
            !ok(e)) {
          return e;
        }
        if (Err e = coll::apply_op(op, dt, acc.data(), incoming.data(),
                                   static_cast<std::size_t>(count));
            !ok(e)) {
          return e;
        }
      }
    } else {
      const Rank dst = static_cast<Rank>(((vr & ~mask) + root) % p);
      return coll_send(acc.data(), count, dt, dst, kTagReduce, comm);
    }
    mask <<= 1;
  }
  // Only the root reaches here.
  if (bytes != 0 && rbuf != nullptr) std::memcpy(rbuf, acc.data(), bytes);
  return Err::Success;
}

// ---------------------------------------------------------------------------
// Allreduce: recursive doubling with non-power-of-two fold
// ---------------------------------------------------------------------------

Err Engine::allreduce(const void* sbuf, void* rbuf, int count, Datatype dt, ReduceOp op,
                      Comm comm) {
  obs::ProfScope psc(prof_, obs::Callsite::Allreduce, prof_vci(comm),
                     prof_bytes(count, dt));
  obs::RecScope rsc(rec_, obs::Callsite::Allreduce, 0, rec_esize(dt), rec_vci(comm),
                    rec_bytes(count, dt));
  CommObject* c = comm_obj(comm);
  if (c == nullptr) return Err::Comm;
  if (!is_builtin(dt)) return Err::Datatype;  // predefined ops need basic types
  if (cfg_.error_checking) {
    cost::charge(cost::Category::ErrCheck, cost::kErrOpValid);
    if (!coll::op_defined(op, dt)) return Err::Op;
    if (Err e = check_count(count); !ok(e)) return e;
  }
  const int p = c->map.size();
  const int r = c->rank;
  const std::size_t bytes = static_cast<std::size_t>(count) * builtin_size(dt);
  if (bytes != 0 && rbuf != sbuf) std::memcpy(rbuf, sbuf, bytes);
  if (p == 1 || count == 0) return Err::Success;

  // Large messages on power-of-two communicators take the bandwidth-optimal
  // reduce-scatter + allgather path (Rabenseifner); small messages stay on
  // latency-optimal recursive doubling.
  constexpr std::size_t kRabenseifnerBytes = 8192;
  if (bytes >= kRabenseifnerBytes && (p & (p - 1)) == 0 && count >= p) {
    return allreduce_rabenseifner(rbuf, count, dt, op, comm);
  }

  std::vector<std::byte> incoming(bytes);

  // pof2 = largest power of two <= p; fold the remainder into the front.
  int pof2 = 1;
  while (pof2 * 2 <= p) pof2 *= 2;
  const int rem = p - pof2;

  int newrank;
  if (r < 2 * rem) {
    if (r % 2 == 0) {  // even remainder ranks send their data and sit out
      if (Err e = coll_send(rbuf, count, dt, static_cast<Rank>(r + 1), kTagAllreduce, comm);
          !ok(e)) {
        return e;
      }
      newrank = -1;
    } else {
      if (Err e =
              coll_recv(incoming.data(), count, dt, static_cast<Rank>(r - 1), kTagAllreduce,
                        comm, nullptr);
          !ok(e)) {
        return e;
      }
      if (Err e = coll::apply_op(op, dt, rbuf, incoming.data(), static_cast<std::size_t>(count));
          !ok(e)) {
        return e;
      }
      newrank = r / 2;
    }
  } else {
    newrank = r - rem;
  }

  if (newrank != -1) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int newdst = newrank ^ mask;
      const Rank dst = static_cast<Rank>(newdst < rem ? newdst * 2 + 1 : newdst + rem);
      Request sreq = kRequestNull;
      Request rreq = kRequestNull;
      if (Err e = coll_irecv(incoming.data(), count, dt, dst, kTagAllreduce, comm, &rreq);
          !ok(e)) {
        return e;
      }
      if (Err e = coll_isend(rbuf, count, dt, dst, kTagAllreduce, comm, &sreq); !ok(e)) return e;
      if (Err e = wait(&sreq, nullptr); !ok(e)) return e;
      if (Err e = wait(&rreq, nullptr); !ok(e)) return e;
      if (Err e = coll::apply_op(op, dt, rbuf, incoming.data(), static_cast<std::size_t>(count));
          !ok(e)) {
        return e;
      }
    }
  }

  // Unfold: odd remainder ranks return the result to their even partners.
  if (r < 2 * rem) {
    if (r % 2 == 1) {
      return coll_send(rbuf, count, dt, static_cast<Rank>(r - 1), kTagAllreduce, comm);
    }
    return coll_recv(rbuf, count, dt, static_cast<Rank>(r + 1), kTagAllreduce, comm, nullptr);
  }
  return Err::Success;
}

// ---------------------------------------------------------------------------
// Gather / Allgather / Scatter
// ---------------------------------------------------------------------------

Err Engine::gather(const void* sbuf, int scount, Datatype sdt, void* rbuf, int rcount,
                   Datatype rdt, Rank root, Comm comm) {
  obs::ProfScope psc(prof_, obs::Callsite::Gather, prof_vci(comm),
                     prof_bytes(scount, sdt));
  obs::RecScope rsc(rec_, obs::Callsite::Gather, root, rec_esize(sdt), rec_vci(comm),
                    rec_bytes(scount, sdt));
  CommObject* c = comm_obj(comm);
  if (c == nullptr) return Err::Comm;
  const int p = c->map.size();
  if (cfg_.error_checking) {
    cost::charge(cost::Category::ErrCheck, cost::kErrRootRange);
    if (root < 0 || root >= p) return Err::Root;
  }
  const int r = c->rank;
  if (r != root) return coll_send(sbuf, scount, sdt, root, kTagGather, comm);

  const std::size_t slot_bytes = dt::packed_size(types_, rcount, rdt);
  auto* out = static_cast<std::byte*>(rbuf);
  for (int i = 0; i < p; ++i) {
    if (i == root) {
      const std::size_t n = dt::packed_size(types_, scount, sdt);
      std::vector<std::byte> tmp(n);
      dt::pack(types_, sbuf, scount, sdt, tmp.data());
      dt::unpack(types_, tmp.data(), n, out + static_cast<std::size_t>(i) * slot_bytes,
                 rcount, rdt);
    } else {
      if (Err e = coll_recv(out + static_cast<std::size_t>(i) * slot_bytes, rcount, rdt,
                            static_cast<Rank>(i), kTagGather, comm, nullptr);
          !ok(e)) {
        return e;
      }
    }
  }
  return Err::Success;
}

Err Engine::allgather(const void* sbuf, int scount, Datatype sdt, void* rbuf, int rcount,
                      Datatype rdt, Comm comm) {
  obs::ProfScope psc(prof_, obs::Callsite::Allgather, prof_vci(comm),
                     prof_bytes(scount, sdt));
  obs::RecScope rsc(rec_, obs::Callsite::Allgather, 0, rec_esize(sdt), rec_vci(comm),
                    rec_bytes(scount, sdt));
  CommObject* c = comm_obj(comm);
  if (c == nullptr) return Err::Comm;
  const int p = c->map.size();
  const int r = c->rank;
  const std::size_t slot_bytes = dt::packed_size(types_, rcount, rdt);
  auto* out = static_cast<std::byte*>(rbuf);

  // Place my contribution, then run the ring: in step s, forward the block
  // originally owned by (r - s).
  {
    const std::size_t n = dt::packed_size(types_, scount, sdt);
    std::vector<std::byte> tmp(n);
    dt::pack(types_, sbuf, scount, sdt, tmp.data());
    dt::unpack(types_, tmp.data(), n, out + static_cast<std::size_t>(r) * slot_bytes, rcount,
               rdt);
  }
  if (p == 1) return Err::Success;

  const Rank right = static_cast<Rank>((r + 1) % p);
  const Rank left = static_cast<Rank>((r - 1 + p) % p);
  for (int s = 0; s < p - 1; ++s) {
    const int send_block = (r - s + p) % p;
    const int recv_block = (r - s - 1 + p) % p;
    Request sreq = kRequestNull;
    Request rreq = kRequestNull;
    if (Err e = coll_irecv(out + static_cast<std::size_t>(recv_block) * slot_bytes, rcount,
                           rdt, left, kTagAllgather, comm, &rreq);
        !ok(e)) {
      return e;
    }
    if (Err e = coll_isend(out + static_cast<std::size_t>(send_block) * slot_bytes, rcount,
                           rdt, right, kTagAllgather, comm, &sreq);
        !ok(e)) {
      return e;
    }
    if (Err e = wait(&sreq, nullptr); !ok(e)) return e;
    if (Err e = wait(&rreq, nullptr); !ok(e)) return e;
  }
  return Err::Success;
}

Err Engine::scatter(const void* sbuf, int scount, Datatype sdt, void* rbuf, int rcount,
                    Datatype rdt, Rank root, Comm comm) {
  obs::ProfScope psc(prof_, obs::Callsite::Scatter, prof_vci(comm),
                     prof_bytes(rcount, rdt));
  obs::RecScope rsc(rec_, obs::Callsite::Scatter, root, rec_esize(rdt), rec_vci(comm),
                    rec_bytes(rcount, rdt));
  CommObject* c = comm_obj(comm);
  if (c == nullptr) return Err::Comm;
  const int p = c->map.size();
  if (cfg_.error_checking) {
    cost::charge(cost::Category::ErrCheck, cost::kErrRootRange);
    if (root < 0 || root >= p) return Err::Root;
  }
  const int r = c->rank;
  if (r != root) return coll_recv(rbuf, rcount, rdt, root, kTagScatter, comm, nullptr);

  const std::size_t slot_bytes = dt::packed_size(types_, scount, sdt);
  const auto* in = static_cast<const std::byte*>(sbuf);
  for (int i = 0; i < p; ++i) {
    const std::byte* block = in + static_cast<std::size_t>(i) * slot_bytes;
    if (i == root) {
      std::vector<std::byte> tmp(slot_bytes);
      dt::pack(types_, block, scount, sdt, tmp.data());
      dt::unpack(types_, tmp.data(), slot_bytes, rbuf, rcount, rdt);
    } else {
      if (Err e = coll_send(block, scount, sdt, static_cast<Rank>(i), kTagScatter, comm);
          !ok(e)) {
        return e;
      }
    }
  }
  return Err::Success;
}

// ---------------------------------------------------------------------------
// Alltoall: rotated pairwise exchange
// ---------------------------------------------------------------------------

Err Engine::alltoall(const void* sbuf, int scount, Datatype sdt, void* rbuf, int rcount,
                     Datatype rdt, Comm comm) {
  obs::ProfScope psc(prof_, obs::Callsite::Alltoall, prof_vci(comm),
                     prof_bytes(scount, sdt));
  obs::RecScope rsc(rec_, obs::Callsite::Alltoall, 0, rec_esize(sdt), rec_vci(comm),
                    rec_bytes(scount, sdt));
  CommObject* c = comm_obj(comm);
  if (c == nullptr) return Err::Comm;
  const int p = c->map.size();
  const int r = c->rank;
  const std::size_t sslot = dt::packed_size(types_, scount, sdt);
  const std::size_t rslot = dt::packed_size(types_, rcount, rdt);
  const auto* in = static_cast<const std::byte*>(sbuf);
  auto* out = static_cast<std::byte*>(rbuf);

  // Local block.
  {
    std::vector<std::byte> tmp(sslot);
    dt::pack(types_, in + static_cast<std::size_t>(r) * sslot, scount, sdt, tmp.data());
    dt::unpack(types_, tmp.data(), sslot, out + static_cast<std::size_t>(r) * rslot, rcount,
               rdt);
  }
  for (int s = 1; s < p; ++s) {
    const Rank dst = static_cast<Rank>((r + s) % p);
    const Rank src = static_cast<Rank>((r - s + p) % p);
    Request sreq = kRequestNull;
    Request rreq = kRequestNull;
    if (Err e = coll_irecv(out + static_cast<std::size_t>(src) * rslot, rcount, rdt, src,
                           kTagAlltoall, comm, &rreq);
        !ok(e)) {
      return e;
    }
    if (Err e = coll_isend(in + static_cast<std::size_t>(dst) * sslot, scount, sdt, dst,
                           kTagAlltoall, comm, &sreq);
        !ok(e)) {
      return e;
    }
    if (Err e = wait(&sreq, nullptr); !ok(e)) return e;
    if (Err e = wait(&rreq, nullptr); !ok(e)) return e;
  }
  return Err::Success;
}

// ---------------------------------------------------------------------------
// Scan (inclusive): linear pipeline
// ---------------------------------------------------------------------------

Err Engine::scan(const void* sbuf, void* rbuf, int count, Datatype dt, ReduceOp op,
                 Comm comm) {
  obs::ProfScope psc(prof_, obs::Callsite::Scan, prof_vci(comm), prof_bytes(count, dt));
  obs::RecScope rsc(rec_, obs::Callsite::Scan, 0, rec_esize(dt), rec_vci(comm),
                    rec_bytes(count, dt));
  CommObject* c = comm_obj(comm);
  if (c == nullptr) return Err::Comm;
  if (!is_builtin(dt)) return Err::Datatype;
  if (cfg_.error_checking) {
    cost::charge(cost::Category::ErrCheck, cost::kErrOpValid);
    if (!coll::op_defined(op, dt)) return Err::Op;
  }
  const int p = c->map.size();
  const int r = c->rank;
  const std::size_t bytes = static_cast<std::size_t>(count) * builtin_size(dt);
  if (bytes != 0 && rbuf != sbuf) std::memcpy(rbuf, sbuf, bytes);
  if (p == 1 || count == 0) return Err::Success;

  if (r > 0) {
    std::vector<std::byte> prefix(bytes);
    if (Err e = coll_recv(prefix.data(), count, dt, static_cast<Rank>(r - 1), kTagScan, comm,
                          nullptr);
        !ok(e)) {
      return e;
    }
    // result = prefix OP mine, preserving operand order for non-commutative
    // semantics: accumulate into prefix then copy out.
    if (Err e = coll::apply_op(op, dt, prefix.data(), rbuf, static_cast<std::size_t>(count));
        !ok(e)) {
      return e;
    }
    std::memcpy(rbuf, prefix.data(), bytes);
  }
  if (r < p - 1) {
    return coll_send(rbuf, count, dt, static_cast<Rank>(r + 1), kTagScan, comm);
  }
  return Err::Success;
}

}  // namespace lwmpi
