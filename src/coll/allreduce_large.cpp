// Large-message allreduce: Rabenseifner's algorithm (recursive-halving
// reduce-scatter followed by recursive-doubling allgather). Selected by
// Engine::allreduce for messages past kRabenseifnerBytes on power-of-two
// communicators; bandwidth-optimal (2·(p-1)/p · n data moved vs. the
// recursive-doubling lg(p)·n), at the cost of more steps.
#include <cstring>
#include <vector>

#include "coll/ops.hpp"
#include "core/engine.hpp"

namespace lwmpi {

namespace {
constexpr Tag kTagRab = 13;
}  // namespace

// Requires: p a power of two, rbuf already holds this rank's contribution.
Err Engine::allreduce_rabenseifner(void* rbuf, int count, Datatype dt_, ReduceOp op,
                                   Comm comm) {
  CommObject* c = comm_obj(comm);
  const int p = c->map.size();
  const int r = c->rank;
  const std::size_t esize = builtin_size(dt_);
  auto* data = static_cast<std::byte*>(rbuf);

  // Block decomposition: block i holds cnts[i] elements at displs[i].
  std::vector<int> cnts(static_cast<std::size_t>(p));
  std::vector<int> displs(static_cast<std::size_t>(p) + 1);
  const int base = count / p;
  const int rem = count % p;
  for (int i = 0; i < p; ++i) {
    cnts[static_cast<std::size_t>(i)] = base + (i < rem ? 1 : 0);
    displs[static_cast<std::size_t>(i + 1)] =
        displs[static_cast<std::size_t>(i)] + cnts[static_cast<std::size_t>(i)];
  }
  auto range_elems = [&](int lo, int hi) {
    return displs[static_cast<std::size_t>(hi + 1)] - displs[static_cast<std::size_t>(lo)];
  };
  auto range_ptr = [&](int lo) {
    return data + static_cast<std::size_t>(displs[static_cast<std::size_t>(lo)]) * esize;
  };

  struct StepLog {
    Rank partner;
    int kept_lo, kept_hi;   // the half we kept (and kept reducing)
    int gave_lo, gave_hi;   // the half the partner took responsibility for
  };
  std::vector<StepLog> steps;

  // --- Phase 1: recursive-halving reduce-scatter -----------------------------
  std::vector<std::byte> tmp(static_cast<std::size_t>((count + 1) / 2 + 1) * esize);
  int lo = 0;
  int hi = p - 1;
  for (int mask = p >> 1; mask > 0; mask >>= 1) {
    const Rank partner = static_cast<Rank>(r ^ mask);
    const int mid = (lo + hi) / 2;  // blocks [lo, mid] and [mid+1, hi]
    int keep_lo, keep_hi, give_lo, give_hi;
    if ((r & mask) == 0) {  // I sit in the lower half: keep it
      keep_lo = lo;
      keep_hi = mid;
      give_lo = mid + 1;
      give_hi = hi;
    } else {
      keep_lo = mid + 1;
      keep_hi = hi;
      give_lo = lo;
      give_hi = mid;
    }
    const int send_n = range_elems(give_lo, give_hi);
    const int recv_n = range_elems(keep_lo, keep_hi);
    Request reqs[2];
    if (Err e = coll_irecv(tmp.data(), recv_n, dt_, partner, kTagRab, comm, &reqs[0]);
        !ok(e)) {
      return e;
    }
    if (Err e = coll_isend(range_ptr(give_lo), send_n, dt_, partner, kTagRab, comm,
                           &reqs[1]);
        !ok(e)) {
      return e;
    }
    if (Err e = waitall(reqs, {}); !ok(e)) return e;
    if (recv_n > 0) {
      if (Err e = coll::apply_op(op, dt_, range_ptr(keep_lo), tmp.data(),
                                 static_cast<std::size_t>(recv_n));
          !ok(e)) {
        return e;
      }
    }
    steps.push_back(StepLog{partner, keep_lo, keep_hi, give_lo, give_hi});
    lo = keep_lo;
    hi = keep_hi;
  }

  // --- Phase 2: recursive-doubling allgather (replay in reverse) -------------
  for (std::size_t i = steps.size(); i-- > 0;) {
    const StepLog& s = steps[i];
    // I now hold the fully reduced data for [kept_lo, kept_hi]; the partner
    // holds [gave_lo, gave_hi]. Swap so both hold the union.
    const int send_n = range_elems(s.kept_lo, s.kept_hi);
    const int recv_n = range_elems(s.gave_lo, s.gave_hi);
    Request reqs[2];
    if (Err e = coll_irecv(range_ptr(s.gave_lo), recv_n, dt_, s.partner, kTagRab, comm,
                           &reqs[0]);
        !ok(e)) {
      return e;
    }
    if (Err e = coll_isend(range_ptr(s.kept_lo), send_n, dt_, s.partner, kTagRab, comm,
                           &reqs[1]);
        !ok(e)) {
      return e;
    }
    if (Err e = waitall(reqs, {}); !ok(e)) return e;
  }
  return Err::Success;
}

}  // namespace lwmpi
