// Variable-count collectives (gatherv / allgatherv / scatterv) and
// reduce_scatter_block, layered on the same collective-plane pt2pt as the
// fixed-count algorithms.
#include <cstring>
#include <numeric>
#include <vector>

#include "coll/ops.hpp"
#include "core/engine.hpp"
#include "cost/meter.hpp"
#include "cost/model.hpp"
#include "obs/recorder.hpp"

namespace lwmpi {

namespace {
constexpr Tag kTagGatherv = 10;
constexpr Tag kTagScatterv = 11;
constexpr Tag kTagReduceScatter = 12;
}  // namespace

Err Engine::gatherv(const void* sbuf, int scount, Datatype sdt, void* rbuf,
                    std::span<const int> rcounts, std::span<const int> displs, Datatype rdt,
                    Rank root, Comm comm) {
  obs::ProfScope psc(prof_, obs::Callsite::Gatherv, prof_vci(comm),
                     prof_bytes(scount, sdt));
  // The per-rank count vectors are not captured, so replay skip-counts the
  // v-collectives; the record still documents the call in the timeline.
  obs::RecScope rsc(rec_, obs::Callsite::Gatherv, root, rec_esize(sdt), rec_vci(comm),
                    rec_bytes(scount, sdt));
  CommObject* c = comm_obj(comm);
  if (c == nullptr) return Err::Comm;
  const int p = c->map.size();
  if (cfg_.error_checking) {
    cost::charge(cost::Category::ErrCheck, cost::kErrRootRange);
    if (root < 0 || root >= p) return Err::Root;
    if (c->rank == root &&
        (rcounts.size() < static_cast<std::size_t>(p) ||
         displs.size() < static_cast<std::size_t>(p))) {
      return Err::Arg;
    }
  }
  if (c->rank != root) return coll_send(sbuf, scount, sdt, root, kTagGatherv, comm);

  const dt::TypeInfo* rinfo = types_.info(rdt);
  if (rinfo == nullptr) return Err::Datatype;
  auto* out = static_cast<std::byte*>(rbuf);
  for (int i = 0; i < p; ++i) {
    std::byte* slot = out + static_cast<std::int64_t>(displs[static_cast<std::size_t>(i)]) *
                                rinfo->extent;
    const int n = rcounts[static_cast<std::size_t>(i)];
    if (i == root) {
      const std::size_t bytes = dt::packed_size(types_, scount, sdt);
      std::vector<std::byte> tmp(bytes);
      dt::pack(types_, sbuf, scount, sdt, tmp.data());
      dt::unpack(types_, tmp.data(), bytes, slot, n, rdt);
    } else {
      if (Err e = coll_recv(slot, n, rdt, static_cast<Rank>(i), kTagGatherv, comm, nullptr);
          !ok(e)) {
        return e;
      }
    }
  }
  return Err::Success;
}

Err Engine::allgatherv(const void* sbuf, int scount, Datatype sdt, void* rbuf,
                       std::span<const int> rcounts, std::span<const int> displs,
                       Datatype rdt, Comm comm) {
  obs::ProfScope psc(prof_, obs::Callsite::Allgatherv, prof_vci(comm),
                     prof_bytes(scount, sdt));
  obs::RecScope rsc(rec_, obs::Callsite::Allgatherv, 0, rec_esize(sdt), rec_vci(comm),
                    rec_bytes(scount, sdt));
  CommObject* c = comm_obj(comm);
  if (c == nullptr) return Err::Comm;
  const int p = c->map.size();
  if (rcounts.size() < static_cast<std::size_t>(p) ||
      displs.size() < static_cast<std::size_t>(p)) {
    return Err::Arg;
  }
  // gatherv to rank 0, then bcast each block (simple and robust; the ring
  // variant is an optimization the tests don't depend on).
  if (Err e = gatherv(sbuf, scount, sdt, rbuf, rcounts, displs, rdt, 0, comm); !ok(e)) {
    return e;
  }
  const dt::TypeInfo* rinfo = types_.info(rdt);
  if (rinfo == nullptr) return Err::Datatype;
  auto* out = static_cast<std::byte*>(rbuf);
  for (int i = 0; i < p; ++i) {
    std::byte* slot = out + static_cast<std::int64_t>(displs[static_cast<std::size_t>(i)]) *
                                rinfo->extent;
    if (Err e = bcast(slot, rcounts[static_cast<std::size_t>(i)], rdt, 0, comm); !ok(e)) {
      return e;
    }
  }
  return Err::Success;
}

Err Engine::scatterv(const void* sbuf, std::span<const int> scounts,
                     std::span<const int> displs, Datatype sdt, void* rbuf, int rcount,
                     Datatype rdt, Rank root, Comm comm) {
  obs::ProfScope psc(prof_, obs::Callsite::Scatterv, prof_vci(comm),
                     prof_bytes(rcount, rdt));
  obs::RecScope rsc(rec_, obs::Callsite::Scatterv, root, rec_esize(rdt), rec_vci(comm),
                    rec_bytes(rcount, rdt));
  CommObject* c = comm_obj(comm);
  if (c == nullptr) return Err::Comm;
  const int p = c->map.size();
  if (cfg_.error_checking) {
    cost::charge(cost::Category::ErrCheck, cost::kErrRootRange);
    if (root < 0 || root >= p) return Err::Root;
    if (c->rank == root &&
        (scounts.size() < static_cast<std::size_t>(p) ||
         displs.size() < static_cast<std::size_t>(p))) {
      return Err::Arg;
    }
  }
  if (c->rank != root) return coll_recv(rbuf, rcount, rdt, root, kTagScatterv, comm, nullptr);

  const dt::TypeInfo* sinfo = types_.info(sdt);
  if (sinfo == nullptr) return Err::Datatype;
  const auto* in = static_cast<const std::byte*>(sbuf);
  for (int i = 0; i < p; ++i) {
    const std::byte* block =
        in + static_cast<std::int64_t>(displs[static_cast<std::size_t>(i)]) * sinfo->extent;
    const int n = scounts[static_cast<std::size_t>(i)];
    if (i == root) {
      const std::size_t bytes = dt::packed_size(types_, n, sdt);
      std::vector<std::byte> tmp(bytes);
      dt::pack(types_, block, n, sdt, tmp.data());
      dt::unpack(types_, tmp.data(), bytes, rbuf, rcount, rdt);
    } else {
      if (Err e = coll_send(block, n, sdt, static_cast<Rank>(i), kTagScatterv, comm);
          !ok(e)) {
        return e;
      }
    }
  }
  return Err::Success;
}

Err Engine::reduce_scatter_block(const void* sbuf, void* rbuf, int count, Datatype dt_,
                                 ReduceOp op, Comm comm) {
  obs::ProfScope psc(prof_, obs::Callsite::ReduceScatterBlock, prof_vci(comm),
                     prof_bytes(count, dt_));
  obs::RecScope rsc(rec_, obs::Callsite::ReduceScatterBlock, 0, rec_esize(dt_),
                    rec_vci(comm), rec_bytes(count, dt_));
  CommObject* c = comm_obj(comm);
  if (c == nullptr) return Err::Comm;
  if (!is_builtin(dt_)) return Err::Datatype;
  if (cfg_.error_checking) {
    cost::charge(cost::Category::ErrCheck, cost::kErrOpValid);
    if (!coll::op_defined(op, dt_)) return Err::Op;
    if (Err e = check_count(count); !ok(e)) return e;
  }
  const int p = c->map.size();
  const int r = c->rank;
  const std::size_t block_bytes = static_cast<std::size_t>(count) * builtin_size(dt_);

  // Reduce the whole vector to rank 0, then scatter the blocks. Sufficient
  // for correctness; the butterfly variant is future work (DESIGN.md).
  std::vector<std::byte> full(r == 0 ? block_bytes * static_cast<std::size_t>(p) : 0);
  if (Err e = reduce(sbuf, full.data(), count * p, dt_, op, 0, comm); !ok(e)) return e;
  Err e = Err::Success;
  if (r == 0) {
    if (block_bytes != 0) std::memcpy(rbuf, full.data(), block_bytes);
    for (int i = 1; i < p; ++i) {
      e = coll_send(full.data() + static_cast<std::size_t>(i) * block_bytes, count, dt_,
                    static_cast<Rank>(i), kTagReduceScatter, comm);
      if (!ok(e)) return e;
    }
    return Err::Success;
  }
  return coll_recv(rbuf, count, dt_, 0, kTagReduceScatter, comm, nullptr);
}

}  // namespace lwmpi
