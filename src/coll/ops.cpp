#include "coll/ops.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>

namespace lwmpi::coll {
namespace {

template <typename T>
void apply_arith(ReduceOp op, T* inout, const T* in, std::size_t n) {
  switch (op) {
    case ReduceOp::Sum:
      for (std::size_t i = 0; i < n; ++i) inout[i] = static_cast<T>(inout[i] + in[i]);
      break;
    case ReduceOp::Prod:
      for (std::size_t i = 0; i < n; ++i) inout[i] = static_cast<T>(inout[i] * in[i]);
      break;
    case ReduceOp::Max:
      for (std::size_t i = 0; i < n; ++i) inout[i] = std::max(inout[i], in[i]);
      break;
    case ReduceOp::Min:
      for (std::size_t i = 0; i < n; ++i) inout[i] = std::min(inout[i], in[i]);
      break;
    case ReduceOp::LAnd:
      for (std::size_t i = 0; i < n; ++i) inout[i] = static_cast<T>(inout[i] && in[i]);
      break;
    case ReduceOp::LOr:
      for (std::size_t i = 0; i < n; ++i) inout[i] = static_cast<T>(inout[i] || in[i]);
      break;
    case ReduceOp::Replace:
      for (std::size_t i = 0; i < n; ++i) inout[i] = in[i];
      break;
    case ReduceOp::NoOp:
      break;
    default:
      break;  // bitwise handled separately
  }
}

template <typename T>
void apply_bitwise(ReduceOp op, T* inout, const T* in, std::size_t n) {
  switch (op) {
    case ReduceOp::BAnd:
      for (std::size_t i = 0; i < n; ++i) inout[i] &= in[i];
      break;
    case ReduceOp::BOr:
      for (std::size_t i = 0; i < n; ++i) inout[i] |= in[i];
      break;
    case ReduceOp::BXor:
      for (std::size_t i = 0; i < n; ++i) inout[i] ^= in[i];
      break;
    default:
      break;
  }
}

bool is_bitwise(ReduceOp op) {
  return op == ReduceOp::BAnd || op == ReduceOp::BOr || op == ReduceOp::BXor;
}

template <typename T>
Err apply_typed(ReduceOp op, void* inout, const void* in, std::size_t n) {
  auto* a = static_cast<T*>(inout);
  const auto* b = static_cast<const T*>(in);
  if (is_bitwise(op)) {
    if constexpr (std::is_integral_v<T>) {
      apply_bitwise(op, a, b, n);
      return Err::Success;
    } else {
      return Err::Op;
    }
  }
  apply_arith(op, a, b, n);
  return Err::Success;
}

}  // namespace

Err apply_op(ReduceOp op, Datatype dt, void* inout, const void* in, std::size_t count) {
  if (!is_builtin(dt)) return Err::Datatype;
  switch (builtin_id(dt)) {
    case builtin_id(kChar): return apply_typed<char>(op, inout, in, count);
    case builtin_id(kSignedChar): return apply_typed<signed char>(op, inout, in, count);
    case builtin_id(kUnsignedChar): return apply_typed<unsigned char>(op, inout, in, count);
    case builtin_id(kByte): return apply_typed<unsigned char>(op, inout, in, count);
    case builtin_id(kShort): return apply_typed<short>(op, inout, in, count);
    case builtin_id(kUnsignedShort): return apply_typed<unsigned short>(op, inout, in, count);
    case builtin_id(kInt): return apply_typed<int>(op, inout, in, count);
    case builtin_id(kUnsigned): return apply_typed<unsigned>(op, inout, in, count);
    case builtin_id(kLong): return apply_typed<long>(op, inout, in, count);
    case builtin_id(kUnsignedLong): return apply_typed<unsigned long>(op, inout, in, count);
    case builtin_id(kLongLong): return apply_typed<long long>(op, inout, in, count);
    case builtin_id(kUnsignedLongLong):
      return apply_typed<unsigned long long>(op, inout, in, count);
    case builtin_id(kFloat): return apply_typed<float>(op, inout, in, count);
    case builtin_id(kDouble): return apply_typed<double>(op, inout, in, count);
    case builtin_id(kInt8): return apply_typed<std::int8_t>(op, inout, in, count);
    case builtin_id(kInt16): return apply_typed<std::int16_t>(op, inout, in, count);
    case builtin_id(kInt32): return apply_typed<std::int32_t>(op, inout, in, count);
    case builtin_id(kInt64): return apply_typed<std::int64_t>(op, inout, in, count);
    case builtin_id(kUint8): return apply_typed<std::uint8_t>(op, inout, in, count);
    case builtin_id(kUint16): return apply_typed<std::uint16_t>(op, inout, in, count);
    case builtin_id(kUint32): return apply_typed<std::uint32_t>(op, inout, in, count);
    case builtin_id(kUint64): return apply_typed<std::uint64_t>(op, inout, in, count);
    default: return Err::Datatype;
  }
}

bool op_defined(ReduceOp op, Datatype dt) {
  if (!is_builtin(dt)) return false;
  if (is_bitwise(op)) {
    return builtin_id(dt) != builtin_id(kFloat) && builtin_id(dt) != builtin_id(kDouble);
  }
  return static_cast<std::uint32_t>(op) < kNumReduceOps;
}

}  // namespace lwmpi::coll
