// 2-D 5-point Jacobi stencil with halo exchange.
//
// The canonical neighborhood-communication workload the paper uses to
// motivate MPI_PROC_NULL (Section 3.4) and the _GLOBAL/_NPN extensions:
// boundary ranks have missing neighbors, expressed either as MPI_PROC_NULL
// sends (baseline) or by the application branching itself and calling the
// _NPN variants (proposal).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace lwmpi {
class Engine;
}

namespace lwmpi::apps {

enum class StencilMode {
  ProcNull,   // send to all 4 neighbors, missing ones are MPI_PROC_NULL
  NpnBranch,  // application branches and uses isend_npn for real neighbors
};

struct StencilConfig {
  int nx = 64;          // global grid width
  int ny = 64;          // global grid height
  int px = 1;           // process grid width  (px * py == comm size)
  int py = 1;           // process grid height
  int iters = 10;
  StencilMode mode = StencilMode::ProcNull;
};

struct StencilResult {
  double residual = 0.0;        // global L2 residual after `iters`
  std::uint64_t halo_sends = 0; // messages this rank issued
  double seconds = 0.0;
  bool converged_layout = true; // config was consistent with comm size
};

// Collective over `comm`: runs `cfg.iters` Jacobi sweeps of
// u <- (north + south + east + west) / 4 with Dirichlet boundary u = 1 on the
// domain edge and initial interior guess 0, returning the global residual.
StencilResult run_stencil(Engine& eng, Comm comm, const StencilConfig& cfg);

}  // namespace lwmpi::apps
