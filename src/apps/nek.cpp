#include "apps/nek.hpp"

#include <chrono>
#include <cmath>
#include <vector>

#include "core/engine.hpp"

namespace lwmpi::apps {
namespace {
constexpr Tag kTagFaceLeft = 201;   // data travelling toward rank-1
constexpr Tag kTagFaceRight = 202;  // data travelling toward rank+1

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

NekResult run_nek_cg(Engine& eng, Comm comm, const NekConfig& cfg) {
  NekResult res;
  const int p = eng.size(comm);
  const int r = eng.rank(comm);
  if (cfg.order < 1 || cfg.elems_total <= 0 || cfg.elems_total % p != 0) return res;

  const int n1 = cfg.order + 1;               // points per direction
  const int face = n1 * n1;                   // points per z-face
  const int m = face * n1;                    // points per element
  const auto e_local = static_cast<std::size_t>(cfg.elems_total / p);
  const std::size_t n_local = e_local * static_cast<std::size_t>(m);

  const Rank left = r > 0 ? static_cast<Rank>(r - 1) : kProcNull;
  const Rank right = r + 1 < p ? static_cast<Rank>(r + 1) : kProcNull;

  // Lumped 1-D quadrature weights (trapezoid-like: positive, endpoint-halved);
  // the SE mass matrix with GLL quadrature is likewise a positive diagonal per
  // element, so the operator structure and communication are identical.
  std::vector<double> w1(static_cast<std::size_t>(n1), 1.0);
  w1.front() = 0.5;
  w1.back() = 0.5;
  std::vector<double> bl(n_local);  // local (elementwise) mass diagonal
  for (std::size_t e = 0; e < e_local; ++e) {
    std::size_t idx = e * static_cast<std::size_t>(m);
    for (int iz = 0; iz < n1; ++iz) {
      for (int iy = 0; iy < n1; ++iy) {
        for (int ix = 0; ix < n1; ++ix, ++idx) {
          bl[idx] = w1[static_cast<std::size_t>(iz)] * w1[static_cast<std::size_t>(iy)] *
                    w1[static_cast<std::size_t>(ix)];
        }
      }
    }
  }

  std::vector<double> face_left(static_cast<std::size_t>(face));
  std::vector<double> face_right(static_cast<std::size_t>(face));

  // dssum: make element-interface points consistent by summing contributions.
  // Elements form a 1-D chain in z; each element's z=0 face is the previous
  // element's z=N face. Faces are contiguous (z-major layout).
  auto dssum = [&](std::vector<double>& v) {
    // Intra-rank interfaces.
    for (std::size_t e = 0; e + 1 < e_local; ++e) {
      double* hi = v.data() + (e + 1) * static_cast<std::size_t>(m) - face;  // elem e, z=N
      double* lo = v.data() + (e + 1) * static_cast<std::size_t>(m);         // elem e+1, z=0
      for (int i = 0; i < face; ++i) {
        const double s = hi[i] + lo[i];
        hi[i] = s;
        lo[i] = s;
      }
    }
    // Inter-rank interfaces: my first z=0 face pairs with the left rank's
    // last z=N face and vice versa.
    if (p == 1) return;
    Request reqs[4];
    int nr = 0;
    eng.irecv(face_left.data(), face, kDouble, left, kTagFaceRight, comm, &reqs[nr++]);
    eng.irecv(face_right.data(), face, kDouble, right, kTagFaceLeft, comm, &reqs[nr++]);
    eng.isend(v.data(), face, kDouble, left, kTagFaceLeft, comm, &reqs[nr++]);
    eng.isend(v.data() + n_local - face, face, kDouble, right, kTagFaceRight, comm, &reqs[nr++]);
    eng.waitall(std::span<Request>(reqs, static_cast<std::size_t>(nr)), {});
    if (left != kProcNull) {
      for (int i = 0; i < face; ++i) v[static_cast<std::size_t>(i)] += face_left[i];
    }
    if (right != kProcNull) {
      double* hi = v.data() + n_local - face;
      for (int i = 0; i < face; ++i) hi[i] += face_right[i];
    }
  };

  // Inverse multiplicity for redundant-storage dot products.
  std::vector<double> invmult(n_local, 1.0);
  dssum(invmult);
  for (double& x : invmult) x = 1.0 / x;

  auto dot = [&](const std::vector<double>& a, const std::vector<double>& b) {
    double local = 0.0;
    for (std::size_t i = 0; i < n_local; ++i) local += a[i] * b[i] * invmult[i];
    double global = 0.0;
    eng.allreduce(&local, &global, 1, kDouble, ReduceOp::Sum, comm);
    return global;
  };

  // Operator: A v = dssum(B_local .* v).
  std::vector<double> av(n_local);
  auto apply = [&](const std::vector<double>& v, std::vector<double>& out) {
    for (std::size_t i = 0; i < n_local; ++i) out[i] = bl[i] * v[i];
    dssum(out);
  };

  // RHS chosen so the solution is u == 1.
  std::vector<double> ones(n_local, 1.0);
  std::vector<double> f(n_local);
  apply(ones, f);

  // CG with a fixed iteration count (the paper measures work rate, not
  // convergence): u=0, r=f, p=r.
  std::vector<double> u(n_local, 0.0);
  std::vector<double> rr(f);
  std::vector<double> pp(f);
  double rho = dot(rr, rr);

  const double t0 = now_sec();
  for (int it = 0; it < cfg.cg_iters; ++it) {
    apply(pp, av);
    const double pap = dot(pp, av);
    const double alpha = pap != 0.0 ? rho / pap : 0.0;
    for (std::size_t i = 0; i < n_local; ++i) {
      u[i] += alpha * pp[i];
      rr[i] -= alpha * av[i];
    }
    const double rho_new = dot(rr, rr);
    const double beta = rho != 0.0 ? rho_new / rho : 0.0;
    rho = rho_new;
    for (std::size_t i = 0; i < n_local; ++i) pp[i] = rr[i] + beta * pp[i];
  }
  const double dt = now_sec() - t0;

  res.valid = true;
  res.points_total = cfg.elems_total * static_cast<std::int64_t>(m) -
                     (cfg.elems_total - 1) * static_cast<std::int64_t>(face);
  res.points_per_rank = static_cast<double>(res.points_total) / p;
  res.seconds = dt;
  // Gridpoint-iterations realized per processor-second (paper's left panel).
  res.point_iters_per_sec =
      dt > 0.0 ? res.points_per_rank * cfg.cg_iters / dt : 0.0;
  res.residual = std::sqrt(rho);
  return res;
}

}  // namespace lwmpi::apps
