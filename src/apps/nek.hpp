// Nek5000 model problem (paper Section 4.3, Figure 7).
//
// Solves B u = f by conjugate-gradient iteration, where B is the spectral-
// element mass matrix of E elements of order N covering the unit cube.
// The SE mass matrix with GLL quadrature is matrix-free: apply the local
// diagonal quadrature weights per element, then "direct-stiffness-sum" (dssum)
// the shared interface points. Per CG iteration the communication is exactly
// the paper's: one nearest-neighbour face exchange (dssum) plus two scalar
// allreduces (the dot products) -- short, latency-dominated messages at the
// strong-scaling limit.
//
// Elements are arranged in a 1-D chain partitioned contiguously across ranks,
// so each rank exchanges one (N+1)^2 face with each chain neighbour.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace lwmpi {
class Engine;
}

namespace lwmpi::apps {

struct NekConfig {
  int order = 5;               // polynomial order N; (N+1)^3 points/element
  std::int64_t elems_total = 64;  // E, must be divisible by comm size
  int cg_iters = 30;           // fixed iteration count (work metric)
};

struct NekResult {
  bool valid = false;
  std::int64_t points_total = 0;   // n ~= E * N^3 unique gridpoints
  double points_per_rank = 0.0;    // n / P, the paper's x-axis
  double seconds = 0.0;
  double point_iters_per_sec = 0.0;  // the paper's y-axis (per rank-second)
  double residual = 0.0;             // ||B u - f|| after cg_iters
};

// Collective over `comm`.
NekResult run_nek_cg(Engine& eng, Comm comm, const NekConfig& cfg);

}  // namespace lwmpi::apps
