// Trace-driven workload replay (the read side of obs/recorder.hpp).
//
// A recorded `.lwtrace` bundle is re-executed as a first-class workload: each
// live rank walks its recorded op stream and re-issues every operation
// through the normal public Engine API, optionally reproducing the recorded
// inter-op compute gaps by calibrated spinning. Fidelity is validated by
// diffing the replayed pvar totals against the totals the recorder froze
// into the trace header.
//
// Replay semantics and limits:
//  - Ops are mapped onto kCommWorld. Communicator construction is not
//    recorded, so comm-split workloads replay with world-rank peers and the
//    recorded tags; matching stays correct as long as tags disambiguate.
//  - Blocking calls are decomposed into their nonblocking forms plus a
//    deadline-bounded completion loop, so a truncated trace (ring overwrote
//    the start of the run, or the watchdog flushed mid-hang) degrades into
//    skip/timeout counts instead of a wedged replay.
//  - Collectives rebuild (count, datatype) from the recorded byte volume and
//    the builtin element size stashed in the tag field. On an incomplete
//    bundle collectives are skipped outright: a collective whose record fell
//    off any one ring would deadlock every other rank.
//  - RMA, the v-collectives, and isend_all_opts are skip-counted: their
//    argument vectors / window geometry are not in the trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/config.hpp"
#include "obs/recorder.hpp"

namespace lwmpi::apps {

// One rank's slice of a bundle, exactly as read from disk.
struct TraceRank {
  obs::LwtraceHeader header;
  std::vector<obs::DiskRec> records;
  // File ended before `header.nrecords` full records (killed writer, partial
  // copy). The complete prefix is kept.
  bool truncated = false;
  // Absolute op index of records[0] in the recording rank's stream. Nonzero
  // when the ring wrapped; link distances are absolute-index deltas.
  std::uint64_t base_index() const noexcept {
    return header.total_ops - header.nrecords;
  }
};

struct TraceBundle {
  int nranks = 0;
  int nvcis = 1;
  std::uint64_t eager_threshold = 0;
  std::uint32_t sample_shift = 0;
  std::vector<TraceRank> ranks;
  // Provenance from the `<prefix>.json` sidecar (empty when absent).
  std::string netmod;
  std::string device;

  // Every rank captured its whole run (no ring wrap, no truncation) -- the
  // precondition for the exact fidelity diff and for replaying collectives.
  bool complete() const noexcept;
};

// Load `<prefix>.rank<r>.lwtrace` for every rank named by rank 0's header,
// plus the sidecar when present. Returns false (with a message in *err) only
// when no usable trace exists; per-rank truncation is tolerated and flagged.
bool load_trace(const std::string& prefix, TraceBundle* out, std::string* err);

struct ReplayOptions {
  // Multiplier on recorded inter-op compute gaps. 0 disables pacing (max
  // throughput); 1.0 re-creates the recorded rhythm; 0.1 runs it 10x faster.
  double timescale = 0.0;
  std::string netmod;  // empty = sidecar's netmod, falling back to "mailbox"
  DeviceKind device = DeviceKind::Ch4;
  // Bounded-completion deadline per op. A replay of a complete trace never
  // hits it; a truncated trace abandons the op and keeps going.
  std::uint64_t stall_timeout_ns = 10'000'000'000ull;
  // Pvar names to read from the replay world before teardown (obs/pvar.hpp).
  // Names ending in _count are summed across ranks; percentile/max names
  // report the worst rank. Unknown names read as 0.
  std::vector<std::string> capture_pvars;
};

struct ReplayResult {
  bool ok = false;                // replay executed (trace loaded, world ran)
  bool fidelity_checked = false;  // bundle was complete -> totals were diffed
  bool fidelity_ok = false;       // engine-level totals matched exactly
  bool fabric_checked = false;    // same netmod -> fabric totals also diffed
  bool fabric_ok = false;
  std::uint64_t replayed = 0;  // ops re-issued
  std::uint64_t skipped = 0;   // unsupported or unsafe-on-incomplete ops
  std::uint64_t timeouts = 0;  // bounded completions abandoned
  std::uint64_t wall_ns = 0;
  std::string netmod;  // netmod the replay actually ran on
  std::vector<std::string> diffs;          // human-readable mismatches
  std::vector<obs::RecTotals> recorded;    // per rank, from trace headers
  std::vector<obs::RecTotals> measured;    // per rank, from the replay world
  // Aggregated readings for ReplayOptions::capture_pvars, in request order.
  std::vector<std::pair<std::string, std::uint64_t>> pvars;
};

ReplayResult run_replay(const TraceBundle& bundle, const ReplayOptions& opts = {});

}  // namespace lwmpi::apps
