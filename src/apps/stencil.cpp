#include "apps/stencil.hpp"

#include <chrono>
#include <cmath>
#include <vector>

#include "core/engine.hpp"

namespace lwmpi::apps {
namespace {
constexpr Tag kTagNorth = 101;
constexpr Tag kTagSouth = 102;
constexpr Tag kTagEast = 103;
constexpr Tag kTagWest = 104;

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

StencilResult run_stencil(Engine& eng, Comm comm, const StencilConfig& cfg) {
  StencilResult res;
  const int p = eng.size(comm);
  const int r = eng.rank(comm);
  if (cfg.px * cfg.py != p || cfg.nx % cfg.px != 0 || cfg.ny % cfg.py != 0) {
    res.converged_layout = false;
    return res;
  }
  const int cx = r % cfg.px;  // my cell in the process grid
  const int cy = r / cfg.px;
  const int lnx = cfg.nx / cfg.px;  // local interior size
  const int lny = cfg.ny / cfg.py;

  // Neighbor ranks; missing neighbors are PROC_NULL.
  const Rank north = cy + 1 < cfg.py ? static_cast<Rank>(r + cfg.px) : kProcNull;
  const Rank south = cy > 0 ? static_cast<Rank>(r - cfg.px) : kProcNull;
  const Rank east = cx + 1 < cfg.px ? static_cast<Rank>(r + 1) : kProcNull;
  const Rank west = cx > 0 ? static_cast<Rank>(r - 1) : kProcNull;

  // Local array with one ghost layer: (lnx + 2) x (lny + 2), row-major.
  const int w = lnx + 2;
  const int h = lny + 2;
  auto at = [w](int x, int y) { return static_cast<std::size_t>(y) * w + x; };
  std::vector<double> u(static_cast<std::size_t>(w) * h, 0.0);
  std::vector<double> un(u);

  // Dirichlet boundary: the domain edge is held at 1. Ghost cells that fall
  // outside the global domain carry the boundary value.
  auto apply_bc = [&](std::vector<double>& a) {
    if (south == kProcNull) {
      for (int x = 0; x < w; ++x) a[at(x, 0)] = 1.0;
    }
    if (north == kProcNull) {
      for (int x = 0; x < w; ++x) a[at(x, h - 1)] = 1.0;
    }
    if (west == kProcNull) {
      for (int y = 0; y < h; ++y) a[at(0, y)] = 1.0;
    }
    if (east == kProcNull) {
      for (int y = 0; y < h; ++y) a[at(w - 1, y)] = 1.0;
    }
  };
  apply_bc(u);
  apply_bc(un);

  // Column exchange uses a strided (vector) datatype: lny doubles strided by
  // the row length.
  Datatype col_type = kDatatypeNull;
  eng.type_vector(lny, 1, w, kDouble, &col_type);
  eng.type_commit(&col_type);

  std::vector<double> east_col(static_cast<std::size_t>(lny));
  std::vector<double> west_col(static_cast<std::size_t>(lny));

  // One halo exchange: post ghost receives, send interior edges, wait.
  auto exchange_halos = [&]() {
    Request reqs[8];
    int nr = 0;

    // Post receives into ghost rows/columns.
    eng.irecv(&u[at(1, h - 1)], lnx, kDouble, north, kTagSouth, comm, &reqs[nr++]);
    eng.irecv(&u[at(1, 0)], lnx, kDouble, south, kTagNorth, comm, &reqs[nr++]);
    eng.irecv(&u[at(w - 1, 1)], 1, col_type, east, kTagWest, comm, &reqs[nr++]);
    eng.irecv(&u[at(0, 1)], 1, col_type, west, kTagEast, comm, &reqs[nr++]);

    // Send interior edges.
    if (cfg.mode == StencilMode::ProcNull) {
      eng.isend(&u[at(1, h - 2)], lnx, kDouble, north, kTagNorth, comm, &reqs[nr++]);
      eng.isend(&u[at(1, 1)], lnx, kDouble, south, kTagSouth, comm, &reqs[nr++]);
      eng.isend(&u[at(w - 2, 1)], 1, col_type, east, kTagEast, comm, &reqs[nr++]);
      eng.isend(&u[at(1, 1)], 1, col_type, west, kTagWest, comm, &reqs[nr++]);
      res.halo_sends += 4;
    } else {
      // The application knows its topology: branch itself, use _NPN.
      if (north != kProcNull) {
        eng.isend_npn(&u[at(1, h - 2)], lnx, kDouble, north, kTagNorth, comm, &reqs[nr++]);
        ++res.halo_sends;
      }
      if (south != kProcNull) {
        eng.isend_npn(&u[at(1, 1)], lnx, kDouble, south, kTagSouth, comm, &reqs[nr++]);
        ++res.halo_sends;
      }
      if (east != kProcNull) {
        eng.isend_npn(&u[at(w - 2, 1)], 1, col_type, east, kTagEast, comm, &reqs[nr++]);
        ++res.halo_sends;
      }
      if (west != kProcNull) {
        eng.isend_npn(&u[at(1, 1)], 1, col_type, west, kTagWest, comm, &reqs[nr++]);
        ++res.halo_sends;
      }
    }
    eng.waitall(std::span<Request>(reqs, static_cast<std::size_t>(nr)), {});
  };

  const double t0 = now_sec();
  for (int it = 0; it < cfg.iters; ++it) {
    exchange_halos();

    // Jacobi sweep over the interior.
    for (int y = 1; y <= lny; ++y) {
      for (int x = 1; x <= lnx; ++x) {
        un[at(x, y)] =
            0.25 * (u[at(x, y - 1)] + u[at(x, y + 1)] + u[at(x - 1, y)] + u[at(x + 1, y)]);
      }
    }
    std::swap(u, un);
    apply_bc(u);
  }
  res.seconds = now_sec() - t0;

  // Refresh the ghosts one last time so the residual below uses current
  // neighbour data (otherwise the parallel residual lags the serial one by
  // one exchange).
  exchange_halos();

  // Global residual ||u_new - u_old||_2 of one more sweep (steady-state gap).
  double local = 0.0;
  for (int y = 1; y <= lny; ++y) {
    for (int x = 1; x <= lnx; ++x) {
      const double v =
          0.25 * (u[at(x, y - 1)] + u[at(x, y + 1)] + u[at(x - 1, y)] + u[at(x + 1, y)]) -
          u[at(x, y)];
      local += v * v;
    }
  }
  double global = 0.0;
  eng.allreduce(&local, &global, 1, kDouble, ReduceOp::Sum, comm);
  res.residual = std::sqrt(global);

  eng.type_free(&col_type);
  return res;
}

}  // namespace lwmpi::apps
