// LAMMPS-style molecular-dynamics mini-app (paper Section 4.4, Figure 8).
//
// 3-D spatial decomposition of a Lennard-Jones FCC crystal: each rank owns a
// box of atoms, exchanges ghost atoms (positions within the cutoff of a face)
// with its 6 nearest neighbours every step, computes short-range LJ forces
// with cell lists, and integrates with velocity Verlet. As in the paper's
// strong-scaling study, shrinking atoms-per-rank shrinks the messages and
// exposes MPI latency.
//
// Simplification (documented in DESIGN.md): atoms do not migrate between
// ranks -- displacements stay small over the benchmark's step counts because
// the crystal starts near equilibrium with small thermal velocities.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace lwmpi {
class Engine;
}

namespace lwmpi::apps {

struct MdConfig {
  // Process grid; px * py * pz must equal the comm size.
  int px = 1, py = 1, pz = 1;
  // FCC unit cells per rank per dimension (4 atoms per cell).
  int cells_x = 3, cells_y = 3, cells_z = 3;
  double lattice = 1.5871;  // reduced FCC lattice constant (rho* ~ 1.0)
  double cutoff = 2.5;      // LJ cutoff (sigma units)
  double dt = 0.002;        // timestep
  double temperature = 0.1; // initial thermal velocity scale
  int steps = 20;
};

struct MdResult {
  bool valid = false;
  std::int64_t atoms_total = 0;
  std::int64_t atoms_per_rank = 0;
  double seconds = 0.0;
  double steps_per_sec = 0.0;
  double kinetic_energy = 0.0;    // global, final
  double potential_energy = 0.0;  // global, final
  std::uint64_t ghost_atoms_exchanged = 0;  // this rank, total over run
};

MdResult run_md(Engine& eng, Comm comm, const MdConfig& cfg);

}  // namespace lwmpi::apps
