#include "apps/replay.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "core/engine.hpp"
#include "core/vci.hpp"
#include "obs/pvar.hpp"
#include "runtime/backoff.hpp"
#include "runtime/world.hpp"

namespace lwmpi::apps {

namespace {

// Minimal value extraction from the flat provenance sidecar; the sidecar is
// machine-written with no nesting or escapes, so a key scan suffices (the
// real JSON tooling lives in tools/, not in the library).
std::string sidecar_string(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t begin = at + needle.size();
  const std::size_t end = text.find('"', begin);
  if (end == std::string::npos) return {};
  return text.substr(begin, end - begin);
}

bool read_rank_file(const std::string& path, TraceRank* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  in.read(reinterpret_cast<char*>(&out->header), sizeof(out->header));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(out->header))) return false;
  if (out->header.magic != obs::kLwtraceMagic ||
      out->header.version != obs::kLwtraceVersion) {
    return false;
  }
  out->records.resize(out->header.nrecords);
  std::size_t got = 0;
  if (out->header.nrecords != 0) {
    in.read(reinterpret_cast<char*>(out->records.data()),
            static_cast<std::streamsize>(out->records.size() * sizeof(obs::DiskRec)));
    got = static_cast<std::size_t>(in.gcount()) / sizeof(obs::DiskRec);
  }
  if (got < out->header.nrecords) {
    // Tolerate a short file: keep the complete-record prefix, flag it.
    out->records.resize(got);
    out->header.nrecords = got;
    out->truncated = true;
  }
  return true;
}

// Builtin datatype whose size matches the recorded element width (collective
// records stash it in the tag field; 0 = derived type, fall back to bytes).
Datatype dt_for_esize(std::int32_t esize) {
  switch (esize) {
    case 2: return kShort;
    case 4: return kInt;
    case 8: return kDouble;
    default: return kChar;
  }
}

std::uint64_t field(const obs::RecTotals& t, int i) {
  switch (i) {
    case 0: return t.sends_eager;
    case 1: return t.sends_rdv;
    case 2: return t.recvs_posted;
    case 3: return t.matches;
    case 4: return t.misses;
    case 5: return t.injected;
    default: return t.injected_bytes;
  }
}

// Per-rank replay state: outstanding requests keyed by the absolute op index
// of the call that issued them (what link distances resolve to), plus a
// buffer free-list so steady-state replay does not allocate.
struct RankState {
  struct Pending {
    Request req = kRequestNull;
    std::vector<std::byte> buf;
    bool persistent = false;
  };
  std::unordered_map<std::uint64_t, Pending> pending;
  std::vector<std::vector<std::byte>> pool;
  std::uint64_t replayed = 0;
  std::uint64_t skipped = 0;
  std::uint64_t timeouts = 0;

  std::vector<std::byte> acquire(std::size_t bytes) {
    if (!pool.empty()) {
      std::vector<std::byte> b = std::move(pool.back());
      pool.pop_back();
      if (b.capacity() >= bytes) {
        b.resize(bytes);
        return b;
      }
    }
    return std::vector<std::byte>(bytes);
  }
  void release(std::vector<std::byte>&& b) {
    if (pool.size() < 64) pool.push_back(std::move(b));
  }
};

// Deadline-bounded completion: test + (engine-internal) progress until the
// request finishes or the deadline passes. Returns false on timeout; the
// request is cancelled and abandoned so a truncated trace cannot wedge us.
bool bounded_wait(Engine& e, Request* req, std::uint64_t deadline, RankState& st) {
  rt::Backoff bo;
  while (*req != kRequestNull) {
    bool done = false;
    if (!ok(e.test(req, &done, nullptr))) return true;  // op error: reaped
    if (done) return true;
    if (rt::now_ns() > deadline) {
      ++st.timeouts;
      e.cancel(req);
      bool flag = false;
      e.test(req, &flag, nullptr);  // reap if the cancel landed instantly
      return false;
    }
    bo.pause();
  }
  return true;
}

void complete_pending(Engine& e, RankState& st, std::uint64_t issued_at,
                      std::uint64_t deadline) {
  auto it = st.pending.find(issued_at);
  if (it == st.pending.end()) return;  // issuer fell off the ring, or already done
  if (it->second.persistent) {
    bounded_wait(e, &it->second.req, deadline, st);  // completes the inner op
    return;  // handle stays live for the next start
  }
  bounded_wait(e, &it->second.req, deadline, st);
  st.release(std::move(it->second.buf));
  st.pending.erase(it);
}

// Consume the run of follower (aux) records of `kind` that immediately
// trails records[i]; returns the index of the last consumed record.
std::size_t follower_run(const std::vector<obs::DiskRec>& recs, std::size_t i,
                         std::uint8_t kind) {
  std::size_t j = i;
  while (j + 1 < recs.size() && recs[j + 1].kind == kind) ++j;
  return j;
}

void replay_rank(Engine& e, const TraceBundle& bundle, const TraceRank& tr,
                 const ReplayOptions& opts, bool coll_safe, RankState& st) {
  const std::uint64_t base = tr.base_index();
  const auto& recs = tr.records;

  for (std::size_t i = 0; i < recs.size(); ++i) {
    const obs::DiskRec& r = recs[i];
    const std::uint64_t abs = base + i;
    const auto deadline = rt::now_ns() + opts.stall_timeout_ns;
    // Re-create the recorded compute gap before issuing (sampled ops only;
    // unsampled records carry gap 0).
    if (opts.timescale > 0.0 && r.gap_ns != 0) {
      rt::spin_for_ns(static_cast<std::uint64_t>(r.gap_ns * opts.timescale));
    }

    const auto kind = static_cast<obs::Callsite>(r.kind);
    const std::uint64_t linked = r.link != 0 ? abs - r.link : ~0ull;
    using C = obs::Callsite;

    // Aux records are consumed by their header op below; a stray one (its
    // header was the last op before truncation ate the followers' issuers)
    // is harmless to skip.
    if (r.kind == obs::kRecKindSendrecvRecv || r.kind == obs::kRecKindWaitItem) {
      continue;
    }
    ++st.replayed;

    switch (kind) {
      case C::Isend:
      case C::IsendNpn: {
        RankState::Pending p;
        p.buf = st.acquire(r.bytes);
        Err err = kind == C::Isend
                      ? e.isend(p.buf.data(), static_cast<int>(r.bytes), kChar, r.peer,
                                r.tag, kCommWorld, &p.req)
                      : e.isend_npn(p.buf.data(), static_cast<int>(r.bytes), kChar,
                                    r.peer, r.tag, kCommWorld, &p.req);
        if (ok(err)) st.pending.emplace(abs, std::move(p));
        break;
      }
      case C::IsendGlobal: {
        RankState::Pending p;
        p.buf = st.acquire(r.bytes);
        if (ok(e.isend_global(p.buf.data(), static_cast<int>(r.bytes), kChar, r.peer,
                              r.tag, kCommWorld, &p.req))) {
          st.pending.emplace(abs, std::move(p));
        }
        break;
      }
      case C::IsendNomatch: {
        RankState::Pending p;
        p.buf = st.acquire(r.bytes);
        if (ok(e.isend_nomatch(p.buf.data(), static_cast<int>(r.bytes), kChar, r.peer,
                               kCommWorld, &p.req))) {
          st.pending.emplace(abs, std::move(p));
        }
        break;
      }
      case C::Irecv: {
        RankState::Pending p;
        p.buf = st.acquire(r.bytes);
        if (ok(e.irecv(p.buf.data(), static_cast<int>(r.bytes), kChar, r.peer, r.tag,
                       kCommWorld, &p.req))) {
          st.pending.emplace(abs, std::move(p));
        }
        break;
      }
      case C::IrecvNomatch: {
        RankState::Pending p;
        p.buf = st.acquire(r.bytes);
        if (ok(e.irecv_nomatch(p.buf.data(), static_cast<int>(r.bytes), kChar,
                               kCommWorld, &p.req))) {
          st.pending.emplace(abs, std::move(p));
        }
        break;
      }
      case C::IsendNoreq: {
        std::vector<std::byte> buf = st.acquire(r.bytes);
        e.isend_noreq(buf.data(), static_cast<int>(r.bytes), kChar, r.peer, r.tag,
                      kCommWorld);
        // The engine owns delivery; the payload is copied eagerly, so the
        // buffer can be recycled immediately.
        st.release(std::move(buf));
        break;
      }
      case C::Send: {
        // Blocking forms decompose into nonblocking + bounded completion.
        std::vector<std::byte> buf = st.acquire(r.bytes);
        Request req = kRequestNull;
        if (ok(e.isend(buf.data(), static_cast<int>(r.bytes), kChar, r.peer, r.tag,
                       kCommWorld, &req))) {
          bounded_wait(e, &req, deadline, st);
        }
        st.release(std::move(buf));
        break;
      }
      case C::Recv: {
        std::vector<std::byte> buf = st.acquire(r.bytes);
        Request req = kRequestNull;
        if (ok(e.irecv(buf.data(), static_cast<int>(r.bytes), kChar, r.peer, r.tag,
                       kCommWorld, &req))) {
          bounded_wait(e, &req, deadline, st);
        }
        st.release(std::move(buf));
        break;
      }
      case C::Sendrecv: {
        // The recv half rides as an aux record right behind the header.
        std::vector<std::byte> sbuf = st.acquire(r.bytes);
        Request sreq = kRequestNull;
        Request rreq = kRequestNull;
        std::vector<std::byte> rbuf;
        if (i + 1 < recs.size() && recs[i + 1].kind == obs::kRecKindSendrecvRecv) {
          const obs::DiskRec& rr = recs[i + 1];
          rbuf = st.acquire(rr.bytes);
          e.irecv(rbuf.data(), static_cast<int>(rr.bytes), kChar, rr.peer, rr.tag,
                  kCommWorld, &rreq);
          ++i;
        }
        if (ok(e.isend(sbuf.data(), static_cast<int>(r.bytes), kChar, r.peer, r.tag,
                       kCommWorld, &sreq))) {
          bounded_wait(e, &sreq, deadline, st);
        }
        if (rreq != kRequestNull) bounded_wait(e, &rreq, deadline, st);
        st.release(std::move(sbuf));
        if (!rbuf.empty() || rreq != kRequestNull) st.release(std::move(rbuf));
        break;
      }
      case C::Wait:
      case C::Test:
      case C::Waitany:
      case C::Testany:
        // All four recorded the request they completed; re-complete it.
        if (linked != ~0ull) complete_pending(e, st, linked, deadline);
        break;
      case C::Waitall:
      case C::Testall:
      case C::Startall: {
        const std::size_t last = follower_run(recs, i, obs::kRecKindWaitItem);
        for (std::size_t j = i + 1; j <= last; ++j) {
          const obs::DiskRec& item = recs[j];
          if (item.link == 0) continue;
          const std::uint64_t at = base + j - item.link;
          if (kind == C::Startall) {
            auto it = st.pending.find(at);
            if (it != st.pending.end()) e.start(&it->second.req);
          } else {
            complete_pending(e, st, at, deadline);
          }
        }
        i = last;
        break;
      }
      case C::Iprobe:
      case C::Probe: {
        // Recorded only on a hit, so loop until the message shows (bounded).
        rt::Backoff bo;
        bool hit = false;
        while (!hit && rt::now_ns() <= deadline) {
          if (!ok(e.iprobe(r.peer, r.tag, kCommWorld, &hit, nullptr))) break;
          if (!hit) bo.pause();
        }
        if (!hit) ++st.timeouts;
        break;
      }
      case C::Cancel:
        if (linked != ~0ull) {
          auto it = st.pending.find(linked);
          if (it != st.pending.end()) e.cancel(&it->second.req);
        }
        break;
      case C::CommWaitall:
        if (coll_safe) {
          e.comm_waitall(kCommWorld);
        } else {
          --st.replayed;
          ++st.skipped;
        }
        break;
      case C::SendInit:
      case C::RecvInit: {
        RankState::Pending p;
        p.persistent = true;
        p.buf = st.acquire(r.bytes);
        Err err = kind == C::SendInit
                      ? e.send_init(p.buf.data(), static_cast<int>(r.bytes), kChar,
                                    r.peer, r.tag, kCommWorld, &p.req)
                      : e.recv_init(p.buf.data(), static_cast<int>(r.bytes), kChar,
                                    r.peer, r.tag, kCommWorld, &p.req);
        if (ok(err)) st.pending.emplace(abs, std::move(p));
        break;
      }
      case C::Start:
        if (linked != ~0ull) {
          auto it = st.pending.find(linked);
          if (it != st.pending.end()) e.start(&it->second.req);
        }
        break;
      case C::Barrier:
      case C::Bcast:
      case C::Reduce:
      case C::Allreduce:
      case C::Gather:
      case C::Allgather:
      case C::Scatter:
      case C::Alltoall:
      case C::Scan:
      case C::ReduceScatterBlock: {
        if (!coll_safe) {
          --st.replayed;
          ++st.skipped;
          break;
        }
        const Datatype dt = r.tag > 0 ? dt_for_esize(r.tag) : kChar;
        const std::uint32_t esize =
            r.tag > 0 ? static_cast<std::uint32_t>(r.tag) : 1u;
        const int count = static_cast<int>(r.bytes / esize);
        const std::size_t per = static_cast<std::size_t>(r.bytes);
        const std::size_t all = per * static_cast<std::size_t>(bundle.nranks);
        std::vector<std::byte> a = st.acquire(kind == C::Scatter || kind == C::Alltoall
                                                  ? all
                                                  : (kind == C::ReduceScatterBlock
                                                         ? all  // reduce input is count*p
                                                         : per));
        std::vector<std::byte> b = st.acquire(
            kind == C::Gather || kind == C::Allgather || kind == C::Alltoall ? all : per);
        switch (kind) {
          case C::Barrier: e.barrier(kCommWorld); break;
          case C::Bcast: e.bcast(a.data(), count, dt, r.peer, kCommWorld); break;
          case C::Reduce:
            e.reduce(a.data(), b.data(), count, dt, ReduceOp::Sum, r.peer, kCommWorld);
            break;
          case C::Allreduce:
            e.allreduce(a.data(), b.data(), count, dt, ReduceOp::Sum, kCommWorld);
            break;
          case C::Scan:
            e.scan(a.data(), b.data(), count, dt, ReduceOp::Sum, kCommWorld);
            break;
          case C::Gather:
            e.gather(a.data(), count, dt, b.data(), count, dt, r.peer, kCommWorld);
            break;
          case C::Allgather:
            e.allgather(a.data(), count, dt, b.data(), count, dt, kCommWorld);
            break;
          case C::Scatter:
            e.scatter(a.data(), count, dt, b.data(), count, dt, r.peer, kCommWorld);
            break;
          case C::Alltoall:
            e.alltoall(a.data(), count, dt, b.data(), count, dt, kCommWorld);
            break;
          case C::ReduceScatterBlock:
            e.reduce_scatter_block(a.data(), b.data(), count, dt, ReduceOp::Sum,
                                   kCommWorld);
            break;
          default: break;
        }
        st.release(std::move(a));
        st.release(std::move(b));
        break;
      }
      default:
        // v-collectives, isend_all_opts, and all RMA: argument vectors or
        // window geometry are not in the trace.
        --st.replayed;
        ++st.skipped;
        break;
    }
  }

  // Drain: a complete trace paired every request with a completion record,
  // but truncated traces (and cancel-without-wait apps) can leave stragglers.
  const std::uint64_t drain_deadline = rt::now_ns() + opts.stall_timeout_ns;
  for (auto& [idx, p] : st.pending) {
    if (bounded_wait(e, &p.req, drain_deadline, st) && p.persistent) {
      e.request_free(&p.req);
    }
  }
  st.pending.clear();
}

}  // namespace

bool TraceBundle::complete() const noexcept {
  if (ranks.empty() || static_cast<int>(ranks.size()) != nranks) return false;
  for (const TraceRank& r : ranks) {
    if (r.truncated || r.header.total_ops != r.header.nrecords) return false;
  }
  return true;
}

bool load_trace(const std::string& prefix, TraceBundle* out, std::string* err) {
  *out = TraceBundle{};
  TraceRank first;
  if (!read_rank_file(prefix + ".rank0.lwtrace", &first)) {
    if (err != nullptr) *err = "cannot read " + prefix + ".rank0.lwtrace";
    return false;
  }
  out->nranks = static_cast<int>(first.header.nranks);
  out->nvcis = static_cast<int>(first.header.nvcis);
  out->eager_threshold = first.header.eager_threshold;
  out->sample_shift = first.header.sample_shift;
  out->ranks.push_back(std::move(first));
  for (int r = 1; r < out->nranks; ++r) {
    TraceRank tr;
    if (!read_rank_file(prefix + ".rank" + std::to_string(r) + ".lwtrace", &tr)) {
      // Missing rank file: treat as an empty, truncated slice so the replay
      // still runs the ranks it has records for.
      tr.header = out->ranks[0].header;
      tr.header.rank = static_cast<std::uint32_t>(r);
      tr.header.nrecords = 0;
      tr.header.total_ops = 0;
      tr.records.clear();
      tr.truncated = true;
    }
    out->ranks.push_back(std::move(tr));
  }
  std::ifstream side(prefix + ".json");
  if (side) {
    std::stringstream ss;
    ss << side.rdbuf();
    const std::string text = ss.str();
    out->netmod = sidecar_string(text, "netmod");
    out->device = sidecar_string(text, "device");
  }
  return true;
}

ReplayResult run_replay(const TraceBundle& bundle, const ReplayOptions& opts) {
  ReplayResult res;
  if (bundle.nranks <= 0 || bundle.ranks.empty()) return res;

  WorldOptions wo;
  wo.netmod = !opts.netmod.empty() ? opts.netmod
                                   : (!bundle.netmod.empty() ? bundle.netmod : "mailbox");
  wo.device = opts.device;
  wo.build.num_vcis = bundle.nvcis;
  wo.build.counters = true;  // fidelity is diffed through the pvar counters
  if (bundle.eager_threshold != 0) {
    wo.eager_threshold = static_cast<std::size_t>(bundle.eager_threshold);
  }
  res.netmod = wo.netmod;

  const bool coll_safe = bundle.complete();
  std::vector<RankState> states(static_cast<std::size_t>(bundle.nranks));

  World world(bundle.nranks, wo);
  const std::uint64_t t0 = rt::now_ns();
  world.run([&](Engine& e) {
    const auto r = static_cast<std::size_t>(e.world_rank());
    replay_rank(e, bundle, bundle.ranks[r], opts, coll_safe, states[r]);
  });
  res.wall_ns = rt::now_ns() - t0;
  res.ok = true;

  for (const RankState& s : states) {
    res.replayed += s.replayed;
    res.skipped += s.skipped;
    res.timeouts += s.timeouts;
  }

  // Fidelity: recorded totals live in each rank's trace header; measured
  // totals come from the replay world's counters. Engine-level totals must
  // match exactly on a complete bundle. Fabric injection totals are only
  // comparable when the replay ran on the recording's netmod (packetization
  // differs across backends).
  static const char* kNames[] = {"sends_eager", "sends_rdv",      "recvs_posted",
                                 "matches",     "misses",         "injected",
                                 "injected_bytes"};
  const bool same_netmod = !bundle.netmod.empty() && wo.netmod == bundle.netmod;
  res.fidelity_checked = coll_safe;
  res.fidelity_ok = coll_safe;
  res.fabric_checked = coll_safe && same_netmod;
  res.fabric_ok = res.fabric_checked;
  for (int r = 0; r < bundle.nranks; ++r) {
    obs::RecTotals rec;
    std::memcpy(&rec, bundle.ranks[static_cast<std::size_t>(r)].header.totals,
                sizeof(rec));
    const obs::RecTotals got = obs::read_rec_totals(world.engine(r));
    res.recorded.push_back(rec);
    res.measured.push_back(got);
    if (!res.fidelity_checked) continue;
    for (int f = 0; f < 7; ++f) {
      std::uint64_t want = field(rec, f);
      std::uint64_t have = field(got, f);
      const bool fabric_field = f >= 5;
      if (f == 3 || f == 4) {
        // The match/miss split depends on arrival timing; only the sum is
        // deterministic. Compare it once, on the `matches` slot.
        if (f == 4) continue;
        want = rec.matches + rec.misses;
        have = got.matches + got.misses;
      }
      if (want == have) continue;
      if (fabric_field && !res.fabric_checked) continue;
      std::ostringstream d;
      d << "rank " << r << " " << (f == 3 ? "matches+misses" : kNames[f])
        << ": recorded " << want << " replayed " << have;
      res.diffs.push_back(d.str());
      if (fabric_field) {
        res.fabric_ok = false;
      } else {
        res.fidelity_ok = false;
      }
    }
  }

  // Requested pvar readings from the replay world (histogram percentiles,
  // wait-state mix, ...). Counter-style names (_count suffix) sum across
  // ranks; distribution-style names (percentiles, maxima) report the worst
  // rank -- a cross-rank percentile sum would be meaningless.
  for (const std::string& name : opts.capture_pvars) {
    const int idx = obs::LWMPI_T_pvar_index(name.c_str());
    const bool summed = name.size() >= 6 &&
                        name.compare(name.size() - 6, 6, "_count") == 0;
    std::uint64_t agg = 0;
    for (int r = 0; r < bundle.nranks; ++r) {
      obs::PvarSession s;
      obs::LWMPI_T_pvar_session_create(world.engine(r), &s);
      std::uint64_t v = 0;
      obs::LWMPI_T_pvar_read(s, idx, &v);
      obs::LWMPI_T_pvar_session_free(&s);
      agg = summed ? agg + v : std::max(agg, v);
    }
    res.pvars.emplace_back(name, agg);
  }
  return res;
}

}  // namespace lwmpi::apps
