#include "apps/md.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>

#include "core/engine.hpp"

namespace lwmpi::apps {
namespace {

constexpr Tag kTagGhostBase = 300;  // +direction (0..5)

struct Vec3 {
  double x = 0, y = 0, z = 0;
};

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Deterministic per-atom pseudo-random in [-0.5, 0.5) (splitmix64).
double hash_unit(std::uint64_t v) {
  v += 0x9e3779b97f4a7c15ull;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
  v ^= v >> 31;
  return static_cast<double>(v % (1ull << 32)) / static_cast<double>(1ull << 32) - 0.5;
}

}  // namespace

MdResult run_md(Engine& eng, Comm comm, const MdConfig& cfg) {
  MdResult res;
  const int p = eng.size(comm);
  const int r = eng.rank(comm);
  if (cfg.px * cfg.py * cfg.pz != p || cfg.cells_x < 1 || cfg.cells_y < 1 || cfg.cells_z < 1) {
    return res;
  }
  const int cx = r % cfg.px;
  const int cy = (r / cfg.px) % cfg.py;
  const int cz = r / (cfg.px * cfg.py);
  const double lx = cfg.cells_x * cfg.lattice;
  const double ly = cfg.cells_y * cfg.lattice;
  const double lz = cfg.cells_z * cfg.lattice;
  const double box[3] = {lx, ly, lz};

  // Periodic 6-neighbour stencil over the process grid.
  auto grid_rank = [&](int gx, int gy, int gz) {
    gx = (gx + cfg.px) % cfg.px;
    gy = (gy + cfg.py) % cfg.py;
    gz = (gz + cfg.pz) % cfg.pz;
    return static_cast<Rank>((gz * cfg.py + gy) * cfg.px + gx);
  };
  const Rank nbr[6] = {grid_rank(cx - 1, cy, cz), grid_rank(cx + 1, cy, cz),
                       grid_rank(cx, cy - 1, cz), grid_rank(cx, cy + 1, cz),
                       grid_rank(cx, cy, cz - 1), grid_rank(cx, cy, cz + 1)};

  // FCC lattice fill: 4 atoms per unit cell.
  static const double kBasis[4][3] = {
      {0.0, 0.0, 0.0}, {0.5, 0.5, 0.0}, {0.5, 0.0, 0.5}, {0.0, 0.5, 0.5}};
  std::vector<Vec3> pos;
  for (int ix = 0; ix < cfg.cells_x; ++ix) {
    for (int iy = 0; iy < cfg.cells_y; ++iy) {
      for (int iz = 0; iz < cfg.cells_z; ++iz) {
        for (int b = 0; b < 4; ++b) {
          pos.push_back(Vec3{(ix + kBasis[b][0]) * cfg.lattice,
                             (iy + kBasis[b][1]) * cfg.lattice,
                             (iz + kBasis[b][2]) * cfg.lattice});
        }
      }
    }
  }
  const std::size_t n_own = pos.size();
  std::vector<Vec3> vel(n_own);
  std::vector<Vec3> frc(n_own);

  // Small deterministic thermal velocities with zero local net momentum.
  Vec3 psum;
  for (std::size_t i = 0; i < n_own; ++i) {
    const std::uint64_t gid = static_cast<std::uint64_t>(r) * (n_own * 8) + i;
    vel[i] = Vec3{cfg.temperature * hash_unit(gid * 3 + 0),
                  cfg.temperature * hash_unit(gid * 3 + 1),
                  cfg.temperature * hash_unit(gid * 3 + 2)};
    psum.x += vel[i].x;
    psum.y += vel[i].y;
    psum.z += vel[i].z;
  }
  for (std::size_t i = 0; i < n_own; ++i) {
    vel[i].x -= psum.x / static_cast<double>(n_own);
    vel[i].y -= psum.y / static_cast<double>(n_own);
    vel[i].z -= psum.z / static_cast<double>(n_own);
  }

  // Ghost atoms live past the owned atoms in `all`; rebuilt every step.
  std::vector<Vec3> all;
  std::vector<double> sendbuf;
  std::vector<double> recvbuf;

  // Exchange ghosts dimension by dimension so edge/corner ghosts propagate.
  auto exchange_ghosts = [&]() {
    all.assign(pos.begin(), pos.end());
    for (int dim = 0; dim < 3; ++dim) {
      // Only atoms known before this dimension may be exported: forwarding a
      // ghost received from the same dimension would bounce the neighbour's
      // own atoms back as duplicates. Ghosts from earlier dimensions must be
      // forwarded so edge/corner regions populate.
      const std::size_t exportable = all.size();
      for (int side = 0; side < 2; ++side) {  // 0: low face, 1: high face
        const int dir = dim * 2 + side;
        const double limit = side == 0 ? cfg.cutoff : box[dim] - cfg.cutoff;
        sendbuf.clear();
        for (std::size_t ai = 0; ai < exportable; ++ai) {
          const Vec3& a = all[ai];
          const double c = dim == 0 ? a.x : dim == 1 ? a.y : a.z;
          const bool near = side == 0 ? c < limit : c > limit;
          if (!near) continue;
          Vec3 shifted = a;
          // Translate into the neighbour's local frame.
          (dim == 0 ? shifted.x : dim == 1 ? shifted.y : shifted.z) +=
              side == 0 ? box[dim] : -box[dim];
          sendbuf.push_back(shifted.x);
          sendbuf.push_back(shifted.y);
          sendbuf.push_back(shifted.z);
        }
        // Counterpart direction we receive from: the opposite face.
        const int rdir = dim * 2 + (1 - side);
        recvbuf.resize((n_own + all.size()) * 3 + 64);
        Request reqs[2];
        Status st;
        eng.irecv(recvbuf.data(), static_cast<int>(recvbuf.size()), kDouble, nbr[rdir],
                  static_cast<Tag>(kTagGhostBase + dir), comm, &reqs[0]);
        eng.isend(sendbuf.data(), static_cast<int>(sendbuf.size()), kDouble, nbr[dir],
                  static_cast<Tag>(kTagGhostBase + dir), comm, &reqs[1]);
        eng.wait(&reqs[1], nullptr);
        eng.wait(&reqs[0], &st);
        const std::size_t nrecv = st.byte_count / (3 * sizeof(double));
        for (std::size_t i = 0; i < nrecv; ++i) {
          all.push_back(
              Vec3{recvbuf[i * 3 + 0], recvbuf[i * 3 + 1], recvbuf[i * 3 + 2]});
        }
        res.ghost_atoms_exchanged += nrecv;
      }
    }
  };

  // Cell-list LJ forces on owned atoms; returns local potential energy.
  const double rc2 = cfg.cutoff * cfg.cutoff;
  auto compute_forces = [&]() {
    // Bin own + ghost atoms into cells of width >= cutoff spanning
    // [-cutoff, L + cutoff] in each dimension.
    int ncell[3];
    double cw[3];
    for (int d = 0; d < 3; ++d) {
      ncell[d] = std::max(1, static_cast<int>((box[d] + 2 * cfg.cutoff) / cfg.cutoff));
      cw[d] = (box[d] + 2 * cfg.cutoff) / ncell[d];
    }
    auto cell_of = [&](const Vec3& a) {
      int ix = std::clamp(static_cast<int>((a.x + cfg.cutoff) / cw[0]), 0, ncell[0] - 1);
      int iy = std::clamp(static_cast<int>((a.y + cfg.cutoff) / cw[1]), 0, ncell[1] - 1);
      int iz = std::clamp(static_cast<int>((a.z + cfg.cutoff) / cw[2]), 0, ncell[2] - 1);
      return (iz * ncell[1] + iy) * ncell[0] + ix;
    };
    const int total_cells = ncell[0] * ncell[1] * ncell[2];
    std::vector<int> head(static_cast<std::size_t>(total_cells), -1);
    std::vector<int> next(all.size(), -1);
    for (std::size_t i = 0; i < all.size(); ++i) {
      const int c = cell_of(all[i]);
      next[i] = head[static_cast<std::size_t>(c)];
      head[static_cast<std::size_t>(c)] = static_cast<int>(i);
    }

    double epot = 0.0;
    std::fill(frc.begin(), frc.end(), Vec3{});
    for (std::size_t i = 0; i < n_own; ++i) {
      const Vec3& a = all[i];
      const int aix = std::clamp(static_cast<int>((a.x + cfg.cutoff) / cw[0]), 0, ncell[0] - 1);
      const int aiy = std::clamp(static_cast<int>((a.y + cfg.cutoff) / cw[1]), 0, ncell[1] - 1);
      const int aiz = std::clamp(static_cast<int>((a.z + cfg.cutoff) / cw[2]), 0, ncell[2] - 1);
      for (int dz = -1; dz <= 1; ++dz) {
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            const int bx = aix + dx;
            const int by = aiy + dy;
            const int bz = aiz + dz;
            if (bx < 0 || bx >= ncell[0] || by < 0 || by >= ncell[1] || bz < 0 ||
                bz >= ncell[2]) {
              continue;
            }
            for (int j = head[static_cast<std::size_t>((bz * ncell[1] + by) * ncell[0] + bx)];
                 j != -1; j = next[static_cast<std::size_t>(j)]) {
              if (static_cast<std::size_t>(j) == i) continue;
              const double rx = a.x - all[static_cast<std::size_t>(j)].x;
              const double ry = a.y - all[static_cast<std::size_t>(j)].y;
              const double rz = a.z - all[static_cast<std::size_t>(j)].z;
              const double r2 = rx * rx + ry * ry + rz * rz;
              if (r2 >= rc2 || r2 < 1e-12) continue;
              const double inv2 = 1.0 / r2;
              const double inv6 = inv2 * inv2 * inv2;
              const double ff = 24.0 * inv2 * inv6 * (2.0 * inv6 - 1.0);
              frc[i].x += ff * rx;
              frc[i].y += ff * ry;
              frc[i].z += ff * rz;
              epot += 0.5 * 4.0 * inv6 * (inv6 - 1.0);  // half: pair seen twice
            }
          }
        }
      }
    }
    return epot;
  };

  exchange_ghosts();
  double epot_local = compute_forces();

  const double t0 = now_sec();
  for (int step = 0; step < cfg.steps; ++step) {
    for (std::size_t i = 0; i < n_own; ++i) {  // half kick + drift
      vel[i].x += 0.5 * cfg.dt * frc[i].x;
      vel[i].y += 0.5 * cfg.dt * frc[i].y;
      vel[i].z += 0.5 * cfg.dt * frc[i].z;
      pos[i].x += cfg.dt * vel[i].x;
      pos[i].y += cfg.dt * vel[i].y;
      pos[i].z += cfg.dt * vel[i].z;
    }
    exchange_ghosts();
    epot_local = compute_forces();
    for (std::size_t i = 0; i < n_own; ++i) {  // second half kick
      vel[i].x += 0.5 * cfg.dt * frc[i].x;
      vel[i].y += 0.5 * cfg.dt * frc[i].y;
      vel[i].z += 0.5 * cfg.dt * frc[i].z;
    }
  }
  const double dt_run = now_sec() - t0;

  double ekin_local = 0.0;
  for (std::size_t i = 0; i < n_own; ++i) {
    ekin_local +=
        0.5 * (vel[i].x * vel[i].x + vel[i].y * vel[i].y + vel[i].z * vel[i].z);
  }
  double energies[2] = {ekin_local, epot_local};
  double global[2] = {0, 0};
  eng.allreduce(energies, global, 2, kDouble, ReduceOp::Sum, comm);

  res.valid = true;
  res.atoms_per_rank = static_cast<std::int64_t>(n_own);
  res.atoms_total = static_cast<std::int64_t>(n_own) * p;
  res.seconds = dt_run;
  res.steps_per_sec = dt_run > 0 ? cfg.steps / dt_run : 0.0;
  res.kinetic_energy = global[0];
  res.potential_energy = global[1];
  return res;
}

}  // namespace lwmpi::apps
