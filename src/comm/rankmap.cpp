#include "comm/rankmap.hpp"

namespace lwmpi::comm {

RankMap RankMap::from_list(std::vector<Rank> world) {
  RankMap m;
  m.size_ = static_cast<int>(world.size());
  if (world.empty()) {
    m.repr_ = Repr::Offset;
    return m;
  }
  if (world.size() == 1) return offset_map(1, world[0]);

  // Detect an arithmetic progression: world[r] = offset + r * stride.
  const Rank offset = world[0];
  const Rank stride = world[1] - world[0];
  bool arithmetic = stride != 0;
  for (std::size_t r = 1; arithmetic && r < world.size(); ++r) {
    if (world[r] != offset + static_cast<Rank>(r) * stride) arithmetic = false;
  }
  if (arithmetic) return strided(static_cast<int>(world.size()), offset, stride);

  m.repr_ = Repr::Direct;
  m.lut_ = std::move(world);
  return m;
}

Rank RankMap::from_world(Rank w) const noexcept {
  if (repr_ == Repr::Direct) {
    for (std::size_t r = 0; r < lut_.size(); ++r) {
      if (lut_[r] == w) return static_cast<Rank>(r);
    }
    return -1;
  }
  const Rank delta = w - offset_;
  if (stride_ == 0) return -1;
  if (delta % stride_ != 0) return -1;
  const Rank r = delta / stride_;
  return (r >= 0 && r < size_) ? r : -1;
}

std::vector<Rank> RankMap::to_list() const {
  if (repr_ == Repr::Direct) return lut_;
  std::vector<Rank> out(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) out[static_cast<std::size_t>(r)] = r * stride_ + offset_;
  return out;
}

}  // namespace lwmpi::comm
