// Communicator-rank -> world-rank (network address) translation.
//
// Section 3.1 of the paper: the simplest translation is an O(P)-memory array
// lookup (2 instructions, one an expensive dereference); memory-compressed
// representations (Guo et al., IPDPS'17) cost around 11 instructions. We
// implement both plus a strided middle ground and charge the corresponding
// modeled costs, which makes the representation an ablatable design choice.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "cost/meter.hpp"
#include "cost/model.hpp"

namespace lwmpi::comm {

class RankMap {
 public:
  enum class Repr : std::uint8_t {
    Offset,   // world = rank + offset           (compressed, no memory)
    Strided,  // world = rank * stride + offset  (compressed, no memory)
    Direct,   // world = lut[rank]               (O(P) memory, 1 deref)
  };

  RankMap() = default;

  static RankMap identity(int size) { return offset_map(size, 0); }

  static RankMap offset_map(int size, Rank offset) {
    RankMap m;
    m.size_ = size;
    m.repr_ = Repr::Offset;
    m.offset_ = offset;
    m.stride_ = 1;
    return m;
  }

  static RankMap strided(int size, Rank offset, Rank stride) {
    RankMap m;
    m.size_ = size;
    m.repr_ = stride == 1 ? Repr::Offset : Repr::Strided;
    m.offset_ = offset;
    m.stride_ = stride;
    return m;
  }

  // Builds the most compact representation that reproduces `world`.
  static RankMap from_list(std::vector<Rank> world);

  int size() const noexcept { return size_; }
  Repr repr() const noexcept { return repr_; }

  // Translation used on the communication critical path: charges the
  // representation's modeled instruction cost under Category::MandRankmap.
  Rank to_world(Rank r) const noexcept {
    switch (repr_) {
      case Repr::Offset:
      case Repr::Strided:
        cost::charge(cost::Category::MandRankmap, cost::kMandRankTranslateCompressed);
        return r * stride_ + offset_;
      case Repr::Direct:
        cost::charge(cost::Category::MandRankmap, cost::kMandRankTranslateDirect);
        return lut_[static_cast<std::size_t>(r)];
    }
    return kUndefined;
  }

  // Cost-free translation for non-critical paths (group ops, setup).
  Rank to_world_nocharge(Rank r) const noexcept {
    return repr_ == Repr::Direct ? lut_[static_cast<std::size_t>(r)] : r * stride_ + offset_;
  }

  // Inverse lookup (setup paths only): world rank -> comm rank, or -1.
  Rank from_world(Rank w) const noexcept;

  // Materialized world-rank list (setup paths).
  std::vector<Rank> to_list() const;

  // Approximate memory footprint of the representation in bytes.
  std::size_t memory_bytes() const noexcept {
    return repr_ == Repr::Direct ? lut_.size() * sizeof(Rank) : 0;
  }

 private:
  int size_ = 0;
  Repr repr_ = Repr::Offset;
  Rank offset_ = 0;
  Rank stride_ = 1;
  std::vector<Rank> lut_;
};

}  // namespace lwmpi::comm
