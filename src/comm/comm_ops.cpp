// Communicator and group management: dup, split, free, the predefined-handle
// proposal (Section 3.3), and group operations including
// group_translate_ranks (the setup half of the Section 3.1 proposal).
#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "runtime/world.hpp"

namespace lwmpi {

namespace {
struct SplitEntry {
  std::int32_t color;
  std::int32_t key;
  std::int32_t world_rank;
};
}  // namespace

Err Engine::comm_dup(Comm comm, Comm* newcomm) {
  CommObject* c = comm_obj(comm);
  if (c == nullptr) return Err::Comm;
  if (newcomm == nullptr) return Err::Arg;

  // Context agreement: rank 0 of the communicator allocates a fresh pair and
  // broadcasts it; allocation is world-global so the id is unique.
  std::uint32_t ctx = 0;
  if (c->rank == 0) ctx = world_.alloc_context_pair();
  if (Err e = bcast(&ctx, 1, kUint32, 0, comm); !ok(e)) return e;

  const Comm slot = alloc_comm_slot();
  if (Err e = build_comm(slot, c->map.to_list(), ctx); !ok(e)) return e;
  *newcomm = slot;
  return Err::Success;
}

Err Engine::comm_dup_predefined(Comm comm, Comm predefined) {
  CommObject* c = comm_obj(comm);
  if (c == nullptr) return Err::Comm;
  if (handle_kind(predefined) != HandleKind::Comm) return Err::Comm;
  CommObject* pre = comms_.at(handle_payload(predefined));
  if (pre == nullptr || !pre->predefined_slot) return Err::Comm;
  if (pre->in_use.load(std::memory_order_acquire)) return Err::Comm;  // must be freed first

  std::uint32_t ctx = 0;
  if (c->rank == 0) ctx = world_.alloc_context_pair();
  if (Err e = bcast(&ctx, 1, kUint32, 0, comm); !ok(e)) return e;

  // build_comm keeps predefined_slot set, so the slot stays pinned to its VCI.
  return build_comm(predefined, c->map.to_list(), ctx);
}

Err Engine::comm_split(Comm comm, int color, int key, Comm* newcomm) {
  CommObject* c = comm_obj(comm);
  if (c == nullptr) return Err::Comm;
  if (newcomm == nullptr) return Err::Arg;
  if (color < 0 && color != kUndefined) return Err::Arg;
  const int p = c->map.size();

  // Exchange (color, key, world_rank) across the parent communicator.
  SplitEntry mine{color, key, self_};
  std::vector<SplitEntry> all(static_cast<std::size_t>(p));
  if (Err e = allgather(&mine, static_cast<int>(sizeof(SplitEntry)), kByte, all.data(),
                        static_cast<int>(sizeof(SplitEntry)), kByte, comm);
      !ok(e)) {
    return e;
  }

  // Deterministically enumerate the distinct colors in ascending order.
  std::vector<std::int32_t> colors;
  for (const SplitEntry& e : all) {
    if (e.color != kUndefined) colors.push_back(e.color);
  }
  std::sort(colors.begin(), colors.end());
  colors.erase(std::unique(colors.begin(), colors.end()), colors.end());

  // Rank 0 of the parent allocates one context pair per color; everyone
  // learns the base and derives their color's pair by index.
  std::uint32_t base_ctx = 0;
  if (c->rank == 0) {
    base_ctx = world_.alloc_context_block(
        std::max<std::uint32_t>(1, static_cast<std::uint32_t>(colors.size())));
  }
  if (Err e = bcast(&base_ctx, 1, kUint32, 0, comm); !ok(e)) return e;

  if (color == kUndefined) {
    *newcomm = kCommNull;
    return Err::Success;
  }

  // My subgroup, ordered by (key, world_rank).
  std::vector<SplitEntry> group;
  for (const SplitEntry& e : all) {
    if (e.color == color) group.push_back(e);
  }
  std::sort(group.begin(), group.end(), [](const SplitEntry& a, const SplitEntry& b) {
    return a.key != b.key ? a.key < b.key : a.world_rank < b.world_rank;
  });
  std::vector<Rank> world_ranks;
  world_ranks.reserve(group.size());
  for (const SplitEntry& e : group) world_ranks.push_back(e.world_rank);

  const auto color_idx = static_cast<std::uint32_t>(
      std::lower_bound(colors.begin(), colors.end(), color) - colors.begin());
  const std::uint32_t ctx = base_ctx + 2 * color_idx;

  const Comm slot = alloc_comm_slot();
  if (Err e = build_comm(slot, std::move(world_ranks), ctx); !ok(e)) return e;
  *newcomm = slot;
  return Err::Success;
}

Err Engine::comm_free(Comm* comm) {
  if (comm == nullptr) return Err::Comm;
  CommObject* c = comm_obj(*comm);
  if (c == nullptr) return Err::Comm;
  if (*comm == kCommWorld || *comm == kCommSelf) return Err::Comm;  // not freeable
  {
    // Unpublish, and release the dynamic-slot reservation so alloc_comm_slot
    // can recycle it (predefined slots stay pinned for dup_predefined).
    std::lock_guard<std::mutex> lk(comm_mu_);
    c->in_use.store(false, std::memory_order_release);
    c->reserved = false;
  }
  *comm = kCommNull;
  return Err::Success;
}

// ---------------------------------------------------------------------------
// Info hints
// ---------------------------------------------------------------------------

Err Engine::comm_set_info(Comm comm, std::string_view key, std::string_view value) {
  CommObject* c = comm_obj(comm);
  if (c == nullptr) return Err::Comm;
  for (auto& kv : c->info) {
    if (kv.first == key) {
      kv.second = std::string(value);
      if (key == "lwmpi_arrival_order") c->hint_arrival_order.store(value == "true", std::memory_order_relaxed);
      return Err::Success;
    }
  }
  c->info.emplace_back(std::string(key), std::string(value));
  if (key == "lwmpi_arrival_order") c->hint_arrival_order.store(value == "true", std::memory_order_relaxed);
  return Err::Success;
}

Err Engine::comm_get_info(Comm comm, std::string_view key, std::string* value) const {
  const CommObject* c = comm_obj(comm);
  if (c == nullptr) return Err::Comm;
  if (value == nullptr) return Err::Arg;
  for (const auto& kv : c->info) {
    if (kv.first == key) {
      *value = kv.second;
      return Err::Success;
    }
  }
  return Err::Arg;  // key not set
}

// ---------------------------------------------------------------------------
// Groups
// ---------------------------------------------------------------------------

Err Engine::comm_group(Comm comm, Group* group) {
  CommObject* c = comm_obj(comm);
  if (c == nullptr) return Err::Comm;
  if (group == nullptr) return Err::Group;
  std::uint32_t idx = 0;
  for (; idx < groups_.size(); ++idx) {
    if (!groups_[idx].has_value()) break;
  }
  if (idx == groups_.size()) groups_.emplace_back();
  groups_[idx] = c->map.to_list();
  *group = make_handle(HandleKind::Group, idx + 1);  // +1: slot 0 is kGroupEmpty
  return Err::Success;
}

namespace {
const std::vector<Rank>* group_list(
    const std::vector<std::optional<std::vector<Rank>>>& groups, Group g) {
  if (handle_kind(g) != HandleKind::Group) return nullptr;
  const std::uint32_t payload = handle_payload(g);
  if (payload == 0) {  // kGroupEmpty
    static const std::vector<Rank> empty;
    return &empty;
  }
  const std::uint32_t idx = payload - 1;
  if (idx >= groups.size() || !groups[idx].has_value()) return nullptr;
  return &*groups[idx];
}
}  // namespace

Err Engine::group_size(Group g, int* size) const {
  const std::vector<Rank>* list = group_list(groups_, g);
  if (list == nullptr || size == nullptr) return Err::Group;
  *size = static_cast<int>(list->size());
  return Err::Success;
}

Err Engine::group_rank(Group g, int* rank) const {
  const std::vector<Rank>* list = group_list(groups_, g);
  if (list == nullptr || rank == nullptr) return Err::Group;
  for (std::size_t i = 0; i < list->size(); ++i) {
    if ((*list)[i] == self_) {
      *rank = static_cast<int>(i);
      return Err::Success;
    }
  }
  *rank = kUndefined;
  return Err::Success;
}

Err Engine::group_incl(Group g, std::span<const int> ranks, Group* newgroup) {
  const std::vector<Rank>* list = group_list(groups_, g);
  if (list == nullptr || newgroup == nullptr) return Err::Group;
  std::vector<Rank> selected;
  selected.reserve(ranks.size());
  for (int r : ranks) {
    if (r < 0 || static_cast<std::size_t>(r) >= list->size()) return Err::Rank;
    selected.push_back((*list)[static_cast<std::size_t>(r)]);
  }
  std::uint32_t idx = 0;
  for (; idx < groups_.size(); ++idx) {
    if (!groups_[idx].has_value()) break;
  }
  if (idx == groups_.size()) groups_.emplace_back();
  groups_[idx] = std::move(selected);
  *newgroup = make_handle(HandleKind::Group, idx + 1);
  return Err::Success;
}

Err Engine::group_translate_ranks(Group g1, std::span<const int> ranks1, Group g2,
                                  std::span<int> ranks2) const {
  const std::vector<Rank>* l1 = group_list(groups_, g1);
  const std::vector<Rank>* l2 = group_list(groups_, g2);
  if (l1 == nullptr || l2 == nullptr) return Err::Group;
  if (ranks2.size() < ranks1.size()) return Err::Arg;
  for (std::size_t i = 0; i < ranks1.size(); ++i) {
    const int r = ranks1[i];
    if (r == kProcNull) {
      ranks2[i] = kProcNull;
      continue;
    }
    if (r < 0 || static_cast<std::size_t>(r) >= l1->size()) return Err::Rank;
    const Rank w = (*l1)[static_cast<std::size_t>(r)];
    ranks2[i] = kUndefined;
    for (std::size_t j = 0; j < l2->size(); ++j) {
      if ((*l2)[j] == w) {
        ranks2[i] = static_cast<int>(j);
        break;
      }
    }
  }
  return Err::Success;
}

Err Engine::group_free(Group* g) {
  if (g == nullptr) return Err::Group;
  if (handle_kind(*g) != HandleKind::Group || handle_payload(*g) == 0) return Err::Group;
  const std::uint32_t idx = handle_payload(*g) - 1;
  if (idx >= groups_.size() || !groups_[idx].has_value()) return Err::Group;
  groups_[idx].reset();
  *g = kGroupNull;
  return Err::Success;
}

}  // namespace lwmpi
