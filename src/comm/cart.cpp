// Cartesian process topologies (MPI_CART_CREATE / COORDS / RANK / SHIFT).
//
// Rank order is row-major (last dimension varies fastest), matching MPI.
// Shifts off a non-periodic edge return MPI_PROC_NULL -- the exact source of
// the PROC_NULL traffic that Section 3.4 of the paper analyzes.
#include <vector>

#include "core/engine.hpp"
#include "runtime/world.hpp"

namespace lwmpi {

namespace {
int cart_size(std::span<const int> dims) {
  int n = 1;
  for (int d : dims) n *= d;
  return n;
}
}  // namespace

Err Engine::cart_create(Comm comm, std::span<const int> dims, std::span<const bool> periods,
                        bool reorder, Comm* cart) {
  CommObject* c = comm_obj(comm);
  if (c == nullptr) return Err::Comm;
  if (cart == nullptr || dims.empty() || periods.size() != dims.size()) return Err::Arg;
  for (int d : dims) {
    if (d <= 0) return Err::Arg;
  }
  const int n = cart_size(dims);
  if (n > c->map.size()) return Err::Arg;

  // Ranks beyond the grid get kCommNull (as MPI_CART_CREATE returns
  // MPI_COMM_NULL). We implement via comm_split so context agreement and
  // sub-grouping reuse the tested machinery; `reorder` is accepted but we
  // keep identity order (a valid choice for any MPI implementation).
  (void)reorder;
  const int color = c->rank < n ? 0 : kUndefined;
  Comm grid = kCommNull;
  if (Err e = comm_split(comm, color, c->rank, &grid); !ok(e)) return e;
  if (grid == kCommNull) {
    *cart = kCommNull;
    return Err::Success;
  }
  CommObject* g = comm_obj(grid);
  CartTopo topo;
  topo.dims.assign(dims.begin(), dims.end());
  topo.periods.resize(periods.size());
  for (std::size_t i = 0; i < periods.size(); ++i) topo.periods[i] = periods[i] ? 1 : 0;
  g->cart = std::move(topo);
  *cart = grid;
  return Err::Success;
}

Err Engine::cartdim_get(Comm cart, int* ndims) const {
  const CommObject* c = comm_obj(cart);
  if (c == nullptr || !c->cart.has_value()) return Err::Comm;
  if (ndims == nullptr) return Err::Arg;
  *ndims = static_cast<int>(c->cart->dims.size());
  return Err::Success;
}

Err Engine::cart_coords(Comm cart, Rank rank, std::span<int> coords) const {
  const CommObject* c = comm_obj(cart);
  if (c == nullptr || !c->cart.has_value()) return Err::Comm;
  const auto& dims = c->cart->dims;
  if (coords.size() < dims.size()) return Err::Arg;
  if (rank < 0 || rank >= c->map.size()) return Err::Rank;
  int rem = rank;
  for (std::size_t i = dims.size(); i-- > 0;) {
    coords[i] = rem % dims[i];
    rem /= dims[i];
  }
  return Err::Success;
}

Err Engine::cart_rank(Comm cart, std::span<const int> coords, Rank* rank) const {
  const CommObject* c = comm_obj(cart);
  if (c == nullptr || !c->cart.has_value()) return Err::Comm;
  const auto& topo = *c->cart;
  if (rank == nullptr || coords.size() < topo.dims.size()) return Err::Arg;
  int r = 0;
  for (std::size_t i = 0; i < topo.dims.size(); ++i) {
    int x = coords[i];
    if (topo.periods[i] != 0) {
      x = ((x % topo.dims[i]) + topo.dims[i]) % topo.dims[i];
    } else if (x < 0 || x >= topo.dims[i]) {
      return Err::Rank;  // off a non-periodic edge
    }
    r = r * topo.dims[i] + x;
  }
  *rank = static_cast<Rank>(r);
  return Err::Success;
}

Err Engine::cart_shift(Comm cart, int dim, int disp, Rank* source, Rank* dest) const {
  const CommObject* c = comm_obj(cart);
  if (c == nullptr || !c->cart.has_value()) return Err::Comm;
  const auto& topo = *c->cart;
  if (dim < 0 || static_cast<std::size_t>(dim) >= topo.dims.size() || source == nullptr ||
      dest == nullptr) {
    return Err::Arg;
  }
  std::vector<int> coords(topo.dims.size());
  if (Err e = cart_coords(cart, c->rank, coords); !ok(e)) return e;

  auto neighbour = [&](int delta) -> Rank {
    std::vector<int> n = coords;
    n[static_cast<std::size_t>(dim)] += delta;
    Rank r = kProcNull;
    if (cart_rank(cart, n, &r) != Err::Success) return kProcNull;
    return r;
  };
  *dest = neighbour(disp);
  *source = neighbour(-disp);
  return Err::Success;
}

}  // namespace lwmpi
