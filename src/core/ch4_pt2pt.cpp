// CH4 point-to-point path: the paper's lightweight flow-through device, plus
// the Section-3 proposed-extension entry points. The structure mirrors the
// paper's walk-through: MPI layer (function-call overhead, error checking,
// thread gate) -> ch4 core (locality) -> netmod/shmmod (translation +
// injection), with every step charging its modeled instruction cost.
//
// Thread safety is per VCI: the entry points resolve the communicator's
// channel and gate on *its* lock (core/vci.hpp), so operations on
// communicators mapped to different VCIs never serialize against each other.
#include <cstring>

#include "core/engine.hpp"
#include "cost/meter.hpp"
#include "cost/model.hpp"
#include "obs/recorder.hpp"
#include "obs/watchdog.hpp"
#include "runtime/backoff.hpp"
#include "runtime/world.hpp"

namespace lwmpi {

// ---------------------------------------------------------------------------
// Public MPI-layer entry points
// ---------------------------------------------------------------------------

Err Engine::isend(const void* buf, int count, Datatype dt, Rank dest, Tag tag, Comm comm,
                  Request* req) {
  obs::ProfScope psc(prof_, obs::Callsite::Isend, prof_vci(comm), prof_bytes(count, dt));
  obs::RecScope rsc(rec_, obs::Callsite::Isend, dest, tag, rec_vci(comm),
                    rec_bytes(count, dt));
  const Err e = isend_impl(buf, count, dt, dest, tag, comm, req);
  if (ok(e)) rsc.bind_req(req);
  return e;
}

Err Engine::isend_impl(const void* buf, int count, Datatype dt, Rank dest, Tag tag, Comm comm,
                       Request* req) {
  if (!cfg_.ipo) {
    cost::charge(cost::Category::CallOverhead, cost::kCallEntry + cost::kCallPmpiAliasSend);
  }
  VciGate gate(vci_for(comm), cfg_.thread_safety, cost::kThreadGatePt2pt);
  if (cfg_.error_checking) {
    if (Err e = check_comm(comm); !ok(e)) return e;
    const CommObject* c = comm_obj(comm);
    if (Err e = check_rank(*c, dest, /*allow_proc_null=*/true, false); !ok(e)) return e;
    if (Err e = check_tag(tag, false); !ok(e)) return e;
    if (Err e = check_count(count); !ok(e)) return e;
    if (Err e = check_buffer(buf, count); !ok(e)) return e;
    if (Err e = check_datatype(dt); !ok(e)) return e;
  }
  SendParams p{.buf = buf, .count = count, .dt = dt, .dest = dest, .tag = tag, .comm = comm};
  return device_isend(p, req);
}

Err Engine::irecv(void* buf, int count, Datatype dt, Rank src, Tag tag, Comm comm,
                  Request* req) {
  obs::ProfScope psc(prof_, obs::Callsite::Irecv, prof_vci(comm), prof_bytes(count, dt));
  obs::RecScope rsc(rec_, obs::Callsite::Irecv, src, tag, rec_vci(comm),
                    rec_bytes(count, dt));
  const Err e = irecv_impl(buf, count, dt, src, tag, comm, req);
  if (ok(e)) rsc.bind_req(req);
  return e;
}

Err Engine::irecv_impl(void* buf, int count, Datatype dt, Rank src, Tag tag, Comm comm,
                       Request* req) {
  if (!cfg_.ipo) {
    cost::charge(cost::Category::CallOverhead, cost::kCallEntry + cost::kCallPmpiAliasSend);
  }
  VciGate gate(vci_for(comm), cfg_.thread_safety, cost::kThreadGatePt2pt);
  if (cfg_.error_checking) {
    if (Err e = check_comm(comm); !ok(e)) return e;
    const CommObject* c = comm_obj(comm);
    if (Err e = check_rank(*c, src, true, /*allow_any=*/true); !ok(e)) return e;
    if (Err e = check_tag(tag, true); !ok(e)) return e;
    if (Err e = check_count(count); !ok(e)) return e;
    if (Err e = check_buffer(buf, count); !ok(e)) return e;
    if (Err e = check_datatype(dt); !ok(e)) return e;
  }
  return post_recv_common(buf, count, dt, src, tag, comm, rt::MatchMode::Full, false, req);
}

// ---------------------------------------------------------------------------
// Section 3 extensions
// ---------------------------------------------------------------------------

Err Engine::isend_global(const void* buf, int count, Datatype dt, Rank world_dest, Tag tag,
                         Comm comm, Request* req) {
  obs::ProfScope psc(prof_, obs::Callsite::IsendGlobal, prof_vci(comm),
                     prof_bytes(count, dt));
  obs::RecScope rsc(rec_, obs::Callsite::IsendGlobal, world_dest, tag, rec_vci(comm),
                    rec_bytes(count, dt));
  if (!cfg_.ipo) {
    cost::charge(cost::Category::CallOverhead, cost::kCallEntry + cost::kCallPmpiAliasSend);
  }
  VciGate gate(vci_for(comm), cfg_.thread_safety, cost::kThreadGatePt2pt);
  if (cfg_.error_checking) {
    if (Err e = check_comm(comm); !ok(e)) return e;
    cost::charge(cost::Category::ErrCheck, cost::kErrRankRange);
    if (world_dest != kProcNull && (world_dest < 0 || world_dest >= world_size())) {
      return Err::Rank;
    }
    if (Err e = check_tag(tag, false); !ok(e)) return e;
    if (Err e = check_count(count); !ok(e)) return e;
    if (Err e = check_buffer(buf, count); !ok(e)) return e;
    if (Err e = check_datatype(dt); !ok(e)) return e;
  }
  SendParams p{.buf = buf,
               .count = count,
               .dt = dt,
               .dest = world_dest,
               .tag = tag,
               .comm = comm,
               .dest_is_world = true};
  const Err e = device_isend(p, req);
  if (ok(e)) rsc.bind_req(req);
  return e;
}

Err Engine::isend_npn(const void* buf, int count, Datatype dt, Rank dest, Tag tag, Comm comm,
                      Request* req) {
  obs::ProfScope psc(prof_, obs::Callsite::IsendNpn, prof_vci(comm), prof_bytes(count, dt));
  obs::RecScope rsc(rec_, obs::Callsite::IsendNpn, dest, tag, rec_vci(comm),
                    rec_bytes(count, dt));
  if (!cfg_.ipo) {
    cost::charge(cost::Category::CallOverhead, cost::kCallEntry + cost::kCallPmpiAliasSend);
  }
  VciGate gate(vci_for(comm), cfg_.thread_safety, cost::kThreadGatePt2pt);
  if (cfg_.error_checking) {
    if (Err e = check_comm(comm); !ok(e)) return e;
    const CommObject* c = comm_obj(comm);
    // _NPN forbids MPI_PROC_NULL: with checking on, that is a user error.
    if (Err e = check_rank(*c, dest, /*allow_proc_null=*/false, false); !ok(e)) return e;
    if (Err e = check_tag(tag, false); !ok(e)) return e;
    if (Err e = check_count(count); !ok(e)) return e;
    if (Err e = check_buffer(buf, count); !ok(e)) return e;
    if (Err e = check_datatype(dt); !ok(e)) return e;
  }
  SendParams p{.buf = buf,
               .count = count,
               .dt = dt,
               .dest = dest,
               .tag = tag,
               .comm = comm,
               .skip_proc_null_check = true};
  const Err e = device_isend(p, req);
  if (ok(e)) rsc.bind_req(req);
  return e;
}

Err Engine::isend_noreq(const void* buf, int count, Datatype dt, Rank dest, Tag tag,
                        Comm comm) {
  obs::ProfScope psc(prof_, obs::Callsite::IsendNoreq, prof_vci(comm),
                     prof_bytes(count, dt));
  obs::RecScope rsc(rec_, obs::Callsite::IsendNoreq, dest, tag, rec_vci(comm),
                    rec_bytes(count, dt));
  if (!cfg_.ipo) {
    cost::charge(cost::Category::CallOverhead, cost::kCallEntry + cost::kCallPmpiAliasSend);
  }
  VciGate gate(vci_for(comm), cfg_.thread_safety, cost::kThreadGatePt2pt);
  if (cfg_.error_checking) {
    if (Err e = check_comm(comm); !ok(e)) return e;
    const CommObject* c = comm_obj(comm);
    if (Err e = check_rank(*c, dest, true, false); !ok(e)) return e;
    if (Err e = check_tag(tag, false); !ok(e)) return e;
    if (Err e = check_count(count); !ok(e)) return e;
    if (Err e = check_buffer(buf, count); !ok(e)) return e;
    if (Err e = check_datatype(dt); !ok(e)) return e;
  }
  SendParams p{.buf = buf,
               .count = count,
               .dt = dt,
               .dest = dest,
               .tag = tag,
               .comm = comm,
               .noreq = true};
  return device_isend(p, nullptr);
}

Err Engine::comm_waitall(Comm comm) {
  obs::ProfScope psc(prof_, obs::Callsite::CommWaitall, prof_vci(comm), 0);
  obs::RecScope rsc(rec_, obs::Callsite::CommWaitall, 0, 0, rec_vci(comm), 0);
  CommObject* c = comm_obj(comm);
  if (c == nullptr) return Err::Comm;
  progress();  // flush the device send queue even if nothing is outstanding
  if (c->noreq_outstanding.load(std::memory_order_acquire) != 0) {
    obs::BlockScope block(*this, "Comm_waitall");
    rt::Backoff backoff;
    while (c->noreq_outstanding.load(std::memory_order_acquire) != 0) {
      progress();
      if (c->noreq_outstanding.load(std::memory_order_acquire) != 0) backoff.pause();
    }
  }
  return Err::Success;
}

Err Engine::isend_nomatch(const void* buf, int count, Datatype dt, Rank dest, Comm comm,
                          Request* req) {
  obs::ProfScope psc(prof_, obs::Callsite::IsendNomatch, prof_vci(comm),
                     prof_bytes(count, dt));
  obs::RecScope rsc(rec_, obs::Callsite::IsendNomatch, dest, 0, rec_vci(comm),
                    rec_bytes(count, dt));
  if (!cfg_.ipo) {
    cost::charge(cost::Category::CallOverhead, cost::kCallEntry + cost::kCallPmpiAliasSend);
  }
  VciGate gate(vci_for(comm), cfg_.thread_safety, cost::kThreadGatePt2pt);
  if (cfg_.error_checking) {
    if (Err e = check_comm(comm); !ok(e)) return e;
    const CommObject* c = comm_obj(comm);
    if (Err e = check_rank(*c, dest, true, false); !ok(e)) return e;
    if (Err e = check_count(count); !ok(e)) return e;
    if (Err e = check_buffer(buf, count); !ok(e)) return e;
    if (Err e = check_datatype(dt); !ok(e)) return e;
  }
  SendParams p{.buf = buf,
               .count = count,
               .dt = dt,
               .dest = dest,
               .tag = 0,
               .comm = comm,
               .match_mode = rt::MatchMode::ArrivalOrder};
  const Err e = device_isend(p, req);
  if (ok(e)) rsc.bind_req(req);
  return e;
}

Err Engine::irecv_nomatch(void* buf, int count, Datatype dt, Comm comm, Request* req) {
  obs::ProfScope psc(prof_, obs::Callsite::IrecvNomatch, prof_vci(comm),
                     prof_bytes(count, dt));
  obs::RecScope rsc(rec_, obs::Callsite::IrecvNomatch, kAnySource, 0, rec_vci(comm),
                    rec_bytes(count, dt));
  if (cfg_.error_checking) {
    if (Err e = check_comm(comm); !ok(e)) return e;
    if (Err e = check_count(count); !ok(e)) return e;
    if (Err e = check_buffer(buf, count); !ok(e)) return e;
    if (Err e = check_datatype(dt); !ok(e)) return e;
  }
  const Err e = post_recv_common(buf, count, dt, kAnySource, kAnyTag, comm,
                                 rt::MatchMode::ArrivalOrder, false, req);
  if (ok(e)) rsc.bind_req(req);
  return e;
}

// All proposals combined: the 16-instruction minimal path. `comm` must be a
// predefined handle (its slot index is a compile-time constant in the
// proposal, making the lookup a global-array load); `world_dest` is a stored
// MPI_COMM_WORLD rank; there is no PROC_NULL handling, no per-op request, and
// no source/tag match bits. There is no gate either: the predefined comm owns
// its channel and the packet rides a wait-free fabric lane, so the minimal
// path touches no state that needs the VCI lock.
Err Engine::isend_all_opts(const void* buf, int count, Datatype dt, Rank world_dest,
                           Comm comm) {
  obs::ProfScope psc(prof_, obs::Callsite::IsendAllOpts, prof_vci(comm),
                     prof_bytes(count, dt));
  obs::RecScope rsc(rec_, obs::Callsite::IsendAllOpts, world_dest, 0, rec_vci(comm),
                    rec_bytes(count, dt));
  CommObject& c = *comms_.at(handle_payload(comm));  // global-array slot load
  cost::charge(cost::Category::MandObject, cost::kAllOptsCtxLoad);
  cost::charge(cost::Category::MandRankmap, cost::kAllOptsAddrLoad);
  cost::charge(cost::Category::MandLocality, cost::kAllOptsLocality);

  const std::size_t bytes = dt::packed_size(types_, count, dt);
  if (bytes > eager_threshold_) {
    // Large messages leave the minimal path and ride the standard rendezvous.
    SendParams p{.buf = buf,
                 .count = count,
                 .dt = dt,
                 .dest = world_dest,
                 .tag = 0,
                 .comm = comm,
                 .dest_is_world = true,
                 .skip_proc_null_check = true,
                 .noreq = true,
                 .match_mode = rt::MatchMode::ArrivalOrder};
    return device_isend(p, nullptr);
  }

  cost::charge(cost::Category::MandRequest, cost::kAllOptsCounter);
  rt::Packet* pkt = rt::PacketPool::alloc();
  pkt->hdr.kind = rt::PacketKind::Eager;
  pkt->hdr.match_mode = rt::MatchMode::ArrivalOrder;
  pkt->hdr.ctx = c.ctx;
  pkt->hdr.vci = static_cast<std::uint8_t>(c.vci);
  pkt->hdr.src_comm_rank = c.rank;
  pkt->hdr.src_world = self_;
  pkt->hdr.tag = 0;
  pkt->hdr.total_bytes = bytes;
  if (types_.is_contiguous(dt)) {
    pkt->set_payload(buf, bytes);
  } else {
    pkt->payload.resize(bytes);
    dt::pack(types_, buf, count, dt, pkt->payload.data());
  }
  cost::charge(cost::Category::MandInject, cost::kAllOptsInject);
  sends_issued_.fetch_add(1, std::memory_order_relaxed);
  vcis_[c.vci]->counters.inc(obs::VciCtr::SendEager);
  vcis_[c.vci]->counters.inc(obs::VciCtr::SendNoreq);
  if (cfg_.trace) {
    const std::uint64_t seq = obs::trace::next_seq();
    pkt->hdr.seq = seq;
    const auto vci8 = static_cast<std::uint8_t>(c.vci);
    trace_msg(obs::trace::Ev::SendPost, seq, vci8, world_dest, 0, bytes);
    trace_msg(obs::trace::Ev::Inject, seq, vci8, world_dest, 0, bytes);
    // _ALL_OPTS sends are counter-completed at injection; there is no later
    // per-request completion site to record.
    trace_msg(obs::trace::Ev::Complete, seq, vci8, world_dest, 0, bytes);
  }
  vcis_[c.vci]->busy_instr.fetch_add(
      cost::kAllOptsLocality + cost::kAllOptsCtxLoad + cost::kAllOptsCounter +
          cost::kAllOptsAddrLoad + cost::kAllOptsInject,
      std::memory_order_relaxed);
  fabric_.inject(self_, world_dest, pkt);
  return Err::Success;
}

// ---------------------------------------------------------------------------
// Device dispatch and the shared issue path
// ---------------------------------------------------------------------------

Err Engine::device_isend(const SendParams& p, Request* req) {
  return device_ == DeviceKind::Ch4 ? ch4_isend(p, req) : orig_isend(p, req);
}

Err Engine::ch4_isend(const SendParams& p, Request* req) {
  // Communicator object lookup. Dynamically created communicators cost a
  // dereference; predefined slots are a global-array load (Section 3.3).
  CommObject* c = comm_obj(p.comm);
  if (c == nullptr) return Err::Comm;
  cost::charge(cost::Category::MandObject,
               c->predefined_slot ? cost::kMandObjectSlotLoad : cost::kMandObjectDeref);
  if (!cfg_.ipo) cost::charge(cost::Category::Redundant, cost::kRedundantCommAttrs);

  if (!p.skip_proc_null_check) {
    cost::charge(cost::Category::MandProcNull, cost::kMandProcNull);
    if (p.dest == kProcNull) {
      if (req != nullptr && !p.noreq) {
        Request r = alloc_request(RequestSlot::Kind::SendEager, c->vci);
        req_slot(r)->complete.store(true, std::memory_order_release);
        *req = r;
      } else if (req != nullptr) {
        *req = kRequestNull;
      }
      return Err::Success;
    }
  }

  Rank dst_world;
  if (p.dest_is_world) {
    cost::charge(cost::Category::MandRankmap, cost::kMandRankGlobalLoad);
    dst_world = p.dest;
  } else {
    dst_world = c->map.to_world(p.dest);  // charges per representation
  }

  // ch4-core locality selection: self / shmmod / netmod.
  cost::charge(cost::Category::MandLocality, cost::kMandLocalitySelect);

  return issue_send(p, *c, dst_world, req);
}

Err Engine::issue_send(const SendParams& p, const CommObject& c, Rank dst_world,
                       Request* req) {
  // All matcher / request / queue state below belongs to the communicator's
  // channel. Gated entry points already hold this lock (recursive); internal
  // callers (collectives, persistent starts) acquire it here.
  Vci& v = *vcis_[c.vci];
  std::lock_guard<std::recursive_mutex> lk(v.mu);
  // Message-lifetime start edge (0 when this message is not sampled): eager
  // sends record at local completion below; rendezvous sends carry it in the
  // slot until the CTS completion site (progress.cpp).
  const std::uint64_t lat_t0 = v.lat.arm() ? obs::lat_now_ns() : 0;
  // Simulated-CPU mode: execute the modeled software path length as time.
  rt::spin_for_ns(sim_send_ns_);
  v.busy_instr.fetch_add(send_instr_, std::memory_order_relaxed);
  // Datatype resolution: real work either way; the modeled charge is the
  // "redundant runtime check" that link-time inlining folds away for
  // compile-time-constant datatypes.
  const std::size_t bytes = dt::packed_size(types_, p.count, p.dt);
  if (!cfg_.ipo) {
    cost::charge(cost::Category::Redundant, cost::kRedundantDatatypeResolve);
    cost::charge(cost::Category::Redundant, cost::kRedundantGenericCompletion);
  }

  // Match-bit construction. A communicator carrying the Section-3.6 info
  // hint drops source/tag bits like _NOMATCH, but pays the hint-lookup
  // branch the paper's alternative-design discussion predicts.
  rt::MatchMode match_mode = p.match_mode;
  if (match_mode == rt::MatchMode::Full &&
      c.hint_arrival_order.load(std::memory_order_relaxed) && !p.coll_plane) {
    cost::charge(cost::Category::MandMatch, cost::kMandHintBranch);
    match_mode = rt::MatchMode::ArrivalOrder;
  }
  cost::charge(cost::Category::MandMatch, match_mode == rt::MatchMode::Full
                                            ? cost::kMandMatchBits
                                            : cost::kMandMatchCtxLoad);

  const std::uint32_t ctx = c.ctx + (p.coll_plane ? 1u : 0u);
  const bool eager = bytes <= eager_threshold_;

  v.counters.inc(eager ? obs::VciCtr::SendEager : obs::VciCtr::SendRdv);
  if (p.noreq) v.counters.inc(obs::VciCtr::SendNoreq);
  const auto vci8 = static_cast<std::uint8_t>(c.vci);
  std::uint64_t tseq = 0;
  if (cfg_.trace) {
    tseq = obs::trace::next_seq();
    trace_msg(obs::trace::Ev::SendPost, tseq, vci8, dst_world, p.tag, bytes);
  }

  Request r = kRequestNull;
  RequestSlot* slot = nullptr;
  if (!p.noreq) {
    cost::charge(cost::Category::MandRequest, cost::kMandRequestAlloc);
    r = alloc_request(eager ? RequestSlot::Kind::SendEager : RequestSlot::Kind::SendRdv,
                      c.vci);
    slot = req_slot(r);
  } else {
    cost::charge(cost::Category::MandRequest, cost::kMandCompletionCounter);
  }

  if (eager) {
    rt::Packet* pkt = rt::PacketPool::alloc();
    pkt->hdr.kind = rt::PacketKind::Eager;
    pkt->hdr.match_mode = match_mode;
    pkt->hdr.ctx = ctx;
    pkt->hdr.vci = static_cast<std::uint8_t>(c.vci);
    pkt->hdr.src_comm_rank = c.rank;
    pkt->hdr.src_world = self_;
    pkt->hdr.tag = p.tag;
    pkt->hdr.total_bytes = bytes;
    if (types_.is_contiguous(p.dt)) {
      pkt->set_payload(p.buf, bytes);
    } else {
      pkt->payload.resize(bytes);
      dt::pack(types_, p.buf, p.count, p.dt, pkt->payload.data());
    }
    pkt->hdr.seq = tseq;
    cost::charge(cost::Category::MandInject, cost::kMandInjectResidual);
    inject_or_queue(v, dst_world, pkt);
    if (slot != nullptr) {
      // Eager sends complete locally on buffering.
      slot->complete.store(true, std::memory_order_release);
    }
    if (lat_t0 != 0) {
      v.lat.record(obs::LatPath::SendEager, obs::lat_now_ns() - lat_t0);
    }
    if (tseq != 0) {
      trace_msg(obs::trace::Ev::Complete, tseq, vci8, dst_world, p.tag, bytes);
    }
  } else {
    // Rendezvous: we track the origin side with a request even for _NOREQ
    // sends (hidden from the user; completed in bulk by comm_waitall).
    if (slot == nullptr) {
      r = alloc_request(RequestSlot::Kind::SendRdv, c.vci);
      slot = req_slot(r);
      slot->noreq = true;
      comm_obj(p.comm)->noreq_outstanding.fetch_add(1, std::memory_order_release);
    }
    slot->sbuf = p.buf;
    slot->scount = p.count;
    slot->sdt = p.dt;
    slot->dst_world = dst_world;
    slot->comm = p.comm;
    slot->bytes_expected = bytes;
    slot->trace_seq = tseq;
    slot->post_ts = lat_t0;
    slot->bound_peer = dst_world;
    slot->bound_tag = p.tag;

    rt::Packet* rts = rt::PacketPool::alloc();
    rts->hdr.kind = rt::PacketKind::Rts;
    rts->hdr.match_mode = match_mode;
    rts->hdr.ctx = ctx;
    rts->hdr.vci = static_cast<std::uint8_t>(c.vci);
    rts->hdr.src_comm_rank = c.rank;
    rts->hdr.src_world = self_;
    rts->hdr.tag = p.tag;
    rts->hdr.total_bytes = bytes;
    rts->hdr.origin_req = r;
    rts->hdr.seq = tseq;
    // Offer zero-copy handoff when the backend can write into a registered
    // remote buffer; the receiver accepts (CTS carries an rkey) only if its
    // own buffer is contiguous and large enough. The send buffer need not be
    // contiguous: the CTS handler packs first and writes the packed image.
    rts->hdr.zcopy = fabric_.rdma_capable() ? 1 : 0;
    cost::charge(cost::Category::MandInject, cost::kMandInjectResidual);
    inject_or_queue(v, dst_world, rts);
  }

  sends_issued_.fetch_add(1, std::memory_order_relaxed);
  if (req != nullptr) *req = p.noreq ? kRequestNull : r;
  return Err::Success;
}

void Engine::inject_or_queue(Vci& v, Rank dst_world, rt::Packet* pkt) {
  if (device_ == DeviceKind::Orig) {
    // CH3-style software send queue: the operation is staged and issued by
    // the progress engine, costing an extra queue transit. Each channel has
    // its own queue, drained under its own lock (held here). The Inject trace
    // event is recorded when drain_send_queue pushes it onto the fabric.
    v.counters.inc(obs::VciCtr::SendQueued);
    v.send_queue.push_back(
        QueuedSend{pkt, dst_world, v.lat.arm() ? obs::lat_now_ns() : 0});
    v.send_q_depth.fetch_add(1, std::memory_order_release);
  } else {
    if (cfg_.trace && pkt->hdr.seq != 0) {
      trace_msg(obs::trace::Ev::Inject, pkt->hdr.seq, pkt->hdr.vci, dst_world,
                pkt->hdr.tag, pkt->hdr.total_bytes);
    }
    fabric_.inject(self_, dst_world, pkt);
  }
}

// ---------------------------------------------------------------------------
// Receive posting
// ---------------------------------------------------------------------------

Err Engine::post_recv_common(void* buf, int count, Datatype dt, Rank src, Tag tag, Comm comm,
                             rt::MatchMode mode, bool coll_plane, Request* req) {
  CommObject* c = comm_obj(comm);
  if (c == nullptr) return Err::Comm;
  if (req == nullptr) return Err::Request;

  // The matcher and request slot belong to the communicator's channel.
  Vci& v = *vcis_[c->vci];
  std::lock_guard<std::recursive_mutex> lk(v.mu);

  Request r = alloc_request(RequestSlot::Kind::Recv, c->vci);
  RequestSlot* slot = req_slot(r);
  const std::uint64_t lat_t0 = v.lat.arm() ? obs::lat_now_ns() : 0;
  slot->rbuf = buf;
  slot->rcount = count;
  slot->rdt = dt;
  slot->bytes_expected = dt::packed_size(types_, count, dt);
  slot->post_ts = lat_t0;
  slot->bound_peer = src;
  slot->bound_tag = tag;
  slot->comm = comm;

  if (src == kProcNull) {
    slot->status.source = kProcNull;
    slot->status.tag = kAnyTag;
    slot->status.byte_count = 0;
    slot->complete.store(true, std::memory_order_release);
    *req = r;
    return Err::Success;
  }

  match::PostedRecv pr;
  pr.ctx = c->ctx + (coll_plane ? 1u : 0u);
  pr.src = src;
  pr.tag = tag;
  pr.mode = mode;
  pr.buf = buf;
  pr.count = count;
  pr.dt = dt;
  pr.req = r;
  pr.posted_ns = lat_t0;

  v.counters.inc(obs::VciCtr::RecvPosted);
  if (cfg_.trace) {
    trace_msg(obs::trace::Ev::RecvPost, 0, static_cast<std::uint8_t>(c->vci), src, tag,
              slot->bytes_expected);
  }
  std::uint64_t arrived_ns = 0;
  if (auto pkt = v.matcher.post(pr, &arrived_ns)) {
    // Late receive: the message was already waiting on the unexpected queue.
    v.counters.dec(obs::VciCtr::UnexpectedDepth);
    if (lat_t0 != 0 && arrived_ns != 0) {
      v.lat.record(obs::LatPath::UnexpectedWait,
                   lat_t0 > arrived_ns ? lat_t0 - arrived_ns : 0);
    }
    // Causal wait classification at the unexpected-hit site: the match
    // happens now, at post time, so `now == posted`. The decomposition then
    // naturally attributes the whole interval since the send stamp to this
    // receiver being late (unless the sender's credit stall dominates).
    obs::Wait wait = obs::Wait::None;
    std::uint64_t wait_ns = 0;
    if (lat_t0 != 0 && (*pkt)->hdr.send_ns != 0) {
      wait = obs::classify_wait(lat_t0, (*pkt)->hdr.send_ns, (*pkt)->hdr.stall_ns,
                                lat_t0, &wait_ns);
      v.waits.record(wait, wait_ns);
    }
    if (cfg_.trace && (*pkt)->hdr.seq != 0) {
      trace_msg(obs::trace::Ev::Match, (*pkt)->hdr.seq, (*pkt)->hdr.vci,
                (*pkt)->hdr.src_world, (*pkt)->hdr.tag, (*pkt)->hdr.total_bytes, wait,
                wait_ns);
    }
    deliver_match(pr, *pkt);
  } else {
    v.counters.inc(obs::VciCtr::PostedDepth);
    v.counters.high_water(obs::VciCtr::PostedHwm, v.matcher.posted_depth());
  }
  *req = r;
  return Err::Success;
}

}  // namespace lwmpi
