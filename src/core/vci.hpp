// Virtual communication interface (VCI): one independent channel of the
// per-rank communication engine.
//
// The paper's central finding is that MPI overhead concentrates in shared
// fast-path state; MPICH's follow-on VCI work removes the sharing by giving
// each channel its own matching engine, send queue, and lock, selected per
// communicator. We mirror that design: an Engine owns BuildConfig::vcis()
// of these, communicators map to one at creation, and progress() sweeps them
// as a poll set. Traffic on different VCIs never touches the same mutex,
// match list, request pool, or fabric lane.
//
// Locking discipline:
//   * Every state field of a Vci (matcher, send_queue, and all request-slot
//     contents other than the completion flags) is guarded by `mu`.
//   * `mu` is recursive so the device path may be entered both from a gated
//     MPI entry point (lock already held) and from internal callers
//     (collectives, persistent starts) that lock on demand.
//   * progress() acquires via try_lock: a contended lane is being progressed
//     by its holder already, so skipping it is both safe and what makes the
//     sweep non-blocking.
//   * Request completion crosses threads without the lock: `complete` is an
//     atomic released by the progress side and acquired by wait/test.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "common/stable_table.hpp"
#include "common/types.hpp"
#include "core/config.hpp"
#include "cost/meter.hpp"
#include "cost/model.hpp"
#include "match/match.hpp"
#include "obs/causal.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "runtime/packet.hpp"

namespace lwmpi {

namespace obs {
struct VciSnapshot;  // obs/introspect.hpp
}

// Request handle payload layout: [ vci:3 | slot:25 ] inside the 28 handle
// payload bits.
inline constexpr std::uint32_t kRequestVciShift = 25;
inline constexpr std::uint32_t kRequestIdxMask = (1u << kRequestVciShift) - 1;

inline constexpr Request make_request_handle(std::uint32_t vci, std::uint32_t idx) {
  return make_handle(HandleKind::Request, (vci << kRequestVciShift) | idx);
}
inline constexpr std::uint32_t request_vci(Request r) {
  return handle_payload(r) >> kRequestVciShift;
}
inline constexpr std::uint32_t request_idx(Request r) {
  return handle_payload(r) & kRequestIdxMask;
}

// Per-operation request state. Lives in a VCI's pool; storage is stable (the
// pool never moves slots), so pointers remain valid across pool growth.
struct RequestSlot {
  enum class Kind : std::uint8_t {
    None,
    SendEager,
    SendRdv,
    Recv,
    RecvRdv,
    PersistentSend,
    PersistentRecv,
  };
  Kind kind = Kind::None;
  // Cross-thread lifecycle flags. `active` publishes allocation (release) and
  // gates handle lookups (acquire); `complete` publishes the status fields
  // written by the progress side to the waiting side.
  std::atomic<bool> active{false};
  std::atomic<bool> complete{false};
  Err op_error = Err::Success;
  Status status;
  // send state (rendezvous)
  const void* sbuf = nullptr;
  int scount = 0;
  Datatype sdt = kDatatypeNull;
  Rank dst_world = 0;
  Comm comm = kCommNull;  // for _NOREQ accounting on rdv completion
  bool noreq = false;
  // recv state
  void* rbuf = nullptr;
  int rcount = 0;
  Datatype rdt = kDatatypeNull;
  std::uint64_t bytes_expected = 0;
  std::uint64_t bytes_received = 0;
  std::vector<std::byte> stage;  // rendezvous staging for noncontiguous recv
  bool stage_used = false;
  // persistent-request state: bound arguments + the in-flight inner request
  Rank bound_peer = kProcNull;
  Tag bound_tag = 0;
  Request inner = kRequestNull;
  // Lifecycle-trace message id (0 when tracing is off): lets the rendezvous
  // completion sites, which run long after the initiating call, attribute
  // their events to the originating message chain.
  std::uint64_t trace_seq = 0;
  // obs::lat_now_ns() at issue/post time (0 when stamping is off): the start
  // edge for the message-lifetime histograms and the age source for the
  // introspection/watchdog tier.
  std::uint64_t post_ts = 0;

  // Reset a recycled slot to its freshly-constructed state (the atomics are
  // managed by alloc/release, not here).
  void reset() {
    kind = Kind::None;
    complete.store(false, std::memory_order_relaxed);
    op_error = Err::Success;
    status = Status{};
    sbuf = nullptr;
    scount = 0;
    sdt = kDatatypeNull;
    dst_world = 0;
    comm = kCommNull;
    noreq = false;
    rbuf = nullptr;
    rcount = 0;
    rdt = kDatatypeNull;
    bytes_expected = 0;
    bytes_received = 0;
    stage.clear();
    stage_used = false;
    bound_peer = kProcNull;
    bound_tag = 0;
    inner = kRequestNull;
    trace_seq = 0;
    post_ts = 0;
  }
};

// Orig-device software send queue entry.
struct QueuedSend {
  rt::Packet* pkt = nullptr;
  Rank dst_world = 0;
  std::uint64_t enq_ts = 0;  // obs::lat_now_ns() at enqueue (0 = unstamped)
};

// Per-VCI request pool: stable slot storage plus a spinlocked free list. The
// spinlock (not the VCI mutex) guards the free list so wait/test can release
// a completed request without serializing against the channel.
struct RequestPool {
  common::StableTable<RequestSlot> slots;
  std::vector<std::uint32_t> free_list;
  std::atomic_flag free_lock = ATOMIC_FLAG_INIT;

  void lock() noexcept {
    while (free_lock.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() noexcept { free_lock.clear(std::memory_order_release); }
};

struct Vci {
  // Guards matcher, send_queue, and request-slot bodies on this channel.
  mutable std::recursive_mutex mu;
  match::MatchEngine matcher;
  std::deque<QueuedSend> send_queue;  // orig device
  // Lock-free mirror of send_queue.size(): lets the progress sweep skip an
  // idle channel (no queued sends, no pending fabric traffic) without taking
  // `mu`. Written under the lock, read without it; a stale read only delays
  // the drain by one sweep.
  std::atomic<std::uint32_t> send_q_depth{0};
  RequestPool pool;
  // Simulated-clock accounting: modeled instructions executed on this channel
  // (software path lengths + contention penalties). The VCI scaling benchmark
  // derives its aggregate message rate from the busiest lane's total, the
  // same way the paper converts Table-1 instruction counts into rates.
  std::atomic<std::uint64_t> busy_instr{0};
  // Diagnostics: how often the gate missed its uncontended fast path.
  std::atomic<std::uint64_t> contended{0};
  // Always-on observability counters for this channel, exposed through the
  // MPI_T-style pvar registry (obs/pvar.hpp). The block is cache-line padded
  // so two channels' counters never false-share.
  obs::VciCounters counters;
  // Message-lifetime latency histograms for this channel, one per
  // instrumented path (obs/histogram.hpp). Recorded under `mu` (single
  // writer); merged across channels by the pvar/report readers.
  obs::VciLatency lat;
  // Wait-state histograms for this channel, one log2 histogram per causal
  // classification (obs/causal.hpp). Same writer discipline as `lat`.
  obs::WaitBlock waits;

  // Introspection hook (obs/introspect.cpp): copy this channel's posted,
  // unexpected, and send-queue contents into `out`, with entry ages relative
  // to `now` (an obs::lat_now_ns() value). Caller must hold `mu`.
  void snapshot_into(obs::VciSnapshot& out, std::uint64_t now) const;
};

// Per-operation thread gate, scoped to one VCI. Replaces the engine-global
// recursive mutex: operations on different VCIs proceed concurrently. The
// base charge (kThreadGatePt2pt / kThreadGateRma) models the uncontended
// runtime thread-safety check and is paid whenever thread_safety is built in,
// exactly as before; the *contended* surcharge is paid only when try_lock
// misses, so the cost meter charges the slow acquisition only on contended
// VCIs.
class VciGate {
 public:
  VciGate(Vci* v, bool enabled, std::uint32_t charge) : v_(v), on_(enabled) {
    if (!on_) return;
    cost::charge(cost::Category::ThreadGate, charge);
    if (v_ == nullptr) return;  // invalid handle: checks below will reject
    if (!v_->mu.try_lock()) {
      cost::charge(cost::Category::ThreadGate, cost::kThreadGateContended);
      v_->contended.fetch_add(1, std::memory_order_relaxed);
      v_->counters.inc(obs::VciCtr::GateContended);
      v_->busy_instr.fetch_add(cost::kThreadGateContended, std::memory_order_relaxed);
      v_->mu.lock();
    }
  }
  ~VciGate() {
    if (on_ && v_ != nullptr) v_->mu.unlock();
  }
  VciGate(const VciGate&) = delete;
  VciGate& operator=(const VciGate&) = delete;

 private:
  Vci* v_;
  bool on_;
};

}  // namespace lwmpi
