// Progress engine: drains the device send queue, polls the fabric, routes
// packets through matching, and runs the rendezvous protocol state machine.
#include <algorithm>
#include <cstring>

#include "core/engine.hpp"
#include "runtime/backoff.hpp"
#include "runtime/world.hpp"

namespace lwmpi {

namespace {
// Rendezvous payload segment size. Large messages are streamed in segments so
// the receiver can overlap unpacking with delivery (and so the protocol state
// machine is exercised by more than one packet).
constexpr std::size_t kRdvSegmentBytes = 256 * 1024;
}  // namespace

void Engine::progress() {
  drain_send_queue();
  while (rt::Packet* pkt = fabric_.poll(self_)) handle_packet(pkt);
  drain_send_queue();  // flush replies generated while handling packets
}

void Engine::handle_packet(rt::Packet* pkt) {
  switch (pkt->hdr.kind) {
    case rt::PacketKind::Eager:
    case rt::PacketKind::Rts:
      // Simulated-CPU mode: receive-side device path length as time.
      rt::spin_for_ns(sim_recv_ns_);
      if (auto pr = matcher_.arrive(pkt)) {
        deliver_match(*pr, pkt);
      }
      // else: retained on the unexpected queue; ownership transferred.
      return;
    case rt::PacketKind::Cts:
      handle_rdv_cts(pkt);
      return;
    case rt::PacketKind::RdvData:
      handle_rdv_data(pkt);
      return;
    case rt::PacketKind::Barrier:
      rt::PacketPool::free(pkt);
      return;
    default:
      handle_am(pkt);
      return;
  }
}

void Engine::deliver_match(const match::PostedRecv& r, rt::Packet* pkt) {
  RequestSlot* slot = req_slot(r.req);
  if (slot == nullptr) {  // cancelled in the meantime; drop the payload
    rt::PacketPool::free(pkt);
    return;
  }
  if (pkt->hdr.kind == rt::PacketKind::Eager) {
    complete_recv_from_eager(*slot, pkt);
  } else {
    start_rendezvous_recv(*slot, r.req, pkt);
  }
}

void Engine::complete_recv_from_eager(RequestSlot& slot, rt::Packet* pkt) {
  const std::uint64_t total = pkt->hdr.total_bytes;
  const std::uint64_t capacity = dt::packed_size(types_, slot.rcount, slot.rdt);
  const std::uint64_t take = std::min(total, capacity);
  if (total > capacity) slot.op_error = Err::Truncate;
  if (take != 0) {
    dt::unpack(types_, pkt->payload.data(), take, slot.rbuf, slot.rcount, slot.rdt);
  }
  slot.status.source = pkt->hdr.src_comm_rank;
  slot.status.tag = pkt->hdr.tag;
  slot.status.byte_count = take;
  slot.status.error = slot.op_error;
  slot.complete = true;
  rt::PacketPool::free(pkt);
}

void Engine::start_rendezvous_recv(RequestSlot& slot, Request req_handle, rt::Packet* rts) {
  slot.kind = RequestSlot::Kind::RecvRdv;
  const std::uint64_t total = rts->hdr.total_bytes;
  const std::uint64_t capacity = dt::packed_size(types_, slot.rcount, slot.rdt);
  if (total > capacity) slot.op_error = Err::Truncate;
  slot.status.source = rts->hdr.src_comm_rank;
  slot.status.tag = rts->hdr.tag;
  // Contiguous receives that fit stream straight into the user buffer;
  // noncontiguous or truncated receives stage and unpack on completion.
  slot.stage_used = !types_.is_contiguous(slot.rdt) || total > capacity;
  if (slot.stage_used) slot.stage.resize(total);
  slot.bytes_expected = total;
  slot.bytes_received = 0;

  rt::Packet* cts = rt::PacketPool::alloc();
  cts->hdr.kind = rt::PacketKind::Cts;
  cts->hdr.src_world = self_;
  cts->hdr.origin_req = rts->hdr.origin_req;
  cts->hdr.target_req = req_handle;
  fabric_.inject(self_, rts->hdr.src_world, cts);
  rt::PacketPool::free(rts);
}

void Engine::handle_rdv_cts(rt::Packet* pkt) {
  RequestSlot* slot = req_slot(pkt->hdr.origin_req);
  if (slot == nullptr || slot->kind != RequestSlot::Kind::SendRdv) {
    rt::PacketPool::free(pkt);
    return;
  }
  const Rank dst = pkt->hdr.src_world;
  const std::uint32_t target_req = pkt->hdr.target_req;
  const std::uint64_t total = slot->bytes_expected;

  // Source view: contiguous streams from the user buffer, noncontiguous
  // packs once and streams from the staging copy.
  std::vector<std::byte> packed;
  const std::byte* src = nullptr;
  if (types_.is_contiguous(slot->sdt)) {
    src = static_cast<const std::byte*>(slot->sbuf);
  } else {
    packed.resize(total);
    dt::pack(types_, slot->sbuf, slot->scount, slot->sdt, packed.data());
    src = packed.data();
  }

  std::uint64_t offset = 0;
  do {
    const std::uint64_t n = std::min<std::uint64_t>(kRdvSegmentBytes, total - offset);
    rt::Packet* d = rt::PacketPool::alloc();
    d->hdr.kind = rt::PacketKind::RdvData;
    d->hdr.src_world = self_;
    d->hdr.target_req = target_req;
    d->hdr.offset = offset;
    d->hdr.total_bytes = total;
    d->set_payload(src + offset, n);
    fabric_.inject(self_, dst, d);
    offset += n;
  } while (offset < total);

  // Origin-side completion: the data is out of the user buffer.
  if (slot->noreq) {
    if (CommObject* c = comm_obj(slot->comm)) {
      c->noreq_outstanding -= 1;
    }
    release_request(pkt->hdr.origin_req);
  } else {
    slot->complete = true;
  }
  rt::PacketPool::free(pkt);
}

void Engine::handle_rdv_data(rt::Packet* pkt) {
  RequestSlot* slot = req_slot(pkt->hdr.target_req);
  if (slot == nullptr || slot->kind != RequestSlot::Kind::RecvRdv) {
    rt::PacketPool::free(pkt);
    return;
  }
  const std::size_t n = pkt->payload.size();
  if (slot->stage_used) {
    std::memcpy(slot->stage.data() + pkt->hdr.offset, pkt->payload.data(), n);
  } else {
    std::memcpy(static_cast<std::byte*>(slot->rbuf) + pkt->hdr.offset, pkt->payload.data(),
                n);
  }
  slot->bytes_received += n;
  if (slot->bytes_received >= slot->bytes_expected) {
    const std::uint64_t capacity = dt::packed_size(types_, slot->rcount, slot->rdt);
    const std::uint64_t take = std::min(slot->bytes_expected, capacity);
    if (slot->stage_used && take != 0) {
      dt::unpack(types_, slot->stage.data(), take, slot->rbuf, slot->rcount, slot->rdt);
    }
    slot->stage.clear();
    slot->stage.shrink_to_fit();
    slot->status.byte_count = take;
    slot->status.error = slot->op_error;
    slot->complete = true;
  }
  rt::PacketPool::free(pkt);
}

}  // namespace lwmpi
