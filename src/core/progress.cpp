// Progress engine: sweeps the VCI poll set. Each channel independently drains
// its device send queue, polls its fabric lane, routes packets through its
// matching engine, and runs the rendezvous protocol state machine.
#include <algorithm>
#include <cstring>

#include "core/engine.hpp"
#include "cost/meter.hpp"
#include "cost/model.hpp"
#include "runtime/backoff.hpp"
#include "runtime/world.hpp"

namespace lwmpi {

namespace {
// Rendezvous payload segment size. Large messages are streamed in segments so
// the receiver can overlap unpacking with delivery (and so the protocol state
// machine is exercised by more than one packet).
constexpr std::size_t kRdvSegmentBytes = 256 * 1024;
}  // namespace

void Engine::progress() {
  const int n = static_cast<int>(vcis_.size());
  // Whole-rank idle fast path: when no channel has queued sends and no lane
  // has undelivered traffic, a progress call is a handful of atomic loads.
  // This keeps the single-threaded wait spin as cheap as the pre-VCI engine
  // regardless of how many channels are configured.
  bool queued = false;
  for (int v = 0; v < n; ++v) {
    if (vcis_[static_cast<std::size_t>(v)]->send_q_depth.load(
            std::memory_order_relaxed) != 0) {
      queued = true;
      break;
    }
  }
  if (!queued && fabric_.pending_any(self_) == 0) {
    eng_counters_.inc(obs::EngCtr::ProgressIdle);
    return;
  }
  eng_counters_.inc(obs::EngCtr::ProgressSwept);
  for (int v = 0; v < n; ++v) {
    Vci& vc = *vcis_[static_cast<std::size_t>(v)];
    // Per-lane fast skip: two lock-free loads decide "nothing can be waiting
    // on this channel" -- no queued device sends, no pending fabric traffic.
    if (vc.send_q_depth.load(std::memory_order_relaxed) == 0 &&
        fabric_.pending(self_, v) == 0) {
      continue;
    }
    // A contended channel is already being progressed by its lock holder;
    // skipping it is what keeps the sweep non-blocking.
    std::unique_lock<std::recursive_mutex> lk(vc.mu, std::try_to_lock);
    if (!lk.owns_lock()) continue;
    drain_send_queue(vc);
    while (rt::Packet* pkt = fabric_.poll(self_, v)) {
      handle_packet(vc, pkt);
      // The packet is out of the lane (delivered, retained on the unexpected
      // queue, or freed), so its eager-ring slot is free again. No-op on
      // backends without credit flow control.
      fabric_.credit_return(self_, v);
    }
    drain_send_queue(vc);  // flush replies generated while handling packets
  }
}

void Engine::handle_packet(Vci& v, rt::Packet* pkt) {
  if (cfg_.trace && pkt->hdr.seq != 0) {
    trace_msg(obs::trace::Ev::Deliver, pkt->hdr.seq, pkt->hdr.vci, pkt->hdr.src_world,
              pkt->hdr.tag, pkt->hdr.total_bytes);
  }
  switch (pkt->hdr.kind) {
    case rt::PacketKind::Eager:
    case rt::PacketKind::Rts:
      // Simulated-CPU mode: receive-side device path length as time.
      rt::spin_for_ns(sim_recv_ns_);
      v.busy_instr.fetch_add(recv_instr_, std::memory_order_relaxed);
      // Receive-side attribution: comparing the arrived header against the
      // posted-receive queue re-pays the match-bit construction of 3.6.
      cost::charge(cost::Category::MandMatch, cost::kMandMatchBits);
      if (auto pr = v.matcher.arrive(pkt)) {
        v.counters.inc(obs::VciCtr::PostedMatch);
        v.counters.dec(obs::VciCtr::PostedDepth);
        // Causal wait classification at the posted-match site: decompose the
        // interval between the first-ready side and now using the packet's
        // causal header (send stamp + credit stall) against the receive's
        // post stamp. Sampled: posted_ns is 0 outside the latency sample.
        obs::Wait wait = obs::Wait::None;
        std::uint64_t wait_ns = 0;
        if (pr->posted_ns != 0 && pkt->hdr.send_ns != 0) {
          wait = obs::classify_wait(pr->posted_ns, pkt->hdr.send_ns, pkt->hdr.stall_ns,
                                    obs::lat_now_ns(), &wait_ns);
          v.waits.record(wait, wait_ns);
        }
        if (cfg_.trace && pkt->hdr.seq != 0) {
          trace_msg(obs::trace::Ev::Match, pkt->hdr.seq, pkt->hdr.vci,
                    pkt->hdr.src_world, pkt->hdr.tag, pkt->hdr.total_bytes, wait,
                    wait_ns);
        }
        deliver_match(*pr, pkt);
      } else {
        // Retained on the unexpected queue; ownership transferred. Track the
        // gauge + high-water under the channel lock (single writer).
        v.counters.inc(obs::VciCtr::PostedMiss);
        v.counters.inc(obs::VciCtr::UnexpectedDepth);
        v.counters.high_water(obs::VciCtr::UnexpectedHwm, v.matcher.unexpected_depth());
      }
      return;
    case rt::PacketKind::Cts:
      handle_rdv_cts(pkt);
      return;
    case rt::PacketKind::RdvData:
      handle_rdv_data(pkt);
      return;
    case rt::PacketKind::RdvDone:
      handle_rdv_done(pkt);
      return;
    case rt::PacketKind::Barrier:
      rt::PacketPool::free(pkt);
      return;
    default:
      handle_am(pkt);
      return;
  }
}

void Engine::deliver_match(const match::PostedRecv& r, rt::Packet* pkt) {
  RequestSlot* slot = req_slot(r.req);
  if (slot == nullptr) {  // cancelled in the meantime; drop the payload
    rt::PacketPool::free(pkt);
    return;
  }
  if (pkt->hdr.kind == rt::PacketKind::Eager) {
    complete_recv_from_eager(*vcis_[request_vci(r.req)], *slot, pkt);
  } else {
    start_rendezvous_recv(*slot, r.req, pkt);
  }
}

void Engine::complete_recv_from_eager(Vci& v, RequestSlot& slot, rt::Packet* pkt) {
  const std::uint64_t total = pkt->hdr.total_bytes;
  const std::uint64_t capacity = dt::packed_size(types_, slot.rcount, slot.rdt);
  const std::uint64_t take = std::min(total, capacity);
  if (total > capacity) slot.op_error = Err::Truncate;
  if (take != 0) {
    dt::unpack(types_, pkt->payload.data(), take, slot.rbuf, slot.rcount, slot.rdt);
  }
  slot.status.source = pkt->hdr.src_comm_rank;
  slot.status.tag = pkt->hdr.tag;
  slot.status.byte_count = take;
  slot.status.error = slot.op_error;
  // Flipping a receive to observable-complete is request-state bookkeeping
  // (3.5), the receive-side dual of the sender's completion counter.
  cost::charge(cost::Category::MandRequest, cost::kMandCompletionCounter);
  slot.complete.store(true, std::memory_order_release);
  if (slot.post_ts != 0) {
    v.lat.record(obs::LatPath::RecvEager, obs::lat_now_ns() - slot.post_ts);
  }
  if (cfg_.trace && pkt->hdr.seq != 0) {
    trace_msg(obs::trace::Ev::Complete, pkt->hdr.seq, pkt->hdr.vci, pkt->hdr.src_world,
              pkt->hdr.tag, take);
  }
  rt::PacketPool::free(pkt);
}

void Engine::start_rendezvous_recv(RequestSlot& slot, Request req_handle, rt::Packet* rts) {
  slot.kind = RequestSlot::Kind::RecvRdv;
  const std::uint64_t total = rts->hdr.total_bytes;
  const std::uint64_t capacity = dt::packed_size(types_, slot.rcount, slot.rdt);
  if (total > capacity) slot.op_error = Err::Truncate;
  slot.status.source = rts->hdr.src_comm_rank;
  slot.status.tag = rts->hdr.tag;
  // Contiguous receives that fit stream straight into the user buffer;
  // noncontiguous or truncated receives stage and unpack on completion.
  slot.stage_used = !types_.is_contiguous(slot.rdt) || total > capacity;
  if (slot.stage_used) slot.stage.resize(total);
  slot.bytes_expected = total;
  slot.bytes_received = 0;
  slot.trace_seq = rts->hdr.seq;

  rt::Packet* cts = rt::PacketPool::alloc();
  cts->hdr.kind = rt::PacketKind::Cts;
  cts->hdr.seq = rts->hdr.seq;  // keep the handshake on the message's chain
  cts->hdr.vci = rts->hdr.vci;  // replies stay on the initiator's channel
  cts->hdr.src_world = self_;
  cts->hdr.origin_req = rts->hdr.origin_req;
  cts->hdr.target_req = req_handle;
  // Zero-copy handoff: when the sender offered it (RTS zcopy), the backend
  // supports registered-buffer writes, and the data lands contiguously in the
  // user buffer with no truncation, register the receive buffer and hand its
  // rkey back in the CTS. The sender then rdma_writes straight into the user
  // buffer -- no RdvData packets, no staging copy -- and signals with RdvDone.
  if (rts->hdr.zcopy != 0 && total != 0 && !slot.stage_used && fabric_.rdma_capable()) {
    const std::uint64_t miss0 = fabric_.net_stat(net::NetStat::RegCacheMiss, self_);
    const std::uint64_t t0 = obs::lat_now_ns();
    cts->hdr.rkey = fabric_.register_memory(self_, slot.rbuf, total);
    // A cache miss just paid the pin cost on the message's critical path;
    // record it as a reg-cache-miss wait (caller holds the VCI lock).
    if (fabric_.net_stat(net::NetStat::RegCacheMiss, self_) != miss0) {
      vcis_[request_vci(req_handle)]->waits.record(obs::Wait::RegCacheMiss,
                                                   obs::lat_now_ns() - t0);
    }
  }
  // The CTS is a cross-rank hop of this message's chain: record its Inject so
  // the critical-path walk (and the Perfetto flow arrows) can follow
  // RTS -> CTS -> data back through the handshake.
  if (cfg_.trace && cts->hdr.seq != 0) {
    trace_msg(obs::trace::Ev::Inject, cts->hdr.seq, cts->hdr.vci, rts->hdr.src_world,
              rts->hdr.tag, 0);
  }
  fabric_.inject(self_, rts->hdr.src_world, cts);
  rt::PacketPool::free(rts);
}

void Engine::handle_rdv_cts(rt::Packet* pkt) {
  RequestSlot* slot = req_slot(pkt->hdr.origin_req);
  if (slot == nullptr || slot->kind != RequestSlot::Kind::SendRdv) {
    rt::PacketPool::free(pkt);
    return;
  }
  const Rank dst = pkt->hdr.src_world;
  const std::uint32_t target_req = pkt->hdr.target_req;
  const std::uint64_t total = slot->bytes_expected;

  // Source view: contiguous streams from the user buffer, noncontiguous
  // packs once and streams from the staging copy.
  std::vector<std::byte> packed;
  const std::byte* src = nullptr;
  if (types_.is_contiguous(slot->sdt)) {
    src = static_cast<const std::byte*>(slot->sbuf);
  } else {
    packed.resize(total);
    dt::pack(types_, slot->sbuf, slot->scount, slot->sdt, packed.data());
    src = packed.data();
  }

  if (pkt->hdr.rkey != 0 && fabric_.rdma_capable()) {
    // Zero-copy path: the receiver registered its user buffer and sent the
    // rkey. Register our side (cached), write the whole message in one
    // one-sided operation, and trail it with an RdvDone control packet that
    // carries the data's wire time so completion cannot overtake delivery.
    const std::uint64_t miss0 = fabric_.net_stat(net::NetStat::RegCacheMiss, self_);
    const std::uint64_t t0 = obs::lat_now_ns();
    fabric_.register_memory(self_, src, total);
    if (fabric_.net_stat(net::NetStat::RegCacheMiss, self_) != miss0) {
      vcis_[request_vci(pkt->hdr.origin_req)]->waits.record(obs::Wait::RegCacheMiss,
                                                            obs::lat_now_ns() - t0);
    }
    fabric_.rdma_write(self_, dst, src, pkt->hdr.rkey, total);
    // The one-sided landing bypasses the packet path entirely; give it its
    // own lifecycle event so zcopy messages keep balanced spans.
    if (cfg_.trace && slot->trace_seq != 0) {
      trace_msg(obs::trace::Ev::ZcopyWrite, slot->trace_seq, pkt->hdr.vci, dst, 0,
                total);
    }
    rt::Packet* done = rt::PacketPool::alloc();
    done->hdr.kind = rt::PacketKind::RdvDone;
    done->hdr.seq = slot->trace_seq;
    done->hdr.vci = pkt->hdr.vci;
    done->hdr.src_world = self_;
    done->hdr.target_req = target_req;
    done->hdr.total_bytes = total;
    if (cfg_.trace && slot->trace_seq != 0) {
      trace_msg(obs::trace::Ev::Inject, slot->trace_seq, done->hdr.vci, dst, 0, total);
    }
    fabric_.inject(self_, dst, done);
  } else {
    std::uint64_t offset = 0;
    do {
      const std::uint64_t n = std::min<std::uint64_t>(kRdvSegmentBytes, total - offset);
      rt::Packet* d = rt::PacketPool::alloc();
      d->hdr.kind = rt::PacketKind::RdvData;
      d->hdr.seq = slot->trace_seq;
      d->hdr.vci = pkt->hdr.vci;  // data segments follow the handshake's channel
      d->hdr.src_world = self_;
      d->hdr.target_req = target_req;
      d->hdr.offset = offset;
      d->hdr.total_bytes = total;
      d->set_payload(src + offset, n);
      if (cfg_.trace && slot->trace_seq != 0) {
        trace_msg(obs::trace::Ev::Inject, slot->trace_seq, d->hdr.vci, dst, 0, n);
      }
      fabric_.inject(self_, dst, d);
      offset += n;
    } while (offset < total);
  }

  // Origin-side completion: the data is out of the user buffer.
  if (cfg_.trace && slot->trace_seq != 0) {
    trace_msg(obs::trace::Ev::Complete, slot->trace_seq, pkt->hdr.vci, dst, 0, total);
  }
  if (slot->post_ts != 0) {
    Vci& v = *vcis_[request_vci(pkt->hdr.origin_req)];
    v.lat.record(obs::LatPath::SendRdv, obs::lat_now_ns() - slot->post_ts);
  }
  if (slot->noreq) {
    if (CommObject* c = comm_obj(slot->comm)) {
      c->noreq_outstanding.fetch_sub(1, std::memory_order_release);
    }
    release_request(pkt->hdr.origin_req);
  } else {
    // Populate the status like every other completion path does: waitall /
    // testall surface per-request statuses, and a send that completed via the
    // CTS handshake must not leave error/byte_count stale.
    slot->status.error = slot->op_error;
    slot->status.byte_count = total;
    cost::charge(cost::Category::MandRequest, cost::kMandCompletionCounter);
    slot->complete.store(true, std::memory_order_release);
  }
  rt::PacketPool::free(pkt);
}

void Engine::handle_rdv_data(rt::Packet* pkt) {
  RequestSlot* slot = req_slot(pkt->hdr.target_req);
  if (slot == nullptr || slot->kind != RequestSlot::Kind::RecvRdv) {
    rt::PacketPool::free(pkt);
    return;
  }
  const std::size_t n = pkt->payload.size();
  if (slot->stage_used) {
    std::memcpy(slot->stage.data() + pkt->hdr.offset, pkt->payload.data(), n);
  } else {
    std::memcpy(static_cast<std::byte*>(slot->rbuf) + pkt->hdr.offset, pkt->payload.data(),
                n);
  }
  slot->bytes_received += n;
  if (slot->bytes_received >= slot->bytes_expected) {
    const std::uint64_t capacity = dt::packed_size(types_, slot->rcount, slot->rdt);
    const std::uint64_t take = std::min(slot->bytes_expected, capacity);
    if (slot->stage_used && take != 0) {
      dt::unpack(types_, slot->stage.data(), take, slot->rbuf, slot->rcount, slot->rdt);
    }
    // Free the staging buffer on the error (truncation) path too, not just
    // the clean one: the request may sit unreaped for a while.
    slot->stage.clear();
    slot->stage.shrink_to_fit();
    slot->status.byte_count = take;
    slot->status.error = slot->op_error;
    cost::charge(cost::Category::MandRequest, cost::kMandCompletionCounter);
    slot->complete.store(true, std::memory_order_release);
    if (slot->post_ts != 0) {
      Vci& v = *vcis_[request_vci(pkt->hdr.target_req)];
      v.lat.record(obs::LatPath::RecvRdv, obs::lat_now_ns() - slot->post_ts);
    }
    if (cfg_.trace && slot->trace_seq != 0) {
      trace_msg(obs::trace::Ev::Complete, slot->trace_seq, pkt->hdr.vci,
                pkt->hdr.src_world, 0, take);
    }
  }
  rt::PacketPool::free(pkt);
}

void Engine::handle_rdv_done(rt::Packet* pkt) {
  // Zero-copy rendezvous completion: the payload already landed in the user
  // buffer via rdma_write (the MPSC hand-off of this packet orders those
  // writes before us); only the request bookkeeping remains.
  RequestSlot* slot = req_slot(pkt->hdr.target_req);
  if (slot == nullptr || slot->kind != RequestSlot::Kind::RecvRdv) {
    rt::PacketPool::free(pkt);
    return;
  }
  slot->bytes_received = slot->bytes_expected;
  slot->status.byte_count = slot->bytes_expected;
  slot->status.error = slot->op_error;
  cost::charge(cost::Category::MandRequest, cost::kMandCompletionCounter);
  slot->complete.store(true, std::memory_order_release);
  if (slot->post_ts != 0) {
    Vci& v = *vcis_[request_vci(pkt->hdr.target_req)];
    v.lat.record(obs::LatPath::RecvRdv, obs::lat_now_ns() - slot->post_ts);
  }
  if (cfg_.trace && slot->trace_seq != 0) {
    trace_msg(obs::trace::Ev::Complete, slot->trace_seq, pkt->hdr.vci,
              pkt->hdr.src_world, 0, slot->bytes_expected);
  }
  rt::PacketPool::free(pkt);
}

}  // namespace lwmpi
