// Engine core: construction, communicator table plumbing, request pool,
// validation helpers, completion (wait/test), and datatype wrappers.
#include "core/engine.hpp"

#include <algorithm>

#include "cost/meter.hpp"
#include "cost/model.hpp"
#include "obs/recorder.hpp"
#include "obs/watchdog.hpp"
#include "runtime/backoff.hpp"
#include "runtime/world.hpp"

namespace lwmpi {

Engine::Engine(World& world, Rank world_rank)
    : world_(world),
      fabric_(world.fabric()),
      self_(world_rank),
      device_(world.options().device),
      cfg_(world.options().build),
      eager_threshold_(world.options().eager_threshold) {
  const bool orig = device_ == DeviceKind::Orig;
  send_instr_ =
      cost::modeled_isend_total(orig, cfg_.error_checking, cfg_.thread_safety, cfg_.ipo);
  // Receive-side handling walks a comparable device path (matching, request
  // completion); approximate it with the send-path total.
  recv_instr_ = send_instr_;
  const std::uint32_t put_instr =
      cost::modeled_put_total(orig, cfg_.error_checking, cfg_.thread_safety, cfg_.ipo);
  const double k = world.options().sim_ns_per_instruction;
  if (k > 0) {
    sim_send_ns_ = static_cast<std::uint64_t>(send_instr_ * k);
    sim_recv_ns_ = static_cast<std::uint64_t>(recv_instr_ * k);
    sim_put_ns_ = static_cast<std::uint64_t>(put_instr * k);
  }
  const int n = cfg_.vcis();
  vcis_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    vcis_.push_back(std::make_unique<Vci>());
    vcis_.back()->counters.enabled = cfg_.counters;
    vcis_.back()->lat.enabled = cfg_.counters;
    const int lat_shift =
        cfg_.lat_sample_shift < 0 ? 0 : (cfg_.lat_sample_shift > 20 ? 20 : cfg_.lat_sample_shift);
    vcis_.back()->lat.sample_mask = (1u << lat_shift) - 1;
    vcis_.back()->matcher.set_stamp_arrivals(cfg_.counters);
  }
  eng_counters_.enabled = cfg_.counters;
  if (obs::Profiler* p = world.profiler(); p != nullptr) prof_ = &p->rank(self_);
  if (obs::Recorder* rec = world.recorder(); rec != nullptr) rec_ = &rec->rank(self_);
  init_world_comms();
}

Engine::~Engine() {
  for (auto& v : vcis_) {
    for (QueuedSend& q : v->send_queue) rt::PacketPool::free(q.pkt);
  }
}

int Engine::world_size() const noexcept { return fabric_.nranks(); }

// ---------------------------------------------------------------------------
// Communicator table
// ---------------------------------------------------------------------------

std::uint32_t Engine::assign_vci(std::uint32_t slot_idx, std::uint32_t ctx) const noexcept {
  const std::uint32_t n = static_cast<std::uint32_t>(vcis_.size());
  // The predefined fast-path handles kComm1..kComm4 pin to distinct channels
  // so an application thread per predefined comm never shares a VCI (up to n).
  const std::uint32_t first = handle_payload(kComm1);
  if (slot_idx >= first && slot_idx < first + static_cast<std::uint32_t>(kNumPredefinedComms)) {
    return (slot_idx - first) % n;
  }
  // Context ids come in (pt2pt, coll) pairs, so hash the pair index: both
  // planes of one communicator land on the same channel, and every rank
  // computes the same mapping from the collectively-agreed context id.
  return (ctx >> 1) % n;
}

Vci* Engine::vci_for(Comm comm) noexcept {
  const CommObject* c = comm_obj(comm);
  return c == nullptr ? nullptr : vcis_[c->vci].get();
}

void Engine::init_world_comms() {
  for (std::uint32_t i = 0; i < kFirstDynamicCommSlot; ++i) comms_.emplace();
  CommObject& w = *comms_.at(handle_payload(kCommWorld));
  w.ctx = kWorldCtx;
  w.vci = assign_vci(handle_payload(kCommWorld), kWorldCtx);
  world_vci_ = static_cast<int>(w.vci);
  w.rank = self_;
  w.map = comm::RankMap::identity(world_size());
  w.in_use.store(true, std::memory_order_release);

  CommObject& s = *comms_.at(handle_payload(kCommSelf));
  s.ctx = kSelfCtx;
  s.vci = assign_vci(handle_payload(kCommSelf), kSelfCtx);
  s.rank = 0;
  s.map = comm::RankMap::offset_map(1, self_);
  s.in_use.store(true, std::memory_order_release);

  for (int i = 0; i < kNumPredefinedComms; ++i) {
    comms_.at(handle_payload(kComm1) + static_cast<std::uint32_t>(i))->predefined_slot = true;
  }
}

Engine::CommObject* Engine::comm_obj(Comm comm) noexcept {
  if (handle_kind(comm) != HandleKind::Comm) return nullptr;
  CommObject* c = comms_.at(handle_payload(comm));
  if (c == nullptr || !c->in_use.load(std::memory_order_acquire)) return nullptr;
  return c;
}

const Engine::CommObject* Engine::comm_obj(Comm comm) const noexcept {
  return const_cast<Engine*>(this)->comm_obj(comm);
}

Comm Engine::alloc_comm_slot() {
  std::lock_guard<std::mutex> lk(comm_mu_);
  for (std::uint32_t i = kFirstDynamicCommSlot; i < comms_.size(); ++i) {
    CommObject& c = *comms_.at(i);
    if (!c.in_use.load(std::memory_order_acquire) && !c.reserved && !c.predefined_slot) {
      c.reserved = true;
      return make_handle(HandleKind::Comm, i);
    }
  }
  const std::uint32_t idx = comms_.emplace();
  comms_.at(idx)->reserved = true;
  return make_handle(HandleKind::Comm, idx);
}

Err Engine::build_comm(Comm slot_handle, std::vector<Rank> world_ranks, std::uint32_t ctx) {
  CommObject& c = *comms_.at(handle_payload(slot_handle));
  const Rank my = [&] {
    for (std::size_t i = 0; i < world_ranks.size(); ++i) {
      if (world_ranks[i] == self_) return static_cast<Rank>(i);
    }
    return kUndefined;
  }();
  if (my == kUndefined) return Err::Internal;
  c.ctx = ctx;
  c.vci = assign_vci(handle_payload(slot_handle), ctx);
  c.rank = my;
  c.map = comm::RankMap::from_list(std::move(world_ranks));
  c.noreq_outstanding.store(0, std::memory_order_relaxed);
  // Scrub state a previous occupant of this slot may have left behind.
  c.cart.reset();
  c.info.clear();
  c.hint_arrival_order.store(false, std::memory_order_relaxed);
  c.in_use.store(true, std::memory_order_release);
  return Err::Success;
}

int Engine::rank(Comm comm) const {
  const CommObject* c = comm_obj(comm);
  return c == nullptr ? kUndefined : c->rank;
}

int Engine::size(Comm comm) const {
  const CommObject* c = comm_obj(comm);
  return c == nullptr ? kUndefined : c->map.size();
}

bool Engine::comm_valid(Comm comm) const noexcept { return comm_obj(comm) != nullptr; }

int Engine::vci_of(Comm comm) const noexcept {
  const CommObject* c = comm_obj(comm);
  return c == nullptr ? -1 : static_cast<int>(c->vci);
}

std::uint64_t Engine::vci_busy_instr(int vci) const noexcept {
  return vcis_[static_cast<std::size_t>(vci)]->busy_instr.load(std::memory_order_relaxed);
}

std::uint64_t Engine::vci_contended(int vci) const noexcept {
  return vcis_[static_cast<std::size_t>(vci)]->contended.load(std::memory_order_relaxed);
}

std::size_t Engine::posted_depth(int vci) const noexcept {
  const Vci& v = *vcis_[static_cast<std::size_t>(vci)];
  std::lock_guard<std::recursive_mutex> lk(v.mu);
  return v.matcher.posted_depth();
}

std::size_t Engine::unexpected_depth(int vci) const noexcept {
  const Vci& v = *vcis_[static_cast<std::size_t>(vci)];
  std::lock_guard<std::recursive_mutex> lk(v.mu);
  return v.matcher.unexpected_depth();
}

std::size_t Engine::posted_depth() const noexcept {
  std::size_t n = 0;
  for (int v = 0; v < num_vcis(); ++v) n += posted_depth(v);
  return n;
}

std::size_t Engine::unexpected_depth() const noexcept {
  std::size_t n = 0;
  for (int v = 0; v < num_vcis(); ++v) n += unexpected_depth(v);
  return n;
}

// ---------------------------------------------------------------------------
// Validation helpers. Each performs the real check *and* charges its modeled
// instruction cost; both are skipped when error checking is disabled, which
// is what makes the Figure-2 build matrix reproducible.
// ---------------------------------------------------------------------------

Err Engine::check_comm(Comm comm) const noexcept {
  cost::charge(cost::Category::ErrCheck, cost::kErrCommHandle);
  return comm_obj(comm) != nullptr ? Err::Success : Err::Comm;
}

Err Engine::check_rank(const CommObject& c, Rank r, bool allow_proc_null,
                       bool allow_any) const noexcept {
  cost::charge(cost::Category::ErrCheck, cost::kErrRankRange);
  if (allow_proc_null && r == kProcNull) return Err::Success;
  if (allow_any && r == kAnySource) return Err::Success;
  return (r >= 0 && r < c.map.size()) ? Err::Success : Err::Rank;
}

Err Engine::check_tag(Tag t, bool allow_any) const noexcept {
  cost::charge(cost::Category::ErrCheck, cost::kErrTagRange);
  if (allow_any && t == kAnyTag) return Err::Success;
  return (t >= 0 && t <= kTagUb) ? Err::Success : Err::Tag;
}

Err Engine::check_count(int count) const noexcept {
  cost::charge(cost::Category::ErrCheck, cost::kErrCount);
  return count >= 0 ? Err::Success : Err::Count;
}

Err Engine::check_buffer(const void* buf, int count) const noexcept {
  cost::charge(cost::Category::ErrCheck, cost::kErrBuffer);
  return (buf != nullptr || count == 0) ? Err::Success : Err::Buffer;
}

Err Engine::check_datatype(Datatype dt) const noexcept {
  cost::charge(cost::Category::ErrCheck, cost::kErrDatatype);
  return types_.committed_or_builtin(dt) ? Err::Success : Err::Datatype;
}

Err Engine::check_win(Win win) const noexcept {
  cost::charge(cost::Category::ErrCheck, cost::kErrWinHandle);
  return win_obj(win) != nullptr ? Err::Success : Err::Win;
}

// ---------------------------------------------------------------------------
// Request pool (one per VCI; handles encode [vci | slot index])
// ---------------------------------------------------------------------------

Request Engine::alloc_request(RequestSlot::Kind kind, std::uint32_t vci) {
  RequestPool& pool = vcis_[vci]->pool;
  std::uint32_t idx;
  pool.lock();
  if (!pool.free_list.empty()) {
    idx = pool.free_list.back();
    pool.free_list.pop_back();
    pool.unlock();
  } else {
    pool.unlock();
    idx = pool.slots.emplace();
  }
  RequestSlot& s = *pool.slots.at(idx);
  s.reset();
  s.kind = kind;
  s.active.store(true, std::memory_order_release);
  live_requests_.fetch_add(1, std::memory_order_relaxed);
  return make_request_handle(vci, idx);
}

RequestSlot* Engine::req_slot(Request r) noexcept {
  if (handle_kind(r) != HandleKind::Request) return nullptr;
  const std::uint32_t vci = request_vci(r);
  if (vci >= vcis_.size()) return nullptr;
  RequestSlot* s = vcis_[vci]->pool.slots.at(request_idx(r));
  if (s == nullptr || !s->active.load(std::memory_order_acquire)) return nullptr;
  return s;
}

bool Engine::slot_ready(const RequestSlot& s) noexcept {
  if (s.kind == RequestSlot::Kind::PersistentSend ||
      s.kind == RequestSlot::Kind::PersistentRecv) {
    if (s.inner == kRequestNull) return true;
    const RequestSlot* in = req_slot(s.inner);
    return in == nullptr || in->complete.load(std::memory_order_acquire);
  }
  return s.complete.load(std::memory_order_acquire);
}

void Engine::release_request(Request r) noexcept {
  RequestPool& pool = vcis_[request_vci(r)]->pool;
  const std::uint32_t idx = request_idx(r);
  RequestSlot& s = *pool.slots.at(idx);
  // Return staging memory eagerly: an errored (e.g. truncated) rendezvous may
  // leave the buffer allocated past the completion path.
  s.stage.clear();
  s.stage.shrink_to_fit();
  s.kind = RequestSlot::Kind::None;
  s.active.store(false, std::memory_order_release);
  pool.lock();
  pool.free_list.push_back(idx);
  pool.unlock();
  live_requests_.fetch_sub(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Completion
// ---------------------------------------------------------------------------

Err Engine::wait(Request* req, Status* st) {
  obs::ProfScope psc(prof_, obs::Callsite::Wait,
                     (prof_ != nullptr && req != nullptr && *req != kRequestNull)
                         ? static_cast<int>(request_vci(*req))
                         : 0,
                     0);
  // Link resolved at entry: wait_impl nulls the handle on completion.
  const Request h = rec_link(req);
  obs::RecScope rsc(rec_, obs::Callsite::Wait, 0, 0,
                    h != kRequestNull ? static_cast<std::uint8_t>(request_vci(h)) : 0, 0,
                    h);
  return wait_impl(req, st);
}

Err Engine::wait_impl(Request* req, Status* st) {
  if (req == nullptr) return Err::Request;
  if (*req == kRequestNull) {
    if (st != nullptr) *st = Status{};
    return Err::Success;
  }
  if (cfg_.error_checking) {
    cost::charge(cost::Category::ErrCheck, cost::kErrRequestHandle);
    if (req_slot(*req) == nullptr) return Err::Request;
  }
  RequestSlot* s = req_slot(*req);
  if (s == nullptr) return Err::Request;
  if (s->kind == RequestSlot::Kind::PersistentSend ||
      s->kind == RequestSlot::Kind::PersistentRecv) {
    // Persistent handles complete through their in-flight inner operation and
    // return to the inactive state instead of being released.
    if (s->inner == kRequestNull) {
      if (st != nullptr) *st = Status{};  // inactive: trivially complete
      return Err::Success;
    }
    return wait_impl(&s->inner, st);
  }
  // Always advance the engine at least once: on the orig device an eager
  // send completes locally while its packet still sits in the software send
  // queue, and progress is what pushes it onto the fabric.
  progress();
  if (!s->complete.load(std::memory_order_acquire)) {
    // Only annotate once we actually block: the common already-complete case
    // (and the latency-gated ping-pong path) never touches the annotation.
    obs::BlockScope block(*this, "Wait");
    rt::Backoff backoff;
    while (!s->complete.load(std::memory_order_acquire)) {
      progress();
      if (!s->complete.load(std::memory_order_acquire)) backoff.pause();
    }
  }
  const Err op_err = s->op_error;
  if (st != nullptr) *st = s->status;
  release_request(*req);
  *req = kRequestNull;
  return op_err;
}

Err Engine::test(Request* req, bool* flag, Status* st) {
  obs::ProfScope psc(prof_, obs::Callsite::Test,
                     (prof_ != nullptr && req != nullptr && *req != kRequestNull)
                         ? static_cast<int>(request_vci(*req))
                         : 0,
                     0);
  // Success-gated: only a test that actually completed a request is a
  // replayable op, so the record is emitted at exit. The handle must be
  // captured first (completion nulls it), and the body lives in test_impl
  // because the persistent path recurses.
  const Request h = rec_link(req);
  obs::RecScope rsc(rec_);
  const Err e = test_impl(req, flag, st);
  if (ok(e) && flag != nullptr && *flag && h != kRequestNull) {
    rsc.record_exit(static_cast<std::uint8_t>(obs::Callsite::Test), 0, 0,
                    static_cast<std::uint8_t>(request_vci(h)), 0, h);
  }
  return e;
}

Err Engine::test_impl(Request* req, bool* flag, Status* st) {
  if (req == nullptr || flag == nullptr) return Err::Request;
  if (*req == kRequestNull) {
    *flag = true;
    if (st != nullptr) *st = Status{};
    return Err::Success;
  }
  RequestSlot* s = req_slot(*req);
  if (s == nullptr) return Err::Request;
  if (s->kind == RequestSlot::Kind::PersistentSend ||
      s->kind == RequestSlot::Kind::PersistentRecv) {
    if (s->inner == kRequestNull) {
      *flag = true;
      if (st != nullptr) *st = Status{};
      return Err::Success;
    }
    return test_impl(&s->inner, flag, st);
  }
  progress();
  if (!s->complete.load(std::memory_order_acquire)) {
    *flag = false;
    return Err::Success;
  }
  *flag = true;
  const Err op_err = s->op_error;
  if (st != nullptr) *st = s->status;
  release_request(*req);
  *req = kRequestNull;
  return op_err;
}

Err Engine::waitall(std::span<Request> reqs, std::span<Status> sts) {
  obs::ProfScope psc(prof_, obs::Callsite::Waitall, 0, 0);
  // Header record (bytes = array length) plus one WaitItem follower per live
  // request, pushed at entry while the handles still resolve to their issuers.
  obs::RecScope rsc(rec_, obs::Callsite::Waitall, 0, 0, 0,
                    static_cast<std::uint32_t>(reqs.size()));
  if (rsc.armed()) {
    for (const Request& r : reqs) {
      if (r != kRequestNull) rsc.aux(obs::kRecKindWaitItem, 0, 0, 0, 0, r);
    }
  }
  Err first = Err::Success;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    Status st;
    const Err e = wait(&reqs[i], &st);
    if (i < sts.size()) sts[i] = st;
    if (!ok(e) && ok(first)) first = e;
  }
  return first;
}

Err Engine::waitany(std::span<Request> reqs, int* index, Status* st) {
  obs::ProfScope psc(prof_, obs::Callsite::Waitany, 0, 0);
  obs::RecScope rsc(rec_);  // success-gated: recorded when a request completes
  if (index == nullptr) return Err::Arg;
  bool any_active = false;
  for (const Request& r : reqs) {
    if (r != kRequestNull) any_active = true;
  }
  if (!any_active) {
    *index = kUndefined;
    if (st != nullptr) *st = Status{};
    return Err::Success;
  }
  obs::BlockScope block(*this, "Waitany");
  rt::Backoff backoff;
  for (;;) {
    progress();
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (reqs[i] == kRequestNull) continue;
      RequestSlot* s = req_slot(reqs[i]);
      if (s == nullptr) return Err::Request;
      if (slot_ready(*s)) {
        *index = static_cast<int>(i);
        rsc.record_exit(static_cast<std::uint8_t>(obs::Callsite::Waitany), 0, 0, 0, 0,
                        reqs[i]);
        return wait(&reqs[i], st);
      }
    }
    backoff.pause();
  }
}

Err Engine::testany(std::span<Request> reqs, int* index, bool* flag, Status* st) {
  obs::ProfScope psc(prof_, obs::Callsite::Testany, 0, 0);
  obs::RecScope rsc(rec_);  // success-gated, like test()
  if (index == nullptr || flag == nullptr) return Err::Arg;
  progress();
  bool any_active = false;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (reqs[i] == kRequestNull) continue;
    any_active = true;
    RequestSlot* s = req_slot(reqs[i]);
    if (s == nullptr) return Err::Request;
    if (slot_ready(*s)) {
      *index = static_cast<int>(i);
      *flag = true;
      rsc.record_exit(static_cast<std::uint8_t>(obs::Callsite::Testany), 0, 0, 0, 0,
                      reqs[i]);
      return wait(&reqs[i], st);
    }
  }
  *flag = !any_active;  // all-null arrays complete trivially
  *index = kUndefined;
  if (st != nullptr) *st = Status{};
  return Err::Success;
}

Err Engine::testall(std::span<Request> reqs, bool* flag, std::span<Status> sts) {
  obs::ProfScope psc(prof_, obs::Callsite::Testall, 0, 0);
  obs::RecScope rsc(rec_);  // success-gated: recorded only when all complete
  if (flag == nullptr) return Err::Arg;
  progress();
  for (const Request& r : reqs) {
    if (r == kRequestNull) continue;
    RequestSlot* s = req_slot(r);
    if (s == nullptr) return Err::Request;
    if (!slot_ready(*s)) {
      *flag = false;
      return Err::Success;
    }
  }
  *flag = true;
  if (rsc.armed()) {
    rsc.record_exit(static_cast<std::uint8_t>(obs::Callsite::Testall), 0, 0, 0,
                    static_cast<std::uint32_t>(reqs.size()));
    for (const Request& r : reqs) {
      if (r != kRequestNull) rsc.aux(obs::kRecKindWaitItem, 0, 0, 0, 0, r);
    }
  }
  return waitall(reqs, sts);  // everything is complete: reap without blocking
}

Err Engine::cancel(Request* req) {
  obs::ProfScope psc(prof_, obs::Callsite::Cancel,
                     (prof_ != nullptr && req != nullptr && *req != kRequestNull)
                         ? static_cast<int>(request_vci(*req))
                         : 0,
                     0);
  const Request h = rec_link(req);
  obs::RecScope rsc(rec_, obs::Callsite::Cancel, 0, 0,
                    h != kRequestNull ? static_cast<std::uint8_t>(request_vci(h)) : 0, 0,
                    h);
  if (req == nullptr || *req == kRequestNull) return Err::Request;
  RequestSlot* s = req_slot(*req);
  if (s == nullptr) return Err::Request;
  // Serialize against the owning channel: the matcher may be handing this
  // request a packet right now.
  Vci& v = *vcis_[request_vci(*req)];
  std::lock_guard<std::recursive_mutex> lk(v.mu);
  if (s->complete.load(std::memory_order_acquire)) return Err::Success;  // wait() will reap it
  if (s->kind == RequestSlot::Kind::Recv && v.matcher.cancel(*req)) {
    v.counters.dec(obs::VciCtr::PostedDepth);
    s->op_error = Err::Success;
    s->status.source = kUndefined;
    s->status.tag = kUndefined;
    s->complete.store(true, std::memory_order_release);
    return Err::Success;
  }
  return Err::NotSupported;  // in-flight sends are not cancellable here
}

// ---------------------------------------------------------------------------
// Probe
// ---------------------------------------------------------------------------

Err Engine::iprobe(Rank src, Tag tag, Comm comm, bool* flag, Status* st) {
  obs::ProfScope psc(prof_, obs::Callsite::Iprobe, prof_vci(comm), 0);
  obs::RecScope rsc(rec_);  // success-gated: only a hit is a replayable op
  if (flag == nullptr) return Err::Arg;
  if (cfg_.error_checking) {
    if (Err e = check_comm(comm); !ok(e)) return e;
  }
  const CommObject* c = comm_obj(comm);
  if (c == nullptr) return Err::Comm;
  if (cfg_.error_checking) {
    if (Err e = check_rank(*c, src, false, true); !ok(e)) return e;
    if (Err e = check_tag(tag, true); !ok(e)) return e;
  }
  progress();
  Vci& v = *vcis_[c->vci];
  std::lock_guard<std::recursive_mutex> lk(v.mu);
  const rt::PacketHeader* h = v.matcher.probe(c->ctx, src, tag);
  *flag = h != nullptr;
  if (h != nullptr && st != nullptr) {
    st->source = h->src_comm_rank;
    st->tag = h->tag;
    st->byte_count = h->total_bytes;
    st->error = Err::Success;
  }
  if (h != nullptr) {
    rsc.record_exit(static_cast<std::uint8_t>(obs::Callsite::Iprobe), src, tag,
                    rec_vci(comm), 0);
  }
  return Err::Success;
}

Err Engine::probe(Rank src, Tag tag, Comm comm, Status* st) {
  obs::ProfScope psc(prof_, obs::Callsite::Probe, prof_vci(comm), 0);
  obs::RecScope rsc(rec_, obs::Callsite::Probe, src, tag, rec_vci(comm), 0);
  bool flag = false;
  obs::BlockScope block(*this, "Probe");
  rt::Backoff backoff;
  for (;;) {
    if (Err e = iprobe(src, tag, comm, &flag, st); !ok(e)) return e;
    if (flag) return Err::Success;
    backoff.pause();
  }
}

// ---------------------------------------------------------------------------
// Watchdog liveness signals
// ---------------------------------------------------------------------------

std::uint64_t Engine::activity_fingerprint() const noexcept {
  // Mix each liveness counter through a splitmix-style step so two counters
  // moving in opposite directions (a delivery completing a request) can never
  // cancel to the same fingerprint -- a plain sum could read as "no progress".
  std::uint64_t fp = 0;
  const auto mix = [&fp](std::uint64_t x) {
    fp = (fp ^ (x + 0x9E3779B97F4A7C15ull)) * 0xBF58476D1CE4E5B9ull;
  };
  mix(live_requests_.load(std::memory_order_relaxed));
  mix(sends_issued_.load(std::memory_order_relaxed));
  mix(fabric_.injected(self_));
  mix(fabric_.delivered(self_));
  return fp;
}

bool Engine::has_outstanding_work() const noexcept {
  if (live_requests_.load(std::memory_order_relaxed) != 0) return true;
  if (fabric_.pending_any(self_) != 0) return true;
  for (const auto& v : vcis_) {
    if (v->send_q_depth.load(std::memory_order_relaxed) != 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Datatype wrappers
// ---------------------------------------------------------------------------

Err Engine::type_contiguous(int count, Datatype oldtype, Datatype* newtype) {
  return types_.contiguous(count, oldtype, newtype);
}
Err Engine::type_vector(int count, int blocklength, int stride, Datatype oldtype,
                        Datatype* newtype) {
  return types_.vector(count, blocklength, stride, oldtype, newtype);
}
Err Engine::type_indexed(std::span<const int> blocklengths, std::span<const int> displacements,
                         Datatype oldtype, Datatype* newtype) {
  return types_.indexed(blocklengths, displacements, oldtype, newtype);
}
Err Engine::type_create_struct(std::span<const int> blocklengths,
                               std::span<const std::int64_t> displacements,
                               std::span<const Datatype> types, Datatype* newtype) {
  return types_.create_struct(blocklengths, displacements, types, newtype);
}
Err Engine::type_create_hvector(int count, int blocklength, std::int64_t stride_bytes,
                                Datatype oldtype, Datatype* newtype) {
  return types_.hvector(count, blocklength, stride_bytes, oldtype, newtype);
}
Err Engine::type_create_hindexed(std::span<const int> blocklengths,
                                 std::span<const std::int64_t> displacements_bytes,
                                 Datatype oldtype, Datatype* newtype) {
  return types_.hindexed(blocklengths, displacements_bytes, oldtype, newtype);
}
Err Engine::type_create_resized(Datatype oldtype, std::int64_t lb, std::int64_t extent,
                                Datatype* newtype) {
  return types_.create_resized(oldtype, lb, extent, newtype);
}
Err Engine::type_dup(Datatype oldtype, Datatype* newtype) {
  return types_.dup(oldtype, newtype);
}
Err Engine::type_commit(Datatype* dt) { return types_.commit(dt); }
Err Engine::type_free(Datatype* dt) { return types_.free_type(dt); }
Err Engine::type_size(Datatype dt, std::size_t* size) const { return types_.get_size(dt, size); }
Err Engine::type_get_extent(Datatype dt, std::int64_t* lb, std::int64_t* extent) const {
  return types_.get_extent(dt, lb, extent);
}

// ---------------------------------------------------------------------------
// Blocking pt2pt built on the nonblocking primitives
// ---------------------------------------------------------------------------

// The blocking wrappers call the _impl primitives directly: the outermost-wins
// depth guard would suppress the nested scopes anyway, but skipping them also
// skips their per-call ProfScope argument computation and TLS traffic (the
// pingpong overhead gate measures exactly this path).

Err Engine::send(const void* buf, int count, Datatype dt, Rank dest, Tag tag, Comm comm) {
  obs::ProfScope psc(prof_, obs::Callsite::Send, prof_vci(comm), prof_bytes(count, dt));
  obs::RecScope rsc(rec_, obs::Callsite::Send, dest, tag, rec_vci(comm),
                    rec_bytes(count, dt));
  Request r = kRequestNull;
  if (Err e = isend_impl(buf, count, dt, dest, tag, comm, &r); !ok(e)) return e;
  return wait_impl(&r, nullptr);
}

Err Engine::recv(void* buf, int count, Datatype dt, Rank src, Tag tag, Comm comm, Status* st) {
  obs::ProfScope psc(prof_, obs::Callsite::Recv, prof_vci(comm), prof_bytes(count, dt));
  obs::RecScope rsc(rec_, obs::Callsite::Recv, src, tag, rec_vci(comm),
                    rec_bytes(count, dt));
  Request r = kRequestNull;
  if (Err e = irecv_impl(buf, count, dt, src, tag, comm, &r); !ok(e)) return e;
  return wait_impl(&r, st);
}

Err Engine::sendrecv(const void* sbuf, int scount, Datatype sdt, Rank dest, Tag stag,
                     void* rbuf, int rcount, Datatype rdt, Rank src, Tag rtag, Comm comm,
                     Status* st) {
  obs::ProfScope psc(prof_, obs::Callsite::Sendrecv, prof_vci(comm),
                     prof_bytes(scount, sdt) + prof_bytes(rcount, rdt));
  // Two records: the send half under the Sendrecv kind, then the recv half as
  // a follower -- replay re-issues recv-first exactly like the body below.
  obs::RecScope rsc(rec_, obs::Callsite::Sendrecv, dest, stag, rec_vci(comm),
                    rec_bytes(scount, sdt));
  if (rsc.armed()) {
    rsc.aux(obs::kRecKindSendrecvRecv, src, rtag, rec_vci(comm), rec_bytes(rcount, rdt));
  }
  Request rr = kRequestNull;
  Request sr = kRequestNull;
  if (Err e = irecv_impl(rbuf, rcount, rdt, src, rtag, comm, &rr); !ok(e)) return e;
  if (Err e = isend_impl(sbuf, scount, sdt, dest, stag, comm, &sr); !ok(e)) return e;
  if (Err e = wait_impl(&sr, nullptr); !ok(e)) return e;
  return wait_impl(&rr, st);
}

}  // namespace lwmpi
