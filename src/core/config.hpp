// Build-matrix configuration for the MPI stack.
//
// The paper's Figure 2 sweeps MPICH builds: default, no error checking, no
// thread-safety check, and link-time-inlined (ipo). We model the same matrix
// as a runtime configuration: a disabled feature skips both its real work and
// its modeled instruction charge, and "ipo" suppresses the modeled
// function-call and redundant-runtime-check overheads (the C++ fast path is
// already physically inlined).
#pragma once

#include <string>

namespace lwmpi {

enum class DeviceKind {
  Ch4,   // the paper's contribution: flow-through lightweight device
  Orig,  // CH3-style layered baseline ("MPICH/Original")
};

// Upper bound on virtual communication interfaces per rank; request handles
// reserve 3 payload bits for the VCI id.
inline constexpr int kMaxVcis = 8;

struct BuildConfig {
  bool error_checking = true;  // argument/object validation
  bool thread_safety = true;   // runtime thread gate
  bool ipo = false;            // link-time inlining of the MPI entry points
  // Virtual communication interfaces: independent channel/match/progress
  // state selected per communicator (MPICH's VCI design). 1 reproduces the
  // monolithic engine; more enable concurrent progress across communicators.
  int num_vcis = 4;
  // Observability tiers (src/obs/). `counters` keeps the always-on pvar
  // counter updates (a branch + relaxed fetch_add per site; bench_obs_overhead
  // bounds the cost at <3% of 1-byte ping-pong latency). `trace` additionally
  // records message-lifecycle events into per-thread rings for Chrome-trace
  // export; it is compiled in but off by default.
  bool counters = true;
  bool trace = false;
  // Latency-histogram sampling: 1 in 2^lat_sample_shift messages per channel
  // gets TSC-stamped at post/match/complete. A stamp is ~20ns where the TSC
  // is virtualized, and a 1-byte transfer takes up to four of them, so
  // stamping every message busts the <3% bench_obs_overhead budget; sampling
  // 1/64 keeps the histogram statistically faithful at negligible cost. Set
  // to 0 to stamp every message (tests, hang postmortems).
  int lat_sample_shift = 6;

  // Clamped VCI count used by both World (fabric lanes) and Engine (channels).
  int vcis() const {
    if (num_vcis < 1) return 1;
    if (num_vcis > kMaxVcis) return kMaxVcis;
    return num_vcis;
  }

  static BuildConfig dflt() { return {}; }
  static BuildConfig no_err() { return {.error_checking = false}; }
  static BuildConfig no_err_single() {
    return {.error_checking = false, .thread_safety = false};
  }
  static BuildConfig no_err_single_ipo() {
    return {.error_checking = false, .thread_safety = false, .ipo = true};
  }

  std::string label() const {
    if (!error_checking && !thread_safety && ipo) return "no-err-single-ipo";
    if (!error_checking && !thread_safety) return "no-err-single";
    if (!error_checking) return "no-err";
    return "default";
  }
};

inline const char* to_string(DeviceKind d) {
  return d == DeviceKind::Ch4 ? "mpich/ch4" : "mpich/original";
}

}  // namespace lwmpi
