// Persistent communication requests (MPI_SEND_INIT / MPI_RECV_INIT /
// MPI_START / MPI_REQUEST_FREE).
//
// A persistent request validates and binds its argument list once; each
// MPI_START re-issues the bound operation through the device without
// re-walking the MPI-layer checks -- the classic amortization for iterative
// codes (the paper's stencil/Nek use case), complementary to the Section-3
// proposals.
#include "core/engine.hpp"
#include "obs/recorder.hpp"
#include "runtime/world.hpp"

namespace lwmpi {

Err Engine::send_init(const void* buf, int count, Datatype dt, Rank dest, Tag tag,
                      Comm comm, Request* req) {
  obs::ProfScope psc(prof_, obs::Callsite::SendInit, prof_vci(comm),
                     prof_bytes(count, dt));
  obs::RecScope rsc(rec_, obs::Callsite::SendInit, dest, tag, rec_vci(comm),
                    rec_bytes(count, dt));
  if (req == nullptr) return Err::Request;
  if (cfg_.error_checking) {
    if (Err e = check_comm(comm); !ok(e)) return e;
    const CommObject* c = comm_obj(comm);
    if (Err e = check_rank(*c, dest, true, false); !ok(e)) return e;
    if (Err e = check_tag(tag, false); !ok(e)) return e;
    if (Err e = check_count(count); !ok(e)) return e;
    if (Err e = check_buffer(buf, count); !ok(e)) return e;
    if (Err e = check_datatype(dt); !ok(e)) return e;
  }
  const CommObject* c = comm_obj(comm);
  if (c == nullptr) return Err::Comm;
  const Request r = alloc_request(RequestSlot::Kind::PersistentSend, c->vci);
  RequestSlot* s = req_slot(r);
  s->sbuf = buf;
  s->scount = count;
  s->sdt = dt;
  s->bound_peer = dest;
  s->bound_tag = tag;
  s->comm = comm;
  *req = r;
  rsc.bind_req(req);
  return Err::Success;
}

Err Engine::recv_init(void* buf, int count, Datatype dt, Rank src, Tag tag, Comm comm,
                      Request* req) {
  obs::ProfScope psc(prof_, obs::Callsite::RecvInit, prof_vci(comm),
                     prof_bytes(count, dt));
  obs::RecScope rsc(rec_, obs::Callsite::RecvInit, src, tag, rec_vci(comm),
                    rec_bytes(count, dt));
  if (req == nullptr) return Err::Request;
  if (cfg_.error_checking) {
    if (Err e = check_comm(comm); !ok(e)) return e;
    const CommObject* c = comm_obj(comm);
    if (Err e = check_rank(*c, src, true, true); !ok(e)) return e;
    if (Err e = check_tag(tag, true); !ok(e)) return e;
    if (Err e = check_count(count); !ok(e)) return e;
    if (Err e = check_buffer(buf, count); !ok(e)) return e;
    if (Err e = check_datatype(dt); !ok(e)) return e;
  }
  const CommObject* c = comm_obj(comm);
  if (c == nullptr) return Err::Comm;
  const Request r = alloc_request(RequestSlot::Kind::PersistentRecv, c->vci);
  RequestSlot* s = req_slot(r);
  s->rbuf = buf;
  s->rcount = count;
  s->rdt = dt;
  s->bound_peer = src;
  s->bound_tag = tag;
  s->comm = comm;
  *req = r;
  rsc.bind_req(req);
  return Err::Success;
}

Err Engine::start(Request* req) {
  obs::ProfScope psc(prof_, obs::Callsite::Start,
                     (prof_ != nullptr && req != nullptr && *req != kRequestNull)
                         ? static_cast<int>(request_vci(*req))
                         : 0,
                     0);
  const Request h = rec_link(req);
  obs::RecScope rsc(rec_, obs::Callsite::Start, 0, 0,
                    h != kRequestNull ? static_cast<std::uint8_t>(request_vci(h)) : 0, 0,
                    h);
  if (req == nullptr) return Err::Request;
  RequestSlot* s = req_slot(*req);
  if (s == nullptr) return Err::Request;
  if (s->kind != RequestSlot::Kind::PersistentSend &&
      s->kind != RequestSlot::Kind::PersistentRecv) {
    return Err::Request;
  }
  if (s->inner != kRequestNull) return Err::Pending;  // previous start not reaped

  Request inner = kRequestNull;
  Err e;
  if (s->kind == RequestSlot::Kind::PersistentSend) {
    SendParams p{.buf = s->sbuf,
                 .count = s->scount,
                 .dt = s->sdt,
                 .dest = s->bound_peer,
                 .tag = s->bound_tag,
                 .comm = s->comm};
    e = device_isend(p, &inner);
  } else {
    e = post_recv_common(s->rbuf, s->rcount, s->rdt, s->bound_peer, s->bound_tag, s->comm,
                         rt::MatchMode::Full, false, &inner);
  }
  if (!ok(e)) return e;
  // Request slots live in stable chunked storage, so `s` survives the pool
  // growth the inner allocation may have caused.
  s->inner = inner;
  return Err::Success;
}

Err Engine::startall(std::span<Request> reqs) {
  obs::ProfScope psc(prof_, obs::Callsite::Startall, 0, 0);
  obs::RecScope rsc(rec_, obs::Callsite::Startall, 0, 0, 0,
                    static_cast<std::uint32_t>(reqs.size()));
  if (rsc.armed()) {
    for (const Request& r : reqs) {
      if (r != kRequestNull) rsc.aux(obs::kRecKindWaitItem, 0, 0, 0, 0, r);
    }
  }
  for (Request& r : reqs) {
    if (Err e = start(&r); !ok(e)) return e;
  }
  return Err::Success;
}

Err Engine::request_free(Request* req) {
  // Guard-only: freeing may wait() on an active inner op, and that internal
  // wait is not a surface call the replay should see.
  obs::RecScope rsc(rec_);
  if (req == nullptr) return Err::Request;
  RequestSlot* s = req_slot(*req);
  if (s == nullptr) return Err::Request;
  if (s->kind != RequestSlot::Kind::PersistentSend &&
      s->kind != RequestSlot::Kind::PersistentRecv) {
    return Err::Request;  // plain requests are reaped by wait/test
  }
  if (s->inner != kRequestNull) {
    // Reap the in-flight operation first (MPI permits freeing active
    // requests; we complete it to keep buffer lifetimes obvious).
    if (Err e = wait(&s->inner, nullptr); !ok(e)) return e;
    s->inner = kRequestNull;
  }
  release_request(*req);
  *req = kRequestNull;
  return Err::Success;
}

}  // namespace lwmpi
