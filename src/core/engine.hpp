// lwmpi::Engine -- the per-rank MPI-3.1-subset instance.
//
// One Engine exists per simulated MPI process (rank). The public methods are
// the MPI API surface; internally an engine owns its communicator table,
// datatype engine, window table, and a set of virtual communication
// interfaces (VCIs). Each VCI bundles an independent matching engine,
// request pool, orig-device send queue, fabric mailbox lane, and lock;
// communicators are mapped to a VCI at creation and all traffic they
// generate stays on that channel. progress() is a poll set over the VCIs.
//
// Two devices implement the data movement, selected per World:
//   * DeviceKind::Ch4  -- the paper's lightweight flow-through device,
//     including every Section-3 proposed extension (_GLOBAL, _VIRTUAL_ADDR,
//     predefined comm handles, _NPN, _NOREQ + COMM_WAITALL, _NOMATCH,
//     _ALL_OPTS).
//   * DeviceKind::Orig -- a CH3-style layered baseline: every operation
//     allocates a request and transits a software send queue, and RMA is
//     implemented as active messages deferred to synchronization.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "comm/rankmap.hpp"
#include "common/stable_table.hpp"
#include "common/types.hpp"
#include "core/config.hpp"
#include "core/vci.hpp"
#include "datatype/datatype.hpp"
#include "match/match.hpp"
#include "net/fabric.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "runtime/backoff.hpp"
#include "runtime/packet.hpp"

namespace lwmpi {

class World;

namespace obs {
struct RankSnapshot;  // obs/introspect.hpp
class BlockScope;     // obs/watchdog.hpp
class RankRec;        // obs/recorder.hpp
}

namespace rma {

// Shared (cross-rank) window state: the simulated registered-memory view the
// "NIC" can address directly. The direct-access path through this structure
// is the in-process analog of RDMA.
struct WindowGlobal {
  struct Peer {
    std::byte* base = nullptr;
    std::size_t bytes = 0;
    int disp_unit = 1;
  };
  std::uint32_t id = 0;
  int nranks = 0;
  std::vector<Peer> peers;                                  // by comm rank
  std::vector<Rank> world_ranks;                            // by comm rank
  std::vector<std::unique_ptr<std::shared_mutex>> rma_locks;  // passive-target (ch4)
  std::vector<std::unique_ptr<std::mutex>> acc_locks;         // accumulate atomicity
};

}  // namespace rma

class Engine {
 public:
  Engine(World& world, Rank world_rank);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- identity -------------------------------------------------------------
  Rank world_rank() const noexcept { return self_; }
  int world_size() const noexcept;
  DeviceKind device() const noexcept { return device_; }
  const BuildConfig& config() const noexcept { return cfg_; }
  World& world() noexcept { return world_; }

  // --- point-to-point ---------------------------------------------------------
  Err isend(const void* buf, int count, Datatype dt, Rank dest, Tag tag, Comm comm,
            Request* req);
  Err irecv(void* buf, int count, Datatype dt, Rank src, Tag tag, Comm comm, Request* req);
  Err send(const void* buf, int count, Datatype dt, Rank dest, Tag tag, Comm comm);
  Err recv(void* buf, int count, Datatype dt, Rank src, Tag tag, Comm comm, Status* st);
  Err sendrecv(const void* sbuf, int scount, Datatype sdt, Rank dest, Tag stag, void* rbuf,
               int rcount, Datatype rdt, Rank src, Tag rtag, Comm comm, Status* st);
  Err wait(Request* req, Status* st);
  Err test(Request* req, bool* flag, Status* st);
  Err waitall(std::span<Request> reqs, std::span<Status> sts);
  // Completes exactly one request; *index receives its position (kUndefined
  // if every entry is null). Null entries are skipped, as in MPI.
  Err waitany(std::span<Request> reqs, int* index, Status* st);
  Err testany(std::span<Request> reqs, int* index, bool* flag, Status* st);
  Err testall(std::span<Request> reqs, bool* flag, std::span<Status> sts);
  Err iprobe(Rank src, Tag tag, Comm comm, bool* flag, Status* st);
  Err probe(Rank src, Tag tag, Comm comm, Status* st);
  Err cancel(Request* req);

  // --- persistent requests ---------------------------------------------------
  // Bind the argument list once; `start` then re-issues the operation without
  // re-validating or re-binding (MPI_SEND_INIT / MPI_RECV_INIT / MPI_START).
  // A persistent request completes via wait/test like any other but stays
  // allocated (inactive) until freed with request_free.
  Err send_init(const void* buf, int count, Datatype dt, Rank dest, Tag tag, Comm comm,
                Request* req);
  Err recv_init(void* buf, int count, Datatype dt, Rank src, Tag tag, Comm comm,
                Request* req);
  Err start(Request* req);
  Err startall(std::span<Request> reqs);
  Err request_free(Request* req);

  // --- Section 3 proposed extensions (ch4 device) -----------------------------
  // 3.1: destination given as a *world* (MPI_COMM_WORLD) rank.
  Err isend_global(const void* buf, int count, Datatype dt, Rank world_dest, Tag tag,
                   Comm comm, Request* req);
  // 3.4: destination guaranteed not MPI_PROC_NULL.
  Err isend_npn(const void* buf, int count, Datatype dt, Rank dest, Tag tag, Comm comm,
                Request* req);
  // 3.5: no request returned; completed in bulk by comm_waitall.
  Err isend_noreq(const void* buf, int count, Datatype dt, Rank dest, Tag tag, Comm comm);
  Err comm_waitall(Comm comm);
  // 3.6: no source/tag match bits; arrival-order delivery within the comm.
  Err isend_nomatch(const void* buf, int count, Datatype dt, Rank dest, Comm comm,
                    Request* req);
  Err irecv_nomatch(void* buf, int count, Datatype dt, Comm comm, Request* req);
  // 3.7: all proposals combined. `comm` must be a predefined handle
  // (kComm1..kComm4) populated via comm_dup_predefined; dest is a world rank.
  Err isend_all_opts(const void* buf, int count, Datatype dt, Rank world_dest, Comm comm);

  // --- collectives -------------------------------------------------------------
  Err barrier(Comm comm);
  Err bcast(void* buf, int count, Datatype dt, Rank root, Comm comm);
  Err reduce(const void* sbuf, void* rbuf, int count, Datatype dt, ReduceOp op, Rank root,
             Comm comm);
  Err allreduce(const void* sbuf, void* rbuf, int count, Datatype dt, ReduceOp op, Comm comm);
  Err gather(const void* sbuf, int scount, Datatype sdt, void* rbuf, int rcount, Datatype rdt,
             Rank root, Comm comm);
  Err allgather(const void* sbuf, int scount, Datatype sdt, void* rbuf, int rcount,
                Datatype rdt, Comm comm);
  Err scatter(const void* sbuf, int scount, Datatype sdt, void* rbuf, int rcount, Datatype rdt,
              Rank root, Comm comm);
  Err alltoall(const void* sbuf, int scount, Datatype sdt, void* rbuf, int rcount, Datatype rdt,
               Comm comm);
  Err scan(const void* sbuf, void* rbuf, int count, Datatype dt, ReduceOp op, Comm comm);
  // Variable-count collectives: recvcounts/displs are in elements of the
  // receive datatype, indexed by comm rank (significant at the root for
  // gatherv, everywhere for allgatherv).
  Err gatherv(const void* sbuf, int scount, Datatype sdt, void* rbuf,
              std::span<const int> rcounts, std::span<const int> displs, Datatype rdt,
              Rank root, Comm comm);
  Err allgatherv(const void* sbuf, int scount, Datatype sdt, void* rbuf,
                 std::span<const int> rcounts, std::span<const int> displs, Datatype rdt,
                 Comm comm);
  Err scatterv(const void* sbuf, std::span<const int> scounts, std::span<const int> displs,
               Datatype sdt, void* rbuf, int rcount, Datatype rdt, Rank root, Comm comm);
  // Reduce then scatter equal blocks of `count` elements to each rank.
  Err reduce_scatter_block(const void* sbuf, void* rbuf, int count, Datatype dt,
                           ReduceOp op, Comm comm);

  // --- communicator / group management ----------------------------------------
  int rank(Comm comm) const;
  int size(Comm comm) const;
  bool comm_valid(Comm comm) const noexcept;
  Err comm_dup(Comm comm, Comm* newcomm);
  Err comm_split(Comm comm, int color, int key, Comm* newcomm);
  Err comm_free(Comm* comm);
  // Section 3.3 proposal: populate a *predefined* communicator handle.
  Err comm_dup_predefined(Comm comm, Comm predefined);
  // --- Cartesian process topologies --------------------------------------------
  // MPI_CART_CREATE and friends: the canonical way the paper's stencil /
  // halo-exchange applications derive their neighbours (including the
  // MPI_PROC_NULL boundaries of Section 3.4).
  Err cart_create(Comm comm, std::span<const int> dims, std::span<const bool> periods,
                  bool reorder, Comm* cart);
  Err cart_coords(Comm cart, Rank rank, std::span<int> coords) const;
  Err cart_rank(Comm cart, std::span<const int> coords, Rank* rank) const;
  // Source/dest for a shift along `dim` by `disp`; non-periodic edges yield
  // kProcNull, as in MPI_CART_SHIFT.
  Err cart_shift(Comm cart, int dim, int disp, Rank* source, Rank* dest) const;
  Err cartdim_get(Comm cart, int* ndims) const;

  // --- communicator info hints ---------------------------------------------
  // Section 3.6 discusses an alternative to the _NOMATCH routines: an info
  // hint asserting the application always receives with wildcards, letting
  // the library drop source/tag match bits at the cost of an extra hint
  // lookup branch on every operation. Key: "lwmpi_arrival_order" = "true".
  Err comm_set_info(Comm comm, std::string_view key, std::string_view value);
  Err comm_get_info(Comm comm, std::string_view key, std::string* value) const;

  Err comm_group(Comm comm, Group* group);
  Err group_size(Group g, int* size) const;
  Err group_rank(Group g, int* rank) const;
  Err group_incl(Group g, std::span<const int> ranks, Group* newgroup);
  Err group_translate_ranks(Group g1, std::span<const int> ranks1, Group g2,
                            std::span<int> ranks2) const;
  Err group_free(Group* g);

  // --- datatypes ----------------------------------------------------------------
  Err type_contiguous(int count, Datatype oldtype, Datatype* newtype);
  Err type_vector(int count, int blocklength, int stride, Datatype oldtype, Datatype* newtype);
  Err type_indexed(std::span<const int> blocklengths, std::span<const int> displacements,
                   Datatype oldtype, Datatype* newtype);
  Err type_create_struct(std::span<const int> blocklengths,
                         std::span<const std::int64_t> displacements,
                         std::span<const Datatype> types, Datatype* newtype);
  Err type_create_hvector(int count, int blocklength, std::int64_t stride_bytes,
                          Datatype oldtype, Datatype* newtype);
  Err type_create_hindexed(std::span<const int> blocklengths,
                           std::span<const std::int64_t> displacements_bytes,
                           Datatype oldtype, Datatype* newtype);
  Err type_create_resized(Datatype oldtype, std::int64_t lb, std::int64_t extent,
                          Datatype* newtype);
  Err type_dup(Datatype oldtype, Datatype* newtype);
  Err type_commit(Datatype* dt);
  Err type_free(Datatype* dt);
  Err type_size(Datatype dt, std::size_t* size) const;
  Err type_get_extent(Datatype dt, std::int64_t* lb, std::int64_t* extent) const;
  dt::TypeEngine& types() noexcept { return types_; }
  const dt::TypeEngine& types() const noexcept { return types_; }

  // --- one-sided ------------------------------------------------------------------
  Err win_create(void* base, std::size_t bytes, int disp_unit, Comm comm, Win* win);
  Err win_free(Win* win);
  Err put(const void* origin, int origin_count, Datatype origin_dt, Rank target,
          std::uint64_t target_disp, int target_count, Datatype target_dt, Win win);
  Err get(void* origin, int origin_count, Datatype origin_dt, Rank target,
          std::uint64_t target_disp, int target_count, Datatype target_dt, Win win);
  Err accumulate(const void* origin, int count, Datatype dt, Rank target,
                 std::uint64_t target_disp, ReduceOp op, Win win);
  Err get_accumulate(const void* origin, int count, Datatype dt, void* result, Rank target,
                     std::uint64_t target_disp, ReduceOp op, Win win);
  // 3.2 proposal: target addressed by virtual address, valid for any window.
  Err put_va(const void* origin, int origin_count, Datatype origin_dt, Rank target,
             void* target_va, Win win);
  Err win_fence(Win win);
  Err win_lock(LockType type, Rank target, Win win);
  Err win_unlock(Rank target, Win win);
  Err win_lock_all(Win win);
  Err win_unlock_all(Win win);
  Err win_flush(Rank target, Win win);
  Err win_flush_all(Win win);
  // Generalized active-target synchronization (MPI_WIN_POST / START /
  // COMPLETE / WAIT). `group` holds comm ranks of the window's communicator.
  Err win_post(Group group, Win win);
  Err win_start(Group group, Win win);
  Err win_complete(Win win);
  Err win_wait(Win win);
  // Translate a (target, disp) pair to the target's virtual address (setup
  // path for put_va users).
  Err win_target_address(Rank target, std::uint64_t target_disp, Win win, void** addr) const;

  // --- progress ---------------------------------------------------------------------
  // Advance the communication engine: sweep the VCI poll set. Each VCI is
  // acquired with try_lock (a contended channel is already being progressed
  // by its holder); per channel we drain the orig-device send queue, poll the
  // channel's fabric lane, match/complete messages, and service RMA active
  // messages. Ch4 skips channels whose lane is provably empty without
  // touching the lock.
  void progress();

  // --- observability ----------------------------------------------------------
  // Raw counter blocks backing the MPI_T-style pvar registry (obs/pvar.hpp).
  // Tools should go through LWMPI_T_pvar_* rather than these accessors.
  const obs::VciCounters& vci_counters(int vci) const noexcept {
    return vcis_[static_cast<std::size_t>(vci)]->counters;
  }
  const obs::EngineCounters& engine_counters() const noexcept { return eng_counters_; }
  // Per-channel message-lifetime latency histograms (obs/histogram.hpp).
  const obs::VciLatency& vci_latency(int vci) const noexcept {
    return vcis_[static_cast<std::size_t>(vci)]->lat;
  }
  // Per-channel wait-state histograms (obs/causal.hpp).
  const obs::WaitBlock& vci_waits(int vci) const noexcept {
    return vcis_[static_cast<std::size_t>(vci)]->waits;
  }

  // --- aggregate profiler (obs/profiler.hpp) ----------------------------------
  // This rank's profile accumulators, or nullptr when WorldOptions::prof is
  // off (every hook then costs one null test).
  obs::RankProf* prof() const noexcept { return prof_; }
  // This rank's flight-recorder ring (obs/recorder.hpp), or nullptr when
  // WorldOptions::record is off. Same single-null-test discipline as prof().
  obs::RankRec* rec() const noexcept { return rec_; }
  // Pcontrol-style phase regions scoped to this rank; World::phase_push/pop
  // applies the same to every rank at once. No-ops when profiling is off
  // (a pop is then not even misuse-counted -- there is nowhere to count it).
  void phase_push(std::string_view name) {
    if (prof_ != nullptr) prof_->phase_push(name);
  }
  void phase_pop() noexcept {
    if (prof_ != nullptr) prof_->phase_pop();
  }

  // --- introspection / hang diagnosis (obs/introspect.cpp) --------------------
  // Capture this rank's queues, in-flight requests, and RMA epoch state.
  // Safe to call from another thread (the watchdog); takes each VCI's lock.
  obs::RankSnapshot snapshot() const;

  // Blocking-call annotation maintained by obs::BlockScope: the name of the
  // MPI call this rank is currently blocked in (nullptr when not blocked) and
  // the obs::lat_now_ns() stamp of when it entered.
  const char* blocking_call() const noexcept {
    return blocking_call_.load(std::memory_order_acquire);
  }
  std::uint64_t blocking_since_ns() const noexcept {
    return blocking_since_.load(std::memory_order_relaxed);
  }

  // Progress-liveness fingerprint for the watchdog's stall detector: a hash
  // of this rank's fabric traffic counts and request-lifecycle counters that
  // changes whenever the rank makes observable progress. Compared, never
  // interpreted.
  std::uint64_t activity_fingerprint() const noexcept;
  // True when the rank has reason to make progress: live requests, undrained
  // send queues, or undelivered inbound fabric traffic.
  bool has_outstanding_work() const noexcept;

  // Diagnostics for tests/benches.
  std::size_t live_requests() const noexcept {
    return live_requests_.load(std::memory_order_relaxed);
  }
  std::size_t posted_depth() const noexcept;      // summed over all VCIs
  std::size_t unexpected_depth() const noexcept;  // summed over all VCIs
  std::size_t posted_depth(int vci) const noexcept;
  std::size_t unexpected_depth(int vci) const noexcept;
  std::uint64_t sends_issued() const noexcept {
    return sends_issued_.load(std::memory_order_relaxed);
  }

  // --- VCI introspection ------------------------------------------------------
  int num_vcis() const noexcept { return static_cast<int>(vcis_.size()); }
  // The VCI a communicator's traffic rides on, or -1 for an invalid handle.
  int vci_of(Comm comm) const noexcept;
  // Modeled instructions executed on a channel (simulated-clock accounting).
  std::uint64_t vci_busy_instr(int vci) const noexcept;
  // Times the channel's gate missed its uncontended fast path.
  std::uint64_t vci_contended(int vci) const noexcept;

 private:
  friend class World;

  // ---- internal structures ----
  struct CartTopo {
    std::vector<int> dims;
    std::vector<std::uint8_t> periods;
  };

  struct CommObject {
    // Publishes a fully-built communicator to progress threads (release) and
    // gates handle lookups (acquire).
    std::atomic<bool> in_use{false};
    bool reserved = false;  // slot claimed but not yet built; under comm_mu_
    bool predefined_slot = false;
    std::uint32_t ctx = 0;  // pt2pt context; collectives use ctx + 1
    std::uint32_t vci = 0;  // owning channel; fixed at creation
    Rank rank = 0;          // my rank within the comm
    comm::RankMap map;
    std::atomic<std::uint32_t> noreq_outstanding{0};  // _NOREQ bulk-completion counter
    std::optional<CartTopo> cart;         // set for Cartesian communicators
    std::vector<std::pair<std::string, std::string>> info;  // info hints
    std::atomic<bool> hint_arrival_order{false};  // cached "lwmpi_arrival_order" hint
  };

  using RequestSlot = lwmpi::RequestSlot;  // defined in core/vci.hpp

  struct WindowLocal {
    std::atomic<bool> in_use{false};
    bool reserved = false;  // slot claimed but not yet built; under win_mu_
    // Copy of global->id readable without dereferencing `global`: handle_am
    // scans the whole table (including windows owned by other channels) and
    // must not race a concurrent create/free of an unrelated slot.
    std::atomic<std::uint32_t> win_id{0};
    std::shared_ptr<rma::WindowGlobal> global;
    Comm comm = kCommNull;
    std::uint32_t vci = 0;  // inherited from the creating communicator
    enum class Epoch : std::uint8_t { None, Fence, Lock, LockAll, Pscw };
    // Atomic so the introspection/watchdog thread can read the epoch while
    // the owning rank transitions it; relaxed is enough, a snapshot only
    // needs an untorn value.
    std::atomic<Epoch> epoch{Epoch::None};
    // Per-target passive lock state; written by the AM handler under the VCI
    // lock while win_lock/unlock spin on it outside, hence atomic elements.
    std::unique_ptr<std::atomic<std::uint8_t>[]> lock_held;
    int lock_targets = 0;
    std::atomic<std::uint32_t> outstanding_acks{0};  // AM ops awaiting remote completion
    // Orig device: operations deferred until synchronization.
    struct PendingOp {
      enum class Kind : std::uint8_t { Put, Get, Acc, GetAcc } kind = Kind::Put;
      Rank target = 0;
      std::uint64_t disp = 0;
      std::vector<std::byte> data;  // packed origin data (Put/Acc/GetAcc)
      int target_count = 0;
      Datatype target_dt = kDatatypeNull;
      ReduceOp op = ReduceOp::Replace;
      void* result = nullptr;  // Get/GetAcc destination
      int result_count = 0;
      Datatype result_dt = kDatatypeNull;
    };
    std::vector<PendingOp> pending;
    // Target-side passive lock manager (orig device AM path).
    bool excl_held = false;
    int shared_count = 0;
    struct LockWaiter {
      Rank origin_world = 0;
      LockType type = LockType::Shared;
    };
    std::deque<LockWaiter> lock_waiters;
    // PSCW state: monotone token counters plus the current epoch's groups.
    // The counters are bumped by the AM handler and spun on by win_start /
    // win_wait without the channel lock.
    std::atomic<std::uint32_t> pscw_posts_seen{0};      // AmPscwPost tokens received
    std::atomic<std::uint32_t> pscw_completes_seen{0};  // AmPscwComplete tokens received
    std::vector<Rank> pscw_access_group;    // targets of my access epoch
    std::vector<Rank> pscw_exposure_group;  // origins of my exposure epoch

    // Return a recycled slot to its freshly-constructed state (except
    // `in_use`, which the caller manages as the publication flag).
    void reset();
  };

  // ---- validation helpers (error-checking build feature) ----
  Err check_comm(Comm comm) const noexcept;
  Err check_win(Win win) const noexcept;
  Err check_rank(const CommObject& c, Rank r, bool allow_proc_null, bool allow_any) const noexcept;
  Err check_tag(Tag t, bool allow_any) const noexcept;
  Err check_count(int count) const noexcept;
  Err check_buffer(const void* buf, int count) const noexcept;
  Err check_datatype(Datatype dt) const noexcept;

  // ---- comm table ----
  CommObject* comm_obj(Comm comm) noexcept;
  const CommObject* comm_obj(Comm comm) const noexcept;
  Comm alloc_comm_slot();
  void init_world_comms();
  Err build_comm(Comm slot_handle, std::vector<Rank> world_ranks, std::uint32_t ctx);
  // Deterministic comm -> VCI mapping: the predefined handles kComm1..kComm4
  // pin to distinct channels; dynamic communicators hash their context id.
  std::uint32_t assign_vci(std::uint32_t slot_idx, std::uint32_t ctx) const noexcept;
  // The channel owning a communicator's traffic (nullptr for a bad handle).
  Vci* vci_for(Comm comm) noexcept;

  // ---- request pool (per VCI) ----
  Request alloc_request(RequestSlot::Kind kind, std::uint32_t vci);
  RequestSlot* req_slot(Request r) noexcept;
  void release_request(Request r) noexcept;
  // Completion check that sees through persistent handles to their inner
  // operation (used by waitany/testany/testall).
  bool slot_ready(const RequestSlot& s) noexcept;

  // ---- device paths (implemented in ch4_pt2pt.cpp / orig_device.cpp) ----
  struct SendParams {
    const void* buf;
    int count;
    Datatype dt;
    Rank dest;  // comm rank, or world rank for _GLOBAL paths
    Tag tag;
    Comm comm;
    bool dest_is_world = false;
    bool skip_proc_null_check = false;
    bool noreq = false;
    bool coll_plane = false;  // use the communicator's collective context
    rt::MatchMode match_mode = rt::MatchMode::Full;
  };
  Err ch4_isend(const SendParams& p, Request* req);
  Err orig_isend(const SendParams& p, Request* req);
  Err device_isend(const SendParams& p, Request* req);
  Err post_recv_common(void* buf, int count, Datatype dt, Rank src, Tag tag, Comm comm,
                       rt::MatchMode mode, bool coll_plane, Request* req);

  // Build and transmit an eager packet / rendezvous RTS for `p`; shared by
  // both devices (orig queues, ch4 injects inline). Locks the owning VCI.
  Err issue_send(const SendParams& p, const CommObject& c, Rank dst_world, Request* req);
  void inject_or_queue(Vci& v, Rank dst_world, rt::Packet* pkt);

  // Deliver a matched first packet (eager payload or RTS handshake).
  void deliver_match(const match::PostedRecv& r, rt::Packet* pkt);

  // ---- progress internals (progress.cpp); all run under the VCI's lock ----
  void handle_packet(Vci& v, rt::Packet* pkt);
  void handle_rdv_cts(rt::Packet* pkt);
  void handle_rdv_data(rt::Packet* pkt);
  void handle_rdv_done(rt::Packet* pkt);
  void handle_am(rt::Packet* pkt);
  void drain_send_queue(Vci& v);
  void complete_recv_from_eager(Vci& v, RequestSlot& slot, rt::Packet* pkt);
  void start_rendezvous_recv(RequestSlot& slot, Request req_handle, rt::Packet* rts);

  // Profiler-free bodies of the public entry points: the blocking wrappers
  // (send/recv/sendrecv) compose these so only the user-facing call carries a
  // ProfScope (outermost-wins would discard the nested scopes anyway; this
  // also skips their argument computation on the latency-critical path).
  Err isend_impl(const void* buf, int count, Datatype dt, Rank dest, Tag tag, Comm comm,
                 Request* req);
  Err irecv_impl(void* buf, int count, Datatype dt, Rank src, Tag tag, Comm comm,
                 Request* req);
  Err wait_impl(Request* req, Status* st);
  // test() recurses through persistent handles (test -> test(&inner)), so the
  // recorder's success-gated exit record must live in the public wrapper and
  // the body in an _impl like the blocking wrappers above.
  Err test_impl(Request* req, bool* flag, Status* st);

  // ---- aggregate-profiler internals ----
  // ProfScope arguments, computed only when a profiler is attached so the
  // disabled path pays a single branch and no datatype walk. The attached
  // path matters too (the <2% bench_obs_overhead gate), so the overwhelmingly
  // common cases stay inline and arithmetic-only: the world communicator's
  // VCI is cached at init, and builtin datatype sizes come from handle bits.
  int prof_vci(Comm comm) const noexcept {
    if (prof_ == nullptr) return 0;
    if (comm == kCommWorld) return world_vci_;
    const int v = vci_of(comm);
    return v < 0 ? 0 : v;
  }
  std::uint64_t prof_bytes(int count, Datatype dt) const {
    if (prof_ == nullptr || count <= 0) return 0;
    if (is_builtin(dt)) return static_cast<std::uint64_t>(count) * builtin_size(dt);
    return static_cast<std::uint64_t>(dt::packed_size(types_, count, dt));
  }
  int prof_win_vci(Win win) noexcept;  // rma/rma.cpp (needs WindowLocal)

  // ---- flight-recorder internals (obs/recorder.hpp) ----
  // RecScope arguments; same disabled-path / hot-path reasoning as the
  // profiler helpers directly above, gated on rec_ instead of prof_.
  std::uint8_t rec_vci(Comm comm) const noexcept {
    if (rec_ == nullptr) return 0;
    if (comm == kCommWorld) return static_cast<std::uint8_t>(world_vci_);
    const int v = vci_of(comm);
    return v < 0 ? 0 : static_cast<std::uint8_t>(v);
  }
  std::uint32_t rec_bytes(int count, Datatype dt) const {
    if (rec_ == nullptr || count <= 0) return 0;
    const std::uint64_t b =
        is_builtin(dt) ? static_cast<std::uint64_t>(count) * builtin_size(dt)
                       : static_cast<std::uint64_t>(dt::packed_size(types_, count, dt));
    return b > 0xFFFFFFFFull ? 0xFFFFFFFFu : static_cast<std::uint32_t>(b);
  }
  // Builtin element size recorded in a collective's tag field so replay can
  // reconstruct (count, datatype) and hit the same algorithm splits; 0 for
  // derived types (replay falls back to a byte count of kChar).
  std::int32_t rec_esize(Datatype dt) const noexcept {
    return (rec_ != nullptr && is_builtin(dt)) ? static_cast<std::int32_t>(builtin_size(dt))
                                               : 0;
  }
  // The link handle for completion ops, resolved at entry (completion nulls
  // the handle before the scope closes).
  Request rec_link(const Request* req) const noexcept {
    return (rec_ != nullptr && req != nullptr) ? *req : kRequestNull;
  }

  // ---- observability internals ----
  // Record one message-lifecycle trace event on this rank. Callers gate on
  // cfg_.trace so the disabled path costs a single predictable branch. Every
  // event snapshots the rank's Lamport clock (net::Fabric) so the causal
  // analyzer can stitch per-rank rings into one globally-ordered timeline;
  // Match events additionally carry their wait-state classification.
  void trace_msg(obs::trace::Ev kind, std::uint64_t seq, std::uint8_t vci, Rank peer,
                 Tag tag, std::uint64_t bytes, obs::Wait wait = obs::Wait::None,
                 std::uint64_t wait_ns = 0) noexcept {
    obs::trace::record(obs::trace::Event{.ts_ns = rt::now_ns(),
                                         .seq = seq,
                                         .bytes = bytes,
                                         .lclock = fabric_.lclock(self_),
                                         .wait_ns = wait_ns,
                                         .rank = self_,
                                         .peer = peer,
                                         .tag = tag,
                                         .vci = vci,
                                         .wait = static_cast<std::uint8_t>(wait),
                                         .kind = kind});
  }

  // ---- RMA internals (rma.cpp) ----
  WindowLocal* win_obj(Win win) noexcept;
  const WindowLocal* win_obj(Win win) const noexcept;
  Err rma_direct_put(WindowLocal& w, const void* origin, int ocount, Datatype odt, Rank target,
                     std::uint64_t target_disp, int tcount, Datatype tdt);
  Err rma_am_put(WindowLocal& w, Win win, const void* origin, int ocount, Datatype odt,
                 Rank target, std::uint64_t target_disp, int tcount, Datatype tdt);
  Err rma_wait_acks(WindowLocal& w, std::uint32_t until);
  Err orig_flush_pending(WindowLocal& w, Win win, Rank target /* -1 = all */);
  Err rma_check_epoch(const WindowLocal& w, Rank target) const noexcept;
  void send_am_ack(Rank origin_world, std::uint32_t origin_req, std::uint32_t win_id,
                   std::uint8_t vci);

  // ---- collective internals (coll.cpp) ----
  // Rabenseifner large-message allreduce (allreduce_large.cpp); requires
  // power-of-two size and rbuf preloaded with the local contribution.
  Err allreduce_rabenseifner(void* rbuf, int count, Datatype dt, ReduceOp op, Comm comm);
  Err coll_send(const void* buf, int count, Datatype dt, Rank dest, Tag tag, Comm comm);
  Err coll_recv(void* buf, int count, Datatype dt, Rank src, Tag tag, Comm comm, Status* st);
  Err coll_isend(const void* buf, int count, Datatype dt, Rank dest, Tag tag, Comm comm,
                 Request* req);
  Err coll_irecv(void* buf, int count, Datatype dt, Rank src, Tag tag, Comm comm,
                 Request* req);

  // ---- state ----
  World& world_;
  net::Fabric& fabric_;
  const Rank self_;
  const DeviceKind device_;
  const BuildConfig cfg_;
  const std::size_t eager_threshold_;
  // Modeled instruction totals for the configured build; feed both the
  // simulated-time spins and the per-VCI busy-instruction accounting.
  std::uint32_t send_instr_ = 0;
  std::uint32_t recv_instr_ = 0;
  // Simulated software time per operation (modeled instructions x the
  // world's ns-per-instruction knob); zero disables the spins.
  std::uint64_t sim_send_ns_ = 0;
  std::uint64_t sim_recv_ns_ = 0;
  std::uint64_t sim_put_ns_ = 0;

  dt::TypeEngine types_;
  // The VCI channels; sized once in the constructor and never resized, so
  // vcis_[i].get() is stable for the engine's lifetime.
  std::vector<std::unique_ptr<Vci>> vcis_;
  common::StableTable<CommObject> comms_;
  std::mutex comm_mu_;  // serializes comm-slot allocation / free
  std::vector<std::optional<std::vector<Rank>>> groups_;
  std::atomic<std::size_t> live_requests_{0};
  common::StableTable<WindowLocal> windows_;  // indexed by local win slot
  std::mutex win_mu_;   // serializes window-slot allocation
  std::atomic<std::uint64_t> sends_issued_{0};
  // Whole-rank observability counters (progress-path statistics).
  obs::EngineCounters eng_counters_;
  // Blocking-call annotation (see blocking_call()). Written by obs::BlockScope
  // on this rank's thread, read by the watchdog thread.
  friend class obs::BlockScope;
  std::atomic<const char*> blocking_call_{nullptr};
  std::atomic<std::uint64_t> blocking_since_{0};
  // Aggregate-profiler accumulators for this rank (obs/profiler.hpp); null
  // when WorldOptions::prof is off. Owned by the World's Profiler.
  obs::RankProf* prof_ = nullptr;
  // Flight-recorder ring for this rank (obs/recorder.hpp); null when
  // WorldOptions::record is off. Owned by the World's Recorder.
  obs::RankRec* rec_ = nullptr;
  // VCI of kCommWorld, cached by init_world_comms so prof_vci's hot path
  // (virtually all profiled traffic runs on the world communicator) skips the
  // comm-object lookup.
  int world_vci_ = 0;
};

}  // namespace lwmpi
