#include "cost/meter.hpp"

namespace lwmpi::cost {

std::string_view to_string(Category c) noexcept {
  switch (c) {
    case Category::ErrorChecking: return "error-checking";
    case Category::ThreadSafety: return "thread-safety";
    case Category::FunctionCall: return "function-call";
    case Category::RedundantChecks: return "redundant-runtime-checks";
    case Category::Mandatory: return "mpi-mandatory";
    case Category::kCount: break;
  }
  return "?";
}

std::string_view to_string(Reason r) noexcept {
  switch (r) {
    case Reason::None: return "none";
    case Reason::RankTranslation: return "rank-translation(3.1)";
    case Reason::VirtualAddressing: return "virtual-addressing(3.2)";
    case Reason::ObjectDeref: return "object-deref(3.3)";
    case Reason::ProcNullCheck: return "proc-null-check(3.4)";
    case Reason::RequestManagement: return "request-management(3.5)";
    case Reason::MatchBits: return "match-bits(3.6)";
    case Reason::Residual: return "residual";
    case Reason::kCount: break;
  }
  return "?";
}

Meter*& tl_meter() noexcept {
  thread_local Meter* meter = nullptr;
  return meter;
}

}  // namespace lwmpi::cost
