#include "cost/meter.hpp"

namespace lwmpi::cost {

std::string_view to_string(Category c) noexcept {
  switch (c) {
    case Category::ErrCheck: return "err-check";
    case Category::ThreadGate: return "thread-gate";
    case Category::CallOverhead: return "call-overhead";
    case Category::Redundant: return "redundant";
    case Category::MandRankmap: return "mand-rankmap(3.1)";
    case Category::MandVa: return "mand-va(3.2)";
    case Category::MandObject: return "mand-object(3.3)";
    case Category::MandProcNull: return "mand-proc-null(3.4)";
    case Category::MandRequest: return "mand-request(3.5)";
    case Category::MandMatch: return "mand-match(3.6)";
    case Category::MandLocality: return "mand-locality";
    case Category::MandInject: return "mand-inject";
    case Category::OrigLayering: return "orig-layering";
    case Category::kCount: break;
  }
  return "?";
}

std::string_view to_string(Group g) noexcept {
  switch (g) {
    case Group::ErrorChecking: return "error-checking";
    case Group::ThreadSafety: return "thread-safety";
    case Group::FunctionCall: return "function-call";
    case Group::RedundantChecks: return "redundant-runtime-checks";
    case Group::Mandatory: return "mpi-mandatory";
    case Group::OrigLayering: return "orig-layering";
    case Group::kCount: break;
  }
  return "?";
}

Meter*& tl_meter() noexcept {
  thread_local Meter* meter = nullptr;
  return meter;
}

}  // namespace lwmpi::cost
