// Instruction-cost accounting: the reproduction's substitute for the Intel
// SDE traces used in the paper.
//
// Every step on the MPI critical path carries a charge site: a (category,
// reason, instruction-count) triple. When a Meter is armed on the calling
// thread, walking the code path accumulates the modeled dynamic instruction
// count, broken down by the same categories the paper's Table 1 uses and by
// the "mandatory overhead" sub-reasons of Section 3. When no meter is armed
// the charge is a single thread-local pointer test.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace lwmpi::cost {

// Table 1 categories.
enum class Category : std::uint8_t {
  ErrorChecking = 0,    // argument / object validation (not mandated)
  ThreadSafety,         // runtime thread-safety gate
  FunctionCall,         // MPI function-call + PMPI indirection overhead
  RedundantChecks,      // runtime checks a compiler could fold with inlining
  Mandatory,            // required by MPI-3.1 semantics (Section 3)
  kCount,
};
inline constexpr std::size_t kNumCategories = static_cast<std::size_t>(Category::kCount);

// Section 3 sub-reasons for the Mandatory category. Each maps to one of the
// paper's proposed standard changes (plus a residual that no proposal removes).
enum class Reason : std::uint8_t {
  None = 0,
  RankTranslation,    // 3.1: communicator rank -> network address
  VirtualAddressing,  // 3.2: window offset -> virtual address (RMA)
  ObjectDeref,        // 3.3: dynamically-allocated comm/win object lookup
  ProcNullCheck,      // 3.4: MPI_PROC_NULL branch
  RequestManagement,  // 3.5: per-operation request allocation/tracking
  MatchBits,          // 3.6: source/tag match-bit construction
  Residual,           // unavoidable even with all proposals (injection etc.)
  kCount,
};
inline constexpr std::size_t kNumReasons = static_cast<std::size_t>(Reason::kCount);

std::string_view to_string(Category c) noexcept;
std::string_view to_string(Reason r) noexcept;

class Meter {
 public:
  void add(Category c, std::uint32_t instructions) noexcept {
    by_category_[static_cast<std::size_t>(c)] += instructions;
    total_ += instructions;
  }
  void add(Reason r, std::uint32_t instructions) noexcept {
    add(Category::Mandatory, instructions);
    by_reason_[static_cast<std::size_t>(r)] += instructions;
  }

  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t category(Category c) const noexcept {
    return by_category_[static_cast<std::size_t>(c)];
  }
  std::uint64_t reason(Reason r) const noexcept {
    return by_reason_[static_cast<std::size_t>(r)];
  }

  void reset() noexcept {
    by_category_.fill(0);
    by_reason_.fill(0);
    total_ = 0;
  }

  // Merge another meter's accumulation into this one. Lets per-thread or
  // per-phase meters be combined into a whole-run breakdown (SPMD harnesses
  // arm one meter per rank thread, then fold them into one report).
  Meter& operator+=(const Meter& other) noexcept {
    for (std::size_t i = 0; i < kNumCategories; ++i) by_category_[i] += other.by_category_[i];
    for (std::size_t i = 0; i < kNumReasons; ++i) by_reason_[i] += other.by_reason_[i];
    total_ += other.total_;
    return *this;
  }

  // Value-type copy of the current tallies, decoupled from the live meter:
  // safe to stash, diff, or ship across threads after the meter keeps ticking.
  struct Snapshot {
    std::array<std::uint64_t, kNumCategories> by_category{};
    std::array<std::uint64_t, kNumReasons> by_reason{};
    std::uint64_t total = 0;

    std::uint64_t category(Category c) const noexcept {
      return by_category[static_cast<std::size_t>(c)];
    }
    std::uint64_t reason(Reason r) const noexcept {
      return by_reason[static_cast<std::size_t>(r)];
    }
  };
  Snapshot snapshot() const noexcept {
    Snapshot s;
    s.by_category = by_category_;
    s.by_reason = by_reason_;
    s.total = total_;
    return s;
  }

 private:
  std::array<std::uint64_t, kNumCategories> by_category_{};
  std::array<std::uint64_t, kNumReasons> by_reason_{};
  std::uint64_t total_ = 0;
};

// Thread-local armed meter (nullptr when metering is off).
Meter*& tl_meter() noexcept;

// RAII: arms `meter` on this thread for its scope.
class ScopedMeter {
 public:
  explicit ScopedMeter(Meter& m) noexcept : prev_(tl_meter()) { tl_meter() = &m; }
  ~ScopedMeter() { tl_meter() = prev_; }
  ScopedMeter(const ScopedMeter&) = delete;
  ScopedMeter& operator=(const ScopedMeter&) = delete;

 private:
  Meter* prev_;
};

inline void charge(Category c, std::uint32_t n) noexcept {
  if (Meter* m = tl_meter()) m->add(c, n);
}
inline void charge(Reason r, std::uint32_t n) noexcept {
  if (Meter* m = tl_meter()) m->add(r, n);
}

}  // namespace lwmpi::cost
