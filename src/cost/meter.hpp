// Instruction-cost accounting: the reproduction's substitute for the Intel
// SDE traces used in the paper.
//
// Every step on the MPI critical path carries a charge site: a (category,
// instruction-count) pair tagged with a *fine-grained* attribution category.
// When a Meter is armed on the calling thread, walking the code path
// accumulates the modeled dynamic instruction count as a per-category
// histogram. Categories roll up into the coarse Groups of the paper's
// Table 1 (error checking / thread safety / call overhead / redundant checks
// / mandatory), with the Section-3 mandatory sub-reasons kept separate so the
// per-proposal savings of Figure 6 are observable from the live path. When no
// meter is armed the charge is a single thread-local pointer test.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace lwmpi::cost {

// Fine-grained attribution categories: one per distinct *reason* an
// instruction exists on the fast path. The Mand* entries map one-to-one onto
// the paper's Section-3 mandatory overheads (3.1-3.6 plus the locality and
// injection residuals no proposal removes); OrigLayering absorbs everything
// the CH3-style original device adds on top of the flow-through path.
enum class Category : std::uint8_t {
  ErrCheck = 0,  // argument / object validation (not mandated)
  ThreadGate,    // runtime thread-safety gate
  CallOverhead,  // MPI function-call + PMPI indirection overhead
  Redundant,     // runtime checks a compiler could fold with inlining
  MandRankmap,   // 3.1: communicator rank -> network address
  MandVa,        // 3.2: window offset -> virtual address (RMA)
  MandObject,    // 3.3: dynamically-allocated comm/win object lookup
  MandProcNull,  // 3.4: MPI_PROC_NULL branch
  MandRequest,   // 3.5: per-operation request allocation/tracking
  MandMatch,     // 3.6: source/tag match-bit construction
  MandLocality,  // locality (self/shmmod/netmod) selection residual
  MandInject,    // low-level injection API residual
  OrigLayering,  // CH3-style layering: ADI dispatch, op queues, AM builds
  kCount,
};
inline constexpr std::size_t kNumCategories = static_cast<std::size_t>(Category::kCount);

// Coarse rollup: the rows of the paper's Table 1, plus an extra row for the
// original device's layering so ch4 and orig breakdowns render side by side.
enum class Group : std::uint8_t {
  ErrorChecking = 0,
  ThreadSafety,
  FunctionCall,
  RedundantChecks,
  Mandatory,
  OrigLayering,
  kCount,
};
inline constexpr std::size_t kNumGroups = static_cast<std::size_t>(Group::kCount);

constexpr Group group_of(Category c) noexcept {
  switch (c) {
    case Category::ErrCheck: return Group::ErrorChecking;
    case Category::ThreadGate: return Group::ThreadSafety;
    case Category::CallOverhead: return Group::FunctionCall;
    case Category::Redundant: return Group::RedundantChecks;
    case Category::MandRankmap:
    case Category::MandVa:
    case Category::MandObject:
    case Category::MandProcNull:
    case Category::MandRequest:
    case Category::MandMatch:
    case Category::MandLocality:
    case Category::MandInject: return Group::Mandatory;
    case Category::OrigLayering:
    case Category::kCount: break;
  }
  return Group::OrigLayering;
}

std::string_view to_string(Category c) noexcept;
std::string_view to_string(Group g) noexcept;

class Meter {
 public:
  void add(Category c, std::uint32_t instructions) noexcept {
    by_category_[static_cast<std::size_t>(c)] += instructions;
    total_ += instructions;
  }

  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t category(Category c) const noexcept {
    return by_category_[static_cast<std::size_t>(c)];
  }
  std::uint64_t group(Group g) const noexcept {
    std::uint64_t t = 0;
    for (std::size_t i = 0; i < kNumCategories; ++i) {
      if (group_of(static_cast<Category>(i)) == g) t += by_category_[i];
    }
    return t;
  }

  void reset() noexcept {
    by_category_.fill(0);
    total_ = 0;
  }

  // Merge another meter's accumulation into this one. Lets per-thread or
  // per-phase meters be combined into a whole-run breakdown (SPMD harnesses
  // arm one meter per rank thread, then fold them into one report).
  Meter& operator+=(const Meter& other) noexcept {
    for (std::size_t i = 0; i < kNumCategories; ++i) by_category_[i] += other.by_category_[i];
    total_ += other.total_;
    return *this;
  }

  // Value-type copy of the current tallies, decoupled from the live meter:
  // safe to stash, diff, or ship across threads after the meter keeps ticking.
  struct Snapshot {
    std::array<std::uint64_t, kNumCategories> by_category{};
    std::uint64_t total = 0;

    std::uint64_t category(Category c) const noexcept {
      return by_category[static_cast<std::size_t>(c)];
    }
    std::uint64_t group(Group g) const noexcept {
      std::uint64_t t = 0;
      for (std::size_t i = 0; i < kNumCategories; ++i) {
        if (group_of(static_cast<Category>(i)) == g) t += by_category[i];
      }
      return t;
    }
  };
  Snapshot snapshot() const noexcept {
    Snapshot s;
    s.by_category = by_category_;
    s.total = total_;
    return s;
  }

 private:
  std::array<std::uint64_t, kNumCategories> by_category_{};
  std::uint64_t total_ = 0;
};

// Thread-local armed meter (nullptr when metering is off).
Meter*& tl_meter() noexcept;

// RAII: arms `meter` on this thread for its scope.
class ScopedMeter {
 public:
  explicit ScopedMeter(Meter& m) noexcept : prev_(tl_meter()) { tl_meter() = &m; }
  ~ScopedMeter() { tl_meter() = prev_; }
  ScopedMeter(const ScopedMeter&) = delete;
  ScopedMeter& operator=(const ScopedMeter&) = delete;

 private:
  Meter* prev_;
};

inline void charge(Category c, std::uint32_t n) noexcept {
  if (Meter* m = tl_meter()) m->add(c, n);
}

}  // namespace lwmpi::cost
