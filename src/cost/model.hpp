// Calibrated per-site modeled instruction counts.
//
// The paper measured dynamic instruction counts of MPICH/CH4 and
// MPICH/Original with Intel SDE (Table 1, Figures 2 and 6). We cannot run SDE
// against the authors' binaries, so each structural step of our
// implementation's critical path carries a modeled instruction cost. The
// constants below are calibrated so that the *sums over the real code path*
// reproduce the paper's reported breakdowns:
//
//   MPI_ISEND (ch4 default) = 74 err + 6 thread + 23 call + 59 redundant
//                             + 59 mandatory = 221
//   MPI_PUT   (ch4 default) = 72 err + 14 thread + 25 call + 60 redundant
//                             + 46 mandatory = 215  (paper: 72/14/25/62/44)
//   MPI_ISEND (orig) = 253, MPI_PUT (orig) = 1342
//   MPI_ISEND_ALL_OPTS = 16
//
// The benchmark binaries walk the actual implementation and report whatever
// the path accumulates; nothing looks these totals up directly.
#pragma once

#include <array>
#include <cstdint>

#include "cost/meter.hpp"

namespace lwmpi::cost {

// ---- Error checking (not mandated by the standard) -------------------------
inline constexpr std::uint32_t kErrCommHandle = 18;   // comm/win handle validity
inline constexpr std::uint32_t kErrWinHandle = 18;
inline constexpr std::uint32_t kErrRankRange = 12;    // rank within comm size
inline constexpr std::uint32_t kErrTagRange = 8;
inline constexpr std::uint32_t kErrCount = 6;
inline constexpr std::uint32_t kErrBuffer = 10;
inline constexpr std::uint32_t kErrDatatype = 20;     // valid + committed
inline constexpr std::uint32_t kErrDispRange = 6;     // RMA offset bounds
inline constexpr std::uint32_t kErrRequestHandle = 8;
inline constexpr std::uint32_t kErrRootRange = 10;
inline constexpr std::uint32_t kErrOpValid = 6;

// ---- Thread-safety gate -----------------------------------------------------
inline constexpr std::uint32_t kThreadGatePt2pt = 6;
inline constexpr std::uint32_t kThreadGateRma = 14;
// Extra charge when a VCI gate is *contended*: the acquiring thread leaves the
// uncontended fast path (the 6-instruction check above) and takes the slow
// futex-style acquisition. Charged on top of the base gate cost, only when
// try_lock fails -- an uncontended single-threaded path never pays it, which
// keeps the Table-1 closed forms below unchanged.
inline constexpr std::uint32_t kThreadGateContended = 24;

// ---- Function-call overhead -------------------------------------------------
// "Each MPI function call can take around 16-18 instructions just to load the
// stack and registers" plus the PMPI profiling alias indirection.
inline constexpr std::uint32_t kCallEntry = 17;
inline constexpr std::uint32_t kCallPmpiAliasSend = 6;
inline constexpr std::uint32_t kCallPmpiAliasRma = 8;

// ---- Redundant runtime checks (foldable with link-time inlining) ------------
inline constexpr std::uint32_t kRedundantDatatypeResolve = 34;  // size/contig of a
                                                                // compile-time-constant type
inline constexpr std::uint32_t kRedundantCommAttrs = 15;        // comm kind/size re-checks
inline constexpr std::uint32_t kRedundantWinAttrs = 16;         // window kind (dynamic?) check
inline constexpr std::uint32_t kRedundantGenericCompletion = 10;

// ---- Mandatory overheads (Section 3), ch4 fast path --------------------------
// 3.1 network address virtualization: compressed (memory-optimized) rank map.
inline constexpr std::uint32_t kMandRankTranslateCompressed = 11;
// Simple O(P) array lookup alternative: 2 instructions, one a dereference.
inline constexpr std::uint32_t kMandRankTranslateDirect = 2;
// MPI_ISEND_GLOBAL: a single register/load of the stored world address.
inline constexpr std::uint32_t kMandRankGlobalLoad = 1;
// 3.2 window offset -> virtual address.
inline constexpr std::uint32_t kMandVaTranslate = 4;
// 3.3 dynamically-allocated communicator / window object dereference.
inline constexpr std::uint32_t kMandObjectDeref = 8;
// Predefined-handle global-array slot: compiler folds to a global load.
inline constexpr std::uint32_t kMandObjectSlotLoad = 0;
// 3.4 MPI_PROC_NULL comparison + branch.
inline constexpr std::uint32_t kMandProcNull = 3;
// 3.5 request allocation + bookkeeping (alloc, init, pool links).
inline constexpr std::uint32_t kMandRequestAlloc = 13;
// _NOREQ replacement: increment an outstanding-operation counter.
inline constexpr std::uint32_t kMandCompletionCounter = 3;
// 3.6 match-bit construction from (context, src, tag).
inline constexpr std::uint32_t kMandMatchBits = 5;
// _NOMATCH with predefined comm: context match bits become a single load.
inline constexpr std::uint32_t kMandMatchCtxLoad = 1;
// Section 3.6's alternative design: an info-hint *branch* on every send.
inline constexpr std::uint32_t kMandHintBranch = 2;
// Locality (self / shmmod / netmod) selection.
inline constexpr std::uint32_t kMandLocalitySelect = 4;
// Residual cost of invoking the low-level injection API from the fast path.
inline constexpr std::uint32_t kMandInjectResidual = 15;
inline constexpr std::uint32_t kMandInjectResidualRma = 8;
// RMA per-operation completion tracking (epoch op counts).
inline constexpr std::uint32_t kMandRmaOpTracking = 6;

// ---- MPI_ISEND_ALL_OPTS minimal path ----------------------------------------
// All proposals combined; the paper reports 16 instructions total. Designed
// together, the checks fuse: locality 3, context load 1, completion counter 3,
// stored world-address load 1, minimal injection 8.
inline constexpr std::uint32_t kAllOptsLocality = 3;
inline constexpr std::uint32_t kAllOptsCtxLoad = 1;
inline constexpr std::uint32_t kAllOptsCounter = 3;
inline constexpr std::uint32_t kAllOptsAddrLoad = 1;
inline constexpr std::uint32_t kAllOptsInject = 8;

// ---- MPICH/Original (ch3-style) extra layering ------------------------------
// The original device funnels through the ADI vtable and always allocates and
// enqueues a full request. For MPI_PUT it implements the operation as a
// deferred active message over the pt2pt stack (the source of CH3's 1342).
inline constexpr std::uint32_t kOrigAdiDispatch = 12;       // vtable + layer hops
inline constexpr std::uint32_t kOrigSendQueueing = 14;      // enqueue + state machine
inline constexpr std::uint32_t kOrigExtraBranches = 6;
inline constexpr std::uint32_t kOrigPutLayerCalls = 65;     // layered call chain
inline constexpr std::uint32_t kOrigPutGenericChecks = 164; // generic op analysis
inline constexpr std::uint32_t kOrigPutAmBuild = 400;       // build AM header/op record
inline constexpr std::uint32_t kOrigPutOpQueue = 330;       // op-list management
inline constexpr std::uint32_t kOrigPutPt2ptIssue = 250;    // ride the pt2pt stack

// ---- Closed-form path breakdowns ---------------------------------------------
// The same sums the instrumented code paths accumulate, in closed form and
// per attribution category, so the runtime can convert modeled instructions
// into simulated CPU time without arming a meter and the reporting layer can
// assert metered == modeled bit-for-bit per category (obs::table_report).
// `orig` selects the CH3-style device, the booleans mirror BuildConfig.
struct Breakdown {
  std::array<std::uint32_t, kNumCategories> by_category{};

  constexpr std::uint32_t& operator[](Category c) noexcept {
    return by_category[static_cast<std::size_t>(c)];
  }
  constexpr std::uint32_t operator[](Category c) const noexcept {
    return by_category[static_cast<std::size_t>(c)];
  }
  constexpr std::uint32_t total() const noexcept {
    std::uint32_t t = 0;
    for (std::uint32_t v : by_category) t += v;
    return t;
  }
  constexpr std::uint32_t group(Group g) const noexcept {
    std::uint32_t t = 0;
    for (std::size_t i = 0; i < kNumCategories; ++i) {
      if (group_of(static_cast<Category>(i)) == g) t += by_category[i];
    }
    return t;
  }
};

inline constexpr Breakdown modeled_isend_breakdown(bool orig, bool err, bool thread,
                                                   bool ipo) {
  Breakdown b;
  if (!ipo) b[Category::CallOverhead] += kCallEntry + kCallPmpiAliasSend;
  if (thread) b[Category::ThreadGate] += kThreadGatePt2pt;
  if (err) {
    b[Category::ErrCheck] += kErrCommHandle + kErrRankRange + kErrTagRange + kErrCount +
                             kErrBuffer + kErrDatatype;
  }
  b[Category::MandObject] += kMandObjectDeref;
  b[Category::MandProcNull] += kMandProcNull;
  b[Category::MandRankmap] += kMandRankTranslateCompressed;
  b[Category::MandLocality] += kMandLocalitySelect;
  b[Category::MandMatch] += kMandMatchBits;
  b[Category::MandRequest] += kMandRequestAlloc;
  b[Category::MandInject] += kMandInjectResidual;
  if (!ipo) {
    b[Category::Redundant] +=
        kRedundantCommAttrs + kRedundantDatatypeResolve + kRedundantGenericCompletion;
  }
  if (orig) b[Category::OrigLayering] += kOrigAdiDispatch + kOrigSendQueueing + kOrigExtraBranches;
  return b;
}

inline constexpr Breakdown modeled_put_breakdown(bool orig, bool err, bool thread,
                                                 bool ipo) {
  Breakdown b;
  if (!ipo) b[Category::CallOverhead] += kCallEntry + kCallPmpiAliasRma;
  if (thread) b[Category::ThreadGate] += kThreadGateRma;
  if (err) {
    b[Category::ErrCheck] += kErrWinHandle + kErrRankRange + kErrCount + kErrBuffer +
                             kErrDatatype + kErrDispRange;
  }
  b[Category::MandProcNull] += kMandProcNull;
  if (orig) {
    b[Category::OrigLayering] += kOrigPutLayerCalls + kOrigPutGenericChecks + kOrigPutAmBuild +
                                 kOrigPutOpQueue + kOrigPutPt2ptIssue;
    b[Category::MandObject] += kMandObjectDeref;
    b[Category::MandRankmap] += kMandRankTranslateCompressed;
    return b;
  }
  b[Category::MandObject] += kMandObjectDeref;
  b[Category::MandRankmap] += kMandRankTranslateCompressed;
  b[Category::MandLocality] += kMandLocalitySelect;
  b[Category::MandRequest] += kMandRmaOpTracking;
  b[Category::MandVa] += kMandVaTranslate;
  b[Category::MandInject] += kMandInjectResidualRma;
  if (!ipo) {
    b[Category::Redundant] +=
        kRedundantWinAttrs + kRedundantDatatypeResolve + kRedundantGenericCompletion;
  }
  return b;
}

inline constexpr std::uint32_t modeled_isend_total(bool orig, bool err, bool thread,
                                                   bool ipo) {
  return modeled_isend_breakdown(orig, err, thread, ipo).total();
}

inline constexpr std::uint32_t modeled_put_total(bool orig, bool err, bool thread,
                                                 bool ipo) {
  return modeled_put_breakdown(orig, err, thread, ipo).total();
}

// Compile-time calibration anchors: the paper's headline totals must emerge
// from the closed forms (and, transitively, from the instrumented paths the
// tests assert equal to them).
static_assert(modeled_isend_total(false, true, true, false) == 221);
static_assert(modeled_put_total(false, true, true, false) == 215);
static_assert(modeled_isend_total(true, true, true, false) == 253);
static_assert(modeled_put_total(true, true, true, false) == 1342);

}  // namespace lwmpi::cost
