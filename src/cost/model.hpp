// Calibrated per-site modeled instruction counts.
//
// The paper measured dynamic instruction counts of MPICH/CH4 and
// MPICH/Original with Intel SDE (Table 1, Figures 2 and 6). We cannot run SDE
// against the authors' binaries, so each structural step of our
// implementation's critical path carries a modeled instruction cost. The
// constants below are calibrated so that the *sums over the real code path*
// reproduce the paper's reported breakdowns:
//
//   MPI_ISEND (ch4 default) = 74 err + 6 thread + 23 call + 59 redundant
//                             + 59 mandatory = 221
//   MPI_PUT   (ch4 default) = 72 err + 14 thread + 25 call + 60 redundant
//                             + 46 mandatory = 215  (paper: 72/14/25/62/44)
//   MPI_ISEND (orig) = 253, MPI_PUT (orig) = 1342
//   MPI_ISEND_ALL_OPTS = 16
//
// The benchmark binaries walk the actual implementation and report whatever
// the path accumulates; nothing looks these totals up directly.
#pragma once

#include <cstdint>

namespace lwmpi::cost {

// ---- Error checking (not mandated by the standard) -------------------------
inline constexpr std::uint32_t kErrCommHandle = 18;   // comm/win handle validity
inline constexpr std::uint32_t kErrWinHandle = 18;
inline constexpr std::uint32_t kErrRankRange = 12;    // rank within comm size
inline constexpr std::uint32_t kErrTagRange = 8;
inline constexpr std::uint32_t kErrCount = 6;
inline constexpr std::uint32_t kErrBuffer = 10;
inline constexpr std::uint32_t kErrDatatype = 20;     // valid + committed
inline constexpr std::uint32_t kErrDispRange = 6;     // RMA offset bounds
inline constexpr std::uint32_t kErrRequestHandle = 8;
inline constexpr std::uint32_t kErrRootRange = 10;
inline constexpr std::uint32_t kErrOpValid = 6;

// ---- Thread-safety gate -----------------------------------------------------
inline constexpr std::uint32_t kThreadGatePt2pt = 6;
inline constexpr std::uint32_t kThreadGateRma = 14;
// Extra charge when a VCI gate is *contended*: the acquiring thread leaves the
// uncontended fast path (the 6-instruction check above) and takes the slow
// futex-style acquisition. Charged on top of the base gate cost, only when
// try_lock fails -- an uncontended single-threaded path never pays it, which
// keeps the Table-1 closed forms below unchanged.
inline constexpr std::uint32_t kThreadGateContended = 24;

// ---- Function-call overhead -------------------------------------------------
// "Each MPI function call can take around 16-18 instructions just to load the
// stack and registers" plus the PMPI profiling alias indirection.
inline constexpr std::uint32_t kCallEntry = 17;
inline constexpr std::uint32_t kCallPmpiAliasSend = 6;
inline constexpr std::uint32_t kCallPmpiAliasRma = 8;

// ---- Redundant runtime checks (foldable with link-time inlining) ------------
inline constexpr std::uint32_t kRedundantDatatypeResolve = 34;  // size/contig of a
                                                                // compile-time-constant type
inline constexpr std::uint32_t kRedundantCommAttrs = 15;        // comm kind/size re-checks
inline constexpr std::uint32_t kRedundantWinAttrs = 16;         // window kind (dynamic?) check
inline constexpr std::uint32_t kRedundantGenericCompletion = 10;

// ---- Mandatory overheads (Section 3), ch4 fast path --------------------------
// 3.1 network address virtualization: compressed (memory-optimized) rank map.
inline constexpr std::uint32_t kMandRankTranslateCompressed = 11;
// Simple O(P) array lookup alternative: 2 instructions, one a dereference.
inline constexpr std::uint32_t kMandRankTranslateDirect = 2;
// MPI_ISEND_GLOBAL: a single register/load of the stored world address.
inline constexpr std::uint32_t kMandRankGlobalLoad = 1;
// 3.2 window offset -> virtual address.
inline constexpr std::uint32_t kMandVaTranslate = 4;
// 3.3 dynamically-allocated communicator / window object dereference.
inline constexpr std::uint32_t kMandObjectDeref = 8;
// Predefined-handle global-array slot: compiler folds to a global load.
inline constexpr std::uint32_t kMandObjectSlotLoad = 0;
// 3.4 MPI_PROC_NULL comparison + branch.
inline constexpr std::uint32_t kMandProcNull = 3;
// 3.5 request allocation + bookkeeping (alloc, init, pool links).
inline constexpr std::uint32_t kMandRequestAlloc = 13;
// _NOREQ replacement: increment an outstanding-operation counter.
inline constexpr std::uint32_t kMandCompletionCounter = 3;
// 3.6 match-bit construction from (context, src, tag).
inline constexpr std::uint32_t kMandMatchBits = 5;
// _NOMATCH with predefined comm: context match bits become a single load.
inline constexpr std::uint32_t kMandMatchCtxLoad = 1;
// Section 3.6's alternative design: an info-hint *branch* on every send.
inline constexpr std::uint32_t kMandHintBranch = 2;
// Locality (self / shmmod / netmod) selection.
inline constexpr std::uint32_t kMandLocalitySelect = 4;
// Residual cost of invoking the low-level injection API from the fast path.
inline constexpr std::uint32_t kMandInjectResidual = 15;
inline constexpr std::uint32_t kMandInjectResidualRma = 8;
// RMA per-operation completion tracking (epoch op counts).
inline constexpr std::uint32_t kMandRmaOpTracking = 6;

// ---- MPI_ISEND_ALL_OPTS minimal path ----------------------------------------
// All proposals combined; the paper reports 16 instructions total. Designed
// together, the checks fuse: locality 3, context load 1, completion counter 3,
// stored world-address load 1, minimal injection 8.
inline constexpr std::uint32_t kAllOptsLocality = 3;
inline constexpr std::uint32_t kAllOptsCtxLoad = 1;
inline constexpr std::uint32_t kAllOptsCounter = 3;
inline constexpr std::uint32_t kAllOptsAddrLoad = 1;
inline constexpr std::uint32_t kAllOptsInject = 8;

// ---- MPICH/Original (ch3-style) extra layering ------------------------------
// The original device funnels through the ADI vtable and always allocates and
// enqueues a full request. For MPI_PUT it implements the operation as a
// deferred active message over the pt2pt stack (the source of CH3's 1342).
inline constexpr std::uint32_t kOrigAdiDispatch = 12;       // vtable + layer hops
inline constexpr std::uint32_t kOrigSendQueueing = 14;      // enqueue + state machine
inline constexpr std::uint32_t kOrigExtraBranches = 6;
inline constexpr std::uint32_t kOrigPutLayerCalls = 65;     // layered call chain
inline constexpr std::uint32_t kOrigPutGenericChecks = 164; // generic op analysis
inline constexpr std::uint32_t kOrigPutAmBuild = 400;       // build AM header/op record
inline constexpr std::uint32_t kOrigPutOpQueue = 330;       // op-list management
inline constexpr std::uint32_t kOrigPutPt2ptIssue = 250;    // ride the pt2pt stack

// ---- Closed-form path totals --------------------------------------------------
// The same sums the instrumented code paths accumulate, in closed form, so the
// runtime can convert modeled instructions into simulated CPU time without
// arming a meter (tests assert closed-form == metered). `orig` selects the
// CH3-style device, the booleans mirror BuildConfig.
inline constexpr std::uint32_t modeled_isend_total(bool orig, bool err, bool thread,
                                                   bool ipo) {
  std::uint32_t t = 0;
  if (!ipo) t += kCallEntry + kCallPmpiAliasSend;
  if (thread) t += kThreadGatePt2pt;
  if (err) {
    t += kErrCommHandle + kErrRankRange + kErrTagRange + kErrCount + kErrBuffer +
         kErrDatatype;
  }
  t += kMandObjectDeref + kMandProcNull + kMandRankTranslateCompressed +
       kMandLocalitySelect + kMandMatchBits + kMandRequestAlloc + kMandInjectResidual;
  if (!ipo) t += kRedundantCommAttrs + kRedundantDatatypeResolve + kRedundantGenericCompletion;
  if (orig) t += kOrigAdiDispatch + kOrigSendQueueing + kOrigExtraBranches;
  return t;
}

inline constexpr std::uint32_t modeled_put_total(bool orig, bool err, bool thread,
                                                 bool ipo) {
  std::uint32_t t = 0;
  if (!ipo) t += kCallEntry + kCallPmpiAliasRma;
  if (thread) t += kThreadGateRma;
  if (err) {
    t += kErrWinHandle + kErrRankRange + kErrCount + kErrBuffer + kErrDatatype +
         kErrDispRange;
  }
  t += kMandProcNull;
  if (orig) {
    t += kOrigPutLayerCalls + kOrigPutGenericChecks + kMandObjectDeref +
         kMandRankTranslateCompressed + kOrigPutAmBuild + kOrigPutOpQueue +
         kOrigPutPt2ptIssue;
    return t;
  }
  t += kMandObjectDeref + kMandRankTranslateCompressed + kMandLocalitySelect +
       kMandRmaOpTracking + kMandVaTranslate + kMandInjectResidualRma;
  if (!ipo) t += kRedundantWinAttrs + kRedundantDatatypeResolve + kRedundantGenericCompletion;
  return t;
}

}  // namespace lwmpi::cost
