// Hang-diagnosis watchdog: blocking-call annotations plus a progress-stall
// detector.
//
// The failure mode hardest to diagnose in a real MPI deployment is not the
// crash but the silent hang: some rank waits forever on a message that will
// never arrive, and nothing in the system says who, where, or why. This
// module closes that gap in two pieces:
//
//   * BlockScope annotates every blocking wait loop (Wait/Waitall/Waitany/
//     Probe/Comm_waitall/Barrier/Win_fence/Win_lock/...) with the call name
//     and entry time, published through Engine::blocking_call(). Outermost
//     scope wins, so a Barrier that waits internally still reports "Barrier".
//
//   * Watchdog runs a sampling thread over a World. Per rank it remembers an
//     activity fingerprint (fabric traffic + request lifecycle counters);
//     when a rank has outstanding work but its fingerprint has not changed
//     for `stall_ns`, the rank is declared stuck and a HangReport is emitted:
//     each stuck rank's current blocking call, its oldest pending request's
//     (comm, tag, peer, age), and the full queue snapshot
//     (obs/introspect.hpp). The report renders as text or JSON; the JSON form
//     is what tools/hangdump pretty-prints.
//
// The watchdog fires once per stall episode and re-arms when any stuck rank
// makes progress again. It must be destroyed before the World it observes.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "obs/histogram.hpp"
#include "obs/introspect.hpp"
#include "obs/recorder.hpp"

namespace lwmpi {
class World;
}

namespace lwmpi::obs {

class Sampler;  // obs/sampler.hpp

// RAII blocking-call-site annotation. Constructed at the top of a blocking
// wait loop; nested scopes (a Barrier waiting on its internal receives) keep
// the outermost name. The annotation costs one relaxed load when nested and
// one timestamp + two stores when outermost -- and the hot wait() path only
// constructs one after its first completion check fails, so a request that is
// already complete pays nothing.
class BlockScope {
 public:
  BlockScope(Engine& e, const char* call) noexcept
      : e_(e), outer_(e.blocking_call_.load(std::memory_order_relaxed) == nullptr) {
    if (outer_) {
      e_.blocking_since_.store(lat_now_ns(), std::memory_order_relaxed);
      e_.blocking_call_.store(call, std::memory_order_release);
    }
  }
  ~BlockScope() {
    if (outer_) e_.blocking_call_.store(nullptr, std::memory_order_release);
  }
  BlockScope(const BlockScope&) = delete;
  BlockScope& operator=(const BlockScope&) = delete;

 private:
  Engine& e_;
  const bool outer_;
};

// One stuck rank's diagnosis.
struct StuckRank {
  Rank rank = 0;
  const char* call = "(not in an MPI call)";  // blocking-call annotation
  std::uint64_t blocked_ns = 0;               // time inside that call
  std::uint64_t stalled_ns = 0;               // time since last observed progress
  RankSnapshot snap;
  // When the world has a flight recorder, the stalled rank's last N surface
  // calls (oldest first) as (absolute op index, record) pairs -- the "last
  // moves" leading into the hang. Empty when recording is off.
  std::vector<std::pair<std::uint64_t, RecOp>> last_moves;
};

struct HangReport {
  std::vector<StuckRank> stuck;
  int nranks = 0;  // world size, for "1 of 4 ranks stuck" context
  // When a telemetry sampler was attached (WatchdogOptions::sampler), the
  // last N intervals of its time series as a JSON array (the shape
  // obs::render_json(RankSample) emits) -- so a hang report carries the rate
  // history leading into the stall. Empty when no sampler was attached.
  std::string timeline_json;
};

std::string render_text(const HangReport& r);
std::string render_json(const HangReport& r);

struct WatchdogOptions {
  // Defaults come from the watchdog_stall_ms / watchdog_poll_ms cvars
  // (obs/cvar.hpp; themselves 250ms / 20ms unless LWMPI_CVAR_* overrides):
  // leave a field at 0 to take the cvar, or set it explicitly to pin it.
  std::uint64_t stall_ns = 0;  // no-progress window before firing
  std::uint64_t poll_ns = 0;   // sampling period
  // Invoked (from the watchdog thread) with each new hang diagnosis.
  std::function<void(const HangReport&)> on_hang;
  // When non-empty, each diagnosis is also written here as JSON (the format
  // tools/hangdump consumes). Overwritten per episode.
  std::string report_path;
  // When non-empty, each diagnosis also dumps the merged causal trace (every
  // rank's trace ring, globally ordered) here as JSONL -- the format
  // tools/critpath consumes. Requires the world to be built with
  // BuildConfig::trace; written per episode so a hung run still yields a
  // critical-path-analyzable timeline.
  std::string causal_trace_path;
  // When non-null, each diagnosis embeds the sampler's last `timeline_depth`
  // intervals as HangReport::timeline_json (rendered into the JSON report and
  // pretty-printed by `hangdump --timeline`). The sampler must outlive the
  // watchdog.
  const Sampler* sampler = nullptr;
  std::size_t timeline_depth = 16;
  // How many of the stalled rank's most recent flight-recorder ops to embed
  // as StuckRank::last_moves (when the world records). On fire the watchdog
  // also flushes the trace bundle mid-run if the world has a record_path, so
  // a hung job still yields a replayable trace.
  std::size_t last_moves_depth = 16;
  // Also print the text rendering to stderr when firing.
  bool announce = false;
};

class Watchdog {
 public:
  explicit Watchdog(World& world, WatchdogOptions opts = {});
  ~Watchdog();  // stops and joins the sampling thread
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Number of distinct stall episodes diagnosed so far.
  int fires() const noexcept { return fires_.load(std::memory_order_acquire); }
  // Copy of the most recent diagnosis (empty report if none yet).
  HangReport last_report() const;

 private:
  void run();

  World& world_;
  const WatchdogOptions opts_;
  std::atomic<bool> stop_{false};
  std::atomic<int> fires_{0};
  mutable std::mutex report_mu_;
  HangReport last_;
  std::thread thread_;
};

}  // namespace lwmpi::obs
