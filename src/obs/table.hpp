// Attribution tier of the observability subsystem: live per-category cost
// breakdowns rendered as the paper's Table 1 / Figure 2.
//
// The cost meter (cost/meter.hpp) tags every charge site with a fine-grained
// attribution category. This module walks the *real* isend/put critical paths
// of a throwaway two-rank world with a meter armed -- the same methodology as
// the paper's Intel SDE traces -- and renders the per-operation, per-device,
// per-build category histograms in text and JSON. Every row is checked
// bit-for-bit against the closed-form decomposition in cost/model.hpp
// (`model_ok`), so a drifted charge site is caught by the reporting layer
// itself, not only by the unit tests.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "cost/meter.hpp"
#include "cost/model.hpp"

namespace lwmpi::obs {

// Walk one operation through a fresh two-rank world with a meter armed around
// the single metered call. Deterministic: the result depends only on
// (device, build). Tracing is forced off in the throwaway world so the walk
// never pollutes the process-global trace rings.
cost::Meter metered_isend(DeviceKind device, BuildConfig build);
cost::Meter metered_put(DeviceKind device, BuildConfig build);

// One row of the attribution report: a metered walk plus its closed-form
// decomposition and the bit-equality verdict.
struct AttributionRow {
  std::string_view op;  // "isend" | "put"
  DeviceKind device = DeviceKind::Ch4;
  BuildConfig build;
  cost::Meter::Snapshot metered;
  cost::Breakdown modeled;
  bool model_ok = false;  // metered == modeled, per category, bit-equal
};

// Build one row by walking the live path for (op, device, build).
AttributionRow attribution_row(std::string_view op, DeviceKind device, BuildConfig build);

// The paper's full measurement matrix: {isend, put} x {orig default, ch4
// default, no-err, no-err-single, no-err-single-ipo} (Table 1 + Figure 2).
std::vector<AttributionRow> collect_attribution();

// Render rows as text (Table-1-style grouped breakdown per configuration,
// plus the Figure-2 totals ladder) or as a JSON document:
//   {"attribution":[{"op":...,"device":...,"build":...,"total":...,
//     "groups":{...},"categories":{...},"modeled_total":...,"model_ok":...}]}
std::string table_report(std::span<const AttributionRow> rows, bool as_json);

// collect_attribution() + render.
std::string table_report(bool as_json);

// Both operations for a single (device, build): the slice World::stats_report
// embeds for the world's own configuration.
std::string attribution_report(DeviceKind device, BuildConfig build, bool as_json);

}  // namespace lwmpi::obs
