// Continuous telemetry sampler: the time-series tier of the observability
// subsystem.
//
// Everything below this tier is either a point-in-time snapshot (pvars,
// introspect) or a post-mortem artifact (traces, hangdumps, critical paths).
// Progress pathologies, though, are *rate* phenomena -- an unexpected queue
// that grows 50 entries per interval, a credit-stall ratio that climbs as a
// receiver falls behind -- visible only as a time series. The Sampler closes
// that gap:
//
//   * A background thread (same sliced-sleep discipline as the watchdog)
//     snapshots every rank at a configurable interval: per-VCI traffic
//     counters, per-lane fabric byte counters, queue-depth levels, progress
//     counters, credit-stall time, and the latency/wait histograms (via
//     LatSnapshot::snapshot()/delta(), so percentiles are interval-local, not
//     since-boot).
//   * Each tick derives interval rates -- msgs/sec and bytes/sec per lane,
//     credit-stall ratio, unexpected/posted queue growth, progress idle
//     fraction -- into a per-rank overwrite-oldest ring of RankSamples.
//   * The sampling interval is the *runtime-scope* cvar sampler_interval_ms
//     (obs/cvar.hpp), re-read every tick, so a tool can retune the cadence of
//     a live run and see it take effect in the next exported interval.
//   * An SLO rule engine evaluates threshold predicates (cvar-configured)
//     over the derived rates each tick; a fired rule becomes a structured
//     Alert on the sample and -- when the world was built with tracing -- an
//     Ev::Alert event in the trace ring, timestamped into the same causal
//     timeline as the messages that caused it.
//   * Export: Prometheus text-exposition format (prometheus()), JSONL time
//     series (export_jsonl()), and a compact JSON timeline block
//     (timeline_json()) the watchdog embeds in HangReports so a hang carries
//     its last N intervals of history. The destructor takes a final sample
//     and writes the configured teardown files.
//
// All reads are relaxed atomics or lock-free accessors -- the sampler never
// takes an engine or channel lock, so it cannot perturb or deadlock the
// engine it observes. Like the watchdog, a Sampler must be destroyed before
// the World it references.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "obs/causal.hpp"
#include "obs/histogram.hpp"

namespace lwmpi {
class World;
class Engine;
}

namespace lwmpi::obs {

struct SamplerOptions {
  // When non-empty, the destructor writes the full JSONL time series here.
  std::string jsonl_path;
  // When non-empty, the destructor writes a final Prometheus exposition here.
  std::string prom_path;
  // Record an Ev::Alert trace event per fired SLO rule (only when the world
  // was built with BuildConfig::trace).
  bool emit_trace_alerts = true;
};

// One fired SLO rule instance.
struct Alert {
  const char* rule = "";  // rule name (stable string literal)
  int rule_index = 0;
  Rank rank = 0;
  double value = 0.0;      // the derived rate that tripped
  double threshold = 0.0;  // the cvar threshold at fire time
  std::uint64_t t_ns = 0;
  std::uint64_t seq = 0;  // sample sequence number that fired it
};

// Interval rates for one (rank, vci) lane.
struct LaneSample {
  double send_per_s = 0.0;           // engine sends issued on this channel
  double deliver_per_s = 0.0;        // fabric packets delivered to this lane
  double deliver_bytes_per_s = 0.0;  // payload bytes delivered to this lane
  double inject_bytes_per_s = 0.0;   // payload bytes injected toward this lane
  std::uint64_t posted_depth = 0;    // instantaneous level at tick time
  std::uint64_t unexpected_depth = 0;
};

// One rank's derived interval: the unit of the time series.
struct RankSample {
  std::uint64_t t_ns = 0;        // lat_now_ns() at tick time
  std::uint64_t dt_ns = 0;       // measured elapsed time since previous tick
  std::uint64_t interval_ns = 0; // configured interval at tick time (cvar echo)
  std::uint64_t seq = 0;         // monotone tick number (shared across ranks)
  Rank rank = 0;
  std::vector<LaneSample> lanes;
  double sends_per_s = 0.0;
  double recvs_per_s = 0.0;
  std::uint64_t send_p99_ns = 0;  // interval-local p99 (delta histogram)
  std::uint64_t recv_p99_ns = 0;
  std::uint64_t posted_depth = 0;      // summed over lanes
  std::uint64_t unexpected_depth = 0;
  std::int64_t posted_growth = 0;      // depth change over the interval
  std::int64_t unexpected_growth = 0;
  double credit_stall_pct = 0.0;  // credit-stall ns as % of the interval
  double idle_pct = 0.0;          // idle progress calls / all progress calls
  // Interval wait-state counts, indexed by Wait - 1 (late_sender first).
  std::array<std::uint64_t, kNumWaitStates> wait_delta{};
  std::vector<Alert> alerts;  // SLO rules fired on this interval
};

// Render one sample as a single-line JSON object (the JSONL record shape).
std::string render_json(const RankSample& s);

class Sampler {
 public:
  explicit Sampler(World& world, SamplerOptions opts = {});
  ~Sampler();  // stops the thread, takes a final sample, writes teardown files
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  // Take one sample immediately, from any thread (serialized internally
  // against the background thread). Tests and teardown paths use this.
  void sample_now();

  std::uint64_t ticks() const noexcept { return ticks_.load(std::memory_order_acquire); }
  std::uint64_t alerts_fired() const noexcept {
    return alerts_fired_.load(std::memory_order_acquire);
  }
  std::size_t ring_depth() const noexcept { return ring_depth_; }

  // Copy of one rank's ring, oldest first.
  std::vector<RankSample> history(Rank r) const;

  // Prometheus text exposition: latest-interval gauges (rates, depths,
  // ratios) plus cumulative counters (wait classes, traffic, alerts).
  std::string prometheus() const;

  // The whole retained time series as JSONL: one line per (rank, interval),
  // rank-major, oldest first.
  void export_jsonl(std::ostream& os) const;

  // Compact JSON array of every rank's last `last_n` samples (merged,
  // oldest first) -- the block WatchdogOptions::sampler embeds in HangReport
  // JSON and `hangdump --timeline` pretty-prints.
  std::string timeline_json(std::size_t last_n) const;

 private:
  // Cumulative baseline for one rank, subtracted to form each interval.
  struct RawRank {
    std::uint64_t t_ns = 0;
    std::vector<std::uint64_t> lane_sends;
    std::vector<std::uint64_t> lane_delivered;
    std::vector<std::uint64_t> lane_deliver_bytes;
    std::vector<std::uint64_t> lane_inject_bytes;
    std::uint64_t sends = 0;
    std::uint64_t recvs = 0;
    std::uint64_t idle = 0;
    std::uint64_t swept = 0;
    std::uint64_t stall_ns = 0;
    std::uint64_t posted_depth = 0;
    std::uint64_t unexpected_depth = 0;
    std::array<std::uint64_t, kNumWaitStates> waits{};
    LatSnapshot send_lat;  // cumulative SendEager+SendRdv fold
    LatSnapshot recv_lat;  // cumulative RecvEager+RecvRdv fold
  };

  void run();
  void collect(Engine& e, RawRank* out) const;  // lock-free cumulative read
  void tick();                                  // one sample of every rank
  void evaluate_slo(RankSample* s);

  World& world_;
  const SamplerOptions opts_;
  const std::size_t ring_depth_;
  const bool trace_enabled_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> alerts_fired_{0};
  mutable std::mutex mu_;  // serializes ticks and guards raw_/rings_
  std::uint64_t seq_ = 0;  // under mu_
  std::vector<RawRank> raw_;
  std::vector<std::deque<RankSample>> rings_;  // per rank, overwrite-oldest
  std::thread thread_;
};

}  // namespace lwmpi::obs
