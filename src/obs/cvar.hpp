// MPI_T-style control-variable (cvar) registry: the tuning tier of the
// observability subsystem.
//
// MPI-3.1 section 14 pairs the performance variables (obs/pvar.hpp) with
// *control* variables: named, typed knobs a tool can enumerate, read, and --
// where the implementation allows -- write at runtime. Before this header the
// reproduction's knobs were scattered (BuildConfig::lat_sample_shift,
// WatchdogOptions::stall_ns, WorldOptions::netmod, BuildConfig::trace, ...),
// each with its own plumbing and none settable from the environment. The cvar
// registry unifies them:
//
//   * every variable has a stable name, a description, a default, and a
//     scope (MPI_T's CVAR scope concept):
//       - Startup:  consumed at World/Watchdog construction; writing later
//                   affects only objects built afterwards.
//       - Runtime:  consumers re-read continuously (the telemetry sampler's
//                   interval, the SLO thresholds), so a write takes effect on
//                   the next tick of whatever reads it.
//       - Constant: informational echo; writes are rejected (Err::Arg).
//   * every variable is env-bound: LWMPI_CVAR_<UPPER_NAME> seeds the value at
//     first registry access, so a run can be re-tuned without recompiling --
//     the MPICH MPIR_CVAR_* convention.
//   * reads/writes are relaxed atomics: any thread (the sampler, a rank
//     thread, a tool) may read while another writes; values are never torn.
//
// The registry is process-global, like the pvar registry: cvars describe the
// process's configuration surface, not one World's.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace lwmpi::obs {

enum class CvarScope : std::uint8_t {
  Startup,   // read once at object construction
  Runtime,   // consumers re-read; writes take effect on their next tick
  Constant,  // read-only echo; writes rejected
};

const char* to_string(CvarScope s) noexcept;

// Typed handles for in-tree consumers (tools enumerate by name instead).
enum class Cv : std::uint8_t {
  SamplerIntervalMs = 0,  // Runtime: telemetry sampling period
  SamplerRingDepth,       // Startup: per-rank sample ring capacity
  LatSampleShift,         // Startup: BuildConfig::lat_sample_shift override
  TraceEnable,            // Startup: BuildConfig::trace override
  WatchdogStallMs,        // Startup: WatchdogOptions::stall_ns default
  WatchdogPollMs,         // Startup: WatchdogOptions::poll_ns default
  NetmodDefault,          // Startup (string): WorldOptions::netmod default
  SloCreditStallPct,      // Runtime: alert when credit-stall ratio exceeds (%; 0 = off)
  SloUnexpectedDepth,     // Runtime: alert when unexpected-queue depth exceeds (0 = off)
  SloUnexpectedGrowth,    // Runtime: alert when unexpected depth grows by more
                          //          than this per interval (0 = off)
  SloProgressIdlePct,     // Runtime: alert when progress idle fraction exceeds (%; 0 = off)
  Prof,                   // Startup: enable the aggregate profiler (WorldOptions::prof)
  ProfDefaultPhase,       // Startup (string): name of phase 0 (default "main")
  ProfPath,               // Startup (string): World-teardown profile JSON path
  Record,                 // Startup: enable the flight recorder (WorldOptions::record)
  RecordPath,             // Startup (string): trace-bundle prefix for the flush
  RecordRingDepth,        // Startup: per-rank op-ring capacity (records kept)
  RecordSampleShift,      // Startup: 1 in 2^n recorded ops carry timing stamps
  MaxVcis,                // Constant: compile-time kMaxVcis echo (writes rejected)
  kCount,
};
inline constexpr int kNumCvars = static_cast<int>(Cv::kCount);

struct CvarInfo {
  std::string_view name;  // e.g. "sampler_interval_ms"
  std::string_view desc;
  CvarScope scope = CvarScope::Runtime;
  bool is_string = false;       // string-valued; numeric otherwise
  std::int64_t default_value = 0;  // numeric default (unused for strings)
  std::string_view default_str = {};  // string default (unused for numerics)
};

// --- registry enumeration (MPI_T_cvar_* analogs) ----------------------------
int LWMPI_T_cvar_num() noexcept;
Err LWMPI_T_cvar_get_info(int index, CvarInfo* info) noexcept;
// Name -> index, or -1 when unknown (MPI_T_CVAR_GET_INDEX analog).
int LWMPI_T_cvar_index(std::string_view name) noexcept;

// --- numeric access ---------------------------------------------------------
Err LWMPI_T_cvar_read(int index, std::int64_t* value) noexcept;
// Rejects Constant-scope and string-valued variables with Err::Arg.
Err LWMPI_T_cvar_write(int index, std::int64_t value) noexcept;

// --- string access (string-valued variables only; Err::Arg otherwise) -------
Err LWMPI_T_cvar_read_str(int index, std::string* value);
Err LWMPI_T_cvar_write_str(int index, std::string_view value);

// --- typed conveniences for in-tree consumers --------------------------------
std::int64_t cvar(Cv v) noexcept;
void cvar_set(Cv v, std::int64_t value) noexcept;
std::string cvar_str(Cv v);
// True once the variable has been set from the environment or written through
// the API -- Startup consumers use this to apply a cvar only when the user
// actually asked (so defaults never perturb explicitly-configured options).
bool cvar_overridden(Cv v) noexcept;
// The environment variable bound to `v`: "LWMPI_CVAR_" + upper-cased name.
std::string cvar_env_name(Cv v);

// One-line-per-cvar dump (name, scope, value, overridden flag); the text form
// lwmpi_top and stats tooling print.
std::string cvar_report();

namespace detail {
// Re-read every LWMPI_CVAR_* environment binding, discarding API writes.
// Test-only: lets a test process exercise the env path after setenv().
void cvar_reload_env_for_testing();
}  // namespace detail

}  // namespace lwmpi::obs
