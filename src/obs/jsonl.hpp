// Tolerant reader for line-oriented JSON artifacts.
//
// Every disk artifact the observability tiers write -- the telemetry
// sampler's JSONL time series, the profiler artifact, the watchdog hang
// report, the recorder's provenance sidecar -- is newline-terminated, and
// every one of them can legitimately be read while (or after) a writer died
// mid-append: --follow dashboards race the sampler, a killed job leaves a
// half-written report, a copied trace loses its tail. The shared policy,
// factored out of tools/lwmpi_top: consume only newline-terminated lines and
// drop the unterminated tail, flagging that it happened. The completed line
// shows up on the next re-read; half a record never reaches a parser.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace lwmpi::obs {

struct JsonlFile {
  std::vector<std::string> lines;  // complete (newline-terminated) lines, in order
  bool truncated_tail = false;     // the file ended mid-line; the tail was dropped
};

// Split in-memory text under the same policy (for callers that already own
// the bytes). Empty lines are skipped.
inline JsonlFile split_jsonl(std::string text) {
  JsonlFile out;
  const std::size_t last_nl = text.rfind('\n');
  if (last_nl == std::string::npos) {
    out.truncated_tail = !text.empty();
    return out;
  }
  out.truncated_tail = last_nl + 1 != text.size();
  text.resize(last_nl);
  std::istringstream lines(std::move(text));
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty()) out.lines.push_back(std::move(line));
  }
  return out;
}

// Read `path` tolerantly. Returns false only when the file cannot be opened;
// a truncated tail is reported through JsonlFile::truncated_tail, not failure.
inline bool read_jsonl(const std::string& path, JsonlFile* out) {
  std::ifstream f(path);
  if (!f) return false;
  std::ostringstream whole;
  whole << f.rdbuf();
  *out = split_jsonl(std::move(whole).str());
  return true;
}

}  // namespace lwmpi::obs
