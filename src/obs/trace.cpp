#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <mutex>

namespace lwmpi::obs::trace {

const char* to_string(Ev e) noexcept {
  switch (e) {
    case Ev::SendPost: return "send-post";
    case Ev::RecvPost: return "recv-post";
    case Ev::Match: return "match";
    case Ev::Inject: return "inject";
    case Ev::Deliver: return "deliver";
    case Ev::Complete: return "complete";
    case Ev::ZcopyWrite: return "zcopy-write";
    case Ev::Alert: return "alert";
  }
  return "?";
}

Ev ev_from_string(std::string_view s) noexcept {
  for (Ev e : {Ev::SendPost, Ev::RecvPost, Ev::Match, Ev::Inject, Ev::Deliver,
               Ev::Complete, Ev::ZcopyWrite, Ev::Alert}) {
    if (s == to_string(e)) return e;
  }
  return Ev::SendPost;
}

Ring::Ring(std::size_t min_capacity)
    : mask_(std::bit_ceil(min_capacity < 2 ? std::size_t{2} : min_capacity) - 1),
      slots_(mask_ + 1) {}

std::vector<Event> Ring::collect() const {
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  const std::uint64_t start = h > capacity() ? h - capacity() : 0;
  std::vector<Event> out;
  out.reserve(static_cast<std::size_t>(h - start));
  for (std::uint64_t i = start; i < h; ++i) {
    out.push_back(slots_[i & mask_]);
  }
  return out;
}

namespace {

// Registry of every thread's ring. Rings outlive their owning thread (the
// exporter collects after World::run joins), hence shared_ptr ownership.
std::mutex& registry_mu() {
  static std::mutex mu;
  return mu;
}
std::vector<std::shared_ptr<Ring>>& registry() {
  static std::vector<std::shared_ptr<Ring>> rings;
  return rings;
}

Ring& tl_ring() {
  thread_local std::shared_ptr<Ring> ring = [] {
    auto r = std::make_shared<Ring>(kDefaultRingCapacity);
    std::lock_guard<std::mutex> lk(registry_mu());
    registry().push_back(r);
    return r;
  }();
  return *ring;
}

std::atomic<std::uint64_t> g_seq{1};

}  // namespace

void record(const Event& e) noexcept { tl_ring().push(e); }

std::uint64_t next_seq() noexcept {
  return g_seq.fetch_add(1, std::memory_order_relaxed);
}

std::vector<Event> collect_all() {
  std::lock_guard<std::mutex> lk(registry_mu());
  std::vector<Event> out;
  for (const auto& r : registry()) {
    std::vector<Event> part = r->collect();
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

std::uint64_t dropped_all() {
  std::lock_guard<std::mutex> lk(registry_mu());
  std::uint64_t n = 0;
  for (const auto& r : registry()) n += r->dropped();
  return n;
}

void reset_all() {
  std::lock_guard<std::mutex> lk(registry_mu());
  for (const auto& r : registry()) r->clear();
}

namespace {

// Chrome's trace viewer sorts equal timestamps arbitrarily; break ties by
// lifecycle stage so post always precedes complete within one message.
int stage_order(Ev e) noexcept {
  switch (e) {
    case Ev::SendPost:
    case Ev::RecvPost: return 0;
    case Ev::Inject: return 1;
    case Ev::Deliver: return 2;
    case Ev::ZcopyWrite: return 2;
    case Ev::Match: return 3;
    case Ev::Complete: return 4;
    case Ev::Alert: return 5;
  }
  return 5;
}

void write_common(std::ostream& os, const Event& e, std::uint64_t base_ns) {
  // Chrome trace timestamps are microseconds; emit fractional us to keep
  // nanosecond resolution and strict monotonicity.
  const std::uint64_t rel = e.ts_ns - base_ns;
  os << "\"ts\":" << rel / 1000 << "." << static_cast<char>('0' + (rel / 100) % 10)
     << static_cast<char>('0' + (rel / 10) % 10) << static_cast<char>('0' + rel % 10)
     << ",\"pid\":" << e.rank << ",\"tid\":" << static_cast<int>(e.vci);
}

void write_args(std::ostream& os, const Event& e) {
  os << "\"args\":{\"seq\":" << e.seq << ",\"peer\":" << e.peer << ",\"tag\":" << e.tag
     << ",\"bytes\":" << e.bytes << ",\"vci\":" << static_cast<int>(e.vci) << "}";
}

}  // namespace

void export_chrome_json(std::ostream& os, std::span<const Event> events) {
  std::vector<Event> sorted(events.begin(), events.end());
  std::stable_sort(sorted.begin(), sorted.end(), [](const Event& a, const Event& b) {
    if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
    if (a.seq != b.seq) return a.seq < b.seq;
    return stage_order(a.kind) < stage_order(b.kind);
  });
  const std::uint64_t base = sorted.empty() ? 0 : sorted.front().ts_ns;

  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };

  // One instant event per lifecycle step.
  for (const Event& e : sorted) {
    sep();
    os << "{\"name\":\"" << to_string(e.kind) << "\",\"ph\":\"i\",\"s\":\"t\",\"cat\":\"msg\",";
    write_common(os, e, base);
    os << ",";
    write_args(os, e);
    os << "}";
  }

  // Async begin/end per message: the post -> complete chain. `sorted` is
  // timestamp-ordered, so the first/last occurrence of a seq bound its chain.
  struct Chain {
    const Event* first = nullptr;
    const Event* last = nullptr;
  };
  std::vector<std::pair<std::uint64_t, Chain>> chains;  // seq-keyed, small N
  for (const Event& e : sorted) {
    if (e.seq == 0) continue;
    auto it = std::find_if(chains.begin(), chains.end(),
                           [&](const auto& c) { return c.first == e.seq; });
    if (it == chains.end()) {
      chains.push_back({e.seq, Chain{&e, &e}});
    } else {
      it->second.last = &e;
    }
  }
  for (const auto& [seq, chain] : chains) {
    sep();
    os << "{\"name\":\"msg " << seq << "\",\"ph\":\"b\",\"cat\":\"msg\",\"id\":" << seq << ",";
    write_common(os, *chain.first, base);
    os << ",";
    write_args(os, *chain.first);
    os << "},{\"name\":\"msg " << seq << "\",\"ph\":\"e\",\"cat\":\"msg\",\"id\":" << seq
       << ",";
    write_common(os, *chain.last, base);
    os << "}";
  }

  // Flow events per message: start at the first Inject, step through each
  // Deliver (and the zcopy landing), finish at the last hop. Perfetto draws
  // these as arrows between the per-rank (pid) tracks, so the RTS -> CTS ->
  // RdvDone / rdma_write arcs of a rendezvous read as a cross-rank chain.
  auto is_hop = [](Ev k) {
    return k == Ev::Inject || k == Ev::Deliver || k == Ev::ZcopyWrite;
  };
  for (const auto& [seq, chain] : chains) {
    std::vector<const Event*> hops;
    for (const Event& e : sorted) {
      if (e.seq == seq && is_hop(e.kind)) hops.push_back(&e);
    }
    if (hops.size() < 2) continue;
    for (std::size_t i = 0; i < hops.size(); ++i) {
      const char* ph = i == 0 ? "s" : (i + 1 == hops.size() ? "f" : "t");
      sep();
      os << "{\"name\":\"msg " << seq << "\",\"ph\":\"" << ph
         << "\",\"cat\":\"flow\",\"id\":" << seq << ",";
      if (ph[0] == 'f') os << "\"bp\":\"e\",";
      write_common(os, *hops[i], base);
      os << "}";
    }
  }

  os << "]}";
}

}  // namespace lwmpi::obs::trace
