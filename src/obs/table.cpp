#include "obs/table.hpp"

#include <cstdio>
#include <sstream>
#include <vector>

#include "core/engine.hpp"
#include "runtime/world.hpp"

namespace lwmpi::obs {

namespace {

WorldOptions walk_opts(DeviceKind device, BuildConfig build) {
  WorldOptions o;
  o.device = device;
  o.build = build;
  o.build.trace = false;  // keep the walk out of the process-global trace rings
  o.ranks_per_node = 1;
  return o;
}

bool matches_model(const cost::Meter::Snapshot& metered, const cost::Breakdown& modeled) {
  for (std::size_t i = 0; i < cost::kNumCategories; ++i) {
    if (metered.by_category[i] != modeled.by_category[i]) return false;
  }
  return true;
}

void append_json_row(std::ostringstream& out, const AttributionRow& r, bool first) {
  out << (first ? "" : ",") << "{\"op\":\"" << r.op << "\",\"device\":\""
      << to_string(r.device) << "\",\"build\":\"" << r.build.label() << "\",\"total\":"
      << r.metered.total << ",\"groups\":{";
  for (std::size_t g = 0; g < cost::kNumGroups; ++g) {
    out << (g == 0 ? "" : ",") << '"' << cost::to_string(static_cast<cost::Group>(g))
        << "\":" << r.metered.group(static_cast<cost::Group>(g));
  }
  out << "},\"categories\":{";
  for (std::size_t c = 0; c < cost::kNumCategories; ++c) {
    out << (c == 0 ? "" : ",") << '"' << cost::to_string(static_cast<cost::Category>(c))
        << "\":" << r.metered.by_category[c];
  }
  out << "},\"modeled_total\":" << r.modeled.total()
      << ",\"model_ok\":" << (r.model_ok ? "true" : "false") << '}';
}

// Text rendering: pairs of rows (same device+build, isend then put) become one
// Table-1-style block; singletons render alone.
void append_text_block(std::ostringstream& out, const AttributionRow* isend,
                       const AttributionRow* put) {
  const AttributionRow& any = isend != nullptr ? *isend : *put;
  out << "--- " << to_string(any.device) << " (" << any.build.label() << ") ---\n";
  char line[128];
  std::snprintf(line, sizeof(line), "%-26s %10s %10s\n", "category", "isend", "put");
  out << line;
  auto cell = [](const AttributionRow* r, std::uint64_t v) {
    return r != nullptr ? std::to_string(v) : std::string("-");
  };
  for (std::size_t g = 0; g < cost::kNumGroups; ++g) {
    const auto grp = static_cast<cost::Group>(g);
    const std::uint64_t iv = isend != nullptr ? isend->metered.group(grp) : 0;
    const std::uint64_t pv = put != nullptr ? put->metered.group(grp) : 0;
    if (iv == 0 && pv == 0) continue;
    std::snprintf(line, sizeof(line), "%-26s %10s %10s\n",
                  std::string(cost::to_string(grp)).c_str(), cell(isend, iv).c_str(),
                  cell(put, pv).c_str());
    out << line;
  }
  // Section-3 mandatory detail: the fine categories behind the Mandatory row.
  for (std::size_t c = 0; c < cost::kNumCategories; ++c) {
    const auto cat = static_cast<cost::Category>(c);
    if (cost::group_of(cat) != cost::Group::Mandatory) continue;
    const std::uint64_t iv = isend != nullptr ? isend->metered.category(cat) : 0;
    const std::uint64_t pv = put != nullptr ? put->metered.category(cat) : 0;
    if (iv == 0 && pv == 0) continue;
    std::snprintf(line, sizeof(line), "  %-24s %10s %10s\n",
                  std::string(cost::to_string(cat)).c_str(), cell(isend, iv).c_str(),
                  cell(put, pv).c_str());
    out << line;
  }
  std::snprintf(line, sizeof(line), "%-26s %10s %10s\n", "total",
                cell(isend, isend != nullptr ? isend->metered.total : 0).c_str(),
                cell(put, put != nullptr ? put->metered.total : 0).c_str());
  out << line;
  auto verdict = [&](const AttributionRow* r) {
    if (r == nullptr) return;
    out << "model check (" << r->op << "): "
        << (r->model_ok ? "OK" : "MISMATCH") << " (modeled " << r->modeled.total()
        << ")\n";
  };
  verdict(isend);
  verdict(put);
}

}  // namespace

cost::Meter metered_isend(DeviceKind device, BuildConfig build) {
  cost::Meter out;
  World w(2, walk_opts(device, build));
  w.run([&](Engine& e) {
    if (e.world_rank() == 0) {
      int v = 7;
      Request r = kRequestNull;
      {
        cost::ScopedMeter arm(out);
        e.isend(&v, 1, kInt, 1, 1, kCommWorld, &r);
      }
      e.wait(&r, nullptr);
    } else {
      int got = 0;
      e.recv(&got, 1, kInt, 0, 1, kCommWorld, nullptr);
    }
  });
  return out;
}

cost::Meter metered_put(DeviceKind device, BuildConfig build) {
  cost::Meter out;
  World w(2, walk_opts(device, build));
  w.run([&](Engine& e) {
    std::vector<int> mem(8, 0);
    Win win = kWinNull;
    e.win_create(mem.data(), mem.size() * sizeof(int), sizeof(int), kCommWorld, &win);
    e.win_fence(win);
    if (e.world_rank() == 0) {
      const int v = 3;
      cost::ScopedMeter arm(out);
      e.put(&v, 1, kInt, 1, 0, 1, kInt, win);
    }
    e.win_fence(win);
    e.win_free(&win);
  });
  return out;
}

AttributionRow attribution_row(std::string_view op, DeviceKind device, BuildConfig build) {
  AttributionRow r;
  r.op = op == "put" ? "put" : "isend";
  r.device = device;
  r.build = build;
  const bool orig = device == DeviceKind::Orig;
  if (r.op == "put") {
    r.metered = metered_put(device, build).snapshot();
    r.modeled = cost::modeled_put_breakdown(orig, build.error_checking, build.thread_safety,
                                            build.ipo);
  } else {
    r.metered = metered_isend(device, build).snapshot();
    r.modeled = cost::modeled_isend_breakdown(orig, build.error_checking,
                                              build.thread_safety, build.ipo);
  }
  r.model_ok = matches_model(r.metered, r.modeled);
  return r;
}

std::vector<AttributionRow> collect_attribution() {
  struct Config {
    DeviceKind device;
    BuildConfig build;
  };
  const Config matrix[] = {
      {DeviceKind::Orig, BuildConfig::dflt()},
      {DeviceKind::Ch4, BuildConfig::dflt()},
      {DeviceKind::Ch4, BuildConfig::no_err()},
      {DeviceKind::Ch4, BuildConfig::no_err_single()},
      {DeviceKind::Ch4, BuildConfig::no_err_single_ipo()},
  };
  std::vector<AttributionRow> rows;
  rows.reserve(2 * std::size(matrix));
  for (const Config& c : matrix) {
    rows.push_back(attribution_row("isend", c.device, c.build));
    rows.push_back(attribution_row("put", c.device, c.build));
  }
  return rows;
}

std::string table_report(std::span<const AttributionRow> rows, bool as_json) {
  std::ostringstream out;
  if (as_json) {
    out << "{\"attribution\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) append_json_row(out, rows[i], i == 0);
    out << "]}";
    return out.str();
  }
  out << "=== cost attribution (metered live paths vs closed-form model) ===\n";
  // Pair isend/put rows of the same configuration into one block.
  std::vector<bool> used(rows.size(), false);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (used[i]) continue;
    const AttributionRow* isend = rows[i].op == "isend" ? &rows[i] : nullptr;
    const AttributionRow* put = rows[i].op == "put" ? &rows[i] : nullptr;
    for (std::size_t j = i + 1; j < rows.size(); ++j) {
      if (used[j] || rows[j].device != rows[i].device ||
          rows[j].build.label() != rows[i].build.label() || rows[j].op == rows[i].op) {
        continue;
      }
      if (rows[j].op == "isend") isend = &rows[j]; else put = &rows[j];
      used[j] = true;
      break;
    }
    used[i] = true;
    append_text_block(out, isend, put);
  }
  return out.str();
}

std::string table_report(bool as_json) {
  const std::vector<AttributionRow> rows = collect_attribution();
  return table_report(rows, as_json);
}

std::string attribution_report(DeviceKind device, BuildConfig build, bool as_json) {
  const AttributionRow rows[] = {
      attribution_row("isend", device, build),
      attribution_row("put", device, build),
  };
  return table_report(rows, as_json);
}

}  // namespace lwmpi::obs
