// Message-lifetime latency histograms: the distribution tier of the
// observability subsystem.
//
// Counters (obs/counters.hpp) say how many messages took each path; they say
// nothing about where a message spends its *time*. This header adds
// log2-bucketed latency histograms stamped at the protocol's lifecycle edges
// (post -> match -> complete) so the runtime can report p50/p99/max per
// (device, path) -- through the pvar registry, World::stats_report, and
// bench::JsonResult.
//
// Design constraints, in order:
//   1. The record path must fit inside the same 3% budget bench_obs_overhead
//      enforces for counters. A log2 bucket index is one bit-scan; the bucket
//      update is a relaxed load+store (single writer under the channel lock,
//      same discipline as CounterBlock); there is no count/sum pair on the
//      hot path -- totals are derived by summing buckets at read time.
//   2. Timestamps must be cheap. clock_gettime is ~20-25ns per call and the
//      instrumented paths take up to four stamps per message; on x86_64 we
//      read the TSC directly (~7ns) and convert with a factor calibrated once
//      per process against the steady clock. Other targets fall back to the
//      steady clock.
//   3. Readers never stop the writer. Buckets are atomics; a reader folds a
//      racy-but-untorn snapshot, which is exactly the MPI_T pvar contract.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string_view>

#include "runtime/backoff.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace lwmpi::obs {

// Fast monotonic nanosecond clock for latency stamping. Absolute epoch is
// meaningless; only differences between two lat_now_ns() values are used.
// Never returns 0, so 0 can serve as the "no timestamp" sentinel in slots.
#if defined(__x86_64__) || defined(_M_X64)
inline std::uint64_t lat_now_ns() noexcept {
  // Calibrate tsc->ns once per process against the steady clock. ~1ms of
  // spinning at startup; thread-safe via the magic-static guard.
  static const double kNsPerTick = [] {
    const std::uint64_t t0 = rt::now_ns();
    const std::uint64_t c0 = __rdtsc();
    while (rt::now_ns() - t0 < 1'000'000) {
    }
    const std::uint64_t t1 = rt::now_ns();
    const std::uint64_t c1 = __rdtsc();
    return static_cast<double>(t1 - t0) / static_cast<double>(c1 - c0);
  }();
  const auto ns = static_cast<std::uint64_t>(static_cast<double>(__rdtsc()) * kNsPerTick);
  return ns | 1;  // never 0
}
#else
inline std::uint64_t lat_now_ns() noexcept { return rt::now_ns() | 1; }
#endif

// Instrumented lifecycle paths. Send/Recv x Eager/Rdv measure the full
// request lifetime (post to completion); UnexpectedWait measures how long an
// eager/RTS packet sat on the unexpected queue before a matching receive was
// posted; SendQueueWait measures orig-device software send-queue residency.
enum class LatPath : std::uint8_t {
  SendEager = 0,
  SendRdv,
  RecvEager,
  RecvRdv,
  UnexpectedWait,
  SendQueueWait,
  kCount,
};
inline constexpr std::size_t kNumLatPaths = static_cast<std::size_t>(LatPath::kCount);

constexpr std::string_view to_string(LatPath p) noexcept {
  switch (p) {
    case LatPath::SendEager: return "send_eager";
    case LatPath::SendRdv: return "send_rdv";
    case LatPath::RecvEager: return "recv_eager";
    case LatPath::RecvRdv: return "recv_rdv";
    case LatPath::UnexpectedWait: return "unexpected_wait";
    case LatPath::SendQueueWait: return "send_queue_wait";
    default: return "?";
  }
}

// 48 log2 buckets cover [0, 2^47) ns -- about 39 hours, far beyond any
// message lifetime; larger values clamp into the top bucket.
inline constexpr int kLatBuckets = 48;

// One latency distribution. Bucket i counts samples whose nanosecond value
// has bit-width i, i.e. lies in [2^(i-1), 2^i - 1] (bucket 0/1 share the
// smallest values via the |1 below). Single writer under the owning channel's
// lock; readers fold racy-but-untorn relaxed loads.
struct LatencyHist {
  std::array<std::atomic<std::uint64_t>, kLatBuckets> bucket{};
  std::atomic<std::uint64_t> max_ns{0};

  static constexpr int bucket_of(std::uint64_t ns) noexcept {
    const int b = std::bit_width(ns | 1);
    return b < kLatBuckets ? b : kLatBuckets - 1;
  }

  void record(std::uint64_t ns) noexcept {
    auto& b = bucket[static_cast<std::size_t>(bucket_of(ns))];
    b.store(b.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
    if (ns > max_ns.load(std::memory_order_relaxed)) {
      max_ns.store(ns, std::memory_order_relaxed);
    }
  }

  // Racy-but-untorn point-in-time copy (defined below LatSnapshot).
  inline struct LatSnapshot snapshot() const noexcept;
};

// Reader-side fold of one or more LatencyHists (e.g. the same path across
// every VCI of an engine). Plain integers: built on demand, never shared.
struct LatSnapshot {
  std::array<std::uint64_t, kLatBuckets> bucket{};
  std::uint64_t max_ns = 0;
  std::uint64_t count = 0;

  void merge(const LatencyHist& h) noexcept {
    for (int i = 0; i < kLatBuckets; ++i) {
      const std::uint64_t n = h.bucket[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
      bucket[static_cast<std::size_t>(i)] += n;
      count += n;
    }
    const std::uint64_t m = h.max_ns.load(std::memory_order_relaxed);
    if (m > max_ns) max_ns = m;
  }

  // Interval view: the samples this snapshot recorded beyond `older` (an
  // earlier snapshot of the same distribution). Per-bucket subtraction
  // saturates at zero so a racy-but-untorn pair can never wrap. `max_ns` is
  // cumulative in the source histogram, so the delta keeps the newer value --
  // an upper bound on the interval max, which is exactly how percentile()
  // uses it (a clamp). The telemetry sampler builds per-interval wait-class
  // and latency distributions from this.
  LatSnapshot delta(const LatSnapshot& older) const noexcept {
    LatSnapshot d;
    for (int i = 0; i < kLatBuckets; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const std::uint64_t now = bucket[idx];
      const std::uint64_t was = older.bucket[idx];
      d.bucket[idx] = now >= was ? now - was : 0;
      d.count += d.bucket[idx];
    }
    d.max_ns = max_ns;
    return d;
  }

  // Percentile as the *upper bound* of the bucket holding the q-quantile
  // sample, clamped by the observed max -- a conservative estimate whose
  // error is bounded by the log2 bucket width. Returns 0 on an empty
  // distribution.
  std::uint64_t percentile(double q) const noexcept {
    if (count == 0) return 0;
    auto target = static_cast<std::uint64_t>(q * static_cast<double>(count));
    if (target < 1) target = 1;
    if (target > count) target = count;
    std::uint64_t cum = 0;
    for (int i = 0; i < kLatBuckets; ++i) {
      cum += bucket[static_cast<std::size_t>(i)];
      if (cum >= target) {
        const std::uint64_t upper =
            i >= 63 ? ~std::uint64_t{0} : (std::uint64_t{1} << i) - 1;
        return upper < max_ns ? upper : max_ns;
      }
    }
    return max_ns;
  }
};

inline LatSnapshot LatencyHist::snapshot() const noexcept {
  LatSnapshot s;
  s.merge(*this);
  return s;
}

// Per-VCI latency block: one histogram per instrumented path. `enabled`
// follows BuildConfig::counters and `sample_mask` follows
// BuildConfig::lat_sample_shift; both are set once at engine construction
// before the world's rank threads start (same contract as
// CounterBlock::enabled).
//
// arm() is the sampling gate called once per message at its post site: it
// decides whether this message gets TSC-stamped at all. Un-sampled messages
// carry a 0 timestamp and every downstream record site already skips those,
// so the per-message cost in the common case is one branch and one counter
// increment -- the stamps themselves (~20ns each where the TSC is
// virtualized) are only paid by 1 in 2^lat_sample_shift messages.
struct alignas(64) VciLatency {
  std::array<LatencyHist, kNumLatPaths> hist{};
  bool enabled = true;
  std::uint32_t sample_mask = 63;  // stamp 1 in (mask + 1) messages
  std::uint32_t sample_tick = 0;   // single writer under the channel lock

  bool arm() noexcept {
    if (!enabled) return false;
    return (sample_tick++ & sample_mask) == 0;
  }
  void record(LatPath p, std::uint64_t ns) noexcept {
    if (!enabled) return;
    hist[static_cast<std::size_t>(p)].record(ns);
  }
  const LatencyHist& of(LatPath p) const noexcept {
    return hist[static_cast<std::size_t>(p)];
  }
};

}  // namespace lwmpi::obs
