// Progress-stall detector (obs/watchdog.hpp).
//
// The sampling thread keeps, per rank, the last activity fingerprint and the
// time it last changed. A rank is stuck when it has outstanding work (live
// requests, undelivered fabric traffic, or queued sends) or sits inside a
// blocking call, and its fingerprint has not moved for stall_ns. One report
// is emitted per episode: the fired flag re-arms only after a sample in which
// no rank is stuck, so a persistent deadlock produces exactly one diagnosis.
#include "obs/watchdog.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/causal.hpp"
#include "obs/cvar.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "runtime/world.hpp"

namespace lwmpi::obs {

namespace {

// Resolve the 0-means-default fields against the cvar registry, so
// LWMPI_CVAR_WATCHDOG_STALL_MS / _POLL_MS retune every watchdog that did not
// pin its thresholds explicitly.
WatchdogOptions apply_cvar_defaults(WatchdogOptions opts) {
  if (opts.stall_ns == 0) {
    opts.stall_ns =
        static_cast<std::uint64_t>(std::max<std::int64_t>(1, cvar(Cv::WatchdogStallMs))) *
        1'000'000;
  }
  if (opts.poll_ns == 0) {
    opts.poll_ns =
        static_cast<std::uint64_t>(std::max<std::int64_t>(1, cvar(Cv::WatchdogPollMs))) *
        1'000'000;
  }
  return opts;
}

}  // namespace

std::string render_text(const HangReport& r) {
  std::ostringstream o;
  o << "=== lwmpi hang diagnosis: " << r.stuck.size() << " of " << r.nranks
    << " rank(s) stuck ===\n";
  for (const StuckRank& s : r.stuck) {
    o << "rank " << s.rank << " stuck in " << s.call << " (blocked "
      << s.blocked_ns / 1'000'000 << "ms, no progress for " << s.stalled_ns / 1'000'000
      << "ms)\n";
    o << render_text(s.snap);
    if (!s.last_moves.empty()) {
      o << "  last moves (oldest first):\n";
      for (const auto& [idx, op] : s.last_moves) {
        o << "    #" << idx << ' ' << rec_kind_name(op.kind) << " peer=" << op.peer
          << " tag=" << op.tag << " vci=" << static_cast<int>(op.vci)
          << " bytes=" << op.bytes;
        if (op.link != 0) o << " link=-" << op.link;
        o << '\n';
      }
    }
  }
  return o.str();
}

std::string render_json(const HangReport& r) {
  std::ostringstream o;
  o << "{\"nranks\":" << r.nranks << ",\"stuck\":[";
  for (std::size_t i = 0; i < r.stuck.size(); ++i) {
    const StuckRank& s = r.stuck[i];
    o << (i == 0 ? "" : ",") << "{\"rank\":" << s.rank << ",\"call\":\"" << s.call
      << "\",\"blocked_ns\":" << s.blocked_ns << ",\"stalled_ns\":" << s.stalled_ns
      << ",\"snapshot\":" << render_json(s.snap);
    if (!s.last_moves.empty()) {
      o << ",\"last_moves\":[";
      for (std::size_t j = 0; j < s.last_moves.size(); ++j) {
        const auto& [idx, op] = s.last_moves[j];
        o << (j == 0 ? "" : ",") << "{\"op\":" << idx << ",\"kind\":\""
          << rec_kind_name(op.kind) << "\",\"peer\":" << op.peer << ",\"tag\":" << op.tag
          << ",\"vci\":" << static_cast<int>(op.vci) << ",\"bytes\":" << op.bytes
          << ",\"link\":" << op.link << '}';
      }
      o << ']';
    }
    o << '}';
  }
  o << "]";
  if (!r.timeline_json.empty()) o << ",\"timeline\":" << r.timeline_json;
  o << "}";
  return o.str();
}

Watchdog::Watchdog(World& world, WatchdogOptions opts)
    : world_(world), opts_(apply_cvar_defaults(std::move(opts))) {
  thread_ = std::thread([this] { run(); });
}

Watchdog::~Watchdog() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

HangReport Watchdog::last_report() const {
  std::lock_guard<std::mutex> lk(report_mu_);
  return last_;
}

void Watchdog::run() {
  const int n = world_.nranks();
  struct RankState {
    std::uint64_t fingerprint = 0;
    std::uint64_t last_change_ns = 0;
  };
  std::vector<RankState> state(static_cast<std::size_t>(n));
  {
    const std::uint64_t now = lat_now_ns();
    for (int r = 0; r < n; ++r) {
      state[static_cast<std::size_t>(r)].fingerprint =
          world_.engine(r).activity_fingerprint();
      state[static_cast<std::size_t>(r)].last_change_ns = now;
    }
  }
  bool fired_this_episode = false;

  // Sleep in small slices so destruction never waits a full poll period.
  constexpr std::uint64_t kSliceNs = 2'000'000;
  while (!stop_.load(std::memory_order_acquire)) {
    std::uint64_t slept = 0;
    while (slept < opts_.poll_ns && !stop_.load(std::memory_order_acquire)) {
      const std::uint64_t chunk = std::min(kSliceNs, opts_.poll_ns - slept);
      std::this_thread::sleep_for(std::chrono::nanoseconds(chunk));
      slept += chunk;
    }
    if (stop_.load(std::memory_order_acquire)) break;

    const std::uint64_t now = lat_now_ns();
    std::vector<Rank> stuck_ranks;
    for (int r = 0; r < n; ++r) {
      Engine& e = world_.engine(r);
      RankState& st = state[static_cast<std::size_t>(r)];
      const std::uint64_t fp = e.activity_fingerprint();
      if (fp != st.fingerprint) {
        st.fingerprint = fp;
        st.last_change_ns = now;
        continue;
      }
      const bool busy = e.has_outstanding_work() || e.blocking_call() != nullptr;
      if (busy && now - st.last_change_ns >= opts_.stall_ns) {
        stuck_ranks.push_back(static_cast<Rank>(r));
      }
    }

    if (stuck_ranks.empty()) {
      fired_this_episode = false;  // progress resumed: re-arm
      continue;
    }
    if (fired_this_episode) continue;  // one diagnosis per episode
    fired_this_episode = true;

    HangReport report;
    report.nranks = n;
    for (Rank r : stuck_ranks) {
      Engine& e = world_.engine(r);
      StuckRank s;
      s.rank = r;
      s.snap = e.snapshot();
      if (s.snap.blocking_call != nullptr) s.call = s.snap.blocking_call;
      s.blocked_ns = s.snap.blocked_ns;
      s.stalled_ns = now - state[static_cast<std::size_t>(r)].last_change_ns;
      if (Recorder* rec = world_.recorder(); rec != nullptr) {
        s.last_moves = rec->rank(r).last_ops(opts_.last_moves_depth);
      }
      report.stuck.push_back(std::move(s));
    }
    if (opts_.sampler != nullptr) {
      report.timeline_json = opts_.sampler->timeline_json(opts_.timeline_depth);
    }
    {
      std::lock_guard<std::mutex> lk(report_mu_);
      last_ = report;
    }
    fires_.fetch_add(1, std::memory_order_release);
    if (!opts_.report_path.empty()) {
      std::ofstream f(opts_.report_path, std::ios::trunc);
      if (f) f << render_json(report) << '\n';
    }
    if (!opts_.causal_trace_path.empty()) {
      // Ranks are stalled, not quiescent, so a racing producer could overwrite
      // its ring's oldest events mid-collect; for a hang diagnosis a slightly
      // frayed tail beats no timeline at all.
      std::ofstream f(opts_.causal_trace_path, std::ios::trunc);
      if (f) {
        const std::vector<trace::Event> events = trace::collect_all();
        causal::export_jsonl(f, events);
      }
    }
    // A hung run may never reach World teardown; flush the trace bundle now
    // so the stall is replayable postmortem (teardown re-flushes harmlessly).
    if (!world_.options().record_path.empty()) world_.flush_recording();
    if (opts_.announce) std::cerr << render_text(report);
    if (opts_.on_hang) opts_.on_hang(report);
  }
}

}  // namespace lwmpi::obs
