// Aggregate profiler: phase regions, per-callsite statistics, and the
// rank x rank communication matrix (observability tier 3f).
//
// The pvar counters (obs/counters.hpp) and the cost meter (cost/meter.hpp)
// answer *how much* the stack spends; this tier answers *where*: which MPI
// call sites, which application phases, and which rank pairs consume the
// budget -- the question every fig7/fig8-style application study starts with.
// The design follows mpiP's aggregate model rather than a trace: fixed-size
// accumulators keyed by (phase, callsite, vci) on the call side and
// (src, dst, message class) on the wire side, merged into one report at
// World teardown.
//
//   * Phase regions are MPI_Pcontrol-style: World::phase_push/pop (all ranks)
//     or Engine::phase_push/pop (one rank) bracket application phases; every
//     statistic below is bucketed under the innermost open phase. Phase 0 is
//     the default phase (cvar prof_default_phase, default "main") and is
//     conceptually always at the bottom of the stack, so a pop on an empty
//     stack cannot crash -- it counts a warning and stays on phase 0.
//   * Per-callsite statistics: a ProfScope at each top-level MPI entry point
//     accumulates count, bytes, elapsed wall time, and -- when a cost::Meter
//     is armed -- the Table-1 instruction-group deltas of the call. Nested
//     entries (send -> isend + wait, testall -> waitall, ...) are handled by
//     an outermost-wins thread-local depth guard, so one user call is counted
//     exactly once. Counts and bytes are exact on every call; the *timed*
//     fields (time_ns, instr) follow the histogram tier's sampling discipline
//     (obs/histogram.hpp VciLatency::arm): a TSC stamp costs ~15-25ns where
//     the TSC is virtualized, which would dwarf the hook itself, so only 1 in
//     2^kProfSampleShift calls per cell is stamped and its elapsed/instr
//     deltas are scaled back up -- an unbiased estimate whose error the <2%
//     overhead gate (bench_obs_overhead) trades for staying invisible on a
//     sub-microsecond call path. Each cell's first call is always sampled, so
//     any (phase, callsite) that ran at all reports nonzero time.
//   * The communication matrix is stamped in the net::Fabric facade at the
//     injection boundary, exactly like the causal header, so both netmods are
//     covered without transport changes. Packet traffic splits into eager /
//     rendezvous / control classes by PacketKind; zero-copy rdma_write bytes
//     are a fourth class stamped separately (they never transit a packet).
//     Because the facade stamps where the backends count injected_bytes, the
//     invariant  sum(matrix packet bytes) == sum(fabric injected_bytes)
//     holds exactly on every backend (blackhole worlds drop at this boundary
//     and are not stamped, mirroring the backends' own byte counters).
//
// Writer discipline: cells use the CounterBlock convention -- relaxed
// load+store from the owning rank's thread (ProfScope sits outside the VCI
// gate, so two user threads hammering one engine can lose increments, never
// corrupt). Matrix cells use relaxed fetch_add: every rank injects
// concurrently and exactness is what the invariant test checks.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "cost/meter.hpp"
#include "obs/histogram.hpp"
#include "runtime/packet.hpp"

namespace lwmpi::obs {

// One id per instrumented top-level MPI entry point. The aggregate model
// keys on the *operation*, not the program counter: the reproduction's
// "applications" are in-tree SPMD functors, so the op id is the stable,
// meaningful callsite identity (mpiP would add stack depth here).
enum class Callsite : std::uint8_t {
  Isend = 0,
  Irecv,
  Send,
  Recv,
  Sendrecv,
  Wait,
  Test,
  Waitall,
  Waitany,
  Testany,
  Testall,
  Iprobe,
  Probe,
  Cancel,
  // Section-3 proposed extensions
  IsendGlobal,
  IsendNpn,
  IsendNoreq,
  CommWaitall,
  IsendNomatch,
  IrecvNomatch,
  IsendAllOpts,
  // persistent requests
  SendInit,
  RecvInit,
  Start,
  Startall,
  // collectives
  Barrier,
  Bcast,
  Reduce,
  Allreduce,
  Gather,
  Allgather,
  Scatter,
  Alltoall,
  Scan,
  Gatherv,
  Allgatherv,
  Scatterv,
  ReduceScatterBlock,
  // one-sided
  Put,
  Get,
  Accumulate,
  GetAccumulate,
  PutVa,
  WinFence,
  WinLock,
  WinUnlock,
  WinFlush,
  WinPost,
  WinStart,
  WinComplete,
  WinWait,
  kCount,
};
inline constexpr std::size_t kNumCallsites = static_cast<std::size_t>(Callsite::kCount);

std::string_view to_string(Callsite s) noexcept;

// Wire-side traffic classes for the communication matrix.
enum class MsgClass : std::uint8_t {
  Eager = 0,  // pt2pt/AM eager payload packets
  Rdv,        // rendezvous control + staged data (Rts/Cts/RdvData/RdvDone)
  Ctrl,       // RMA active messages, sync messages, runtime barriers
  Zcopy,      // zero-copy rdma_write bytes (no packet; stamped separately)
  kCount,
};
inline constexpr std::size_t kNumMsgClasses = static_cast<std::size_t>(MsgClass::kCount);

std::string_view to_string(MsgClass c) noexcept;

constexpr MsgClass msg_class_of(rt::PacketKind k) noexcept {
  switch (k) {
    case rt::PacketKind::Eager: return MsgClass::Eager;
    case rt::PacketKind::Rts:
    case rt::PacketKind::Cts:
    case rt::PacketKind::RdvData:
    case rt::PacketKind::RdvDone: return MsgClass::Rdv;
    default: return MsgClass::Ctrl;
  }
}

// Phase table bounds. 32 named phases is generous for an aggregate profile
// (mpiP defaults to far fewer); overflowing names fall back to phase 0 so the
// hot path never allocates unboundedly.
inline constexpr int kMaxPhases = 32;
inline constexpr int kMaxPhaseDepth = 16;

// Time-sampling gate: 1 in 2^kProfSampleShift outermost calls per cell (the
// cell's own count is the sampling clock -- no extra TLS state) pays the two
// TSC stamps (and the meter snapshot when armed); its elapsed and instruction
// deltas are scaled by 2^kProfSampleShift so accumulated totals stay
// unbiased. Counts and bytes are never sampled.
inline constexpr int kProfSampleShift = 10;

// One (phase, callsite, vci) accumulator. Relaxed load+store (see header
// comment); readers tolerate torn *sets* of fields, never torn values.
struct CallCell {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<std::uint64_t> time_ns{0};
  // Table-1 instruction groups metered across the call (0 when no meter was
  // armed on the calling thread).
  std::array<std::atomic<std::uint64_t>, cost::kNumGroups> instr{};

  void add(std::uint64_t b, std::uint64_t ns) noexcept {
    bump(b);
    time_ns.store(time_ns.load(std::memory_order_relaxed) + ns, std::memory_order_relaxed);
  }
  // Un-stamped calls record count and bytes only; no wasted +0 on time_ns.
  void bump(std::uint64_t b) noexcept {
    count.store(count.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
    bytes.store(bytes.load(std::memory_order_relaxed) + b, std::memory_order_relaxed);
  }
};

// The rank x rank communication matrix: (src, dst, class) -> {count, bytes}.
//
// Stamped on the fabric inject path, so the write side must be near-free: a
// fetch_add pair per packet costs ~10ns on this class of machine, which alone
// busts the <2% profiler-overhead gate. Instead each (thread, src) pair gets
// a private row of (dst x class) cells -- stamps from different threads never
// share a cell, so plain relaxed load+store suffices and totals stay exact.
// Readers (report/artifact/pvars; all cold paths) sum the per-thread rows
// under the registry mutex.
class CommMatrix {
 public:
  explicit CommMatrix(int nranks);

  void stamp(Rank src, Rank dst, MsgClass cls, std::uint64_t bytes) noexcept {
    if (src < 0 || src >= n_ || dst < 0 || dst >= n_) return;
    Cell* row = tl_row(src);
    Cell& c = row[static_cast<std::size_t>(dst) * kNumMsgClasses +
                  static_cast<std::size_t>(cls)];
    c.count.store(c.count.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
    c.bytes.store(c.bytes.load(std::memory_order_relaxed) + bytes,
                  std::memory_order_relaxed);
  }

  int nranks() const noexcept { return n_; }
  std::uint64_t count(Rank src, Rank dst, MsgClass cls) const noexcept;
  std::uint64_t bytes(Rank src, Rank dst, MsgClass cls) const noexcept;
  // Sums over one endpoint, all classes except Zcopy unless included.
  std::uint64_t tx_bytes(Rank src, bool include_zcopy = false) const noexcept;
  std::uint64_t rx_bytes(Rank dst, bool include_zcopy = false) const noexcept;
  std::uint64_t tx_msgs(Rank src) const noexcept;  // packet classes only
  std::uint64_t rx_msgs(Rank dst) const noexcept;
  // Total packet-class bytes over the whole matrix (the fabric invariant LHS).
  std::uint64_t total_packet_bytes() const noexcept;
  std::uint64_t total_zcopy_bytes() const noexcept;

 private:
  struct Cell {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> bytes{0};
  };
  struct RowEntry {
    std::thread::id tid;
    Rank src = -1;
    std::unique_ptr<Cell[]> row;  // n_ * kNumMsgClasses cells
  };
  // One-entry TLS cache over the (thread, src) -> row registry. Keyed by the
  // matrix instance id so a stale cache from a previous (destroyed) matrix
  // can never alias into this one.
  struct RowCache {
    std::uint64_t id = 0;
    Rank src = -1;
    Cell* row = nullptr;
  };
  Cell* tl_row(Rank src) noexcept {
    thread_local RowCache rc;
    if (rc.id != id_ || rc.src != src) [[unlikely]] return lookup_row(rc, src);
    return rc.row;
  }
  // Cold path: find or allocate this thread's row for `src` (registry mutex).
  Cell* lookup_row(RowCache& rc, Rank src) noexcept;
  // Sum of `f(cell)` over every row with matching src (all rows when src < 0)
  // at (dst, cls); dst < 0 or cls < 0 sum over that axis too.
  std::uint64_t sum(Rank src, Rank dst, int cls, bool counts) const noexcept;

  const int n_;
  const std::uint64_t id_;
  mutable std::mutex mu_;
  std::vector<RowEntry> rows_;
};

class Profiler;

// Per-rank profile state: the phase stack plus lazily-allocated per-phase
// (callsite x vci) accumulator slabs (~tens of KB per *used* phase, nothing
// for phases a rank never enters).
class RankProf {
 public:
  RankProf(Profiler& owner, int nvcis);
  ~RankProf();
  RankProf(const RankProf&) = delete;
  RankProf& operator=(const RankProf&) = delete;

  Profiler& owner() noexcept { return owner_; }

  // --- phase regions ---------------------------------------------------------
  void phase_push(std::string_view name);
  void phase_push(int phase_id) noexcept;
  // Pop on an empty stack is a misuse, not a crash: stays on phase 0 and
  // bumps the warning counter (surfaced as the prof_pop_warnings pvar).
  void phase_pop() noexcept;
  int cur_phase() const noexcept { return cur_phase_.load(std::memory_order_relaxed); }
  int phase_depth() const noexcept { return depth_.load(std::memory_order_relaxed); }
  std::uint64_t pop_warnings() const noexcept {
    return pop_warnings_.load(std::memory_order_relaxed);
  }

  // --- accumulation (ProfScope) ---------------------------------------------
  // The cell for (phase, site, vci); allocates the phase slab on first touch.
  // Inlined so the slab-hit path is a clamp, one acquire load, and an index --
  // ProfScope runs this on every profiled call, so no out-of-line call here.
  CallCell& cell(int phase, Callsite site, int vci) noexcept {
    if (phase < 0 || phase >= kMaxPhases) phase = 0;
    if (vci < 0 || vci >= nvcis_) vci = 0;
    CallCell* slab = slabs_[static_cast<std::size_t>(phase)].load(std::memory_order_acquire);
    if (slab == nullptr) [[unlikely]] slab = alloc_slab(phase);
    return slab[static_cast<std::size_t>(site) * static_cast<std::size_t>(nvcis_) +
                static_cast<std::size_t>(vci)];
  }
  // The cell for (current phase, site, vci). The constructor and every phase
  // transition pre-allocate the active phase's slab and publish it in
  // cur_slab_, so this is one load and an index -- no phase lookup, no
  // bounds clamp, no allocation branch (the ProfScope hot path).
  CallCell& cur_cell(Callsite site, int vci) noexcept {
    if (vci < 0 || vci >= nvcis_) [[unlikely]] vci = 0;
    return cur_slab_.load(std::memory_order_acquire)
        [static_cast<std::size_t>(site) * static_cast<std::size_t>(nvcis_) +
         static_cast<std::size_t>(vci)];
  }

  // --- read side -------------------------------------------------------------
  // Null when the rank never recorded under `phase`.
  const CallCell* peek(int phase, Callsite site, int vci) const noexcept;
  std::uint64_t site_count(int phase, Callsite site) const noexcept;  // summed over vcis
  std::uint64_t site_bytes(int phase, Callsite site) const noexcept;
  std::uint64_t phase_time_ns(int phase) const noexcept;  // summed over sites/vcis
  int nvcis() const noexcept { return nvcis_; }

 private:
  using Slab = CallCell[];

  // Cold path of cell(): race-safe first-touch slab publication.
  CallCell* alloc_slab(int phase) noexcept;
  // Ensure `phase`'s slab exists and point cur_slab_ at it (phase changes).
  void publish_cur_slab(int phase) noexcept;

  Profiler& owner_;
  const int nvcis_;
  // Lazily-published per-phase slabs of kNumCallsites * nvcis_ cells.
  std::array<std::atomic<CallCell*>, kMaxPhases> slabs_{};
  // Slab of the phase currently on top of the stack; never null (phase 0's
  // slab is allocated in the constructor, transitions pre-allocate theirs).
  std::atomic<CallCell*> cur_slab_{nullptr};
  // Phase stack: pushes/pops are rare (phase boundaries), so a mutex is fine;
  // the hot path only reads cur_phase_.
  mutable std::mutex stack_mu_;
  std::vector<int> stack_;
  std::atomic<int> cur_phase_{0};
  std::atomic<int> depth_{0};
  std::atomic<std::uint64_t> pop_warnings_{0};
};

// The per-World aggregate profiler: owns one RankProf per rank, the shared
// communication matrix, and the phase-name intern table.
class Profiler {
 public:
  Profiler(int nranks, int nvcis, std::string_view default_phase);

  int nranks() const noexcept { return nranks_; }
  int nvcis() const noexcept { return nvcis_; }
  RankProf& rank(int r) { return *ranks_.at(static_cast<std::size_t>(r)); }
  const RankProf& rank(int r) const { return *ranks_.at(static_cast<std::size_t>(r)); }
  CommMatrix& matrix() noexcept { return matrix_; }
  const CommMatrix& matrix() const noexcept { return matrix_; }

  // Phase-name interning: stable small ids, shared across ranks so the merged
  // report lines up. Returns 0 (the default phase) once kMaxPhases names
  // exist; the overflow count is reported so truncation is never silent.
  int intern_phase(std::string_view name);
  int num_phases() const;
  std::string phase_name(int id) const;
  std::uint64_t phase_overflows() const noexcept {
    return phase_overflows_.load(std::memory_order_relaxed);
  }

  // --- fabric hooks (net::Fabric facade) -------------------------------------
  void on_inject(Rank src, Rank dst, rt::PacketKind kind, std::size_t bytes) noexcept {
    matrix_.stamp(src, dst, msg_class_of(kind), bytes);
  }
  void on_rdma_write(Rank src, Rank dst, std::size_t bytes) noexcept {
    matrix_.stamp(src, dst, MsgClass::Zcopy, bytes);
  }

  // --- reporting -------------------------------------------------------------
  // Merged cross-rank report: per-phase max/mean MPI time + imbalance, top-k
  // callsites, matrix hot spots. Text or a compact JSON summary.
  std::string report(std::string_view netmod, bool as_json = false) const;
  // The versioned profile artifact (the lwmpi_prof / bench_check --profcheck
  // input format): {"lwmpi_profile":1, ranks:[...], matrix:[...]}.
  std::string artifact_json(std::string_view netmod) const;
  // Write artifact_json to `path` (World teardown; no-op on open failure).
  void write_artifact(const std::string& path, std::string_view netmod) const;

 private:
  const int nranks_;
  const int nvcis_;
  std::vector<std::unique_ptr<RankProf>> ranks_;
  CommMatrix matrix_;
  mutable std::mutex phase_mu_;
  std::vector<std::string> phases_;
  std::atomic<std::uint64_t> phase_overflows_{0};
};

// RAII accumulator for one top-level MPI call. Outermost-wins: the blocking
// wrappers (send -> isend + wait, sendrecv, waitall -> wait, probe -> iprobe,
// collectives waiting on internal requests) re-enter the instrumented surface,
// and only the scope the user actually called should count. A thread-local
// depth counter (maintained only while a profiler is attached, so the
// disabled path is a single null test) arbitrates; the sampling tick shares
// its cache line so the common un-stamped call touches one TLS slot, one
// accumulator line, and nothing else.
class ProfScope {
 public:
  // The ctor/dtor bodies are deliberately tiny and force-inlined: with the
  // sampled work inline, gcc judged the pair too big to inline and emitted
  // two real calls per profiled MPI call, which alone blew the overhead
  // budget. The 1-in-2^kProfSampleShift stamped path lives in out-of-line
  // arm()/finish() (profiler.cpp) behind [[unlikely]] branches.
  [[gnu::always_inline]] inline ProfScope(RankProf* p, Callsite site, int vci,
                                          std::uint64_t bytes) noexcept
      : p_(p) {
    if (p_ == nullptr) return;
    Tls& t = tls();
    tls_ = &t;
    if (t.depth++ != 0) return;  // nested: count the outermost call only
    cell_ = &p_->cur_cell(site, vci);
    bytes_ = bytes;
    // Cell count as the sampling clock: the line is touched in the dtor
    // anyway, so this costs one load, and every cell's first call (count 0)
    // is stamped.
    if ((cell_->count.load(std::memory_order_relaxed) &
         ((1u << kProfSampleShift) - 1)) == 0) [[unlikely]] {
      const Armed a = arm(t);
      t0_ = a.t0;
      metered_ = a.metered;
    }
  }
  [[gnu::always_inline]] inline ~ProfScope() {
    if (p_ == nullptr) return;
    --tls_->depth;
    if (cell_ == nullptr) return;
    if (t0_ != 0) [[unlikely]] {
      finish(cell_, bytes_, t0_, metered_, tls_);
      return;
    }
    cell_->bump(bytes_);
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  struct Tls {
    int depth = 0;
    // Cost-meter baseline for the currently-sampled outermost scope (at most
    // one per thread at a time, so a single slot suffices). Lives here, not
    // in the scope object: Snapshot zero-initializes a per-category array,
    // and a by-value member would pay that memset on every call, sampled or
    // not.
    cost::Meter::Snapshot m0;
  };
  static Tls& tls() noexcept {
    thread_local Tls t;
    return t;
  }

  // Cold sampled path: TSC stamp + cost-meter baseline (ctor side) and the
  // scaled time/instruction accumulation (dtor side). Static, with scalar
  // arguments/returns, so `this` never escapes into an out-of-line call --
  // that keeps the scope object fully scalarized (members live in registers,
  // not on the stack) on the hot path.
  struct Armed {
    std::uint64_t t0 = 0;
    bool metered = false;
  };
  static Armed arm(Tls& t) noexcept;
  static void finish(CallCell* cell, std::uint64_t bytes, std::uint64_t t0, bool metered,
                     const Tls* tls) noexcept;

  RankProf* p_;
  Tls* tls_ = nullptr;
  CallCell* cell_ = nullptr;
  std::uint64_t bytes_ = 0;
  std::uint64_t t0_ = 0;
  bool metered_ = false;
};

}  // namespace lwmpi::obs
