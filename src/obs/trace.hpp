// Opt-in message-lifecycle tracing: the third tier of the observability
// subsystem.
//
// When a World is built with BuildConfig::trace, the engine records one fixed-
// size event per lifecycle step of each message -- post, match, inject,
// deliver, complete -- keyed by a sequence id carried in the packet header so
// the origin- and target-side halves of one message chain back together.
// Recording is a store into a per-thread lock-free SPSC ring (producer = the
// recording thread, consumer = the exporter); a full ring overwrites its
// oldest events rather than blocking or allocating, so tracing never perturbs
// the progress engine it is observing.
//
// export_chrome_json() renders collected events as a Chrome about:tracing /
// Perfetto-loadable timeline: one instant event per lifecycle step (pid =
// rank, tid = vci) plus an async begin/end pair per message id spanning
// post -> complete across ranks.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <span>
#include <string_view>
#include <vector>

namespace lwmpi::obs::trace {

enum class Ev : std::uint8_t {
  SendPost = 0,  // origin: send issued (eager buffered or RTS built)
  RecvPost,      // target: receive posted to the matcher
  Match,         // target: message paired with a posted receive
  Inject,        // origin: packet handed to the fabric
  Deliver,       // target: packet surfaced by the fabric poll
  Complete,      // either side: request observable-complete
  ZcopyWrite,    // origin: one-sided rdma_write landed the rendezvous payload
  Alert,         // telemetry sampler: an SLO rule fired (obs/sampler.hpp);
                 // seq = 0 (not message-associated), tag = rule index,
                 // bytes = observed value, wait_ns = threshold
};

const char* to_string(Ev e) noexcept;
Ev ev_from_string(std::string_view s) noexcept;

struct Event {
  std::uint64_t ts_ns = 0;   // rt::now_ns() at record time
  std::uint64_t seq = 0;     // message id; 0 = not message-associated
  std::uint64_t bytes = 0;   // payload size
  std::uint64_t lclock = 0;  // recording rank's Lamport clock (net::Fabric)
  std::uint64_t wait_ns = 0; // Match events: classified wait interval
  std::int32_t rank = -1;    // recording rank
  std::int32_t peer = -1;    // the other side (dst for sends, src for recvs)
  std::int32_t tag = 0;
  std::uint8_t vci = 0;
  std::uint8_t wait = 0;     // Match events: obs::Wait classification (causal.hpp)
  Ev kind = Ev::SendPost;
};

// Fixed-capacity overwrite-oldest SPSC event ring. push() is wait-free for
// the single producing thread; collect()/clear() belong to one consumer and
// are only well-defined while the producer is quiescent (the exporters run
// after World::run joins its rank threads).
class Ring {
 public:
  explicit Ring(std::size_t min_capacity);

  void push(const Event& e) noexcept {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    slots_[h & mask_] = e;
    head_.store(h + 1, std::memory_order_release);
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }
  // Events recorded over the ring's lifetime, including overwritten ones.
  std::uint64_t recorded() const noexcept {
    return head_.load(std::memory_order_acquire);
  }
  std::uint64_t dropped() const noexcept {
    const std::uint64_t h = recorded();
    return h > capacity() ? h - capacity() : 0;
  }

  // Surviving events, oldest first.
  std::vector<Event> collect() const;
  void clear() noexcept { head_.store(0, std::memory_order_release); }

 private:
  const std::uint64_t mask_;
  std::vector<Event> slots_;
  alignas(64) std::atomic<std::uint64_t> head_{0};
};

// Default capacity of the lazily-created per-thread rings.
inline constexpr std::size_t kDefaultRingCapacity = 1 << 16;

// Record into this thread's ring (created and registered on first use).
// Callers gate on BuildConfig::trace; this function itself never blocks.
void record(const Event& e) noexcept;

// Exporter side: snapshot every registered ring (all threads, oldest-first
// within a thread), total overwritten-event count, and global reset. Only
// well-defined while recording threads are quiescent.
std::vector<Event> collect_all();
std::uint64_t dropped_all();
void reset_all();

// Allocate a fresh message sequence id, unique across ranks for the process.
std::uint64_t next_seq() noexcept;

// Write `events` as a Chrome about:tracing / Perfetto JSON document. Events
// are sorted by timestamp (ties broken by lifecycle order), timestamps are
// rebased to the earliest event, and each nonzero seq gets an async
// begin/end pair spanning its first and last event plus a flow-event chain
// (ph s/t/f) from each Inject to its Deliver, so cross-rank hops --
// RTS -> CTS -> RdvDone and the zcopy landing -- render as arrows across the
// per-rank (pid) tracks in Perfetto.
void export_chrome_json(std::ostream& os, std::span<const Event> events);

}  // namespace lwmpi::obs::trace
