// Always-on runtime counters: the storage tier of the observability subsystem.
//
// Two cache-line-padded atomic counter blocks exist per rank: one per VCI
// (channel-scoped traffic statistics) and one per engine (whole-rank progress
// statistics). Fast-path updates are a predictable branch on a plain bool
// plus one relaxed fetch_add -- cheap enough to leave compiled in and enabled
// by default (BuildConfig::counters); bench_obs_overhead asserts the cost
// stays within 3% of a counters-off build on the 1-byte ping-pong path.
//
// The name/description/class metadata lives in obs/pvar.hpp, which exposes
// these counters through an MPI_T-style (MPI-3.1 section 14) tool interface.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace lwmpi::obs {

// Channel-scoped counters, one block per VCI.
enum class VciCtr : std::uint8_t {
  SendEager = 0,     // eager-path sends issued
  SendRdv,           // rendezvous-path sends issued (RTS sent)
  SendNoreq,         // _NOREQ sends issued (counter-completed, no request)
  SendQueued,        // orig device: packets staged in the software send queue
  RecvPosted,        // receives posted to the matcher
  PostedDepth,       // current posted-receive queue depth (level)
  PostedHwm,         // posted-receive queue high-water mark
  UnexpectedDepth,   // current unexpected-queue depth (level)
  UnexpectedHwm,     // unexpected-queue high-water mark
  PostedMatch,       // arriving packets that matched a posted receive
  PostedMiss,        // arriving packets that went to the unexpected queue
  GateContended,     // VciGate acquisitions that missed the try_lock fast path
  RmaOp,             // RMA data operations issued on this channel
  RmaFlush,          // RMA flush/fence synchronizations on this channel
  kCount,
};
inline constexpr std::size_t kNumVciCtrs = static_cast<std::size_t>(VciCtr::kCount);

// Whole-rank counters, one block per engine.
enum class EngCtr : std::uint8_t {
  ProgressIdle = 0,  // progress() calls resolved by the lock-free idle path
  ProgressSwept,     // progress() calls that swept the VCI poll set
  kCount,
};
inline constexpr std::size_t kNumEngCtrs = static_cast<std::size_t>(EngCtr::kCount);

// A padded block of relaxed atomic counters. alignas(64) keeps two channels'
// blocks off each other's cache lines; within a block only the owning
// channel's operations write, so interior sharing is self-sharing.
//
// Updates are relaxed load+store pairs, not fetch_add: nearly every hook site
// runs under the owning channel's lock (or on the single progress thread), so
// there is one writer at a time and the store is exact -- at a third of the
// cost of a locked RMW, which is what keeps the hooks inside the 3% overhead
// budget bench_obs_overhead enforces. The few sites that tick without a lock
// (the progress idle fast path, gate-contention diagnostics) may lose a tick
// under a concurrent writer; values are never torn and readers never race.
template <typename Enum, std::size_t N>
struct alignas(64) CounterBlock {
  std::array<std::atomic<std::uint64_t>, N> c{};
  // Set once at engine construction, read on every update. Not atomic: it is
  // written before the world's rank threads start and never changes after.
  bool enabled = true;

  void inc(Enum e, std::uint64_t n = 1) noexcept {
    if (!enabled) return;
    auto& a = c[static_cast<std::size_t>(e)];
    a.store(a.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  }
  // Saturates at zero: a level counter whose inc lost a tick to the documented
  // lock-free race (see the block comment above) must not wrap a later dec to
  // ~2^64 -- a floor of 0 is the honest reading for "briefly miscounted".
  void dec(Enum e, std::uint64_t n = 1) noexcept {
    if (!enabled) return;
    auto& a = c[static_cast<std::size_t>(e)];
    const std::uint64_t cur = a.load(std::memory_order_relaxed);
    a.store(cur >= n ? cur - n : 0, std::memory_order_relaxed);
  }
  std::uint64_t get(Enum e) const noexcept {
    return c[static_cast<std::size_t>(e)].load(std::memory_order_relaxed);
  }
  // Raise a high-water counter to at least `depth`. Called under the owning
  // channel's lock (single writer), so load+store needs no CAS loop.
  void high_water(Enum e, std::uint64_t depth) noexcept {
    if (!enabled) return;
    auto& hwm = c[static_cast<std::size_t>(e)];
    if (depth > hwm.load(std::memory_order_relaxed)) {
      hwm.store(depth, std::memory_order_relaxed);
    }
  }
  void reset() noexcept {
    for (auto& a : c) a.store(0, std::memory_order_relaxed);
  }
};

using VciCounters = CounterBlock<VciCtr, kNumVciCtrs>;
using EngineCounters = CounterBlock<EngCtr, kNumEngCtrs>;

}  // namespace lwmpi::obs
