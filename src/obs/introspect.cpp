// Live queue introspection (obs/introspect.hpp).
//
// Two layers: Vci::snapshot_into copies one channel's queues while the caller
// holds the channel lock; Engine::snapshot orchestrates the walk across every
// channel, resolves matcher context ids back to communicator handles, finds
// the oldest incomplete request, and captures each window's epoch state. The
// renderers emit the per-rank dump the watchdog embeds in its hang report and
// tools/hangdump pretty-prints.
#include "obs/introspect.hpp"

#include <sstream>

#include "core/engine.hpp"
#include "obs/histogram.hpp"

namespace lwmpi {

namespace {

const char* req_kind_name(RequestSlot::Kind k) noexcept {
  switch (k) {
    case RequestSlot::Kind::SendEager:
      return "send_eager";
    case RequestSlot::Kind::SendRdv:
      return "send_rdv";
    case RequestSlot::Kind::Recv:
      return "recv";
    case RequestSlot::Kind::RecvRdv:
      return "recv_rdv";
    default:
      return "none";
  }
}

std::uint64_t age_of(std::uint64_t now, std::uint64_t then) noexcept {
  return (then != 0 && now > then) ? now - then : 0;
}

}  // namespace

void Vci::snapshot_into(obs::VciSnapshot& out, std::uint64_t now) const {
  matcher.visit_posted([&](const match::PostedRecv& r) {
    obs::QueueEntrySnap e;
    e.ctx = r.ctx;
    e.src = r.src;
    e.tag = r.tag;
    e.req = request_idx(r.req);
    e.arrival_order = r.mode == rt::MatchMode::ArrivalOrder;
    if (const RequestSlot* s = pool.slots.at(request_idx(r.req))) {
      e.bytes = s->bytes_expected;
    }
    e.age_ns = age_of(now, r.posted_ns);
    out.posted.push_back(e);
  });
  matcher.visit_unexpected([&](const rt::PacketHeader& h, std::uint64_t arrived_ns) {
    obs::QueueEntrySnap e;
    e.ctx = h.ctx;
    e.src = h.src_comm_rank;
    e.tag = h.tag;
    e.bytes = h.total_bytes;
    e.arrival_order = h.match_mode == rt::MatchMode::ArrivalOrder;
    e.age_ns = age_of(now, arrived_ns);
    out.unexpected.push_back(e);
  });
  for (const QueuedSend& q : send_queue) {
    obs::SendQueueSnap e;
    e.dst_world = q.dst_world;
    e.tag = q.pkt->hdr.tag;
    e.bytes = q.pkt->hdr.total_bytes;
    e.age_ns = age_of(now, q.enq_ts);
    out.send_queue.push_back(e);
  }
}

obs::RankSnapshot Engine::snapshot() const {
  obs::RankSnapshot s;
  const std::uint64_t now = obs::lat_now_ns();
  s.rank = self_;
  s.live_requests = live_requests();
  s.blocking_call = blocking_call();
  if (s.blocking_call != nullptr) {
    s.blocked_ns = age_of(now, blocking_since_ns());
  }
  // A hang report is far more actionable when it names the application phase
  // the rank was in (obs/profiler.hpp).
  if (prof_ != nullptr) s.phase = prof_->owner().phase_name(prof_->cur_phase());

  // Reverse map matcher context ids to communicator handles: a communicator
  // owns ctx (pt2pt) and ctx + 1 (collective plane).
  std::vector<std::pair<std::uint32_t, Comm>> ctx_map;
  for (std::uint32_t i = 0; i < comms_.size(); ++i) {
    const CommObject* c = comms_.at(i);
    if (c == nullptr || !c->in_use.load(std::memory_order_acquire)) continue;
    ctx_map.emplace_back(c->ctx, make_handle(HandleKind::Comm, i));
  }
  const auto comm_of_ctx = [&ctx_map](std::uint32_t ctx) -> Comm {
    for (const auto& [base, comm] : ctx_map) {
      if (ctx == base || ctx == base + 1) return comm;
    }
    return kCommNull;
  };

  std::uint64_t oldest_ts = 0;
  for (int vi = 0; vi < num_vcis(); ++vi) {
    const Vci& v = *vcis_[static_cast<std::size_t>(vi)];
    std::lock_guard<std::recursive_mutex> lk(v.mu);
    obs::VciSnapshot vs;
    vs.vci = vi;
    v.snapshot_into(vs, now);
    for (obs::QueueEntrySnap& e : vs.posted) e.comm = comm_of_ctx(e.ctx);
    for (obs::QueueEntrySnap& e : vs.unexpected) e.comm = comm_of_ctx(e.ctx);

    // Oldest incomplete pt2pt request across all channels (stamped slots
    // only; an unstamped slot has no age to compare).
    for (std::uint32_t i = 0; i < v.pool.slots.size(); ++i) {
      const RequestSlot* slot = v.pool.slots.at(i);
      if (slot == nullptr || !slot->active.load(std::memory_order_acquire)) continue;
      if (slot->complete.load(std::memory_order_acquire)) continue;
      const RequestSlot::Kind k = slot->kind;
      if (k != RequestSlot::Kind::SendEager && k != RequestSlot::Kind::SendRdv &&
          k != RequestSlot::Kind::Recv && k != RequestSlot::Kind::RecvRdv) {
        continue;
      }
      if (slot->post_ts == 0) continue;
      if (s.oldest.valid && slot->post_ts >= oldest_ts) continue;
      oldest_ts = slot->post_ts;
      s.oldest.valid = true;
      s.oldest.kind = req_kind_name(k);
      s.oldest.comm = slot->comm;
      s.oldest.peer = slot->bound_peer;
      s.oldest.tag = slot->bound_tag;
      s.oldest.bytes = slot->bytes_expected;
      s.oldest.age_ns = age_of(now, slot->post_ts);
    }
    s.vcis.push_back(std::move(vs));
  }

  for (std::uint32_t i = 0; i < windows_.size(); ++i) {
    const WindowLocal* w = windows_.at(i);
    if (w == nullptr || !w->in_use.load(std::memory_order_acquire)) continue;
    obs::WinSnapshot ws;
    ws.win_id = w->win_id.load(std::memory_order_relaxed);
    switch (w->epoch.load(std::memory_order_relaxed)) {
      case WindowLocal::Epoch::None:
        ws.epoch = "none";
        break;
      case WindowLocal::Epoch::Fence:
        ws.epoch = "fence";
        break;
      case WindowLocal::Epoch::Lock:
        ws.epoch = "lock";
        break;
      case WindowLocal::Epoch::LockAll:
        ws.epoch = "lock_all";
        break;
      case WindowLocal::Epoch::Pscw:
        ws.epoch = "pscw";
        break;
    }
    ws.outstanding_acks = w->outstanding_acks.load(std::memory_order_relaxed);
    {
      // The deferred-op list mutates under the window's channel lock.
      std::lock_guard<std::recursive_mutex> lk(vcis_[w->vci]->mu);
      ws.pending_lock_ops = w->pending.size();
    }
    s.windows.push_back(ws);
  }

  // rdma credit state: how close each lane is to credit exhaustion, plus the
  // registration cache -- the two stall sources unique to this backend. The
  // block stays invalid (and unrendered) on backends without the mechanism.
  if (fabric_.rdma_capable()) {
    s.rdma.valid = true;
    const int depth =
        fabric_.profile().rdma_ring_depth < 1 ? 1 : fabric_.profile().rdma_ring_depth;
    for (int v = 0; v < fabric_.lanes_per_rank(); ++v) {
      obs::RdmaLaneSnap l;
      l.vci = v;
      l.credits_free = fabric_.net_stat(net::NetStat::RingCredits, self_, v);
      l.ring_depth = static_cast<std::uint64_t>(depth);
      l.occupancy_hwm = fabric_.net_stat(net::NetStat::RingOccupancyHwm, self_, v);
      s.rdma.lanes.push_back(l);
    }
    s.rdma.reg_cache_size = fabric_.net_stat(net::NetStat::RegCacheSize, self_);
    s.rdma.reg_hits = fabric_.net_stat(net::NetStat::RegCacheHit, self_);
    s.rdma.reg_misses = fabric_.net_stat(net::NetStat::RegCacheMiss, self_);
    s.rdma.reg_evictions = fabric_.net_stat(net::NetStat::RegCacheEviction, self_);
    s.rdma.ring_stalls = fabric_.net_stat(net::NetStat::RingStall, self_);
    s.rdma.ring_stall_ns = fabric_.net_stat(net::NetStat::RingStallNs, self_);
  }
  return s;
}

}  // namespace lwmpi

namespace lwmpi::obs {

namespace {

std::string fmt_age(std::uint64_t ns) {
  if (ns == 0) return "?";
  std::ostringstream o;
  o.setf(std::ios::fixed);
  const double ms = static_cast<double>(ns) / 1e6;
  if (ms < 1000.0) {
    o.precision(1);
    o << ms << "ms";
  } else {
    o.precision(2);
    o << ms / 1000.0 << "s";
  }
  return o.str();
}

std::string comm_name(Comm c) {
  if (c == kCommWorld) return "WORLD";
  if (c == kCommSelf) return "SELF";
  if (c == kCommNull) return "?";
  return "comm#" + std::to_string(handle_payload(c));
}

std::string rank_name(Rank r) {
  return r == kAnySource ? "*" : std::to_string(r);
}

std::string tag_name(Tag t) {
  return t == kAnyTag ? "*" : std::to_string(t);
}

void entry_text(std::ostringstream& o, const char* label, const QueueEntrySnap& e) {
  o << "    " << label << " comm=" << comm_name(e.comm) << " src=" << rank_name(e.src)
    << " tag=" << tag_name(e.tag) << " bytes=" << e.bytes << " age=" << fmt_age(e.age_ns);
  if (e.arrival_order) o << " [arrival-order]";
  o << '\n';
}

void entry_json(std::ostringstream& o, const QueueEntrySnap& e) {
  o << "{\"ctx\":" << e.ctx << ",\"comm\":\"" << comm_name(e.comm) << "\",\"src\":" << e.src
    << ",\"tag\":" << e.tag << ",\"bytes\":" << e.bytes << ",\"age_ns\":" << e.age_ns
    << ",\"arrival_order\":" << (e.arrival_order ? "true" : "false") << '}';
}

}  // namespace

std::string render_text(const RankSnapshot& s) {
  std::ostringstream o;
  o << "rank " << s.rank << ": ";
  if (s.blocking_call != nullptr) {
    o << "blocked in " << s.blocking_call << " for " << fmt_age(s.blocked_ns);
  } else {
    o << "not in a blocking call";
  }
  o << " (" << s.live_requests << " live request" << (s.live_requests == 1 ? "" : "s")
    << ")";
  if (!s.phase.empty()) o << " [phase " << s.phase << ']';
  o << '\n';
  if (s.oldest.valid) {
    o << "  oldest: " << s.oldest.kind << " comm=" << comm_name(s.oldest.comm)
      << " peer=" << rank_name(s.oldest.peer) << " tag=" << tag_name(s.oldest.tag)
      << " bytes=" << s.oldest.bytes << " age=" << fmt_age(s.oldest.age_ns) << '\n';
  }
  for (const VciSnapshot& v : s.vcis) {
    if (v.posted.empty() && v.unexpected.empty() && v.send_queue.empty()) continue;
    o << "  vci " << v.vci << ": posted=" << v.posted.size()
      << " unexpected=" << v.unexpected.size() << " sendq=" << v.send_queue.size() << '\n';
    for (const QueueEntrySnap& e : v.posted) entry_text(o, "posted:    ", e);
    for (const QueueEntrySnap& e : v.unexpected) entry_text(o, "unexpected:", e);
    for (const SendQueueSnap& e : v.send_queue) {
      o << "    sendq:      dst=" << e.dst_world << " tag=" << e.tag << " bytes=" << e.bytes
        << " age=" << fmt_age(e.age_ns) << '\n';
    }
  }
  for (const WinSnapshot& w : s.windows) {
    o << "  win " << w.win_id << ": epoch=" << w.epoch << " acks=" << w.outstanding_acks
      << " deferred=" << w.pending_lock_ops << '\n';
  }
  if (s.rdma.valid) {
    o << "  rdma: reg_cache=" << s.rdma.reg_cache_size << " (hits=" << s.rdma.reg_hits
      << " misses=" << s.rdma.reg_misses << " evictions=" << s.rdma.reg_evictions
      << ") ring_stalls=" << s.rdma.ring_stalls << " (" << fmt_age(s.rdma.ring_stall_ns)
      << ")\n";
    for (const RdmaLaneSnap& l : s.rdma.lanes) {
      o << "    ring vci=" << l.vci << ": credits=" << l.credits_free << "/"
        << l.ring_depth << " occupancy_hwm=" << l.occupancy_hwm;
      if (l.credits_free == 0) o << " [EXHAUSTED]";
      o << '\n';
    }
  }
  return o.str();
}

std::string render_json(const RankSnapshot& s) {
  std::ostringstream o;
  o << "{\"rank\":" << s.rank << ",\"live_requests\":" << s.live_requests
    << ",\"blocking_call\":";
  if (s.blocking_call != nullptr) {
    o << '"' << s.blocking_call << '"';
  } else {
    o << "null";
  }
  o << ",\"blocked_ns\":" << s.blocked_ns << ",\"phase\":";
  if (!s.phase.empty()) {
    o << '"' << s.phase << '"';
  } else {
    o << "null";
  }
  o << ",\"oldest\":";
  if (s.oldest.valid) {
    o << "{\"kind\":\"" << s.oldest.kind << "\",\"comm\":\"" << comm_name(s.oldest.comm)
      << "\",\"peer\":" << s.oldest.peer << ",\"tag\":" << s.oldest.tag
      << ",\"bytes\":" << s.oldest.bytes << ",\"age_ns\":" << s.oldest.age_ns << '}';
  } else {
    o << "null";
  }
  o << ",\"vcis\":[";
  for (std::size_t i = 0; i < s.vcis.size(); ++i) {
    const VciSnapshot& v = s.vcis[i];
    o << (i == 0 ? "" : ",") << "{\"vci\":" << v.vci << ",\"posted\":[";
    for (std::size_t j = 0; j < v.posted.size(); ++j) {
      if (j != 0) o << ',';
      entry_json(o, v.posted[j]);
    }
    o << "],\"unexpected\":[";
    for (std::size_t j = 0; j < v.unexpected.size(); ++j) {
      if (j != 0) o << ',';
      entry_json(o, v.unexpected[j]);
    }
    o << "],\"send_queue\":[";
    for (std::size_t j = 0; j < v.send_queue.size(); ++j) {
      const SendQueueSnap& e = v.send_queue[j];
      o << (j == 0 ? "" : ",") << "{\"dst\":" << e.dst_world << ",\"tag\":" << e.tag
        << ",\"bytes\":" << e.bytes << ",\"age_ns\":" << e.age_ns << '}';
    }
    o << "]}";
  }
  o << "],\"windows\":[";
  for (std::size_t i = 0; i < s.windows.size(); ++i) {
    const WinSnapshot& w = s.windows[i];
    o << (i == 0 ? "" : ",") << "{\"win_id\":" << w.win_id << ",\"epoch\":\"" << w.epoch
      << "\",\"outstanding_acks\":" << w.outstanding_acks
      << ",\"deferred_ops\":" << w.pending_lock_ops << '}';
  }
  o << "],\"rdma\":";
  if (s.rdma.valid) {
    o << "{\"reg_cache_size\":" << s.rdma.reg_cache_size
      << ",\"reg_hits\":" << s.rdma.reg_hits << ",\"reg_misses\":" << s.rdma.reg_misses
      << ",\"reg_evictions\":" << s.rdma.reg_evictions
      << ",\"ring_stalls\":" << s.rdma.ring_stalls
      << ",\"ring_stall_ns\":" << s.rdma.ring_stall_ns << ",\"lanes\":[";
    for (std::size_t i = 0; i < s.rdma.lanes.size(); ++i) {
      const RdmaLaneSnap& l = s.rdma.lanes[i];
      o << (i == 0 ? "" : ",") << "{\"vci\":" << l.vci
        << ",\"credits_free\":" << l.credits_free << ",\"ring_depth\":" << l.ring_depth
        << ",\"occupancy_hwm\":" << l.occupancy_hwm << '}';
    }
    o << "]}";
  } else {
    o << "null";
  }
  o << '}';
  return o.str();
}

}  // namespace lwmpi::obs
