// Flight recorder: a durable, DXT-style per-rank record of every surface
// call (observability tier 4).
//
// The trace ring (obs/trace.hpp) records *message lifecycle* events for the
// causal analyzer; this tier records the *application's own call stream* --
// one compact 16-byte record per MPI surface call, held in a per-rank
// overwrite-oldest ring and flushed to a per-rank binary `.lwtrace` file
// (plus one JSON provenance sidecar) at World teardown or when the watchdog
// fires (postmortem flight-recorder mode). The format is deliberately
// replayable: src/apps/replay.cpp re-issues the recorded ops through the
// normal public API, so the record carries exactly what the surface call
// needs to be reconstructed (kind, peer/root, tag/element-size, vci, packed
// bytes, request linkage) and nothing the replay can recompute.
//
// Cost discipline (the <2% bench_obs_overhead gate, like every other tier):
//   * The hot path is clock-free. A RecOp is a 16-byte store into an
//     L2-resident ring plus a release head bump; no TSC, no atomics beyond
//     the head. Timing (start ns, duration, inter-op compute gap) follows the
//     histogram tier's sampling discipline: 1 in 2^sample_shift ops (the ring
//     head is the sampling clock; op 0 is always sampled) pays two
//     obs::lat_now_ns() stamps and lands in a side "anchor" ring, merged into
//     the records at flush. Shift 0 stamps everything -- that is how the
//     shipped bench/traces bundles are recorded, where fidelity matters and
//     overhead does not.
//   * Outermost-wins: blocking wrappers and collectives re-enter the
//     instrumented surface (send -> isend_impl + wait_impl, testall ->
//     waitall, probe -> iprobe ...); a thread-local depth guard (same shape
//     as ProfScope's) ensures one user call produces exactly one record.
//     Depth is a call-stack property, so thread_local is correct even with
//     multiple user threads driving one engine.
//
// Writer discipline: one RankRec belongs to one rank, and under World::run
// exactly one thread issues that rank's calls, so ring/anchor writes are
// single-writer. The watchdog may read mid-run (last_ops); it snapshots
// under the released head and tolerates a racing in-place overwrite exactly
// like the trace ring's mid-run collect -- a hung rank is not pushing.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/vci.hpp"
#include "obs/histogram.hpp"
#include "obs/profiler.hpp"

namespace lwmpi {
class Engine;
}

namespace lwmpi::obs {

// Op kinds are obs::Callsite values (one per surface entry point) plus two
// auxiliary follower kinds the replay needs that are not callsites of their
// own: the recv half of a sendrecv, and the per-request items that follow a
// Waitall/Testall/Startall header record.
inline constexpr std::uint8_t kRecKindSendrecvRecv = 200;
inline constexpr std::uint8_t kRecKindWaitItem = 201;

std::string_view rec_kind_name(std::uint8_t kind) noexcept;

// One recorded surface call. 16 bytes, stored raw in the ring.
//   peer  -- pt2pt peer comm-rank (kProcNull/kAnySource pass through);
//            collective ROOT for rooted collectives, 0 otherwise.
//   tag   -- pt2pt tag; for collectives the builtin ELEMENT SIZE of the
//            datatype (0 for derived types -> replay falls back to bytes of
//            kChar), so replay reconstructs count = bytes / elem_size and
//            internal algorithm selection (element splits, Rabenseifner)
//            behaves identically.
//   bytes -- packed payload bytes of this rank's contribution (per-block for
//            alltoall, per-rank block for scatter/gather-style ops).
//   link  -- backward distance in ops from this record to the record that
//            issued the request this op completes/starts (wait -> isend,
//            start -> send_init, WaitItem -> isend/irecv). 0 = no link;
//            saturates at 0xFFFF when the issuer scrolled too far back.
struct RecOp {
  std::int32_t peer = 0;
  std::int32_t tag = 0;
  std::uint32_t bytes = 0;
  std::uint16_t link = 0;
  std::uint8_t vci = 0;
  std::uint8_t kind = 0;
};
static_assert(sizeof(RecOp) == 16);

// Sampled timing sidecar: op_index identifies the ring record the stamp
// belongs to. gap_ns is the compute gap since the previous *sampled* op
// ended -- the replay's pacing input. Anchors live in their own small
// overwrite-oldest ring so long flight-recorder runs stay bounded.
struct RecAnchor {
  std::uint64_t op_index = 0;
  std::uint64_t t0_ns = 0;
  std::uint32_t gap_ns = 0;
  std::uint32_t dur_ns = 0;
};

// The exactly-reproducible pvar totals a recording carries for fidelity
// checking, summed over a rank's VCIs (obs/counters.hpp + fabric counters).
// matches/misses individually depend on arrival timing; their SUM equals
// recvs_posted-wildcards and is the exact invariant replay asserts.
struct RecTotals {
  std::uint64_t sends_eager = 0;
  std::uint64_t sends_rdv = 0;
  std::uint64_t recvs_posted = 0;
  std::uint64_t matches = 0;
  std::uint64_t misses = 0;
  std::uint64_t injected = 0;
  std::uint64_t injected_bytes = 0;
};
inline constexpr std::size_t kNumRecTotals = 7;

// Read the fidelity totals for one rank from its live counters (pvar
// backing stores; requires a counters-enabled build for nonzero values).
RecTotals read_rec_totals(Engine& e);

// Sentinel for "no request to link" in RecScope.
inline constexpr Request kRecNoReq = kRequestNull;

// Per-rank recorder state: the op ring, the anchor ring, and the
// request-slot -> op-index link map.
class RankRec {
 public:
  // ring_depth/anchor ring sizes are rounded up to powers of two.
  RankRec(int rank, int nvcis, std::size_t ring_depth, int sample_shift);

  // --- hot path (called via RecScope) ---------------------------------------
  // Everything here is inline and branch-light: the overhead gate budget is
  // single-digit nanoseconds per surface call.
  // Append one record; returns its op index. The record is packed into two
  // 64-bit words in registers so the ring write is two stores, not five
  // field-sized ones.
  [[gnu::always_inline]] inline std::uint64_t push(const RecOp& op) noexcept {
    const std::uint64_t lo = static_cast<std::uint32_t>(op.peer) |
                             (static_cast<std::uint64_t>(static_cast<std::uint32_t>(op.tag))
                              << 32);
    const std::uint64_t hi = op.bytes | (static_cast<std::uint64_t>(op.link) << 32) |
                             (static_cast<std::uint64_t>(op.vci) << 48) |
                             (static_cast<std::uint64_t>(op.kind) << 56);
    const std::uint64_t idx = head_.load(std::memory_order_relaxed);
    const std::uint64_t words[2] = {lo, hi};
    static_assert(sizeof(words) == sizeof(RecOp));
    __builtin_memcpy(&ring_[idx & ring_mask_], words, sizeof(words));
    head_.store(idx + 1, std::memory_order_release);
    return idx;
  }
  // Append an anchor for `op_index` with timing [t0, now); updates the
  // last-end stamp the next gap is measured from. Out-of-line: runs for
  // 1 in 2^sample_shift ops only.
  void stamp(std::uint64_t op_index, std::uint64_t t0) noexcept;
  // Remember that request `req` was issued by op `op_index` (O(1): indexed by
  // the request handle's (slot, vci) bits; slot reuse overwrites naturally).
  // The table is flat -- one bounds check, one load level -- because the
  // bind/resolve pair sits on the latency-critical wait path.
  [[gnu::always_inline]] inline void bind(Request req, std::uint64_t op_index) noexcept {
    const std::uint32_t idx = link_slot(req);
    if (idx >= links_.size()) [[unlikely]] bind_grow(links_, idx);
    links_[idx] = op_index + 1;
  }
  // The op index that issued `req`, or ~0ull when unknown.
  [[gnu::always_inline]] inline std::uint64_t issuer_of(Request req) const noexcept {
    const std::uint32_t idx = link_slot(req);
    if (idx >= links_.size()) return ~0ull;
    const std::uint64_t v = links_[idx];
    return v == 0 ? ~0ull : v - 1;
  }
  // Backward-distance encoding for RecOp::link relative to the *next* op.
  std::uint16_t link_to(Request req) const noexcept {
    const std::uint64_t issuer = issuer_of(req);
    if (issuer == ~0ull) return 0;
    const std::uint64_t next = head_.load(std::memory_order_relaxed);
    const std::uint64_t dist = next - issuer;
    return dist > 0xFFFF ? 0xFFFF : static_cast<std::uint16_t>(dist);
  }

  bool sampled(std::uint64_t op_index) const noexcept {
    return (op_index & sample_mask_) == 0;
  }

  // --- read side -------------------------------------------------------------
  int rank() const noexcept { return rank_; }
  int sample_shift() const noexcept { return sample_shift_; }
  std::uint64_t total_ops() const noexcept {
    return head_.load(std::memory_order_acquire);
  }
  std::uint64_t dropped() const noexcept {
    const std::uint64_t h = total_ops();
    return h > ring_.size() ? h - ring_.size() : 0;
  }
  std::uint64_t anchor_count() const noexcept {
    return anchor_head_.load(std::memory_order_acquire);
  }
  // The last `n` records, oldest first (watchdog "last moves" embed; mid-run
  // tolerant-racy, see header comment). The second element of each pair is
  // the op index.
  std::vector<std::pair<std::uint64_t, RecOp>> last_ops(std::size_t n) const;
  // Ordered surviving records / anchors for the flush path (quiescent).
  std::vector<std::pair<std::uint64_t, RecOp>> collect() const;
  std::vector<RecAnchor> collect_anchors() const;

  // Flush statistics (rec_* pvars).
  std::uint64_t flushed_bytes() const noexcept {
    return flushed_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t flush_ns() const noexcept {
    return flush_ns_.load(std::memory_order_relaxed);
  }
  void note_flush(std::uint64_t bytes, std::uint64_t ns) noexcept {
    flushed_bytes_.store(flushed_bytes() + bytes, std::memory_order_relaxed);
    flush_ns_.store(flush_ns() + ns, std::memory_order_relaxed);
  }

 private:
  // Cold-path growth for bind()'s link table (recorder.cpp).
  static void bind_grow(std::vector<std::uint64_t>& m, std::uint32_t slot);

  // Hot members first so one cache line serves the whole push/bind path:
  // push reads ring_'s data pointer, ring_mask_ and head_; the sampling gate
  // reads sample_mask_; bind/issuer_of start at links_.
  std::vector<RecOp> ring_;      // power-of-two capacity
  std::uint64_t ring_mask_;      // ring_.size() - 1, cached off the hot path
  std::atomic<std::uint64_t> head_{0};
  std::uint64_t sample_mask_;
  // links_[(slot << 3) | vci] = op_index + 1 (0 = unbound). Request slots are
  // dense small integers per VCI and vci fits 3 bits (kMaxVcis == 8), so the
  // flat table stays compact; grows on demand.
  static std::uint32_t link_slot(Request req) noexcept {
    return (request_idx(req) << 3) | request_vci(req);
  }
  std::vector<std::uint64_t> links_;

  const int rank_;
  const int nvcis_;
  const int sample_shift_;
  std::vector<RecAnchor> anchors_;  // power-of-two capacity
  std::uint64_t anchor_mask_;
  std::atomic<std::uint64_t> anchor_head_{0};
  std::uint64_t last_end_ns_ = 0;  // owning thread only
  std::atomic<std::uint64_t> flushed_bytes_{0};
  std::atomic<std::uint64_t> flush_ns_{0};
};

// --- on-disk format ----------------------------------------------------------
// `<prefix>.rank<r>.lwtrace`: one 128-byte header + nrecords x 32-byte
// DiskRec, little-endian host byte order (the replay runs on the recording
// machine's architecture; the JSON sidecar is the portable view).
inline constexpr std::uint32_t kLwtraceMagic = 0x5254574C;  // "LWTR"
inline constexpr std::uint32_t kLwtraceVersion = 1;

struct LwtraceHeader {
  std::uint32_t magic = kLwtraceMagic;
  std::uint32_t version = kLwtraceVersion;
  std::uint32_t rank = 0;
  std::uint32_t nranks = 0;
  std::uint32_t nvcis = 0;
  std::uint32_t sample_shift = 0;
  std::uint64_t eager_threshold = 0;
  std::uint64_t total_ops = 0;  // ops pushed; > nrecords when the ring wrapped
  std::uint64_t nrecords = 0;   // records that follow
  std::uint64_t base_ns = 0;    // t0 of the earliest surviving anchor (0 = none)
  std::uint64_t totals[kNumRecTotals] = {};  // RecTotals, field order
  std::uint8_t reserved[16] = {};
};
static_assert(sizeof(LwtraceHeader) == 128);

// One record on disk: the ring record plus its merged anchor timing (zeros
// when the op was not sampled).
struct DiskRec {
  std::uint64_t t0_ns = 0;
  std::uint32_t dur_ns = 0;
  std::uint32_t gap_ns = 0;
  std::int32_t peer = 0;
  std::int32_t tag = 0;
  std::uint32_t bytes = 0;
  std::uint16_t link = 0;
  std::uint8_t vci = 0;
  std::uint8_t kind = 0;
};
static_assert(sizeof(DiskRec) == 32);

// The per-World recorder: owns one RankRec per rank and the flush path.
class Recorder {
 public:
  Recorder(int nranks, int nvcis, std::size_t ring_depth, int sample_shift);

  int nranks() const noexcept { return nranks_; }
  RankRec& rank(int r) { return *ranks_.at(static_cast<std::size_t>(r)); }
  const RankRec& rank(int r) const { return *ranks_.at(static_cast<std::size_t>(r)); }

  // Recorded into every header so the replay can rebuild a World whose
  // eager/rendezvous split matches the recording.
  void set_eager_threshold(std::uint64_t t) noexcept { eager_threshold_ = t; }

  // Write `<prefix>.rank<r>.lwtrace` for every rank plus the `<prefix>.json`
  // sidecar. `totals` holds one RecTotals per rank (the fidelity ground
  // truth, also embedded in each binary header); `provenance_json` is a
  // ready-made JSON object fragment ({"netmod":...}) spliced into the
  // sidecar. Idempotent: a second flush rewrites the same files (the
  // watchdog may flush mid-run, teardown flushes again). Returns false if
  // any file failed to open.
  bool flush(const std::string& prefix, const std::vector<RecTotals>& totals,
             const std::string& provenance_json);

 private:
  const int nranks_;
  const int nvcis_;
  std::uint64_t eager_threshold_ = 0;
  std::vector<std::unique_ptr<RankRec>> ranks_;
};

// RAII recording hook for one surface call, mirroring ProfScope's
// outermost-wins discipline (see header comment). Two modes:
//   * entry-recording ctor: pushes the record immediately (ops that always
//     count: sends, recvs, waits, collectives);
//   * guard-only ctor: claims depth but records nothing; the call site emits
//     success-gated records via record_exit() (test/iprobe record only when
//     they complete something).
class RecScope {
 public:
  RecScope(const RecScope&) = delete;
  RecScope& operator=(const RecScope&) = delete;

  // Guard-only: holds the depth slot so nested re-entry stays suppressed.
  [[gnu::always_inline]] inline explicit RecScope(RankRec* r) noexcept : r_(r) {
    if (r_ == nullptr) return;
    depth_ = &depth();  // one TLS address computation, reused by the dtor
    if ((*depth_)++ != 0) armed_ = false;
  }

  // Entry-recording: push the op now (outermost only). `link_req` is the
  // request this op completes/starts (kRecNoReq for none); the link must be
  // resolved here, at entry, because completion nulls the handle.
  [[gnu::always_inline]] inline RecScope(RankRec* r, Callsite site, std::int32_t peer,
                                         std::int32_t tag, std::uint8_t vci,
                                         std::uint32_t bytes,
                                         Request link_req = kRecNoReq) noexcept
      : r_(r) {
    if (r_ == nullptr) return;
    depth_ = &depth();
    if ((*depth_)++ != 0) {
      armed_ = false;
      return;
    }
    op_index_ = push_entry(r_, static_cast<std::uint8_t>(site), peer, tag, vci, bytes,
                           link_req);
    if (r_->sampled(op_index_)) [[unlikely]] t0_ = lat_now_ns();
  }

  [[gnu::always_inline]] inline ~RecScope() {
    if (r_ == nullptr) return;
    --(*depth_);
    if (t0_ != 0) [[unlikely]] r_->stamp(op_index_, t0_);
  }

  // True when this scope is the outermost recorded call on this thread.
  bool armed() const noexcept { return r_ != nullptr && armed_; }

  // Success-gated exit record (guard-only mode). Also arms sampling so the
  // scope's dtor stamps it; the stamp covers only the tail of the call in
  // this mode, which is fine -- exit-recorded ops (test/iprobe hits) are
  // sub-microsecond and their timing is informational.
  void record_exit(std::uint8_t kind, std::int32_t peer, std::int32_t tag,
                   std::uint8_t vci, std::uint32_t bytes,
                   Request link_req = kRecNoReq) noexcept {
    if (!armed()) return;
    op_index_ = push_entry(r_, kind, peer, tag, vci, bytes, link_req);
    if (r_->sampled(op_index_)) t0_ = lat_now_ns();
  }

  // Follower record sharing this scope's suppression (sendrecv's recv half,
  // Waitall/Testall/Startall items). Followers are never sampled separately;
  // the header op's anchor covers the whole call.
  void aux(std::uint8_t kind, std::int32_t peer, std::int32_t tag, std::uint8_t vci,
           std::uint32_t bytes, Request link_req = kRecNoReq) noexcept {
    if (!armed()) return;
    push_entry(r_, kind, peer, tag, vci, bytes, link_req);
  }

  // Associate the request produced by this call with this op (isend/irecv/
  // *_init): later waits resolve their `link` through it.
  void bind_req(const Request* req) noexcept {
    if (!armed() || req == nullptr || *req == kRequestNull) return;
    if (handle_kind(*req) != HandleKind::Request) return;
    r_->bind(*req, op_index_);
  }

 private:
  static int& depth() noexcept {
    thread_local int d = 0;
    return d;
  }
  // Inline: the common call sites pass link_req = kRecNoReq as a constant, so
  // the link-resolution branch folds away and the whole append compiles down
  // to the 16-byte ring store plus the head bump.
  [[gnu::always_inline]] static inline std::uint64_t push_entry(
      RankRec* r, std::uint8_t kind, std::int32_t peer, std::int32_t tag,
      std::uint8_t vci, std::uint32_t bytes, Request link_req) noexcept {
    RecOp op;
    op.peer = peer;
    op.tag = tag;
    op.bytes = bytes;
    op.vci = vci;
    op.kind = kind;
    if (link_req != kRequestNull && handle_kind(link_req) == HandleKind::Request) {
      op.link = r->link_to(link_req);
    }
    return r->push(op);
  }

  RankRec* r_;
  int* depth_ = nullptr;  // cached TLS slot (valid whenever r_ != nullptr)
  bool armed_ = true;
  std::uint64_t op_index_ = 0;
  std::uint64_t t0_ = 0;
};

}  // namespace lwmpi::obs
